# Developer entry points. `make verify` is the full pre-merge gate; CI runs
# the same script.

GO ?= go

.PHONY: build test lint lint-sarif verify bench bench-smoke bench-baseline bench-compare serve-smoke loadtest-smoke fleetsim-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repository's own static analyzers (internal/analysis) over
# every package: detrange, unitsafe, floateq, locksafe, staleplan,
# allocfree, goroleak, httpcontract. Findings honor
# `//lint:ignore <analyzer> <reason>` (the reason is mandatory).
lint:
	$(GO) run ./cmd/dnnlint ./...

# lint-sarif writes the same findings as `make lint` in SARIF 2.1.0 form to
# dnnlint.sarif (written even when findings exist; the target still fails
# on findings so gates keep gating).
lint-sarif:
	$(GO) run ./cmd/dnnlint -sarif ./... > dnnlint.sarif

# verify is the pre-merge gate: vet, dnnlint, the full test suite under the
# race detector (the concurrency tests in internal/bench, internal/cache and
# internal/core only bite with -race on), the `dnnperf serve` + fleet smoke
# test, the fleet loadtest smoke, the cached-predict benchmark regression
# gate with the fleet throughput/p99 gate, and the lint self-test proving
# the gate fails on a seeded violation. scripts/ci.sh runs all of them.
verify:
	./scripts/ci.sh

# bench profiles the collection fast path: the lab collection benchmark with
# a CPU profile (inspect with `go tool pprof`), then one quick collection
# pass exported as a Chrome/Perfetto trace of its per-phase spans (open
# bench-artifacts/collect_trace.json in ui.perfetto.dev).
bench:
	mkdir -p bench-artifacts
	$(GO) test -run '^$$' -bench 'BenchmarkLabDatasetBuild' -benchtime 6x \
		-cpuprofile bench-artifacts/collect_cpu.pprof -o bench-artifacts/bench.test .
	$(GO) run ./cmd/dnnperf -quick -timing -o bench-artifacts/collect_trace.json \
		-out bench-artifacts/dataset collect
	@echo "pprof:    go tool pprof bench-artifacts/bench.test bench-artifacts/collect_cpu.pprof"
	@echo "perfetto: load bench-artifacts/collect_trace.json at https://ui.perfetto.dev"

# bench-smoke compiles and runs every benchmark exactly once — a cheap check
# that no benchmark has rotted, without producing timing numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-baseline regenerates BENCH_baseline.json from the performance-critical
# benchmarks (see scripts/bench_baseline.sh).
bench-baseline:
	./scripts/bench_baseline.sh

# bench-compare reruns the cached-predict benchmarks and fails if any is
# more than 25% slower than its BENCH_baseline.json entry.
bench-compare:
	./scripts/bench_compare.sh

# serve-smoke boots `dnnperf serve` and checks /healthz, /readyz, /metrics
# and both predict endpoints, then a 2-replica fleet: routed predictions,
# 429 backpressure under a concurrent burst, and whole-fleet drain.
serve-smoke:
	./scripts/serve_smoke.sh

# loadtest-smoke drives a 2-replica fleet with `dnnperf loadtest` for ~2s
# and requires non-zero sustained throughput with zero 5xx.
loadtest-smoke:
	./scripts/loadtest_smoke.sh

# fleetsim-smoke replays a 10k-request trace through `dnnperf fleetsim` and
# a small capacity sweep, checking the summary JSON is sane end to end.
fleetsim-smoke:
	./scripts/fleetsim_smoke.sh
