# Developer entry points. `make verify` is the full pre-merge gate; CI runs
# the same three commands.

GO ?= go

.PHONY: build test verify bench-smoke bench-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: vet, build, and the full test suite under the
# race detector (the concurrency tests in internal/bench, internal/cache and
# internal/core only bite with -race on).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench-smoke compiles and runs every benchmark exactly once — a cheap check
# that no benchmark has rotted, without producing timing numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-baseline regenerates BENCH_baseline.json from the performance-critical
# benchmarks (see scripts/bench_baseline.sh).
bench-baseline:
	./scripts/bench_baseline.sh
