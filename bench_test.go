package repro

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, each invoking the generator that regenerates that
// experiment's rows/series, plus micro-benchmarks of the library's hot
// paths. The per-experiment benchmarks share a single quick lab (dataset
// collection dominates and is cached), so -bench=. completes in a few
// minutes; run cmd/dnnperf all for the full-fidelity numbers.

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/zoo"
)

var (
	benchLabOnce sync.Once
	benchLab     *bench.Lab
)

func sharedLab(b *testing.B) *bench.Lab {
	b.Helper()
	benchLabOnce.Do(func() { benchLab = bench.NewQuickLab() })
	return benchLab
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := bench.Table1().Render(); out == "" {
			b.Fatal("empty render")
		}
	}
}

// benchFigure standardizes the per-figure benchmark body.
func benchFigure(b *testing.B, run func(*bench.Lab) error) {
	l := sharedLab(b)
	// Warm the lab's dataset caches outside the timed region.
	if err := run(l); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure3(l, gpu.A100); return err })
}

func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure4(l, gpu.A100); return err })
}

func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure5(l, gpu.A100); return err })
}

func BenchmarkFigure6(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure6(l, gpu.A100); return err })
}

func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure7(l, gpu.A100); return err })
}

func BenchmarkFigure8(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure8(l, gpu.A100); return err })
}

func BenchmarkFigure9(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure9(l); return err })
}

func BenchmarkFigure11(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure11(l, gpu.A100); return err })
}

func BenchmarkFigure12(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure12(l, gpu.A100); return err })
}

func BenchmarkFigure13(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure13(l, gpu.A100); return err })
}

func BenchmarkTable2(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Table2(l); return err })
}

func BenchmarkFigure14(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure14(l); return err })
}

func BenchmarkFigure15(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure15(l); return err })
}

func BenchmarkFigure16(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure16(l); return err })
}

func BenchmarkFigure17(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure17(l); return err })
}

func BenchmarkFigure18(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure18(l); return err })
}

func BenchmarkFigure19(b *testing.B) {
	benchFigure(b, func(l *bench.Lab) error { _, err := bench.Figure19(l); return err })
}

// ------------------------------------------------------- micro-benchmarks

// BenchmarkProfileResNet50 measures the full synthetic measurement pipeline
// (shape inference, kernel selection, 30-batch averaged timing) — the cost
// of "running" one network once on the substrate.
func BenchmarkProfileResNet50(b *testing.B) {
	net := zoo.MustResNet(50)
	p := profiler.New(sim.NewDefault(gpu.A100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Profile(net, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKWTrain measures fitting the kernel-wise model — the "seconds
// rather than hours" claim of Table 2.
func BenchmarkKWTrain(b *testing.B) {
	l := sharedLab(b)
	ds, err := l.Dataset(gpu.A100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitKW(ds, "A100", bench.TrainBatch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKWPredict measures one structure-only network prediction.
func BenchmarkKWPredict(b *testing.B) {
	l := sharedLab(b)
	ds, err := l.Dataset(gpu.A100)
	if err != nil {
		b.Fatal(err)
	}
	kw, err := core.FitKW(ds, "A100", bench.TrainBatch)
	if err != nil {
		b.Fatal(err)
	}
	net := zoo.MustResNet(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kw.PredictNetwork(net, 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKWPredictUncachedE2E measures the same query through the reference
// (pre-plan) path: full shape inference plus per-kernel map lookups every
// call. The ratio against BenchmarkKWPredict is the speedup the compiled
// prediction plans buy.
func BenchmarkKWPredictUncachedE2E(b *testing.B) {
	l := sharedLab(b)
	ds, err := l.Dataset(gpu.A100)
	if err != nil {
		b.Fatal(err)
	}
	kw, err := core.FitKW(ds, "A100", bench.TrainBatch)
	if err != nil {
		b.Fatal(err)
	}
	net := zoo.MustResNet(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kw.PredictNetworkUncached(net, 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKWPredictConcurrent measures contended prediction throughput —
// many goroutines querying one model's cached plan, the scheduler pattern.
func BenchmarkKWPredictConcurrent(b *testing.B) {
	l := sharedLab(b)
	ds, err := l.Dataset(gpu.A100)
	if err != nil {
		b.Fatal(err)
	}
	kw, err := core.FitKW(ds, "A100", bench.TrainBatch)
	if err != nil {
		b.Fatal(err)
	}
	net := zoo.MustResNet(50)
	if _, err := kw.PredictNetwork(net, 512); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := kw.PredictNetwork(net, 512); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLabDatasetBuild measures one full parallel collection pass for the
// scheduling GPUs on a fresh lab (nothing cached): the wall time the per-GPU
// worker pool saves shows up against a sequential build of the same pair.
func BenchmarkLabDatasetBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := bench.NewQuickLab()
		if _, err := l.Dataset(gpu.A40, gpu.TitanRTX); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZooGeneration measures building all 646 network structures.
func BenchmarkZooGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if nets := zoo.Full(); len(nets) != zoo.FullZooSize {
			b.Fatal("bad zoo")
		}
	}
}

// BenchmarkShapeInference measures inferring ResNet-152 at batch 512.
func BenchmarkShapeInference(b *testing.B) {
	net := zoo.MustResNet(152)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Infer(512); err != nil {
			b.Fatal(err)
		}
	}
}
