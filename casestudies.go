package repro

import (
	"repro/internal/core"
	"repro/internal/disagg"
	"repro/internal/sched"
	"repro/internal/units"
)

// This file exposes the building blocks of the paper's three case studies
// (§6) through the public facade.

// ---------------------------------------------------------- case study 1

// IGKWBase is the target-independent part of the inter-GPU model. Fitting
// the base once and resolving many (possibly hypothetical) targets is what
// makes bandwidth design-space exploration take milliseconds per point.
type IGKWBase = core.IGKWBase

// TrainIGKWBase performs the per-GPU training work shared by every target
// GPU; resolve concrete targets with (*IGKWBase).Resolve.
func TrainIGKWBase(ds *Dataset, trainGPUs []GPU) (*IGKWBase, error) {
	return core.FitIGKWBase(ds, trainGPUs, TrainBatchSize)
}

// ---------------------------------------------------------- case study 2

// DisaggConfig describes a disaggregated-memory system: link bandwidth and
// latency to the remote pool, and the local-memory prefetch window.
type DisaggConfig = disagg.Config

// DisaggLayerJob is one layer's compute time and remote traffic.
type DisaggLayerJob = disagg.LayerJob

// DisaggResult summarizes one disaggregated-memory simulation.
type DisaggResult = disagg.Result

// SimulateDisagg runs the event-driven disaggregated-memory model over the
// layer jobs.
func SimulateDisagg(jobs []DisaggLayerJob, cfg DisaggConfig) (DisaggResult, error) {
	return disagg.Simulate(jobs, cfg)
}

// SweepDisagg simulates the job list across several link bandwidths.
func SweepDisagg(jobs []DisaggLayerJob, base DisaggConfig, bandwidthsGBps []float64) ([]DisaggResult, error) {
	return disagg.Sweep(jobs, base, bandwidthsGBps)
}

// DisaggSpeedups normalizes sweep totals to the first entry (the paper plots
// speedup over a 16 GB/s link).
func DisaggSpeedups(results []DisaggResult) []float64 { return disagg.Speedups(results) }

// DisaggJobsFromNetwork assembles the per-layer job list for a network at a
// batch size, taking compute times from a trained kernel-wise model and
// counting weights plus input/output activations as remote traffic.
func DisaggJobsFromNetwork(n *Network, batch int, kw *KWModel) ([]DisaggLayerJob, error) {
	if err := n.Infer(batch); err != nil {
		return nil, err
	}
	var jobs []DisaggLayerJob
	for _, l := range n.Layers {
		traffic := 4 * l.WeightCount()
		for _, s := range l.InShapes {
			traffic += 4 * s.Numel()
		}
		traffic += 4 * l.OutShape.Numel()
		jobs = append(jobs, DisaggLayerJob{
			Name:           l.Name,
			ComputeSeconds: kw.PredictLayerTime(l),
			RemoteBytes:    units.Bytes(traffic),
		})
	}
	return jobs, nil
}

// ---------------------------------------------------------- case study 3

// ScheduleTimes holds per-GPU execution time estimates for a task list.
type ScheduleTimes = sched.Times

// ScheduleAssignment maps tasks to GPUs with the resulting makespan.
type ScheduleAssignment = sched.Assignment

// ChooseGPU returns, per task, the GPU with the smallest time.
func ChooseGPU(tm ScheduleTimes, nTasks int) ([]string, error) {
	return sched.ChooseGPU(tm, nTasks)
}

// ScheduleBruteForce enumerates every assignment (≤ 16 tasks, ≤ 4 GPUs) and
// returns one with minimal makespan. Beyond those limits the error wraps
// ErrScheduleSearchSpace; ScheduleAuto handles the fallback automatically.
func ScheduleBruteForce(tm ScheduleTimes, nTasks int) (ScheduleAssignment, error) {
	return sched.BruteForce(tm, nTasks)
}

// ScheduleGreedy is the scalable longest-processing-time heuristic.
func ScheduleGreedy(tm ScheduleTimes, nTasks int) (ScheduleAssignment, error) {
	return sched.Greedy(tm, nTasks)
}

// ScheduleGreedyInOrder places tasks in input order on the earliest-finish
// GPU — the weaker heuristic ScheduleGreedy improved on; kept for queues
// that must be served in arrival order.
func ScheduleGreedyInOrder(tm ScheduleTimes, nTasks int) (ScheduleAssignment, error) {
	return sched.GreedyInOrder(tm, nTasks)
}

// ErrScheduleSearchSpace marks a brute-force request whose search space is
// too large to enumerate; detect it with errors.Is.
var ErrScheduleSearchSpace = sched.ErrSearchSpace

// ScheduleAuto brute-forces when the search space permits and falls back to
// the cluster-scale optimizer (list scheduling plus local search) otherwise.
// The flag reports whether the returned assignment is the exact optimum.
func ScheduleAuto(tm ScheduleTimes, nTasks int) (ScheduleAssignment, bool, error) {
	return sched.Auto(tm, nTasks)
}

// MakespanOf re-costs an assignment under a different time table (e.g. a
// predicted-time schedule evaluated with measured times).
func MakespanOf(gpuOf []string, tm ScheduleTimes) (float64, error) {
	return sched.MakespanOf(gpuOf, tm)
}

// ------------------------------------------- cluster-scale scheduling

// ScheduleDenseTimes is the dense gpu-major time table the cluster-scale
// optimizer works on; build one with NewScheduleDenseTimes and fill its
// rows, or convert a map-form table with ScheduleDenseFromTimes.
type ScheduleDenseTimes = sched.DenseTimes

// ScheduleDenseAssignment is a schedule over a dense table.
type ScheduleDenseAssignment = sched.DenseAssignment

// ScheduleSearchOptions tunes the makespan search; the zero value picks
// size-appropriate defaults.
type ScheduleSearchOptions = sched.SearchOptions

// ScheduleSearchResult is a schedule with its certified optimality gap.
type ScheduleSearchResult = sched.SearchResult

// NewScheduleDenseTimes allocates an empty dense table for the GPUs.
func NewScheduleDenseTimes(gpus []string, nTasks int) (*ScheduleDenseTimes, error) {
	return sched.NewDenseTimes(gpus, nTasks)
}

// ScheduleDenseFromTimes converts a map-form time table to dense form.
func ScheduleDenseFromTimes(tm ScheduleTimes, nTasks int) (*ScheduleDenseTimes, error) {
	return sched.FromTimes(tm, nTasks)
}

// ScheduleSearch runs the cluster-scale makespan optimizer: LPT-lookahead
// construction, multi-start annealed local search with O(1) incremental
// move evaluation, and a lower bound certifying the optimality gap. It
// handles ~10⁶ tasks × dozens of GPU types in seconds.
func ScheduleSearch(dt *ScheduleDenseTimes, opt ScheduleSearchOptions) (*ScheduleSearchResult, error) {
	return sched.Schedule(dt, opt)
}

// ScheduleList runs only the construction heuristic: longest-processing-time
// order with a bounded-lookahead regret rule.
func ScheduleList(dt *ScheduleDenseTimes, lookahead int) (*ScheduleDenseAssignment, error) {
	return sched.ListSchedule(dt, lookahead)
}

// ScheduleLowerBound certifies a makespan lower bound for the instance; no
// schedule can beat it, so (makespan−bound)/bound bounds suboptimality.
func ScheduleLowerBound(dt *ScheduleDenseTimes) (float64, error) {
	return sched.LowerBound(dt)
}
