// Command dnnlint runs the repository's domain-specific static analyzers
// (internal/analysis) over package patterns and reports invariant
// violations with file:line positions. It exits non-zero when any finding
// is reported, so `go run ./cmd/dnnlint ./...` gates make verify and CI.
//
// Usage:
//
//	dnnlint [packages]
//
// Patterns: "./..." (default) walks every package under the current module;
// an explicit directory ("./internal/core") checks just that package.
// Test files and testdata directories are never checked — the invariants
// guard production behaviour, and tests legitimately assert bit-identity.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dnnlint [packages]\n\nInvariants:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name(), a.Doc())
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	module, err := moduleName(root)
	if err != nil {
		fatal(err)
	}

	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		fatal(err)
	}

	fset := token.NewFileSet()
	imp := analysis.NewImporter(fset)
	analyzers := analysis.All()

	var findings []analysis.Finding
	for _, dir := range dirs {
		pass, err := analysis.LoadDir(fset, imp, dir, importPath(module, root, dir))
		if err != nil {
			fatal(err)
		}
		for _, a := range analyzers {
			findings = append(findings, a.Run(pass)...)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})

	w := bufio.NewWriter(os.Stdout)
	for _, f := range findings {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil {
			rel = r
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	w.Flush()
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dnnlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// fatal reports a driver error and exits with a status distinct from the
// findings exit code.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnnlint:", err)
	os.Exit(2)
}

// moduleName reads the module path from go.mod in root.
func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// importPath maps a package directory to its import path under the module.
func importPath(module, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}

// expandPatterns resolves package patterns to package directories: "./..."
// and "dir/..." walk recursively; anything else is a single directory.
// Directories named testdata, hidden directories and _-prefixed directories
// are skipped, matching the go tool's convention.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
