// Command dnnlint runs the repository's domain-specific static analyzers
// (internal/analysis) over package patterns and reports invariant
// violations with file:line positions.
//
// Usage:
//
//	dnnlint [-json | -sarif] [packages]
//
// Patterns: "./..." (default) walks every package under the current module;
// an explicit directory ("./internal/core") checks just that package.
// Test files and testdata directories are never checked — the invariants
// guard production behaviour, and tests legitimately assert bit-identity.
//
// Packages load in parallel through one shared, memoized importer, and
// findings are reported in deterministic (file, line, analyzer) order.
// Findings honor //lint:ignore <analyzer> <reason> suppression directives;
// a directive without a reason is itself a finding.
//
// Exit codes: 0 when clean, 1 when findings are reported, 2 when any
// package fails to load (parse or type-check errors, printed to stderr).
// Load errors dominate: a run that cannot see the whole module must not
// pass the gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log (GitHub code scanning)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dnnlint [-json | -sarif] [packages]\n\nInvariants:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name(), a.Doc())
		}
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "dnnlint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	module, err := analysis.ModuleName(root)
	if err != nil {
		fatal(err)
	}
	dirs, err := analysis.ExpandPatterns(root, patterns)
	if err != nil {
		fatal(err)
	}

	pkgs := make([]analysis.PackageDir, len(dirs))
	for i, dir := range dirs {
		pkgs[i] = analysis.PackageDir{Dir: dir, ImportPath: analysis.ImportPathFor(module, root, dir)}
	}

	fset := token.NewFileSet()
	imp := analysis.NewImporter(fset)
	analyzers := analysis.All()

	var findings []analysis.Finding
	loadErrs := 0
	for _, res := range analysis.LoadPackages(fset, imp, pkgs) {
		if res.Err != nil {
			fmt.Fprintln(os.Stderr, "dnnlint:", res.Err)
			loadErrs++
			continue
		}
		var pkgFindings []analysis.Finding
		for _, a := range analyzers {
			pkgFindings = append(pkgFindings, a.Run(res.Pass)...)
		}
		findings = append(findings, analysis.ApplySuppressions(res.Pass, pkgFindings)...)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})

	w := bufio.NewWriter(os.Stdout)
	switch {
	case *sarifOut:
		if err := analysis.WriteSARIF(w, analyzers, findings, root); err != nil {
			fatal(err)
		}
	case *jsonOut:
		if err := analysis.WriteFindingsJSON(w, findings, root); err != nil {
			fatal(err)
		}
	default:
		for _, f := range findings {
			rel := f.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil {
				rel = r
			}
			fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	w.Flush()

	if loadErrs > 0 {
		fmt.Fprintf(os.Stderr, "dnnlint: %d package(s) failed to load\n", loadErrs)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dnnlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// fatal reports a driver error and exits with the load-error status.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnnlint:", err)
	os.Exit(2)
}
