package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/loadgen"
	"repro/internal/obs"
)

// The fleet subcommand scales the serving tier horizontally: it re-executes
// this binary N times as `dnnperf serve` replicas on ephemeral ports, fronts
// them with the internal/fleet consistent-hash proxy, and serves the proxy
// on -addr. Each replica fits its own model copy and owns a disjoint slice
// of the plan-cache key space (requests shard by network identity), so
// aggregate cache capacity grows with the fleet. SIGINT/SIGTERM drain the
// proxy first, then terminate the replicas — the whole cascade exits 0.
//
// The loadtest subcommand boots the same fleet, waits until every replica's
// /readyz reports a warmed model, then drives open-loop load through the
// proxy with internal/loadgen and prints a JSON summary whose
// fleet_throughput_rps / fleet_p99_ns keys feed scripts/bench_compare.sh.

// replicaBootTimeout bounds one replica's listener announcement; the model
// warm-up budget is separate (readyTimeout).
const replicaBootTimeout = 30 * time.Second

// readyTimeout bounds the whole fleet's model warm-up before a loadtest.
const readyTimeout = 300 * time.Second

// childReplica is one spawned `dnnperf serve` process.
type childReplica struct {
	cmd  *exec.Cmd
	addr string
}

// spawnReplica re-executes this binary as one serve replica on an ephemeral
// port and parses the bound address off its stdout announcement line.
func spawnReplica(quick bool, gpuName string) (*childReplica, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("fleet: resolving own binary: %w", err)
	}
	args := []string{"-gpu", gpuName, "-addr", "127.0.0.1:0"}
	if quick {
		args = append([]string{"-quick"}, args...)
	}
	args = append(args, "serve")
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: starting replica: %w", err)
	}

	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "dnnperf: serving on http://"); ok {
				if i := strings.IndexByte(rest, ' '); i >= 0 {
					rest = rest[:i]
				}
				addrc <- rest
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		errc <- fmt.Errorf("fleet: replica exited without announcing its address")
	}()

	select {
	case addr := <-addrc:
		return &childReplica{cmd: cmd, addr: addr}, nil
	case err := <-errc:
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	case <-time.After(replicaBootTimeout):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("fleet: replica did not announce a listener within %v", replicaBootTimeout)
	}
}

// spawnFleet boots n replicas, tearing all of them down on any failure.
func spawnFleet(n int, quick bool, gpuName string) ([]*childReplica, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: -replicas must be >= 1, got %d", n)
	}
	var kids []*childReplica
	for i := 0; i < n; i++ {
		kid, err := spawnReplica(quick, gpuName)
		if err != nil {
			stopFleet(kids)
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		kids = append(kids, kid)
		fmt.Fprintf(os.Stderr, "dnnperf fleet: replica %d serving on %s (pid %d)\n", i, kid.addr, kid.cmd.Process.Pid)
	}
	return kids, nil
}

// stopFleet SIGTERMs every replica and waits for the drain; replicas that
// ignore the signal are killed after their own shutdownDrain budget.
func stopFleet(kids []*childReplica) {
	for _, kid := range kids {
		_ = kid.cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, kid := range kids {
		done := make(chan struct{})
		go func(kid *childReplica) {
			_ = kid.cmd.Wait()
			close(done)
		}(kid)
		select {
		case <-done:
		case <-time.After(shutdownDrain + 5*time.Second):
			_ = kid.cmd.Process.Kill()
			<-done
		}
	}
}

// fleetFlags carries the fleet/loadtest tuning from main.
type fleetFlags struct {
	replicas    int
	maxInflight int
	rate        float64
	duration    time.Duration
	warmup      time.Duration
	arrival     string
	seed        int64
	traceOut    string
}

// writeFleetTrace merges the proxy's span buffer with every replica's
// /tracez.json into one Perfetto-loadable timeline, one track per process.
// Replicas that fail to scrape are skipped with a note — a partial timeline
// beats none during a teardown.
func writeFleetTrace(path string, proxy *fleet.Proxy) error {
	procs := []obs.ProcessTrace{proxy.ProcessTrace()}
	client := &http.Client{Timeout: 10 * time.Second}
	for _, addr := range proxy.ReplicaAddrs() {
		resp, err := client.Get("http://" + addr + "/tracez.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnnperf: scraping %s/tracez.json: %v\n", addr, err)
			continue
		}
		pt, err := obs.ReadProcessTrace(resp.Body)
		resp.Body.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnnperf: decoding %s/tracez.json: %v\n", addr, err)
			continue
		}
		procs = append(procs, pt)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTraceMerged(f, procs); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dnnperf: merged fleet trace (%d processes) written to %s (load it at https://ui.perfetto.dev)\n",
		len(procs), path)
	return nil
}

// runFleet is the `dnnperf fleet` command: replicas + proxy until SIGTERM.
func runFleet(quick bool, gpuName, addr string, ff fleetFlags) error {
	kids, err := spawnFleet(ff.replicas, quick, gpuName)
	if err != nil {
		return err
	}
	defer stopFleet(kids)

	addrs := make([]string, len(kids))
	for i, kid := range kids {
		addrs[i] = kid.addr
	}
	proxy, err := fleet.New(addrs, fleet.Options{MaxInflight: ff.maxInflight})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	proxy.Start(probeCtx)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("dnnperf: fleet proxy on http://%s fronting %d replicas (endpoints: /healthz /readyz /fleetz + replica surface)\n",
		ln.Addr(), len(kids))
	srv := &http.Server{
		Handler:           proxy,
		ReadHeaderTimeout: serveReadHeaderTimeout,
		ReadTimeout:       serveReadTimeout,
		WriteTimeout:      serveWriteTimeout,
		IdleTimeout:       serveIdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownDrain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	// Replicas are still alive here (stopFleet runs in the defer), so their
	// span buffers can be scraped into the merged timeline.
	if ff.traceOut != "" {
		if err := writeFleetTrace(ff.traceOut, proxy); err != nil {
			return err
		}
	}
	// stopFleet in the defer terminates the replicas after the proxy drain.
	return nil
}

// loadtestSummary is the loadtest's stdout contract. The fleet_* keys are
// read by scripts/bench_compare.sh; keep them stable.
type loadtestSummary struct {
	Replicas          int     `json:"replicas"`
	Arrival           string  `json:"arrival"`
	OfferedRPS        float64 `json:"offered_rps"`
	DurationSecs      float64 `json:"duration_seconds"`
	WarmupSecs        float64 `json:"warmup_seconds"`
	Sent              int64   `json:"sent"`
	Shed              int64   `json:"shed"`
	Completed         int64   `json:"completed"`
	Status2xx         int64   `json:"status_2xx"`
	Status4xx         int64   `json:"status_4xx"`
	Status429         int64   `json:"status_429"`
	Status5xx         int64   `json:"status_5xx"`
	NetErrors         int64   `json:"net_errors"`
	FleetThroughput   float64 `json:"fleet_throughput_rps"`
	FleetP50Ns        int64   `json:"fleet_p50_ns"`
	FleetP90Ns        int64   `json:"fleet_p90_ns"`
	FleetP99Ns        int64   `json:"fleet_p99_ns"`
	FleetP999Ns       int64   `json:"fleet_p999_ns"`
	FleetMaxNs        int64   `json:"fleet_max_ns"`
	ModelVersionFloor uint64  `json:"model_version_floor"`
	// SlowestRequests lists the slowest measured requests with the trace ID
	// each response echoed, for lookup in the -trace-o merged timeline.
	SlowestRequests []slowRequestSummary `json:"slowest_requests,omitempty"`
}

// slowRequestSummary is one slowest-K entry in the loadtest summary.
type slowRequestSummary struct {
	TraceID   string `json:"trace_id,omitempty"`
	LatencyNs int64  `json:"latency_ns"`
	Status    int    `json:"status"`
}

// loadtestBatches is the cached-predict batch mix the generator cycles
// through; a handful of sizes per network keeps every replica's plan cache
// warm after the first pass.
var loadtestBatches = []int{1, 8, 64, 512}

// runLoadtest is the `dnnperf loadtest` command: boot a fleet, warm it,
// drive open-loop load through the proxy, print the JSON summary.
func runLoadtest(quick bool, gpuName, network string, ff fleetFlags) error {
	arrival, err := loadgen.ParseArrival(ff.arrival)
	if err != nil {
		return err
	}
	kids, err := spawnFleet(ff.replicas, quick, gpuName)
	if err != nil {
		return err
	}
	defer stopFleet(kids)

	addrs := make([]string, len(kids))
	for i, kid := range kids {
		addrs[i] = kid.addr
	}
	proxy, err := fleet.New(addrs, fleet.Options{MaxInflight: ff.maxInflight})
	if err != nil {
		return err
	}
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	proxy.Start(probeCtx)

	fmt.Fprintf(os.Stderr, "dnnperf loadtest: waiting for %d replicas to warm up (budget %v)...\n", len(kids), readyTimeout)
	wctx, wcancel := context.WithTimeout(context.Background(), readyTimeout)
	defer wcancel()
	if err := proxy.WaitReady(wctx, len(kids)); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	front := &http.Server{Handler: proxy}
	go func() { _ = front.Serve(ln) }()
	defer front.Close()
	base := "http://" + ln.Addr().String()

	// Warm every (network, batch) plan once through the proxy so the
	// measured window exercises the cached path on all replicas.
	warmClient := &http.Client{Timeout: 30 * time.Second}
	for _, b := range loadtestBatches {
		url := fmt.Sprintf("%s/predict?network=%s&batch=%d", base, network, b)
		resp, err := warmClient.Get(url)
		if err != nil {
			return fmt.Errorf("loadtest: warming %s: %w", url, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("loadtest: warming %s: status %d: %s", url, resp.StatusCode, body)
		}
	}

	fmt.Fprintf(os.Stderr, "dnnperf loadtest: %s arrivals at %.0f rps for %v (warm-up %v) against %d replicas\n",
		arrival, ff.rate, ff.duration, ff.warmup, len(kids))
	var reqN atomic.Uint64
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		NewRequest: func(rng *rand.Rand) (*http.Request, error) {
			b := loadtestBatches[rng.Intn(len(loadtestBatches))]
			req, err := http.NewRequest(http.MethodGet,
				fmt.Sprintf("%s/predict?network=%s&batch=%d", base, network, b), nil)
			if err != nil {
				return nil, err
			}
			// Inject a sampled trace context on every other request: the
			// proxy continues injected traces regardless of its own 1-in-N
			// head sampling, so the slowest-K summary entries usually carry
			// a trace ID and the merged timeline stays dense. The serving
			// defaults are untouched — this is the diagnostic path.
			if reqN.Add(1)%2 == 1 {
				req.Header.Set("traceparent", obs.NewSpanContext().Traceparent())
			}
			return req, nil
		},
		Arrival:  arrival,
		Rate:     ff.rate,
		Duration: ff.duration,
		Warmup:   ff.warmup,
		Seed:     ff.seed,
	})
	if err != nil {
		return err
	}

	sum := loadtestSummary{
		Replicas:        ff.replicas,
		Arrival:         string(res.Arrival),
		OfferedRPS:      res.OfferedRPS,
		DurationSecs:    ff.duration.Seconds(),
		WarmupSecs:      ff.warmup.Seconds(),
		Sent:            res.Sent,
		Shed:            res.Shed,
		Completed:       res.Completed,
		Status2xx:       res.Status2xx,
		Status4xx:       res.Status4xx,
		Status429:       res.Status429,
		Status5xx:       res.Status5xx,
		NetErrors:       res.NetErrors,
		FleetThroughput: res.ThroughputRPS,
		FleetP50Ns:      res.P50.Nanoseconds(),
		FleetP90Ns:      res.P90.Nanoseconds(),
		FleetP99Ns:      res.P99.Nanoseconds(),
		FleetP999Ns:     res.P999.Nanoseconds(),
		FleetMaxNs:      res.Max.Nanoseconds(),
	}
	// The lowest model version across replicas, for swap-drill visibility.
	sum.ModelVersionFloor = ^uint64(0)
	for _, row := range fleetReadyVersions(proxy) {
		if row < sum.ModelVersionFloor {
			sum.ModelVersionFloor = row
		}
	}
	if sum.ModelVersionFloor == ^uint64(0) {
		sum.ModelVersionFloor = 0
	}
	for _, s := range res.Slowest {
		sum.SlowestRequests = append(sum.SlowestRequests, slowRequestSummary{
			TraceID: s.TraceID, LatencyNs: s.Latency.Nanoseconds(), Status: s.Status,
		})
	}

	if ff.traceOut != "" {
		if err := writeFleetTrace(ff.traceOut, proxy); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

// fleetReadyVersions lists the model versions of the currently ready
// replicas via the proxy's introspection state.
func fleetReadyVersions(p *fleet.Proxy) []uint64 {
	var out []uint64
	for _, row := range p.Fleetz() {
		if row.Ready {
			out = append(out, row.ModelVersion)
		}
	}
	return out
}
