package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/fleetsim"
	"repro/internal/loadgen"
	"repro/internal/obs"
)

// The fleetsim subcommand replays request traffic against a simulated GPU
// fleet whose step times come from the compiled prediction plans (or, by
// default, a seeded synthetic oracle so smoke runs take milliseconds). One
// scenario prints a latency/utilization summary; the sweep flags fan a
// (fleet size × rate × policy) grid across worker goroutines and answer
// the capacity question ("smallest fleet meeting the p99 target") per
// cell. With -o, the per-batch timeline of the single-run scenario is
// written as a Perfetto-loadable Chrome trace, one track per replica.

// fleetsimFlags carries the subcommand's knobs from main.
type fleetsimFlags struct {
	fleetSize int
	requests  int
	maxBatch  int
	rate      float64
	arrival   string
	policy    string
	users     int
	think     time.Duration
	horizon   time.Duration
	post      time.Duration
	seed      int64
	cluster   bool
	quick     bool
	workers   int

	sweepFleet  string
	sweepRate   string
	sweepPolicy string
	p99Target   time.Duration

	timeline bool
}

// fleetsimSummary is the single-scenario JSON output.
type fleetsimSummary struct {
	Scenario        fleetsim.Scenario `json:"scenario"`
	GPUs            []string          `json:"gpus"`
	Result          fleetsim.Result   `json:"result"`
	ElapsedSeconds  float64           `json:"elapsed_s"`
	SimReqPerSec    float64           `json:"sim_requests_per_sec"`
	SimEventsPerSec float64           `json:"sim_events_per_sec"`
}

// fleetsimSweepSummary is the capacity-sweep JSON output.
type fleetsimSweepSummary struct {
	GPUs           []string                  `json:"gpus"`
	P99TargetS     float64                   `json:"p99_target_s"`
	Grid           []fleetsim.ScenarioResult `json:"grid"`
	MinFleetForP99 map[string]int            `json:"min_fleet_for_p99"`
	ElapsedSeconds float64                   `json:"elapsed_s"`
}

func runFleetsim(ff fleetsimFlags) error {
	if ff.maxBatch <= 0 {
		ff.maxBatch = 8
	}
	st, err := fleetsimTable(ff)
	if err != nil {
		return err
	}

	if ff.sweepFleet != "" || ff.sweepRate != "" || ff.sweepPolicy != "" {
		return runFleetsimSweep(ff, st)
	}

	sc := fleetsimScenario(ff, st, "fleetsim")
	sc.RecordTimeline = ff.timeline
	start := time.Now()
	sim, err := sc.Build(st)
	if err != nil {
		return err
	}
	res := sim.Replay()
	elapsed := time.Since(start).Seconds()
	if ff.timeline {
		exportFleetTimeline(st, sc.Fleet, sim.Timeline())
	}
	// Detach Sim-owned buffers before the Sim goes out of scope.
	res.Util = append([]float64(nil), res.Util...)
	res.MaxQueueDepth = append([]int32(nil), res.MaxQueueDepth...)
	return printJSON(fleetsimSummary{
		Scenario:        sc,
		GPUs:            fleetNames(st, sc.Fleet),
		Result:          res,
		ElapsedSeconds:  elapsed,
		SimReqPerSec:    float64(res.Requests) / elapsed,
		SimEventsPerSec: float64(res.Events) / elapsed,
	})
}

// fleetsimTable builds the step-time oracle: the model-driven cluster
// fleet under -cluster, a seeded synthetic fleet otherwise.
func fleetsimTable(ff fleetsimFlags) (*fleetsim.StepTable, error) {
	if !ff.cluster {
		return fleetsim.SyntheticStepTable(4, 8, max(ff.maxBatch, 8), ff.seed), nil
	}
	lab := bench.NewLab
	if ff.quick {
		lab = bench.NewQuickLab
	}
	sp := obs.StartPhase("fit fleet oracle")
	models, nets, err := bench.FleetOracle(lab())
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = obs.StartPhase("compile step table")
	defer sp.End()
	return fleetsim.BuildStepTable(models, nets, max(ff.maxBatch, 8))
}

// fleetsimScenario materializes the base scenario, spreading replica GPU
// types round-robin across the table's fleet for heterogeneity.
func fleetsimScenario(ff fleetsimFlags, st *fleetsim.StepTable, name string) fleetsim.Scenario {
	fleet := make([]int32, ff.fleetSize)
	for i := range fleet {
		fleet[i] = int32(i % len(st.GPUs()))
	}
	sc := fleetsim.Scenario{
		Name:      name,
		Fleet:     fleet,
		Arrival:   loadgen.Arrival(ff.arrival),
		RateRPS:   ff.rate,
		Requests:  ff.requests,
		MaxBatch:  ff.maxBatch,
		PostProcS: ff.post.Seconds(),
		Policy:    ff.policy,
		Seed:      ff.seed,
	}
	if ff.users > 0 || sc.Arrival == loadgen.Closed {
		sc.Users = ff.users
		sc.ThinkMeanS = ff.think.Seconds()
		sc.HorizonS = ff.horizon.Seconds()
	}
	return sc
}

func runFleetsimSweep(ff fleetsimFlags, st *fleetsim.StepTable) error {
	sizes, err := parseIntList(ff.sweepFleet, []int{ff.fleetSize})
	if err != nil {
		return fmt.Errorf("-sweep-fleet: %w", err)
	}
	rates, err := parseFloatList(ff.sweepRate, []float64{ff.rate})
	if err != nil {
		return fmt.Errorf("-sweep-rate: %w", err)
	}
	policies := []string{ff.policy}
	if ff.sweepPolicy != "" {
		policies = strings.Split(ff.sweepPolicy, ",")
	}
	base := fleetsimScenario(ff, st, "base")
	base.Fleet = nil // Grid sets FleetSize per cell; all replicas GPU type 0
	grid := fleetsim.Grid(base, sizes, rates, policies)

	sp := obs.StartPhase("capacity sweep")
	start := time.Now()
	results, err := fleetsim.Sweep(st, grid, ff.workers)
	elapsed := time.Since(start).Seconds()
	sp.End()
	if err != nil {
		return err
	}
	return printJSON(fleetsimSweepSummary{
		GPUs:           st.GPUs(),
		P99TargetS:     ff.p99Target.Seconds(),
		Grid:           results,
		MinFleetForP99: fleetsim.MinFleetForP99(results, ff.p99Target.Seconds()),
		ElapsedSeconds: elapsed,
	})
}

// exportFleetTimeline maps the simulated batch spans onto the Chrome
// tracer: one track per replica, one complete event per executed batch,
// simulated seconds mapped 1:1 onto trace nanoseconds-since-epoch.
func exportFleetTimeline(st *fleetsim.StepTable, fleet []int32, spans []fleetsim.BatchSpan) {
	tr := obs.CurrentTracer()
	if tr == nil {
		return
	}
	nets := st.Nets()
	tracks := make([]int64, len(fleet))
	for r := range tracks {
		tracks[r] = tr.ReserveTrack()
	}
	names := fleetNames(st, fleet)
	for _, s := range spans {
		tr.Complete(obs.TraceEvent{
			Name:  fmt.Sprintf("%s b%d", nets[s.Net], s.Size),
			Cat:   obs.TaskCat,
			Track: tracks[s.Replica],
			Start: time.Duration(s.StartS * float64(time.Second)),
			Dur:   time.Duration(s.DurS * float64(time.Second)),
			Args:  []obs.Arg{{Key: "replica", Val: names[s.Replica]}},
		})
	}
}

// fleetNames labels each replica "r<idx>:<gpu type>".
func fleetNames(st *fleetsim.StepTable, fleet []int32) []string {
	names := make([]string, len(fleet))
	for r, g := range fleet {
		names[r] = fmt.Sprintf("r%02d:%s", r, st.GPUs()[g])
	}
	return names
}

func parseIntList(s string, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloatList(s string, def []float64) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
