// Command dnnperf reproduces the paper's experiments and exposes the
// library's workflows from the command line.
//
// Usage:
//
//	dnnperf [flags] <command>
//
// Commands:
//
//	zoo       summarize the 646-network zoo
//	trace     print a profiler trace (the Figure 2 layer↔kernel view);
//	          with -o, also write it as Chrome trace-event JSON
//	collect   collect a dataset and write it as CSV files
//	train     fit the E2E/LW/KW models on one GPU and print summaries
//	predict   predict one network's time with the KW model
//	serve     run the HTTP prediction service (/predict, /predict/batch,
//	          /metrics, /metrics.json, /healthz, /readyz, /modelz,
//	          expvar, pprof)
//	fleet     run N serve replicas behind the consistent-hash sharding
//	          proxy (health-aware routing, admission control, /fleetz)
//	loadtest  boot a fleet, drive open-loop load through the proxy, and
//	          print a throughput/latency summary JSON
//	sched     schedule a cluster-scale task queue (default: synthetic
//	          10⁶ tasks × 8 GPUs; -cluster uses model-predicted times)
//	          and print a JSON summary with makespan, lower bound,
//	          optimality gap and tasks/sec
//	fleetsim  replay an arrival trace against a simulated GPU fleet with
//	          compiled-plan step times (-cluster; default: synthetic
//	          oracle) and print latency percentiles, utilization and
//	          queue depths; -sweep-fleet/-sweep-rate/-sweep-policy fan a
//	          capacity grid, -o writes the batch timeline as a Perfetto
//	          trace
//	table1, fig3…fig9, fig11…fig19, table2
//	          regenerate one table/figure of the paper
//	all       regenerate every table and figure
//
// Flags:
//
//	-quick      use the reduced lab (1-in-6 zoo sample, fewer batches)
//	-gpu NAME   GPU for single-GPU commands (default A100)
//	-network N  network name for trace/predict (default resnet50)
//	-batch N    batch size for trace/predict (default 512)
//	-out DIR    output directory for collect (default ./dataset)
//	-addr ADDR  listen address for serve (default localhost:8080)
//	-timing     report per-phase wall time from the observability spans
//	-o FILE     write a Chrome trace-event JSON of the run (Perfetto-loadable)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/zoo"
)

// profileTrace runs one network on the device substrate with the paper's
// measurement protocol.
func profileTrace(net *dnn.Network, batch int, g gpu.Spec) (*profiler.Trace, error) {
	return profiler.New(sim.NewDefault(g)).Profile(net, batch)
}

func main() {
	quick := flag.Bool("quick", false, "use the reduced lab (faster, noisier)")
	gpuName := flag.String("gpu", "A100", "GPU name for single-GPU commands")
	network := flag.String("network", "resnet50", "network name for trace/predict")
	batch := flag.Int("batch", 512, "batch size for trace/predict")
	out := flag.String("out", "dataset", "output directory for collect/export")
	modelPath := flag.String("model", "", "model file: written by train, read by predict")
	addr := flag.String("addr", "localhost:8080", "listen address for serve")
	timing := flag.Bool("timing", false, "report per-phase wall time (observability spans)")
	traceOut := flag.String("o", "", "write a Chrome trace-event JSON of the run to this file")
	fleetTraceOut := flag.String("trace-o", "", "fleet/loadtest: write a merged Perfetto trace of the proxy and every replica to this file")
	replicas := flag.Int("replicas", 4, "replica count for fleet/loadtest")
	maxInflight := flag.Int("max-inflight", 256, "per-replica in-flight cap for fleet/loadtest admission control")
	rate := flag.Float64("rate", 200, "offered request rate (rps) for loadtest")
	duration := flag.Duration("duration", 10*time.Second, "loadtest run length including warm-up")
	warmup := flag.Duration("warmup", 2*time.Second, "loadtest warm-up window excluded from the measurements")
	arrival := flag.String("arrival", "poisson", "loadtest arrival schedule: poisson, bursty or closed")
	seed := flag.Int64("seed", 1, "randomness seed for loadtest/sched")
	tasks := flag.Int("tasks", 1_000_000, "sched: task count of the scheduling instance")
	fleetSize := flag.Int("fleet-size", 8, "sched: GPU count of the synthetic fleet")
	cluster := flag.Bool("cluster", false, "sched/fleetsim: model-driven fleet instead of the synthetic instance")
	requests := flag.Int("requests", 100_000, "fleetsim: open-loop trace length in requests")
	maxBatch := flag.Int("max-batch", 8, "fleetsim: replica batch-size cap")
	policy := flag.String("policy", "jsq", "fleetsim: dispatch policy (jsq, rr, lpt, inorder, search)")
	users := flag.Int("users", 0, "fleetsim: closed-loop virtual user count (0 = open loop)")
	think := flag.Duration("think", 50*time.Millisecond, "fleetsim: closed-loop mean think time")
	horizon := flag.Duration("horizon", 60*time.Second, "fleetsim: closed-loop simulated horizon")
	postProc := flag.Duration("post-proc", 200*time.Microsecond, "fleetsim: per-request post-processing time")
	sweepFleet := flag.String("sweep-fleet", "", "fleetsim: comma-separated fleet sizes to sweep")
	sweepRate := flag.String("sweep-rate", "", "fleetsim: comma-separated arrival rates (rps) to sweep")
	sweepPolicy := flag.String("sweep-policy", "", "fleetsim: comma-separated policies to sweep")
	p99Target := flag.Duration("p99-target", 250*time.Millisecond, "fleetsim sweep: p99 target for the capacity answer")
	sweepWorkers := flag.Int("sweep-workers", 0, "fleetsim sweep: concurrent scenario workers (0 = GOMAXPROCS)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	// -timing and -o both enable observation: spans feed the per-phase
	// report and the Chrome trace export.
	if *timing || *traceOut != "" {
		obs.SetEnabled(true)
		obs.SetTracer(obs.NewTracer())
	}

	g, err := gpu.ByName(*gpuName)
	if err != nil {
		fatal(err)
	}
	lab := bench.NewLab
	if *quick {
		lab = bench.NewQuickLab
	}

	switch cmd {
	case "zoo":
		runZoo()
	case "trace":
		runTrace(*network, *batch, g)
	case "collect":
		runCollect(lab(), g, *out)
	case "train":
		runTrain(lab(), g, *modelPath)
	case "predict":
		runPredict(lab(), g, *network, *batch, *modelPath)
	case "serve":
		if err := runServe(lab(), g, *addr); err != nil {
			fatal(err)
		}
	case "fleet":
		ff := fleetFlags{replicas: *replicas, maxInflight: *maxInflight, traceOut: *fleetTraceOut}
		if err := runFleet(*quick, *gpuName, *addr, ff); err != nil {
			fatal(err)
		}
	case "loadtest":
		ff := fleetFlags{
			replicas: *replicas, maxInflight: *maxInflight,
			rate: *rate, duration: *duration, warmup: *warmup,
			arrival: *arrival, seed: *seed, traceOut: *fleetTraceOut,
		}
		if err := runLoadtest(*quick, *gpuName, *network, ff); err != nil {
			fatal(err)
		}
	case "sched":
		if err := runSched(lab(), *tasks, *fleetSize, *seed, *cluster); err != nil {
			fatal(err)
		}
	case "fleetsim":
		ff := fleetsimFlags{
			fleetSize: *fleetSize, requests: *requests, maxBatch: *maxBatch,
			rate: *rate, arrival: *arrival, policy: *policy,
			users: *users, think: *think, horizon: *horizon, post: *postProc,
			seed: *seed, cluster: *cluster, quick: *quick, workers: *sweepWorkers,
			sweepFleet: *sweepFleet, sweepRate: *sweepRate, sweepPolicy: *sweepPolicy,
			p99Target: *p99Target, timeline: *traceOut != "",
		}
		if err := runFleetsim(ff); err != nil {
			fatal(err)
		}
	case "all":
		runAll(lab())
	case "plots":
		runPlots(lab())
	case "export":
		sp := obs.StartPhase("export")
		err := bench.Export(lab(), *out)
		sp.End()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("figure data written to %s/\n", *out)
	default:
		if fn, ok := experiments()[cmd]; ok {
			sp := obs.StartPhase(cmd)
			text, err := fn(lab())
			sp.End()
			if err != nil {
				fatal(err)
			}
			fmt.Print(text)
		} else {
			fmt.Fprintf(os.Stderr, "dnnperf: unknown command %q\n\n", cmd)
			usage()
			os.Exit(2)
		}
	}

	if *timing {
		printTiming()
	}
	if *traceOut != "" {
		if err := writeChromeTrace(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace written to %s (load it at https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
}

// printTiming renders the per-phase wall-time report the three ad-hoc
// time.Now blocks used to approximate, now sourced from the span tracer so
// every subcommand reports consistently.
func printTiming() {
	tr := obs.CurrentTracer()
	if tr == nil {
		return
	}
	evs := tr.Events()
	var total, phases int
	fmt.Println("\ntiming (phases):")
	for _, ev := range evs {
		if ev.Cat != obs.PhaseCat {
			continue
		}
		phases++
		fmt.Printf("  %-28s %12v\n", ev.Name, ev.Dur.Round(10e3))
	}
	if phases == 0 {
		fmt.Println("  (no phases recorded)")
	}
	total = len(evs)
	fmt.Printf("  %d spans recorded in total\n", total)
}

// writeChromeTrace dumps the tracer's spans as Chrome trace-event JSON.
func writeChromeTrace(path string) error {
	tr := obs.CurrentTracer()
	if tr == nil {
		return fmt.Errorf("dnnperf: no tracer active for -o")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// experiment is a runnable table/figure generator.
type experiment func(*bench.Lab) (string, error)

// experiments maps command names to generators, all on the canonical GPUs.
func experiments() map[string]experiment {
	render := func(r interface{ Render() string }, err error) (string, error) {
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}
	return map[string]experiment{
		"table1":      func(*bench.Lab) (string, error) { return bench.Table1().Render(), nil },
		"fig3":        func(l *bench.Lab) (string, error) { return render(bench.Figure3(l, gpu.A100)) },
		"fig4":        func(l *bench.Lab) (string, error) { return render(bench.Figure4(l, gpu.A100)) },
		"fig5":        func(l *bench.Lab) (string, error) { return render(bench.Figure5(l, gpu.A100)) },
		"fig6":        func(l *bench.Lab) (string, error) { return render(bench.Figure6(l, gpu.A100)) },
		"fig7":        func(l *bench.Lab) (string, error) { return render(bench.Figure7(l, gpu.A100)) },
		"fig8":        func(l *bench.Lab) (string, error) { return render(bench.Figure8(l, gpu.A100)) },
		"fig9":        func(l *bench.Lab) (string, error) { return render(bench.Figure9(l)) },
		"fig11":       func(l *bench.Lab) (string, error) { return render(bench.Figure11(l, gpu.A100)) },
		"fig12":       func(l *bench.Lab) (string, error) { return render(bench.Figure12(l, gpu.A100)) },
		"fig13":       func(l *bench.Lab) (string, error) { return render(bench.Figure13(l, gpu.A100)) },
		"table2":      func(l *bench.Lab) (string, error) { return render(bench.Table2(l)) },
		"fig14":       func(l *bench.Lab) (string, error) { return render(bench.Figure14(l)) },
		"fig15":       func(l *bench.Lab) (string, error) { return render(bench.Figure15(l)) },
		"fig16":       func(l *bench.Lab) (string, error) { return render(bench.Figure16(l)) },
		"fig17":       func(l *bench.Lab) (string, error) { return render(bench.Figure17(l)) },
		"fig18":       func(l *bench.Lab) (string, error) { return render(bench.Figure18(l)) },
		"fig19":       func(l *bench.Lab) (string, error) { return render(bench.Figure19(l)) },
		"ablation":    func(l *bench.Lab) (string, error) { return render(bench.Ablation(l, gpu.A100)) },
		"training":    func(l *bench.Lab) (string, error) { return render(bench.TrainingExtension(l, gpu.A100)) },
		"mig":         func(l *bench.Lab) (string, error) { return render(bench.MIGExtension(l)) },
		"smallbatch":  func(l *bench.Lab) (string, error) { return render(bench.SmallBatch(l, gpu.A100)) },
		"uncertainty": func(l *bench.Lab) (string, error) { return render(bench.Uncertainty(l, gpu.A100)) },
		"robustness": func(l *bench.Lab) (string, error) {
			return render(bench.Robustness(l, gpu.A100, []int64{0, 1, 2, 3, 4}))
		},
		"online": func(l *bench.Lab) (string, error) { return render(bench.OnlineLearning(l, gpu.A100)) },
	}
}

// experimentOrder lists the "all" run in paper order.
var experimentOrder = []string{
	"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
	"fig11", "fig12", "fig13", "table2", "fig14",
	"fig15", "fig16", "fig17", "fig18", "fig19", "ablation", "training", "mig", "smallbatch", "uncertainty", "robustness", "online",
}

func runAll(l *bench.Lab) {
	exps := experiments()
	all := obs.StartPhase("all")
	for _, name := range experimentOrder {
		sp := obs.StartPhase(name)
		text, err := exps[name](l)
		sp.End()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Print(text)
		fmt.Println()
	}
	all.End()
	fmt.Printf("all %d experiments regenerated\n", len(experimentOrder))
}

// runPlots renders the data-rich figures as terminal charts.
func runPlots(l *bench.Lab) {
	sp := obs.StartPhase("plots")
	defer sp.End()
	f3, err := bench.Figure3(l, gpu.A100)
	if err != nil {
		fatal(err)
	}
	var xs, ys []float64
	for _, p := range f3.Points {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	chart, err := plot.Scatter("Figure 3: execution time vs FLOPs (A100, all networks, BS ≥ 4)",
		"GFLOPs", "exec ms", xs, ys, 72, 20)
	if err != nil {
		fatal(err)
	}
	fmt.Println(chart)

	f13, err := bench.Figure13(l, gpu.A100)
	if err != nil {
		fatal(err)
	}
	ratios := core.SortedRatios(f13.Curve.Evals)
	chart, err = plot.SCurve(fmt.Sprintf("Figure 13: KW predictions on A100 (avg error %.3f)", f13.Curve.MeanError),
		ratios, 72, 16)
	if err != nil {
		fatal(err)
	}
	fmt.Println(chart)

	f15, err := bench.Figure15(l)
	if err != nil {
		fatal(err)
	}
	xs, ys = nil, nil
	for _, p := range f15.Points {
		xs = append(xs, p.BandwidthGBps)
		ys = append(ys, p.PredictedMs)
	}
	chart, err = plot.Curve("Figure 15: ResNet-50 on TITAN RTX with modified bandwidth (¦ = native 672 GB/s)",
		"bandwidth GB/s", "predicted ms", xs, ys, f15.NativeGBps, 72, 16)
	if err != nil {
		fatal(err)
	}
	fmt.Println(chart)
}

func runZoo() {
	nets := zoo.Full()
	families := map[string]int{}
	for _, n := range nets {
		families[n.Family]++
	}
	names := make([]string, 0, len(families))
	for f := range families {
		names = append(names, f)
	}
	sort.Strings(names)
	fmt.Printf("%d networks in %d families:\n", len(nets), len(families))
	for _, f := range names {
		fmt.Printf("  %-14s %d\n", f, families[f])
	}
}

func runTrace(network string, batch int, g gpu.Spec) {
	sp := obs.StartPhase("profile " + network)
	net, err := zoo.ByName(network)
	if err != nil {
		fatal(err)
	}
	tr, err := profileTrace(net, batch, g)
	sp.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace of %s (batch %d) on %s — E2E %.3f ms, kernel sum %.3f ms\n",
		tr.Network, tr.BatchSize, tr.GPU, tr.E2ETime*1e3, tr.KernelSum*1e3)
	fmt.Printf("%-4s %-28s %-14s %-34s %10s\n", "idx", "layer", "kind", "kernel", "time (µs)")
	for _, l := range tr.Layers {
		for i, ev := range l.Kernels {
			layerCol := ""
			if i == 0 {
				layerCol = l.Name
			}
			fmt.Printf("%-4d %-28s %-14s %-34s %10.2f\n",
				l.Index, layerCol, l.Kind, ev.Name, ev.Duration*1e6)
		}
	}
	// With -o active, replay the layer↔kernel timeline onto the tracer so
	// the exported Chrome trace shows the Figure 2 view on two tracks.
	addProfilerTimeline(tr)
}

func runCollect(l *bench.Lab, g gpu.Spec, out string) {
	sp := obs.StartPhase("collect " + g.Name)
	ds, err := l.Dataset(g)
	if err != nil {
		fatal(err)
	}
	if err := ds.WriteDir(out); err != nil {
		fatal(err)
	}
	sp.End()
	fmt.Printf("collected %s\nwritten to %s/{%s,%s,%s}\n", ds.Summary(), out,
		dataset.NetworksCSV, dataset.LayersCSV, dataset.KernelsCSV)
}

func runTrain(l *bench.Lab, g gpu.Spec, modelPath string) {
	sp := obs.StartPhase("dataset " + g.Name)
	ds, err := l.Dataset(g)
	sp.End()
	if err != nil {
		fatal(err)
	}
	train, test := l.Split(ds)
	fmt.Printf("dataset: %s\n", ds.Summary())

	sp = obs.StartPhase("fit E2E")
	e2e, err := core.FitE2E(train, g.Name, bench.TrainBatch)
	sp.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("E2E model: %s\n", e2e.Line)

	sp = obs.StartPhase("fit LW")
	lw, err := core.FitLW(train, g.Name, bench.TrainBatch)
	sp.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("LW model: %d layer-type regressions\n", len(lw.Lines))

	sp = obs.StartPhase("fit KW")
	kw, err := core.FitKW(train, g.Name, bench.TrainBatch)
	sp.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("KW model: %d kernels → %d regression models, %d mapping-table entries\n",
		kw.KernelCount(), kw.ModelCount(), len(kw.Mapping))

	sp = obs.StartPhase("evaluate held-out")
	for _, m := range []core.Predictor{e2e, lw, kw} {
		var evals []core.Eval
		for _, r := range test.Networks {
			if r.GPU != g.Name || r.BatchSize != bench.TrainBatch {
				continue
			}
			net, err := l.Network(r.Network)
			if err != nil {
				fatal(err)
			}
			pred, err := m.PredictNetwork(net, bench.TrainBatch)
			if err != nil {
				fatal(err)
			}
			evals = append(evals, core.Eval{Network: r.Network, Predicted: pred, Measured: r.E2ESeconds})
		}
		fmt.Printf("%-4s test error: %.3f over %d held-out networks\n",
			m.Name(), core.MeanRelError(evals), len(evals))
	}
	sp.End()

	if modelPath != "" {
		if err := core.SaveFile(modelPath, kw); err != nil {
			fatal(err)
		}
		fmt.Printf("KW model written to %s\n", modelPath)
	}
}

func runPredict(l *bench.Lab, g gpu.Spec, network string, batch int, modelPath string) {
	var model core.Predictor
	if modelPath != "" {
		// Prediction from a distributed model file: no measurements needed.
		sp := obs.StartPhase("load model")
		m, err := core.LoadFile(modelPath)
		sp.End()
		if err != nil {
			fatal(err)
		}
		model = m
	} else {
		sp := obs.StartPhase("dataset " + g.Name)
		ds, err := l.Dataset(g)
		sp.End()
		if err != nil {
			fatal(err)
		}
		train, _ := l.Split(ds)
		sp = obs.StartPhase("fit KW")
		kw, err := core.FitKW(train, g.Name, bench.TrainBatch)
		sp.End()
		if err != nil {
			fatal(err)
		}
		model = kw
	}
	net, err := l.Network(network)
	if err != nil {
		fatal(err)
	}
	sp := obs.StartPhase("predict " + network)
	p, err := model.PredictNetwork(net, batch)
	sp.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s-predicted time of %s (batch %d) on %s: %.3f ms\n",
		model.Name(), network, batch, model.GPUName(), p.Float64()*1e3)
}

func usage() {
	fmt.Fprintf(os.Stderr, `dnnperf — DNN-on-GPU execution time prediction (MICRO'23 reproduction)

usage: dnnperf [flags] <command>

commands:
  zoo | trace | collect | train | predict | serve | fleet | loadtest | sched | fleetsim | all | export | plots
  table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9
  fig11 fig12 fig13 table2 fig14 fig15 fig16 fig17 fig18 fig19 ablation training mig smallbatch uncertainty robustness online

flags:
`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnnperf:", err)
	os.Exit(1)
}
