//go:build race

package main

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so exact allocs-per-run assertions skip.
const raceEnabled = true
