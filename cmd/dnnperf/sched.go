package main

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/sched"
)

// The sched subcommand benchmarks the cluster-scale makespan optimizer.
// By default it schedules a seeded synthetic queue (1M tasks × 8 GPUs) and
// prints a JSON summary; with -cluster it runs the model-driven case-study
// variant, predicting the time table with the interpolated base model and
// scheduling the paper's nine-network mix across the hypothetical fleet.

// schedSummary is the JSON output of the synthetic benchmark.
type schedSummary struct {
	Tasks             int     `json:"tasks"`
	Fleet             int     `json:"fleet"`
	Seed              int64   `json:"seed"`
	MakespanSeconds   float64 `json:"makespan_s"`
	LowerBoundSeconds float64 `json:"lower_bound_s"`
	Gap               float64 `json:"gap"`
	ElapsedSeconds    float64 `json:"elapsed_s"`
	TasksPerSec       float64 `json:"tasks_per_sec"`
	MovesTried        int64   `json:"moves_tried"`
	MovesAccepted     int64   `json:"moves_accepted"`
	SwapsTried        int64   `json:"swaps_tried"`
	SwapsAccepted     int64   `json:"swaps_accepted"`
	Restarts          int     `json:"restarts"`
	BestRestart       int     `json:"best_restart"`
}

func runSched(l *bench.Lab, tasks, fleet int, seed int64, cluster bool) error {
	if tasks <= 0 {
		return fmt.Errorf("-tasks %d: task count must be positive", tasks)
	}
	if fleet <= 0 {
		return fmt.Errorf("-fleet-size %d: fleet size must be positive", fleet)
	}
	if cluster {
		sp := obs.StartPhase("cluster schedule")
		res, err := bench.ClusterSchedule(l, tasks, seed)
		sp.End()
		if err != nil {
			return err
		}
		return printJSON(res)
	}

	sp := obs.StartPhase("synthetic instance")
	dt := sched.Synthetic(tasks, fleet, seed)
	sp.End()

	sp = obs.StartPhase("schedule")
	start := time.Now()
	res, err := sched.Schedule(dt, sched.SearchOptions{Seed: seed})
	elapsed := time.Since(start).Seconds()
	sp.End()
	if err != nil {
		return err
	}
	return printJSON(schedSummary{
		Tasks: tasks, Fleet: fleet, Seed: seed,
		MakespanSeconds:   res.Makespan,
		LowerBoundSeconds: res.LowerBound,
		Gap:               res.Gap,
		ElapsedSeconds:    elapsed,
		TasksPerSec:       float64(tasks) / elapsed,
		MovesTried:        res.MovesTried, MovesAccepted: res.MovesAccepted,
		SwapsTried: res.SwapsTried, SwapsAccepted: res.SwapsAccepted,
		Restarts: res.Restarts, BestRestart: res.BestRestart,
	})
}

func printJSON(v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	return nil
}
