package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/obs"
)

// The serve subcommand turns dnnperf into a small prediction service with a
// first-class telemetry surface:
//
//	GET /healthz       liveness + model readiness, JSON
//	GET /metrics       obs registry, Prometheus text exposition format
//	GET /metrics.json  obs registry, JSON snapshot
//	GET /predict       KW prediction: ?network=resnet50&batch=64
//	GET /debug/vars    expvar (includes the obs snapshot under "obs")
//	GET /debug/pprof/  runtime profiling endpoints
//
// The KW model is fitted in the background at startup so /healthz responds
// immediately; /predict returns 503 until the model is ready.

// Serve-layer metrics.
var (
	metricServeRequests = obs.Default().Counter("serve_requests_total",
		"HTTP requests handled by dnnperf serve.")
	metricServeErrors = obs.Default().Counter("serve_request_errors_total",
		"HTTP requests answered with a 4xx/5xx status.")
	metricServeLatency = obs.Default().Histogram("serve_request_seconds",
		"HTTP request handling latency.", nil)
	metricServePredictions = obs.Default().Counter("serve_predictions_total",
		"Successful /predict responses.")
)

// server holds the serving state: the lab (for networks), the device, and
// the asynchronously fitted model.
type server struct {
	lab   *bench.Lab
	gpu   gpu.Spec
	start time.Time

	model    atomic.Pointer[core.KWModel]
	modelErr atomic.Pointer[error]
}

// runServe fits the model in the background and serves until the process is
// killed.
func runServe(l *bench.Lab, g gpu.Spec, addr string) error {
	obs.SetEnabled(true)
	s := &server{lab: l, gpu: g, start: time.Now()}

	go func() {
		sp := obs.StartSpan("serve model warm-up " + g.Name)
		defer sp.End()
		ds, err := l.Dataset(g)
		if err != nil {
			s.modelErr.Store(&err)
			return
		}
		train, _ := l.Split(ds)
		kw, err := core.FitKW(train, g.Name, bench.TrainBatch)
		if err != nil {
			s.modelErr.Store(&err)
			return
		}
		s.model.Store(kw)
	}()

	// The obs snapshot doubles as an expvar so the standard /debug/vars
	// surface carries it alongside memstats and cmdline.
	expvar.Publish("obs", expvar.Func(func() any { return obs.Default().SnapshotJSON() }))

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument(s.handleHealthz))
	mux.HandleFunc("/metrics", s.instrument(s.handleMetrics))
	mux.HandleFunc("/metrics.json", s.instrument(s.handleMetricsJSON))
	mux.HandleFunc("/predict", s.instrument(s.handlePredict))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	fmt.Printf("dnnperf: serving on http://%s (endpoints: /healthz /metrics /metrics.json /predict /debug/vars /debug/pprof/)\n", addr)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}

// statusRecorder captures the handler's status code for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the serve-layer metrics.
func (s *server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		tm := obs.StartTimer(metricServeLatency)
		metricServeRequests.Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, req)
		if rec.status >= 400 {
			metricServeErrors.Inc()
		}
		tm.Stop()
	}
}

// handleHealthz reports liveness plus model readiness. It always answers
// 200 while the process lives; readiness is in the body so orchestration
// can distinguish "up" from "warm".
func (s *server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	type health struct {
		Status        string  `json:"status"`
		ModelReady    bool    `json:"model_ready"`
		ModelError    string  `json:"model_error,omitempty"`
		GPU           string  `json:"gpu"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	h := health{Status: "ok", GPU: s.gpu.Name, UptimeSeconds: time.Since(s.start).Seconds()}
	h.ModelReady = s.model.Load() != nil
	if errp := s.modelErr.Load(); errp != nil {
		h.Status = "degraded"
		h.ModelError = (*errp).Error()
	}
	writeJSON(w, http.StatusOK, h)
}

// handleMetrics serves the Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.Default().WritePrometheus(w); err != nil {
		// Headers are gone; nothing to do but note it.
		metricServeErrors.Inc()
	}
}

// handleMetricsJSON serves the registry snapshot as JSON.
func (s *server) handleMetricsJSON(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.Default().WriteJSON(w); err != nil {
		metricServeErrors.Inc()
	}
}

// handlePredict serves one KW prediction:
// /predict?network=resnet50&batch=64.
func (s *server) handlePredict(w http.ResponseWriter, req *http.Request) {
	m := s.model.Load()
	if m == nil {
		msg := "model warming up"
		if errp := s.modelErr.Load(); errp != nil {
			msg = "model fit failed: " + (*errp).Error()
		}
		writeJSONError(w, http.StatusServiceUnavailable, msg)
		return
	}
	name := req.URL.Query().Get("network")
	if name == "" {
		writeJSONError(w, http.StatusBadRequest, "missing ?network=")
		return
	}
	batch := 512
	if b := req.URL.Query().Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil || v <= 0 {
			writeJSONError(w, http.StatusBadRequest, "batch must be a positive integer")
			return
		}
		batch = v
	}
	net, err := s.lab.Network(name)
	if err != nil {
		writeJSONError(w, http.StatusNotFound, err.Error())
		return
	}
	pred, err := m.PredictNetwork(net, batch)
	if err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	metricServePredictions.Inc()
	type prediction struct {
		Model       string  `json:"model"`
		GPU         string  `json:"gpu"`
		Network     string  `json:"network"`
		Batch       int     `json:"batch"`
		PredictedMs float64 `json:"predicted_ms"`
	}
	writeJSON(w, http.StatusOK, prediction{
		Model:       m.Name(),
		GPU:         m.GPUName(),
		Network:     name,
		Batch:       batch,
		PredictedMs: pred.Float64() * 1e3,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	type errBody struct {
		Error string `json:"error"`
	}
	writeJSON(w, status, errBody{Error: msg})
}
