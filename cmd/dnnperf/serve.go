package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unicode/utf8"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/units"
)

// The serve subcommand turns dnnperf into a small prediction service with a
// first-class telemetry surface:
//
//	GET  /healthz        liveness (always 200 while the process runs), JSON
//	GET  /readyz         readiness: 200 once the model is warmed, else 503
//	GET  /modelz         model registry introspection: version + history
//	POST /modelz         hot-swap: publish a core.Save model envelope
//	GET  /metrics        obs registry, Prometheus text exposition format
//	GET  /metrics.json   obs registry, JSON snapshot
//	GET  /predict        KW prediction: ?network=resnet50&batch=64
//	GET  /predict/batch  sweep prediction: ?network=resnet50&batches=1,2,4
//	POST /predict/batch  sweep prediction; JSON body names a zoo network or
//	                     carries an inline layer-by-layer network spec
//	GET  /debug/vars     expvar (includes the obs snapshot under "obs")
//	GET  /debug/pprof/   runtime profiling endpoints
//
// The KW model is fitted in the background at startup and published into a
// versioned registry, so /healthz responds immediately; the predict endpoints
// return 503 until the first snapshot lands. Later POSTs to /modelz hot-swap
// the serving model atomically — requests already past loadModel finish on
// the snapshot they loaded, so a swap never drops an in-flight prediction.
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, in-flight
// requests get up to shutdownDrain to finish, then the process exits.
//
// Every endpoint runs under uniform protective limits: the http.Server
// enforces read-header/read/write/idle timeouts, and any request that
// carries a body (on any route) is capped by http.MaxBytesReader.
//
// The single-prediction path is allocation-free in steady state: query
// parameters are read straight from the raw query string, the network is
// resolved through a sharded cache, the prediction comes off the compiled
// plan, and the response is rendered by hand into a pooled buffer.
// /predict/batch additionally coalesces identical concurrent sweeps: requests
// for the same (network fingerprint, batches) join the in-flight computation
// instead of repeating it.

// Serve-layer metrics.
var (
	metricServeRequests = obs.Default().Counter("serve_requests_total",
		"HTTP requests handled by dnnperf serve.")
	metricServeErrors = obs.Default().Counter("serve_request_errors_total",
		"HTTP requests answered with a 4xx/5xx status.")
	metricServeLatency = obs.Default().Histogram("serve_request_seconds",
		"HTTP request handling latency.", nil)
	metricServePredictions = obs.Default().Counter("serve_predictions_total",
		"Successful predictions served (one per batch size on /predict/batch).")
	metricServeBatchRequests = obs.Default().Counter("serve_batch_requests_total",
		"Requests to /predict/batch.")
	metricServeCoalesced = obs.Default().Counter("serve_coalesced_requests_total",
		"Sweep requests that joined an identical in-flight computation instead of starting their own.")
	metricServe5xx = obs.Default().Counter("serve_request_5xx_total",
		"HTTP requests answered with a 5xx status (the SLO availability bad-event count).")
)

// shutdownDrain bounds how long a graceful shutdown waits for in-flight
// requests after SIGINT/SIGTERM.
const shutdownDrain = 10 * time.Second

// maxBatchBody bounds the /predict/batch POST body; larger bodies get 413.
const maxBatchBody = 1 << 20

// maxModelBody bounds the /modelz POST body (a full coefficient-set
// envelope, which runs larger than a prediction request).
const maxModelBody = 8 << 20

// Uniform per-request server deadlines. ReadHeaderTimeout bounds slow-loris
// header dribble; ReadTimeout and WriteTimeout bound one whole request and
// response so a stuck client cannot pin a handler goroutine forever.
const (
	serveReadHeaderTimeout = 5 * time.Second
	serveReadTimeout       = 30 * time.Second
	serveWriteTimeout      = 60 * time.Second
	serveIdleTimeout       = 120 * time.Second
)

// maxSweepPoints bounds the batches list of one sweep request.
const maxSweepPoints = 4096

// netKey keys the server-side network cache by name.
type netKey string

// Hash implements cache.Hasher (FNV-1a).
func (k netKey) Hash() uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

// sweepFlight is one in-flight batch sweep; joiners wait on done and share
// the (read-only) result.
type sweepFlight struct {
	done chan struct{}
	out  []units.Seconds
	err  error
}

// server holds the serving state: the lab (for networks), the device, and
// the versioned model registry the warm-up fit publishes into.
type server struct {
	lab   *bench.Lab
	gpu   gpu.Spec
	start time.Time

	reg      *registry.Registry
	modelErr atomic.Pointer[error]

	// nets caches name → network so the hot path never rebuilds a standard
	// model that fell outside the lab's sample.
	nets cache.Sharded[netKey, *dnn.Network]

	// tracer holds the replica's span buffer; reqTrack is the single
	// reserved track every request span lands on, so the process renders
	// as one timeline row. procName labels the process in merged traces.
	tracer   *obs.Tracer
	reqTrack int64
	procName string

	// slo tracks availability and latency burn rates over the serve-layer
	// request counters and latency histogram.
	slo *obs.SLOTracker

	mu       sync.Mutex
	inflight map[string]*sweepFlight
}

func newServer(l *bench.Lab, g gpu.Spec) *server {
	s := &server{
		lab: l, gpu: g, start: time.Now(),
		reg:      registry.New(),
		inflight: map[string]*sweepFlight{},
		tracer:   obs.NewTracer(),
		procName: "replica",
	}
	s.reqTrack = s.tracer.ReserveTrack()
	s.slo = obs.NewSLOTracker(obs.SLOConfig{},
		metricServeRequests.Value, metricServe5xx.Value, metricServeLatency)
	s.reg.RegisterMetrics("serve_model")
	return s
}

// runServe fits the model in the background and serves until the process
// receives SIGINT or SIGTERM, then drains gracefully.
func runServe(l *bench.Lab, g gpu.Spec, addr string) error {
	obs.SetEnabled(true)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return newServer(l, g).serveUntil(ctx, addr, nil)
}

// startWarmup kicks off the background model fit; the result is published
// into the registry as version 1. It is a no-op when a snapshot is already
// installed (tests pre-fit servers).
func (s *server) startWarmup() {
	if s.reg.Current() != nil {
		return
	}
	go func() {
		sp := obs.StartSpan("serve model warm-up " + s.gpu.Name)
		defer sp.End()
		ds, err := s.lab.Dataset(s.gpu)
		if err != nil {
			s.modelErr.Store(&err)
			return
		}
		train, _ := s.lab.Split(ds)
		kw, err := core.FitKW(train, s.gpu.Name, bench.TrainBatch)
		if err != nil {
			s.modelErr.Store(&err)
			return
		}
		if _, err := s.reg.Publish(kw, "warmup"); err != nil {
			s.modelErr.Store(&err)
		}
	}()
}

// publishObsOnce guards the process-global expvar registration so tests can
// build several servers without a duplicate-name panic.
var publishObsOnce sync.Once

// handler assembles the route table.
func (s *server) handler() http.Handler {
	// The obs snapshot doubles as an expvar so the standard /debug/vars
	// surface carries it alongside memstats and cmdline.
	publishObsOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return obs.Default().SnapshotJSON() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("/modelz", s.instrument("modelz", s.handleModelz))
	mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/metrics.json", s.instrument("metrics_json", s.handleMetricsJSON))
	mux.HandleFunc("/predict", s.instrument("predict", s.handlePredict))
	mux.HandleFunc("/predict/batch", s.instrument("predict_batch", s.handlePredictBatch))
	mux.HandleFunc("/sloz", s.instrument("sloz", s.handleSloz))
	mux.HandleFunc("/tracez.json", s.instrument("tracez", s.handleTracez))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveUntil listens on addr and serves until ctx is cancelled, then shuts
// down gracefully, draining in-flight requests for up to shutdownDrain. The
// bound address is sent on ready (if non-nil) once the listener is up, which
// lets tests use ":0".
func (s *server) serveUntil(ctx context.Context, addr string, ready chan<- string) error {
	s.startWarmup()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.procName = "replica " + ln.Addr().String()
	go s.slo.Run(ctx, 2*time.Second)
	fmt.Printf("dnnperf: serving on http://%s (endpoints: /healthz /readyz /modelz /metrics /metrics.json /predict /predict/batch /sloz /tracez.json /debug/vars /debug/pprof/)\n", ln.Addr())
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: serveReadHeaderTimeout,
		ReadTimeout:       serveReadTimeout,
		WriteTimeout:      serveWriteTimeout,
		IdleTimeout:       serveIdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownDrain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// statusRecorder captures the handler's status code for error counting and
// carries the request's trace (nil when unsampled) so handlers can recover it
// through traceOf. Instances are pooled; instrument resets them per request.
type statusRecorder struct {
	http.ResponseWriter
	status int
	trace  *requestTrace
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// routeStats is one route's RED surface: request rate, error rate, latency.
// Handles are created once at route-table assembly; the registry dedups by
// name, so building several servers in one process shares the same handles.
type routeStats struct {
	requests *obs.Counter
	errors   *obs.Counter
	seconds  *obs.Histogram
}

func newRouteStats(route string) routeStats {
	return routeStats{
		requests: obs.Default().Counter("serve_route_"+route+"_requests_total",
			"Requests handled on the "+route+" route."),
		errors: obs.Default().Counter("serve_route_"+route+"_errors_total",
			"Requests answered with a 4xx/5xx status on the "+route+" route."),
		seconds: obs.Default().Histogram("serve_route_"+route+"_seconds",
			"Request handling latency on the "+route+" route.", nil),
	}
}

// instrument wraps a handler with the serve-layer and per-route metrics, the
// tracing sampling decision, and the uniform request-body cap. Bodyless
// requests (every steady-state GET) skip the MaxBytesReader wrap so the
// zero-allocation /predict path stays free; the sampling decision itself is
// a fixed-shape header parse that allocates only for sampled requests.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rs := newRouteStats(route)
	return func(w http.ResponseWriter, req *http.Request) {
		tm := obs.StartTimer(metricServeLatency)
		rtm := obs.StartTimer(rs.seconds)
		metricServeRequests.Inc()
		rs.requests.Inc()
		rec := recorderPool.Get().(*statusRecorder)
		rec.ResponseWriter, rec.status = w, http.StatusOK
		rec.trace = s.sampleRequest(req)
		rec.trace.echoTraceID(w.Header())
		if req.ContentLength != 0 && req.Body != nil && req.Body != http.NoBody {
			req.Body = http.MaxBytesReader(rec, req.Body, maxModelBody)
		}
		h(rec, req)
		rec.trace.finish(route, rec.status)
		if rec.status >= 400 {
			metricServeErrors.Inc()
			rs.errors.Inc()
		}
		if rec.status >= 500 {
			metricServe5xx.Inc()
		}
		rec.ResponseWriter, rec.trace = nil, nil
		recorderPool.Put(rec)
		rtm.Stop()
		tm.Stop()
	}
}

// handleHealthz reports pure liveness. It always answers 200 while the
// process lives; model readiness stays in the body for dashboards, but
// orchestration that needs a routable signal must use /readyz, whose status
// code actually flips.
func (s *server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	type health struct {
		Status        string  `json:"status"`
		ModelReady    bool    `json:"model_ready"`
		ModelVersion  uint64  `json:"model_version"`
		ModelError    string  `json:"model_error,omitempty"`
		GPU           string  `json:"gpu"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	h := health{Status: "ok", GPU: s.gpu.Name, UptimeSeconds: time.Since(s.start).Seconds()}
	if snap := s.reg.Current(); snap != nil {
		h.ModelReady = true
		h.ModelVersion = snap.Version
	}
	if errp := s.modelErr.Load(); errp != nil {
		h.Status = "degraded"
		h.ModelError = (*errp).Error()
	}
	writeJSON(w, http.StatusOK, h)
}

// handleReadyz reports readiness to serve predictions: 200 with the serving
// model version once the registry holds a snapshot, 503 before that (or
// after a failed warm-up). The fleet proxy routes on this endpoint.
func (s *server) handleReadyz(w http.ResponseWriter, req *http.Request) {
	type readiness struct {
		Ready        bool   `json:"ready"`
		ModelReady   bool   `json:"model_ready"`
		ModelVersion uint64 `json:"model_version"`
		ModelError   string `json:"model_error,omitempty"`
		GPU          string `json:"gpu"`
	}
	rd := readiness{GPU: s.gpu.Name}
	if snap := s.reg.Current(); snap != nil {
		rd.Ready, rd.ModelReady, rd.ModelVersion = true, true, snap.Version
		writeJSON(w, http.StatusOK, rd)
		return
	}
	if errp := s.modelErr.Load(); errp != nil {
		rd.ModelError = (*errp).Error()
	}
	writeJSON(w, http.StatusServiceUnavailable, rd)
}

// handleModelz is the registry surface. GET introspects the serving version
// and the bounded publication history; POST hot-swaps the serving model by
// publishing a core.Save envelope. Requests already holding the previous
// snapshot finish against it, so swaps are invisible to in-flight work.
func (s *server) handleModelz(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		type modelz struct {
			Version uint64           `json:"version"`
			Ready   bool             `json:"ready"`
			GPU     string           `json:"gpu,omitempty"`
			Source  string           `json:"source,omitempty"`
			Kernels int              `json:"kernels,omitempty"`
			Groups  int              `json:"groups,omitempty"`
			History []registry.Entry `json:"history"`
		}
		mz := modelz{History: s.reg.History()}
		if snap := s.reg.Current(); snap != nil {
			mz.Version, mz.Ready, mz.Source = snap.Version, true, snap.Source
			mz.GPU = snap.Model.GPUName()
			mz.Kernels = snap.Model.KernelCount()
			mz.Groups = snap.Model.ModelCount()
		}
		writeJSON(w, http.StatusOK, mz)
	case http.MethodPost:
		pred, err := core.Load(http.MaxBytesReader(w, req.Body, maxModelBody))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeJSONError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", maxModelBody))
				return
			}
			writeJSONError(w, http.StatusBadRequest, "decoding model envelope: "+err.Error())
			return
		}
		kw, ok := pred.(*core.KWModel)
		if !ok {
			writeJSONError(w, http.StatusUnprocessableEntity,
				fmt.Sprintf("model kind %q cannot serve here; want a kw model", pred.Name()))
			return
		}
		snap, err := s.reg.Publish(kw, "modelz-post")
		if err != nil {
			writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"version": snap.Version,
			"gpu":     kw.GPUName(),
			"kernels": kw.KernelCount(),
			"groups":  kw.ModelCount(),
		})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSONError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.Default().WritePrometheus(w); err != nil {
		// Headers are gone; nothing to do but note it.
		metricServeErrors.Inc()
	}
}

// handleMetricsJSON serves the registry snapshot as JSON.
func (s *server) handleMetricsJSON(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.Default().WriteJSON(w); err != nil {
		metricServeErrors.Inc()
	}
}

// loadModel returns the current snapshot's model or writes the 503 warm-up
// response. The single atomic load pins the snapshot for the whole request:
// a concurrent hot-swap replaces the registry's current pointer but never
// touches the model this request already holds. The snapshot-present fast
// path is allocation-free; the 503 rendering below only runs while the
// model is still warming up (or failed to fit).
//
//dnnperf:allocfree
func (s *server) loadModel(w http.ResponseWriter) *core.KWModel {
	if snap := s.reg.Current(); snap != nil {
		return snap.Model
	}
	msg := "model warming up"
	if errp := s.modelErr.Load(); errp != nil {
		//lint:ignore allocfree the fit-failure message renders only before the model is ready
		msg = "model fit failed: " + (*errp).Error()
	}
	//lint:ignore allocfree the 503 path runs only before the model is ready
	writeJSONError(w, http.StatusServiceUnavailable, msg)
	return nil
}

// network resolves a network by name through the server-side cache. The Get
// fast path keeps cache hits allocation-free (GetOrCompute's closure would
// cost one).
//
//dnnperf:allocfree
func (s *server) network(name string) (*dnn.Network, error) {
	if n, ok := s.nets.Get(netKey(name)); ok {
		return n, nil
	}
	//lint:ignore allocfree the GetOrCompute closure allocates only on the first request for a network
	return s.nets.GetOrCompute(netKey(name), func() (*dnn.Network, error) {
		return s.lab.Network(name)
	})
}

// handlePredict serves one KW prediction:
// /predict?network=resnet50&batch=64. The steady-state path allocates
// nothing: the always-on stage histograms go through the value-typed
// stageClock, and the per-stage spans (rt) fire only when the request
// arrived with a sampled traceparent — every rt method is a no-op on nil.
func (s *server) handlePredict(w http.ResponseWriter, req *http.Request) {
	rt := traceOf(w)
	sc := startStages()
	m := s.loadModel(w)
	if m == nil {
		return
	}
	name, _ := queryValue(req.URL.RawQuery, "network")
	if name == "" {
		writeJSONError(w, http.StatusBadRequest, "missing ?network=")
		return
	}
	batch := 512
	if b, ok := queryValue(req.URL.RawQuery, "batch"); ok {
		v, err := strconv.Atoi(b)
		if err != nil || v <= 0 {
			writeJSONError(w, http.StatusBadRequest, "batch must be a positive integer")
			return
		}
		batch = v
	}
	sc = sc.mark(metricStageParse)
	rt.stage("parse")
	net, err := s.network(name)
	if err != nil {
		writeJSONError(w, http.StatusNotFound, err.Error())
		return
	}
	sc = sc.mark(metricStageCache)
	rt.stage("cache_lookup")
	var pred units.Seconds
	if rt != nil {
		// Traced: split compilation from prediction so the timeline
		// attributes plan-cache misses. Predictions are bit-identical to
		// the untraced PredictNetwork path; a plan error falls back to it
		// for the identical error shape.
		if p, perr := m.CompiledPlan(net); perr == nil {
			rt.stage("compile")
			pred = p.Predict(batch)
			rt.stage("predict")
		} else {
			pred, err = m.PredictNetwork(net, batch)
			rt.stage("predict")
		}
	} else {
		pred, err = m.PredictNetwork(net, batch)
	}
	if err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	sc = sc.mark(metricStagePredict)
	metricServePredictions.Inc()

	buf := bufPool.Get().(*bytes.Buffer)
	renderPredict(buf, m.Name(), m.GPUName(), name, batch, pred)
	setHeader(w.Header(), "Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
	sc.mark(metricStageRender)
	rt.stage("render")
}

// renderPredict encodes the /predict response body into buf (resetting it
// first): pooled buffer, stack scratch, strconv append — the steady state
// allocates nothing.
//
//dnnperf:allocfree
func renderPredict(buf *bytes.Buffer, model, gpuName, network string, batch int, pred units.Seconds) {
	var scratch [32]byte
	buf.Reset()
	buf.WriteString(`{"model":`)
	writeJSONString(buf, model)
	buf.WriteString(`,"gpu":`)
	writeJSONString(buf, gpuName)
	buf.WriteString(`,"network":`)
	writeJSONString(buf, network)
	buf.WriteString(`,"batch":`)
	buf.Write(strconv.AppendInt(scratch[:0], int64(batch), 10))
	buf.WriteString(`,"predicted_ms":`)
	buf.Write(strconv.AppendFloat(scratch[:0], pred.Float64()*1e3, 'g', -1, 64))
	buf.WriteString("}\n")
}

// batchSpecLayer is one layer of an inline network spec. Field names follow
// the dnn.Layer fields; omitted inputs default to the previous layer (the
// network input for the first).
type batchSpecLayer struct {
	Kind        string `json:"kind"`
	Inputs      []int  `json:"inputs"`
	Cin         int    `json:"cin"`
	Cout        int    `json:"cout"`
	KH          int    `json:"kh"`
	KW          int    `json:"kw"`
	Stride      int    `json:"stride"`
	Pad         int    `json:"pad"`
	Groups      int    `json:"groups"`
	InFeatures  int    `json:"in_features"`
	OutFeatures int    `json:"out_features"`
	VocabSize   int    `json:"vocab_size"`
	EmbedDim    int    `json:"embed_dim"`
	Heads       int    `json:"heads"`
	TransposeB  bool   `json:"transpose_b"`
}

// batchSpec is an inline network description for clients predicting
// structures outside the zoo.
type batchSpec struct {
	Name       string           `json:"name"`
	InputShape []int            `json:"input_shape"`
	Layers     []batchSpecLayer `json:"layers"`
}

// batchRequest is the /predict/batch POST body. Exactly one of Network and
// NetworkSpec must be set.
type batchRequest struct {
	Network     string     `json:"network"`
	NetworkSpec *batchSpec `json:"network_spec"`
	Batches     []int      `json:"batches"`
}

// validKinds is the layer-kind vocabulary accepted in inline specs.
var validKinds = func() map[dnn.Kind]bool {
	m := make(map[dnn.Kind]bool)
	for _, k := range dnn.Kinds() {
		m[k] = true
	}
	return m
}()

// networkFromSpec builds and shape-checks an inline network spec.
func networkFromSpec(spec *batchSpec) (*dnn.Network, error) {
	if len(spec.InputShape) == 0 {
		return nil, fmt.Errorf("network_spec.input_shape must be non-empty")
	}
	if len(spec.Layers) == 0 {
		return nil, fmt.Errorf("network_spec.layers must be non-empty")
	}
	name := spec.Name
	if name == "" {
		name = "custom"
	}
	n := dnn.New(name, "custom", dnn.TaskImageClassification, dnn.Shape(spec.InputShape))
	for i, ls := range spec.Layers {
		kind := dnn.Kind(ls.Kind)
		if !validKinds[kind] {
			return nil, fmt.Errorf("layer %d: unknown layer kind %q", i, ls.Kind)
		}
		inputs := ls.Inputs
		if len(inputs) == 0 {
			if i == 0 {
				inputs = []int{dnn.NetworkInput}
			} else {
				inputs = []int{i - 1}
			}
		}
		for _, in := range inputs {
			if in != dnn.NetworkInput && (in < 0 || in >= i) {
				return nil, fmt.Errorf("layer %d: input %d references a layer at or after itself", i, in)
			}
		}
		groups := ls.Groups
		if kind == dnn.KindConv2D && groups == 0 {
			groups = 1 // dense convolution, matching the Network.Conv builder
		}
		n.Add(&dnn.Layer{
			Kind: kind, Inputs: inputs,
			Cin: ls.Cin, Cout: ls.Cout, KH: ls.KH, KW: ls.KW,
			Stride: ls.Stride, Pad: ls.Pad, Groups: groups,
			InFeatures: ls.InFeatures, OutFeatures: ls.OutFeatures,
			VocabSize: ls.VocabSize, EmbedDim: ls.EmbedDim,
			Heads: ls.Heads, TransposeB: ls.TransposeB,
		})
	}
	if err := n.Infer(1); err != nil {
		return nil, err
	}
	return n, nil
}

// handlePredictBatch serves one batch-size sweep. GET names a zoo network
// (?network=resnet50&batches=1,2,4); POST carries JSON naming a network or
// an inline spec. Identical concurrent sweeps are coalesced.
func (s *server) handlePredictBatch(w http.ResponseWriter, req *http.Request) {
	metricServeBatchRequests.Inc()
	m := s.loadModel(w)
	if m == nil {
		return
	}
	var (
		name    string
		net     *dnn.Network
		batches []int
	)
	switch req.Method {
	case http.MethodGet:
		name, _ = queryValue(req.URL.RawQuery, "network")
		if name == "" {
			writeJSONError(w, http.StatusBadRequest, "missing ?network=")
			return
		}
		csv, ok := queryValue(req.URL.RawQuery, "batches")
		if !ok || csv == "" {
			writeJSONError(w, http.StatusBadRequest, "missing ?batches= (comma-separated positive integers)")
			return
		}
		var err error
		batches, err = parseBatchesCSV(csv)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		net, err = s.network(name)
		if err != nil {
			writeJSONError(w, http.StatusNotFound, err.Error())
			return
		}
	case http.MethodPost:
		var breq batchRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBatchBody)).Decode(&breq); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeJSONError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", maxBatchBody))
				return
			}
			writeJSONError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
			return
		}
		if err := validateBatches(breq.Batches); err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		batches = breq.Batches
		switch {
		case breq.NetworkSpec != nil:
			n, err := networkFromSpec(breq.NetworkSpec)
			if err != nil {
				writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
				return
			}
			net, name = n, n.Name
		case breq.Network != "":
			name = breq.Network
			n, err := s.network(name)
			if err != nil {
				writeJSONError(w, http.StatusNotFound, err.Error())
				return
			}
			net = n
		default:
			writeJSONError(w, http.StatusBadRequest, "request must set network or network_spec")
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSONError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}

	out, err := s.sweep(m, net, batches)
	if err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	metricServePredictions.Add(int64(len(batches)))

	var scratch [32]byte
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString(`{"model":`)
	writeJSONString(buf, m.Name())
	buf.WriteString(`,"gpu":`)
	writeJSONString(buf, m.GPUName())
	buf.WriteString(`,"network":`)
	writeJSONString(buf, name)
	buf.WriteString(`,"batches":[`)
	for i, b := range batches {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(strconv.AppendInt(scratch[:0], int64(b), 10))
	}
	buf.WriteString(`],"predicted_ms":[`)
	for i, sec := range out {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(strconv.AppendFloat(scratch[:0], sec.Float64()*1e3, 'g', -1, 64))
	}
	buf.WriteString("]}\n")
	setHeader(w.Header(), "Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}

// sweep runs one coalesced batch sweep: concurrent requests for the same
// (network fingerprint, batches) share a single PredictSweep call. Results
// are never cached across completions — a model observing new records would
// otherwise serve stale sweeps — only genuinely concurrent work is shared.
func (s *server) sweep(m *core.KWModel, n *dnn.Network, batches []int) ([]units.Seconds, error) {
	kb := strconv.AppendUint(make([]byte, 0, 24+6*len(batches)), core.NetworkFingerprint(n, false), 16)
	for _, b := range batches {
		kb = append(kb, ',')
		kb = strconv.AppendInt(kb, int64(b), 10)
	}
	key := string(kb)

	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		metricServeCoalesced.Inc()
		<-f.done
		return f.out, f.err
	}
	f := &sweepFlight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	f.out, f.err = m.PredictSweep(n, batches)
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)
	return f.out, f.err
}

// validateBatches checks a sweep's batch list.
func validateBatches(batches []int) error {
	if len(batches) == 0 {
		return fmt.Errorf("batches must be a non-empty array of positive integers")
	}
	if len(batches) > maxSweepPoints {
		return fmt.Errorf("batches lists %d points, limit is %d", len(batches), maxSweepPoints)
	}
	for _, b := range batches {
		if b <= 0 {
			return fmt.Errorf("batches must be positive integers, got %d", b)
		}
	}
	return nil
}

// parseBatchesCSV parses "1,2,4" into a validated batch list.
func parseBatchesCSV(csv string) ([]int, error) {
	out := make([]int, 0, 8)
	for csv != "" {
		var tok string
		if i := strings.IndexByte(csv, ','); i >= 0 {
			tok, csv = csv[:i], csv[i+1:]
		} else {
			tok, csv = csv, ""
		}
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("batches must be comma-separated positive integers, got %q", tok)
		}
		out = append(out, v)
	}
	if err := validateBatches(out); err != nil {
		return nil, err
	}
	return out, nil
}

// queryValue extracts one query parameter straight from the raw query
// string, avoiding the url.Values map a req.URL.Query() call would allocate.
// Escaped values take a rare slow path through url.QueryUnescape.
//
//dnnperf:allocfree
func queryValue(rawQuery, key string) (string, bool) {
	for len(rawQuery) > 0 {
		var pair string
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			pair, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			pair, rawQuery = rawQuery, ""
		}
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			if pair == key {
				return "", true
			}
			continue
		}
		if pair[:eq] != key {
			continue
		}
		v := pair[eq+1:]
		if strings.IndexByte(v, '%') >= 0 || strings.IndexByte(v, '+') >= 0 {
			//lint:ignore allocfree escaped query values take the rare decode slow path
			if u, err := url.QueryUnescape(v); err == nil {
				return u, true
			}
		}
		return v, true
	}
	return "", false
}

// bufPool recycles response-encoding buffers across requests.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// setHeader sets a header only when it is not already present with the same
// value, so a reused header map costs nothing after the first request.
//
//dnnperf:allocfree
func setHeader(h http.Header, key, value string) {
	if vs, ok := h[key]; ok && len(vs) == 1 && vs[0] == value {
		return
	}
	//lint:ignore allocfree Header.Set runs once per connection; later requests hit the equal-value fast path
	h.Set(key, value)
}

// writeJSONString appends s as a JSON string literal. Plain ASCII (the
// overwhelmingly common case for model and network names) is written
// directly; anything needing escapes goes through strconv.
//
//dnnperf:allocfree
func writeJSONString(buf *bytes.Buffer, s string) {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= utf8.RuneSelf {
			buf.Write(strconv.AppendQuote(make([]byte, 0, len(s)+8), s))
			return
		}
	}
	buf.WriteByte('"')
	buf.WriteString(s)
	buf.WriteByte('"')
}

// writeJSON renders non-hot-path responses (health, errors) with the
// standard encoder.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	type errBody struct {
		Error string `json:"error"`
	}
	writeJSON(w, status, errBody{Error: msg})
}
