package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/loadgen"
)

func TestServeReadyzSplitFromHealthz(t *testing.T) {
	// Cold server: alive but not ready.
	cold := newServer(bench.NewQuickLab(), gpu.A100)
	h := cold.handler()
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("cold /healthz status %d, want 200 (liveness never gates on the model)", w.Code)
	}
	w := get(t, h, "/readyz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("cold /readyz status %d, want 503", w.Code)
	}
	var rd struct {
		Ready        bool   `json:"ready"`
		ModelReady   bool   `json:"model_ready"`
		ModelVersion uint64 `json:"model_version"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Ready || rd.ModelReady || rd.ModelVersion != 0 {
		t.Fatalf("cold readiness body: %+v", rd)
	}

	// Warm server: both 200, version visible in both bodies.
	warm := fittedServer(t)
	hw := warm.handler()
	w = get(t, hw, "/readyz")
	if w.Code != http.StatusOK {
		t.Fatalf("warm /readyz status %d: %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rd); err != nil {
		t.Fatal(err)
	}
	if !rd.Ready || !rd.ModelReady || rd.ModelVersion == 0 {
		t.Fatalf("warm readiness body: %+v", rd)
	}
	w = get(t, hw, "/healthz")
	var hb struct {
		ModelReady   bool   `json:"model_ready"`
		ModelVersion uint64 `json:"model_version"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hb); err != nil {
		t.Fatal(err)
	}
	if w.Code != http.StatusOK || !hb.ModelReady || hb.ModelVersion != rd.ModelVersion {
		t.Fatalf("warm /healthz: status %d body %+v, want model_version %d", w.Code, hb, rd.ModelVersion)
	}
}

// savedModel serializes the fitted server's model into a core.Save envelope.
func savedModel(t testing.TB, s *server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.Save(&buf, s.reg.Current().Model); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServeModelzIntrospectionAndSwap(t *testing.T) {
	s := fittedServer(t)
	h := s.handler()
	before := s.reg.Version()

	// GET: current version and history.
	w := get(t, h, "/modelz")
	if w.Code != http.StatusOK {
		t.Fatalf("/modelz status %d: %s", w.Code, w.Body)
	}
	var mz struct {
		Version uint64 `json:"version"`
		Ready   bool   `json:"ready"`
		GPU     string `json:"gpu"`
		Kernels int    `json:"kernels"`
		History []struct {
			Version uint64 `json:"version"`
			Source  string `json:"source"`
		} `json:"history"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &mz); err != nil {
		t.Fatal(err)
	}
	if !mz.Ready || mz.Version != before || mz.GPU != "A100" || mz.Kernels == 0 || len(mz.History) == 0 {
		t.Fatalf("/modelz body: %+v", mz)
	}

	// POST a saved envelope: version advances, /readyz reports it.
	env := savedModel(t, s)
	w = post(t, h, "/modelz", string(env))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /modelz status %d: %s", w.Code, w.Body)
	}
	var swapped struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &swapped); err != nil {
		t.Fatal(err)
	}
	if swapped.Version != before+1 || s.reg.Version() != before+1 {
		t.Fatalf("post-swap version %d (registry %d), want %d", swapped.Version, s.reg.Version(), before+1)
	}

	// The swapped-in model still predicts.
	if w := get(t, h, "/predict?network=resnet18&batch=8"); w.Code != http.StatusOK {
		t.Fatalf("post-swap /predict status %d: %s", w.Code, w.Body)
	}

	// Error contract: malformed body, non-KW kind, wrong method.
	if w := post(t, h, "/modelz", `{"kind": "kw", "version": 1, "model":`); w.Code != http.StatusBadRequest {
		t.Errorf("malformed envelope: status %d, want 400", w.Code)
	}
	if w := post(t, h, "/modelz", `{"kind": "nope", "version": 1, "model": {}}`); w.Code != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400", w.Code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/modelz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /modelz: status %d, want 405", rec.Code)
	}
}

func TestServeUniformBodyCap(t *testing.T) {
	h := fittedServer(t).handler()
	// A body over the uniform cap is rejected on any route — here /modelz,
	// whose own reader enforces the same limit the instrument wrapper does.
	big := `{"kind": "kw", "pad": "` + strings.Repeat("x", maxModelBody) + `"}`
	if w := post(t, h, "/modelz", big); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized /modelz body: status %d, want 413", w.Code)
	}
}

// TestServeHotSwapUnderLoad is the acceptance test for zero-downtime swaps:
// a live server takes open-loop /predict traffic while /modelz swaps the
// model repeatedly. Every request must complete (no drops) and none may see
// a 5xx — in-flight predictions finish on the snapshot they loaded.
func TestServeHotSwapUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load-bearing sleep-heavy test")
	}
	s := fittedServer(t)
	env := savedModel(t, s)
	startVersion := s.reg.Version()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.serveUntil(ctx, "127.0.0.1:0", ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("listener did not come up")
	}

	// Swapper: publish the envelope every 50ms while the load runs.
	swapCtx, stopSwaps := context.WithCancel(context.Background())
	defer stopSwaps()
	var swaps atomic.Int64
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for {
			select {
			case <-swapCtx.Done():
				return
			case <-time.After(50 * time.Millisecond):
			}
			resp, err := http.Post("http://"+addr+"/modelz", "application/json", bytes.NewReader(env))
			if err != nil {
				t.Errorf("swap POST: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("swap POST status %d", resp.StatusCode)
				return
			}
			swaps.Add(1)
		}
	}()

	networks := []string{"resnet50", "resnet18"}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		NewRequest: func(rng *rand.Rand) (*http.Request, error) {
			n := networks[rng.Intn(len(networks))]
			return http.NewRequest(http.MethodGet, "http://"+addr+"/predict?network="+n+"&batch=64", nil)
		},
		Rate:     400,
		Duration: 1500 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Seed:     11,
	})
	stopSwaps()
	<-swapDone
	if err != nil {
		t.Fatal(err)
	}

	if res.Sent == 0 {
		t.Fatal("load generator sent nothing")
	}
	if res.Completed != res.Sent {
		t.Fatalf("dropped requests under hot-swap: sent %d, completed %d", res.Sent, res.Completed)
	}
	if res.Status5xx != 0 || res.NetErrors != 0 {
		t.Fatalf("hot-swap caused failures: 5xx=%d neterr=%d of %d", res.Status5xx, res.NetErrors, res.Completed)
	}
	if res.Status2xx != res.Completed {
		t.Fatalf("non-2xx responses under hot-swap: %+v", res)
	}
	if swaps.Load() == 0 {
		t.Fatal("no swap actually happened during the load window")
	}
	if got := s.reg.Version(); got != startVersion+uint64(swaps.Load()) {
		t.Fatalf("registry version %d, want %d + %d swaps", got, startVersion, swaps.Load())
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown after hot-swap load: %v", err)
		}
	case <-time.After(2 * shutdownDrain):
		t.Fatal("server did not drain")
	}
}
