package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/zoo"
)

// fittedServer returns a shared server whose KW model is already fitted from
// a tiny two-network dataset, so handler tests skip the full warm-up.
var (
	fittedOnce sync.Once
	fittedSrv  *server
	fittedErr  error
)

func fittedServer(t testing.TB) *server {
	t.Helper()
	fittedOnce.Do(func() {
		nets := []*dnn.Network{zoo.MustResNet(50), zoo.MustResNet(18)}
		opt := dataset.DefaultBuildOptions()
		opt.Batches = 3
		opt.Warmup = 1
		opt.E2EBatchSizes = []int{512}
		ds, _, err := dataset.Build(nets, []gpu.Spec{gpu.A100}, opt)
		if err != nil {
			fittedErr = err
			return
		}
		kw, err := core.FitKW(ds, "A100", 512)
		if err != nil {
			fittedErr = err
			return
		}
		s := newServer(bench.NewQuickLab(), gpu.A100)
		if _, err := s.reg.Publish(kw, "test-prefit"); err != nil {
			fittedErr = err
			return
		}
		fittedSrv = s
	})
	if fittedErr != nil {
		t.Fatal(fittedErr)
	}
	return fittedSrv
}

func get(t *testing.T, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
	return w
}

func post(t *testing.T, h http.Handler, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, target, strings.NewReader(body)))
	return w
}

func TestServePredictBeforeWarmup(t *testing.T) {
	s := newServer(bench.NewQuickLab(), gpu.A100)
	h := s.handler()
	for _, target := range []string{"/predict?network=resnet50", "/predict/batch?network=resnet50&batches=1,2"} {
		if w := get(t, h, target); w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s before warm-up: status %d, want 503", target, w.Code)
		}
	}
}

func TestServePredictErrors(t *testing.T) {
	h := fittedServer(t).handler()
	cases := []struct {
		target string
		want   int
	}{
		{"/predict", http.StatusBadRequest},                             // missing network
		{"/predict?network=resnet50&batch=zero", http.StatusBadRequest}, // non-numeric batch
		{"/predict?network=resnet50&batch=-4", http.StatusBadRequest},   // negative batch
		{"/predict?network=no-such-net", http.StatusNotFound},           // unknown network
		{"/predict/batch?network=resnet50", http.StatusBadRequest},      // missing batches
		{"/predict/batch?batches=1,2", http.StatusBadRequest},           // missing network
		{"/predict/batch?network=resnet50&batches=", http.StatusBadRequest},
		{"/predict/batch?network=resnet50&batches=1,x", http.StatusBadRequest},
		{"/predict/batch?network=resnet50&batches=0,2", http.StatusBadRequest},
		{"/predict/batch?network=no-such-net&batches=1,2", http.StatusNotFound},
	}
	for _, c := range cases {
		if w := get(t, h, c.target); w.Code != c.want {
			t.Errorf("GET %s: status %d, want %d (body %s)", c.target, w.Code, c.want, w.Body)
		}
	}
}

func TestServePredictBatchPostErrors(t *testing.T) {
	h := fittedServer(t).handler()
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{"network": "resnet50", "batches": [1`, http.StatusBadRequest},
		{"no batches", `{"network": "resnet50"}`, http.StatusBadRequest},
		{"bad batch value", `{"network": "resnet50", "batches": [1, -2]}`, http.StatusBadRequest},
		{"neither network nor spec", `{"batches": [1, 2]}`, http.StatusBadRequest},
		{"unknown network", `{"network": "no-such-net", "batches": [1]}`, http.StatusNotFound},
		{"unknown layer kind", `{"batches": [1], "network_spec": {"name": "x", "input_shape": [3, 8, 8],
			"layers": [{"kind": "Convolution9D", "cin": 3, "cout": 4, "kh": 3, "kw": 3, "stride": 1, "pad": 1}]}}`,
			http.StatusUnprocessableEntity},
		{"empty spec layers", `{"batches": [1], "network_spec": {"name": "x", "input_shape": [3, 8, 8], "layers": []}}`,
			http.StatusUnprocessableEntity},
		{"forward input reference", `{"batches": [1], "network_spec": {"name": "x", "input_shape": [3, 8, 8],
			"layers": [{"kind": "ReLU", "inputs": [5]}]}}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if w := post(t, h, "/predict/batch", c.body); w.Code != c.want {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, w.Code, c.want, w.Body)
		}
	}

	// Oversized body: pad past the 1 MiB cap.
	big := `{"network": "resnet50", "batches": [1], "pad": "` + strings.Repeat("x", maxBatchBody) + `"}`
	if w := post(t, h, "/predict/batch", big); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", w.Code)
	}

	// Wrong method.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPut, "/predict/batch", strings.NewReader("{}")))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("PUT: status %d, want 405", w.Code)
	}
}

func TestServePredictMatchesModel(t *testing.T) {
	s := fittedServer(t)
	h := s.handler()
	m := s.reg.Current().Model
	net, err := s.network("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.PredictNetwork(net, 64)
	if err != nil {
		t.Fatal(err)
	}

	w := get(t, h, "/predict?network=resnet50&batch=64")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Model       string  `json:"model"`
		GPU         string  `json:"gpu"`
		Network     string  `json:"network"`
		Batch       int     `json:"batch"`
		PredictedMs float64 `json:"predicted_ms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON %q: %v", w.Body, err)
	}
	if resp.Model != m.Name() || resp.GPU != "A100" || resp.Network != "resnet50" || resp.Batch != 64 {
		t.Fatalf("response header fields: %+v", resp)
	}
	// The shortest-round-trip float encoding must parse back bit-identical.
	if resp.PredictedMs != want.Float64()*1e3 {
		t.Fatalf("predicted_ms = %v, want %v", resp.PredictedMs, want.Float64()*1e3)
	}
}

// TestServePredictBatchMatchesLoop pins the endpoint to the looped
// single-prediction path bit for bit, for both GET and POST.
func TestServePredictBatchMatchesLoop(t *testing.T) {
	s := fittedServer(t)
	h := s.handler()
	m := s.reg.Current().Model
	net, err := s.network("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	batches := []int{1, 2, 7, 64, 512}
	want := make([]float64, len(batches))
	for i, b := range batches {
		sec, err := m.PredictNetwork(net, b)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sec.Float64() * 1e3
	}

	check := func(t *testing.T, w *httptest.ResponseRecorder) {
		t.Helper()
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body)
		}
		var resp struct {
			Network     string    `json:"network"`
			Batches     []int     `json:"batches"`
			PredictedMs []float64 `json:"predicted_ms"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad JSON %q: %v", w.Body, err)
		}
		if resp.Network != "resnet50" || len(resp.Batches) != len(batches) {
			t.Fatalf("response %+v", resp)
		}
		for i := range batches {
			if resp.Batches[i] != batches[i] {
				t.Fatalf("batches[%d] = %d, want %d", i, resp.Batches[i], batches[i])
			}
			if resp.PredictedMs[i] != want[i] {
				t.Fatalf("predicted_ms[%d] = %v, want %v", i, resp.PredictedMs[i], want[i])
			}
		}
	}

	t.Run("GET", func(t *testing.T) {
		check(t, get(t, h, "/predict/batch?network=resnet50&batches=1,2,7,64,512"))
	})
	t.Run("POST", func(t *testing.T) {
		check(t, post(t, h, "/predict/batch", `{"network": "resnet50", "batches": [1, 2, 7, 64, 512]}`))
	})
}

// TestServePredictBatchInlineSpec predicts a network the zoo does not have.
func TestServePredictBatchInlineSpec(t *testing.T) {
	h := fittedServer(t).handler()
	body := `{
		"batches": [1, 4],
		"network_spec": {
			"name": "tiny-cnn",
			"input_shape": [3, 16, 16],
			"layers": [
				{"kind": "Conv2D", "cin": 3, "cout": 8, "kh": 3, "kw": 3, "stride": 1, "pad": 1},
				{"kind": "ReLU"},
				{"kind": "GlobalAvgPool"},
				{"kind": "Flatten"},
				{"kind": "Linear", "in_features": 8, "out_features": 10}
			]
		}
	}`
	w := post(t, h, "/predict/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Network     string    `json:"network"`
		PredictedMs []float64 `json:"predicted_ms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON %q: %v", w.Body, err)
	}
	if resp.Network != "tiny-cnn" || len(resp.PredictedMs) != 2 {
		t.Fatalf("response %+v", resp)
	}
	for i, ms := range resp.PredictedMs {
		if ms <= 0 {
			t.Fatalf("predicted_ms[%d] = %v, want positive", i, ms)
		}
	}
}

// TestServeSweepCoalesces proves a sweep joins an identical in-flight
// computation: a pre-installed flight's canned result is returned verbatim
// and the coalesced counter moves.
func TestServeSweepCoalesces(t *testing.T) {
	s := fittedServer(t)
	m := s.reg.Current().Model
	net, err := s.network("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	batches := []int{2, 4}
	key := strconv.FormatUint(core.NetworkFingerprint(net, false), 16) + ",2,4"
	canned := []units.Seconds{1, 2}
	f := &sweepFlight{done: make(chan struct{}), out: canned}
	close(f.done)
	s.mu.Lock()
	s.inflight[key] = f
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
	}()

	before := metricServeCoalesced.Value()
	out, err := s.sweep(m, net, batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != canned[0] || out[1] != canned[1] {
		t.Fatalf("joined sweep returned %v, want the in-flight result %v", out, canned)
	}
	if got := metricServeCoalesced.Value(); got != before+1 {
		t.Fatalf("coalesced counter moved %d, want 1", got-before)
	}

	// A non-matching key must compute rather than join.
	out, err = s.sweep(m, net, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	wantSec, err := m.PredictNetwork(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != wantSec {
		t.Fatalf("fresh sweep[1] = %v, want %v", out[1], wantSec)
	}
}

// TestServeGracefulShutdown boots the real listener, verifies it answers,
// cancels the context and expects a clean drain.
func TestServeGracefulShutdown(t *testing.T) {
	s := fittedServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() { errc <- s.serveUntil(ctx, "127.0.0.1:0", ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("listener did not come up")
	}

	resp, err := http.Get("http://" + addr + "/predict?network=resnet18&batch=8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live /predict status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(2 * shutdownDrain):
		t.Fatal("serveUntil did not return after cancellation")
	}

	// The listener must actually be closed.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

// nullResponseWriter is a reusable ResponseWriter for steady-state
// benchmarks: a persistent header map and a discarding body.
type nullResponseWriter struct {
	h      http.Header
	status int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }

// Write discards the body, recording the implicit 200 a real server would
// send on an unheadered write.
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(p), nil
}

func (w *nullResponseWriter) WriteHeader(code int) { w.status = code }

// BenchmarkServePredict measures the full handler path of one /predict
// request — routing, instrumentation, query parsing, network lookup, plan
// prediction, response encoding. Steady state must not allocate, with
// observation enabled exactly as runServe enables it.
func BenchmarkServePredict(b *testing.B) {
	s := fittedServer(b)
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	h := s.handler()
	req := httptest.NewRequest(http.MethodGet, "/predict?network=resnet50&batch=64", nil)
	w := &nullResponseWriter{h: make(http.Header)}
	h.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		b.Fatalf("warm-up status %d", w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

// BenchmarkServePredictBatch measures a 16-point sweep through the batch
// endpoint.
func BenchmarkServePredictBatch(b *testing.B) {
	s := fittedServer(b)
	h := s.handler()
	req := httptest.NewRequest(http.MethodGet,
		"/predict/batch?network=resnet50&batches=1,2,4,8,16,32,64,96,128,160,192,224,256,320,384,512", nil)
	w := &nullResponseWriter{h: make(http.Header)}
	h.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		b.Fatalf("warm-up status %d", w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}
