package main

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/units"
)

// Replica-side request tracing and stage attribution.
//
// The replica never makes its own sampling decision: the fleet proxy is the
// head of the request, so a request is traced here exactly when it arrives
// with a valid sampled `traceparent` header. The decision is a header map
// read plus a fixed-shape parse — no allocation on the unsampled path, which
// keeps /predict at 0 allocs/op with tracing enabled (the benchmark gate).
// Sampled requests allocate one requestTrace and record per-stage spans
// (parse, cache, compile, predict, render) onto the server's single reserved
// track, so a merged fleet timeline shows one row per replica.
//
// Stage latency *histograms* are separate from spans and always on: every
// request feeds serve_stage_*_seconds through a value-typed stageClock, so
// the attribution a /metricsz scrape aggregates does not depend on sampling.

// traceparentHeader is the canonical form of the propagation header, usable
// as a direct header-map key.
const traceparentHeader = "Traceparent"

// Stage-latency histograms: always-on per-stage attribution for /predict.
var (
	metricStageParse = obs.Default().Histogram("serve_stage_parse_seconds",
		"Time spent parsing and validating the request.", nil)
	metricStageCache = obs.Default().Histogram("serve_stage_cache_seconds",
		"Time spent resolving the network through the server-side cache.", nil)
	metricStagePredict = obs.Default().Histogram("serve_stage_predict_seconds",
		"Time spent in model prediction (including plan compilation).", nil)
	metricStageRender = obs.Default().Histogram("serve_stage_render_seconds",
		"Time spent rendering and writing the response body.", nil)
)

// traceparentOf reads the propagation header by its canonical map key — the
// header fast path: no MIME canonicalization, no allocation.
//
//dnnperf:allocfree
func traceparentOf(h http.Header) string {
	if vs := h[traceparentHeader]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// requestTrace follows one sampled request through the replica's handler.
type requestTrace struct {
	s     *server
	sc    obs.SpanContext
	start time.Duration
	last  time.Duration
}

// sampleRequest is the replica's sampling branch: a request is traced iff it
// carries a valid sampled traceparent. The unsampled path allocates nothing.
//
//dnnperf:allocfree
func (s *server) sampleRequest(req *http.Request) *requestTrace {
	sc, ok := obs.ParseTraceparent(traceparentOf(req.Header))
	if !ok || sc.Flags&obs.FlagSampled == 0 {
		return nil
	}
	//lint:ignore allocfree span bookkeeping allocates only for sampled requests
	return newRequestTrace(s, sc)
}

func newRequestTrace(s *server, sc obs.SpanContext) *requestTrace {
	now := s.tracer.Now()
	// Child: the replica's spans get their own span ID within the trace.
	return &requestTrace{s: s, sc: sc.Child(), start: now, last: now}
}

// echoTraceID exposes the trace ID to the client before any write.
func (t *requestTrace) echoTraceID(h http.Header) {
	if t == nil {
		return
	}
	h.Set(fleet.TraceIDHeader, t.sc.TraceID())
}

// stage completes a span covering everything since the previous boundary.
func (t *requestTrace) stage(name string) {
	if t == nil {
		return
	}
	now := t.s.tracer.Now()
	t.s.tracer.Complete(obs.TraceEvent{
		Name:  name,
		Cat:   obs.StageCat,
		Track: t.s.reqTrack,
		Start: t.last,
		Dur:   now - t.last,
		Args:  []obs.Arg{{Key: "trace_id", Val: t.sc.TraceID()}},
	})
	t.last = now
}

// finish completes the whole-request span.
func (t *requestTrace) finish(route string, status int) {
	if t == nil {
		return
	}
	now := t.s.tracer.Now()
	t.s.tracer.Complete(obs.TraceEvent{
		Name:  route,
		Cat:   obs.RequestCat,
		Track: t.s.reqTrack,
		Start: t.start,
		Dur:   now - t.start,
		Args: []obs.Arg{
			{Key: "trace_id", Val: t.sc.TraceID()},
			{Key: "status", Val: strconv.Itoa(status)},
		},
	})
}

// traceOf recovers the request's trace from the instrumented writer; nil for
// unsampled requests (and for writers that aren't instrument's recorder).
//
//dnnperf:allocfree
func traceOf(w http.ResponseWriter) *requestTrace {
	if rec, ok := w.(*statusRecorder); ok {
		return rec.trace
	}
	return nil
}

// stageClock marks the always-on stage histograms. It is a value type that
// never escapes: each mark returns the advanced clock, so the hot path costs
// two clock reads per stage and zero allocations. The zero stageClock (obs
// disabled) makes every mark a no-op.
type stageClock struct{ last time.Time }

// startStages begins stage attribution if observation is enabled.
//
//dnnperf:allocfree
func startStages() stageClock {
	if !obs.Enabled() {
		return stageClock{}
	}
	return stageClock{last: time.Now()}
}

// mark records the time since the previous mark into h and advances.
//
//dnnperf:allocfree
func (c stageClock) mark(h *obs.Histogram) stageClock {
	if c.last.IsZero() {
		return c
	}
	now := time.Now()
	h.Observe(units.Seconds(now.Sub(c.last).Seconds()))
	c.last = now
	return c
}

// handleSloz serves the replica's SLO burn-rate report.
func (s *server) handleSloz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Report())
}

// handleTracez serves the replica's span buffer as a ProcessTrace document
// for `dnnperf fleet -trace-o` to merge.
func (s *server) handleTracez(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteProcessTrace(w, s.tracer.ProcessTrace(s.procName))
}
