package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// tracedRequest builds a /predict request carrying a sampled traceparent.
func tracedRequest(target string, sc obs.SpanContext) *http.Request {
	req := httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set("traceparent", sc.Traceparent())
	return req
}

// eventsForTrace fetches the replica's /tracez.json and returns the spans
// whose trace_id argument matches id.
func eventsForTrace(t *testing.T, h http.Handler, id string) []obs.TraceEvent {
	t.Helper()
	w := get(t, h, "/tracez.json")
	if w.Code != http.StatusOK {
		t.Fatalf("/tracez.json status %d", w.Code)
	}
	pt, err := obs.ReadProcessTrace(w.Body)
	if err != nil {
		t.Fatalf("decoding process trace: %v", err)
	}
	var out []obs.TraceEvent
	for _, ev := range pt.Events {
		for _, a := range ev.Args {
			if a.Key == "trace_id" && a.Val == id {
				out = append(out, ev)
			}
		}
	}
	return out
}

// TestServeTracePropagation drives a sampled request through the full
// handler and checks the replica echoes the trace ID and records the
// per-stage spans under it.
func TestServeTracePropagation(t *testing.T) {
	s := fittedServer(t)
	h := s.handler()
	sc := obs.NewSpanContext()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, tracedRequest("/predict?network=resnet50&batch=8", sc))
	if w.Code != http.StatusOK {
		t.Fatalf("traced /predict status %d (body %s)", w.Code, w.Body)
	}
	if got := w.Header().Get(fleet.TraceIDHeader); got != sc.TraceID() {
		t.Fatalf("%s = %q, want %q", fleet.TraceIDHeader, got, sc.TraceID())
	}

	evs := eventsForTrace(t, h, sc.TraceID())
	byName := map[string]obs.TraceEvent{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	for _, stage := range []string{"parse", "cache_lookup", "compile", "predict", "render"} {
		ev, ok := byName[stage]
		if !ok {
			t.Fatalf("stage span %q missing; got %d spans %v", stage, len(evs), names(evs))
		}
		if ev.Cat != obs.StageCat {
			t.Errorf("span %q category %q, want %q", stage, ev.Cat, obs.StageCat)
		}
	}
	reqSpan, ok := byName["predict"]
	if !ok {
		t.Fatal("request span missing")
	}
	// Both the whole-request span and the predict stage exist; the request
	// span is the RequestCat one covering all stages.
	found := false
	for _, ev := range evs {
		if ev.Name == "predict" && ev.Cat == obs.RequestCat {
			reqSpan, found = ev, true
		}
	}
	if !found {
		t.Fatalf("no %s-category request span for the trace", obs.RequestCat)
	}
	for _, a := range reqSpan.Args {
		if a.Key == "status" && a.Val != "200" {
			t.Errorf("request span status arg %q, want 200", a.Val)
		}
	}
}

func names(evs []obs.TraceEvent) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.Cat + ":" + ev.Name
	}
	return out
}

// TestServeTraceIgnoresUnsampled checks that unsampled and malformed
// traceparent headers do not start a trace and echo no header.
func TestServeTraceIgnoresUnsampled(t *testing.T) {
	s := fittedServer(t)
	h := s.handler()
	unsampled := obs.NewSpanContext()
	unsampled.Flags = 0
	for name, header := range map[string]string{
		"unsampled": unsampled.Traceparent(),
		"malformed": "00-zzzz-zzzz-01",
		"empty":     "",
	} {
		req := httptest.NewRequest(http.MethodGet, "/predict?network=resnet50&batch=8", nil)
		if header != "" {
			req.Header.Set("traceparent", header)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d", name, w.Code)
		}
		if got := w.Header().Get(fleet.TraceIDHeader); got != "" {
			t.Errorf("%s: unexpected %s header %q", name, fleet.TraceIDHeader, got)
		}
	}
}

// TestServePredictUnsampledZeroAlloc pins the tracing-enabled steady state:
// an unsampled /predict request must not allocate even with observation on.
func TestServePredictUnsampledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bench_compare.sh gates BenchmarkServePredict at 0 allocs/op")
	}
	s := fittedServer(t)
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	h := s.handler()
	req := httptest.NewRequest(http.MethodGet, "/predict?network=resnet50&batch=64", nil)
	w := &nullResponseWriter{h: make(http.Header)}
	h.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		t.Fatalf("warm-up status %d", w.status)
	}
	if avg := testing.AllocsPerRun(200, func() {
		h.ServeHTTP(w, req)
	}); avg != 0 {
		t.Fatalf("unsampled /predict allocates %.2f allocs/op with tracing enabled, want 0", avg)
	}
}

// TestServeSlozEndpoint checks the burn-rate report decodes with the default
// objectives and windows.
func TestServeSlozEndpoint(t *testing.T) {
	h := fittedServer(t).handler()
	w := get(t, h, "/sloz")
	if w.Code != http.StatusOK {
		t.Fatalf("/sloz status %d", w.Code)
	}
	var rep obs.SLOReport
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decoding /sloz: %v", err)
	}
	if rep.AvailabilityObjective != 0.999 || rep.LatencyObjective != 0.99 {
		t.Fatalf("objectives %v/%v, want 0.999/0.99", rep.AvailabilityObjective, rep.LatencyObjective)
	}
	if len(rep.Windows) != len(obs.DefaultSLOWindows()) {
		t.Fatalf("%d windows, want %d", len(rep.Windows), len(obs.DefaultSLOWindows()))
	}
}

// TestServeRouteMetrics checks the per-route RED counters move with traffic.
func TestServeRouteMetrics(t *testing.T) {
	s := fittedServer(t)
	h := s.handler()
	rs := newRouteStats("predict") // registry dedup: same handles as the route table
	reqBefore, errBefore := rs.requests.Value(), rs.errors.Value()
	if w := get(t, h, "/predict?network=resnet50&batch=8"); w.Code != http.StatusOK {
		t.Fatalf("/predict status %d", w.Code)
	}
	if w := get(t, h, "/predict?network=no-such-net"); w.Code != http.StatusNotFound {
		t.Fatalf("bad /predict status %d", w.Code)
	}
	if got := rs.requests.Value() - reqBefore; got != 2 {
		t.Errorf("route requests moved by %d, want 2", got)
	}
	if got := rs.errors.Value() - errBefore; got != 1 {
		t.Errorf("route errors moved by %d, want 1", got)
	}
}

// BenchmarkServePredictTraced measures /predict with tracing live at the
// fleet's default sampling rate: one request in 64 carries a sampled
// traceparent. Steady state must stay at 0 allocs/op (the sampled iteration
// amortizes below 0.5 allocs/op) and within a few percent of the untraced
// benchmark.
func BenchmarkServePredictTraced(b *testing.B) {
	s := fittedServer(b)
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	h := s.handler()
	plain := httptest.NewRequest(http.MethodGet, "/predict?network=resnet50&batch=64", nil)
	traced := tracedRequest("/predict?network=resnet50&batch=64", obs.NewSpanContext())
	w := &nullResponseWriter{h: make(http.Header)}
	h.ServeHTTP(w, plain)
	if w.status != http.StatusOK {
		b.Fatalf("warm-up status %d", w.status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := plain
		if i%64 == 0 {
			req = traced
		}
		h.ServeHTTP(w, req)
	}
}
