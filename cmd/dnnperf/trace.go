package main

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/profiler"
)

// addProfilerTimeline replays a profiler trace onto the active tracer so the
// Chrome trace export shows the paper's Figure 2 view: a "layers" track with
// one slice per layer and a "kernels" track with the kernels it dispatched,
// aligned on the batch timeline. A no-op when -o is not in effect.
func addProfilerTimeline(tr *profiler.Trace) {
	t := obs.CurrentTracer()
	if t == nil {
		return
	}
	layerTrack := t.ReserveTrack()
	kernelTrack := t.ReserveTrack()
	for _, l := range tr.Layers {
		if len(l.Kernels) == 0 {
			continue
		}
		layerStart := l.Kernels[0].Start
		t.Complete(obs.TraceEvent{
			Name:  fmt.Sprintf("L%d %s", l.Index, l.Name),
			Cat:   "layer",
			Track: layerTrack,
			Start: seconds(layerStart),
			Dur:   seconds(l.Duration),
			Args: []obs.Arg{
				{Key: "kind", Val: string(l.Kind)},
				{Key: "kernels", Val: fmt.Sprint(len(l.Kernels))},
			},
		})
		for _, k := range l.Kernels {
			t.Complete(obs.TraceEvent{
				Name:  k.Name,
				Cat:   "kernel",
				Track: kernelTrack,
				Start: seconds(k.Start),
				Dur:   seconds(k.Duration),
				Args:  []obs.Arg{{Key: "layer", Val: fmt.Sprint(k.LayerIndex)}},
			})
		}
	}
}

// seconds converts the profiler's float seconds to a duration offset.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
