// Disaggregated memory (case study 2): a GPU with small local memory
// computes layer by layer while a prefetcher streams parameters and spilled
// activations from a network-attached memory pool. The question: how much
// link bandwidth does each network need before the GPU stops stalling?
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Train a kernel-wise model on TITAN RTX measurements; it supplies the
	// per-layer compute times the event-driven simulation schedules around.
	var nets []*repro.Network
	for i, n := range repro.Zoo() {
		if i%6 == 0 {
			nets = append(nets, n)
		}
	}
	opt := repro.DefaultCollectOptions()
	opt.Batches = 8
	ds, _, err := repro.Collect(nets, []repro.GPU{repro.TitanRTX}, opt)
	if err != nil {
		log.Fatal(err)
	}
	kw, err := repro.TrainKW(ds, "TITAN RTX")
	if err != nil {
		log.Fatal(err)
	}

	bandwidths := []float64{16, 32, 64, 128, 256, 512}
	const batch = 64

	fmt.Printf("speedup over a 16 GB/s link (batch %d, TITAN RTX):\n", batch)
	fmt.Printf("%-15s", "network")
	for _, bw := range bandwidths {
		fmt.Printf("%10.0f", bw)
	}
	fmt.Printf("%12s\n", "GPU busy@16")

	for _, name := range []string{"resnet50", "resnet77", "densenet121", "densenet161", "shufflenet_v1"} {
		net, err := repro.NetworkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		jobs, err := repro.DisaggJobsFromNetwork(net, batch, kw)
		if err != nil {
			log.Fatal(err)
		}
		results, err := repro.SweepDisagg(jobs, repro.DisaggConfig{LinkLatencyUS: 2}, bandwidths)
		if err != nil {
			log.Fatal(err)
		}
		speedups := repro.DisaggSpeedups(results)
		fmt.Printf("%-15s", name)
		for _, s := range speedups {
			fmt.Printf("%10.2f", s)
		}
		fmt.Printf("%11.0f%%\n", 100*results[0].ComputeUtilization())
	}

	fmt.Println("\nThe whole sweep is event-driven — it fast-forwards between layer and")
	fmt.Println("fetch completions, so all networks × bandwidths finish in milliseconds.")
}
