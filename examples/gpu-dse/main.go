// GPU design-space exploration (case study 1): given measurements on
// existing GPUs, predict how a customized TITAN RTX would perform at
// different memory bandwidths — without ever measuring one. This is the
// "what is the optimal memory bandwidth if cores and frequency are kept
// unchanged" procurement question of §6.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// Train the inter-GPU base once, from four measured GPUs.
	trainGPUs := []repro.GPU{repro.A100, repro.A40, repro.GTX1080Ti, repro.V100}
	var nets []*repro.Network
	for i, n := range repro.Zoo() {
		if i%6 == 0 {
			nets = append(nets, n)
		}
	}
	opt := repro.DefaultCollectOptions()
	opt.Batches = 8
	ds, _, err := repro.Collect(nets, trainGPUs, opt)
	if err != nil {
		log.Fatal(err)
	}
	base, err := repro.TrainIGKWBase(ds, trainGPUs)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep hypothetical bandwidths for two workloads with different
	// memory behaviour.
	for _, workload := range []string{"resnet50", "densenet169"} {
		net, err := repro.NetworkByName(workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npredicted time of %s on TITAN RTX with modified bandwidth:\n", workload)
		var prev float64
		for bw := 200.0; bw <= 1400.0; bw += 100 {
			target := repro.TitanRTX.WithBandwidth(bw)
			m, err := base.Resolve(target)
			if err != nil {
				log.Fatal(err)
			}
			tPred, err := m.PredictNetwork(net, repro.TrainBatchSize)
			if err != nil {
				log.Fatal(err)
			}
			t := float64(tPred)
			gain := ""
			if prev > 0 {
				gain = fmt.Sprintf("  (−%4.1f%% vs −100 GB/s)", 100*(prev-t)/prev)
			}
			bar := strings.Repeat("█", int(t*1e3/50))
			native := ""
			if int(bw) == 600 {
				native = "  ← native 672 GB/s is here"
			}
			fmt.Printf("  %5.0f GB/s  %9.1f ms %s%s%s\n", bw, t*1e3, bar, gain, native)
			prev = t
		}
	}
	fmt.Println("\nEach point resolves the trained base for a hypothetical GPU in ~ms —")
	fmt.Println("the sweep a cycle-level simulator would need GPU-weeks for.")
}
