// Quickstart: collect a dataset on one GPU, train the paper's models, and
// predict the execution time of a network that was held out of training —
// the workflow of the paper's Figure 10.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Workloads: a diverse sample of the 646-network zoo, plus the
	// ResNet-50 we will predict. Holding ResNet-50 out of training makes
	// the prediction a genuine "new DNN" case.
	const target = "resnet50"
	var nets []*repro.Network
	for i, n := range repro.Zoo() {
		if i%6 == 0 && n.Name != target {
			nets = append(nets, n)
		}
	}

	// 2. Measure: profile every network on the A100 device substrate. The
	// options follow the paper's protocol (warm up, then average measured
	// batches; end-to-end times at several batch sizes, kernel detail at
	// the fully-utilizing batch size 512).
	opt := repro.DefaultCollectOptions()
	opt.Batches = 8 // fewer measured batches: faster, slightly noisier
	ds, report, err := repro.Collect(nets, []repro.GPU{repro.A100}, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s (%d runs dropped for OOM)\n", ds.Summary(), len(report.OutOfMemory))

	// 3. Train the three single-GPU models.
	e2e, err := repro.TrainE2E(ds, "A100")
	if err != nil {
		log.Fatal(err)
	}
	lw, err := repro.TrainLW(ds, "A100")
	if err != nil {
		log.Fatal(err)
	}
	kw, err := repro.TrainKW(ds, "A100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KW model: %d kernels reduced to %d regression models\n",
		kw.KernelCount(), kw.ModelCount())

	// 4. Predict the held-out network and compare with a real measurement.
	net, err := repro.NetworkByName(target)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := repro.Profile(net, repro.TrainBatchSize, repro.A100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s at batch %d on A100 — measured %.1f ms\n",
		target, repro.TrainBatchSize, trace.E2ETime*1e3)
	for _, m := range []repro.Predictor{e2e, lw, kw} {
		predT, err := m.PredictNetwork(net, repro.TrainBatchSize)
		if err != nil {
			log.Fatal(err)
		}
		pred := float64(predT)
		fmt.Printf("  %-4s predicted %8.1f ms  (error %5.1f%%)\n",
			m.Name(), pred*1e3, 100*abs(pred-trace.E2ETime)/trace.E2ETime)
	}

	// 5. The models predict other batch sizes from the same fit (O3:
	// execution time is linear in batch size).
	fmt.Println("\nKW predictions across batch sizes:")
	for _, bs := range []int{32, 64, 128, 256, 512} {
		pred, err := kw.PredictNetwork(net, bs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  batch %3d → %8.1f ms\n", bs, pred*1e3)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
