// Cross-GPU scheduling (case study 3): a machine-learning-as-a-service
// vendor has an A40 and a TITAN RTX; customers submit a queue of networks.
// The performance model answers both scheduling questions of §6: which GPU
// runs each network faster, and how to split the queue to minimize the
// overall completion time — fast enough that brute-force search is trivial.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	gpus := []repro.GPU{repro.A40, repro.TitanRTX}
	queue := []string{
		"resnet44", "resnet50", "resnet62", "resnet77",
		"densenet121", "densenet161", "densenet169", "densenet201",
		"shufflenet_v1",
	}

	// Train one kernel-wise model per GPU.
	var nets []*repro.Network
	for i, n := range repro.Zoo() {
		if i%6 == 0 {
			nets = append(nets, n)
		}
	}
	opt := repro.DefaultCollectOptions()
	opt.Batches = 8
	ds, _, err := repro.Collect(nets, gpus, opt)
	if err != nil {
		log.Fatal(err)
	}
	kws := map[string]*repro.KWModel{}
	for _, g := range gpus {
		kw, err := repro.TrainKW(ds, g.Name)
		if err != nil {
			log.Fatal(err)
		}
		kws[g.Name] = kw
	}

	// Predict every queue entry on both GPUs; measure ground truth for the
	// oracle comparison.
	pred := repro.ScheduleTimes{}
	actual := repro.ScheduleTimes{}
	for _, g := range gpus {
		pred[g.Name] = make([]float64, len(queue))
		actual[g.Name] = make([]float64, len(queue))
	}
	for i, name := range queue {
		net, err := repro.NetworkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, g := range gpus {
			p, err := kws[g.Name].PredictNetwork(net, repro.TrainBatchSize)
			if err != nil {
				log.Fatal(err)
			}
			pred[g.Name][i] = float64(p)
			tr, err := repro.Profile(net, repro.TrainBatchSize, g)
			if err != nil {
				log.Fatal(err)
			}
			actual[g.Name][i] = tr.E2ETime
		}
	}

	// Question 1: per-network GPU choice.
	choice, err := repro.ChooseGPU(pred, len(queue))
	if err != nil {
		log.Fatal(err)
	}
	truth, err := repro.ChooseGPU(actual, len(queue))
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	fmt.Println("per-network GPU choice (predicted vs measured-fastest):")
	for i, name := range queue {
		ok := choice[i] == truth[i]
		if ok {
			correct++
		}
		fmt.Printf("  %-14s → %-10s (fastest: %-10s correct=%t)\n", name, choice[i], truth[i], ok)
	}
	fmt.Printf("  %d/%d correct\n\n", correct, len(queue))

	// Question 2: queue scheduling by brute force over predicted times.
	plan, err := repro.ScheduleBruteForce(pred, len(queue))
	if err != nil {
		log.Fatal(err)
	}
	achieved, err := repro.MakespanOf(plan.GPUOf, actual)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := repro.ScheduleBruteForce(actual, len(queue))
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := repro.ScheduleGreedy(pred, len(queue))
	if err != nil {
		log.Fatal(err)
	}
	greedyAchieved, err := repro.MakespanOf(greedy.GPUOf, actual)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("queue schedule (brute force on predicted times):")
	for i, name := range queue {
		fmt.Printf("  %-14s → %s\n", name, plan.GPUOf[i])
	}
	fmt.Printf("\nmakespans: model plan %.1f ms (achieved), greedy %.1f ms, oracle %.1f ms\n",
		achieved*1e3, greedyAchieved*1e3, oracle.Makespan*1e3)
	fmt.Printf("model plan is within %.2f%% of the oracle\n",
		100*(achieved-oracle.Makespan)/oracle.Makespan)
}
