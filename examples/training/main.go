// Training workloads (the paper's future-work extension): profile full
// training steps — forward, backward and optimizer kernels — train a
// kernel-wise model on them, and predict training-step times for held-out
// networks, with prediction intervals.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Training retains every activation for the backward pass, so the
	// fully-utilizing batch size sits below inference's 512.
	const batch = 64

	var nets []*repro.Network
	for i, n := range repro.Zoo() {
		if i%6 == 0 && n.Name != "resnet50" {
			nets = append(nets, n)
		}
	}
	opt := repro.DefaultCollectOptions()
	opt.Batches = 8
	opt.Training = true
	opt.E2EBatchSizes = []int{batch}
	opt.DetailBatchSize = batch
	ds, report, err := repro.Collect(nets, []repro.GPU{repro.A100}, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training-step dataset: %s (%d OOM runs dropped)\n",
		ds.Summary(), len(report.OutOfMemory))

	kw, err := repro.TrainKWAt(ds, "A100", batch, repro.KWOptions{Training: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training-mode KW model: %d kernels → %d regression models\n",
		kw.KernelCount(), kw.ModelCount())

	// Predict a held-out network's training step and check against a
	// measurement; also show the inference step for the classic ≈3× ratio.
	net, err := repro.NetworkByName("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	trainTrace, err := repro.ProfileTraining(net, batch, repro.A100)
	if err != nil {
		log.Fatal(err)
	}
	inferTrace, err := repro.Profile(net, batch, repro.A100)
	if err != nil {
		log.Fatal(err)
	}
	iv, err := kw.PredictNetworkInterval(net, batch)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nresnet50 at batch %d on A100:\n", batch)
	fmt.Printf("  measured training step   %8.1f ms\n", trainTrace.E2ETime*1e3)
	fmt.Printf("  predicted training step  %8.1f ms  (±2σ: %.1f–%.1f ms)\n",
		float64(iv.Predicted)*1e3, float64(iv.Lo())*1e3, float64(iv.Hi())*1e3)
	fmt.Printf("  measured inference step  %8.1f ms\n", inferTrace.E2ETime*1e3)
	fmt.Printf("  training / inference     %8.2f×\n",
		trainTrace.E2ETime/inferTrace.E2ETime)
	fmt.Printf("  prediction error         %8.1f%%\n",
		100*abs(float64(iv.Predicted)-trainTrace.E2ETime)/trainTrace.E2ETime)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
