package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// The allocfree analyzer statically proves the repository's declared hot
// paths stay allocation-free. Functions annotated with a
//
//	//dnnperf:allocfree
//
// doc-comment directive (the compiled-plan predict path, the cache hit
// path, the serve /predict renderer) are checked for every construct that
// forces the Go compiler to allocate:
//
//   - append without preallocated-capacity evidence (the base must slice an
//     array, be a v[:0]/full-slice expression, or be a variable built in the
//     same function from a capacity-carrying make or array slice)
//   - map and slice composite literals, and &T{...} struct-pointer literals
//   - closures that capture enclosing variables
//   - conversions of non-pointer-shaped values to interface types
//     (explicit conversions, call arguments, assignments and returns)
//   - fmt.* calls, string concatenation, and string<->[]byte conversions
//   - calls into functions that are neither annotated (same package) nor on
//     the explicit whitelist of known-allocation-free callees
//
// make and new are deliberately not flagged: the capacity evidence rule
// presupposes that sized allocation at setup time is fine — the invariant
// guards the steady state, not initialization.
//
// The call rule is transitive one level by construction: an annotated
// function may only call annotated or whitelisted functions, and every
// annotated function is itself checked, so allocation-freedom propagates
// across the whole annotated call graph. Calls through function values or
// non-type-parameter interface methods cannot be proven and are flagged;
// type-parameter constraint methods (the cache's key.Hash()) are allowed
// because every instantiation in this repository is a leaf value method.

// AllocfreeDirective is the doc-comment annotation that opts a function
// into the allocfree check.
const AllocfreeDirective = "//dnnperf:allocfree"

const allocfreeName = "allocfree"

// Allocfree checks //dnnperf:allocfree functions for allocation-forcing
// constructs.
type Allocfree struct {
	whitelist map[string]bool
}

// NewAllocfree returns the analyzer with the given callee whitelist; each
// entry is "pkgpath.Func" or "pkgpath.Type.Method".
func NewAllocfree(whitelist []string) *Allocfree {
	m := make(map[string]bool, len(whitelist))
	for _, w := range whitelist {
		m[w] = true
	}
	return &Allocfree{whitelist: m}
}

// DefaultAllocWhitelist lists the callees the repository's hot paths are
// allowed to reach without an annotation: stdlib primitives that are
// documented (and benchmarked here) not to allocate, plus the handful of
// internal leaf methods the predict path crosses package boundaries for.
func DefaultAllocWhitelist() []string {
	return []string{
		// strconv's append family writes into the caller's buffer.
		"strconv.AppendInt",
		"strconv.AppendUint",
		"strconv.AppendFloat",
		"strconv.AppendBool",
		"strconv.AppendQuote",
		"strconv.Atoi",
		// Locks, waitgroups, pools and atomics.
		"sync.Mutex.Lock",
		"sync.Mutex.Unlock",
		"sync.RWMutex.Lock",
		"sync.RWMutex.Unlock",
		"sync.RWMutex.RLock",
		"sync.RWMutex.RUnlock",
		"sync.WaitGroup.Add",
		"sync.WaitGroup.Done",
		"sync.WaitGroup.Wait",
		"sync.Pool.Get",
		"sync.Pool.Put",
		"sync.Once.Do",
		"sync/atomic.Int64.Add",
		"sync/atomic.Int64.Load",
		"sync/atomic.Int64.Store",
		"sync/atomic.Uint64.Add",
		"sync/atomic.Uint64.Load",
		"sync/atomic.Bool.Load",
		"sync/atomic.Pointer.Load",
		// bytes.Buffer writes amortize into the pooled buffer.
		"bytes.Buffer.Write",
		"bytes.Buffer.WriteString",
		"bytes.Buffer.WriteByte",
		"bytes.Buffer.Reset",
		"bytes.Buffer.Bytes",
		"bytes.Buffer.Len",
		// Allocation-free string scanning.
		"strings.Index",
		"strings.IndexByte",
		"strings.HasPrefix",
		"strings.HasSuffix",
		"strings.TrimSpace",
		// Monotonic clock reads for stage attribution.
		"time.Now",
		"time.Time.IsZero",
		"time.Time.Sub",
		"time.Duration.Seconds",
		// Internal leaf methods of the predict path.
		"repro/internal/regression.Line.Predict",
		"repro/internal/units.Seconds.Float64",
		"repro/internal/units.Seconds.IsNaN",
		"repro/internal/obs.StartTimer",
		"repro/internal/obs.Timer.Stop",
		"repro/internal/obs.Counter.Inc",
		"repro/internal/obs.Counter.Add",
		"repro/internal/obs.Enabled",
		"repro/internal/obs.ParseTraceparent",
		"repro/internal/obs.Histogram.Observe",
		"repro/internal/cache.Sharded.Get",
		"repro/internal/registry.Registry.Current",
	}
}

// Name implements Analyzer.
func (a *Allocfree) Name() string { return allocfreeName }

// Doc implements Analyzer.
func (a *Allocfree) Doc() string {
	return "//dnnperf:allocfree functions must not contain allocation-forcing constructs"
}

// Run implements Analyzer.
func (a *Allocfree) Run(p *Pass) []Finding {
	annotated := map[types.Object]bool{}
	var checked []*ast.FuncDecl
	for _, fd := range funcDecls(p) {
		if !hasDirective(fd.Doc, AllocfreeDirective) {
			continue
		}
		if obj := p.Info.Defs[fd.Name]; obj != nil {
			annotated[obj] = true
		}
		checked = append(checked, fd)
	}
	var findings []Finding
	for _, fd := range checked {
		a.checkFunc(p, fd, annotated, &findings)
	}
	return findings
}

// checkFunc walks one annotated function body.
func (a *Allocfree) checkFunc(p *Pass, fd *ast.FuncDecl, annotated map[types.Object]bool, findings *[]Finding) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if capturesVariables(p, fd, x) {
				reportf(p, findings, allocfreeName, x,
					"closure captures enclosing variables and may heap-allocate in %s", fd.Name.Name)
			} else {
				reportf(p, findings, allocfreeName, x,
					"function literal forces an allocation when it escapes in %s", fd.Name.Name)
			}
			return false // the literal's body runs under its own rules
		case *ast.UnaryExpr:
			if _, ok := unparen(x.X).(*ast.CompositeLit); ok && x.Op == token.AND {
				reportf(p, findings, allocfreeName, x,
					"&-composite literal heap-allocates in %s", fd.Name.Name)
				return false
			}
		case *ast.CompositeLit:
			if t := p.Info.Types[x].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					reportf(p, findings, allocfreeName, x, "map literal allocates in %s", fd.Name.Name)
				case *types.Slice:
					reportf(p, findings, allocfreeName, x, "slice literal allocates in %s", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if x.Op.String() == "+" && isNonConstString(p, x) {
				reportf(p, findings, allocfreeName, x,
					"string concatenation allocates in %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			a.checkAssign(p, fd, x, findings)
		case *ast.ReturnStmt:
			a.checkReturn(p, fd, x, findings)
		case *ast.CallExpr:
			a.checkCall(p, fd, x, annotated, findings)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkCall classifies one call: conversion, builtin, or function call.
func (a *Allocfree) checkCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, annotated map[types.Object]bool, findings *[]Finding) {
	fun := unparen(call.Fun)
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		a.checkConversion(p, fd, call, tv.Type, findings)
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				a.checkAppend(p, fd, call, findings)
			}
			return
		}
	}
	callee := calleeFunc(p, fun)
	switch {
	case callee == nil:
		if sel, ok := fun.(*ast.SelectorExpr); ok && isTypeParamMethod(p, sel) {
			break // constraint method on a type parameter: leaf by convention
		}
		reportf(p, findings, allocfreeName, call,
			"call through a function value or interface cannot be proven allocation-free in %s", fd.Name.Name)
		return
	case callee.Pkg() == p.Pkg:
		if !annotated[callee.Origin()] {
			reportf(p, findings, allocfreeName, call,
				"%s calls %s, which is not annotated %s", fd.Name.Name, callee.Name(), AllocfreeDirective)
		}
	default:
		name := qualifiedFuncName(callee)
		if name == "" {
			break // type-parameter method resolved through the constraint
		}
		if strings.HasPrefix(name, "fmt.") {
			reportf(p, findings, allocfreeName, call,
				"fmt call allocates in %s", fd.Name.Name)
			return
		}
		if !a.whitelist[name] {
			reportf(p, findings, allocfreeName, call,
				"%s calls %s, which is not on the allocfree whitelist", fd.Name.Name, name)
		}
	}
	a.checkCallArgs(p, fd, call, findings)
}

// checkConversion flags conversions that allocate: non-pointer-shaped
// values boxed into interfaces, and string<->[]byte/[]rune copies.
func (a *Allocfree) checkConversion(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, target types.Type, findings *[]Finding) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if types.IsInterface(target) {
		if boxes(p, arg) {
			reportf(p, findings, allocfreeName, call,
				"conversion of a non-pointer value to an interface allocates in %s", fd.Name.Name)
		}
		return
	}
	src := p.Info.Types[arg].Type
	if src == nil {
		return
	}
	tb, tOk := target.Underlying().(*types.Basic)
	_, sSlice := src.Underlying().(*types.Slice)
	if tOk && tb.Info()&types.IsString != 0 && sSlice {
		reportf(p, findings, allocfreeName, call,
			"[]byte-to-string conversion copies and allocates in %s", fd.Name.Name)
		return
	}
	sb, sOk := src.Underlying().(*types.Basic)
	_, tSlice := target.Underlying().(*types.Slice)
	if sOk && sb.Info()&types.IsString != 0 && tSlice {
		reportf(p, findings, allocfreeName, call,
			"string-to-slice conversion copies and allocates in %s", fd.Name.Name)
	}
}

// checkCallArgs flags arguments boxed into interface-typed parameters.
func (a *Allocfree) checkCallArgs(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, findings *[]Finding) {
	tv, ok := p.Info.Types[unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(p, arg) {
			reportf(p, findings, allocfreeName, arg,
				"passing a non-pointer value as an interface argument allocates in %s", fd.Name.Name)
		}
	}
}

// checkAssign flags plain assignments that box a value into an
// interface-typed destination.
func (a *Allocfree) checkAssign(p *Pass, fd *ast.FuncDecl, as *ast.AssignStmt, findings *[]Finding) {
	switch as.Tok.String() {
	case "+=":
		if len(as.Lhs) == 1 && isStringType(p.Info.Types[as.Lhs[0]].Type) {
			reportf(p, findings, allocfreeName, as,
				"string concatenation allocates in %s", fd.Name.Name)
		}
		return
	case "=":
	default:
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := p.Info.Types[lhs].Type
		if lt != nil && types.IsInterface(lt) && boxes(p, as.Rhs[i]) {
			reportf(p, findings, allocfreeName, as.Rhs[i],
				"assigning a non-pointer value to an interface allocates in %s", fd.Name.Name)
		}
	}
}

// checkReturn flags returns that box a value into an interface result.
func (a *Allocfree) checkReturn(p *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt, findings *[]Finding) {
	results := fd.Type.Results
	if results == nil || ret.Results == nil {
		return
	}
	var resultTypes []types.Type
	for _, field := range results.List {
		t := p.Info.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // return f() forwarding; the call is checked on its own
	}
	for i, r := range ret.Results {
		if resultTypes[i] != nil && types.IsInterface(resultTypes[i]) && boxes(p, r) {
			reportf(p, findings, allocfreeName, r,
				"returning a non-pointer value as an interface allocates in %s", fd.Name.Name)
		}
	}
}

// checkAppend requires capacity evidence on an append's base slice.
func (a *Allocfree) checkAppend(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, findings *[]Finding) {
	if len(call.Args) == 0 {
		return
	}
	if !a.appendEvidence(p, fd, call.Args[0]) {
		reportf(p, findings, allocfreeName, call,
			"append without preallocated-capacity evidence may grow and allocate in %s", fd.Name.Name)
	}
}

// appendEvidence reports whether base visibly carries preallocated
// capacity: it slices an array, is a v[:0] or full-slice expression, or is
// a variable assigned in this function from a capacity-carrying make or an
// array slice.
func (a *Allocfree) appendEvidence(p *Pass, fd *ast.FuncDecl, base ast.Expr) bool {
	base = unparen(base)
	if se, ok := base.(*ast.SliceExpr); ok {
		if se.Slice3 {
			return true
		}
		if slicesArray(p, se.X) {
			return true
		}
		if isConstZeroExpr(p, se.High) && (se.Low == nil || isConstZeroExpr(p, se.Low)) {
			return true
		}
	}
	id := rootIdent(base)
	if id == nil {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if p.Info.Defs[lid] != obj && p.Info.Uses[lid] != obj {
				continue
			}
			if rhsCarriesCapacity(p, unparen(as.Rhs[i])) {
				found = true
			}
		}
		return true
	})
	return found
}

// rhsCarriesCapacity reports whether an assignment source visibly sizes
// its result: make with an explicit capacity, or any array slice.
func rhsCarriesCapacity(p *Pass, rhs ast.Expr) bool {
	switch x := rhs.(type) {
	case *ast.CallExpr:
		if id, ok := unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return len(x.Args) >= 3
			}
		}
	case *ast.SliceExpr:
		return slicesArray(p, x.X) || x.Slice3
	}
	return false
}

// slicesArray reports whether e is an array or pointer-to-array, so slicing
// it yields capacity without allocating.
func slicesArray(p *Pass, e ast.Expr) bool {
	t := p.Info.Types[e].Type
	if t == nil {
		return false
	}
	u := t.Underlying()
	if _, ok := u.(*types.Array); ok {
		return true
	}
	if ptr, ok := u.(*types.Pointer); ok {
		_, ok = ptr.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// capturesVariables reports whether lit references any variable declared in
// fd outside the literal itself (including fd's parameters and receiver).
func capturesVariables(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= fd.Pos() && obj.Pos() < lit.Pos() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

// boxes reports whether storing e in an interface forces a heap
// allocation: its type is concrete and not pointer-shaped, and the value is
// not a constant (constants box from static data).
func boxes(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	if _, ok := t.(*types.TypeParam); ok {
		return false // instantiation-dependent; proven at the instantiation
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

// calleeFunc resolves a call expression's static callee, or nil for calls
// through function values and interfaces.
func calleeFunc(p *Pass, fun ast.Expr) *types.Func {
	switch x := fun.(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[x].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if _, ifaceRecv := sel.Recv().Underlying().(*types.Interface); ifaceRecv {
					return nil
				}
				return f
			}
			return nil
		}
		// Package-qualified: pkg.Func.
		if f, ok := p.Info.Uses[x.Sel].(*types.Func); ok {
			return f
		}
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		return calleeFunc(p, unparen(x.X))
	case *ast.IndexListExpr:
		return calleeFunc(p, unparen(x.X))
	}
	return nil
}

// isTypeParamMethod reports whether sel is a method call whose receiver is
// a type parameter (resolved through its constraint).
func isTypeParamMethod(p *Pass, sel *ast.SelectorExpr) bool {
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok = t.(*types.TypeParam)
	return ok
}

// qualifiedFuncName renders fn as "pkgpath.Func" or "pkgpath.Type.Method".
// Returns "" for methods whose receiver is a type parameter.
func qualifiedFuncName(fn *types.Func) string {
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "" // type-parameter receiver
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			return obj.Name() + "." + fn.Name() // error.Error and friends
		}
		return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// isNonConstString reports whether a binary + has string type and at least
// one non-constant operand (constant folding concatenates at compile time).
func isNonConstString(p *Pass, b *ast.BinaryExpr) bool {
	tv, ok := p.Info.Types[b]
	if !ok || !isStringType(tv.Type) {
		return false
	}
	return tv.Value == nil
}

// isStringType reports whether t's underlying type is a string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstZeroExpr reports whether e is a constant zero.
func isConstZeroExpr(p *Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}
