// Package analysis implements the repository's domain-specific static
// analyzers. The prediction pipeline makes promises the type system alone
// cannot state — bit-identical refits regardless of map iteration order,
// unit-coherent arithmetic on seconds/FLOPs/bytes, epsilon-aware float
// comparison, lock hygiene under the sharded caches, and model coefficients
// that change only through blessed mutators. Each promise is encoded as one
// analyzer here, checked over the whole module by cmd/dnnlint, and enforced
// in CI through make verify.
//
// The analyzers are built on the standard library only (go/ast, go/parser,
// go/types); nothing outside the toolchain is imported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Finding is one invariant violation at a source position.
type Finding struct {
	// Analyzer is the invariant's name (e.g. "detrange").
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message explains the violation and the expected fix.
	Message string
}

// String renders the finding in the conventional file:line: [name] message
// form used by cmd/dnnlint.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass is one type-checked package presented to the analyzers. Test files
// are excluded by the loader: the invariants guard production behaviour, and
// tests legitimately use exact comparison (e.g. bit-identity assertions).
type Pass struct {
	// Fset maps AST nodes to positions.
	Fset *token.FileSet
	// Files are the package's parsed non-test files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's expression and object resolution.
	Info *types.Info
}

// Analyzer is one checked invariant.
type Analyzer interface {
	// Name is the invariant's short name, shown in findings.
	Name() string
	// Doc is a one-line description of what the invariant guards.
	Doc() string
	// Run reports the package's violations.
	Run(p *Pass) []Finding
}

// All returns the production analyzer set with repository-default
// configuration, in stable order.
func All() []Analyzer {
	return []Analyzer{
		NewDetrange(),
		NewUnitsafe(DefaultUnitScope()),
		NewFloateq(),
		NewLocksafe(),
		NewStaleplan(),
		NewAllocfree(DefaultAllocWhitelist()),
		NewGoroleak(),
		NewHttpcontract(),
	}
}

// reportf appends a finding at n's position.
func reportf(p *Pass, findings *[]Finding, name string, n ast.Node, format string, args ...any) {
	*findings = append(*findings, Finding{
		Analyzer: name,
		Pos:      p.Fset.Position(n.Pos()),
		Message:  fmt.Sprintf(format, args...),
	})
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootIdent walks to the base identifier of a selector/index chain:
// a.b.c → a, m[k] → m. Returns nil for expressions with no identifier base
// (function call results, literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcDecls yields every function declaration in the pass.
func funcDecls(p *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
