package analysis

import (
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// Shared across tests: the source importer re-checks stdlib dependencies
// from source, so one importer per test binary keeps the suite fast.
var (
	fixtureFset = token.NewFileSet()
	fixtureImp  = NewImporter(fixtureFset)
)

// loadFixture type-checks one testdata fixture package.
func loadFixture(t *testing.T, name string) *Pass {
	t.Helper()
	pass, err := LoadDir(fixtureFset, fixtureImp, filepath.Join("testdata", name), name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return pass
}

// runFixture applies one analyzer to a fixture and checks the finding count
// and that every finding carries the analyzer's name and a position inside
// the fixture.
func runFixture(t *testing.T, a Analyzer, fixture string, want int) []Finding {
	t.Helper()
	findings := a.Run(loadFixture(t, fixture))
	for _, f := range findings {
		if f.Analyzer != a.Name() {
			t.Errorf("%s: finding tagged %q, want %q", fixture, f.Analyzer, a.Name())
		}
		if !strings.Contains(f.Pos.Filename, fixture) {
			t.Errorf("%s: finding at %s outside the fixture", fixture, f.Pos.Filename)
		}
		if f.Pos.Line == 0 {
			t.Errorf("%s: finding without a line: %s", fixture, f)
		}
	}
	if len(findings) != want {
		for _, f := range findings {
			t.Logf("  %s", f)
		}
		t.Fatalf("%s: %d findings, want %d", fixture, len(findings), want)
	}
	return findings
}

func TestDetrangePositive(t *testing.T) {
	findings := runFixture(t, NewDetrange(), "detrangepos", 4)
	// One finding per hazard class: float accumulation, unsorted append,
	// accumulator fold, serialized write.
	var kinds [4]bool
	for _, f := range findings {
		switch {
		case strings.Contains(f.Message, "float accumulation"):
			kinds[0] = true
		case strings.Contains(f.Message, "append to"):
			kinds[1] = true
		case strings.Contains(f.Message, "folds statistics"):
			kinds[2] = true
		case strings.Contains(f.Message, "serializes entries"):
			kinds[3] = true
		}
	}
	for i, seen := range kinds {
		if !seen {
			t.Errorf("hazard class %d not reported", i)
		}
	}
}

func TestDetrangeNegative(t *testing.T) {
	runFixture(t, NewDetrange(), "detrangeneg", 0)
}

// TestDetrangeGlobalRand covers the global-randomness rule: the four
// package-level draws are flagged; the seeded-generator functions are not.
func TestDetrangeGlobalRand(t *testing.T) {
	findings := runFixture(t, NewDetrange(), "detrangerand", 4)
	for _, f := range findings {
		if !strings.Contains(f.Message, "process-global random source") {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	want := map[string]bool{
		"math/rand.Float64": false, "math/rand.Intn": false,
		"math/rand.Shuffle": false, "math/rand.Perm": false,
	}
	for _, f := range findings {
		for name := range want {
			if strings.HasPrefix(f.Message, name+" ") {
				want[name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("%s draw not reported", name)
		}
	}
}

func TestFloateqPositive(t *testing.T) {
	runFixture(t, NewFloateq(), "floateqpos", 3)
}

func TestFloateqNegative(t *testing.T) {
	runFixture(t, NewFloateq(), "floateqneg", 0)
}

func TestUnitsafePositive(t *testing.T) {
	findings := runFixture(t, NewUnitsafe([]string{"unitsafepos"}), "unitsafepos", 5)
	mixing, naming := 0, 0
	for _, f := range findings {
		if strings.Contains(f.Message, "laundered") {
			mixing++
		} else {
			naming++
		}
	}
	if mixing != 2 || naming != 3 {
		t.Fatalf("mixing=%d naming=%d, want 2 and 3", mixing, naming)
	}
}

func TestUnitsafeNegative(t *testing.T) {
	runFixture(t, NewUnitsafe([]string{"unitsafeneg"}), "unitsafeneg", 0)
}

func TestUnitsafeScopeGatesNameRule(t *testing.T) {
	// Out of scope, only the conversion-laundering rule applies: the raw
	// naming findings (3 of 5) disappear.
	runFixture(t, NewUnitsafe(nil), "unitsafepos", 2)
}

func TestLocksafePositive(t *testing.T) {
	findings := runFixture(t, NewLocksafe(), "locksafepos", 3)
	var copies, unpaired int
	for _, f := range findings {
		if strings.Contains(f.Message, "no matching") {
			unpaired++
		} else {
			copies++
		}
	}
	if copies != 2 || unpaired != 1 {
		t.Fatalf("copies=%d unpaired=%d, want 2 and 1", copies, unpaired)
	}
}

func TestLocksafeNegative(t *testing.T) {
	runFixture(t, NewLocksafe(), "locksafeneg", 0)
}

// TestUnitsafeLoadgenFixture models the load-generator result surface: a
// measurement window or latency summary that regresses to a raw float64
// must be flagged once repro/internal/loadgen is in the unitsafe scope.
func TestUnitsafeLoadgenFixture(t *testing.T) {
	runFixture(t, NewUnitsafe([]string{"unitsafeloadgen"}), "unitsafeloadgen", 2)
}

// TestLocksafeFleetFixture models the fleet proxy's routing-table shapes:
// a copied table mutex and a lock leaked on the mark-unready path.
func TestLocksafeFleetFixture(t *testing.T) {
	findings := runFixture(t, NewLocksafe(), "locksafefleet", 2)
	var copies, unpaired int
	for _, f := range findings {
		if strings.Contains(f.Message, "no matching") {
			unpaired++
		} else {
			copies++
		}
	}
	if copies != 1 || unpaired != 1 {
		t.Fatalf("copies=%d unpaired=%d, want 1 and 1", copies, unpaired)
	}
}

// TestLocksafeRegistryFixture models the registry publish path: the leaked
// publisher lock is flagged, the deferred-unlock shape is not.
func TestLocksafeRegistryFixture(t *testing.T) {
	findings := runFixture(t, NewLocksafe(), "locksaferegistry", 1)
	if !strings.Contains(findings[0].Message, "no matching") {
		t.Fatalf("unexpected finding: %s", findings[0])
	}
}

func TestStaleplanPositive(t *testing.T) {
	runFixture(t, NewStaleplan(), "staleplanpos", 3)
}

func TestStaleplanNegative(t *testing.T) {
	runFixture(t, NewStaleplan(), "staleplanneg", 0)
}

// TestAllStableOrder pins the production analyzer set and its order, which
// cmd/dnnlint relies on for deterministic output.
func TestAllStableOrder(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name())
	}
	want := []string{
		"detrange", "unitsafe", "floateq", "locksafe", "staleplan",
		"allocfree", "goroleak", "httpcontract",
	}
	if len(names) != len(want) {
		t.Fatalf("analyzers = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("analyzers = %v, want %v", names, want)
		}
	}
}

// TestDefaultUnitScope pins the unit-disciplined package set.
func TestDefaultUnitScope(t *testing.T) {
	scope := DefaultUnitScope()
	for _, p := range []string{
		"repro/internal/core", "repro/internal/dataset",
		"repro/internal/fleet", "repro/internal/loadgen", "repro/internal/registry",
	} {
		found := false
		for _, s := range scope {
			if s == p {
				found = true
			}
		}
		if !found {
			t.Errorf("default scope missing %s", p)
		}
	}
}

// TestLoadDirRejectsTestFiles ensures test files never reach analyzers.
func TestLoadDirRejectsTestFiles(t *testing.T) {
	pass := loadFixture(t, "floateqpos")
	for _, f := range pass.Files {
		name := fixtureFset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Fatalf("loader admitted test file %s", name)
		}
	}
	if pass.Pkg == nil || pass.Info == nil {
		t.Fatal("pass missing type information")
	}
	var _ *types.Info = pass.Info
}
