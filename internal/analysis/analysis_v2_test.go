package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllocfreePositive(t *testing.T) {
	findings := runFixture(t, NewAllocfree(DefaultAllocWhitelist()), "allocfreepos", 13)
	// One finding per allocation class the fixture stages.
	classes := map[string]bool{
		"append":        false, // append without capacity evidence
		"map literal":   false,
		"slice literal": false,
		"composite":     false, // &struct{} literal
		"closure":       false,
		"interface":     false, // non-pointer boxed into an interface
		"fmt call":      false,
		"concatenation": false,
		"conversion":    false, // string -> []byte
		"helper":        false, // non-annotated same-package callee
	}
	for _, f := range findings {
		for needle := range classes {
			if strings.Contains(f.Message, needle) {
				classes[needle] = true
			}
		}
	}
	for needle, seen := range classes {
		if !seen {
			t.Errorf("no finding mentions %q", needle)
		}
	}
}

func TestAllocfreeNegative(t *testing.T) {
	runFixture(t, NewAllocfree(DefaultAllocWhitelist()), "allocfreeneg", 0)
}

func TestGoroleakPositive(t *testing.T) {
	runFixture(t, NewGoroleak(), "goroleakpos", 3)
}

func TestGoroleakNegative(t *testing.T) {
	runFixture(t, NewGoroleak(), "goroleakneg", 0)
}

func TestHttpcontractPositive(t *testing.T) {
	findings := runFixture(t, NewHttpcontract(), "httpcontractpos", 6)
	classes := map[string]bool{
		"cap":       false, // uncapped body read
		"twice":     false, // double WriteHeader
		"after":     false, // body bytes before the status
		"iteration": false, // status committed inside a loop
	}
	for _, f := range findings {
		for needle := range classes {
			if strings.Contains(f.Message, needle) {
				classes[needle] = true
			}
		}
	}
	for needle, seen := range classes {
		if !seen {
			t.Errorf("no finding mentions %q", needle)
		}
	}
}

func TestHttpcontractNegative(t *testing.T) {
	runFixture(t, NewHttpcontract(), "httpcontractneg", 0)
}

// TestFloateqNamedConstant pins the constant-zero exemption to the constant's
// value, not its spelling: a float-typed named zero is exempt, a nonzero
// named constant is not.
func TestFloateqNamedConstant(t *testing.T) {
	runFixture(t, NewFloateq(), "floateqconst", 1)
}

// TestLocksafeConditionalDefer documents that a defer mu.Unlock() inside one
// branch pairs the Lock: locksafe requires a release somewhere in the
// function, not on every path.
func TestLocksafeConditionalDefer(t *testing.T) {
	runFixture(t, NewLocksafe(), "locksafecond", 0)
}

// TestDetrangeMapIterators pins that ranging maps.Keys/maps.Values is
// treated exactly like ranging the map itself.
func TestDetrangeMapIterators(t *testing.T) {
	runFixture(t, NewDetrange(), "detrangeiter", 2)
}

// TestSuppressions runs detrange over the suppression fixture and applies
// the directives: a well-formed directive silences its finding, a bare
// directive becomes its own finding and silences nothing, and a directive
// naming the wrong analyzer silences nothing.
func TestSuppressions(t *testing.T) {
	pass := loadFixture(t, "suppressfix")
	raw := NewDetrange().Run(pass)
	if len(raw) != 3 {
		for _, f := range raw {
			t.Logf("  %s", f)
		}
		t.Fatalf("pre-suppression findings = %d, want 3", len(raw))
	}
	got := ApplySuppressions(pass, raw)
	var suppress, detrange int
	for _, f := range got {
		switch f.Analyzer {
		case SuppressName:
			suppress++
			if !strings.Contains(f.Message, "reason") {
				t.Errorf("malformed-directive finding does not mention the missing reason: %s", f)
			}
		case "detrange":
			detrange++
		default:
			t.Errorf("unexpected analyzer %q in %s", f.Analyzer, f)
		}
	}
	if suppress != 1 || detrange != 2 {
		for _, f := range got {
			t.Logf("  %s", f)
		}
		t.Fatalf("post-suppression: %d suppress + %d detrange findings, want 1 + 2", suppress, detrange)
	}
}

// TestSuppressionNeverSuppressesItself pins that a bare directive cannot be
// silenced by another directive above it.
func TestSuppressionNeverSuppressesItself(t *testing.T) {
	pass := loadFixture(t, "suppressfix")
	got := ApplySuppressions(pass, nil)
	if len(got) != 1 || got[0].Analyzer != SuppressName {
		t.Fatalf("findings = %v, want exactly the malformed-directive finding", got)
	}
}

func TestWriteSARIF(t *testing.T) {
	findings := []Finding{{
		Analyzer: "allocfree",
		Pos:      token.Position{Filename: filepath.Join("/tmp", "mod", "internal", "core", "plan.go"), Line: 10, Column: 3},
		Message:  `append may allocate ("quoted")`,
	}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, All(), findings, filepath.Join("/tmp", "mod")); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 / 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dnnlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the suppress pseudo-rule.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "allocfree" || res.Level != "error" {
		t.Errorf("ruleId=%q level=%q", res.RuleID, res.Level)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/plan.go" {
		t.Errorf("uri = %q, want module-relative forward-slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 10 || loc.Region.StartColumn != 3 {
		t.Errorf("region = %+v", loc.Region)
	}
}

func TestWriteFindingsJSON(t *testing.T) {
	findings := []Finding{{
		Analyzer: "goroleak",
		Pos:      token.Position{Filename: filepath.Join("/tmp", "mod", "cmd", "x", "main.go"), Line: 7, Column: 2},
		Message:  "goroutine has no termination path",
	}}
	var buf bytes.Buffer
	if err := WriteFindingsJSON(&buf, findings, filepath.Join("/tmp", "mod")); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("JSON output invalid: %v\n%s", err, buf.String())
	}
	if len(got) != 1 {
		t.Fatalf("entries = %d, want 1", len(got))
	}
	if got[0]["analyzer"] != "goroleak" || got[0]["file"] != "cmd/x/main.go" {
		t.Errorf("entry = %v", got[0])
	}
	if got[0]["line"] != float64(7) {
		t.Errorf("line = %v, want 7", got[0]["line"])
	}
	// Empty slice must serialize as [], not null: consumers iterate it.
	buf.Reset()
	if err := WriteFindingsJSON(&buf, nil, "/tmp"); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty findings serialize as %q, want []", s)
	}
}

// TestLoadPackages pins the parallel loader's contract: results come back in
// input order, failures are per-package, and successes carry a usable Pass.
func TestLoadPackages(t *testing.T) {
	pkgs := []PackageDir{
		{Dir: filepath.Join("testdata", "detrangepos"), ImportPath: "detrangepos"},
		{Dir: filepath.Join("testdata", "nosuchdir"), ImportPath: "nosuchdir"},
		{Dir: filepath.Join("testdata", "floateqpos"), ImportPath: "floateqpos"},
	}
	results := LoadPackages(fixtureFset, fixtureImp, pkgs)
	if len(results) != len(pkgs) {
		t.Fatalf("results = %d, want %d", len(results), len(pkgs))
	}
	for i, res := range results {
		if res.ImportPath != pkgs[i].ImportPath {
			t.Errorf("result %d is %q, want %q (order must match input)", i, res.ImportPath, pkgs[i].ImportPath)
		}
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("valid packages failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("missing directory loaded without error")
	}
	if findings := NewDetrange().Run(results[0].Pass); len(findings) == 0 {
		t.Error("pass from LoadPackages finds nothing in detrangepos")
	}
}

// hotPathAnnotations maps repo-relative files to the functions that must
// carry the //dnnperf:allocfree contract because their steady state is
// benchmarked at 0 allocs/op.
var hotPathAnnotations = map[string][]string{
	"internal/core/plan.go":     {"Predict", "PredictSweepInto", "predictTerms", "networkFingerprint", "str", "u64", "num", "flag"},
	"internal/core/model.go":    {"clampTime"},
	"internal/core/kw.go":       {"PredictNetwork", "planFor"},
	"internal/cache/cache.go":   {"Get", "moveToFront", "pushFront", "unlink"},
	"cmd/dnnperf/serve.go":      {"renderPredict", "queryValue", "setHeader", "writeJSONString"},
	"cmd/dnnperf/servetrace.go": {"traceparentOf", "sampleRequest", "traceOf", "startStages", "mark"},
	"internal/sched/localsearch.go": {
		"heapSwap", "siftUp", "siftDown", "heapFix", "maxExcluding",
		"evalMove", "evalSwap", "applySwap",
	},
	"internal/fleetsim/event.go": {
		"reset", "less", "push", "pop", "siftUp", "siftDown", "full", "at",
	},
	"internal/fleetsim/steptable.go": {"At", "next", "float64"},
	"internal/fleetsim/sim.go":       {"route", "startBatch"},
}

// TestHotPathAnnotationCoverage parses the production hot-path files and
// asserts every 0-allocs/op function declares the allocfree contract, so
// dropping an annotation (or renaming a function away from it) fails here
// even before dnnlint runs.
func TestHotPathAnnotationCoverage(t *testing.T) {
	fset := token.NewFileSet()
	for rel, fns := range hotPathAnnotations {
		path := filepath.Join("..", "..", filepath.FromSlash(rel))
		annotated, err := annotatedFuncNames(fset, path)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, fn := range fns {
			if !annotated[fn] {
				t.Errorf("%s: %s lacks the %s directive", rel, fn, AllocfreeDirective)
			}
		}
	}
}

// annotatedFuncNames parses one file (syntax only) and returns the names of
// functions whose doc comment carries the allocfree directive.
func annotatedFuncNames(fset *token.FileSet, path string) (map[string]bool, error) {
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective(fd.Doc, AllocfreeDirective) {
			out[fd.Name.Name] = true
		}
	}
	return out, nil
}
