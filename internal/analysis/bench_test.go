package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

// BenchmarkDnnlintModule measures one full dnnlint pass over the module:
// expand ./..., load every package through the shared memoized importer in
// parallel, run all eight analyzers and apply suppressions. This is the
// wall-clock cost `make lint` adds to the pre-merge gate, so it is gated in
// scripts/bench_compare.sh against BENCH_baseline.json. Iterations after
// the first reuse the memoized import graph (exactly how the driver's loads
// share work within one run).
func BenchmarkDnnlintModule(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	module, err := ModuleName(root)
	if err != nil {
		b.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	pkgs := make([]PackageDir, len(dirs))
	for i, dir := range dirs {
		pkgs[i] = PackageDir{Dir: dir, ImportPath: ImportPathFor(module, root, dir)}
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset)
	analyzers := All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, res := range LoadPackages(fset, imp, pkgs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			var findings []Finding
			for _, a := range analyzers {
				findings = append(findings, a.Run(res.Pass)...)
			}
			total += len(ApplySuppressions(res.Pass, findings))
		}
		if total != 0 {
			b.Fatalf("module not clean: %d findings", total)
		}
	}
}
