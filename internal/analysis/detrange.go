package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detrange guards the repository's determinism contract: fitting, refitting
// and serialization must be bit-identical across runs. Go deliberately
// randomizes map iteration order, and float addition is not associative, so
// any loop that ranges a map while (a) accumulating floats, (b) appending to
// a slice that survives the loop, or (c) merging statistics accumulators
// produces run-dependent results. Such loops must iterate a sorted key
// slice instead (see sortedStringKeys in internal/core).
//
// Suppression: the sort-after idiom — appending a map's keys to a slice and
// sorting that slice later in the same function — is exactly the sanctioned
// fix, so an append whose target is subsequently passed to a sort call is
// not reported.
//
// The same contract also bans math/rand's process-global source: package-
// level rand.Intn/Float64/Shuffle/... draw from a shared, unseedable stream
// whose values depend on every other draw in the process, so results cannot
// be reproduced from an instance seed. Constructors (rand.New,
// rand.NewSource, ...) and methods on an explicit *rand.Rand are the
// sanctioned alternative and are not reported.
type Detrange struct{}

// NewDetrange returns the analyzer.
func NewDetrange() *Detrange { return &Detrange{} }

// Name implements Analyzer.
func (*Detrange) Name() string { return "detrange" }

// Doc implements Analyzer.
func (*Detrange) Doc() string {
	return "order-sensitive work inside a range over a map (nondeterministic iteration); math/rand global-source draws"
}

// accumulatorMethods are method names treated as order-sensitive statistic
// folds when invoked inside a map range (regression.Accumulator's API).
var accumulatorMethods = map[string]bool{"Add": true, "Merge": true}

// writerMethods are serialization calls whose output order becomes the map's
// iteration order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "Encode": true,
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
}

// Run implements Analyzer.
func (a *Detrange) Run(p *Pass) []Finding {
	var findings []Finding
	for _, fd := range funcDecls(p) {
		a.checkFunc(p, fd, &findings)
	}
	return findings
}

// checkFunc inspects one function for map ranges with order-sensitive
// bodies and for global-source randomness.
func (a *Detrange) checkFunc(p *Pass, fd *ast.FuncDecl, findings *[]Finding) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			a.checkGlobalRand(p, call, findings)
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap && !isMapIterator(p, rng.X) {
			return true
		}
		a.checkMapRange(p, fd, rng, findings)
		return true
	})
}

// isMapIterator reports whether the range operand is a maps.Keys /
// maps.Values / maps.All iterator — ranging one of those visits entries in
// the same randomized order as ranging the map directly.
func isMapIterator(p *Pass, x ast.Expr) bool {
	call, ok := unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(p, unparen(call.Fun))
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "maps" {
		return false
	}
	switch fn.Name() {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

// checkGlobalRand flags package-level math/rand (and math/rand/v2) calls:
// they draw from the process-global source, so values depend on unrelated
// draws anywhere in the program and no instance seed can reproduce a run.
// Constructors (New, NewSource, NewZipf, ...) build explicit seeded
// generators — the sanctioned idiom — and methods on *rand.Rand have a
// receiver, so neither is reported.
func (a *Detrange) checkGlobalRand(p *Pass, call *ast.CallExpr, findings *[]Finding) {
	fn := calleeFunc(p, unparen(call.Fun))
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods on an explicit generator are fine
	}
	if strings.HasPrefix(fn.Name(), "New") {
		return // constructors of seeded generators are the fix, not the bug
	}
	reportf(p, findings, a.Name(), call,
		"%s.%s draws from the process-global random source; results depend on unrelated draws and no seed reproduces them — use a per-instance rand.New(rand.NewSource(seed))",
		path, fn.Name())
}

// checkMapRange reports order-sensitive statements inside one map range.
func (a *Detrange) checkMapRange(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, findings *[]Finding) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			a.checkAssign(p, fd, rng, s, findings)
		case *ast.CallExpr:
			a.checkCall(p, rng, s, findings)
		}
		return true
	})
}

// checkAssign flags float compound accumulation into loop-outer variables
// and appends to loop-outer slices (unless sorted afterwards).
func (a *Detrange) checkAssign(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, s *ast.AssignStmt, findings *[]Finding) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range s.Lhs {
			tv, ok := p.Info.Types[lhs]
			if !ok || !isFloat(tv.Type) {
				continue
			}
			if obj := a.outerObject(p, rng, lhs); obj != nil {
				reportf(p, findings, a.Name(), s,
					"float accumulation into %q while ranging a map: iteration order is random and float addition is not associative; range sorted keys instead",
					obj.Name())
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p, call) || i >= len(s.Lhs) {
				continue
			}
			obj := a.outerObject(p, rng, s.Lhs[i])
			if obj == nil {
				continue
			}
			if sortedAfter(p, fd, rng, obj) {
				continue // append-then-sort idiom: the sanctioned fix
			}
			reportf(p, findings, a.Name(), s,
				"append to %q while ranging a map: element order is random across runs; range sorted keys or sort %q afterwards",
				obj.Name(), obj.Name())
		}
	}
}

// checkCall flags accumulator folds and serialized writes inside the range.
func (a *Detrange) checkCall(p *Pass, rng *ast.RangeStmt, call *ast.CallExpr, findings *[]Finding) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	switch {
	case accumulatorMethods[name]:
		// Only flag folds into state that outlives the loop.
		if obj := a.outerObject(p, rng, sel.X); obj != nil {
			reportf(p, findings, "detrange", call,
				"%s.%s inside a range over a map folds statistics in random order; iterate sorted keys so the accumulated floats are bit-identical across runs",
				obj.Name(), name)
		}
	case writerMethods[name]:
		reportf(p, findings, "detrange", call,
			"%s call inside a range over a map serializes entries in random order; iterate sorted keys", name)
	}
}

// outerObject resolves expr's root identifier to its object if that object
// is declared outside the range statement (i.e. survives the loop).
// Returns nil for loop-local variables and unresolvable expressions.
func (a *Detrange) outerObject(p *Pass, rng *ast.RangeStmt, expr ast.Expr) types.Object {
	id := rootIdent(expr)
	if id == nil {
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // declared inside the loop (including the key/value vars)
	}
	return obj
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedAfter reports whether, after the range statement, the function calls
// a sort function (sort.* or any function whose name begins with "sort" or
// "Sort") passing the accumulated slice — the append-then-sort idiom.
func sortedAfter(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil {
				if p.Info.Uses[id] == obj {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes sort.X calls and sort-prefixed helper functions.
func isSortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "sort" {
			return true
		}
		return strings.HasPrefix(fun.Sel.Name, "Sort") || strings.HasPrefix(fun.Sel.Name, "sort")
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "Sort") || strings.HasPrefix(fun.Name, "sort")
	}
	return false
}
