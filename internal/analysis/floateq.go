package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// Floateq flags == and != between floating-point operands in non-test code.
// Predictions flow through regression coefficients whose last bits depend on
// summation order and compiler fusion; exact equality on such values either
// encodes a hidden bit-identity assumption or is a latent flake. Call
// core.ApproxEqual(a, b, eps) instead.
//
// Exemptions:
//   - comparison against the constant 0 (the idiomatic "unset field" check:
//     zero is an exact float value and the zero-value sentinel for structs);
//   - the bodies of epsilon helpers themselves (ApproxEqual, almostEqual),
//     whose fast path legitimately uses ==.
type Floateq struct{}

// NewFloateq returns the analyzer.
func NewFloateq() *Floateq { return &Floateq{} }

// Name implements Analyzer.
func (*Floateq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (*Floateq) Doc() string {
	return "exact ==/!= on floating-point operands (use core.ApproxEqual)"
}

// epsilonHelpers are function names whose bodies are exempt.
var epsilonHelpers = map[string]bool{"ApproxEqual": true, "almostEqual": true}

// Run implements Analyzer.
func (a *Floateq) Run(p *Pass) []Finding {
	var findings []Finding
	for _, fd := range funcDecls(p) {
		if epsilonHelpers[fd.Name.Name] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := p.Info.Types[be.X]
			yt, yok := p.Info.Types[be.Y]
			if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			if isConstZero(xt.Value) || isConstZero(yt.Value) {
				return true
			}
			reportf(p, &findings, a.Name(), be,
				"exact %s on float operands; use core.ApproxEqual(a, b, eps) (floats differ in final bits across summation orders)",
				be.Op)
			return true
		})
	}
	return findings
}

// isConstZero reports whether v is the exact constant 0.
func isConstZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	f, ok := constant.Float64Val(v)
	return ok && f == 0
}
