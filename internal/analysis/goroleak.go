package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The goroleak analyzer requires every go statement to carry a visible
// termination path, so the serving tier (fleet's replica prober, loadgen's
// closed-loop workers, serve's listener goroutines) cannot quietly grow
// goroutines that outlive their owner. A spawn is accepted when any of the
// following holds:
//
//   - the spawned function literal selects or receives on a cancellation
//     signal: a .Done() call result (context.Context or equivalent) or a
//     done-channel (a receive-only channel or a chan struct{})
//   - the spawned function literal is straight-line: no loops, selects,
//     channel operations or .Wait() calls, so it self-terminates
//   - the spawn site's enclosing function also waits: it calls a .Wait()
//     method (sync.WaitGroup) or performs a channel receive (a join)
//   - a named spawned function is handed a context.Context or a channel
//     argument, delegating termination to the callee's own contract
//
// Anything else — a background loop with no context, no join and no done
// channel — is a finding.

const goroleakName = "goroleak"

// Goroleak checks that go statements have a termination path.
type Goroleak struct{}

// NewGoroleak returns the analyzer.
func NewGoroleak() *Goroleak { return &Goroleak{} }

// Name implements Analyzer.
func (a *Goroleak) Name() string { return goroleakName }

// Doc implements Analyzer.
func (a *Goroleak) Doc() string {
	return "every go statement must have a termination path (context/done-channel select, straight-line body, or an enclosing wait/join)"
}

// Run implements Analyzer.
func (a *Goroleak) Run(p *Pass) []Finding {
	var findings []Finding
	for _, fd := range funcDecls(p) {
		a.checkBody(p, fd.Body, &findings)
	}
	return findings
}

// checkBody scans one function body (the body of a declaration or of a
// nested literal) for go statements, tracking the nearest enclosing
// function so the wait/join rule looks at the right scope.
func (a *Goroleak) checkBody(p *Pass, body *ast.BlockStmt, findings *[]Finding) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			a.checkBody(p, x.Body, findings)
			return false
		case *ast.GoStmt:
			a.checkGo(p, x, body, findings)
		}
		return true
	})
}

// checkGo applies the termination rules to one go statement; enclosing is
// the body of the function the spawn site lives in.
func (a *Goroleak) checkGo(p *Pass, gs *ast.GoStmt, enclosing *ast.BlockStmt, findings *[]Finding) {
	switch fun := unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		if receivesCancellation(p, fun.Body) {
			return
		}
		if straightLine(fun.Body) {
			return
		}
		if waitsOrJoins(enclosing) {
			return
		}
		reportf(p, findings, goroleakName, gs,
			"goroutine has no termination path: select on a context/done channel, keep the body straight-line, or wait for it in the spawning function")
	default:
		if callCarriesSignal(p, gs.Call) {
			return
		}
		if waitsOrJoins(enclosing) {
			return
		}
		reportf(p, findings, goroleakName, gs,
			"spawned call carries no context.Context or channel and the spawning function does not wait for it")
	}
}

// receivesCancellation reports whether the body receives (directly or in a
// select) from a .Done() call result or from a done-shaped channel (a
// receive-only channel or a chan struct{}).
func receivesCancellation(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			return true
		}
		src := unparen(ue.X)
		if call, ok := src.(*ast.CallExpr); ok {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
				return false
			}
		}
		if isDoneChannel(p.Info.Types[src].Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isDoneChannel reports whether t is a receive-only channel or a channel of
// empty structs — the two shapes done channels take.
func isDoneChannel(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	if ch.Dir() == types.RecvOnly {
		return true
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// straightLine reports whether the body self-terminates by construction:
// no loops, no selects, no channel operations, no .Wait() calls.
func straightLine(body *ast.BlockStmt) bool {
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SendStmt, *ast.GoStmt:
			ok = false
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ok = false
				return false
			}
		case *ast.CallExpr:
			if sel, isSel := unparen(x.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Wait" {
				ok = false
				return false
			}
		}
		return ok
	})
	return ok
}

// waitsOrJoins reports whether the enclosing body also waits for spawned
// work: a .Wait() method call or a channel receive anywhere in it.
func waitsOrJoins(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// callCarriesSignal reports whether a named spawned call passes a
// context.Context or any channel to the callee.
func callCarriesSignal(p *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := p.Info.Types[arg].Type
		if t == nil {
			continue
		}
		if isContextType(t) {
			return true
		}
		if _, ok := t.Underlying().(*types.Chan); ok {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
