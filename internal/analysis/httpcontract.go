package analysis

import (
	"go/ast"
	"go/types"
)

// The httpcontract analyzer pins the HTTP-layer contract the serve and
// fleet tiers maintain by hand:
//
//   - handlers (functions taking both an http.ResponseWriter and an
//     *http.Request) must cap the request body — wrap it in
//     http.MaxBytesReader or io.LimitReader — before consuming it
//   - no path through a handler may commit the response status twice
//     (WriteHeader after WriteHeader, or after a status-writing helper)
//   - no path may write body bytes before the status on error paths
//     (WriteHeader after the body has started is a no-op plus a log line)
//
// The analyzer threads a (wrote-header, wrote-body) state through each
// handler's statement list, branching at if/switch/select and merging the
// surviving (non-returning) branches. Same-package helper functions that
// take a ResponseWriter are classified first — does every path through the
// helper write the status (must), or only some (may)? — with a small
// fixpoint so chains like writeJSONError -> writeJSON -> WriteHeader
// resolve. A call that *must* write triggers the double-write check
// against the current state; a call that only *may* write triggers the
// check but does not advance the state, so retry loops that forward to a
// helper which may or may not respond stay clean.

const httpcontractName = "httpcontract"

// Httpcontract checks HTTP handlers for body caps and single-commit
// status writes.
type Httpcontract struct{}

// NewHttpcontract returns the analyzer.
func NewHttpcontract() *Httpcontract { return &Httpcontract{} }

// Name implements Analyzer.
func (a *Httpcontract) Name() string { return httpcontractName }

// Doc implements Analyzer.
func (a *Httpcontract) Doc() string {
	return "HTTP handlers must cap request bodies before reading them and commit the response status exactly once per path"
}

// writerClass summarizes how a function treats its ResponseWriter
// parameter: must/may write the status header, must/may write body bytes.
type writerClass struct {
	mustWH, mayWH bool
	mustBW, mayBW bool
}

// Run implements Analyzer.
func (a *Httpcontract) Run(p *Pass) []Finding {
	helpers := classifyHelpers(p)
	var findings []Finding
	check := func(ftype *ast.FuncType, body *ast.BlockStmt) {
		w, req := handlerParams(p, ftype)
		if w == nil || req == nil {
			return
		}
		checkBodyCap(p, req, body, &findings)
		ctx := &writeCtx{p: p, w: w, helpers: helpers, findings: &findings}
		st := writeState{}
		ctx.walkStmts(body.List, &st, false)
	}
	for _, fd := range funcDecls(p) {
		check(fd.Type, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				check(lit.Type, lit.Body)
			}
			return true
		})
	}
	return findings
}

// handlerParams returns the ResponseWriter and *Request parameter objects,
// or nils when the signature is not a handler's.
func handlerParams(p *Pass, ftype *ast.FuncType) (w, req types.Object) {
	if ftype.Params == nil {
		return nil, nil
	}
	for _, field := range ftype.Params.List {
		t := p.Info.Types[field.Type].Type
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			if isResponseWriter(t) {
				w = obj
			}
			if isRequestPtr(t) {
				req = obj
			}
		}
	}
	return w, req
}

// isResponseWriter reports whether t is net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// isRequestPtr reports whether t is *net/http.Request.
func isRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// ------------------------------------------------------------ body cap

// checkBodyCap requires every consumption of req.Body to be wrapped in (or
// preceded by a rebind through) http.MaxBytesReader or io.LimitReader.
func checkBodyCap(p *Pass, req types.Object, body *ast.BlockStmt, findings *[]Finding) {
	// Collect positions where req.Body is rebound to a capped reader.
	var capPositions []int
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if !isReqBody(p, req, as.Lhs[0]) {
			return true
		}
		if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok && isCapWrapper(p, call) {
			capPositions = append(capPositions, int(as.Pos()))
		}
		return true
	})
	cappedBefore := func(pos int) bool {
		for _, c := range capPositions {
			if c < pos {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// req.Body.Read(...) and friends; Close is fine.
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && isReqBody(p, req, sel.X) {
			if sel.Sel.Name != "Close" && !cappedBefore(int(call.Pos())) {
				reportf(p, findings, httpcontractName, call,
					"request body consumed without an http.MaxBytesReader or io.LimitReader cap")
			}
			return true
		}
		if isCapWrapper(p, call) {
			return true // req.Body handed to the wrapper itself
		}
		for _, arg := range call.Args {
			if isReqBody(p, req, arg) && !cappedBefore(int(call.Pos())) {
				reportf(p, findings, httpcontractName, call,
					"request body consumed without an http.MaxBytesReader or io.LimitReader cap")
			}
		}
		return true
	})
}

// isReqBody reports whether e is <req>.Body for the tracked request param.
func isReqBody(p *Pass, req types.Object, e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Body" {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	return ok && p.Info.Uses[id] == req
}

// isCapWrapper reports whether call is http.MaxBytesReader or
// io.LimitReader.
func isCapWrapper(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, unparen(call.Fun))
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() + "." + fn.Name() {
	case "net/http.MaxBytesReader", "io.LimitReader":
		return true
	}
	return false
}

// ------------------------------------------------- status-write threading

// writeState is the per-path response state.
type writeState struct {
	wroteHeader bool
	wroteBody   bool
	exited      bool
}

// writeCtx carries one walk's fixed inputs. In classify mode (findings
// nil) the walk records exit states instead of reporting.
type writeCtx struct {
	p        *Pass
	w        types.Object
	helpers  map[types.Object]writerClass
	findings *[]Finding
	exits    []writeState
	saw      writerClass // may-level summary accumulated during the walk
}

// walkStmts threads st through a statement list in order.
func (c *writeCtx) walkStmts(list []ast.Stmt, st *writeState, inLoop bool) {
	for _, s := range list {
		c.walkStmt(s, st, inLoop)
		if st.exited {
			return
		}
	}
}

// walkStmt threads st through one statement.
func (c *writeCtx) walkStmt(s ast.Stmt, st *writeState, inLoop bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		c.applyExpr(x.X, st)
		if isPanic(c.p, x.X) {
			st.exited = true
		}
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			c.applyExpr(r, st)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.applyExpr(v, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.applyExpr(r, st)
		}
		st.exited = true
		c.exits = append(c.exits, *st)
	case *ast.BranchStmt:
		st.exited = true // break/continue/goto: stop this list, not the function
	case *ast.BlockStmt:
		c.walkStmts(x.List, st, inLoop)
	case *ast.IfStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st, inLoop)
		}
		c.applyExpr(x.Cond, st)
		branches := [][]ast.Stmt{x.Body.List}
		var elseStmt ast.Stmt = x.Else
		c.mergeBranches(st, inLoop, branches, elseStmt, true)
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st, inLoop)
		}
		if x.Tag != nil {
			c.applyExpr(x.Tag, st)
		}
		c.mergeClauses(st, inLoop, x.Body.List)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st, inLoop)
		}
		c.mergeClauses(st, inLoop, x.Body.List)
	case *ast.SelectStmt:
		c.mergeClauses(st, inLoop, x.Body.List)
	case *ast.ForStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st, inLoop)
		}
		c.walkLoopBody(x.Body, st)
	case *ast.RangeStmt:
		c.applyExpr(x.X, st)
		c.walkLoopBody(x.Body, st)
	case *ast.LabeledStmt:
		c.walkStmt(x.Stmt, st, inLoop)
	case *ast.SendStmt:
		c.applyExpr(x.Value, st)
	case *ast.GoStmt, *ast.DeferStmt:
		// Concurrent and deferred writes are beyond a path-sensitive walk.
	}
}

// mergeBranches walks an if's then/else as alternative paths and merges
// the survivors back into st.
func (c *writeCtx) mergeBranches(st *writeState, inLoop bool, branches [][]ast.Stmt, elseStmt ast.Stmt, implicitFallthrough bool) {
	entry := *st
	var survivors []writeState
	for _, b := range branches {
		bst := entry
		c.walkStmts(b, &bst, inLoop)
		if !bst.exited {
			survivors = append(survivors, bst)
		}
	}
	switch e := elseStmt.(type) {
	case nil:
		if implicitFallthrough {
			survivors = append(survivors, entry)
		}
	case *ast.BlockStmt:
		bst := entry
		c.walkStmts(e.List, &bst, inLoop)
		if !bst.exited {
			survivors = append(survivors, bst)
		}
	case ast.Stmt: // else if ...
		bst := entry
		c.walkStmt(e, &bst, inLoop)
		if !bst.exited {
			survivors = append(survivors, bst)
		}
	}
	mergeInto(st, survivors)
}

// mergeClauses merges switch/select case bodies as alternative paths.
func (c *writeCtx) mergeClauses(st *writeState, inLoop bool, clauses []ast.Stmt) {
	entry := *st
	var survivors []writeState
	hasDefault := false
	for _, cl := range clauses {
		var body []ast.Stmt
		bst := entry
		switch clause := cl.(type) {
		case *ast.CaseClause:
			if clause.List == nil {
				hasDefault = true
			}
			body = clause.Body
		case *ast.CommClause:
			if clause.Comm == nil {
				hasDefault = true
			} else {
				c.walkStmt(clause.Comm, &bst, inLoop)
			}
			body = clause.Body
		default:
			continue
		}
		c.walkStmts(body, &bst, inLoop)
		if !bst.exited {
			survivors = append(survivors, bst)
		}
	}
	if !hasDefault {
		survivors = append(survivors, entry) // no case may match
	}
	mergeInto(st, survivors)
}

// mergeInto sets st to the conjunction of the surviving branch states; a
// statement list where every branch exits is itself exited.
func mergeInto(st *writeState, survivors []writeState) {
	if len(survivors) == 0 {
		st.exited = true
		return
	}
	merged := survivors[0]
	for _, s := range survivors[1:] {
		merged.wroteHeader = merged.wroteHeader && s.wroteHeader
		merged.wroteBody = merged.wroteBody && s.wroteBody
	}
	merged.exited = false
	*st = merged
}

// walkLoopBody walks a loop body once with the entry state; a body whose
// surviving paths committed the status would commit it again on the next
// iteration.
func (c *writeCtx) walkLoopBody(body *ast.BlockStmt, st *writeState) {
	bst := *st
	c.walkStmts(body.List, &bst, true)
	if !bst.exited && bst.wroteHeader && !st.wroteHeader && c.findings != nil {
		reportf(c.p, c.findings, httpcontractName, body,
			"response status may be committed on more than one loop iteration")
	}
	// The loop may run zero times: continue with the entry state.
}

// applyExpr applies the write events of every call in e, in traversal
// order, to st.
func (c *writeCtx) applyExpr(e ast.Expr, st *writeState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested handlers are checked on their own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ev := c.callEvents(call)
		c.apply(call, ev, st)
		return true
	})
}

// callEvents classifies one call's effect on the tracked ResponseWriter.
func (c *writeCtx) callEvents(call *ast.CallExpr) writerClass {
	fun := unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, ok := unparen(sel.X).(*ast.Ident); ok && c.p.Info.Uses[id] == c.w {
			switch sel.Sel.Name {
			case "WriteHeader":
				return writerClass{mustWH: true, mayWH: true}
			case "Write":
				return writerClass{mustBW: true, mayBW: true}
			}
			return writerClass{}
		}
	}
	fn := calleeFunc(c.p, fun)
	passesW := false
	for _, arg := range call.Args {
		if id, ok := unparen(arg).(*ast.Ident); ok && c.p.Info.Uses[id] == c.w {
			passesW = true
		}
	}
	if fn != nil && fn.Pkg() != nil && passesW {
		qual := fn.Pkg().Path() + "." + fn.Name()
		switch qual {
		case "io.Copy", "io.WriteString", "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
			return writerClass{mustBW: true, mayBW: true}
		case "net/http.MaxBytesReader":
			// Writes 413 itself only when a later read overflows.
			return writerClass{}
		}
		if fn.Pkg() == c.p.Pkg {
			if cls, ok := c.helpers[fn.Origin()]; ok {
				return cls
			}
		}
	}
	if passesW {
		return writerClass{mayWH: true, mayBW: true} // unknown sink for w
	}
	return writerClass{}
}

// apply threads one call's events through st, reporting contract
// violations in report mode.
func (c *writeCtx) apply(call *ast.CallExpr, ev writerClass, st *writeState) {
	if ev.mayWH {
		c.saw.mayWH = true
		if c.findings != nil {
			if st.wroteBody {
				reportf(c.p, c.findings, httpcontractName, call,
					"response status written after body bytes on this path")
			} else if st.wroteHeader {
				reportf(c.p, c.findings, httpcontractName, call,
					"response status committed twice on this path")
			}
		}
	}
	if ev.mayBW {
		c.saw.mayBW = true
	}
	if ev.mustWH {
		st.wroteHeader = true
	}
	if ev.mustBW {
		// A body write commits the status implicitly (an unset status
		// becomes 200), so later WriteHeader calls are status-after-body.
		st.wroteBody = true
		st.wroteHeader = true
	}
}

// isPanic reports whether e is a panic(...) call.
func isPanic(p *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// ----------------------------------------------------- helper classification

// classifyHelpers computes the writerClass of every same-package function
// that takes a ResponseWriter. Three fixpoint iterations resolve the
// helper chains that occur in practice (writeJSONError -> writeJSON ->
// WriteHeader).
func classifyHelpers(p *Pass) map[types.Object]writerClass {
	type helper struct {
		obj  types.Object
		w    types.Object
		body *ast.BlockStmt
	}
	var hs []helper
	for _, fd := range funcDecls(p) {
		w := responseWriterParam(p, fd.Type)
		if w == nil {
			continue
		}
		obj := p.Info.Defs[fd.Name]
		if obj == nil {
			continue
		}
		hs = append(hs, helper{obj: obj, w: w, body: fd.Body})
	}
	classes := map[types.Object]writerClass{}
	for iter := 0; iter < 3; iter++ {
		for _, h := range hs {
			ctx := &writeCtx{p: p, w: h.w, helpers: classes}
			st := writeState{}
			ctx.walkStmts(h.body.List, &st, false)
			if !st.exited {
				ctx.exits = append(ctx.exits, st)
			}
			cls := ctx.saw
			cls.mustWH = len(ctx.exits) > 0
			cls.mustBW = len(ctx.exits) > 0
			for _, e := range ctx.exits {
				cls.mustWH = cls.mustWH && e.wroteHeader
				cls.mustBW = cls.mustBW && e.wroteBody
			}
			classes[h.obj] = cls
		}
	}
	return classes
}

// responseWriterParam returns the first ResponseWriter-typed parameter
// object, or nil.
func responseWriterParam(p *Pass, ftype *ast.FuncType) types.Object {
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		if !isResponseWriter(p.Info.Types[field.Type].Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}
