package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// NewImporter returns the importer used to resolve dependencies while
// type-checking: the stdlib source importer wrapped in a mutex-guarded
// memo. One importer should be shared across every LoadDir call in a run
// so each dependency is checked once; the memo makes that sharing safe
// when packages load in parallel (the source importer caches internally
// but is not concurrency-safe) and caches import errors so a broken
// dependency fails every dependent fast.
func NewImporter(fset *token.FileSet) types.Importer {
	return &memoImporter{
		delegate: importer.ForCompiler(fset, "source", nil),
		seen:     map[string]memoEntry{},
	}
}

// memoEntry is one cached import outcome.
type memoEntry struct {
	pkg *types.Package
	err error
}

// memoImporter serializes and memoizes a delegate importer.
type memoImporter struct {
	mu       sync.Mutex
	delegate types.Importer
	seen     map[string]memoEntry
}

// Import implements types.Importer.
func (m *memoImporter) Import(path string) (*types.Package, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.seen[path]; ok {
		return e.pkg, e.err
	}
	pkg, err := m.delegate.Import(path)
	m.seen[path] = memoEntry{pkg: pkg, err: err}
	return pkg, err
}

// PackageDir names one package to load: its directory and the import path
// to record on the type-checked package.
type PackageDir struct {
	Dir        string
	ImportPath string
}

// LoadResult is one package's load outcome.
type LoadResult struct {
	Dir        string
	ImportPath string
	Pass       *Pass
	Err        error
}

// LoadPackages loads every package concurrently (bounded by GOMAXPROCS),
// sharing fset and imp across workers, and returns results in input order
// so callers report deterministically. A package that fails to load yields
// a result with Err set; the other packages still load.
func LoadPackages(fset *token.FileSet, imp types.Importer, pkgs []PackageDir) []LoadResult {
	results := make([]LoadResult, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				p := pkgs[i]
				pass, err := LoadDir(fset, imp, p.Dir, p.ImportPath)
				results[i] = LoadResult{Dir: p.Dir, ImportPath: p.ImportPath, Pass: pass, Err: err}
			}
		}()
	}
	for i := range pkgs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// LoadDir parses and type-checks the non-test Go files of one package
// directory. pkgPath is the import path recorded on the resulting package
// (used by scope-sensitive analyzers); imp resolves imports.
func LoadDir(fset *token.FileSet, imp types.Importer, dir, pkgPath string) (*Pass, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analysis: parse %s: %w", dir, err)
	}
	// A directory holds at most one non-test package (plus an external test
	// package, already filtered out by the _test.go exclusion). Packages and
	// files are visited in sorted order so findings are reported (and ASTs
	// loaded) deterministically.
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		p := pkgs[name]
		fnames := make([]string, 0, len(p.Files))
		for fname := range p.Files {
			fnames = append(fnames, fname)
		}
		sort.Strings(fnames)
		for _, fname := range fnames {
			files = append(files, p.Files[fname])
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go package in %s", dir)
	}
	if len(names) > 1 {
		return nil, fmt.Errorf("analysis: multiple packages in %s: %v", dir, names)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", dir, err)
	}
	return &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
