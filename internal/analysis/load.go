package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"sort"
	"strings"
)

// NewImporter returns the stdlib source importer used to resolve
// dependencies while type-checking. One importer should be shared across
// every LoadDir call in a run so each dependency is checked once.
func NewImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// LoadDir parses and type-checks the non-test Go files of one package
// directory. pkgPath is the import path recorded on the resulting package
// (used by scope-sensitive analyzers); imp resolves imports.
func LoadDir(fset *token.FileSet, imp types.Importer, dir, pkgPath string) (*Pass, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analysis: parse %s: %w", dir, err)
	}
	// A directory holds at most one non-test package (plus an external test
	// package, already filtered out by the _test.go exclusion). Packages and
	// files are visited in sorted order so findings are reported (and ASTs
	// loaded) deterministically.
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		p := pkgs[name]
		fnames := make([]string, 0, len(p.Files))
		for fname := range p.Files {
			fnames = append(fnames, fname)
		}
		sort.Strings(fnames)
		for _, fname := range fnames {
			files = append(files, p.Files[fname])
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go package in %s", dir)
	}
	if len(names) > 1 {
		return nil, fmt.Errorf("analysis: multiple packages in %s: %v", dir, names)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", dir, err)
	}
	return &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
