package analysis

import (
	"go/ast"
	"go/types"
)

// Locksafe guards mutex hygiene in the concurrent layers (the sharded plan
// caches and the parallel experiment pipeline):
//
//  1. Mutex copies: passing or assigning a mutex-containing struct by value
//     duplicates the lock state; the copy guards nothing. (A focused subset
//     of vet's copylocks, kept here so dnnlint is self-contained.)
//
//  2. Unpaired locks: a sync Lock/RLock call in a function with no matching
//     Unlock/RUnlock on the same receiver anywhere in that function —
//     neither deferred nor direct — leaks the lock on every path.
//     Pairing is matched syntactically on the receiver expression, so
//     lock/unlock split across helper functions should keep the receiver
//     spelling consistent (or be refactored into a locked method).
type Locksafe struct{}

// NewLocksafe returns the analyzer.
func NewLocksafe() *Locksafe { return &Locksafe{} }

// Name implements Analyzer.
func (*Locksafe) Name() string { return "locksafe" }

// Doc implements Analyzer.
func (*Locksafe) Doc() string {
	return "mutex copied by value, or Lock without a paired Unlock"
}

// lockPairs maps acquire methods to their release methods.
var lockPairs = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// Run implements Analyzer.
func (a *Locksafe) Run(p *Pass) []Finding {
	var findings []Finding
	a.checkCopies(p, &findings)
	for _, fd := range funcDecls(p) {
		a.checkPairing(p, fd, &findings)
	}
	return findings
}

// checkCopies flags by-value parameters and assignments of mutex-containing
// struct types.
func (a *Locksafe) checkCopies(p *Pass, findings *[]Finding) {
	for _, fd := range funcDecls(p) {
		for _, field := range fd.Type.Params.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok || !containsMutex(tv.Type) {
				continue
			}
			reportf(p, findings, a.Name(), field,
				"parameter passes %s by value, copying its mutex; pass a pointer", tv.Type)
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, rhs := range as.Rhs {
				if _, fresh := rhs.(*ast.CompositeLit); fresh {
					continue // constructing a new value, not copying one
				}
				if _, call := ast.Unparen(rhs).(*ast.CallExpr); call {
					continue // function results are fresh values
				}
				tv, ok := p.Info.Types[rhs]
				if !ok || !containsMutex(tv.Type) {
					continue
				}
				reportf(p, findings, a.Name(), as,
					"assignment copies %s by value, duplicating its mutex; use a pointer", tv.Type)
			}
			return true
		})
	}
}

// containsMutex reports whether t is (or directly/recursively embeds by
// value) a sync.Mutex or sync.RWMutex.
func containsMutex(t types.Type) bool {
	if isSyncLock(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isSyncLock(ft) || containsMutex(ft) {
			return true
		}
	}
	return false
}

// isSyncLock reports whether t is exactly sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkPairing flags sync lock acquisitions with no release on the same
// receiver in the same function.
func (a *Locksafe) checkPairing(p *Pass, fd *ast.FuncDecl, findings *[]Finding) {
	type lockCall struct {
		call *ast.CallExpr
		recv string
		acq  string // acquire method name
		rel  string // required release method
	}
	var locks []lockCall
	releases := map[string]bool{} // "recv.method" seen anywhere in fd

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isSyncLockMethod(p, sel) {
			return true
		}
		recv := types.ExprString(sel.X)
		switch name := sel.Sel.Name; name {
		case "Lock", "RLock":
			locks = append(locks, lockCall{call, recv, name, lockPairs[name]})
		case "Unlock", "RUnlock":
			releases[recv+"."+name] = true
		}
		return true
	})

	for _, l := range locks {
		if !releases[l.recv+"."+l.rel] {
			reportf(p, findings, a.Name(), l.call,
				"%s.%s() has no matching %s.%s() in this function; add `defer %s.%s()` or release on every path",
				l.recv, l.acq, l.recv, l.rel, l.recv, l.rel)
		}
	}
}

// isSyncLockMethod reports whether sel resolves to a method provided by
// sync.Mutex or sync.RWMutex (directly or through embedding).
func isSyncLockMethod(p *Pass, sel *ast.SelectorExpr) bool {
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync"
}
