package analysis

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module-level package discovery, shared by cmd/dnnlint and the module-wide
// benchmark: resolving the module name, mapping directories to import
// paths, and expanding "./..." patterns to package directories.

// ModuleName reads the module path from go.mod in root.
func ModuleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// ImportPathFor maps a package directory to its import path under the
// module rooted at root.
func ImportPathFor(module, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}

// ExpandPatterns resolves package patterns to package directories: "./..."
// and "dir/..." walk recursively; anything else is a single directory.
// Directories named testdata, hidden directories and _-prefixed directories
// are skipped, matching the go tool's convention. The result is sorted, so
// downstream loading and reporting order is deterministic.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
