package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Machine-readable finding output for cmd/dnnlint: a minimal SARIF 2.1.0
// log (the format GitHub code scanning ingests) and a flat JSON finding
// list for ad-hoc tooling. Both render file paths relative to the module
// root with forward slashes, so logs are stable across checkouts.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. The rule table is
// built from the analyzer set plus the implicit "suppress" rule for
// malformed //lint:ignore directives.
func WriteSARIF(w io.Writer, analyzers []Analyzer, findings []Finding, root string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name(), ShortDescription: sarifMessage{Text: a.Doc()}})
	}
	rules = append(rules, sarifRule{
		ID:               SuppressName,
		ShortDescription: sarifMessage{Text: "//lint:ignore directives must name an analyzer and a reason"},
	})
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(root, f.Pos.Filename)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dnnlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// jsonFinding is the -json output record.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteFindingsJSON renders findings as a flat JSON array.
func WriteFindingsJSON(w io.Writer, findings []Finding, root string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relPath renders path relative to root with forward slashes, falling back
// to the absolute path when it is outside root.
func relPath(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}
