package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Staleplan guards the coherence between fitted models and their compiled
// prediction plans. KWModel and IGKWModel cache compiled Plans keyed on the
// current coefficient structure; the blessed mutators (Fit*, ObserveRecords
// and the rebuild helpers they call) invalidate those caches after every
// coefficient change. A write to a coefficient field from anywhere else
// silently leaves stale plans serving predictions from the old
// coefficients.
//
// Constructing a fresh model with a composite literal is fine — a new model
// has no cache to go stale. Only selector assignments into an existing
// model are checked.
type Staleplan struct{}

// NewStaleplan returns the analyzer.
func NewStaleplan() *Staleplan { return &Staleplan{} }

// Name implements Analyzer.
func (*Staleplan) Name() string { return "staleplan" }

// Doc implements Analyzer.
func (*Staleplan) Doc() string {
	return "model coefficient mutation outside the blessed mutators (stale compiled plans)"
}

// coefficientFields lists, per guarded model type, the fields that feed
// compiled plans.
var coefficientFields = map[string]map[string]bool{
	"KWModel": {
		"Classif": true, "Groups": true, "GroupOf": true, "Mapping": true,
		"Families": true, "ClassFallback": true,
	},
	"IGKWModel": {
		"Lines": true, "DriverOf": true, "Mapping": true,
		"FamilyLines": true, "FamilyDriver": true, "ClassFallback": true,
	},
}

// blessedName matches functions allowed to mutate coefficients: the fitting
// entry points and the online-update rebuild chain.
var blessedName = regexp.MustCompile(`^(Fit|fit)`)

// blessedExact are additional allowed mutators by exact name: the online
// observation fold and the rebuild chain it triggers (ObserveRecords →
// rebuildFromAccumulators), plus the fit-time seeding of the online state.
var blessedExact = map[string]bool{
	"ObserveRecords":          true,
	"initOnline":              true,
	"rebuildFromAccumulators": true,
}

// Run implements Analyzer.
func (a *Staleplan) Run(p *Pass) []Finding {
	var findings []Finding
	for _, fd := range funcDecls(p) {
		name := fd.Name.Name
		if blessedName.MatchString(name) || blessedExact[name] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				model := guardedModelName(p, sel.X)
				if model == "" || !coefficientFields[model][sel.Sel.Name] {
					continue
				}
				reportf(p, &findings, a.Name(), as,
					"%s.%s assigned outside the blessed mutators (Fit*, ObserveRecords, rebuildFromAccumulators); compiled plans are not invalidated and will serve stale coefficients",
					model, sel.Sel.Name)
			}
			return true
		})
	}
	return findings
}

// guardedModelName returns "KWModel"/"IGKWModel" when expr's type (after
// pointer indirection) is a guarded model type, else "".
func guardedModelName(p *Pass, expr ast.Expr) string {
	tv, ok := p.Info.Types[expr]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if name := named.Obj().Name(); coefficientFields[name] != nil {
		return name
	}
	return ""
}
