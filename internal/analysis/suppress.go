package analysis

import (
	"go/ast"
	"strings"
)

// Suppression directives. A finding can be silenced in place with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the finding's line or the line immediately above it. The
// analyzer name must match the finding's analyzer ("allocfree", "detrange",
// ...; a comma-separated list silences several), and the reason is
// mandatory: a bare //lint:ignore, or one without a reason, is itself
// reported as a "suppress" finding so unexplained escapes cannot
// accumulate. "suppress" findings are never suppressible.

// SuppressName is the analyzer name attached to malformed-directive
// findings.
const SuppressName = "suppress"

const ignoreDirective = "//lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	file      string
	line      int
	analyzers []string
}

// ApplySuppressions filters out findings covered by a well-formed
// //lint:ignore directive in the pass's files and appends one "suppress"
// finding per malformed directive (missing analyzer name or reason). It is
// applied by the driver to each package's combined finding list.
func ApplySuppressions(p *Pass, findings []Finding) []Finding {
	var dirs []directive
	var out []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not a directive
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					out = append(out, Finding{
						Analyzer: SuppressName,
						Pos:      pos,
						Message: "malformed //lint:ignore directive: want " +
							"`//lint:ignore <analyzer> <reason>` with a non-empty reason",
					})
					continue
				}
				dirs = append(dirs, directive{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
				})
			}
		}
	}
	for _, f := range findings {
		if !suppressed(dirs, f) {
			out = append(out, f)
		}
	}
	return out
}

// suppressed reports whether a directive covers the finding: same file,
// matching analyzer, on the finding's line or the line above it.
func suppressed(dirs []directive, f Finding) bool {
	if f.Analyzer == SuppressName {
		return false
	}
	for _, d := range dirs {
		if d.file != f.Pos.Filename {
			continue
		}
		if d.line != f.Pos.Line && d.line != f.Pos.Line-1 {
			continue
		}
		for _, a := range d.analyzers {
			if a == f.Analyzer {
				return true
			}
		}
	}
	return false
}

// hasDirective reports whether a doc comment group contains the given
// //-style directive line (e.g. "//dnnperf:allocfree").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
