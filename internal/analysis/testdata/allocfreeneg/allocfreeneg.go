// Package allocfreeneg holds the sanctioned hot-path idioms the allocfree
// analyzer must accept without findings.
package allocfreeneg

import (
	"strconv"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// render appends into a caller-provided scratch array through a zero-length
// reslice — the canonical alloc-free formatting idiom.
//
//dnnperf:allocfree
func render(dst *[64]byte, v int64) []byte {
	return strconv.AppendInt(dst[:0], v, 10)
}

// fill appends into a slice whose capacity was established by a sized make
// in the same function.
//
//dnnperf:allocfree
func fill(vals []int64) []byte {
	out := make([]byte, 0, 64)
	for _, v := range vals {
		out = append(out, byte(v))
	}
	return out
}

// bump uses whitelisted sync primitives.
//
//dnnperf:allocfree
func (c *counter) bump() int {
	c.mu.Lock()
	n := c.n
	c.n = n + 1
	c.mu.Unlock()
	return n
}

// chain calls another annotated function: the obligation transfers.
//
//dnnperf:allocfree
func chain(dst *[64]byte, v int64) []byte {
	return render(dst, v)
}

// untouched is not annotated, so its allocations are out of scope.
func untouched() map[string]int { return map[string]int{"a": 1} }
