package allocfreeneg

// The fleet simulator's event-loop idioms: a binary min-heap over a
// preallocated arena and a power-of-two ring buffer, all steady-state ops
// plain indexed reads/writes into existing backing arrays.

type simEvent struct {
	t   float64
	seq uint32
	idx int32
}

type simHeap struct {
	ev  []simEvent
	n   int
	seq uint32
}

// push writes into the preallocated arena; overflow is a bounds panic, not
// growth.
//
//dnnperf:allocfree
func (h *simHeap) push(t float64, idx int32) {
	h.ev[h.n] = simEvent{t: t, seq: h.seq, idx: idx}
	h.seq++
	h.n++
	h.siftUp(h.n - 1)
}

// pop returns the minimum by value — 16 bytes copied, nothing boxed.
//
//dnnperf:allocfree
func (h *simHeap) pop() simEvent {
	top := h.ev[0]
	h.n--
	if h.n > 0 {
		h.ev[0] = h.ev[h.n]
		h.siftDown(0)
	}
	return top
}

//dnnperf:allocfree
func (h *simHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.ev[i].t >= h.ev[parent].t {
			return
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

//dnnperf:allocfree
func (h *simHeap) siftDown(i int) {
	for {
		left := 2*i + 1
		if left >= h.n {
			return
		}
		least := left
		if right := left + 1; right < h.n && h.ev[right].t < h.ev[left].t {
			least = right
		}
		if h.ev[least].t >= h.ev[i].t {
			return
		}
		h.ev[i], h.ev[least] = h.ev[least], h.ev[i]
		i = least
	}
}

type ringQueue struct {
	buf  []int32
	head int32
	n    int32
}

// rpush masks into the power-of-two buffer; the caller grew it cold.
//
//dnnperf:allocfree
func (r *ringQueue) rpush(v int32) {
	r.buf[(r.head+r.n)&int32(len(r.buf)-1)] = v
	r.n++
}

// rpop removes the oldest element with the same mask.
//
//dnnperf:allocfree
func (r *ringQueue) rpop() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) & int32(len(r.buf)-1)
	r.n--
	return v
}
