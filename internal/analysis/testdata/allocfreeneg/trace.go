package allocfreeneg

// stageClock mirrors the serve tier's stage-attribution idiom: a value-type
// clock threaded by reassignment (`sc = sc.mark(...)`) — no pointers, no
// boxing, nothing escapes.
type stageClock struct{ last int64 }

// mark returns the updated clock by value.
//
//dnnperf:allocfree
func (c stageClock) mark(now int64) stageClock {
	c.last = now
	return c
}

// headerValue indexes a header map under its canonical key directly — the
// alloc-free read; textproto canonicalization of arbitrary keys would copy.
//
//dnnperf:allocfree
func headerValue(h map[string][]string) string {
	if v := h["Traceparent"]; len(v) > 0 {
		return v[0]
	}
	return ""
}
