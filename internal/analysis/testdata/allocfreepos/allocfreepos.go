// Package allocfreepos exercises every allocation class the allocfree
// analyzer reports inside annotated functions.
package allocfreepos

import "fmt"

type pair struct{ a int }

// grow appends with no capacity evidence in scope.
//
//dnnperf:allocfree
func grow(xs []int, v int) []int {
	xs = append(xs, v) // finding: append without preallocation evidence
	return xs
}

//dnnperf:allocfree
func build(n int) any {
	m := map[string]int{"a": n} // finding: map literal
	s := []int{n}               // finding: slice literal
	p := &pair{a: n}            // finding: pointer-to-struct literal
	_ = m
	_ = s
	_ = p
	f := func() int { return n } // finding: closure captures n
	_ = f
	return n // finding: int boxed into the any result
}

//dnnperf:allocfree
func format(n int) string {
	return fmt.Sprintf("%d", n) // finding: fmt call
}

func helper() int { return 1 }

//dnnperf:allocfree
func concat(a, b string) string {
	c := a + b    // finding: string concatenation
	_ = []byte(a) // finding: string->[]byte conversion copies
	_ = helper()  // finding: callee is neither annotated nor whitelisted
	return c
}
