package allocfreepos

// Fleet-simulator event-loop shapes that defeat the preallocated-arena
// contract: the event queue must never grow or box per event.

type simEvent struct {
	t   float64
	idx int32
}

type simHeap struct {
	ev []simEvent
	n  int
}

// push grows the arena instead of writing into preallocated capacity.
//
//dnnperf:allocfree
func (h *simHeap) push(t float64, idx int32) {
	h.ev = append(h.ev, simEvent{t: t, idx: idx}) // finding: append without preallocation evidence
	h.n++
}

// popAny boxes the 16-byte event into an interface on every pop.
//
//dnnperf:allocfree
func (h *simHeap) popAny() any {
	h.n--
	return h.ev[h.n] // finding: struct boxed into the any result
}
