package allocfreepos

// sample mimics a tracing hot path that builds the span record before
// checking whether the request is sampled at all: the pointer literal
// allocates on every request, sampled or not.
//
//dnnperf:allocfree
func sample(hdrs map[string][]string) *pair {
	return &pair{a: len(hdrs["Traceparent"])} // finding: pointer-to-struct literal
}
