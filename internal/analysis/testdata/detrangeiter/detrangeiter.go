// Package detrangeiter ranges over maps.Keys/maps.Values iterators, which
// visit entries in the same randomized order as ranging the map directly.
// detrange must treat these ranges exactly like map ranges.
package detrangeiter

import (
	"maps"
	"sort"
)

// foldIter accumulates floats in iterator order: nondeterministic rounding.
func foldIter(m map[string]float64) float64 {
	var total float64
	for k := range maps.Keys(m) {
		total += m[k] // finding: float accumulation in map-iterator order
	}
	return total
}

// keysSorted appends then sorts: the order is laundered, no finding.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// valuesAppend leaks iterator order into the result slice.
func valuesAppend(m map[string]int) []int {
	var out []int
	for v := range maps.Values(m) {
		out = append(out, v) // finding: append in map-iterator order
	}
	return out
}
