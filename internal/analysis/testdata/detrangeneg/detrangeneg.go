// Package detrangeneg holds true-negative fixtures for the detrange
// analyzer: map ranges whose results are order-independent, plus the
// sanctioned append-then-sort idiom.
package detrangeneg

import "sort"

// sortedKeys is the sanctioned idiom: the appended slice is sorted before
// use, so map iteration order never escapes.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sumSorted folds floats in sorted key order: deterministic.
func sumSorted(m map[string]float64) float64 {
	var total float64
	for _, k := range sortedKeys(m) {
		total += m[k]
	}
	return total
}

// countEntries accumulates an int: addition order cannot matter.
func countEntries(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// loopLocal appends only to a loop-local slice that dies each iteration.
func loopLocal(m map[string][]string) int {
	n := 0
	for k, vs := range m {
		parts := make([]string, 0, len(vs)+1)
		parts = append(parts, k)
		parts = append(parts, vs...)
		n += len(parts)
	}
	return n
}
