// Package detrangepos holds true-positive fixtures for the detrange
// analyzer: order-sensitive work inside map ranges.
package detrangepos

import (
	"fmt"
	"io"
)

// sumValues folds floats in map order: nondeterministic final bits.
func sumValues(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// collectKeys appends in map order with no sort afterwards.
func collectKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// acc mimics regression.Accumulator's folding API.
type acc struct{ sum float64 }

// Add folds one observation.
func (a *acc) Add(x float64) { a.sum += x }

// foldStats merges statistics in map order.
func foldStats(m map[string]float64) float64 {
	var a acc
	for _, v := range m {
		a.Add(v)
	}
	return a.sum
}

// dump serializes entries in map order.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
