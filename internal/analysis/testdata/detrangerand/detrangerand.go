// Package detrangerand holds fixtures for detrange's global-randomness
// rule: package-level math/rand calls draw from the shared process-global
// source and are flagged; seeded *rand.Rand instances and their
// constructors are the sanctioned idiom and are not.
package detrangerand

import "math/rand"

// jitterGlobal draws from the global source: flagged.
func jitterGlobal(x float64) float64 {
	return x * (1 + 0.1*rand.Float64())
}

// pickGlobal indexes with the global source: flagged.
func pickGlobal(xs []int) int {
	return xs[rand.Intn(len(xs))]
}

// shuffleGlobal permutes with the global source: flagged.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// permGlobal builds a permutation from the global source: flagged.
func permGlobal(n int) []int {
	return rand.Perm(n)
}

// jitterSeeded is the sanctioned fix: an explicit seeded generator. The
// constructors and every method on the instance are clean.
func jitterSeeded(x float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return x * (1 + 0.1*rng.Float64())
}

// walkSeeded drives several instance methods: all clean.
func walkSeeded(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := rng.Perm(n)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
