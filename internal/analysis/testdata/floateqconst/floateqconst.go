// Package floateqconst exercises floateq against float-typed named
// constants: comparing against a nonzero named constant is still exact
// float equality (finding); a named zero constant is the sanctioned
// sentinel test (exempt), even when the constant carries an explicit
// float64 type.
package floateqconst

const eps = 1e-9
const zero float64 = 0

func atEps(x float64) bool { return x == eps } // finding: nonzero constant

func isZero(x float64) bool { return x == zero } // exempt: constant zero sentinel
