// Package floateqneg holds true-negative fixtures for the floateq
// analyzer: the sanctioned comparison forms.
package floateqneg

import "math"

// isUnset uses the exempt zero-sentinel check.
func isUnset(x float64) bool { return x == 0 }

// ApproxEqual is the epsilon helper itself; its fast path may use ==.
func ApproxEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps
}

// almostEqual is the test-local helper spelling, equally exempt.
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) < 1e-12
}

// intEqual compares integers: exact equality is correct.
func intEqual(a, b int) bool { return a == b }

// ordered uses ordering comparisons, which are fine on floats.
func ordered(a, b float64) bool { return a < b || a > b }
