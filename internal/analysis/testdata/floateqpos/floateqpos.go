// Package floateqpos holds true-positive fixtures for the floateq
// analyzer: exact equality on floating-point operands.
package floateqpos

// equal compares floats exactly.
func equal(a, b float64) bool { return a == b }

// notEqual is the != form.
func notEqual(a, b float64) bool { return a != b }

// Celsius shows that named float types are still floats.
type Celsius float64

// sameTemp compares named floats exactly.
func sameTemp(a, b Celsius) bool { return a == b }
