// Package goroleakneg holds goroutine spawn shapes with a termination path.
package goroleakneg

import (
	"context"
	"sync"
)

// ctxWorker's goroutine selects on ctx.Done: cancellation received in-body.
func ctxWorker(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// joined closes a done channel the spawner receives from: a channel join.
func joined() int {
	done := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			_ = i
		}
		close(done)
	}()
	<-done
	return 0
}

// waited joins through a WaitGroup in the spawning function.
func waited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
	wg.Wait()
}

// fireAndForget's body is straight-line: it terminates by construction.
func fireAndForget(v *int) {
	go func() {
		*v = 1
	}()
}

func run(ctx context.Context) { _ = ctx }

// named hands the context to the callee, which owns its own shutdown.
func named(ctx context.Context) {
	go run(ctx)
}
