package goroleakneg

import "sync"

// sweepWorkers is the simulator's scenario fan-out shape: a bounded worker
// pool draining a channel the spawner closes, writing indexed result
// slots, joined through a WaitGroup before return.
func sweepWorkers(scenarios []int) []float64 {
	out := make([]float64, len(scenarios))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = float64(scenarios[i])
			}
		}()
	}
	for i := range scenarios {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
