// Package goroleakpos spawns goroutines that carry no termination path.
package goroleakpos

// leakLoop spawns an unbounded send loop with no cancellation channel and
// no join in the spawner.
func leakLoop(ch chan int) {
	go func() { // finding: looping body, no ctx/done, spawner never waits
		for {
			ch <- 1
		}
	}()
}

func worker() {}

// leakNamed hands off to a named function without a context or channel
// argument, and the spawner does not wait.
func leakNamed() {
	go worker() // finding: no signal argument, spawner never waits
}
