package goroleakpos

// leakScenarioWorkers mimics a sweep fan-out that forgets the join: the
// workers range a channel that is never closed here, and the spawner
// returns without waiting.
func leakScenarioWorkers(next chan int, out []float64) {
	for w := 0; w < 4; w++ {
		go func() { // finding: looping body, no ctx/done, spawner never waits
			for i := range next {
				out[i] = float64(i)
			}
		}()
	}
}
