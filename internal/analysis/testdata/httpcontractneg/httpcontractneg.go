// Package httpcontractneg holds compliant handler shapes.
package httpcontractneg

import (
	"io"
	"net/http"
)

const maxBody = 1 << 20

// capped rebinds req.Body through MaxBytesReader before reading it.
func capped(w http.ResponseWriter, req *http.Request) {
	req.Body = http.MaxBytesReader(w, req.Body, maxBody)
	b, err := io.ReadAll(req.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	_, _ = w.Write(b)
}

// limited wraps the body inline in a LimitReader at the read site.
func limited(w http.ResponseWriter, req *http.Request) {
	b, err := io.ReadAll(io.LimitReader(req.Body, maxBody))
	if err != nil {
		respond(w, http.StatusBadRequest)
		return
	}
	_, _ = w.Write(b)
}

// respond is a status-writing helper the classifier must resolve: calling it
// counts as committing the status.
func respond(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

// branchy commits exactly one status on every path, through the helper.
func branchy(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/a" {
		respond(w, http.StatusOK)
		return
	}
	respond(w, http.StatusNotFound)
}

// retry loops over a helper that only MAY write: not a loop-commit finding.
func retry(w http.ResponseWriter, req *http.Request, tries int) {
	for i := 0; i < tries; i++ {
		if forward(w, i) {
			return
		}
	}
	respond(w, http.StatusBadGateway)
}

// forward writes a status on one branch only, so its effect is may-write.
func forward(w http.ResponseWriter, i int) bool {
	if i > 2 {
		w.WriteHeader(http.StatusOK)
		return true
	}
	return false
}
