// Compliant observability-endpoint shapes: status decided before any body
// bytes, implicit 200 from the first write.
package httpcontractneg

import (
	"encoding/json"
	"io"
	"net/http"
)

// slozOK sets headers only and lets the encoder's first write commit 200
// implicitly — the compliant shape for JSON status endpoints.
func slozOK(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]float64{"burn": 0})
}

// metricszOK reports a scrape failure before any body bytes and returns;
// the streaming path never revisits the status.
func metricszOK(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("replica") == "" {
		respond(w, http.StatusBadGateway)
		return
	}
	_, _ = io.WriteString(w, "{}")
}
