// Package httpcontractpos violates each HTTP-layer contract clause.
package httpcontractpos

import (
	"io"
	"net/http"
)

// uncapped reads the request body without a size cap.
func uncapped(w http.ResponseWriter, req *http.Request) {
	b, _ := io.ReadAll(req.Body) // finding: no MaxBytesReader/LimitReader
	_, _ = w.Write(b)
}

// doubleHeader commits the status twice on the same path.
func doubleHeader(w http.ResponseWriter, req *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusInternalServerError) // finding: second commit
}

// bodyFirst writes response bytes before the error status.
func bodyFirst(w http.ResponseWriter, req *http.Request) {
	_, _ = w.Write([]byte("partial"))
	w.WriteHeader(http.StatusInternalServerError) // finding: status after body
}

// loopHeader commits a status on every loop iteration.
func loopHeader(w http.ResponseWriter, req *http.Request, codes []int) {
	for _, c := range codes {
		w.WriteHeader(c) // finding: may commit on more than one iteration
	}
}
