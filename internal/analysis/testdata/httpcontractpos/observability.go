// Observability-endpoint shapes: the /sloz and /metricsz handler mistakes
// the serve and fleet tiers must not make.
package httpcontractpos

import (
	"encoding/json"
	"io"
	"net/http"
)

// slozHandler commits 200 explicitly and then hands w to an encoder whose
// first write commits the status again.
func slozHandler(w http.ResponseWriter, req *http.Request) {
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(map[string]float64{"burn": 0}) // finding: committed twice
}

// metricszHandler starts streaming the merged document and only then
// notices a failed replica scrape: the error status lands after body bytes.
func metricszHandler(w http.ResponseWriter, req *http.Request) {
	_, _ = io.WriteString(w, `{"metrics":[`)
	if req.URL.Query().Get("replica") == "" {
		w.WriteHeader(http.StatusBadGateway) // finding: status after body
	}
}
