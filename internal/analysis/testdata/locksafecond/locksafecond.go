// Package locksafecond documents locksafe's treatment of conditional
// releases: a defer mu.Unlock() inside one branch still pairs the Lock
// (the analyzer requires a release to appear somewhere in the function,
// not on every path), so this shape produces no finding.
package locksafecond

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) bump(cond bool) {
	g.mu.Lock()
	if cond {
		defer g.mu.Unlock()
		g.n++
		return
	}
	g.mu.Unlock()
}
