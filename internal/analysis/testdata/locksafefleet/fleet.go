// Package locksafefleet models the fleet proxy's concurrency shapes for the
// locksafe analyzer: replica tables guarded by a mutex must never be copied
// by value, and routing paths that lock the table must release it on every
// path. repro/internal/fleet keeps its per-replica state in atomics for
// exactly this reason; these fixtures are the mutex-based shapes that go
// wrong.
package locksafefleet

import "sync"

// table is a mutex-guarded replica routing table.
type table struct {
	mu    sync.Mutex
	ready map[string]bool
}

// routeByValue receives the table by value: the copied mutex guards a
// disjoint lock state and the map races anyway.
func routeByValue(t table, addr string) bool { // violation: mutex copied
	return t.ready[addr]
}

// markUnready locks the table and returns without unlocking — every later
// request deadlocks on the routing table.
func markUnready(t *table, addr string) {
	t.mu.Lock() // violation: no matching Unlock
	t.ready[addr] = false
}
