// Package locksafeneg holds true-negative fixtures for the locksafe
// analyzer: correct lock pairing and pointer passing.
package locksafeneg

import "sync"

// guarded carries a mutex accessed only through pointer receivers.
type guarded struct {
	mu sync.Mutex
	n  int
}

// incr uses the defer-unlock idiom.
func (g *guarded) incr() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// get releases directly on the single path.
func (g *guarded) get() int {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	return n
}

// rw pairs reader locks with reader unlocks.
type rw struct {
	mu sync.RWMutex
	v  int
}

// read pairs RLock with a deferred RUnlock.
func (r *rw) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// fresh constructs new values; pointers never copy the mutex.
func fresh() *guarded {
	g := &guarded{}
	return g
}
