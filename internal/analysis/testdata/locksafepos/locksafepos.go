// Package locksafepos holds true-positive fixtures for the locksafe
// analyzer: mutex copies and unpaired locks.
package locksafepos

import "sync"

// guarded carries a mutex by value.
type guarded struct {
	mu sync.Mutex
	n  int
}

// byValue receives a mutex-containing struct by value: the copy's lock
// state guards nothing.
func byValue(g guarded) int { return g.n }

// leak locks and returns without any matching unlock.
func leak(g *guarded) {
	g.mu.Lock()
	g.n++
}

// copyAssign duplicates the mutex through a dereference copy.
func copyAssign(g *guarded) int {
	c := *g
	return c.n
}
