// Package locksaferegistry models the model registry's publish path for the
// locksafe analyzer. repro/internal/registry serializes publishers with a
// mutex while readers go through an atomic pointer; the invariant is that
// the publisher lock is released on every path, including error returns.
package locksaferegistry

import "sync"

// registry mirrors the publisher-side state.
type registry struct {
	mu      sync.Mutex
	nextVer uint64
	history []uint64
}

// publishLeak takes the publisher lock and returns on the validation path
// without releasing it; the next publisher deadlocks.
func publishLeak(r *registry, ok bool) uint64 {
	r.mu.Lock() // violation: no matching Unlock
	if !ok {
		return 0
	}
	r.nextVer++
	r.history = append(r.history, r.nextVer)
	return r.nextVer
}

// publish is the correct shape: the deferred unlock covers every path.
func publish(r *registry) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextVer++
	r.history = append(r.history, r.nextVer)
	return r.nextVer
}
