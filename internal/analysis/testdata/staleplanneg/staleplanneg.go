// Package staleplanneg holds true-negative fixtures for the staleplan
// analyzer: blessed mutators, non-coefficient fields and unguarded types.
package staleplanneg

// KWModel mirrors the guarded model.
type KWModel struct {
	Classif  map[string]int
	Training string
}

// FitKW is blessed by the Fit prefix.
func FitKW() *KWModel {
	m := &KWModel{}
	m.Classif = map[string]int{}
	return m
}

// ObserveRecords is blessed by exact name.
func (m *KWModel) ObserveRecords() {
	m.Classif = nil
}

// rebuildFromAccumulators is blessed by exact name.
func (m *KWModel) rebuildFromAccumulators() {
	m.Classif = map[string]int{}
}

// SetTraining writes a non-coefficient field: no plan depends on it.
func (m *KWModel) SetTraining(s string) {
	m.Training = s
}

// OtherModel shares a field name but is not a guarded type.
type OtherModel struct{ Classif int }

// set writes the unguarded type freely.
func set(o *OtherModel) {
	o.Classif = 1
}

// fitKWRecords is blessed by the fit prefix: the shared fitting core both
// the record-scan and streaming paths funnel into.
func fitKWRecords(m *KWModel) {
	m.Classif = map[string]int{}
}
