// Package staleplanpos holds true-positive fixtures for the staleplan
// analyzer: coefficient writes outside the blessed mutators.
package staleplanpos

// KWModel mirrors the guarded model's coefficient fields.
type KWModel struct {
	Classif map[string]int
	Groups  []int
}

// FitKW is blessed (Fit prefix); its writes are allowed.
func FitKW() *KWModel {
	m := &KWModel{}
	m.Classif = map[string]int{}
	return m
}

// tamper mutates a coefficient field from an unblessed function.
func tamper(m *KWModel) {
	m.Classif = nil
}

// SetGroups mutates through a method that is not a blessed mutator.
func (m *KWModel) SetGroups(gs []int) {
	m.Groups = gs
}

// seedFromAccumulators mimics a streaming-fit fold that bypasses the blessed
// chain (the fit-prefixed cores / rebuildFromAccumulators): still a
// violation.
func seedFromAccumulators(m *KWModel) {
	m.Groups = append(m.Groups, 1)
}
