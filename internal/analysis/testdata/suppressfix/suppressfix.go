// Package suppressfix exercises //lint:ignore directive handling.
package suppressfix

// folded carries a well-formed directive: analyzer name plus a reason.
// The detrange finding on the accumulation line is suppressed.
func folded(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore detrange bit-drift is acceptable: the sum feeds a log line only
		total += v
	}
	return total
}

// foldedBare omits the reason: the directive itself becomes a finding and
// the detrange finding below survives.
func foldedBare(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore detrange
		total += v
	}
	return total
}

// foldedWrong names a different analyzer: the detrange finding survives.
func foldedWrong(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore floateq misdirected reason
		total += v
	}
	return total
}
