// Package unitsafeloadgen models the load-generator result surface inside
// the unitsafe scope: measurement windows and latency summaries must carry
// the units.Seconds type, not a raw float64 whose name merely promises the
// unit. This is the exact shape repro/internal/loadgen adopted (its
// Result.MeasuredSeconds is a units.Seconds); these fixtures are the
// violations the scope rule keeps out.
package unitsafeloadgen

// Seconds mirrors units.Seconds.
type Seconds float64

// result mirrors a loadgen run summary that regressed to a raw float64
// measurement window.
type result struct {
	Sent            int64
	MeasuredSeconds float64 // violation: unit-named field, raw type
}

// summarize returns a latency quantile as a raw unit-named result.
func summarize(r result) (p99Seconds float64) { // violation: unit-named result, raw type
	_ = r
	return 0
}
