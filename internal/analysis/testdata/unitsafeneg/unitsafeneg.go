// Package unitsafeneg holds true-negative fixtures for the unitsafe
// analyzer: unit-coherent arithmetic and properly typed declarations.
package unitsafeneg

// Seconds mirrors units.Seconds.
type Seconds float64

// FLOPs mirrors units.FLOPs.
type FLOPs int64

// rate divides FLOPs by seconds: division forms a derived quantity.
func rate(t Seconds, f FLOPs) float64 { return float64(f) / float64(t) }

// sum adds like units without conversions.
func sum(a, b Seconds) Seconds { return a + b }

// diff subtracts conversions of the SAME unit, which is coherent.
func diff(a, b Seconds) float64 { return float64(a) - float64(b) }

// record declares its unit-named fields with unit types.
type record struct {
	E2ESeconds Seconds
	TotalFLOPs FLOPs
}

// scale multiplies a unit by a dimensionless factor.
func scale(t Seconds, k float64) Seconds { return Seconds(float64(t) * k) }
