// Package unitsafepos holds true-positive fixtures for the unitsafe
// analyzer: unit mixing laundered through conversions, and unit-named
// declarations with raw numeric types.
package unitsafepos

// Seconds mirrors units.Seconds.
type Seconds float64

// FLOPs mirrors units.FLOPs.
type FLOPs int64

// badSum adds seconds to FLOPs through conversions.
func badSum(t Seconds, f FLOPs) float64 { return float64(t) + float64(f) }

// badCompare orders seconds against FLOPs through conversions.
func badCompare(t Seconds, f FLOPs) bool { return float64(t) < float64(f) }

// record declares unit-named fields with raw numeric types.
type record struct {
	ElapsedSeconds float64
	TotalFLOPs     int64
}

// waitSeconds declares a unit-named parameter with a raw type.
func waitSeconds(totalSeconds float64) float64 { return totalSeconds }
