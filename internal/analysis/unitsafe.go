package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Unitsafe guards the unit discipline introduced by internal/units: seconds,
// FLOP counts and byte counts are distinct named types, and quantities of
// different units must never be added, subtracted or compared. The compiler
// already rejects direct mixing; this analyzer closes the two remaining
// holes:
//
//  1. Conversion laundering (all packages): float64(a) + float64(b) where a
//     and b carry different unit types. The conversions erase the units and
//     the compiler is satisfied, but seconds plus FLOPs is still
//     meaningless. Multiplication and division are allowed — they form
//     derived quantities (rates) legitimately.
//
//  2. Raw-typed unit names (scoped packages): a struct field, parameter or
//     result whose name ends in "Seconds", "FLOPs" or "Bytes" but whose
//     type is a unitless float64/int64 re-opens the boundary the migration
//     closed. Scoping keeps the rule to the packages that adopted the
//     discipline; elsewhere (e.g. wall-clock timings in benchmarks) raw
//     floats named *Seconds remain legal.
type Unitsafe struct {
	// Scope lists the import paths subject to the raw-typed-name rule.
	Scope []string
}

// NewUnitsafe returns the analyzer with the given name-rule scope.
func NewUnitsafe(scope []string) *Unitsafe { return &Unitsafe{Scope: scope} }

// DefaultUnitScope is the repository's unit-disciplined package set.
func DefaultUnitScope() []string {
	return []string{
		"repro/internal/core",
		"repro/internal/dataset",
		"repro/internal/disagg",
		"repro/internal/fleet",
		"repro/internal/loadgen",
		"repro/internal/obs",
		"repro/internal/registry",
		"repro/internal/units",
	}
}

// Name implements Analyzer.
func (*Unitsafe) Name() string { return "unitsafe" }

// Doc implements Analyzer.
func (*Unitsafe) Doc() string {
	return "unit-incoherent arithmetic or raw-typed unit-named declarations"
}

// unitTypeNames are the named types treated as units.
var unitTypeNames = map[string]bool{"Seconds": true, "FLOPs": true, "Bytes": true}

// unitSuffixes maps declaration-name suffixes to the unit they imply.
var unitSuffixes = []string{"Seconds", "FLOPs", "Bytes"}

// Run implements Analyzer.
func (a *Unitsafe) Run(p *Pass) []Finding {
	var findings []Finding
	a.checkMixing(p, &findings)
	if a.inScope(p.Pkg.Path()) {
		a.checkRawNames(p, &findings)
	}
	return findings
}

// inScope reports whether the package is subject to the name rule.
func (a *Unitsafe) inScope(path string) bool {
	for _, s := range a.Scope {
		if path == s {
			return true
		}
	}
	return false
}

// checkMixing flags additive/comparison operators whose operands are
// conversions of different unit types.
func (a *Unitsafe) checkMixing(p *Pass, findings *[]Finding) {
	additive := map[token.Token]bool{
		token.ADD: true, token.SUB: true,
		token.EQL: true, token.NEQ: true,
		token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !additive[be.Op] {
				return true
			}
			ux := conversionUnit(p, be.X)
			uy := conversionUnit(p, be.Y)
			if ux != "" && uy != "" && ux != uy {
				reportf(p, findings, a.Name(), be,
					"%s between %s and %s laundered through conversions; quantities of different units must not be combined additively",
					be.Op, ux, uy)
			}
			return true
		})
	}
	return
}

// conversionUnit returns the unit type name when expr is a conversion (to
// any basic numeric type) of a value carrying a unit type, else "".
func conversionUnit(p *Pass, expr ast.Expr) string {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "" // an ordinary call, not a conversion
	}
	if _, basic := tv.Type.Underlying().(*types.Basic); !basic {
		return ""
	}
	return unitName(p.Info.Types[call.Args[0]].Type)
}

// unitName returns t's name when t is a named unit type, else "".
func unitName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if name := named.Obj().Name(); unitTypeNames[name] {
		return name
	}
	return ""
}

// checkRawNames flags unit-named fields, parameters and results declared
// with unitless numeric types.
func (a *Unitsafe) checkRawNames(p *Pass, findings *[]Finding) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.StructType:
				for _, field := range d.Fields.List {
					a.checkFieldList(p, field, "field", findings)
				}
			case *ast.FuncType:
				if d.Params != nil {
					for _, field := range d.Params.List {
						a.checkFieldList(p, field, "parameter", findings)
					}
				}
				if d.Results != nil {
					for _, field := range d.Results.List {
						a.checkFieldList(p, field, "result", findings)
					}
				}
			}
			return true
		})
	}
}

// checkFieldList flags one field/param group if its names imply a unit but
// its type is a raw numeric.
func (a *Unitsafe) checkFieldList(p *Pass, field *ast.Field, kind string, findings *[]Finding) {
	tv, ok := p.Info.Types[field.Type]
	if !ok {
		return
	}
	if unitName(tv.Type) != "" {
		return // already a unit type
	}
	b, ok := tv.Type.(*types.Basic)
	if !ok || b.Info()&types.IsNumeric == 0 {
		return
	}
	for _, name := range field.Names {
		for _, suffix := range unitSuffixes {
			if name.Name != suffix && strings.HasSuffix(name.Name, suffix) {
				reportf(p, findings, a.Name(), name,
					"%s %q implies units.%s but is declared %s; use the unit type or rename",
					kind, name.Name, suffix, b.Name())
			}
		}
	}
}
