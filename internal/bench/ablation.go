package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/gpu"
)

// AblationRow is one KW-model variant's accuracy.
type AblationRow struct {
	// Variant names the design point.
	Variant string
	// MeanError is the held-out average relative error.
	MeanError float64
	// Models is the number of regression models the variant maintains.
	Models int
}

// AblationResult isolates the kernel-wise model's design choices
// (DESIGN.md §4): the R²-based driver classification of O5, the
// similar-slope kernel grouping, and the family-pooled fallback tier.
type AblationResult struct {
	GPU  string
	Rows []AblationRow
}

// Ablation evaluates the full KW design against variants with one choice
// removed, plus single-driver baselines, on the canonical held-out split.
func Ablation(l *Lab, g gpu.Spec) (*AblationResult, error) {
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	train, test := l.Split(ds)

	variants := []struct {
		name string
		opt  core.KWOptions
	}{
		{"full KW (classify + group + family fallback)", core.KWOptions{}},
		{"no grouping (one model per kernel)", core.KWOptions{DisableGrouping: true}},
		{"no family fallback", core.KWOptions{DisableFamilyFallback: true}},
		{"no classification: all operation-driven", core.KWOptions{ForceDriver: core.DriverOperation}},
		{"no classification: all input-driven", core.KWOptions{ForceDriver: core.DriverInput}},
		{"no classification: all output-driven", core.KWOptions{ForceDriver: core.DriverOutput}},
	}

	res := &AblationResult{GPU: g.Name}
	for _, v := range variants {
		m, err := core.FitKWOptions(train, g.Name, TrainBatch, v.opt)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %q: %w", v.name, err)
		}
		evals, err := l.evalOnTest(m, test, dnn.TaskImageClassification)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %q: %w", v.name, err)
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:   v.name,
			MeanError: core.MeanRelError(evals),
			Models:    m.ModelCount(),
		})
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *AblationResult) Render() string {
	rows := [][]string{{"KW variant", "models", "test error"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Variant,
			fmt.Sprintf("%d", row.Models), fmt.Sprintf("%.3f", row.MeanError)})
	}
	return renderTable(fmt.Sprintf("Ablation: kernel-wise model design choices (%s)", r.GPU), rows)
}
