package bench

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/gpu"
)

// sharedLab lazily builds one quick lab reused by every bench test (dataset
// collection dominates the cost; the cache makes the suite fast).
var (
	labOnce sync.Once
	lab     *Lab
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() { lab = NewQuickLab() })
	return lab
}

func TestTable1(t *testing.T) {
	r := Table1()
	if len(r.GPUs) != 7 {
		t.Fatalf("%d GPUs", len(r.GPUs))
	}
	out := r.Render()
	for _, name := range []string{"A100", "TITAN RTX", "Quadro P620"} {
		if !strings.Contains(out, name) {
			t.Fatalf("render missing %q:\n%s", name, out)
		}
	}
}

func TestFigure3(t *testing.T) {
	r, err := Figure3(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 100 {
		t.Fatalf("only %d points", len(r.Points))
	}
	// O1: the trend is linear on log-log axes…
	if r.LogLogFit.Slope < 0.5 || r.LogLogFit.Slope > 1.3 {
		t.Fatalf("log-log slope = %v", r.LogLogFit.Slope)
	}
	if r.LogLogFit.R2 < 0.7 {
		t.Fatalf("log-log R² = %v", r.LogLogFit.R2)
	}
	// …with a band roughly an order of magnitude wide…
	if r.BandRatio < 3 || r.BandRatio > 40 {
		t.Fatalf("band ratio = %v", r.BandRatio)
	}
	// …and inefficiency at small operation counts.
	if r.SmallFLOPsInefficiency < 1.5 {
		t.Fatalf("small-FLOPs inefficiency = %v", r.SmallFLOPsInefficiency)
	}
}

func TestFigure4(t *testing.T) {
	r, err := Figure4(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	// O2: the two families fall on *different* lines, with the GPU more
	// efficient on VGG.
	if r.SlopeRatioRvsV < 1.1 {
		t.Fatalf("ResNet/VGG slope ratio = %v, want > 1.1", r.SlopeRatioRvsV)
	}
	if r.ResNet.Fit.R2 < 0.9 || r.VGG.Fit.R2 < 0.8 {
		t.Fatalf("per-family R²: %v / %v", r.ResNet.Fit.R2, r.VGG.Fit.R2)
	}
}

func TestFigure5(t *testing.T) {
	r, err := Figure5(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("%d series", len(r.Series))
	}
	slopes := map[string]float64{}
	for _, s := range r.Series {
		// O3: time is linear in batch size…
		if s.Fit.R2 < 0.98 {
			t.Fatalf("%s: batch fit R² = %v", s.Network, s.Fit.R2)
		}
		if s.Fit.Slope <= 0 {
			t.Fatalf("%s: slope = %v", s.Network, s.Fit.Slope)
		}
		slopes[s.Network] = s.Fit.Slope
	}
	// …with per-network slopes: VGG-16 costs the most per image,
	// MobileNetV2 the least.
	if !(slopes["vgg16"] > slopes["resnet50"] && slopes["resnet50"] > slopes["mobilenet_v2"]) {
		t.Fatalf("slope ordering: %v", slopes)
	}
}

func TestFigure6(t *testing.T) {
	r, err := Figure6(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range r.Series {
		// Achieved TFLOPS must rise from small to fully-utilizing batches.
		if r.SaturationRatio[i] <= 1.05 {
			t.Fatalf("%s: saturation ratio = %v", s.Network, r.SaturationRatio[i])
		}
		// And flatten at the top: the last two points stay within 15 %.
		n := len(s.Value)
		last, prev := s.Value[n-1], s.Value[n-2]
		if last/prev > 1.15 || prev/last > 1.15 {
			t.Fatalf("%s: no saturation at large batch (%v vs %v)", s.Network, prev, last)
		}
	}
}

func TestFigure7(t *testing.T) {
	r, err := Figure7(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	eff := map[string]float64{}
	for _, tr := range r.Trends {
		eff[string(tr.Kind)] = tr.GFLOPSPerSec
		if tr.N < 10 {
			t.Fatalf("%s: only %d layers", tr.Kind, tr.N)
		}
	}
	// O4: CONV and FC run far more efficiently than BN and Pooling.
	if !(eff["Conv2D"] > 5*eff["BatchNorm"] && eff["Linear"] > 5*eff["MaxPool"]) {
		t.Fatalf("layer-type efficiency ordering: %v", eff)
	}
}

func TestFigure8(t *testing.T) {
	r, err := Figure8(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalKernels < 25 {
		t.Fatalf("classified %d kernels", r.TotalKernels)
	}
	for _, c := range r.Classes {
		if c.Kernels == 0 {
			t.Fatalf("class %s empty", c.Class)
		}
		// O5: classification amplifies the linear relationship — the chosen
		// driver fits better than the alternatives.
		if c.MeanOwnR2 < 0.85 {
			t.Fatalf("%s: own R² = %v", c.Class, c.MeanOwnR2)
		}
		if c.MeanOwnR2 <= c.MeanOtherR2 {
			t.Fatalf("%s: own R² %v not above other drivers %v", c.Class, c.MeanOwnR2, c.MeanOtherR2)
		}
	}
}

func TestFigure9(t *testing.T) {
	r, err := Figure9(quickLab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d GPUs", len(r.Rows))
	}
	// O6: bandwidth efficiency is stable across GPUs, compute efficiency is
	// not.
	if r.BWSpread > 2.0 {
		t.Fatalf("BW efficiency spread = %v, want stable", r.BWSpread)
	}
	if r.ComputeSpread < 1.8*r.BWSpread {
		t.Fatalf("compute spread %v should exceed BW spread %v", r.ComputeSpread, r.BWSpread)
	}
}

func TestFigures11To13Ordering(t *testing.T) {
	l := quickLab(t)
	f11, err := Figure11(l, gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	f12, err := Figure12(l, gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	f13, err := Figure13(l, gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	e2e, lw, kw := f11.Curve.MeanError, f12.Curve.MeanError, f13.Curve.MeanError
	t.Logf("E2E=%.3f LW=%.3f KW=%.3f", e2e, lw, kw)
	// The paper's central result: each refinement cuts the error,
	// dramatically so at the kernel level.
	if !(kw < lw && lw < e2e) {
		t.Fatalf("ordering violated: E2E=%.3f LW=%.3f KW=%.3f", e2e, lw, kw)
	}
	if kw > 0.12 {
		t.Fatalf("KW error %v outside the paper's regime", kw)
	}
	// Kernel grouping: fewer models than kernels.
	if f13.ModelCount >= f13.KernelCount {
		t.Fatalf("grouping: %d kernels → %d models", f13.KernelCount, f13.ModelCount)
	}
	// KW works across GPUs in a narrow error band.
	for g, e := range f13.PerGPUError {
		if e > 0.15 {
			t.Fatalf("KW on %s: error %v", g, e)
		}
	}
	// Transformer extension stays accurate.
	if f13.TransformerError > 0.25 {
		t.Fatalf("transformer error = %v", f13.TransformerError)
	}
	// The KW S-curve is asymmetric: the low tail does not underestimate
	// badly ("we almost do not underestimate the execution time").
	if f13.Curve.Percentiles[0] < 0.75 {
		t.Fatalf("KW underestimates: P0 = %v", f13.Curve.Percentiles[0])
	}
}

func TestTable2(t *testing.T) {
	r, err := Table2(quickLab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The KW model runs in seconds — the PKS/PKA baselines take hours.
		if row.KWSeconds > 60 {
			t.Fatalf("BS=%d: KW took %v s", row.BatchSize, row.KWSeconds)
		}
		// And it beats the published PKA error at every batch size.
		if row.KWErrorPct >= row.PKAErrorPct {
			t.Fatalf("BS=%d: KW %.1f%% not below PKA %.1f%%", row.BatchSize, row.KWErrorPct, row.PKAErrorPct)
		}
	}
}

func TestFigure14(t *testing.T) {
	r, err := Figure14(quickLab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TrainGPUs) != 3 {
		t.Fatalf("train GPUs = %v", r.TrainGPUs)
	}
	for _, g := range r.TrainGPUs {
		if g == "TITAN RTX" {
			t.Fatal("the target GPU leaked into the training set")
		}
	}
	// Predicting an unseen GPU costs accuracy versus same-GPU KW, but stays
	// in the paper's regime.
	if r.Curve.MeanError > 0.30 {
		t.Fatalf("IGKW error = %v", r.Curve.MeanError)
	}
	if r.Within10 < 0.15 {
		t.Fatalf("within-10%% fraction = %v", r.Within10)
	}
}

func TestFigure15And16(t *testing.T) {
	l := quickLab(t)
	f15, err := Figure15(l)
	if err != nil {
		t.Fatal(err)
	}
	f16, err := Figure16(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*BandwidthDSEResult{f15, f16} {
		if len(r.Points) != 13 {
			t.Fatalf("%s: %d sweep points", r.Figure, len(r.Points))
		}
		// More bandwidth never hurts, and the curve flattens: the first
		// 100 GB/s step buys a much larger relative gain than the last.
		for i := 1; i < len(r.Points); i++ {
			if r.Points[i].PredictedMs > r.Points[i-1].PredictedMs {
				t.Fatalf("%s: time increased with bandwidth at %v GB/s",
					r.Figure, r.Points[i].BandwidthGBps)
			}
		}
		firstGain := r.Points[0].PredictedMs / r.Points[1].PredictedMs
		lastGain := r.Points[len(r.Points)-2].PredictedMs / r.Points[len(r.Points)-1].PredictedMs
		if firstGain < 1.15*lastGain {
			t.Fatalf("%s: no diminishing returns (first %v, last %v)", r.Figure, firstGain, lastGain)
		}
		if total := r.Points[0].PredictedMs / r.Points[len(r.Points)-1].PredictedMs; total < 2 {
			t.Fatalf("%s: bandwidth barely matters (%vx end to end)", r.Figure, total)
		}
		if r.IdealLowGBps <= 0 || r.IdealHighGBps < r.IdealLowGBps {
			t.Fatalf("%s: ideal range %v–%v", r.Figure, r.IdealLowGBps, r.IdealHighGBps)
		}
	}
}

func TestFigure17(t *testing.T) {
	r, err := Figure17(quickLab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 5 {
		t.Fatalf("%d series", len(r.Series))
	}
	requirements := map[float64]bool{}
	for _, s := range r.Series {
		if s.Speedups[0] != 1 {
			t.Fatalf("%s: baseline speedup = %v", s.Network, s.Speedups[0])
		}
		for i := 1; i < len(s.Speedups); i++ {
			if s.Speedups[i] < s.Speedups[i-1]-1e-9 {
				t.Fatalf("%s: speedup not monotone", s.Network)
			}
		}
		top := s.Speedups[len(s.Speedups)-1]
		if top < 1.3 || top > 6 {
			t.Fatalf("%s: top speedup %v outside the case study's regime", s.Network, top)
		}
		requirements[s.RequiredGBps] = true
	}
	// "Different networks have different network bandwidth requirements."
	if len(requirements) < 2 {
		t.Fatalf("all networks share one bandwidth requirement: %v", requirements)
	}
}

func TestFigure18(t *testing.T) {
	r, err := Figure18(quickLab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// The paper: the model selects the faster GPU for every network.
	if r.Correct != len(r.Rows) {
		t.Fatalf("correct choices = %d/%d", r.Correct, len(r.Rows))
	}
	for _, row := range r.Rows {
		for _, g := range []string{"A40", "TITAN RTX"} {
			meas, pred := row.MeasuredMs[g], row.PredictedMs[g]
			if pred < meas*0.7 || pred > meas*1.4 {
				t.Fatalf("%s on %s: pred %v vs meas %v", row.Network, g, pred, meas)
			}
		}
	}
}

func TestFigure19(t *testing.T) {
	r, err := Figure19(quickLab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Assignment.GPUOf) != 9 {
		t.Fatalf("assignment covers %d networks", len(r.Assignment.GPUOf))
	}
	// Both GPUs must be used (the queue cannot fit one GPU optimally).
	used := map[string]bool{}
	for _, g := range r.Assignment.GPUOf {
		used[g] = true
	}
	if len(used) != 2 {
		t.Fatalf("assignment uses %d GPUs", len(used))
	}
	// The model's schedule lands within 2 % of the measured-time oracle
	// (the paper reports an identical schedule).
	if r.AchievedMakespan > r.OracleMakespan*1.02 {
		t.Fatalf("achieved %v vs oracle %v", r.AchievedMakespan, r.OracleMakespan)
	}
}
