package bench

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/disagg"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/sched"
	"repro/internal/units"
)

// dseTrainGPUs are the measured devices the design-space explorations learn
// from (everything in the main set except the TITAN RTX being customized).
func dseTrainGPUs() []gpu.Spec {
	return []gpu.Spec{gpu.A100, gpu.A40, gpu.GTX1080Ti, gpu.V100}
}

// --------------------------------------------------- Figures 15 and 16

// BandwidthPoint is one design point of the bandwidth sweep.
type BandwidthPoint struct {
	BandwidthGBps float64
	PredictedMs   float64
}

// BandwidthDSEResult is case study 1: predicted execution time of a network
// on a TITAN RTX with modified memory bandwidth.
type BandwidthDSEResult struct {
	Figure  string
	Network string
	Batch   int
	Points  []BandwidthPoint
	// IdealLowGBps / IdealHighGBps bound the "ideal bandwidth range": below
	// the low bound the network loses > 10 % performance versus the maximum
	// bandwidth; above the high bound further bandwidth buys < 3 %.
	IdealLowGBps, IdealHighGBps float64
	// NativeGBps is the actual TITAN RTX bandwidth (672 GB/s), the red line
	// of the figures.
	NativeGBps float64
}

// bandwidthDSE runs the sweep for one network.
func bandwidthDSE(l *Lab, figure, network string, batch int) (*BandwidthDSEResult, error) {
	ds, err := l.Dataset(dseTrainGPUs()...)
	if err != nil {
		return nil, err
	}
	base, err := core.FitIGKWBase(ds, dseTrainGPUs(), TrainBatch)
	if err != nil {
		return nil, err
	}
	net, err := l.Network(network)
	if err != nil {
		return nil, err
	}

	res := &BandwidthDSEResult{Figure: figure, Network: network, Batch: batch,
		NativeGBps: gpu.TitanRTX.MemBWGBps}

	// Resolve one model per candidate bandwidth, then evaluate the whole
	// (model × network × batch) sweep through core.PredictGrid: each model
	// compiles its plan once and every point comes from the same grid call.
	var models []core.SweepPredictor
	var bws []float64
	for bw := 200.0; bw <= 1400.0; bw += 100 {
		m, err := base.Resolve(gpu.TitanRTX.WithBandwidth(bw))
		if err != nil {
			return nil, err
		}
		models = append(models, m)
		bws = append(bws, bw)
	}
	grid, err := core.PredictGrid(models, []*dnn.Network{net}, []int{batch})
	if err != nil {
		return nil, err
	}
	var times []float64
	for i, bw := range bws {
		t := grid.Seconds[i][0][0]
		res.Points = append(res.Points, BandwidthPoint{BandwidthGBps: bw, PredictedMs: t.Micros() / 1e3})
		times = append(times, float64(t))
	}

	// The "ideal range" is read off the knee of the curve: its lower bound
	// is where the marginal gain of another 100 GB/s falls below 10 %, the
	// upper bound where it falls below 5 % — past that, extra bandwidth is
	// wasted money (the case study's procurement question).
	res.IdealLowGBps, res.IdealHighGBps = -1, -1
	for i := 1; i < len(times); i++ {
		gain := (times[i-1] - times[i]) / times[i-1]
		if res.IdealLowGBps < 0 && gain < 0.10 {
			res.IdealLowGBps = res.Points[i-1].BandwidthGBps
		}
		if res.IdealHighGBps < 0 && gain < 0.05 {
			res.IdealHighGBps = res.Points[i-1].BandwidthGBps
		}
	}
	if res.IdealLowGBps < 0 {
		res.IdealLowGBps = res.Points[len(res.Points)-1].BandwidthGBps
	}
	if res.IdealHighGBps < 0 {
		res.IdealHighGBps = res.Points[len(res.Points)-1].BandwidthGBps
	}
	return res, nil
}

// Figure15 sweeps ResNet-50 on a bandwidth-modified TITAN RTX (paper: the
// ideal range is 600–800 GB/s, containing the native 672 GB/s).
func Figure15(l *Lab) (*BandwidthDSEResult, error) {
	return bandwidthDSE(l, "Figure 15", "resnet50", TrainBatch)
}

// Figure16 sweeps DenseNet-169 (paper: less bandwidth-sensitive, ideal range
// 500–700 GB/s — a customer could order cheaper memory).
func Figure16(l *Lab) (*BandwidthDSEResult, error) {
	return bandwidthDSE(l, "Figure 16", "densenet169", TrainBatch)
}

// Render implements the result-rendering convention.
func (r *BandwidthDSEResult) Render() string {
	rows := [][]string{{"bandwidth (GB/s)", "predicted time (ms)"}}
	for _, p := range r.Points {
		mark := ""
		if bwi := int(p.BandwidthGBps); bwi == 600 || bwi == 700 {
			mark = "  ← native 672 GB/s region"
		}
		rows = append(rows, []string{fmt.Sprintf("%.0f", p.BandwidthGBps),
			fmt.Sprintf("%.1f%s", p.PredictedMs, mark)})
	}
	rows = append(rows, []string{"ideal range",
		fmt.Sprintf("%.0f–%.0f GB/s", r.IdealLowGBps, r.IdealHighGBps)})
	return renderTable(fmt.Sprintf("%s: predicted time of %s on TITAN RTX with modified bandwidth (BS=%d)",
		r.Figure, r.Network, r.Batch), rows)
}

// ---------------------------------------------------------------- Figure 17

// Figure17Batch is the serving batch size of the disaggregated-memory case
// study; small batches make parameter traffic the bottleneck, which is the
// regime the study explores.
const Figure17Batch = 64

// figure17Nets matches the paper's x-axis.
var figure17Nets = []string{"resnet50", "resnet77", "densenet121", "densenet161", "shufflenet_v1"}

// figure17Bandwidths are the swept link bandwidths in GB/s (16 is the
// normalization baseline).
var figure17Bandwidths = []float64{16, 32, 64, 128, 256, 512}

// Figure17Series is one network's speedup curve.
type Figure17Series struct {
	Network  string
	Speedups []float64 // aligned with figure17Bandwidths
	// RequiredGBps is the smallest swept bandwidth within 5 % of the
	// maximum-bandwidth performance — "the minimum required network
	// bandwidth" of the case study.
	RequiredGBps float64
}

// Figure17Result is case study 2: speedup over a 16 GB/s link for networks
// on a memory-disaggregated GPU system.
type Figure17Result struct {
	GPU    string
	Series []Figure17Series
}

// Figure17 connects the KW model (per-layer times on TITAN RTX) to the
// event-driven disaggregated-memory simulation and sweeps the link
// bandwidth.
func Figure17(l *Lab) (*Figure17Result, error) {
	g := gpu.TitanRTX
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	train, _ := l.Split(ds)
	kw, err := core.FitKW(train, g.Name, TrainBatch)
	if err != nil {
		return nil, err
	}

	res := &Figure17Result{GPU: g.Name}
	for _, name := range figure17Nets {
		net, err := l.Network(name)
		if err != nil {
			return nil, err
		}
		if err := net.Infer(Figure17Batch); err != nil {
			return nil, err
		}
		var jobs []disagg.LayerJob
		for _, layer := range net.Layers {
			// The remote pool holds both parameters and spilled activations:
			// each layer streams its weights plus its input/output feature
			// maps over the link.
			traffic := 4 * layer.WeightCount()
			for _, s := range layer.InShapes {
				traffic += 4 * s.Numel()
			}
			traffic += 4 * layer.OutShape.Numel()
			jobs = append(jobs, disagg.LayerJob{
				Name:           layer.Name,
				ComputeSeconds: kw.PredictLayerTime(layer),
				RemoteBytes:    units.Bytes(traffic),
			})
		}
		results, err := disagg.Sweep(jobs, disagg.Config{LinkLatencyUS: 2}, figure17Bandwidths)
		if err != nil {
			return nil, err
		}
		s := Figure17Series{Network: name, Speedups: disagg.Speedups(results)}
		best := results[len(results)-1].TotalSeconds
		for i, r := range results {
			if r.TotalSeconds <= best*1.05 {
				s.RequiredGBps = figure17Bandwidths[i]
				break
			}
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Figure17Result) Render() string {
	header := []string{"network"}
	for _, bw := range figure17Bandwidths {
		header = append(header, fmt.Sprintf("%.0f GB/s", bw))
	}
	header = append(header, "required")
	rows := [][]string{header}
	for _, s := range r.Series {
		row := []string{s.Network}
		for _, sp := range s.Speedups {
			row = append(row, fmt.Sprintf("%.2f", sp))
		}
		row = append(row, fmt.Sprintf("%.0f GB/s", s.RequiredGBps))
		rows = append(rows, row)
	}
	return renderTable(fmt.Sprintf("Figure 17: speedup over 16 GB/s link, memory-disaggregated %s (BS=%d)",
		r.GPU, Figure17Batch), rows)
}

// ---------------------------------------------------------------- Figure 18

// figure18Nets matches the paper's x-axis.
var figure18Nets = []string{"resnet50", "resnet77", "densenet161", "densenet169", "densenet121", "shufflenet_v1"}

// schedGPUs are the two cloud devices of case study 3.
func schedGPUs() []gpu.Spec { return []gpu.Spec{gpu.A40, gpu.TitanRTX} }

// fitSchedModels trains one KW model per scheduling GPU, fitting the GPUs in
// parallel (dataset collection for distinct GPUs shares nothing, and the
// lab's per-GPU flights dedupe concurrent collection anyway).
func fitSchedModels(l *Lab) (map[string]*core.KWModel, error) {
	gpus := schedGPUs()
	models := make([]*core.KWModel, len(gpus))
	errs := make([]error, len(gpus))
	var wg sync.WaitGroup
	for i, g := range gpus {
		wg.Add(1)
		go func(i int, g gpu.Spec) {
			defer wg.Done()
			ds, err := l.Dataset(g)
			if err != nil {
				errs[i] = err
				return
			}
			train, _ := l.Split(ds)
			models[i], errs[i] = core.FitKW(train, g.Name, TrainBatch)
		}(i, g)
	}
	wg.Wait()

	kws := map[string]*core.KWModel{}
	for i, g := range gpus {
		if errs[i] != nil {
			return nil, errs[i]
		}
		kws[g.Name] = models[i]
	}
	return kws, nil
}

// predictSchedTimes issues every (network, GPU) prediction of the scheduling
// case studies through core.PredictGrid — the query pattern a scheduler
// serving many placement decisions generates, evaluated one plan sweep per
// (model, network) cell — and returns seconds indexed by network then GPU,
// so assembly stays deterministic.
func predictSchedTimes(l *Lab, kws map[string]*core.KWModel, names []string) ([][]units.Seconds, error) {
	gpus := schedGPUs()
	models := make([]core.SweepPredictor, len(gpus))
	for j, g := range gpus {
		models[j] = kws[g.Name]
	}
	nets := make([]*dnn.Network, len(names))
	for i, name := range names {
		net, err := l.Network(name)
		if err != nil {
			return nil, err
		}
		nets[i] = net
	}
	grid, err := core.PredictGrid(models, nets, []int{TrainBatch})
	if err != nil {
		return nil, err
	}
	out := make([][]units.Seconds, len(names))
	for i := range names {
		out[i] = make([]units.Seconds, len(gpus))
		for j := range gpus {
			out[i][j] = grid.Seconds[j][i][0]
		}
	}
	return out, nil
}

// Figure18Row is one network's measured/predicted pair on both GPUs.
type Figure18Row struct {
	Network                 string
	MeasuredMs, PredictedMs map[string]float64
	ChosenGPU, FasterGPU    string
	CorrectChoice           bool
}

// Figure18Result: the model picks the faster GPU for every network.
type Figure18Result struct {
	Rows    []Figure18Row
	Correct int
}

// Figure18 compares measured and KW-predicted times on A40 and TITAN RTX and
// checks the per-network GPU choice. Model fitting and the (network, GPU)
// prediction queries both run concurrently; row assembly is serial, so the
// result is identical to the sequential computation.
func Figure18(l *Lab) (*Figure18Result, error) {
	kws, err := fitSchedModels(l)
	if err != nil {
		return nil, err
	}
	meas, err := l.Sweep(figure18Nets, schedGPUs(), []int{TrainBatch})
	if err != nil {
		return nil, err
	}
	preds, err := predictSchedTimes(l, kws, figure18Nets)
	if err != nil {
		return nil, err
	}

	res := &Figure18Result{}
	for i, name := range figure18Nets {
		row := Figure18Row{Network: name,
			MeasuredMs: map[string]float64{}, PredictedMs: map[string]float64{}}
		for j, g := range schedGPUs() {
			row.PredictedMs[g.Name] = float64(preds[i][j]) * 1e3
			for _, r := range meas.Networks {
				if r.Network == name && r.GPU == g.Name && r.BatchSize == TrainBatch {
					row.MeasuredMs[g.Name] = float64(r.E2ESeconds) * 1e3
				}
			}
			if row.MeasuredMs[g.Name] == 0 {
				return nil, fmt.Errorf("bench: figure 18: no measurement for %s on %s", name, g.Name)
			}
		}
		row.ChosenGPU = argminKey(row.PredictedMs)
		row.FasterGPU = argminKey(row.MeasuredMs)
		row.CorrectChoice = row.ChosenGPU == row.FasterGPU
		if row.CorrectChoice {
			res.Correct++
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// argminKey returns the key with the smallest value (ties: lexicographically
// first, for determinism).
func argminKey(m map[string]float64) string {
	best := ""
	for k, v := range m {
		if best == "" || v < m[best] {
			best = k
			continue
		}
		if v > m[best] {
			continue
		}
		if k < best { // values tie: lexicographic winner
			best = k
		}
	}
	return best
}

// Render implements the result-rendering convention.
func (r *Figure18Result) Render() string {
	rows := [][]string{{"network", "A40 meas", "A40 pred", "TITAN meas", "TITAN pred", "chosen", "correct"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Network,
			fmt.Sprintf("%.1f", row.MeasuredMs["A40"]), fmt.Sprintf("%.1f", row.PredictedMs["A40"]),
			fmt.Sprintf("%.1f", row.MeasuredMs["TITAN RTX"]), fmt.Sprintf("%.1f", row.PredictedMs["TITAN RTX"]),
			row.ChosenGPU, fmt.Sprintf("%t", row.CorrectChoice)})
	}
	rows = append(rows, []string{"correct choices",
		fmt.Sprintf("%d/%d", r.Correct, len(r.Rows)), "", "", "", "", ""})
	return renderTable(fmt.Sprintf("Figure 18: measured vs predicted time (ms) on A40 and TITAN RTX (BS=%d)", TrainBatch), rows)
}

// ---------------------------------------------------------------- Figure 19

// figure19Nets is the paper's nine-network queue.
var figure19Nets = []string{
	"resnet44", "resnet50", "resnet62", "resnet77",
	"densenet121", "densenet161", "densenet169", "densenet201",
	"shufflenet_v1",
}

// Figure19Result: scheduling the queue with predicted times matches the
// oracle (measured-time) schedule.
type Figure19Result struct {
	Networks []string
	// Assignment is the predicted-time brute-force schedule.
	Assignment sched.Assignment
	// PredictedMakespan is that schedule's makespan under predicted times;
	// AchievedMakespan re-costs it with measured times; OracleMakespan is
	// the best achievable with measured times.
	PredictedMakespan, AchievedMakespan, OracleMakespan float64
	// MatchesOracle reports whether the model's schedule achieves the
	// oracle makespan.
	MatchesOracle bool
}

// Figure19 brute-force schedules the queue on A40 + TITAN RTX using
// predicted times and compares with the measured-time oracle. As in Figure18,
// model fitting and the per-(network, GPU) queries run concurrently.
func Figure19(l *Lab) (*Figure19Result, error) {
	kws, err := fitSchedModels(l)
	if err != nil {
		return nil, err
	}
	meas, err := l.Sweep(figure19Nets, schedGPUs(), []int{TrainBatch})
	if err != nil {
		return nil, err
	}
	preds, err := predictSchedTimes(l, kws, figure19Nets)
	if err != nil {
		return nil, err
	}

	pred := sched.Times{}
	actual := sched.Times{}
	for _, g := range schedGPUs() {
		pred[g.Name] = make([]float64, len(figure19Nets))
		actual[g.Name] = make([]float64, len(figure19Nets))
	}
	for i, name := range figure19Nets {
		for j, g := range schedGPUs() {
			pred[g.Name][i] = float64(preds[i][j])
			for _, r := range meas.Networks {
				if r.Network == name && r.GPU == g.Name && r.BatchSize == TrainBatch {
					actual[g.Name][i] = float64(r.E2ESeconds)
				}
			}
		}
	}

	// Auto takes the exhaustive search here (9 tasks × 2 GPUs is well within
	// the brute-force limits) and would degrade to Greedy on a larger queue
	// instead of failing.
	plan, _, err := sched.Auto(pred, len(figure19Nets))
	if err != nil {
		return nil, err
	}
	achieved, err := sched.MakespanOf(plan.GPUOf, actual)
	if err != nil {
		return nil, err
	}
	oracle, _, err := sched.Auto(actual, len(figure19Nets))
	if err != nil {
		return nil, err
	}
	const tol = 1.005 // measured-time ties within 0.5 % count as matching
	return &Figure19Result{
		Networks:          figure19Nets,
		Assignment:        plan,
		PredictedMakespan: plan.Makespan,
		AchievedMakespan:  achieved,
		OracleMakespan:    oracle.Makespan,
		MatchesOracle:     achieved <= oracle.Makespan*tol,
	}, nil
}

// Render implements the result-rendering convention.
func (r *Figure19Result) Render() string {
	rows := [][]string{{"network", "assigned GPU"}}
	for i, n := range r.Networks {
		rows = append(rows, []string{n, r.Assignment.GPUOf[i]})
	}
	rows = append(rows,
		[]string{"predicted makespan", fmt.Sprintf("%.1f ms", r.PredictedMakespan*1e3)},
		[]string{"achieved makespan (measured)", fmt.Sprintf("%.1f ms", r.AchievedMakespan*1e3)},
		[]string{"oracle makespan", fmt.Sprintf("%.1f ms", r.OracleMakespan*1e3)},
		[]string{"matches oracle", fmt.Sprintf("%t", r.MatchesOracle)})
	return renderTable("Figure 19: scheduling a queue of networks on A40 + TITAN RTX with predicted times", rows)
}
