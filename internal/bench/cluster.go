package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// Cluster-scale scheduling: the case-study-3 pattern ("models as a fast
// oracle inside a search loop") taken from the paper's 9 tasks × 2 GPUs to
// a heterogeneous fleet and queues of up to 10⁶ tasks. The time table is
// built with one PredictSweep per (model, network) over the queue's unique
// batch sizes (core.TaskTimes), and the schedule comes from sched.Schedule
// — LPT-lookahead construction plus multi-start annealed local search with
// a certified optimality gap.

// clusterFleet is the 8-GPU heterogeneous fleet: four measured devices plus
// four bandwidth-modified hypotheticals resolved through the interpolated
// base model — the procurement-style mix only a prediction-backed scheduler
// can plan for, since half the fleet cannot be benchmarked.
func clusterFleet() []gpu.Spec {
	return []gpu.Spec{
		gpu.A100, gpu.A40, gpu.GTX1080Ti, gpu.V100,
		gpu.A100.WithBandwidth(1200),
		gpu.A40.WithBandwidth(500),
		gpu.V100.WithBandwidth(1100),
		gpu.GTX1080Ti.WithBandwidth(300),
	}
}

// clusterNets is the queue's network mix — the paper's nine-network
// scheduling queue.
func clusterNets() []string { return figure19Nets }

// clusterBatches is the batch-size palette tasks draw from: the few unique
// (network, batch) combinations are what keeps table construction at one
// sweep per pair regardless of queue length.
var clusterBatches = []int{1, 4, 16, 64, 256}

// FleetOracle resolves the step-time oracle inputs for fleet simulation:
// the 8-GPU cluster fleet's prediction models (the interpolated base fit
// on the DSE training GPUs, resolved per spec — half the fleet is
// hypothetical and cannot be benchmarked) and the nine-network serving
// mix. The caller compiles them into a step table (fleetsim.BuildStepTable)
// over whatever batch range its simulation needs.
func FleetOracle(l *Lab) ([]core.SweepPredictor, []*dnn.Network, error) {
	ds, err := l.Dataset(dseTrainGPUs()...)
	if err != nil {
		return nil, nil, err
	}
	base, err := core.FitIGKWBase(ds, dseTrainGPUs(), TrainBatch)
	if err != nil {
		return nil, nil, err
	}
	fleet := clusterFleet()
	models := make([]core.SweepPredictor, len(fleet))
	for i, spec := range fleet {
		m, err := base.Resolve(spec)
		if err != nil {
			return nil, nil, err
		}
		models[i] = m
	}
	names := clusterNets()
	nets := make([]*dnn.Network, len(names))
	for i, name := range names {
		if nets[i], err = l.Network(name); err != nil {
			return nil, nil, err
		}
	}
	return models, nets, nil
}

// ClusterScheduleResult is one cluster-scale scheduling run.
type ClusterScheduleResult struct {
	Tasks    int      `json:"tasks"`
	Fleet    []string `json:"fleet"`
	Networks []string `json:"networks"`
	Seed     int64    `json:"seed"`
	// Makespan/LowerBound in seconds; Gap = (Makespan−LB)/LB.
	Makespan   float64 `json:"makespan_s"`
	LowerBound float64 `json:"lower_bound_s"`
	Gap        float64 `json:"gap"`
	// TableSeconds/SearchSeconds split the pipeline wall time between
	// building the prediction table and searching over it; TasksPerSec is
	// Tasks over the total.
	TableSeconds  float64 `json:"table_s"`
	SearchSeconds float64 `json:"search_s"`
	TasksPerSec   float64 `json:"tasks_per_sec"`
	// Search effort, summed over restarts.
	MovesTried  int64 `json:"moves_tried"`
	SwapsTried  int64 `json:"swaps_tried"`
	BestRestart int   `json:"best_restart"`
	// Load[g] is GPU g's assigned seconds under the returned schedule.
	Load map[string]float64 `json:"load_s"`
}

// ClusterSchedule predicts a time table for a seeded synthetic queue of
// nTasks (network, batch) jobs over the 8-GPU fleet and schedules it. The
// same (lab, nTasks, seed) always produces the same schedule.
func ClusterSchedule(l *Lab, nTasks int, seed int64) (*ClusterScheduleResult, error) {
	if nTasks <= 0 {
		return nil, fmt.Errorf("bench: cluster schedule needs a positive task count, got %d", nTasks)
	}
	ds, err := l.Dataset(dseTrainGPUs()...)
	if err != nil {
		return nil, err
	}
	base, err := core.FitIGKWBase(ds, dseTrainGPUs(), TrainBatch)
	if err != nil {
		return nil, err
	}
	fleet := clusterFleet()
	models := make([]core.SweepPredictor, len(fleet))
	for i, spec := range fleet {
		m, err := base.Resolve(spec)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	names := clusterNets()
	nets := make([]*dnn.Network, len(names))
	for i, name := range names {
		nets[i], err = l.Network(name)
		if err != nil {
			return nil, err
		}
	}

	// Seeded task sampling: a splitmix-style walk over (network, batch)
	// pairs, deterministic in the seed alone.
	taskNet := make([]int, nTasks)
	taskBatch := make([]int, nTasks)
	state := uint64(seed)
	for i := range taskNet {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		taskNet[i] = int(z % uint64(len(nets)))
		taskBatch[i] = clusterBatches[(z>>32)%uint64(len(clusterBatches))]
	}

	tableStart := time.Now()
	gpus, table, err := core.TaskTimes(models, nets, taskNet, taskBatch)
	if err != nil {
		return nil, err
	}
	dt, err := sched.NewDenseTimes(gpus, nTasks)
	if err != nil {
		return nil, err
	}
	for g := range gpus {
		copy(dt.Row(g), table[g*nTasks:(g+1)*nTasks])
	}
	tableSecs := time.Since(tableStart).Seconds()

	searchStart := time.Now()
	// Model-driven instances are more structured than Synthetic ones (45
	// distinct task durations, a strictly dominant fastest GPU), and the
	// size-scaled default move budget under-converges on them below ~10⁵
	// tasks. Pin the budget to the large-instance level instead; it is the
	// default anyway once nTasks reaches 10⁶.
	opt := sched.SearchOptions{Seed: seed, Moves: 2_000_000}
	res, err := sched.Schedule(dt, opt)
	if err != nil {
		return nil, err
	}
	searchSecs := time.Since(searchStart).Seconds()

	out := &ClusterScheduleResult{
		Tasks: nTasks, Fleet: gpus, Networks: names, Seed: seed,
		Makespan: res.Makespan, LowerBound: res.LowerBound, Gap: res.Gap,
		TableSeconds: tableSecs, SearchSeconds: searchSecs,
		TasksPerSec: float64(nTasks) / (tableSecs + searchSecs),
		MovesTried:  res.MovesTried, SwapsTried: res.SwapsTried,
		BestRestart: res.BestRestart,
		Load:        res.Dense.Assignment(dt).Load,
	}
	return out, nil
}

// Render implements the result-rendering convention.
func (r *ClusterScheduleResult) Render() string {
	rows := [][]string{{"GPU", "assigned load (s)"}}
	for _, name := range r.Fleet {
		rows = append(rows, []string{name, fmt.Sprintf("%.3f", r.Load[name])})
	}
	rows = append(rows,
		[]string{"tasks", fmt.Sprintf("%d", r.Tasks)},
		[]string{"makespan", fmt.Sprintf("%.3f s", r.Makespan)},
		[]string{"lower bound", fmt.Sprintf("%.3f s", r.LowerBound)},
		[]string{"optimality gap", fmt.Sprintf("%.2f %%", 100*r.Gap)},
		[]string{"table build", fmt.Sprintf("%.2f s", r.TableSeconds)},
		[]string{"search", fmt.Sprintf("%.2f s", r.SearchSeconds)},
		[]string{"throughput", fmt.Sprintf("%.0f tasks/s", r.TasksPerSec)})
	return renderTable(fmt.Sprintf("Cluster-scale scheduling: %d tasks across the %d-GPU fleet (seed %d)",
		r.Tasks, len(r.Fleet), r.Seed), rows)
}
