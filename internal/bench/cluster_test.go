package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestClusterSchedule(t *testing.T) {
	l := quickLab(t)
	r, err := ClusterSchedule(l, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fleet) != 8 {
		t.Fatalf("fleet = %v", r.Fleet)
	}
	if r.LowerBound <= 0 || r.Makespan < r.LowerBound {
		t.Fatalf("makespan %v vs lower bound %v", r.Makespan, r.LowerBound)
	}
	if r.Gap > 0.10 {
		t.Fatalf("gap %.2f%% above the 10%% acceptance budget", 100*r.Gap)
	}
	var total float64
	for _, name := range r.Fleet {
		load, ok := r.Load[name]
		if !ok {
			t.Fatalf("no load entry for %s", name)
		}
		if load > r.Makespan+1e-9 {
			t.Fatalf("%s load %v exceeds makespan %v", name, load, r.Makespan)
		}
		total += load
	}
	if total <= 0 {
		t.Fatal("fleet carries no load")
	}

	// Determinism: the same (lab, tasks, seed) reproduces the schedule.
	r2, err := ClusterSchedule(l, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Makespan != r.Makespan || r2.LowerBound != r.LowerBound || r2.BestRestart != r.BestRestart {
		t.Fatalf("rerun diverged: %+v vs %+v", r2, r)
	}

	// The rendered table and JSON form both carry the headline numbers.
	out := r.Render()
	for _, want := range []string{"Cluster-scale scheduling", "optimality gap", "A100@1200GBps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"makespan_s", "lower_bound_s", "gap", "tasks_per_sec", "load_s"} {
		if !strings.Contains(string(blob), key) {
			t.Fatalf("JSON missing %q: %s", key, blob)
		}
	}
}

func TestClusterScheduleValidation(t *testing.T) {
	if _, err := ClusterSchedule(quickLab(t), 0, 1); err == nil {
		t.Fatal("zero tasks should error")
	}
}
