package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/gpu"
	"repro/internal/obs"
)

// Export writes the data series behind the data-rich figures as CSV files,
// so the curves can be re-plotted with external tooling (the paper's
// artifact ships its figure data the same way). One file per figure:
//
//	fig3_points.csv      network, gflops, exec_ms
//	fig11_ratios.csv     network, predicted_ms, measured_ms, ratio   (E2E)
//	fig12_ratios.csv     …                                            (LW)
//	fig13_ratios.csv     …                                            (KW)
//	fig14_ratios.csv     …                                            (IGKW)
//	fig15_curve.csv      bandwidth_gbps, predicted_ms (ResNet-50 DSE)
//	fig16_curve.csv      bandwidth_gbps, predicted_ms (DenseNet-169 DSE)
//	fig17_speedups.csv   network, link_gbps, speedup
func Export(l *Lab, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bench: export: %w", err)
	}

	sp := obs.StartSpan("export fig3")
	f3, err := Figure3(l, gpu.A100)
	sp.End()
	if err != nil {
		return err
	}
	rows := [][]string{{"network", "gflops", "exec_ms"}}
	for _, p := range f3.Points {
		rows = append(rows, []string{p.Network, ftoa(p.X), ftoa(p.Y)})
	}
	if err := writeRows(filepath.Join(dir, "fig3_points.csv"), rows); err != nil {
		return err
	}

	curves := []struct {
		file string
		get  func() (SCurve, error)
	}{
		{"fig11_ratios.csv", func() (SCurve, error) {
			r, err := Figure11(l, gpu.A100)
			if err != nil {
				return SCurve{}, err
			}
			return r.Curve, nil
		}},
		{"fig12_ratios.csv", func() (SCurve, error) {
			r, err := Figure12(l, gpu.A100)
			if err != nil {
				return SCurve{}, err
			}
			return r.Curve, nil
		}},
		{"fig13_ratios.csv", func() (SCurve, error) {
			r, err := Figure13(l, gpu.A100)
			if err != nil {
				return SCurve{}, err
			}
			return r.Curve, nil
		}},
		{"fig14_ratios.csv", func() (SCurve, error) {
			r, err := Figure14(l)
			if err != nil {
				return SCurve{}, err
			}
			return r.Curve, nil
		}},
	}
	for _, c := range curves {
		sp := obs.StartSpan("export " + c.file)
		curve, err := c.get()
		sp.End()
		if err != nil {
			return err
		}
		rows := [][]string{{"network", "predicted_ms", "measured_ms", "ratio"}}
		for _, e := range curve.Evals {
			rows = append(rows, []string{e.Network,
				ftoa(float64(e.Predicted) * 1e3), ftoa(float64(e.Measured) * 1e3), ftoa(e.Ratio())})
		}
		if err := writeRows(filepath.Join(dir, c.file), rows); err != nil {
			return err
		}
	}

	for _, dse := range []struct {
		file string
		get  func(*Lab) (*BandwidthDSEResult, error)
	}{
		{"fig15_curve.csv", Figure15},
		{"fig16_curve.csv", Figure16},
	} {
		sp := obs.StartSpan("export " + dse.file)
		r, err := dse.get(l)
		sp.End()
		if err != nil {
			return err
		}
		rows := [][]string{{"bandwidth_gbps", "predicted_ms"}}
		for _, p := range r.Points {
			rows = append(rows, []string{ftoa(p.BandwidthGBps), ftoa(p.PredictedMs)})
		}
		if err := writeRows(filepath.Join(dir, dse.file), rows); err != nil {
			return err
		}
	}

	sp = obs.StartSpan("export fig17_speedups.csv")
	f17, err := Figure17(l)
	sp.End()
	if err != nil {
		return err
	}
	rows = [][]string{{"network", "link_gbps", "speedup"}}
	for _, s := range f17.Series {
		for i, sp := range s.Speedups {
			rows = append(rows, []string{s.Network,
				ftoa(figure17Bandwidths[i]), ftoa(sp)})
		}
	}
	return writeRows(filepath.Join(dir, "fig17_speedups.csv"), rows)
}

// ftoa renders a float compactly for CSV.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// writeRows writes a CSV file.
func writeRows(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: export: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return fmt.Errorf("bench: export %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("bench: export %s: %w", path, err)
	}
	return f.Close()
}
