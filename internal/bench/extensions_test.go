package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gpu"
)

// osStat returns the size of dir/name.
func osStat(dir, name string) (int64, error) {
	info, err := os.Stat(filepath.Join(dir, name))
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func TestAblation(t *testing.T) {
	r, err := Ablation(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d variants", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
		if row.MeanError <= 0 {
			t.Fatalf("%s: error %v", row.Variant, row.MeanError)
		}
	}
	full := r.Rows[0]
	if !strings.HasPrefix(full.Variant, "full KW") {
		t.Fatalf("first row = %q", full.Variant)
	}
	// The classification step is the load-bearing design choice: every
	// forced-single-driver variant must be clearly worse than the full
	// design.
	for _, row := range r.Rows {
		if strings.Contains(row.Variant, "no classification") &&
			row.MeanError < 2*full.MeanError {
			t.Fatalf("%s (%.3f) not clearly worse than full (%.3f)",
				row.Variant, row.MeanError, full.MeanError)
		}
	}
	// Ungrouped models: more regressions, similar error.
	ungrouped := byName["no grouping (one model per kernel)"]
	if ungrouped.Models <= full.Models {
		t.Fatalf("ungrouped should keep more models: %d vs %d", ungrouped.Models, full.Models)
	}
	if ungrouped.MeanError > 3*full.MeanError {
		t.Fatalf("ungrouped error implausibly bad: %.3f", ungrouped.MeanError)
	}
}

func TestTrainingExtension(t *testing.T) {
	r, err := TrainingExtension(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	// The KW methodology extends to training steps with error in the same
	// regime as inference.
	if r.Curve.MeanError > 0.15 {
		t.Fatalf("training-mode KW error = %v", r.Curve.MeanError)
	}
	// A training step costs roughly forward + dgrad + wgrad + updates.
	if r.StepOverFwd < 1.8 || r.StepOverFwd > 4.5 {
		t.Fatalf("step/forward ratio = %v", r.StepOverFwd)
	}
	// The kernel vocabulary roughly doubles with the backward variants.
	if r.KernelCount < 60 {
		t.Fatalf("training kernel vocabulary = %d", r.KernelCount)
	}
	if r.ModelCount >= r.KernelCount {
		t.Fatal("grouping should still compress the training vocabulary")
	}
}

func TestMIGExtension(t *testing.T) {
	r, err := MIGExtension(quickLab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(migNets)*4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, net := range migNets {
		if r.BestProfile[net] == "" {
			t.Fatalf("no best slicing for %s", net)
		}
	}
	for _, row := range r.Rows {
		if row.BestBatch == 0 {
			continue // OOM on this slice is a legitimate outcome
		}
		if row.Throughput <= 0 || row.LatencyMs <= 0 {
			t.Fatalf("%s/%s: throughput %v latency %v",
				row.Network, row.Profile, row.Throughput, row.LatencyMs)
		}
		// Smaller slices must never allow larger per-instance batches than
		// memory permits; implied by BestBatch>0 checks plus monotone
		// latency: a slice with 1/7 of the bandwidth cannot be faster than
		// the whole GPU at the same batch.
	}
	// The whole-GPU slice must fit the largest batch for every network.
	for _, row := range r.Rows {
		if row.Profile == "7g.40gb" && row.BestBatch == 0 {
			t.Fatalf("%s does not fit the whole A100", row.Network)
		}
	}
}

func TestSmallBatchExperiment(t *testing.T) {
	r, err := SmallBatch(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("%d batch sizes", len(r.Rows))
	}
	// Errors grow as the batch shrinks away from the training point…
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.BatchSize >= last.BatchSize {
		t.Fatal("rows not sorted by batch")
	}
	if first.RawError <= last.RawError {
		t.Fatalf("raw KW should degrade at small batch: %v vs %v", first.RawError, last.RawError)
	}
	// …and the learned correction recovers a large part of the loss.
	if first.CorrectedError >= first.RawError*0.7 {
		t.Fatalf("correction too weak at batch %d: %.3f vs %.3f",
			first.BatchSize, first.CorrectedError, first.RawError)
	}
}

func TestUncertainty(t *testing.T) {
	r, err := Uncertainty(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Networks < 5 {
		t.Fatalf("only %d networks", r.Networks)
	}
	// ±2σ should cover most held-out kernel totals without being vacuous.
	if r.Coverage < 0.6 {
		t.Fatalf("coverage = %v", r.Coverage)
	}
	if r.MeanRelMargin <= 0 || r.MeanRelMargin > 2 {
		t.Fatalf("mean relative margin = %v", r.MeanRelMargin)
	}
}

func TestExport(t *testing.T) {
	dir := t.TempDir()
	if err := Export(quickLab(t), dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig3_points.csv", "fig11_ratios.csv", "fig12_ratios.csv",
		"fig13_ratios.csv", "fig14_ratios.csv", "fig15_curve.csv", "fig16_curve.csv",
		"fig17_speedups.csv"} {
		info, err := osStat(dir, f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if info <= 40 {
			t.Fatalf("%s: suspiciously small (%d bytes)", f, info)
		}
	}
}

func TestRobustness(t *testing.T) {
	r, err := Robustness(quickLab(t), gpu.A100, []int64{0, 7, 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.KW) != 3 {
		t.Fatalf("%d universes", len(r.KW))
	}
	// The reproduction's central claim must not be a seed artifact.
	if !r.OrderingHolds {
		t.Fatalf("model ordering broke in some universe: E2E=%v LW=%v KW=%v",
			r.E2E, r.LW, r.KW)
	}
	for i, kw := range r.KW {
		if kw > 0.12 {
			t.Fatalf("seed %d: KW error %v outside the paper's regime", r.Seeds[i], kw)
		}
	}
}

func TestOnlineLearning(t *testing.T) {
	r, err := OnlineLearning(quickLab(t), gpu.A100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) < 3 {
		t.Fatalf("%d steps", len(r.Steps))
	}
	first, last := r.Steps[0], r.Steps[len(r.Steps)-1]
	// Streaming deployment measurements must improve the deployed model.
	if last.KWError >= first.KWError {
		t.Fatalf("online learning did not improve: %.3f → %.3f", first.KWError, last.KWError)
	}
	if last.KWError > 0.12 {
		t.Fatalf("converged error %.3f outside the KW regime", last.KWError)
	}
	// The model keeps growing as unseen kernels appear in the stream.
	if last.Kernels < first.Kernels {
		t.Fatalf("kernel count shrank: %d → %d", first.Kernels, last.Kernels)
	}
	if last.ObservedNetworks <= first.ObservedNetworks {
		t.Fatal("streaming did not advance")
	}
}
