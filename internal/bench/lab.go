// Package bench is the experiment harness: one generator per table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index).
// Each generator returns a typed result with the same rows/series the paper
// reports and a Render method producing a human-readable text table.
//
// A Lab owns the shared expensive state — the network zoo and the collected
// datasets — so several experiments reuse one collection pass. All results
// are deterministic for a given Lab configuration.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/zoo"
)

// Observability handles for the experiment harness.
var (
	metricDatasetBuild = obs.Default().Histogram("bench_dataset_build_seconds",
		"Latency of one per-GPU dataset collection pass.", nil)
	metricDatasetBuilds = obs.Default().Counter("bench_dataset_builds_total",
		"Per-GPU dataset collection passes completed.")
)

// TrainBatch is the fully-utilizing batch size every model trains at (§5.2).
const TrainBatch = 512

// TestFraction is the held-out network fraction (§3: "randomly selected 15%").
const TestFraction = 0.15

// SplitSeed fixes the train/test partition across experiments.
const SplitSeed = 2023

// MainGPUs are the devices of the model-accuracy experiments (§5.4 reports
// KW errors on A40, A100, 1080 Ti, TITAN RTX and V100).
func MainGPUs() []gpu.Spec {
	return []gpu.Spec{gpu.A100, gpu.A40, gpu.GTX1080Ti, gpu.TitanRTX, gpu.V100}
}

// Lab bundles the zoo and cached datasets for the experiment generators.
type Lab struct {
	nets   []*dnn.Network
	byName map[string]*dnn.Network

	batches int // measured batches per point
	warmup  int

	mu    sync.Mutex
	cache map[string]*labBuild // per-GPU collection flights

	builds atomic.Int64 // completed collection passes, for tests/telemetry
}

// labBuild is one per-GPU collection flight. The entry is installed in the
// cache before the build starts, so concurrent requesters share a single
// collection pass via once instead of racing to build duplicates.
type labBuild struct {
	once sync.Once
	ds   *dataset.Dataset
	err  error
}

// NewLab builds the full-fidelity lab: the complete 646-network zoo and the
// paper's 30-measured-batch protocol. Collection for all five main GPUs
// takes tens of seconds.
func NewLab() *Lab { return newLab(zoo.Full(), 30, 20) }

// NewQuickLab builds a reduced lab for tests: a diverse 1-in-6 sample of the
// zoo and fewer measured batches. Error magnitudes shift slightly but every
// qualitative result is preserved.
func NewQuickLab() *Lab {
	full := zoo.Full()
	var sub []*dnn.Network
	for i := 0; i < len(full); i += 6 {
		sub = append(sub, full[i])
	}
	return newLab(sub, 8, 2)
}

func newLab(nets []*dnn.Network, batches, warmup int) *Lab {
	l := &Lab{
		nets:    nets,
		byName:  make(map[string]*dnn.Network, len(nets)),
		batches: batches,
		warmup:  warmup,
		cache:   map[string]*labBuild{},
	}
	for _, n := range nets {
		l.byName[n.Name] = n
	}
	return l
}

// Networks returns the lab's zoo.
func (l *Lab) Networks() []*dnn.Network { return l.nets }

// Network resolves a zoo network by name, falling back to the standard
// models for names outside the lab's sample.
func (l *Lab) Network(name string) (*dnn.Network, error) {
	if n, ok := l.byName[name]; ok {
		return n, nil
	}
	return zoo.ByName(name)
}

// Dataset returns (building and caching on first use) the detail dataset of
// the given GPUs: end-to-end records at batch sizes {4, 64, 512} and
// layer/kernel detail at the training batch size. Uncached GPUs are collected
// in parallel with bounded workers; each GPU's collection runs at most once
// across all concurrent callers. The merged result is ordered by the gpus
// argument, so concurrent use is fully deterministic.
func (l *Lab) Dataset(gpus ...gpu.Spec) (*dataset.Dataset, error) {
	results := make([]*dataset.Dataset, len(gpus))
	errs := make([]error, len(gpus))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(gpus) {
		workers = len(gpus)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, g := range gpus {
		wg.Add(1)
		go func(i int, g gpu.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = l.gpuDataset(g)
		}(i, g)
	}
	wg.Wait()

	out := &dataset.Dataset{}
	for i := range gpus {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out.Merge(results[i])
	}
	return out, nil
}

// gpuDataset builds or fetches the cached per-GPU dataset. Concurrent callers
// for the same GPU join one in-flight build rather than duplicating the
// collection pass.
func (l *Lab) gpuDataset(g gpu.Spec) (*dataset.Dataset, error) {
	l.mu.Lock()
	b, ok := l.cache[g.Name]
	if !ok {
		b = &labBuild{}
		l.cache[g.Name] = b
	}
	l.mu.Unlock()

	b.once.Do(func() {
		tm := obs.StartTimer(metricDatasetBuild)
		defer tm.Stop()
		sp := obs.StartSpan("dataset-build " + g.Name)
		sp.SetArg("networks", fmt.Sprint(len(l.nets)))
		defer sp.End()
		opt := dataset.DefaultBuildOptions()
		opt.Batches = l.batches
		opt.Warmup = l.warmup
		built, _, err := dataset.Build(l.nets, []gpu.Spec{g}, opt)
		if err != nil {
			b.err = fmt.Errorf("bench: collecting %s dataset: %w", g.Name, err)
			return
		}
		built.Clean()
		b.ds = built
		l.builds.Add(1)
		metricDatasetBuilds.Inc()
	})
	return b.ds, b.err
}

// BuildCount reports how many per-GPU collection passes have completed — in
// tests, the proof that concurrent Dataset calls share builds instead of
// duplicating them.
func (l *Lab) BuildCount() int64 { return l.builds.Load() }

// Sweep collects an ad-hoc dataset: the named networks on the given GPUs at
// the given batch sizes (end-to-end detail at each batch size).
func (l *Lab) Sweep(names []string, gpus []gpu.Spec, batchSizes []int) (*dataset.Dataset, error) {
	nets := make([]*dnn.Network, 0, len(names))
	for _, name := range names {
		n, err := l.Network(name)
		if err != nil {
			return nil, err
		}
		nets = append(nets, n)
	}
	opt := dataset.DefaultBuildOptions()
	opt.Batches = l.batches
	opt.Warmup = l.warmup
	opt.E2EBatchSizes = batchSizes
	opt.DetailBatchSize = batchSizes[len(batchSizes)-1]
	ds, _, err := dataset.Build(nets, gpus, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: sweep collection: %w", err)
	}
	return ds, nil
}

// Split returns the lab's canonical train/test partition of a dataset.
func (l *Lab) Split(ds *dataset.Dataset) (train, test *dataset.Dataset) {
	return ds.SplitByNetwork(TestFraction, SplitSeed)
}

// renderTable lays out rows with tabwriter; the first row is the header.
func renderTable(title string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	for i, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
		if i == 0 {
			sep := make([]string, len(r))
			for j, c := range r {
				sep[j] = strings.Repeat("-", len(c))
			}
			fmt.Fprintln(w, strings.Join(sep, "\t"))
		}
	}
	w.Flush()
	return b.String()
}
