// Package bench is the experiment harness: one generator per table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index).
// Each generator returns a typed result with the same rows/series the paper
// reports and a Render method producing a human-readable text table.
//
// A Lab owns the shared expensive state — the network zoo and the collected
// datasets — so several experiments reuse one collection pass. All results
// are deterministic for a given Lab configuration.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/zoo"
)

// Observability handles for the experiment harness.
var (
	metricDatasetBuild = obs.Default().Histogram("bench_dataset_build_seconds",
		"Latency of one per-GPU dataset collection pass.", nil)
	metricDatasetBuilds = obs.Default().Counter("bench_dataset_builds_total",
		"Per-GPU dataset collection passes completed.")
)

// TrainBatch is the fully-utilizing batch size every model trains at (§5.2).
const TrainBatch = 512

// TestFraction is the held-out network fraction (§3: "randomly selected 15%").
const TestFraction = 0.15

// SplitSeed fixes the train/test partition across experiments.
const SplitSeed = 2023

// MainGPUs are the devices of the model-accuracy experiments (§5.4 reports
// KW errors on A40, A100, 1080 Ti, TITAN RTX and V100).
func MainGPUs() []gpu.Spec {
	return []gpu.Spec{gpu.A100, gpu.A40, gpu.GTX1080Ti, gpu.TitanRTX, gpu.V100}
}

// Lab bundles the zoo and cached datasets for the experiment generators.
type Lab struct {
	nets   []*dnn.Network
	byName map[string]*dnn.Network

	batches int // measured batches per point
	warmup  int

	mu    sync.Mutex
	cache map[string]*labBuild // per-GPU collection flights

	builds atomic.Int64 // completed collection passes, for tests/telemetry
}

// labBuild is one per-GPU collection flight. The entry is installed in the
// cache before the build starts, so concurrent requesters share a single
// collection pass — they wait on done instead of racing to build duplicates.
type labBuild struct {
	done chan struct{}
	ds   *dataset.Dataset
	err  error
}

// NewLab builds the full-fidelity lab: the complete 646-network zoo and the
// paper's 30-measured-batch protocol. Collection for all five main GPUs
// takes tens of seconds.
func NewLab() *Lab { return newLab(zoo.Full(), 30, 20) }

// NewQuickLab builds a reduced lab for tests: a diverse 1-in-6 sample of the
// zoo and fewer measured batches. Error magnitudes shift slightly but every
// qualitative result is preserved.
func NewQuickLab() *Lab {
	// Construct only the sampled networks: FullBuilders()[i]() builds exactly
	// zoo.Full()[i], so the subset is unchanged while five sixths of the zoo
	// is never materialized.
	builders := zoo.FullBuilders()
	sub := make([]*dnn.Network, 0, (len(builders)+5)/6)
	for i := 0; i < len(builders); i += 6 {
		sub = append(sub, builders[i]())
	}
	return newLab(sub, 8, 2)
}

func newLab(nets []*dnn.Network, batches, warmup int) *Lab {
	l := &Lab{
		nets:    nets,
		byName:  make(map[string]*dnn.Network, len(nets)),
		batches: batches,
		warmup:  warmup,
		cache:   map[string]*labBuild{},
	}
	for _, n := range nets {
		l.byName[n.Name] = n
	}
	return l
}

// Networks returns the lab's zoo.
func (l *Lab) Networks() []*dnn.Network { return l.nets }

// Network resolves a zoo network by name, falling back to the standard
// models for names outside the lab's sample.
func (l *Lab) Network(name string) (*dnn.Network, error) {
	if n, ok := l.byName[name]; ok {
		return n, nil
	}
	return zoo.ByName(name)
}

// Dataset returns (building and caching on first use) the detail dataset of
// the given GPUs: end-to-end records at batch sizes {4, 64, 512} and
// layer/kernel detail at the training batch size. All uncached GPUs are
// collected in ONE dataset.Build pass — the batch-outer collection loop then
// prepares each (network, batch size) once and replays it across every
// device, and the worker budget is a single flat pool instead of per-GPU
// goroutines each spawning GOMAXPROCS collection workers (formerly up to P²
// goroutines). Each GPU's collection still runs at most once across all
// concurrent callers. The merged result is ordered by the gpus argument, so
// concurrent use is fully deterministic.
func (l *Lab) Dataset(gpus ...gpu.Spec) (*dataset.Dataset, error) {
	// Claim flights for uncached GPUs under the lock; build the claimed ones
	// together, then wait for every flight (ours or another caller's).
	l.mu.Lock()
	flights := make([]*labBuild, len(gpus))
	var ownFlights []*labBuild
	var ownGPUs []gpu.Spec
	for i, g := range gpus {
		b, ok := l.cache[g.Name]
		if !ok {
			b = &labBuild{done: make(chan struct{})}
			l.cache[g.Name] = b
			ownFlights = append(ownFlights, b)
			ownGPUs = append(ownGPUs, g)
		}
		flights[i] = b
	}
	l.mu.Unlock()

	if len(ownGPUs) > 0 {
		l.buildGPUs(ownGPUs, ownFlights)
	}

	nNet, nLay, nKer := 0, 0, 0
	for i := range flights {
		<-flights[i].done
		if flights[i].err != nil {
			return nil, flights[i].err
		}
		nNet += len(flights[i].ds.Networks)
		nLay += len(flights[i].ds.Layers)
		nKer += len(flights[i].ds.Kernels)
	}
	out := &dataset.Dataset{}
	out.Grow(nNet, nLay, nKer)
	for i := range flights {
		out.Merge(flights[i].ds)
	}
	return out, nil
}

// buildGPUs runs one combined collection pass for the claimed GPUs and
// resolves their flights. Per-GPU results are split out of the combined
// dataset, so they are byte-identical to what a standalone per-GPU Build
// would have produced (profiling is deterministic per (network, GPU, batch)).
func (l *Lab) buildGPUs(gpus []gpu.Spec, flights []*labBuild) {
	tm := obs.StartTimer(metricDatasetBuild)
	defer tm.Stop()
	names := make([]string, len(gpus))
	for i, g := range gpus {
		names[i] = g.Name
	}
	sp := obs.StartSpan("dataset-build " + strings.Join(names, "+"))
	sp.SetArg("networks", fmt.Sprint(len(l.nets)))
	defer sp.End()

	opt := dataset.DefaultBuildOptions()
	opt.Batches = l.batches
	opt.Warmup = l.warmup
	// Deduplicate inside the collection workers: byte-identical to a serial
	// Clean of each per-GPU part (duplicates never span networks or GPUs),
	// minus the whole-dataset rescan.
	opt.Dedup = true
	parts, _, err := dataset.BuildPerGPU(l.nets, gpus, opt)
	for i, g := range gpus {
		b := flights[i]
		if err != nil {
			b.err = fmt.Errorf("bench: collecting %s dataset: %w", g.Name, err)
		} else {
			b.ds = parts[i]
			l.builds.Add(1)
			metricDatasetBuilds.Inc()
		}
		close(b.done)
	}
}

// BuildCount reports how many per-GPU collection passes have completed — in
// tests, the proof that concurrent Dataset calls share builds instead of
// duplicating them.
func (l *Lab) BuildCount() int64 { return l.builds.Load() }

// Sweep collects an ad-hoc dataset: the named networks on the given GPUs at
// the given batch sizes (end-to-end detail at each batch size).
func (l *Lab) Sweep(names []string, gpus []gpu.Spec, batchSizes []int) (*dataset.Dataset, error) {
	nets := make([]*dnn.Network, 0, len(names))
	for _, name := range names {
		n, err := l.Network(name)
		if err != nil {
			return nil, err
		}
		nets = append(nets, n)
	}
	opt := dataset.DefaultBuildOptions()
	opt.Batches = l.batches
	opt.Warmup = l.warmup
	opt.E2EBatchSizes = batchSizes
	opt.DetailBatchSize = batchSizes[len(batchSizes)-1]
	ds, _, err := dataset.Build(nets, gpus, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: sweep collection: %w", err)
	}
	return ds, nil
}

// Split returns the lab's canonical train/test partition of a dataset.
func (l *Lab) Split(ds *dataset.Dataset) (train, test *dataset.Dataset) {
	return ds.SplitByNetwork(TestFraction, SplitSeed)
}

// renderTable lays out rows with tabwriter; the first row is the header.
func renderTable(title string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	for i, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
		if i == 0 {
			sep := make([]string, len(r))
			for j, c := range r {
				sep[j] = strings.Repeat("-", len(c))
			}
			fmt.Fprintln(w, strings.Join(sep, "\t"))
		}
	}
	w.Flush()
	return b.String()
}
