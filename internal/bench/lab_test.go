package bench

import (
	"sync"
	"testing"

	"repro/internal/gpu"
)

// TestDatasetConcurrentSingleBuild hammers Dataset and Sweep from eight
// goroutines (run under -race in CI) and asserts every GPU's collection pass
// ran exactly once — the check-then-act race the per-GPU flight cache fixes
// would build duplicates here.
func TestDatasetConcurrentSingleBuild(t *testing.T) {
	l := NewQuickLab()
	gpus := []gpu.Spec{gpu.A40, gpu.TitanRTX}

	const goroutines = 8
	var wg sync.WaitGroup
	results := make([]int, goroutines) // dataset record counts, compared below
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0: // both GPUs at once
				ds, err := l.Dataset(gpus...)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				results[g] = len(ds.Networks)
			case 1: // single GPU
				ds, err := l.Dataset(gpus[0])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				results[g] = -len(ds.Networks)
			case 2: // an independent sweep, concurrent with the builds
				ds, err := l.Sweep([]string{"resnet50"}, []gpu.Spec{gpu.A100}, []int{64})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if len(ds.Networks) == 0 {
					t.Errorf("goroutine %d: empty sweep", g)
				}
			}
		}(g)
	}
	wg.Wait()

	if got := l.BuildCount(); got != int64(len(gpus)) {
		t.Fatalf("%d collection passes for %d GPUs; concurrent callers must share builds",
			got, len(gpus))
	}
	// Every goroutine that asked the same question must have seen the same
	// dataset.
	for g := 3; g < goroutines; g++ {
		if g%3 == 2 || results[g] == 0 {
			continue
		}
		if results[g] != results[g%3] {
			t.Fatalf("goroutine %d saw %d records, goroutine %d saw %d",
				g, results[g], g%3, results[g%3])
		}
	}
}

// TestDatasetDeterministicOrder: the parallel merge must order per-GPU
// datasets by the gpus argument, not completion order.
func TestDatasetDeterministicOrder(t *testing.T) {
	l := NewQuickLab()
	a, err := l.Dataset(gpu.A40, gpu.TitanRTX)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Dataset(gpu.A40, gpu.TitanRTX)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Networks) != len(b.Networks) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Networks), len(b.Networks))
	}
	for i := range a.Networks {
		if a.Networks[i] != b.Networks[i] {
			t.Fatalf("record %d differs between identical Dataset calls:\n%+v\n%+v",
				i, a.Networks[i], b.Networks[i])
		}
	}
}

// TestFigure18RenderInvariance: rendering the scheduling case study twice —
// the second pass served entirely from cached datasets, fitted models with
// warm plan caches and the concurrent query path — must produce byte-equal
// tables, and every concurrent prediction must equal its uncached reference.
func TestFigure18RenderInvariance(t *testing.T) {
	l := quickLab(t)
	r1, err := Figure18(l)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Figure18(l)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Fatalf("renders differ:\n--- first\n%s\n--- second\n%s", r1.Render(), r2.Render())
	}

	// Cross-check the concurrent plan-served predictions against the
	// reference path, network by network.
	kws, err := fitSchedModels(l)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := predictSchedTimes(l, kws, figure18Nets)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range figure18Nets {
		net, err := l.Network(name)
		if err != nil {
			t.Fatal(err)
		}
		for j, g := range schedGPUs() {
			want, err := kws[g.Name].PredictNetworkUncached(net.Clone(), TrainBatch)
			if err != nil {
				t.Fatal(err)
			}
			if preds[i][j] != want {
				t.Fatalf("%s on %s: concurrent %v != uncached %v",
					name, g.Name, preds[i][j], want)
			}
		}
	}
}
