package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/sim"
)

// MIG extension — the paper's second future-work direction ("emerging GPU
// hardware (e.g., multi-instance GPUs)", §9). A MIG slice is a GPU that was
// never measured, defined purely by its specification — exactly the setting
// the inter-GPU model handles. The case study answers a serving question: a
// cloud vendor can carve one A100 into 1×7g, 2×3g, 3×2g or 7×1g instances;
// which slicing maximizes aggregate inference throughput for each workload?

// migBatchGrid is the per-instance batch sizes the search considers.
var migBatchGrid = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// MIGRow is one (network, slicing) design point.
type MIGRow struct {
	Network string
	Profile string
	// Instances is the concurrent instance count of the slicing.
	Instances int
	// BestBatch is the per-instance batch size maximizing throughput
	// (bounded by instance memory).
	BestBatch int
	// LatencyMs is the predicted per-batch latency at that batch size.
	LatencyMs float64
	// Throughput is the aggregate images/second across all instances.
	Throughput float64
}

// MIGResult is the slicing study for a set of networks.
type MIGResult struct {
	GPU  string
	Rows []MIGRow
	// BestProfile maps each network to its throughput-optimal slicing.
	BestProfile map[string]string
}

// migNets are the served workloads: a heavy CNN, a light CNN and a
// transformer.
var migNets = []string{"resnet50", "mobilenet_v2", "bert-base"}

// MIGExtension trains the inter-GPU base on the measured non-A100 GPUs and
// resolves it for every A100 MIG slice.
func MIGExtension(l *Lab) (*MIGResult, error) {
	trainGPUs := []gpu.Spec{gpu.A40, gpu.GTX1080Ti, gpu.TitanRTX, gpu.V100}
	ds, err := l.Dataset(trainGPUs...)
	if err != nil {
		return nil, err
	}
	base, err := core.FitIGKWBase(ds, trainGPUs, TrainBatch)
	if err != nil {
		return nil, err
	}

	res := &MIGResult{GPU: gpu.A100.Name, BestProfile: map[string]string{}}
	for _, name := range migNets {
		net, err := l.Network(name)
		if err != nil {
			return nil, err
		}
		bestThroughput := 0.0
		for _, p := range gpu.A100MIGProfiles() {
			inst := gpu.A100.Instance(p.Name, p.SMFrac, p.MemFrac)
			m, err := base.Resolve(inst)
			if err != nil {
				return nil, err
			}
			row := MIGRow{Network: name, Profile: p.Name, Instances: p.Count}
			dev := sim.NewDefault(inst) // memory check only; timing is predicted
			for _, bs := range migBatchGrid {
				if err := net.Infer(bs); err != nil {
					return nil, err
				}
				if !dev.FitsMemory(net) {
					break // larger batches will not fit either
				}
				t, err := m.PredictNetwork(net, bs)
				if err != nil {
					return nil, err
				}
				if thr := float64(p.Count) * float64(bs) / float64(t); thr > row.Throughput {
					row.Throughput = thr
					row.BestBatch = bs
					row.LatencyMs = float64(t) * 1e3
				}
			}
			if row.BestBatch == 0 {
				// The model does not fit this slice at any batch size.
				row.LatencyMs = 0
			}
			res.Rows = append(res.Rows, row)
			if row.Throughput > bestThroughput {
				bestThroughput = row.Throughput
				res.BestProfile[name] = p.Name
			}
		}
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *MIGResult) Render() string {
	rows := [][]string{{"network", "slicing", "instances", "best batch", "latency (ms)", "aggregate img/s"}}
	for _, row := range r.Rows {
		batch := fmt.Sprintf("%d", row.BestBatch)
		lat := fmt.Sprintf("%.1f", row.LatencyMs)
		thr := fmt.Sprintf("%.1f", row.Throughput)
		if row.BestBatch == 0 {
			batch, lat, thr = "—", "OOM", "—"
		}
		rows = append(rows, []string{row.Network, row.Profile,
			fmt.Sprintf("%d", row.Instances), batch, lat, thr})
	}
	for _, n := range migNets {
		rows = append(rows, []string{n + " → best slicing", r.BestProfile[n], "", "", "", ""})
	}
	return renderTable(fmt.Sprintf("MIG extension: throughput-optimal slicing of one %s (IGKW-predicted)", r.GPU), rows)
}
