package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/regression"
	"repro/internal/units"
)

// SCurve holds a Predicted/Measured ratio distribution, the content of the
// paper's Figures 11–14.
type SCurve struct {
	Model string
	GPU   string
	Evals []core.Eval
	// MeanError is the headline average relative error.
	MeanError float64
	// Percentiles are the ratio values at the figure's x-axis ticks
	// (0, 10, 25, 50, 75, 90, 100 %).
	Percentiles map[int]float64
}

// sCurveTicks matches the figures' x-axis.
var sCurveTicks = []int{0, 10, 25, 50, 75, 90, 100}

// newSCurve assembles the distribution from evaluations.
func newSCurve(model, gpuName string, evals []core.Eval) SCurve {
	ratios := core.SortedRatios(evals)
	s := SCurve{Model: model, GPU: gpuName, Evals: evals,
		MeanError: core.MeanRelError(evals), Percentiles: map[int]float64{}}
	for _, p := range sCurveTicks {
		s.Percentiles[p] = regression.Percentile(ratios, float64(p))
	}
	return s
}

// renderSCurve lays out one S-curve as table rows.
func renderSCurve(title string, s SCurve) string {
	rows := [][]string{{"percentile", "pred / measured"}}
	for _, p := range sCurveTicks {
		rows = append(rows, []string{fmt.Sprintf("%d%%", p), fmt.Sprintf("%.3f", s.Percentiles[p])})
	}
	rows = append(rows,
		[]string{"networks", fmt.Sprintf("%d", len(s.Evals))},
		[]string{"average error", fmt.Sprintf("%.3f", s.MeanError)})
	return renderTable(title, rows)
}

// evalOnTest predicts every network of the test split with the given task
// at the training batch size and pairs it with the measured time.
func (l *Lab) evalOnTest(m core.Predictor, test *dataset.Dataset, task dnn.Task) ([]core.Eval, error) {
	return l.evalAt(m, test, task, TrainBatch)
}

// evalAt is evalOnTest at an explicit batch size.
func (l *Lab) evalAt(m core.Predictor, test *dataset.Dataset, task dnn.Task, batch int) ([]core.Eval, error) {
	var evals []core.Eval
	for _, r := range test.Networks {
		if r.GPU != m.GPUName() || r.BatchSize != batch || r.Task != string(task) {
			continue
		}
		net, err := l.Network(r.Network)
		if err != nil {
			return nil, err
		}
		p, err := m.PredictNetwork(net, batch)
		if err != nil {
			return nil, err
		}
		evals = append(evals, core.Eval{Network: r.Network, Predicted: p, Measured: r.E2ESeconds})
	}
	if len(evals) == 0 {
		return nil, fmt.Errorf("bench: no %s test networks for %s on %s at batch %d",
			task, m.Name(), m.GPUName(), batch)
	}
	return evals, nil
}

// ---------------------------------------------------- Figures 11, 12, 13

// ModelFigureResult is the shared shape of Figures 11–13: one model's
// S-curve on one GPU.
type ModelFigureResult struct {
	Figure string
	Curve  SCurve
}

// Render implements the result-rendering convention.
func (r *ModelFigureResult) Render() string {
	return renderSCurve(fmt.Sprintf("%s: %s model predictions on %s (normalized to measured)",
		r.Figure, r.Curve.Model, r.Curve.GPU), r.Curve)
}

// Figure11 trains and evaluates the End-to-End model (paper: 35% on A100).
func Figure11(l *Lab, g gpu.Spec) (*ModelFigureResult, error) {
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	train, test := l.Split(ds)
	m, err := core.FitE2E(train, g.Name, TrainBatch)
	if err != nil {
		return nil, err
	}
	evals, err := l.evalOnTest(m, test, dnn.TaskImageClassification)
	if err != nil {
		return nil, err
	}
	return &ModelFigureResult{Figure: "Figure 11", Curve: newSCurve("E2E", g.Name, evals)}, nil
}

// Figure12 trains and evaluates the Layer-Wise model (paper: 28% on A100).
func Figure12(l *Lab, g gpu.Spec) (*ModelFigureResult, error) {
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	train, test := l.Split(ds)
	m, err := core.FitLW(train, g.Name, TrainBatch)
	if err != nil {
		return nil, err
	}
	evals, err := l.evalOnTest(m, test, dnn.TaskImageClassification)
	if err != nil {
		return nil, err
	}
	return &ModelFigureResult{Figure: "Figure 12", Curve: newSCurve("LW", g.Name, evals)}, nil
}

// Figure13Result extends the KW S-curve with the §5.4 side results: per-GPU
// error rates and the transformer extension.
type Figure13Result struct {
	Curve SCurve
	// KernelCount and ModelCount reproduce "for 182 kernels recorded, we
	// built 83 linear regression models".
	KernelCount, ModelCount int
	// PerGPUError maps each main GPU to its KW test error (paper: 6–9.4%).
	PerGPUError map[string]float64
	// TransformerError is the KW error on the text-classification group
	// (paper: ≈4.76% on A100).
	TransformerError float64
}

// Figure13 trains and evaluates the Kernel-Wise model on every main GPU.
func Figure13(l *Lab, primary gpu.Spec) (*Figure13Result, error) {
	res := &Figure13Result{PerGPUError: map[string]float64{}}
	for _, g := range MainGPUs() {
		ds, err := l.Dataset(g)
		if err != nil {
			return nil, err
		}
		train, test := l.Split(ds)
		m, err := core.FitKW(train, g.Name, TrainBatch)
		if err != nil {
			return nil, err
		}
		evals, err := l.evalOnTest(m, test, dnn.TaskImageClassification)
		if err != nil {
			return nil, err
		}
		res.PerGPUError[g.Name] = core.MeanRelError(evals)
		if g.Name == primary.Name {
			res.Curve = newSCurve("KW", g.Name, evals)
			res.KernelCount = m.KernelCount()
			res.ModelCount = m.ModelCount()
			txEvals, err := l.evalOnTest(m, test, dnn.TaskTextClassification)
			if err != nil {
				return nil, err
			}
			res.TransformerError = core.MeanRelError(txEvals)
		}
	}
	if res.Curve.Model == "" {
		return nil, fmt.Errorf("bench: figure 13: primary GPU %s not in MainGPUs", primary.Name)
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Figure13Result) Render() string {
	out := renderSCurve(fmt.Sprintf("Figure 13: KW model predictions on %s (normalized to measured)", r.Curve.GPU), r.Curve)
	rows := [][]string{{"GPU", "KW average error"}}
	for _, g := range MainGPUs() {
		rows = append(rows, []string{g.Name, fmt.Sprintf("%.3f", r.PerGPUError[g.Name])})
	}
	rows = append(rows,
		[]string{"transformers (" + r.Curve.GPU + ")", fmt.Sprintf("%.3f", r.TransformerError)},
		[]string{"kernels → models", fmt.Sprintf("%d → %d", r.KernelCount, r.ModelCount)})
	return out + "\n" + renderTable("Figure 13 (cont.): KW error per GPU and extensions", rows)
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one batch-size row of Table 2.
type Table2Row struct {
	BatchSize int
	// KWErrorPct is our measured KW error for ResNet-50 on V100.
	KWErrorPct float64
	// KWSeconds is the wall-clock time to train the KW model and produce
	// the prediction.
	KWSeconds float64
	// Published baselines from the PKA paper, as reproduced in Table 2.
	PKSErrorPct, PKAErrorPct float64
	PKSHours, PKAHours       float64
}

// Table2Result compares the KW model against Principal Kernel Selection /
// Analysis on ResNet-50 / V100.
type Table2Result struct {
	Rows []Table2Row
}

// table2Published holds the PKS/PKA columns, taken (as the paper itself
// does) from the Principal Kernel Analysis publication.
var table2Published = map[int]struct {
	pksErr, pkaErr, pksHours, pkaHours float64
}{
	64:  {6.4, 18, 10, 1.3},
	128: {3.5, 12, 8, 1.5},
	256: {2.2, 24, 18, 1.6},
}

// Table2 trains the KW model on V100 (excluding ResNet-50, the network under
// test) and predicts ResNet-50 at batch sizes 64/128/256.
func Table2(l *Lab) (*Table2Result, error) {
	const target = "resnet50"
	ds, err := l.Dataset(gpu.V100)
	if err != nil {
		return nil, err
	}
	// Hold out the network under test.
	keep := map[string]bool{}
	for _, n := range ds.NetworkNames() {
		keep[n] = n != target
	}
	train := ds.FilterNetworks(keep)

	net, err := l.Network(target)
	if err != nil {
		return nil, err
	}
	batches := []int{64, 128, 256}
	meas, err := l.Sweep([]string{target}, []gpu.Spec{gpu.V100}, batches)
	if err != nil {
		return nil, err
	}

	res := &Table2Result{}
	for _, bs := range batches {
		start := time.Now()
		m, err := core.FitKW(train, gpu.V100.Name, TrainBatch)
		if err != nil {
			return nil, err
		}
		pred, err := m.PredictNetwork(net, bs)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()

		var measured units.Seconds
		for _, r := range meas.Networks {
			if r.BatchSize == bs {
				measured = r.E2ESeconds
			}
		}
		if measured == 0 {
			return nil, fmt.Errorf("bench: table 2: no measurement at BS=%d", bs)
		}
		pub := table2Published[bs]
		res.Rows = append(res.Rows, Table2Row{
			BatchSize:   bs,
			KWErrorPct:  100 * (core.Eval{Predicted: pred, Measured: measured}).RelError(),
			KWSeconds:   elapsed,
			PKSErrorPct: pub.pksErr, PKAErrorPct: pub.pkaErr,
			PKSHours: pub.pksHours, PKAHours: pub.pkaHours,
		})
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Table2Result) Render() string {
	rows := [][]string{{"Batch Size", "KW err %", "PKS err %", "PKA err %", "KW time (s)", "PKS time (h)", "PKA time (h)"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.BatchSize),
			fmt.Sprintf("%.1f", row.KWErrorPct),
			fmt.Sprintf("%.1f", row.PKSErrorPct),
			fmt.Sprintf("%.1f", row.PKAErrorPct),
			fmt.Sprintf("%.2f", row.KWSeconds),
			fmt.Sprintf("%.1f", row.PKSHours),
			fmt.Sprintf("%.1f", row.PKAHours),
		})
	}
	return renderTable("Table 2: ResNet-50 on V100 — KW vs PKS/PKA (PKS/PKA columns as published)", rows)
}

// ---------------------------------------------------------------- Figure 14

// Figure14Result is the inter-GPU S-curve on the unseen TITAN RTX.
type Figure14Result struct {
	Curve SCurve
	// TrainGPUs are the measurement sources.
	TrainGPUs []string
	// Within10 is the fraction of networks predicted within 10% (the paper:
	// "about half of the models with an error of less than 10%").
	Within10 float64
}

// Figure14 trains the IGKW model on A100 + A40 + GTX 1080 Ti and predicts
// every network on TITAN RTX, which contributes no training measurements.
func Figure14(l *Lab) (*Figure14Result, error) {
	trainGPUs := []gpu.Spec{gpu.A100, gpu.A40, gpu.GTX1080Ti}
	target := gpu.TitanRTX

	ds, err := l.Dataset(append(trainGPUs, target)...)
	if err != nil {
		return nil, err
	}
	// The target GPU's records are used for evaluation only.
	trainDS := &dataset.Dataset{}
	for _, g := range trainGPUs {
		trainDS.Merge(ds.FilterGPU(g.Name))
	}
	m, err := core.FitIGKW(trainDS, trainGPUs, target, TrainBatch)
	if err != nil {
		return nil, err
	}

	var evals []core.Eval
	for _, r := range ds.Networks {
		if r.GPU != target.Name || r.BatchSize != TrainBatch ||
			r.Task != string(dnn.TaskImageClassification) {
			continue
		}
		net, err := l.Network(r.Network)
		if err != nil {
			return nil, err
		}
		p, err := m.PredictNetwork(net, TrainBatch)
		if err != nil {
			return nil, err
		}
		evals = append(evals, core.Eval{Network: r.Network, Predicted: p, Measured: r.E2ESeconds})
	}
	if len(evals) == 0 {
		return nil, fmt.Errorf("bench: figure 14: no evaluation records on %s", target.Name)
	}
	res := &Figure14Result{
		Curve:    newSCurve("IGKW", target.Name, evals),
		Within10: core.FractionWithin(evals, 0.10),
	}
	for _, g := range trainGPUs {
		res.TrainGPUs = append(res.TrainGPUs, g.Name)
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Figure14Result) Render() string {
	out := renderSCurve(fmt.Sprintf("Figure 14: IGKW predictions on unseen %s (trained on %v)",
		r.Curve.GPU, r.TrainGPUs), r.Curve)
	rows := [][]string{{"metric", "value"}}
	rows = append(rows, []string{"networks within 10% error", fmt.Sprintf("%.0f%%", r.Within10*100)})
	return out + "\n" + renderTable("Figure 14 (cont.)", rows)
}
