package bench

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/regression"
	"repro/internal/zoo"
)

// ---------------------------------------------------------------- Table 1

// Table1Result reproduces Table 1: the GPUs used in the experiments.
type Table1Result struct {
	GPUs []gpu.Spec
}

// Table1 returns the GPU registry in the paper's order.
func Table1() *Table1Result { return &Table1Result{GPUs: gpu.All()} }

// Render implements the common result-rendering convention.
func (r *Table1Result) Render() string {
	rows := [][]string{{"GPU", "Bandwidth (GB/s)", "Memory (GB)", "TFLOPS (FP32)", "Tensor Cores"}}
	for _, g := range r.GPUs {
		rows = append(rows, []string{g.Name,
			fmt.Sprintf("%.0f", g.MemBWGBps), fmt.Sprintf("%.0f", g.MemGB),
			fmt.Sprintf("%.1f", g.FP32TFLOPS), fmt.Sprintf("%d", g.TensorCores)})
	}
	return renderTable("Table 1: GPUs used in the experiments", rows)
}

// ---------------------------------------------------------------- Figure 3

// ScatterPoint is one (x, y) observation with its label.
type ScatterPoint struct {
	Network string
	X, Y    float64
}

// Figure3Result holds the E2E-time-versus-FLOPs scatter of the whole zoo
// (batch size ≥ 4) and its linearity/band statistics.
type Figure3Result struct {
	GPU string
	// Points are (GFLOPs, exec ms) pairs across networks and batch sizes.
	Points []ScatterPoint
	// LogLogFit is the fit of log(time) against log(FLOPs); a slope near 1
	// is the paper's "the trend is linear".
	LogLogFit regression.Line
	// BandRatio is the p97.5/p2.5 spread of time-per-FLOP across networks —
	// the paper's "the band is constantly about 10 times wide".
	BandRatio float64
	// SmallFLOPsInefficiency is the mean time-per-FLOP of the lowest-FLOPs
	// decile divided by the overall median: > 1 reproduces the flattening
	// at small operation counts.
	SmallFLOPsInefficiency float64
}

// Figure3 computes the Figure 3 scatter on the given GPU (the paper plots
// its pooled dataset; A100 is the canonical choice).
func Figure3(l *Lab, g gpu.Spec) (*Figure3Result, error) {
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{GPU: g.Name}
	var perFLOP []float64
	type pf struct{ flops, tpf float64 }
	var pfs []pf
	for _, r := range ds.Networks {
		if r.BatchSize < 4 {
			continue
		}
		res.Points = append(res.Points, ScatterPoint{
			Network: r.Network,
			X:       float64(r.TotalFLOPs) / 1e9,
			Y:       float64(r.E2ESeconds) * 1e3,
		})
		tpf := float64(r.E2ESeconds) / float64(r.TotalFLOPs)
		perFLOP = append(perFLOP, tpf)
		pfs = append(pfs, pf{float64(r.TotalFLOPs), tpf})
	}
	var xs, ys []float64
	for _, p := range res.Points {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	fit, err := regression.FitLogLog(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("bench: figure 3 fit: %w", err)
	}
	res.LogLogFit = fit

	// The paper reads the band width off the well-utilized (high-FLOPs)
	// region ("when GFLOPs is 10², the execution time is between 10¹ and
	// 10² ms"); the overhead-dominated low-FLOPs points are the separate
	// flattening effect. Measure the band on the top half by FLOPs.
	sort.Slice(pfs, func(i, j int) bool { return pfs[i].flops < pfs[j].flops })
	var upper []float64
	for _, p := range pfs[len(pfs)/2:] {
		upper = append(upper, p.tpf)
	}
	res.BandRatio = regression.Percentile(upper, 97.5) / regression.Percentile(upper, 2.5)

	decile := len(pfs) / 10
	if decile > 0 {
		var low []float64
		for _, p := range pfs[:decile] {
			low = append(low, p.tpf)
		}
		res.SmallFLOPsInefficiency = regression.Mean(low) / regression.Median(perFLOP)
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Figure3Result) Render() string {
	rows := [][]string{{"metric", "value"}}
	rows = append(rows,
		[]string{"GPU", r.GPU},
		[]string{"points (BS ≥ 4)", fmt.Sprintf("%d", len(r.Points))},
		[]string{"log-log slope (1 = linear)", fmt.Sprintf("%.3f", r.LogLogFit.Slope)},
		[]string{"log-log R²", fmt.Sprintf("%.3f", r.LogLogFit.R2)},
		[]string{"band width (p97.5/p2.5 time-per-FLOP)", fmt.Sprintf("%.1f×", r.BandRatio)},
		[]string{"small-FLOPs inefficiency (lowest decile)", fmt.Sprintf("%.1f×", r.SmallFLOPsInefficiency)},
	)
	return renderTable("Figure 3: execution time vs FLOPs, all networks", rows)
}

// ---------------------------------------------------------------- Figure 4

// SeriesFit is one network family's time-vs-FLOPs line.
type SeriesFit struct {
	Series string
	Points []ScatterPoint
	// Fit is the OLS line of exec seconds against FLOPs.
	Fit regression.Line
}

// Figure4Result shows that ResNet and VGG variants fall on different lines.
type Figure4Result struct {
	GPU            string
	ResNet, VGG    SeriesFit
	SlopeRatioRvsV float64
}

// Figure4 profiles the standard plus non-standard ResNet and VGG variants at
// BS=512 and fits each family's line.
func Figure4(l *Lab, g gpu.Spec) (*Figure4Result, error) {
	resnets, vggs := zoo.Figure4Nets()
	fit := func(series string, nets []*dnn.Network) (SeriesFit, error) {
		// Ad-hoc collection: these variants are not part of the zoo.
		opt := dataset.DefaultBuildOptions()
		opt.Batches = l.batches
		opt.Warmup = l.warmup
		opt.E2EBatchSizes = []int{TrainBatch}
		ds, _, err := dataset.Build(nets, []gpu.Spec{g}, opt)
		if err != nil {
			return SeriesFit{}, err
		}
		sf := SeriesFit{Series: series}
		var xs, ys []float64
		for _, r := range ds.Networks {
			if r.BatchSize != TrainBatch {
				continue
			}
			sf.Points = append(sf.Points, ScatterPoint{Network: r.Network,
				X: float64(r.TotalFLOPs) / 1e9, Y: float64(r.E2ESeconds) * 1e3})
			xs = append(xs, float64(r.TotalFLOPs))
			ys = append(ys, float64(r.E2ESeconds))
		}
		line, err := regression.Fit(xs, ys)
		if err != nil {
			return SeriesFit{}, err
		}
		sf.Fit = line
		return sf, nil
	}
	rn, err := fit("ResNet", resnets)
	if err != nil {
		return nil, fmt.Errorf("bench: figure 4 ResNet series: %w", err)
	}
	vg, err := fit("VGG", vggs)
	if err != nil {
		return nil, fmt.Errorf("bench: figure 4 VGG series: %w", err)
	}
	return &Figure4Result{GPU: g.Name, ResNet: rn, VGG: vg,
		SlopeRatioRvsV: rn.Fit.Slope / vg.Fit.Slope}, nil
}

// Render implements the result-rendering convention.
func (r *Figure4Result) Render() string {
	rows := [][]string{{"series", "networks", "slope (ms/GFLOP)", "R²"}}
	for _, s := range []SeriesFit{r.ResNet, r.VGG} {
		rows = append(rows, []string{s.Series, fmt.Sprintf("%d", len(s.Points)),
			fmt.Sprintf("%.4f", s.Fit.Slope*1e12), fmt.Sprintf("%.4f", s.Fit.R2)})
	}
	rows = append(rows, []string{"slope ratio ResNet/VGG", "", fmt.Sprintf("%.2f×", r.SlopeRatioRvsV), ""})
	return renderTable(fmt.Sprintf("Figure 4: ResNet vs VGG fall on different lines (BS=%d, %s)", TrainBatch, r.GPU), rows)
}

// ---------------------------------------------------------------- Figure 5

// BatchSeries is one network's metric across batch sizes.
type BatchSeries struct {
	Network string
	Batch   []int
	Value   []float64 // ms for Figure 5, TFLOPS for Figure 6
	// Fit is the value-vs-batch OLS line (Figure 5 only).
	Fit regression.Line
}

// Figure5Result: execution time is linear in batch size with per-network
// slopes.
type Figure5Result struct {
	GPU    string
	Series []BatchSeries
}

// figure5Nets are the paper's three workloads.
var figure5Nets = []string{"resnet50", "mobilenet_v2", "vgg16"}

// Figure5 sweeps batch size 2–82 for ResNet-50, MobileNetV2 and VGG-16.
func Figure5(l *Lab, g gpu.Spec) (*Figure5Result, error) {
	batches := []int{2, 10, 18, 26, 34, 42, 50, 58, 66, 74, 82}
	ds, err := l.Sweep(figure5Nets, []gpu.Spec{g}, batches)
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{GPU: g.Name}
	for _, name := range figure5Nets {
		s := BatchSeries{Network: name}
		var xs, ys []float64
		for _, bs := range batches {
			for _, r := range ds.Networks {
				if r.Network == name && r.BatchSize == bs {
					s.Batch = append(s.Batch, bs)
					s.Value = append(s.Value, float64(r.E2ESeconds)*1e3)
					xs = append(xs, float64(bs))
					ys = append(ys, float64(r.E2ESeconds)*1e3)
				}
			}
		}
		line, err := regression.Fit(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("bench: figure 5 %s: %w", name, err)
		}
		s.Fit = line
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Figure5Result) Render() string {
	rows := [][]string{{"network", "slope (ms/image)", "intercept (ms)", "R²"}}
	for _, s := range r.Series {
		rows = append(rows, []string{s.Network,
			fmt.Sprintf("%.4f", s.Fit.Slope), fmt.Sprintf("%.3f", s.Fit.Intercept),
			fmt.Sprintf("%.4f", s.Fit.R2)})
	}
	return renderTable(fmt.Sprintf("Figure 5: execution time vs batch size (%s)", r.GPU), rows)
}

// ---------------------------------------------------------------- Figure 6

// Figure6Result: achieved TFLOPS saturates once the batch size fully
// utilizes the GPU.
type Figure6Result struct {
	GPU    string
	Series []BatchSeries
	// SaturationRatio[i] is series i's TFLOPS at the largest batch divided
	// by TFLOPS at the smallest — > 1 reproduces the rising-then-flat shape.
	SaturationRatio []float64
}

// Figure6 sweeps batch sizes 8–512 and reports achieved TFLOPS.
func Figure6(l *Lab, g gpu.Spec) (*Figure6Result, error) {
	batches := []int{8, 64, 128, 192, 256, 320, 384, 448, 512}
	ds, err := l.Sweep(figure5Nets, []gpu.Spec{g}, batches)
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{GPU: g.Name}
	for _, name := range figure5Nets {
		s := BatchSeries{Network: name}
		for _, bs := range batches {
			for _, r := range ds.Networks {
				if r.Network == name && r.BatchSize == bs {
					s.Batch = append(s.Batch, bs)
					s.Value = append(s.Value, float64(r.TotalFLOPs)/float64(r.E2ESeconds)/1e12)
				}
			}
		}
		if len(s.Value) == 0 {
			return nil, fmt.Errorf("bench: figure 6: no records for %s", name)
		}
		res.Series = append(res.Series, s)
		res.SaturationRatio = append(res.SaturationRatio, s.Value[len(s.Value)-1]/s.Value[0])
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Figure6Result) Render() string {
	rows := [][]string{{"network", "TFLOPS @BS=8", "TFLOPS @BS=512", "saturation ×"}}
	for i, s := range r.Series {
		rows = append(rows, []string{s.Network,
			fmt.Sprintf("%.2f", s.Value[0]), fmt.Sprintf("%.2f", s.Value[len(s.Value)-1]),
			fmt.Sprintf("%.2f", r.SaturationRatio[i])})
	}
	return renderTable(fmt.Sprintf("Figure 6: achieved TFLOPS vs batch size (%s)", r.GPU), rows)
}

// ---------------------------------------------------------------- Figure 7

// KindTrend is one layer type's time-vs-FLOPs trend.
type KindTrend struct {
	Kind dnn.Kind
	N    int
	// LogLogFit quantifies linearity on the figure's log-log axes.
	LogLogFit regression.Line
	// GFLOPSPerSec is the average achieved throughput — the "efficiency"
	// that separates the trend lines vertically.
	GFLOPSPerSec float64
}

// Figure7Result: different layer types fall on different linear trends.
type Figure7Result struct {
	GPU    string
	Trends []KindTrend
}

// figure7Kinds mirrors the paper's BN / CONV / FC / Pooling legend.
var figure7Kinds = map[dnn.Kind][]dnn.Kind{
	dnn.KindBatchNorm: {dnn.KindBatchNorm},
	dnn.KindConv2D:    {dnn.KindConv2D},
	dnn.KindLinear:    {dnn.KindLinear},
	dnn.KindMaxPool2D: {dnn.KindMaxPool2D, dnn.KindAvgPool2D},
}

// Figure7 fits the per-layer-type trends from the layer records.
func Figure7(l *Lab, g gpu.Spec) (*Figure7Result, error) {
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	res := &Figure7Result{GPU: g.Name}
	order := []dnn.Kind{dnn.KindBatchNorm, dnn.KindConv2D, dnn.KindLinear, dnn.KindMaxPool2D}
	for _, label := range order {
		members := map[dnn.Kind]bool{}
		for _, k := range figure7Kinds[label] {
			members[k] = true
		}
		var xs, ys []float64
		var rate float64
		n := 0
		for _, r := range ds.Layers {
			if r.BatchSize != TrainBatch || !members[dnn.Kind(r.Kind)] || r.FLOPs == 0 {
				continue
			}
			xs = append(xs, float64(r.FLOPs))
			ys = append(ys, float64(r.Seconds))
			rate += float64(r.FLOPs) / float64(r.Seconds)
			n++
		}
		if n < 2 {
			continue
		}
		fit, err := regression.FitLogLog(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("bench: figure 7 %s: %w", label, err)
		}
		res.Trends = append(res.Trends, KindTrend{
			Kind: label, N: n, LogLogFit: fit, GFLOPSPerSec: rate / float64(n) / 1e9,
		})
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Figure7Result) Render() string {
	rows := [][]string{{"layer type", "n", "log-log slope", "log-log R²", "mean GFLOPS"}}
	for _, t := range r.Trends {
		label := string(t.Kind)
		if t.Kind == dnn.KindMaxPool2D {
			label = "Pooling"
		}
		if t.Kind == dnn.KindLinear {
			label = "FC"
		}
		rows = append(rows, []string{label, fmt.Sprintf("%d", t.N),
			fmt.Sprintf("%.3f", t.LogLogFit.Slope), fmt.Sprintf("%.3f", t.LogLogFit.R2),
			fmt.Sprintf("%.1f", t.GFLOPSPerSec)})
	}
	return renderTable(fmt.Sprintf("Figure 7: layer types fall on different trend lines (%s, BS=%d)", r.GPU, TrainBatch), rows)
}

// ---------------------------------------------------------------- Figure 8

// ClassR2 aggregates classification quality for one driver class.
type ClassR2 struct {
	Class core.Driver
	// Kernels is the number of kernels classified into the class.
	Kernels int
	// MeanOwnR2 is the mean R² on the winning driver variable.
	MeanOwnR2 float64
	// MeanOtherR2 is the mean R² the same kernels achieve on the other two
	// driver variables — the "low correlation" panels of Figure 8.
	MeanOtherR2 float64
}

// Figure8Result: classifying kernels amplifies the linear relationship.
type Figure8Result struct {
	GPU     string
	Classes []ClassR2
	// TotalKernels is the number of distinct kernel names classified.
	TotalKernels int
}

// Figure8 runs the O5 classification on the GPU's kernel records.
func Figure8(l *Lab, g gpu.Spec) (*Figure8Result, error) {
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	var recs []dataset.KernelRecord
	for _, r := range ds.Kernels {
		if r.BatchSize == TrainBatch {
			recs = append(recs, r)
		}
	}
	classif := core.ClassifyKernels(recs)
	res := &Figure8Result{GPU: g.Name, TotalKernels: len(classif)}
	for _, d := range core.Drivers() {
		agg := ClassR2{Class: d}
		var own, other []float64
		// Sorted kernel order: Mean folds floats, and map order is random.
		for _, name := range core.SortedKernels(classif) {
			c := classif[name]
			if c.Driver != d || c.N < core.MinKernelObservations {
				continue
			}
			agg.Kernels++
			own = append(own, c.R2[d])
			for _, o := range core.Drivers() {
				if o != d {
					if r2, ok := c.R2[o]; ok {
						other = append(other, r2)
					}
				}
			}
		}
		agg.MeanOwnR2 = regression.Mean(own)
		agg.MeanOtherR2 = regression.Mean(other)
		res.Classes = append(res.Classes, agg)
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Figure8Result) Render() string {
	rows := [][]string{{"class", "kernels", "mean R² (own driver)", "mean R² (other drivers)"}}
	for _, c := range r.Classes {
		rows = append(rows, []string{string(c.Class) + "-driven", fmt.Sprintf("%d", c.Kernels),
			fmt.Sprintf("%.3f", c.MeanOwnR2), fmt.Sprintf("%.3f", c.MeanOtherR2)})
	}
	rows = append(rows, []string{"total kernels", fmt.Sprintf("%d", r.TotalKernels), "", ""})
	return renderTable(fmt.Sprintf("Figure 8: kernel classification amplifies linearity (%s)", r.GPU), rows)
}

// ---------------------------------------------------------------- Figure 9

// GPUEfficiency is one GPU's achieved-over-theoretical pair.
type GPUEfficiency struct {
	GPU        string
	BWEff      float64
	ComputeEff float64
}

// Figure9Result: bandwidth efficiency is stable across GPUs, compute
// efficiency is not — the premise of the inter-GPU model (O6).
type Figure9Result struct {
	Network string
	Rows    []GPUEfficiency
	// BWSpread and ComputeSpread are max/min ratios across GPUs; the
	// paper's claim is BWSpread ≪ ComputeSpread.
	BWSpread, ComputeSpread float64
}

// figure9GPUs matches the paper's x-axis.
func figure9GPUs() []gpu.Spec {
	return []gpu.Spec{gpu.A40, gpu.A100, gpu.GTX1080Ti, gpu.TitanRTX, gpu.RTXA5000, gpu.QuadroP620}
}

// Figure9 measures ResNet-18's efficiency pair on each GPU. Batch size 64
// keeps the 2 GB Quadro P620 inside memory (larger batches fail to execute
// there, as in the paper's cleaned dataset).
func Figure9(l *Lab) (*Figure9Result, error) {
	const name = "resnet18"
	const batch = 64
	net, err := l.Network(name)
	if err != nil {
		return nil, err
	}
	ds, err := l.Sweep([]string{name}, figure9GPUs(), []int{batch})
	if err != nil {
		return nil, err
	}
	if err := net.Infer(batch); err != nil {
		return nil, err
	}
	flops, err := net.TotalFLOPs()
	if err != nil {
		return nil, err
	}
	bytes := net.TotalBytes()

	res := &Figure9Result{Network: name}
	minBW, maxBW := math.Inf(1), 0.0
	minC, maxC := math.Inf(1), 0.0
	for _, g := range figure9GPUs() {
		for _, r := range ds.Networks {
			if r.GPU != g.Name || r.BatchSize != batch {
				continue
			}
			bwEff := (float64(bytes) / float64(r.E2ESeconds)) / g.PeakBytesPerSec()
			cEff := (float64(flops) / float64(r.E2ESeconds)) / g.PeakFLOPS()
			res.Rows = append(res.Rows, GPUEfficiency{GPU: g.Name, BWEff: bwEff, ComputeEff: cEff})
			minBW, maxBW = math.Min(minBW, bwEff), math.Max(maxBW, bwEff)
			minC, maxC = math.Min(minC, cEff), math.Max(maxC, cEff)
		}
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("bench: figure 9: no records collected")
	}
	res.BWSpread = maxBW / minBW
	res.ComputeSpread = maxC / minC
	return res, nil
}

// Render implements the result-rendering convention.
func (r *Figure9Result) Render() string {
	rows := [][]string{{"GPU", "BW efficiency", "compute efficiency"}}
	for _, e := range r.Rows {
		rows = append(rows, []string{e.GPU,
			fmt.Sprintf("%.1f%%", e.BWEff*100), fmt.Sprintf("%.1f%%", e.ComputeEff*100)})
	}
	rows = append(rows, []string{"max/min spread",
		fmt.Sprintf("%.2f×", r.BWSpread), fmt.Sprintf("%.2f×", r.ComputeSpread)})
	return renderTable(fmt.Sprintf("Figure 9: efficiency of %s across GPUs", r.Network), rows)
}
