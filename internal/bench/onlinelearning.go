package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
)

// OnlineStep is one point of the online-learning trajectory.
type OnlineStep struct {
	// ObservedNetworks is how many networks' measurements the model has
	// seen so far.
	ObservedNetworks int
	// KWError is the held-out error after ingesting them.
	KWError float64
	// Kernels is the model's kernel count (grows as streamed measurements
	// promote kernels unseen at fit time).
	Kernels int
}

// OnlineLearningResult demonstrates the §5.2 claim that the models suit
// "online learning (updating the model in the deployed environment in
// real-time)": a KW model fitted on a small seed set improves monotonically
// (in trend) as deployment measurements stream in, without ever refitting
// from scratch.
type OnlineLearningResult struct {
	GPU   string
	Steps []OnlineStep
}

// onlineChunks is how many streaming batches the non-seed networks arrive in.
const onlineChunks = 4

// OnlineLearning seeds a KW model with a quarter of the training networks
// and streams the remainder in chunks, evaluating the fixed held-out test
// set after each chunk.
func OnlineLearning(l *Lab, g gpu.Spec) (*OnlineLearningResult, error) {
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	train, test := l.Split(ds)

	names := train.NetworkNames()
	sort.Strings(names)
	seedCount := len(names) / 4
	if seedCount < 2 {
		seedCount = 2
	}
	seedSet := map[string]bool{}
	for _, n := range names[:seedCount] {
		seedSet[n] = true
	}
	seed := train.FilterNetworks(seedSet)

	kw, err := core.FitKW(seed, g.Name, TrainBatch)
	if err != nil {
		return nil, err
	}

	evalErr := func() (float64, error) {
		evals, err := l.evalOnTest(kw, test, dnn.TaskImageClassification)
		if err != nil {
			return 0, err
		}
		return core.MeanRelError(evals), nil
	}

	res := &OnlineLearningResult{GPU: g.Name}
	e, err := evalErr()
	if err != nil {
		return nil, err
	}
	res.Steps = append(res.Steps, OnlineStep{
		ObservedNetworks: seedCount, KWError: e, Kernels: kw.KernelCount(),
	})

	rest := names[seedCount:]
	chunk := (len(rest) + onlineChunks - 1) / onlineChunks
	streamed := seedCount
	for start := 0; start < len(rest); start += chunk {
		end := start + chunk
		if end > len(rest) {
			end = len(rest)
		}
		inChunk := map[string]bool{}
		for _, n := range rest[start:end] {
			inChunk[n] = true
		}
		var recs []dataset.KernelRecord
		for _, r := range train.Kernels {
			if inChunk[r.Network] && r.BatchSize == TrainBatch {
				recs = append(recs, r)
			}
		}
		kw.ObserveRecords(recs)
		streamed += end - start

		e, err := evalErr()
		if err != nil {
			return nil, err
		}
		res.Steps = append(res.Steps, OnlineStep{
			ObservedNetworks: streamed, KWError: e, Kernels: kw.KernelCount(),
		})
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *OnlineLearningResult) Render() string {
	rows := [][]string{{"networks observed", "kernels modeled", "held-out KW error"}}
	for _, s := range r.Steps {
		rows = append(rows, []string{fmt.Sprintf("%d", s.ObservedNetworks),
			fmt.Sprintf("%d", s.Kernels), fmt.Sprintf("%.3f", s.KWError)})
	}
	return renderTable(fmt.Sprintf("Online learning: streaming measurements into a deployed KW model (%s)", r.GPU), rows)
}
