package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/zoo"
)

// Robustness re-runs the central model comparison in several independent
// synthetic-device universes (different sim seeds re-draw every kernel
// efficiency, geometry factor and curvature). The reproduction's claims are
// only meaningful if the E2E > LW ≫ KW ordering — and the KW error's
// magnitude — hold in *every* universe, not just the canonical seed.
type RobustnessResult struct {
	GPU string
	// Seeds lists the evaluated universes.
	Seeds []int64
	// E2E, LW and KW hold each universe's held-out error, aligned with
	// Seeds.
	E2E, LW, KW []float64
	// OrderingHolds reports whether KW < LW < E2E in every universe.
	OrderingHolds bool
}

// robustnessSample bounds the per-universe zoo sample (collection dominates
// the cost and every universe needs a fresh dataset).
const robustnessSample = 8 // every 8th network of the full zoo

// Robustness evaluates the model comparison across the given seeds. It
// samples the full zoo directly (independent of the lab's own sample) so
// every universe trains on a dataset large enough for stable kernel models.
func Robustness(l *Lab, g gpu.Spec, seeds []int64) (*RobustnessResult, error) {
	full := zoo.Full()
	var nets []*dnn.Network
	for i := 0; i < len(full); i += robustnessSample {
		nets = append(nets, full[i])
	}
	byName := map[string]*dnn.Network{}
	for _, n := range nets {
		byName[n.Name] = n
	}

	res := &RobustnessResult{GPU: g.Name, Seeds: seeds, OrderingHolds: true}
	for _, seed := range seeds {
		opt := dataset.DefaultBuildOptions()
		opt.Batches = l.batches
		opt.Warmup = l.warmup
		opt.E2EBatchSizes = []int{TrainBatch}
		opt.SimConfig.Seed = seed
		ds, _, err := dataset.Build(nets, []gpu.Spec{g}, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: robustness seed %d: %w", seed, err)
		}
		train, test := ds.SplitByNetwork(TestFraction, SplitSeed)

		e2e, err := core.FitE2E(train, g.Name, TrainBatch)
		if err != nil {
			return nil, err
		}
		lw, err := core.FitLW(train, g.Name, TrainBatch)
		if err != nil {
			return nil, err
		}
		kw, err := core.FitKW(train, g.Name, TrainBatch)
		if err != nil {
			return nil, err
		}

		errs := map[string]float64{}
		for _, m := range []core.Predictor{e2e, lw, kw} {
			var evals []core.Eval
			for _, r := range test.Networks {
				if r.BatchSize != TrainBatch || r.Task != string(dnn.TaskImageClassification) {
					continue
				}
				p, err := m.PredictNetwork(byName[r.Network], TrainBatch)
				if err != nil {
					return nil, err
				}
				evals = append(evals, core.Eval{Network: r.Network, Predicted: p, Measured: r.E2ESeconds})
			}
			errs[m.Name()] = core.MeanRelError(evals)
		}
		res.E2E = append(res.E2E, errs["E2E"])
		res.LW = append(res.LW, errs["LW"])
		res.KW = append(res.KW, errs["KW"])
		if !(errs["KW"] < errs["LW"] && errs["LW"] < errs["E2E"]) {
			res.OrderingHolds = false
		}
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *RobustnessResult) Render() string {
	rows := [][]string{{"universe seed", "E2E error", "LW error", "KW error"}}
	for i, seed := range r.Seeds {
		rows = append(rows, []string{fmt.Sprintf("%d", seed),
			fmt.Sprintf("%.3f", r.E2E[i]), fmt.Sprintf("%.3f", r.LW[i]),
			fmt.Sprintf("%.3f", r.KW[i])})
	}
	rows = append(rows, []string{"KW < LW < E2E in every universe",
		fmt.Sprintf("%t", r.OrderingHolds), "", ""})
	return renderTable(fmt.Sprintf("Robustness: model ordering across device universes (%s)", r.GPU), rows)
}
