package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/gpu"
)

// SmallBatchRow is one batch size's error comparison.
type SmallBatchRow struct {
	BatchSize int
	// RawError is the plain KW model's error at this batch size.
	RawError float64
	// CorrectedError is the KW+overhead model's error.
	CorrectedError float64
}

// SmallBatchResult evaluates the §7 limitation and its fix: the plain KW
// model degrades away from the training batch size (CPU overheads and
// pipelining dominate small workloads); the learned residual correction
// recovers most of the loss.
type SmallBatchResult struct {
	GPU  string
	Rows []SmallBatchRow
}

// SmallBatch fits the KW model at the training batch size, learns the
// overhead correction from the training networks' multi-batch records, and
// compares raw vs corrected errors on held-out networks at every recorded
// batch size.
func SmallBatch(l *Lab, g gpu.Spec) (*SmallBatchResult, error) {
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	train, test := l.Split(ds)
	kw, err := core.FitKW(train, g.Name, TrainBatch)
	if err != nil {
		return nil, err
	}
	sb, err := core.FitSmallBatch(kw, train, l.Network)
	if err != nil {
		return nil, err
	}

	batches := map[int]bool{}
	for _, r := range test.Networks {
		if r.GPU == g.Name {
			batches[r.BatchSize] = true
		}
	}
	var sizes []int
	for bs := range batches {
		sizes = append(sizes, bs)
	}
	sort.Ints(sizes)

	res := &SmallBatchResult{GPU: g.Name}
	for _, bs := range sizes {
		raw, err := l.evalAt(kw, test, dnn.TaskImageClassification, bs)
		if err != nil {
			return nil, err
		}
		corrected, err := l.evalAt(sb, test, dnn.TaskImageClassification, bs)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, SmallBatchRow{
			BatchSize:      bs,
			RawError:       core.MeanRelError(raw),
			CorrectedError: core.MeanRelError(corrected),
		})
	}
	return res, nil
}

// Render implements the result-rendering convention.
func (r *SmallBatchResult) Render() string {
	rows := [][]string{{"batch size", "KW error", "KW+overhead error"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", row.BatchSize),
			fmt.Sprintf("%.3f", row.RawError), fmt.Sprintf("%.3f", row.CorrectedError)})
	}
	return renderTable(fmt.Sprintf("Small-batch correction: CPU/launch overhead model (%s)", r.GPU), rows)
}
