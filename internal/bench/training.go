package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
)

// TrainingBatch is the fully-utilizing batch size of the training-workload
// extension: training retains every activation for the backward pass, so
// the memory ceiling sits far below inference's 512.
const TrainingBatch = 64

// TrainingExtensionResult evaluates the paper's future-work direction
// ("extending our models for more diverse workloads (e.g., training)", §9):
// the same kernel-wise methodology applied to full training steps
// (forward + backward + optimizer kernels).
type TrainingExtensionResult struct {
	GPU string
	// Curve is the training-mode KW S-curve on held-out networks.
	Curve SCurve
	// InferenceError is the inference-mode KW error at the same batch size,
	// for comparison.
	InferenceError float64
	// KernelCount / ModelCount describe the training-step kernel vocabulary
	// (roughly double inference: every family gains backward variants).
	KernelCount, ModelCount int
	// StepOverFwd is the mean measured training-step / inference-step time
	// ratio (the classic ≈3× of forward+backward+update).
	StepOverFwd float64
	// OOMDropped counts runs removed for exceeding training-mode memory.
	OOMDropped int
}

// TrainingExtension collects a training-mode dataset on the GPU, fits a
// training-mode KW model, and evaluates it on held-out networks.
func TrainingExtension(l *Lab, g gpu.Spec) (*TrainingExtensionResult, error) {
	opt := dataset.DefaultBuildOptions()
	opt.Batches = l.batches
	opt.Warmup = l.warmup
	opt.E2EBatchSizes = []int{TrainingBatch}
	opt.DetailBatchSize = TrainingBatch
	opt.Training = true
	trainDS, report, err := dataset.Build(l.nets, []gpu.Spec{g}, opt)
	if err != nil {
		return nil, err
	}

	// Matching inference-mode dataset at the same batch size.
	opt.Training = false
	inferDS, _, err := dataset.Build(l.nets, []gpu.Spec{g}, opt)
	if err != nil {
		return nil, err
	}

	res := &TrainingExtensionResult{GPU: g.Name, OOMDropped: len(report.OutOfMemory)}

	// Step-time ratio over networks present in both datasets.
	inferE2E := map[string]float64{}
	for _, r := range inferDS.Networks {
		if r.BatchSize == TrainingBatch {
			inferE2E[r.Network] = float64(r.E2ESeconds)
		}
	}
	var ratios []float64
	for _, r := range trainDS.Networks {
		if r.BatchSize == TrainingBatch && inferE2E[r.Network] > 0 {
			ratios = append(ratios, float64(r.E2ESeconds)/inferE2E[r.Network])
		}
	}
	if len(ratios) == 0 {
		return nil, fmt.Errorf("bench: training extension: no comparable runs")
	}
	var sum float64
	for _, x := range ratios {
		sum += x
	}
	res.StepOverFwd = sum / float64(len(ratios))

	// Train and evaluate the training-mode KW model.
	train, test := l.Split(trainDS)
	kw, err := core.FitKWOptions(train, g.Name, TrainingBatch, core.KWOptions{Training: true})
	if err != nil {
		return nil, err
	}
	res.KernelCount, res.ModelCount = kw.KernelCount(), kw.ModelCount()

	var evals []core.Eval
	for _, r := range test.Networks {
		if r.BatchSize != TrainingBatch || r.Task != string(dnn.TaskImageClassification) {
			continue
		}
		net, err := l.Network(r.Network)
		if err != nil {
			return nil, err
		}
		p, err := kw.PredictNetwork(net, TrainingBatch)
		if err != nil {
			return nil, err
		}
		evals = append(evals, core.Eval{Network: r.Network, Predicted: p, Measured: r.E2ESeconds})
	}
	if len(evals) == 0 {
		return nil, fmt.Errorf("bench: training extension: empty test set")
	}
	res.Curve = newSCurve("KW-training", g.Name, evals)

	// Inference-mode baseline at the same batch size.
	iTrain, iTest := l.Split(inferDS)
	ikw, err := core.FitKW(iTrain, g.Name, TrainingBatch)
	if err != nil {
		return nil, err
	}
	iEvals, err := l.evalAt(ikw, iTest, dnn.TaskImageClassification, TrainingBatch)
	if err != nil {
		return nil, err
	}
	res.InferenceError = core.MeanRelError(iEvals)
	return res, nil
}

// Render implements the result-rendering convention.
func (r *TrainingExtensionResult) Render() string {
	out := renderSCurve(fmt.Sprintf("Training extension: KW on training steps (%s, BS=%d)",
		r.GPU, TrainingBatch), r.Curve)
	rows := [][]string{{"metric", "value"}}
	rows = append(rows,
		[]string{"inference-mode KW error (same batch)", fmt.Sprintf("%.3f", r.InferenceError)},
		[]string{"mean training-step / inference-step time", fmt.Sprintf("%.2f×", r.StepOverFwd)},
		[]string{"kernels → models", fmt.Sprintf("%d → %d", r.KernelCount, r.ModelCount)},
		[]string{"OOM runs dropped", fmt.Sprintf("%d", r.OOMDropped)})
	return out + "\n" + renderTable("Training extension (cont.)", rows)
}
