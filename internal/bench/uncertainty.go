package bench

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/units"
)

// UncertaintyResult validates the KW model's prediction intervals: for every
// held-out network, the measured kernel-time total should fall inside the
// ±2σ band about 95 % of the time. (The intervals quantify the regression
// layer's scatter, so the target quantity is the summed kernel time — the
// end-to-end wall time additionally carries the systematic pipelining gap
// the small-batch correction models.)
type UncertaintyResult struct {
	GPU string
	// Coverage is the fraction of held-out networks whose measured kernel
	// total falls in the ±2σ interval.
	Coverage float64
	// MeanRelMargin is the average 2σ half-width relative to the prediction
	// — how tight the intervals are.
	MeanRelMargin float64
	// Networks is the evaluated network count.
	Networks int
}

// Uncertainty evaluates interval coverage on the canonical split.
func Uncertainty(l *Lab, g gpu.Spec) (*UncertaintyResult, error) {
	ds, err := l.Dataset(g)
	if err != nil {
		return nil, err
	}
	train, test := l.Split(ds)
	kw, err := core.FitKW(train, g.Name, TrainBatch)
	if err != nil {
		return nil, err
	}

	// Measured kernel totals per held-out network, from the kernel records.
	measured := map[string]units.Seconds{}
	recsOf := map[string][]dataset.KernelRecord{}
	for _, r := range test.Kernels {
		if r.GPU != g.Name || r.BatchSize != TrainBatch {
			continue
		}
		measured[r.Network] += r.Seconds
		recsOf[r.Network] = append(recsOf[r.Network], r)
	}
	taskOf := map[string]string{}
	for _, r := range test.Networks {
		taskOf[r.Network] = r.Task
	}

	res := &UncertaintyResult{GPU: g.Name}
	covered := 0
	var relMargin float64
	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		meas := measured[name]
		if taskOf[name] != string(dnn.TaskImageClassification) {
			continue
		}
		iv := kw.PredictRecordsInterval(recsOf[name])
		if iv.Contains(meas) {
			covered++
		}
		if iv.Predicted > 0 {
			relMargin += 2 * float64(iv.Margin) / float64(iv.Predicted)
		}
		res.Networks++
	}
	if res.Networks == 0 {
		return nil, fmt.Errorf("bench: uncertainty: no held-out kernel records")
	}
	res.Coverage = float64(covered) / float64(res.Networks)
	res.MeanRelMargin = relMargin / float64(res.Networks)
	return res, nil
}

// Render implements the result-rendering convention.
func (r *UncertaintyResult) Render() string {
	rows := [][]string{{"metric", "value"}}
	rows = append(rows,
		[]string{"held-out networks", fmt.Sprintf("%d", r.Networks)},
		[]string{"±2σ coverage of measured kernel totals", fmt.Sprintf("%.0f%%", r.Coverage*100)},
		[]string{"mean interval half-width (2σ / prediction)", fmt.Sprintf("%.1f%%", r.MeanRelMargin*100)})
	return renderTable(fmt.Sprintf("Uncertainty: KW prediction-interval coverage (%s)", r.GPU), rows)
}
