// Package cache provides a small sharded, bounded, concurrency-safe
// memoization cache with in-flight deduplication (singleflight semantics):
// concurrent callers asking for the same missing key run the compute function
// exactly once and all receive its result. It backs the compiled-prediction-
// plan layer in internal/core, where a cache miss is expensive (a full plan
// compilation) and many goroutines may ask for the same (network, model) pair
// at once.
//
// The zero value is ready to use, which lets model structs embed a cache by
// value without constructor plumbing; capacity defaults apply lazily.
package cache

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Aggregate observability counters across every cache instance in the
// process, registered once against the global registry. Per-instance detail
// stays available through Stats(); these give the serving surface one
// process-wide view of cache behaviour at pure-atomic cost.
var (
	obsHits = obs.Default().Counter("cache_hits_total",
		"Cache lookups served from a present entry, across all caches.")
	obsMisses = obs.Default().Counter("cache_misses_total",
		"Cache lookups that started a new computation, across all caches.")
	obsEvictions = obs.Default().Counter("cache_evictions_total",
		"Entries evicted by the per-shard LRU policy, across all caches.")
	obsShared = obs.Default().Counter("cache_singleflight_shared_total",
		"Lookups that joined an in-flight computation instead of starting one.")
)

// Hasher is implemented by key types so shard selection needs no reflection:
// the key carries its own (precomputed) hash.
type Hasher interface{ Hash() uint64 }

// numShards is the fixed shard count; sixteen ways is plenty for the
// prediction-serving workloads this backs while keeping the zero value small.
const numShards = 16

// DefaultCapacity bounds the total entry count when Capacity is left zero.
const DefaultCapacity = 1024

// Sharded is a sharded LRU cache with singleflight computation. Keys must be
// comparable and carry their own hash (see Hasher). The zero value is valid.
type Sharded[K interface {
	comparable
	Hasher
}, V any] struct {
	// Capacity bounds the total number of cached entries (0 = DefaultCapacity).
	// Eviction is LRU per shard; entries still being computed are never
	// evicted. Set it before first use; later changes apply on the next
	// insertion into each shard.
	Capacity int

	hits, misses atomic.Int64
	lookups      atomic.Int64
	inserts      atomic.Int64
	evictions    atomic.Int64
	shared       atomic.Int64
	shards       [numShards]shard[K, V]
}

// NumShards is the fixed shard count of every Sharded instance, exported so
// externally partitioned deployments (one cache per replica, keys routed by
// hash) can reason about per-shard capacity.
const NumShards = numShards

// ShardFor returns the index of the shard that owns key. Ownership is a pure
// function of the key's hash, so an external router that partitions a key
// space across replicas can use it to verify which lock domain (and which
// LRU budget) a key lands in.
func (c *Sharded[K, V]) ShardFor(key K) int { return int(key.Hash() % numShards) }

// shard is one lock domain: a map plus an intrusive LRU list (front = most
// recently used).
type shard[K comparable, V any] struct {
	mu          sync.Mutex
	entries     map[K]*entry[K, V]
	front, back *entry[K, V]
}

// entry is one cached (or in-flight) computation. val and err are written
// once, before wg.Done, so waiters reading after wg.Wait observe them safely.
type entry[K comparable, V any] struct {
	key        K
	wg         sync.WaitGroup
	val        V
	err        error
	inflight   bool // guarded by shard.mu
	prev, next *entry[K, V]
}

// GetOrCompute returns the cached value for the key, computing it with fn on
// a miss. Concurrent callers for the same missing key share one fn call.
// Errors are returned to every waiter of that flight but are not cached:
// the next caller retries.
func (c *Sharded[K, V]) GetOrCompute(key K, fn func() (V, error)) (V, error) {
	s := &c.shards[key.Hash()%numShards]
	c.lookups.Add(1)

	s.mu.Lock()
	if s.entries == nil {
		s.entries = make(map[K]*entry[K, V])
	}
	if e, ok := s.entries[key]; ok {
		s.moveToFront(e)
		joined := e.inflight
		s.mu.Unlock()
		c.hits.Add(1)
		obsHits.Inc()
		if joined {
			c.shared.Add(1)
			obsShared.Inc()
		}
		e.wg.Wait()
		return e.val, e.err
	}
	e := &entry[K, V]{key: key, inflight: true}
	e.wg.Add(1)
	s.entries[key] = e
	s.pushFront(e)
	c.inserts.Add(1)
	if n := s.evict(c.perShardCapacity()); n > 0 {
		c.evictions.Add(int64(n))
		obsEvictions.Add(int64(n))
	}
	s.mu.Unlock()
	c.misses.Add(1)
	obsMisses.Inc()

	completed := false
	defer func() {
		if !completed {
			// fn panicked: drop the entry and release waiters (they see the
			// zero value and a nil error only after the panic already
			// propagated to the caller; the entry is gone either way).
			s.remove(e)
			e.wg.Done()
		}
	}()
	v, err := fn()
	completed = true

	s.mu.Lock()
	e.val, e.err = v, err
	e.inflight = false
	if err != nil {
		s.removeLocked(e)
	}
	s.mu.Unlock()
	e.wg.Done()
	return v, err
}

// Get returns the cached value without computing, waiting for an in-flight
// computation if one is running. Get counts against the same hit/miss
// statistics as GetOrCompute (an absent key or a failed flight is a miss),
// so a Get-heavy read path is visible in Stats and the cache metrics.
//
//dnnperf:allocfree
func (c *Sharded[K, V]) Get(key K) (V, bool) {
	s := &c.shards[key.Hash()%numShards]
	c.lookups.Add(1)
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.moveToFront(e)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		obsMisses.Inc()
		var zero V
		return zero, false
	}
	e.wg.Wait()
	if e.err != nil {
		c.misses.Add(1)
		obsMisses.Inc()
		var zero V
		return zero, false
	}
	c.hits.Add(1)
	obsHits.Inc()
	return e.val, true
}

// Len returns the total number of entries (including in-flight ones).
func (c *Sharded[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Clear drops every completed entry (in-flight computations finish and are
// dropped by their creators only on error; their results remain reachable by
// waiters but are unlinked from the cache). Use it to invalidate after the
// backing data changes.
func (c *Sharded[K, V]) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = nil
		s.front, s.back = nil, nil
		s.mu.Unlock()
	}
}

// Hits and Misses report cumulative lookup statistics.
func (c *Sharded[K, V]) Hits() int64   { return c.hits.Load() }
func (c *Sharded[K, V]) Misses() int64 { return c.misses.Load() }

// Stats is a point-in-time snapshot of one cache instance.
type Stats struct {
	// Hits counts lookups that found an entry (including joins of an
	// in-flight computation); Misses counts lookups that started one (or,
	// for Get, found nothing). Hits + Misses always equals Lookups once the
	// counted operations have finished.
	Hits, Misses int64
	// Lookups counts every Get and GetOrCompute call.
	Lookups int64
	// Inserts counts entries created by GetOrCompute misses; Evictions can
	// never exceed it.
	Inserts int64
	// Evictions counts entries dropped by the per-shard LRU policy.
	Evictions int64
	// SingleflightShared counts lookups that joined an in-flight
	// computation instead of starting a duplicate (a subset of Hits).
	SingleflightShared int64
	// Entries is the current total entry count; Pinned is how many of them
	// are still being computed (in-flight entries are exempt from eviction).
	Entries, Pinned int
	// PerShard is the current entry count of each shard.
	PerShard [numShards]int
}

// Stats captures the cache's cumulative counters and current occupancy.
// Counters are read atomically; occupancy is read shard by shard, so under
// concurrent writes the totals are per-shard-consistent, not globally
// frozen — fine for the telemetry this feeds.
func (c *Sharded[K, V]) Stats() Stats {
	st := Stats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Lookups:            c.lookups.Load(),
		Inserts:            c.inserts.Load(),
		Evictions:          c.evictions.Load(),
		SingleflightShared: c.shared.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.PerShard[i] = len(s.entries)
		st.Entries += len(s.entries)
		for _, e := range s.entries {
			if e.inflight {
				st.Pinned++
			}
		}
		s.mu.Unlock()
	}
	return st
}

// RegisterMetrics exposes this instance's occupancy and counters through
// the global obs registry under the given metric name prefix (e.g.
// "core_kw_plan_cache" yields core_kw_plan_cache_entries and friends).
// Registering the same prefix again rebinds the metrics to the newest
// instance — the behaviour a serving process wants when a model is refit.
func (c *Sharded[K, V]) RegisterMetrics(prefix string) {
	r := obs.Default()
	r.GaugeFunc(prefix+"_entries", "Current entry count of the "+prefix+" cache.",
		func() int64 { return int64(c.Len()) })
	r.GaugeFunc(prefix+"_pinned", "In-flight (eviction-exempt) entries of the "+prefix+" cache.",
		func() int64 { return int64(c.Stats().Pinned) })
	r.GaugeFunc(prefix+"_hits", "Cumulative hits of the "+prefix+" cache.",
		func() int64 { return c.hits.Load() })
	r.GaugeFunc(prefix+"_misses", "Cumulative misses of the "+prefix+" cache.",
		func() int64 { return c.misses.Load() })
	r.GaugeFunc(prefix+"_evictions", "Cumulative LRU evictions of the "+prefix+" cache.",
		func() int64 { return c.evictions.Load() })
}

func (c *Sharded[K, V]) perShardCapacity() int {
	total := c.Capacity
	if total <= 0 {
		total = DefaultCapacity
	}
	per := (total + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	return per
}

// remove unlinks an entry under the shard lock.
func (s *shard[K, V]) remove(e *entry[K, V]) {
	s.mu.Lock()
	s.removeLocked(e)
	s.mu.Unlock()
}

func (s *shard[K, V]) removeLocked(e *entry[K, V]) {
	if s.entries == nil {
		return
	}
	if cur, ok := s.entries[e.key]; !ok || cur != e {
		return // already evicted or replaced (e.g. by Clear)
	}
	delete(s.entries, e.key)
	s.unlink(e)
}

// evict trims the shard to the capacity, oldest first, skipping entries that
// are still being computed. It returns the number of entries dropped.
func (s *shard[K, V]) evict(capacity int) int {
	n := 0
	for len(s.entries) > capacity {
		victim := s.back
		for victim != nil && victim.inflight {
			victim = victim.prev
		}
		if victim == nil {
			break // everything in flight; over-capacity is transient
		}
		delete(s.entries, victim.key)
		s.unlink(victim)
		n++
	}
	return n
}

// moveToFront marks an entry most-recently-used.
//
//dnnperf:allocfree
func (s *shard[K, V]) moveToFront(e *entry[K, V]) {
	if s.front == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

//dnnperf:allocfree
func (s *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = s.front
	if s.front != nil {
		s.front.prev = e
	}
	s.front = e
	if s.back == nil {
		s.back = e
	}
}

//dnnperf:allocfree
func (s *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.front == e {
		s.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.back == e {
		s.back = e.prev
	}
	e.prev, e.next = nil, nil
}
