package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// key is a trivial Hasher for tests: the hash IS the id, so shard placement
// is fully controlled by the test.
type key struct{ id uint64 }

func (k key) Hash() uint64 { return k.id }

func TestGetOrComputeBasic(t *testing.T) {
	var c Sharded[key, int]
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }

	v, err := c.GetOrCompute(key{1}, compute)
	if err != nil || v != 42 {
		t.Fatalf("first GetOrCompute = %d, %v; want 42, nil", v, err)
	}
	v, err = c.GetOrCompute(key{1}, compute)
	if err != nil || v != 42 {
		t.Fatalf("second GetOrCompute = %d, %v; want 42, nil", v, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times; want 1", calls)
	}
	if got, ok := c.Get(key{1}); !ok || got != 42 {
		t.Fatalf("Get = %d, %t; want 42, true", got, ok)
	}
	if _, ok := c.Get(key{2}); ok {
		t.Fatal("Get(uncached) reported a hit")
	}
	// One GetOrCompute miss + one GetOrCompute hit, one Get hit + one Get
	// miss: both lookup paths count.
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d; want 2, 2", c.Hits(), c.Misses())
	}
	st := c.Stats()
	if st.Lookups != 4 || st.Inserts != 1 {
		t.Fatalf("lookups=%d inserts=%d; want 4, 1", st.Lookups, st.Inserts)
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	var c Sharded[key, int]
	var computes atomic.Int64
	release := make(chan struct{})

	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrCompute(key{7}, func() (int, error) {
				computes.Add(1)
				<-release // hold every waiter on the in-flight entry
				return 99, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrency; want 1", n)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("goroutine %d saw %d; want 99", i, v)
		}
	}
}

func TestErrorsNotCached(t *testing.T) {
	var c Sharded[key, int]
	boom := errors.New("boom")
	calls := 0

	_, err := c.GetOrCompute(key{3}, func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed compute left %d entries", c.Len())
	}
	v, err := c.GetOrCompute(key{3}, func() (int, error) { calls++; return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("retry = %d, %v; want 5, nil", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times; want 2 (errors must not be cached)", calls)
	}
}

func TestEvictionBound(t *testing.T) {
	c := Sharded[key, int]{Capacity: 32}
	// All keys land on one shard (same hash low bits) to stress its LRU list.
	const shardStride = 16
	for i := 0; i < 100; i++ {
		id := uint64(i * shardStride)
		if _, err := c.GetOrCompute(key{id}, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	perShard := (c.Capacity + numShards - 1) / numShards
	if got := c.Len(); got > perShard {
		t.Fatalf("single-shard fill holds %d entries; want <= %d", got, perShard)
	}
	// The most recent key must have survived.
	if _, ok := c.Get(key{99 * shardStride}); !ok {
		t.Fatal("most recently inserted key was evicted")
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	c := Sharded[key, int]{Capacity: numShards * 2} // 2 per shard
	const stride = 16
	mk := func(i int) key { return key{uint64(i * stride)} }

	for i := 0; i < 2; i++ {
		c.GetOrCompute(mk(i), func() (int, error) { return i, nil })
	}
	// Touch key 0 so key 1 becomes least-recently-used, then overflow.
	c.Get(mk(0))
	c.GetOrCompute(mk(2), func() (int, error) { return 2, nil })

	if _, ok := c.Get(mk(0)); !ok {
		t.Fatal("recently touched key was evicted")
	}
	if _, ok := c.Get(mk(1)); ok {
		t.Fatal("least-recently-used key survived eviction")
	}
}

func TestClear(t *testing.T) {
	var c Sharded[key, int]
	for i := 0; i < 10; i++ {
		id := uint64(i)
		c.GetOrCompute(key{id}, func() (int, error) { return i, nil })
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d before Clear; want 10", c.Len())
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear; want 0", c.Len())
	}
	calls := 0
	v, err := c.GetOrCompute(key{0}, func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 || calls != 1 {
		t.Fatalf("post-Clear GetOrCompute = %d, %v (calls %d); want recompute", v, err, calls)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := Sharded[key, string]{Capacity: 64}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint64(i % 100)
				want := fmt.Sprintf("v%d", id)
				v, err := c.GetOrCompute(key{id}, func() (string, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("worker %d: key %d = %q, %v; want %q", w, id, v, err, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
