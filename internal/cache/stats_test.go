package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestStatsReconcileUnderLoad drives a small-capacity cache with concurrent
// mixed Get / GetOrCompute traffic over a key space much larger than the
// capacity, so hits, misses, singleflight joins and LRU evictions all occur
// at once, then asserts the Stats counters reconcile:
//
//	hits + misses == lookups   (every counted lookup resolves one way)
//	evictions     <= inserts   (only inserted entries can be evicted)
//	shared        <= hits      (joins are a subset of hits)
//
// Run under -race this doubles as the concurrency-safety test for the new
// counters.
func TestStatsReconcileUnderLoad(t *testing.T) {
	c := Sharded[key, string]{Capacity: 32}
	const workers, opsPerWorker, keySpace = 8, 500, 256

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				id := uint64(rng.Intn(keySpace))
				want := fmt.Sprintf("v%d", id)
				if rng.Intn(3) == 0 {
					if v, ok := c.Get(key{id}); ok && v != want {
						t.Errorf("Get(%d) = %q, want %q", id, v, want)
						return
					}
					continue
				}
				v, err := c.GetOrCompute(key{id}, func() (string, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("GetOrCompute(%d) = %q, %v; want %q", id, v, err, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.Lookups != workers*opsPerWorker {
		t.Fatalf("lookups = %d, want %d", st.Lookups, workers*opsPerWorker)
	}
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("hits(%d) + misses(%d) = %d, want lookups %d",
			st.Hits, st.Misses, st.Hits+st.Misses, st.Lookups)
	}
	if st.Inserts == 0 || st.Inserts > st.Misses {
		t.Fatalf("inserts = %d, want in (0, misses=%d]", st.Inserts, st.Misses)
	}
	if st.Evictions == 0 {
		t.Fatal("capacity 32 over a 256-key space evicted nothing; the load pattern is too tame")
	}
	if st.Evictions > st.Inserts {
		t.Fatalf("evictions (%d) exceed inserts (%d)", st.Evictions, st.Inserts)
	}
	if st.SingleflightShared > st.Hits {
		t.Fatalf("singleflight joins (%d) exceed hits (%d)", st.SingleflightShared, st.Hits)
	}
	// Occupancy must respect the configured bound (in-flight entries are
	// all resolved by now, so no transient overshoot remains).
	if st.Entries > 32+NumShards {
		t.Fatalf("entries = %d, exceeds capacity slack", st.Entries)
	}
	if st.Pinned != 0 {
		t.Fatalf("pinned = %d after quiescence, want 0", st.Pinned)
	}
}

// TestShardFor pins external shard ownership to the key's hash.
func TestShardFor(t *testing.T) {
	var c Sharded[key, int]
	for _, id := range []uint64{0, 1, 15, 16, 17, 1 << 40} {
		if got, want := c.ShardFor(key{id}), int(id%NumShards); got != want {
			t.Fatalf("ShardFor(%d) = %d, want %d", id, got, want)
		}
	}
}
