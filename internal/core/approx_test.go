package core

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		name    string
		a, b    float64
		eps     float64
		want    bool
		comment string
	}{
		{"identical", 1.5, 1.5, 1e-12, true, "fast path"},
		{"zero-zero", 0, 0, 1e-12, true, "exact zeros"},
		{"last-bit", 0.1 + 0.2, 0.3, 1e-12, true, "classic rounding gap"},
		{"clearly-different", 1.0, 1.1, 1e-12, false, ""},
		{"relative-large", 1e12, 1e12 * (1 + 1e-13), 1e-12, true, "scaled tolerance above 1"},
		{"relative-large-fail", 1e12, 1e12 * (1 + 1e-11), 1e-12, false, ""},
		{"absolute-small", 1e-15, 2e-15, 1e-12, true, "tiny values within absolute eps"},
		{"absolute-small-fail", 1e-3, 2e-3, 1e-12, false, ""},
		{"both-inf", math.Inf(1), math.Inf(1), 1e-12, true, "equal infinities"},
		{"inf-finite", math.Inf(1), 1, 1e-12, false, ""},
		{"nan", math.NaN(), math.NaN(), 1e-12, false, "NaN equals nothing"},
		{"sign", 1e-13, -1e-13, 1e-12, true, "straddles zero within eps"},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.eps); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v, %v) = %v, want %v %s",
				c.name, c.a, c.b, c.eps, got, c.want, c.comment)
		}
		// Symmetry.
		if got := ApproxEqual(c.b, c.a, c.eps); got != c.want {
			t.Errorf("%s: ApproxEqual is asymmetric for (%v, %v)", c.name, c.a, c.b)
		}
	}
}

func TestDefaultEpsilon(t *testing.T) {
	if !ApproxEqual(0.1+0.2, 0.3, DefaultEpsilon) {
		t.Fatal("DefaultEpsilon must absorb one-ulp rounding differences")
	}
	if ApproxEqual(1.0, 1.0001, DefaultEpsilon) {
		t.Fatal("DefaultEpsilon must not absorb real differences")
	}
}
