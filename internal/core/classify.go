package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/regression"
)

// Driver identifies which layer-level variable a kernel's execution time is
// linearly correlated with (observation O5). It is *learned from data* by
// ClassifyKernels — the classification the paper automates by "building
// linear regression for all three groups and comparing the R² value".
type Driver string

// The three driver classes of §4 O5.
const (
	DriverInput     Driver = "input"     // pre-processing kernels: x = N·C·H·W of the layer input
	DriverOperation Driver = "operation" // main kernels: x = layer FLOPs
	DriverOutput    Driver = "output"    // post-processing kernels: x = N·C·H·W of the layer output
)

// Drivers lists the classes in a stable order.
func Drivers() []Driver { return []Driver{DriverInput, DriverOperation, DriverOutput} }

// driverX extracts the candidate regressor for a kernel record.
func driverX(r dataset.KernelRecord, d Driver) float64 {
	switch d {
	case DriverInput:
		return float64(r.LayerInputElems)
	case DriverOperation:
		return float64(r.LayerFLOPs)
	default:
		return float64(r.LayerOutputElems)
	}
}

// Classification is the learned model of one kernel name.
type Classification struct {
	// Kernel is the kernel implementation name.
	Kernel string
	// Driver is the winning class.
	Driver Driver
	// Line is the regression on the winning driver variable.
	Line regression.Line
	// R2 reports the fit quality of each candidate driver (the quantities
	// Figure 8 contrasts).
	R2 map[Driver]float64
	// N is the number of training measurements.
	N int
}

// ClassifyKernels fits, for every kernel name in the records, one regression
// per candidate driver variable, and classifies the kernel into the class
// with the highest R² (§4 O5). Kernels whose winning fit is degenerate
// (e.g. observed only at a single problem size) are classified with a
// zero-slope line through their mean duration.
func ClassifyKernels(recs []dataset.KernelRecord) map[string]Classification {
	byKernel := map[string][]dataset.KernelRecord{}
	for _, r := range recs {
		byKernel[r.Kernel] = append(byKernel[r.Kernel], r)
	}

	out := make(map[string]Classification, len(byKernel))
	for name, rs := range byKernel {
		c := Classification{Kernel: name, R2: map[Driver]float64{}, N: len(rs)}
		best := -1.0
		for _, d := range Drivers() {
			xs := make([]float64, len(rs))
			ys := make([]float64, len(rs))
			for i, r := range rs {
				xs[i] = driverX(r, d)
				ys[i] = float64(r.Seconds)
			}
			line, err := regression.Fit(xs, ys)
			if err != nil {
				continue
			}
			// A negative slope is physically meaningless for a work metric;
			// penalize it so another driver wins if one exists.
			r2 := line.R2
			if line.Slope < 0 {
				r2 -= 1
			}
			c.R2[d] = line.R2
			if r2 > best {
				best = r2
				c.Driver = d
				c.Line = line
			}
		}
		if c.Driver == "" {
			// Degenerate everywhere: constant-time kernel at its mean.
			var mean float64
			for _, r := range rs {
				mean += float64(r.Seconds)
			}
			mean /= float64(len(rs))
			c.Driver = DriverOutput
			c.Line = regression.Line{Intercept: mean, N: len(rs)}
		}
		out[name] = c
	}
	return out
}

// DriverOf returns the learned driver for a kernel, with ok=false for
// kernels absent from the classification.
func DriverOf(classif map[string]Classification, kernel string) (Driver, bool) {
	c, ok := classif[kernel]
	if !ok {
		return "", false
	}
	return c.Driver, true
}

// SortedKernels returns the classified kernel names in sorted order.
func SortedKernels(classif map[string]Classification) []string {
	out := make([]string, 0, len(classif))
	for k := range classif {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MinKernelObservations is the minimum number of training measurements a
// kernel needs before it earns a dedicated regression; sparser kernels are
// predicted through their family's pooled model (the paper's models average
// ~2,920 points each — a kernel seen twice cannot support a line).
const MinKernelObservations = 8

// FamilyOf strips the size-variant suffixes from a kernel name, yielding the
// implementation family: "winograd_gemm_128x64" → "winograd_gemm",
// "depthwise_conv_k3_s2" → "depthwise_conv". Tokens are dropped from the
// first one containing a digit.
func FamilyOf(name string) string {
	end := len(name)
	for i := 0; i < len(name); i++ {
		if name[i] >= '0' && name[i] <= '9' {
			// Cut at the preceding underscore, if any.
			j := i
			for j > 0 && name[j-1] != '_' {
				j--
			}
			if j > 0 {
				end = j - 1
			}
			break
		}
	}
	return name[:end]
}

// ClassifyFamilies runs the same R²-based classification at kernel-family
// granularity, pooling all size variants of each family.
func ClassifyFamilies(recs []dataset.KernelRecord) map[string]Classification {
	grouped := make([]dataset.KernelRecord, len(recs))
	copy(grouped, recs)
	for i := range grouped {
		grouped[i].Kernel = FamilyOf(grouped[i].Kernel)
	}
	return ClassifyKernels(grouped)
}

// Group is a cluster of kernels sharing one regression model (§5.4:
// "we combine kernels that demonstrate similar linear relationships and only
// build one model for these kernels" — 182 kernels reduce to 83 models on
// A100).
type Group struct {
	// Driver is the shared driver class of the group's kernels.
	Driver Driver
	// Kernels lists the member kernel names.
	Kernels []string
	// Line is the pooled regression over all members' measurements.
	Line regression.Line
	// RMSE is the pooled fit's root-mean-square residual, the per-kernel
	// uncertainty that prediction intervals aggregate.
	RMSE float64
}

// slopeMergeRatio bounds how far apart two kernels' slopes may be and still
// share a group model.
const slopeMergeRatio = 1.35

// GroupKernels clusters classified kernels by (driver, slope proximity) and
// refits one pooled regression per group. Records are needed to refit the
// pooled lines. The group order and membership are deterministic.
func GroupKernels(classif map[string]Classification, recs []dataset.KernelRecord) ([]Group, map[string]int) {
	byKernel := map[string][]dataset.KernelRecord{}
	for _, r := range recs {
		byKernel[r.Kernel] = append(byKernel[r.Kernel], r)
	}

	var groups []Group
	groupOf := make(map[string]int, len(classif))

	for _, d := range Drivers() {
		// Collect this driver's kernels, sorted by slope.
		type ks struct {
			name  string
			slope float64
		}
		var members []ks
		for name, c := range classif {
			if c.Driver == d && c.N >= MinKernelObservations {
				members = append(members, ks{name, c.Line.Slope})
			}
		}
		sort.Slice(members, func(i, j int) bool {
			if members[i].slope < members[j].slope {
				return true
			}
			if members[i].slope > members[j].slope {
				return false
			}
			return members[i].name < members[j].name
		})

		// Greedy slope clustering.
		for i := 0; i < len(members); {
			j := i + 1
			anchor := members[i].slope
			for j < len(members) {
				s := members[j].slope
				if anchor <= 0 || s <= 0 {
					// Non-positive slopes (constant-time kernels) group only
					// with themselves.
					break
				}
				if s > anchor*slopeMergeRatio {
					break
				}
				j++
			}
			g := Group{Driver: d}
			var xs, ys []float64
			for _, m := range members[i:j] {
				g.Kernels = append(g.Kernels, m.name)
				groupOf[m.name] = len(groups)
				for _, r := range byKernel[m.name] {
					xs = append(xs, driverX(r, d))
					ys = append(ys, float64(r.Seconds))
				}
			}
			if line, stats, err := regression.FitDetail(xs, ys); err == nil {
				g.Line = line
				g.RMSE = stats.RMSE
			} else {
				// Degenerate pooled data: constant model at the mean.
				g.Line = regression.Line{Intercept: regression.Mean(ys), N: len(ys)}
			}
			groups = append(groups, g)
			i = j
		}
	}
	return groups, groupOf
}
