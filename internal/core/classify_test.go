package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/units"
)

// plantRecords synthesizes kernel records whose duration is an exact linear
// function of the given driver, with distinct, uncorrelated values for the
// other two candidates so the classifier has a real decision to make.
func plantRecords(kernel string, d Driver, slope, intercept float64, n int, seed int64) []dataset.KernelRecord {
	rnd := rand.New(rand.NewSource(seed))
	recs := make([]dataset.KernelRecord, n)
	for i := range recs {
		flops := int64(rnd.Intn(1_000_000) + 1000)
		in := int64(rnd.Intn(1_000_000) + 1000)
		out := int64(rnd.Intn(1_000_000) + 1000)
		var x float64
		switch d {
		case DriverInput:
			x = float64(in)
		case DriverOperation:
			x = float64(flops)
		default:
			x = float64(out)
		}
		recs[i] = dataset.KernelRecord{
			Network: "synthetic", GPU: "G", BatchSize: 512,
			LayerIndex: i, LayerKind: "Conv2D", LayerSignature: "sig",
			Kernel:     kernel,
			LayerFLOPs: units.FLOPs(flops), LayerInputElems: in, LayerOutputElems: out,
			Seconds: units.Seconds(slope*x + intercept + rnd.NormFloat64()*intercept*0.01),
		}
	}
	return recs
}

func TestClassifyRecoversPlantedDrivers(t *testing.T) {
	var recs []dataset.KernelRecord
	recs = append(recs, plantRecords("pre_kernel", DriverInput, 2e-9, 1e-5, 200, 1)...)
	recs = append(recs, plantRecords("main_kernel", DriverOperation, 5e-9, 2e-5, 200, 2)...)
	recs = append(recs, plantRecords("post_kernel", DriverOutput, 3e-9, 1e-5, 200, 3)...)

	classif := ClassifyKernels(recs)
	if len(classif) != 3 {
		t.Fatalf("classified %d kernels", len(classif))
	}
	want := map[string]Driver{
		"pre_kernel":  DriverInput,
		"main_kernel": DriverOperation,
		"post_kernel": DriverOutput,
	}
	for k, d := range want {
		c, ok := classif[k]
		if !ok {
			t.Fatalf("kernel %q missing", k)
		}
		if c.Driver != d {
			t.Errorf("%s: classified as %s, want %s (R²: %v)", k, c.Driver, d, c.R2)
		}
		if c.R2[d] < 0.99 {
			t.Errorf("%s: winning R² = %v", k, c.R2[d])
		}
		if c.Line.Slope <= 0 {
			t.Errorf("%s: slope = %v", k, c.Line.Slope)
		}
		if c.N != 200 {
			t.Errorf("%s: N = %d", k, c.N)
		}
	}
}

func TestClassifyDegenerateKernel(t *testing.T) {
	// A kernel observed at a single problem size cannot support a line; it
	// must fall back to a constant-at-mean model rather than fail.
	recs := []dataset.KernelRecord{
		{Kernel: "const", LayerFLOPs: 100, LayerInputElems: 100, LayerOutputElems: 100, Seconds: 2e-5},
		{Kernel: "const", LayerFLOPs: 100, LayerInputElems: 100, LayerOutputElems: 100, Seconds: 4e-5},
	}
	classif := ClassifyKernels(recs)
	c := classif["const"]
	if c.Line.Slope != 0 {
		t.Fatalf("degenerate kernel slope = %v", c.Line.Slope)
	}
	if diff := c.Line.Intercept - 3e-5; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("degenerate kernel mean = %v", c.Line.Intercept)
	}
}

func TestClassifyPenalizesNegativeSlopes(t *testing.T) {
	// Duration increases with input but happens to decrease against output;
	// the classifier must not pick the physically meaningless negative fit
	// even if its |R²| is high.
	rnd := rand.New(rand.NewSource(4))
	var recs []dataset.KernelRecord
	for i := 0; i < 100; i++ {
		in := int64(1000 + i*100)
		recs = append(recs, dataset.KernelRecord{
			Kernel:     "anti",
			LayerFLOPs: units.FLOPs(rnd.Intn(1000) + 1),
			// Output is anti-correlated with input.
			LayerInputElems:  in,
			LayerOutputElems: 2_000_000 - in,
			Seconds:          units.Seconds(2e-9*float64(in) + 1e-6),
		})
	}
	c := ClassifyKernels(recs)["anti"]
	if c.Driver != DriverInput {
		t.Fatalf("classified as %s, want input (R²: %v)", c.Driver, c.R2)
	}
}

func TestGroupKernelsMergesSimilarSlopes(t *testing.T) {
	var recs []dataset.KernelRecord
	// Three input-driven kernels with nearly equal slopes and one far away.
	recs = append(recs, plantRecords("a", DriverInput, 1.00e-9, 1e-6, 100, 5)...)
	recs = append(recs, plantRecords("b", DriverInput, 1.10e-9, 1e-6, 100, 6)...)
	recs = append(recs, plantRecords("c", DriverInput, 1.25e-9, 1e-6, 100, 7)...)
	recs = append(recs, plantRecords("far", DriverInput, 50e-9, 1e-6, 100, 8)...)

	classif := ClassifyKernels(recs)
	groups, groupOf := GroupKernels(classif, recs)
	if groupOf["a"] != groupOf["b"] || groupOf["b"] != groupOf["c"] {
		t.Fatalf("similar slopes should share a group: a=%d b=%d c=%d",
			groupOf["a"], groupOf["b"], groupOf["c"])
	}
	if groupOf["far"] == groupOf["a"] {
		t.Fatal("distant slope merged into the wrong group")
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	// Pooled line of the merged group must land between the member slopes.
	g := groups[groupOf["a"]]
	if g.Line.Slope < 0.9e-9 || g.Line.Slope > 1.35e-9 {
		t.Fatalf("pooled slope = %v", g.Line.Slope)
	}
	if g.Driver != DriverInput {
		t.Fatalf("group driver = %s", g.Driver)
	}
}

func TestGroupKernelsReducesModelCount(t *testing.T) {
	// Many kernels, few distinct behaviours → far fewer groups (the paper's
	// 182 kernels → 83 models).
	var recs []dataset.KernelRecord
	names := 0
	for i := 0; i < 20; i++ {
		slope := 1e-9 * (1 + 0.05*float64(i%4)) // 4 behaviour clusters
		name := string(rune('a'+i)) + "_kernel"
		recs = append(recs, plantRecords(name, DriverOperation, slope, 1e-6, 50, int64(100+i))...)
		names++
	}
	classif := ClassifyKernels(recs)
	groups, _ := GroupKernels(classif, recs)
	if len(groups) >= names {
		t.Fatalf("grouping did not reduce model count: %d groups for %d kernels", len(groups), names)
	}
}

func TestGroupSparseKernelsExcluded(t *testing.T) {
	recs := plantRecords("dense", DriverInput, 1e-9, 1e-6, 100, 9)
	recs = append(recs, plantRecords("sparse", DriverInput, 1e-9, 1e-6, MinKernelObservations-1, 10)...)
	classif := ClassifyKernels(recs)
	_, groupOf := GroupKernels(classif, recs)
	if _, ok := groupOf["sparse"]; ok {
		t.Fatal("sparse kernel should not get its own group model")
	}
	if _, ok := groupOf["dense"]; !ok {
		t.Fatal("dense kernel should be grouped")
	}
}

func TestFamilyOf(t *testing.T) {
	tests := []struct{ in, want string }{
		{"winograd_gemm_128x64", "winograd_gemm"},
		{"implicit_gemm_32x32", "implicit_gemm"},
		{"depthwise_conv_k3_s2", "depthwise_conv"},
		{"sgemm_256x128", "sgemm"},
		{"batched_gemm_nt_64x64", "batched_gemm_nt"},
		{"bn_fwd_inference", "bn_fwd_inference"},
		{"elementwise_relu", "elementwise_relu"},
		{"fft_r2c_plan", "fft"},
		{"direct_conv_k5", "direct_conv"},
	}
	for _, tt := range tests {
		if got := FamilyOf(tt.in); got != tt.want {
			t.Errorf("FamilyOf(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestClassifyFamiliesPools(t *testing.T) {
	var recs []dataset.KernelRecord
	recs = append(recs, plantRecords("gemm_32x32", DriverOperation, 2e-9, 1e-6, 20, 11)...)
	recs = append(recs, plantRecords("gemm_64x64", DriverOperation, 2e-9, 1e-6, 20, 12)...)
	fams := ClassifyFamilies(recs)
	c, ok := fams["gemm"]
	if !ok {
		t.Fatalf("families = %v", SortedKernels(fams))
	}
	if c.N != 40 {
		t.Fatalf("pooled N = %d, want 40", c.N)
	}
	if c.Driver != DriverOperation {
		t.Fatalf("pooled driver = %s", c.Driver)
	}
}

func TestDriverOfAndSortedKernels(t *testing.T) {
	recs := plantRecords("k1", DriverInput, 1e-9, 1e-6, 50, 13)
	classif := ClassifyKernels(recs)
	if d, ok := DriverOf(classif, "k1"); !ok || d != DriverInput {
		t.Fatalf("DriverOf = %v, %v", d, ok)
	}
	if _, ok := DriverOf(classif, "missing"); ok {
		t.Fatal("missing kernel should report !ok")
	}
	if names := SortedKernels(classif); len(names) != 1 || names[0] != "k1" {
		t.Fatalf("SortedKernels = %v", names)
	}
}
