package core
