package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/obs"
	"repro/internal/regression"
	"repro/internal/units"
)

// E2EModel is the End-to-End model of §5.2: a single linear regression from
// a network's total theoretical FLOPs to its end-to-end execution time,
// trained at the fully-utilizing batch size. Observation O3 (time is linear
// in batch size because FLOPs are) lets the same line predict other batch
// sizes, since the input FLOPs are recomputed at the requested batch.
type E2EModel struct {
	// GPU is the device the model was trained on.
	GPU string
	// TrainBatch is the batch size of the training measurements.
	TrainBatch int
	// Line is the fitted FLOPs→seconds regression.
	Line regression.Line
}

// FitE2E trains an End-to-End model from the dataset's network records on
// the given GPU at the given batch size (the paper uses BS=512).
func FitE2E(ds *dataset.Dataset, gpuName string, trainBatch int) (*E2EModel, error) {
	var obs []dataset.NetworkObs
	for _, r := range ds.Networks {
		if r.GPU != gpuName || r.BatchSize != trainBatch {
			continue
		}
		obs = append(obs, dataset.NetworkObs{TotalFLOPs: r.TotalFLOPs, E2ESeconds: r.E2ESeconds})
	}
	return fitE2EObs(obs, gpuName, trainBatch)
}

// fitE2EObs assembles the model from one cell's end-to-end observations.
// Both FitE2E and FitE2EFromStats end here, so the two paths share every bit
// of the fitting arithmetic.
func fitE2EObs(obs []dataset.NetworkObs, gpuName string, trainBatch int) (*E2EModel, error) {
	if len(obs) == 0 {
		return nil, errNoRecords("E2E", gpuName)
	}
	xs := make([]float64, len(obs))
	ys := make([]float64, len(obs))
	for i, o := range obs {
		xs[i] = float64(o.TotalFLOPs)
		ys[i] = float64(o.E2ESeconds)
	}
	line, err := regression.Fit(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("core: E2E model: %w", err)
	}
	return &E2EModel{GPU: gpuName, TrainBatch: trainBatch, Line: line}, nil
}

// Name implements Predictor.
func (m *E2EModel) Name() string { return "E2E" }

// GPUName implements Predictor.
func (m *E2EModel) GPUName() string { return m.GPU }

// PredictFLOPs predicts end-to-end seconds from a total-FLOPs count.
func (m *E2EModel) PredictFLOPs(totalFLOPs units.FLOPs) units.Seconds {
	return clampTime(units.Seconds(m.Line.Predict(float64(totalFLOPs))))
}

// PredictNetwork implements Predictor: it shape-infers the network at the
// requested batch size, computes the theoretical FLOPs, and evaluates the
// regression.
func (m *E2EModel) PredictNetwork(n *dnn.Network, batch int) (units.Seconds, error) {
	tm := obs.StartTimer(metricE2EPredict)
	defer tm.Stop()
	flops, err := n.FLOPsAt(batch)
	if err != nil {
		return 0, err
	}
	return m.PredictFLOPs(units.FLOPs(flops)), nil
}
