package core

import (
	"strings"
	"testing"
)

// FuzzFamilyOf checks the kernel-family extraction on arbitrary names: it
// must never panic, the family is always a prefix of the name, and family
// extraction is idempotent.
func FuzzFamilyOf(f *testing.F) {
	f.Add("winograd_gemm_128x64")
	f.Add("depthwise_conv_k3_s2")
	f.Add("")
	f.Add("___")
	f.Add("123")
	f.Add("a_1_b_2")
	f.Fuzz(func(t *testing.T, name string) {
		fam := FamilyOf(name)
		if !strings.HasPrefix(name, fam) {
			t.Fatalf("FamilyOf(%q) = %q is not a prefix", name, fam)
		}
		if again := FamilyOf(fam); again != fam {
			t.Fatalf("FamilyOf not idempotent: %q → %q → %q", name, fam, again)
		}
	})
}
