package core

import (
	"bytes"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/zoo"
)

// The golden determinism contract: building the dataset, fitting the KW
// model, folding an online update, serializing the model and compiling a
// prediction plan must produce byte-identical artifacts regardless of
// GOMAXPROCS. This is the end-to-end guarantee the detrange invariant
// (sorted map iteration around float folds) exists to protect — if any
// fitting path ranged a map while accumulating, these bytes would differ
// between runs and across parallelism levels.

// goldenArtifacts runs the full pipeline at the given parallelism and
// returns the serialized model bytes and an exact textual dump of the
// compiled plan.
func goldenArtifacts(t *testing.T, procs int) (model, plan []byte) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	ds := buildSampleDataset(t, false)

	// Split the kernel records: fit on the bulk, stream the tail through
	// ObserveRecords so the online rebuild path is part of the contract.
	cut := len(ds.Kernels) * 3 / 4
	head := &dataset.Dataset{Networks: ds.Networks, Layers: ds.Layers, Kernels: ds.Kernels[:cut]}
	m, err := FitKW(head, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveRecords(ds.Kernels[cut:])

	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}

	net := zoo.MustResNet(18)
	p, err := m.CompilePlan(net)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), dumpPlan(p)
}

// dumpPlan renders every segment of a compiled plan with exact (hexadecimal
// float) coefficient bits, so two dumps are equal iff the plans are
// bit-identical.
func dumpPlan(p *Plan) []byte {
	var out bytes.Buffer
	out.WriteString(p.Network)
	out.WriteByte(' ')
	out.WriteString(p.GPU)
	out.WriteByte('\n')
	for i, end := range p.entryEnd {
		start := int32(0)
		if i > 0 {
			start = p.entryEnd[i-1]
		}
		for _, seg := range p.segs[start:end] {
			out.WriteString(strconv.Itoa(seg.minBatch))
			out.WriteByte(' ')
			out.WriteString(strconv.FormatInt(seg.xPer, 10))
			out.WriteByte(' ')
			out.WriteString(strconv.FormatInt(seg.xConst, 10))
			out.WriteByte(' ')
			out.WriteString(strconv.FormatFloat(seg.line.Slope, 'x', -1, 64))
			out.WriteByte(' ')
			out.WriteString(strconv.FormatFloat(seg.line.Intercept, 'x', -1, 64))
			out.WriteByte('\n')
		}
	}
	return out.Bytes()
}

func TestGoldenDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	model1, plan1 := goldenArtifacts(t, 1)
	procs := runtime.NumCPU()
	if procs < 4 {
		procs = 4
	}
	model2, plan2 := goldenArtifacts(t, procs)

	if !bytes.Equal(model1, model2) {
		t.Errorf("serialized model differs between GOMAXPROCS=1 and GOMAXPROCS=%d (%d vs %d bytes)",
			procs, len(model1), len(model2))
	}
	if !bytes.Equal(plan1, plan2) {
		t.Errorf("compiled plan differs between GOMAXPROCS=1 and GOMAXPROCS=%d:\n%s\nvs\n%s",
			procs, plan1, plan2)
	}
	if len(plan1) == 0 || bytes.Count(plan1, []byte{'\n'}) < 2 {
		t.Fatalf("plan dump implausibly small: %q", plan1)
	}

	// Same process, same GOMAXPROCS, fresh run: still identical (guards
	// against map-order luck making the first comparison pass).
	model3, plan3 := goldenArtifacts(t, procs)
	if !bytes.Equal(model2, model3) {
		t.Error("serialized model differs between identical runs")
	}
	if !bytes.Equal(plan2, plan3) {
		t.Error("compiled plan differs between identical runs")
	}
}
