package core

import (
	"fmt"
	"sync"

	"repro/internal/dnn"
	"repro/internal/obs"
	"repro/internal/units"
)

// Grid evaluation: the consumers that need many predictions — the
// scheduling case study's GPU×network Times matrix, the design-space
// bandwidth sweeps, the serve layer's /predict/batch — all walk a
// (model × network × batch) grid. PredictGrid evaluates such a grid through
// the models' PredictSweep paths, so each (model, network) pair resolves its
// plan once and reuses it across every batch size, instead of paying the
// per-call fingerprint/cache/timer overhead point by point.

// SweepPredictor is a Predictor that can evaluate many batch sizes in one
// pass. KWModel and IGKWModel implement it.
type SweepPredictor interface {
	Predictor
	// PredictSweep predicts every batch size in batches, in input order,
	// bit-identical to per-batch PredictNetwork calls.
	PredictSweep(n *dnn.Network, batches []int) ([]units.Seconds, error)
}

// Grid holds the results of one PredictGrid call. Seconds is indexed
// [model][network][batch], following the input orders; GPUs, Networks and
// Batches record the axes.
type Grid struct {
	GPUs     []string
	Networks []string
	Batches  []int
	Seconds  [][][]units.Seconds
}

// PredictGrid evaluates every (model, network, batch) cell. Each
// (model, network) pair runs as its own goroutine writing an indexed slot,
// so the result is deterministic regardless of scheduling; on error the
// first failing cell in (model, network) order wins, matching what a
// sequential loop would report.
func PredictGrid(models []SweepPredictor, nets []*dnn.Network, batches []int) (*Grid, error) {
	sp := obs.StartSpan("predict-grid")
	defer sp.End()
	metricGrids.Inc()
	metricGridCells.Add(int64(len(models)) * int64(len(nets)) * int64(len(batches)))

	g := &Grid{
		GPUs:     make([]string, len(models)),
		Networks: make([]string, len(nets)),
		Batches:  append([]int(nil), batches...),
		Seconds:  make([][][]units.Seconds, len(models)),
	}
	for i, m := range models {
		g.GPUs[i] = m.GPUName()
		g.Seconds[i] = make([][]units.Seconds, len(nets))
	}
	for j, n := range nets {
		g.Networks[j] = n.Name
	}

	errs := make([]error, len(models)*len(nets))
	var wg sync.WaitGroup
	for i, m := range models {
		for j, n := range nets {
			wg.Add(1)
			go func(i, j int, m SweepPredictor, n *dnn.Network) {
				defer wg.Done()
				out, err := m.PredictSweep(n, g.Batches)
				if err != nil {
					errs[i*len(nets)+j] = fmt.Errorf("core: grid cell (%s, %s): %w", m.GPUName(), n.Name, err)
					return
				}
				g.Seconds[i][j] = out
			}(i, j, m, n)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// TimesForBatch projects one batch column of the grid as a GPU-name→
// per-network seconds map — the shape sched.Times consumes. The batch is
// addressed by its index in Batches. Models sharing a GPU name overwrite
// each other; callers with such grids should index Seconds directly.
func (g *Grid) TimesForBatch(batchIdx int) map[string][]float64 {
	out := make(map[string][]float64, len(g.GPUs))
	for i, name := range g.GPUs {
		row := make([]float64, len(g.Networks))
		for j := range g.Networks {
			row[j] = g.Seconds[i][j][batchIdx].Float64()
		}
		out[name] = row
	}
	return out
}

// sweepUncached is the fallback sweep: one uncached prediction per batch
// size. Models take it when plan compilation fails, so sweep callers see the
// same shape-inference errors PredictNetwork reports.
func sweepUncached(n *dnn.Network, batches []int,
	predict func(*dnn.Network, int) (units.Seconds, error)) ([]units.Seconds, error) {
	out := make([]units.Seconds, len(batches))
	for i, b := range batches {
		v, err := predict(n, b)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
