package core

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/regression"
	"repro/internal/units"
)

// IGKWModel is the Inter-GPU Kernel-Wise model of §5.5: it predicts a GPU
// that is absent from the training set by re-deriving each kernel's
// regression slope from the target's *theoretical memory bandwidth*.
//
// For every kernel, the slope of its kernel-wise regression on a GPU
// represents the achieved processing rate (the reciprocal of the slope is
// the achieved FLOPS for operation-driven kernels, §4 O6). Observation O6 —
// bandwidth efficiency is roughly stable across GPUs while compute
// efficiency is not — means this rate is approximately linear in the GPU's
// theoretical bandwidth. The model therefore fits, per kernel,
//
//	rate(GPU) = a + b·bandwidth(GPU)
//
// over the training GPUs, and instantiates a kernel-wise predictor for the
// target from rate(target bandwidth). Regression intercepts (launch
// overheads) are carried over as the training-GPU average.
type IGKWModel struct {
	// TrainGPUs names the GPUs whose measurements trained the model.
	TrainGPUs []string
	// Target is the GPU being predicted (never measured).
	Target gpu.Spec
	// TrainBatch is the batch size of the training measurements.
	TrainBatch int

	// Lines holds the per-kernel time regressions resolved for the target.
	Lines map[string]regression.Line
	// DriverOf holds each kernel's (majority-vote) driver class.
	DriverOf map[string]Driver
	// Mapping is the union layer-signature→kernel-list table.
	Mapping map[string][]string
	// FamilyLines and FamilyDriver hold bandwidth-scaled family-level models
	// for kernels too sparse (or unseen) to carry their own.
	FamilyLines  map[string]regression.Line
	FamilyDriver map[string]Driver
	// ClassFallback holds per-driver pooled lines resolved for the target.
	ClassFallback map[Driver]regression.Line

	// plans caches compiled prediction plans per network (see plan.go),
	// making the bandwidth design-space sweeps allocation-free per query.
	// Unexported, so persistence never sees it.
	plans cache.Sharded[planKey, *Plan]
}

// IGKWBase is the target-independent part of the inter-GPU model: per-GPU
// kernel classifications and the union mapping table. Resolving a target GPU
// from a base is cheap, which is what makes bandwidth design-space sweeps
// (case study 1) take milliseconds per point.
type IGKWBase struct {
	fits       []gpuFit
	famFits    []gpuFit
	trainBatch int
	mapping    map[string][]string
}

// FitIGKWBase performs the per-GPU training work shared by every target.
func FitIGKWBase(ds *dataset.Dataset, trainGPUs []gpu.Spec, trainBatch int) (*IGKWBase, error) {
	if len(trainGPUs) < 2 {
		return nil, fmt.Errorf("core: IGKW model needs at least 2 training GPUs, got %d", len(trainGPUs))
	}
	b := &IGKWBase{trainBatch: trainBatch, mapping: map[string][]string{}}
	for _, g := range trainGPUs {
		var recs []dataset.KernelRecord
		for _, r := range ds.Kernels {
			if r.GPU == g.Name && r.BatchSize == trainBatch {
				recs = append(recs, r)
			}
		}
		if len(recs) == 0 {
			return nil, errNoRecords("IGKW", g.Name)
		}
		b.fits = append(b.fits, gpuFit{spec: g, classif: ClassifyKernels(recs), records: recs})
		for sig, ks := range buildMapping(recs) {
			if _, ok := b.mapping[sig]; !ok {
				b.mapping[sig] = ks
			}
		}
	}
	// Family-level classifications, for sparse/unseen kernels.
	b.famFits = make([]gpuFit, len(b.fits))
	for i, f := range b.fits {
		famRecs := make([]dataset.KernelRecord, len(f.records))
		copy(famRecs, f.records)
		for j := range famRecs {
			famRecs[j].Kernel = FamilyOf(famRecs[j].Kernel)
		}
		b.famFits[i] = gpuFit{spec: f.spec, classif: ClassifyFamilies(f.records), records: famRecs}
	}
	return b, nil
}

// TrainGPUNames returns the names of the training GPUs.
func (b *IGKWBase) TrainGPUNames() []string {
	out := make([]string, len(b.fits))
	for i, f := range b.fits {
		out[i] = f.spec.Name
	}
	return out
}

// FitIGKW trains the inter-GPU model from the records of the training GPUs
// and resolves it for the target GPU. The target's measurements are never
// consulted; only its theoretical specification is.
func FitIGKW(ds *dataset.Dataset, trainGPUs []gpu.Spec, target gpu.Spec, trainBatch int) (*IGKWModel, error) {
	base, err := FitIGKWBase(ds, trainGPUs, trainBatch)
	if err != nil {
		return nil, err
	}
	return base.Resolve(target)
}

// Resolve instantiates the kernel-wise predictor for a (possibly
// hypothetical) target GPU from its theoretical bandwidth.
func (b *IGKWBase) Resolve(target gpu.Spec) (*IGKWModel, error) {
	fits := b.fits
	trainBatch := b.trainBatch

	m := &IGKWModel{
		Target:        target,
		TrainBatch:    trainBatch,
		Lines:         map[string]regression.Line{},
		DriverOf:      map[string]Driver{},
		Mapping:       map[string][]string{},
		FamilyLines:   map[string]regression.Line{},
		FamilyDriver:  map[string]Driver{},
		ClassFallback: map[Driver]regression.Line{},
	}
	m.TrainGPUs = b.TrainGPUNames()
	for sig, ks := range b.mapping {
		m.Mapping[sig] = ks
	}

	// Kernel union.
	kernelSet := map[string]bool{}
	for _, f := range fits {
		for k := range f.classif {
			kernelSet[k] = true
		}
	}

	for k := range kernelSet {
		driver := majorityDriver(fits, k)
		line, ok := bandwidthScaledLine(fits, k, driver, target)
		if !ok {
			continue // fall through to family/class fallback at prediction time
		}
		m.DriverOf[k] = driver
		m.Lines[k] = line
	}

	// Family-level bandwidth-scaled models, for sparse/unseen kernels.
	famFits := b.famFits
	famSet := map[string]bool{}
	for _, f := range famFits {
		for fam := range f.classif {
			famSet[fam] = true
		}
	}
	for fam := range famSet {
		driver := majorityDriver(famFits, fam)
		if line, ok := bandwidthScaledLine(famFits, fam, driver, target); ok {
			m.FamilyDriver[fam] = driver
			m.FamilyLines[fam] = line
		}
	}

	// Per-driver pooled fallbacks, themselves bandwidth-scaled.
	for _, d := range Drivers() {
		var bws, rates, intercepts []float64
		for _, f := range fits {
			var xs, ys []float64
			for _, r := range f.records {
				c, ok := f.classif[r.Kernel]
				if !ok || c.Driver != d {
					continue
				}
				xs = append(xs, driverX(r, d))
				ys = append(ys, float64(r.Seconds))
			}
			line, err := regression.Fit(xs, ys)
			if err != nil || line.Slope <= 0 {
				continue
			}
			bws = append(bws, f.spec.MemBWGBps)
			rates = append(rates, 1/line.Slope)
			intercepts = append(intercepts, line.Intercept)
		}
		if resolved, ok := resolveRate(bws, rates, intercepts, target.MemBWGBps); ok {
			m.ClassFallback[d] = resolved
		}
	}

	if len(m.Lines) == 0 {
		return nil, fmt.Errorf("core: IGKW model: no kernel observed with a usable slope on any training GPU")
	}
	m.plans.RegisterMetrics("core_igkw_plan_cache")
	return m, nil
}

// gpuFit bundles one training GPU's spec, kernel classification and raw
// records.
type gpuFit struct {
	spec    gpu.Spec
	classif map[string]Classification
	records []dataset.KernelRecord
}

// majorityDriver votes the driver class of a kernel across GPUs, weighting
// each vote by the winning fit's R².
func majorityDriver(fits []gpuFit, kernel string) Driver {
	score := map[Driver]float64{}
	for _, f := range fits {
		if c, ok := f.classif[kernel]; ok {
			w := c.R2[c.Driver]
			if w <= 0 {
				w = 1e-3
			}
			score[c.Driver] += w
		}
	}
	best := DriverOperation
	bestScore := math.Inf(-1)
	for _, d := range Drivers() {
		if s, ok := score[d]; ok && s > bestScore {
			bestScore = s
			best = d
		}
	}
	return best
}

// bandwidthScaledLine derives the kernel's time regression on the target GPU
// from its per-GPU slopes: rate = 1/slope is fitted against bandwidth and
// evaluated at the target's bandwidth.
func bandwidthScaledLine(fits []gpuFit, kernel string, driver Driver, target gpu.Spec) (regression.Line, bool) {
	var bws, rates, intercepts []float64
	for _, f := range fits {
		c, ok := f.classif[kernel]
		if !ok || c.Line.Slope <= 0 || c.N < MinKernelObservations {
			continue
		}
		// Re-fit on the voted driver if the per-GPU vote differed.
		line := c.Line
		if c.Driver != driver {
			var xs, ys []float64
			for _, r := range f.records {
				if r.Kernel == kernel {
					xs = append(xs, driverX(r, driver))
					ys = append(ys, float64(r.Seconds))
				}
			}
			refit, err := regression.Fit(xs, ys)
			if err != nil || refit.Slope <= 0 {
				continue
			}
			line = refit
		}
		bws = append(bws, f.spec.MemBWGBps)
		rates = append(rates, 1/line.Slope)
		intercepts = append(intercepts, line.Intercept)
	}
	return resolveRate(bws, rates, intercepts, target.MemBWGBps)
}

// resolveRate fits rate = a + b·bandwidth over the observations and returns
// the time regression (slope = 1/rate, intercept = mean intercept) at the
// target bandwidth. With a single observation the rate is scaled
// proportionally to bandwidth (rate/bw ratio), the through-origin special
// case.
func resolveRate(bws, rates, intercepts []float64, targetBW float64) (regression.Line, bool) {
	if len(bws) == 0 {
		return regression.Line{}, false
	}
	var rate float64
	if len(bws) == 1 {
		rate = rates[0] / bws[0] * targetBW
	} else {
		line, err := regression.Fit(bws, rates)
		if err == nil && line.Intercept < 0 {
			// A negative intercept would give zero or negative rates at low
			// bandwidths; a purely memory-bound kernel scales through the
			// origin, so refit that way.
			line, err = regression.FitOrigin(bws, rates)
		}
		if err != nil {
			// Identical bandwidths: average the rates.
			rate = regression.Mean(rates)
		} else {
			rate = line.Predict(targetBW)
		}
	}
	minRate := rates[0]
	for _, r := range rates {
		if r < minRate {
			minRate = r
		}
	}
	if rate < minRate*0.05 {
		// The linear extrapolation went non-physical (e.g. far below every
		// observed rate); clamp to a small fraction of the slowest observed
		// device rather than produce a negative rate.
		rate = minRate * 0.05
	}
	return regression.Line{
		Slope:     1 / rate,
		Intercept: regression.Mean(intercepts),
		N:         len(bws),
	}, true
}

// Name implements Predictor.
func (m *IGKWModel) Name() string { return "IGKW" }

// GPUName implements Predictor; it reports the *target* GPU.
func (m *IGKWModel) GPUName() string { return m.Target.Name }

// PredictKernel predicts one kernel invocation's duration on the target GPU.
func (m *IGKWModel) PredictKernel(name string, layerFLOPs units.FLOPs, layerInElems, layerOutElems int64) units.Seconds {
	x := func(d Driver) float64 {
		switch d {
		case DriverInput:
			return float64(layerInElems)
		case DriverOperation:
			return float64(layerFLOPs)
		default:
			return float64(layerOutElems)
		}
	}
	if line, ok := m.Lines[name]; ok {
		return clampTime(units.Seconds(line.Predict(x(m.DriverOf[name]))))
	}
	if line, ok := m.FamilyLines[FamilyOf(name)]; ok {
		return clampTime(units.Seconds(line.Predict(x(m.FamilyDriver[FamilyOf(name)]))))
	}
	d := DriverOperation
	if layerFLOPs == 0 {
		d = DriverOutput
	}
	if line, ok := m.ClassFallback[d]; ok {
		return clampTime(units.Seconds(line.Predict(x(d))))
	}
	return minPrediction
}

// PredictNetwork implements Predictor for the target GPU. Like the KW model,
// queries are served from a cached compiled plan (see plan.go): repeated
// predictions run allocation-free, never mutate n, and are safe to issue
// concurrently, with results bit-identical to PredictNetworkUncached.
func (m *IGKWModel) PredictNetwork(n *dnn.Network, batch int) (units.Seconds, error) {
	tm := obs.StartTimer(metricIGKWPredict)
	defer tm.Stop()
	if batch <= 0 {
		return m.PredictNetworkUncached(n, batch)
	}
	key := planKey{name: n.Name, fp: networkFingerprint(n, false)}
	p, err := m.plans.GetOrCompute(key, func() (*Plan, error) {
		return compilePlan(n, m.Target.Name, false, m.Mapping, m.resolveKernel)
	})
	if err != nil {
		return m.PredictNetworkUncached(n, batch)
	}
	return p.Predict(batch), nil
}

// PredictSweep predicts the network at every batch size in batches through
// one pass over the compiled plan, bit-identical to per-batch
// PredictNetwork calls. See KWModel.PredictSweep for the contract.
func (m *IGKWModel) PredictSweep(n *dnn.Network, batches []int) ([]units.Seconds, error) {
	tm := obs.StartTimer(metricSweepPredict)
	defer tm.Stop()
	for _, b := range batches {
		if b <= 0 {
			return nil, fmt.Errorf("core: IGKW sweep of %q: batch size %d must be positive", n.Name, b)
		}
	}
	observeSweep(len(batches))
	key := planKey{name: n.Name, fp: networkFingerprint(n, false)}
	p, err := m.plans.GetOrCompute(key, func() (*Plan, error) {
		return compilePlan(n, m.Target.Name, false, m.Mapping, m.resolveKernel)
	})
	if err != nil {
		return sweepUncached(n, batches, m.PredictNetworkUncached)
	}
	return p.PredictSweep(batches), nil
}

// PredictNetworkUncached is the reference prediction path (shape inference
// plus per-kernel lookups on every call); plans are tested against it.
func (m *IGKWModel) PredictNetworkUncached(n *dnn.Network, batch int) (units.Seconds, error) {
	if err := n.Infer(batch); err != nil {
		return 0, err
	}
	var total units.Seconds
	for _, l := range n.Layers {
		ks := kernels.ForLayer(l)
		if names, ok := m.Mapping[l.Signature()]; ok && len(names) == len(ks) {
			for i := range ks {
				ks[i].Name = names[i]
			}
		}
		for _, k := range ks {
			total += m.PredictKernel(k.Name, units.FLOPs(k.LayerFLOPs), k.LayerInputElems, k.LayerOutputElems)
		}
	}
	return total, nil
}

// resolveKernel mirrors PredictKernel's fallback chain (kernel line → family
// line → class fallback → minimum floor) as a compile-time resolution. The
// zero line in the last case predicts 0 at every x, which clamps to exactly
// the minPrediction literal PredictKernel returns.
func (m *IGKWModel) resolveKernel(name string, flopsZero bool) (regression.Line, Driver) {
	if line, ok := m.Lines[name]; ok {
		return line, m.DriverOf[name]
	}
	if line, ok := m.FamilyLines[FamilyOf(name)]; ok {
		return line, m.FamilyDriver[FamilyOf(name)]
	}
	d := DriverOperation
	if flopsZero {
		d = DriverOutput
	}
	if line, ok := m.ClassFallback[d]; ok {
		return line, d
	}
	return regression.Line{}, d
}

// PredictRecords predicts from structural kernel records (durations ignored).
func (m *IGKWModel) PredictRecords(recs []dataset.KernelRecord) units.Seconds {
	var total units.Seconds
	for _, r := range recs {
		total += m.PredictKernel(r.Kernel, r.LayerFLOPs, r.LayerInputElems, r.LayerOutputElems)
	}
	return total
}
