package core

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/units"
)

// Prediction intervals. A key selling point of linear regression over black
// boxes is explainability (§7: "keep using the linear regression model
// maintains the best explainability and interpretability"); attaching an
// uncertainty to every prediction makes that operational. Each kernel
// group's regression carries its residual RMSE; a network-level prediction
// aggregates those residuals.
//
// Aggregation treats residuals of the *same kernel name* as perfectly
// correlated (the same implementation mispredicts the same way every time it
// recurs in a network — the dominant error structure we observe) and
// residuals of different kernels as independent:
//
//	margin² = Σ_over kernel names (count · RMSE_group)²
//
// The resulting ±2·margin band is an approximate 95 % interval for the
// network's summed kernel time.

// Interval is a prediction with its one-sigma margin.
type Interval struct {
	// Predicted is the point prediction, seconds.
	Predicted units.Seconds
	// Margin is the one-sigma uncertainty, seconds.
	Margin units.Seconds
}

// Lo and Hi bound the approximate 95 % (±2σ) interval; Lo is floored at 0.
func (iv Interval) Lo() units.Seconds {
	lo := iv.Predicted - 2*iv.Margin
	if lo < 0 {
		return 0
	}
	return lo
}

// Hi returns the upper ±2σ bound.
func (iv Interval) Hi() units.Seconds { return iv.Predicted + 2*iv.Margin }

// Contains reports whether a measured value falls inside the ±2σ band.
func (iv Interval) Contains(measured units.Seconds) bool {
	return measured >= iv.Lo() && measured <= iv.Hi()
}

// groupRMSE returns the residual RMSE attached to the kernel's model, or 0
// when the kernel resolves through a fallback tier (fallback uncertainty is
// not tracked).
func (m *KWModel) groupRMSE(kernel string) float64 {
	if gi, ok := m.GroupOf[kernel]; ok {
		return m.Groups[gi].RMSE
	}
	return 0
}

// PredictNetworkInterval predicts one batch's kernel-time total with an
// uncertainty margin.
func (m *KWModel) PredictNetworkInterval(n *dnn.Network, batch int) (Interval, error) {
	if err := n.Infer(batch); err != nil {
		return Interval{}, err
	}
	var iv Interval
	counts := map[string]int{}
	for _, l := range n.Layers {
		for _, k := range m.kernelsForLayer(l) {
			iv.Predicted += m.PredictKernel(k.Name, units.FLOPs(k.LayerFLOPs), k.LayerInputElems, k.LayerOutputElems)
			counts[k.Name]++
		}
	}
	iv.Margin = m.aggregateMargin(counts)
	return iv, nil
}

// PredictRecordsInterval is PredictNetworkInterval over structural kernel
// records.
func (m *KWModel) PredictRecordsInterval(recs []dataset.KernelRecord) Interval {
	var iv Interval
	counts := map[string]int{}
	for _, r := range recs {
		iv.Predicted += m.PredictKernel(r.Kernel, r.LayerFLOPs, r.LayerInputElems, r.LayerOutputElems)
		counts[r.Kernel]++
	}
	iv.Margin = m.aggregateMargin(counts)
	return iv
}

// aggregateMargin combines per-kernel-name counts into the network margin.
// The variance sum is commutative-safe only in exact arithmetic; iterating
// the kernel names in sorted order keeps the float result identical across
// runs (the determinism contract serialized reports rely on).
func (m *KWModel) aggregateMargin(counts map[string]int) units.Seconds {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	var variance float64
	for _, name := range names {
		contrib := float64(counts[name]) * m.groupRMSE(name)
		variance += contrib * contrib
	}
	return units.Seconds(math.Sqrt(variance))
}
