package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/units"
)

func TestIntervalBounds(t *testing.T) {
	iv := Interval{Predicted: 10, Margin: 2}
	if iv.Lo() != 6 || iv.Hi() != 14 {
		t.Fatalf("interval = [%v, %v]", iv.Lo(), iv.Hi())
	}
	if !iv.Contains(7) || iv.Contains(15) || iv.Contains(5) {
		t.Fatal("Contains misbehaves")
	}
	// Lo floors at zero.
	tiny := Interval{Predicted: 1, Margin: 5}
	if tiny.Lo() != 0 {
		t.Fatalf("Lo = %v", tiny.Lo())
	}
}

func TestPredictRecordsIntervalCoverage(t *testing.T) {
	// Planted data with noise: the measured totals of fresh networks should
	// mostly fall inside ±2σ.
	train := plantKernelDataset(gpu.A100, 5)
	// Add noise so RMSE is non-trivial.
	for i := range train.Kernels {
		jitter := 1 + 0.05*float64(i%7-3)/3
		train.Kernels[i].Seconds = units.Seconds(float64(train.Kernels[i].Seconds) * jitter)
	}
	m, err := FitKW(train, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range m.Groups {
		if g.RMSE <= 0 {
			t.Fatalf("group %v has zero RMSE on noisy data", g.Kernels)
		}
	}

	test := plantKernelDataset(gpu.A100, 7)
	// Evaluate per synthetic network.
	byNet := map[string][]int{}
	for i, r := range test.Kernels {
		byNet[r.Network] = append(byNet[r.Network], i)
	}
	covered, total := 0, 0
	for _, idxs := range byNet {
		var meas units.Seconds
		recs := test.Kernels[:0:0]
		for _, i := range idxs {
			meas += test.Kernels[i].Seconds
			recs = append(recs, test.Kernels[i])
		}
		iv := m.PredictRecordsInterval(recs)
		if iv.Margin <= 0 {
			t.Fatal("zero margin on noisy model")
		}
		if iv.Contains(meas) {
			covered++
		}
		total++
	}
	if covered < total/2 {
		t.Fatalf("coverage %d/%d implausibly low", covered, total)
	}
}

func TestIntervalConsistentWithPointPrediction(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 4)
	m, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	recs := ds.Kernels[:90]
	iv := m.PredictRecordsInterval(recs)
	pt := m.PredictRecords(recs)
	if math.Abs(float64(iv.Predicted-pt))/float64(pt) > 1e-12 {
		t.Fatalf("interval center %v != point prediction %v", iv.Predicted, pt)
	}
}

func TestMarginGrowsWithRepeats(t *testing.T) {
	// Correlated aggregation: k repeats of the same kernel scale the margin
	// by k, not √k.
	ds := plantKernelDataset(gpu.A100, 5)
	for i := range ds.Kernels {
		ds.Kernels[i].Seconds = units.Seconds(float64(ds.Kernels[i].Seconds) * (1 + 0.03*float64(i%5-2)))
	}
	m, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	rec := ds.Kernels[0]
	m1 := m.PredictRecordsInterval(ds.Kernels[:1]).Margin
	m4 := m.PredictRecordsInterval([]dataset.KernelRecord{rec, rec, rec, rec}).Margin
	if m1 <= 0 {
		t.Fatal("zero single-kernel margin")
	}
	if math.Abs(float64(m4-4*m1))/float64(4*m1) > 1e-9 {
		t.Fatalf("margin for 4 repeats = %v, want 4×%v", m4, m1)
	}
}
