package core

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/regression"
	"repro/internal/units"
)

// KWModel is the Kernel-Wise model of §5.4. It consists of
//
//  1. a layer→kernel mapping table learned from the training traces, keyed
//     by the layer's structural signature ("the cuDNN library decides the
//     kernels to use according to the problem sizes, so we create a look-up
//     table that maps from the layer type and input/output size to the
//     kernel list");
//  2. a per-kernel classification into input-/operation-/output-driven
//     (ClassifyKernels, observation O5); and
//  3. grouped linear regressions — kernels with similar linear behaviour
//     share one model (GroupKernels).
//
// Prediction sums the per-kernel regression outputs over the network's
// kernel list. Only network structure is consumed.
type KWModel struct {
	// GPU is the device the model was trained on.
	GPU string
	// TrainBatch is the batch size of the training measurements.
	TrainBatch int
	// Classif is the learned per-kernel classification.
	Classif map[string]Classification
	// Groups and GroupOf are the merged regression models and the
	// kernel→group index.
	Groups  []Group
	GroupOf map[string]int
	// Mapping is the layer-signature→kernel-list look-up table.
	Mapping map[string][]string
	// Families holds one pooled classification per kernel family (tile
	// variants merged), used for kernels with too few training observations
	// to support their own regression, and for kernel names never seen in
	// training (e.g. a tile variant only a test network triggers).
	Families map[string]Classification
	// ClassFallback holds one pooled regression per driver class, the last
	// resort for kernels whose family is also unknown.
	ClassFallback map[Driver]regression.Line
	// Training marks a training-step model (see KWOptions.Training).
	Training bool

	// online holds the incremental-learning state (see online.go).
	online *onlineState

	// plans caches compiled prediction plans per network and layerPlans
	// caches resolved per-layer term lists (see plan.go). Both make repeated
	// predictions allocation-free and safe for concurrent use; ObserveRecords
	// invalidates them. Zero values are ready; the fields are unexported so
	// persistence never sees them.
	plans      cache.Sharded[planKey, *Plan]
	layerPlans cache.Sharded[layerKey, []layerTerm]
}

// KWOptions expose the kernel-wise model's design choices for ablation
// studies. The zero value is the paper's full design.
type KWOptions struct {
	// ForceDriver, when non-empty, skips the R²-based classification and
	// regresses every kernel against the given driver — ablating
	// observation O5's classification step.
	ForceDriver Driver
	// DisableGrouping gives every kernel its own regression instead of
	// merging similar kernels into shared models.
	DisableGrouping bool
	// DisableFamilyFallback removes the family-pooled middle tier of the
	// prediction fallback hierarchy; sparse and unseen kernels drop
	// straight to the per-class pooled lines.
	DisableFamilyFallback bool
	// Training marks a model trained on training-step measurements; its
	// predictions lower layers through the training kernel pipeline
	// (forward + backward + optimizer).
	Training bool
}

// FitKW trains a Kernel-Wise model from the dataset's kernel records on the
// given GPU at the given batch size, with the paper's full design.
func FitKW(ds *dataset.Dataset, gpuName string, trainBatch int) (*KWModel, error) {
	return FitKWOptions(ds, gpuName, trainBatch, KWOptions{})
}

// FitKWOptions is FitKW with explicit design-choice options.
func FitKWOptions(ds *dataset.Dataset, gpuName string, trainBatch int, opt KWOptions) (*KWModel, error) {
	var recs []dataset.KernelRecord
	for _, r := range ds.Kernels {
		if r.GPU == gpuName && r.BatchSize == trainBatch {
			recs = append(recs, r)
		}
	}
	if len(recs) == 0 {
		return nil, errNoRecords("KW", gpuName)
	}
	return fitKWRecords(recs, buildMapping(recs), gpuName, trainBatch, opt)
}

// fitKWRecords assembles the model from one cell's kernel records (already
// filtered to gpuName/trainBatch, in dataset record order) and its
// layer-signature mapping table. Both FitKWOptions and FitKWFromStatsOptions
// (which replays a streamed cell's observation log) end here, so the two
// paths share every bit of the fitting arithmetic.
func fitKWRecords(recs []dataset.KernelRecord, mapping map[string][]string, gpuName string, trainBatch int, opt KWOptions) (*KWModel, error) {
	classif := ClassifyKernels(recs)
	if opt.ForceDriver != "" {
		classif = forceDriver(classif, recs, opt.ForceDriver)
	}
	var groups []Group
	var groupOf map[string]int
	if opt.DisableGrouping {
		groups, groupOf = singletonGroups(classif)
	} else {
		groups, groupOf = GroupKernels(classif, recs)
	}

	m := &KWModel{
		GPU:           gpuName,
		TrainBatch:    trainBatch,
		Classif:       classif,
		Groups:        groups,
		GroupOf:       groupOf,
		Mapping:       mapping,
		Families:      ClassifyFamilies(recs),
		ClassFallback: classFallbacks(classif, recs),
	}
	if opt.ForceDriver != "" {
		m.Families = forceDriver(m.Families, familyRecords(recs), opt.ForceDriver)
	}
	if opt.DisableFamilyFallback {
		m.Families = map[string]Classification{}
	}
	m.Training = opt.Training
	m.initOnline(recs)
	m.plans.RegisterMetrics("core_kw_plan_cache")
	m.layerPlans.RegisterMetrics("core_kw_layer_cache")
	return m, nil
}

// forceDriver refits every kernel's line on a single imposed driver.
func forceDriver(classif map[string]Classification, recs []dataset.KernelRecord, d Driver) map[string]Classification {
	byKernel := map[string][]dataset.KernelRecord{}
	for _, r := range recs {
		byKernel[r.Kernel] = append(byKernel[r.Kernel], r)
	}
	out := make(map[string]Classification, len(classif))
	for name, c := range classif {
		rs := byKernel[name]
		var xs, ys []float64
		for _, r := range rs {
			xs = append(xs, driverX(r, d))
			ys = append(ys, float64(r.Seconds))
		}
		forced := Classification{Kernel: name, Driver: d, R2: c.R2, N: len(rs)}
		if line, err := regression.Fit(xs, ys); err == nil {
			forced.Line = line
		} else {
			forced.Line = regression.Line{Intercept: regression.Mean(ys), N: len(ys)}
		}
		out[name] = forced
	}
	return out
}

// familyRecords rewrites record kernel names to their families.
func familyRecords(recs []dataset.KernelRecord) []dataset.KernelRecord {
	out := make([]dataset.KernelRecord, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Kernel = FamilyOf(out[i].Kernel)
	}
	return out
}

// classFallbacks pools all records of each driver class into one regression.
func classFallbacks(classif map[string]Classification, recs []dataset.KernelRecord) map[Driver]regression.Line {
	xs := map[Driver][]float64{}
	ys := map[Driver][]float64{}
	for _, r := range recs {
		c, ok := classif[r.Kernel]
		if !ok {
			continue
		}
		xs[c.Driver] = append(xs[c.Driver], driverX(r, c.Driver))
		ys[c.Driver] = append(ys[c.Driver], float64(r.Seconds))
	}
	out := map[Driver]regression.Line{}
	for _, d := range Drivers() {
		if line, err := regression.Fit(xs[d], ys[d]); err == nil {
			out[d] = line
		} else {
			out[d] = regression.Line{Intercept: regression.Mean(ys[d])}
		}
	}
	return out
}

// singletonGroups wraps every sufficiently-observed kernel in its own group.
func singletonGroups(classif map[string]Classification) ([]Group, map[string]int) {
	var groups []Group
	groupOf := map[string]int{}
	for _, name := range SortedKernels(classif) {
		c := classif[name]
		if c.N < MinKernelObservations {
			continue
		}
		groupOf[name] = len(groups)
		groups = append(groups, Group{Driver: c.Driver, Kernels: []string{name}, Line: c.Line})
	}
	return groups, groupOf
}

// buildMapping constructs the layer-signature→kernel-list table from
// training records. Kernel order within a layer follows record order (launch
// order); duplicate (signature) entries across networks are identical by
// construction, so the first wins.
func buildMapping(recs []dataset.KernelRecord) map[string][]string {
	type layerKey struct {
		net string
		bs  int
		idx int
	}
	perLayer := map[layerKey][]string{}
	sigOf := map[layerKey]string{}
	var order []layerKey
	for _, r := range recs {
		k := layerKey{r.Network, r.BatchSize, r.LayerIndex}
		if _, ok := perLayer[k]; !ok {
			order = append(order, k)
		}
		perLayer[k] = append(perLayer[k], r.Kernel)
		sigOf[k] = r.LayerSignature
	}
	mapping := map[string][]string{}
	for _, k := range order {
		sig := sigOf[k]
		if _, ok := mapping[sig]; !ok {
			mapping[sig] = perLayer[k]
		}
	}
	return mapping
}

// Name implements Predictor.
func (m *KWModel) Name() string { return "KW" }

// GPUName implements Predictor.
func (m *KWModel) GPUName() string { return m.GPU }

// ModelCount returns the number of regression models (groups) the KW model
// maintains — the paper's "for 182 kernels recorded, we built 83 linear
// regression models".
func (m *KWModel) ModelCount() int { return len(m.Groups) }

// KernelCount returns the number of distinct kernels classified.
func (m *KWModel) KernelCount() int { return len(m.Classif) }

// PredictKernel predicts one kernel invocation's duration from its name and
// the layer-level driver candidates.
func (m *KWModel) PredictKernel(name string, layerFLOPs units.FLOPs, layerInElems, layerOutElems int64) units.Seconds {
	x := func(d Driver) float64 {
		switch d {
		case DriverInput:
			return float64(layerInElems)
		case DriverOperation:
			return float64(layerFLOPs)
		default:
			return float64(layerOutElems)
		}
	}
	if gi, ok := m.GroupOf[name]; ok {
		g := m.Groups[gi]
		return clampTime(units.Seconds(g.Line.Predict(x(g.Driver))))
	}
	// Sparse or unseen kernel: fall back to its family's pooled model.
	if c, ok := m.Families[FamilyOf(name)]; ok && c.N >= MinKernelObservations {
		return clampTime(units.Seconds(c.Line.Predict(x(c.Driver))))
	}
	// Unknown family: guess the class from an operation-first heuristic and
	// use the pooled class fallback. Kernels carrying FLOPs are treated as
	// main kernels; zero-FLOPs kernels as output-driven data movement.
	d := DriverOperation
	if layerFLOPs == 0 {
		d = DriverOutput
	}
	return clampTime(units.Seconds(m.ClassFallback[d].Predict(x(d))))
}

// kernelsForLayer resolves a layer to its kernel list: first through the
// learned mapping table; for signatures never observed in training, through
// the deterministic library-dispatch rules (the same rules the mapping table
// was traced from — cuDNN's dispatch is public behaviour, not a measured
// quantity).
func (m *KWModel) kernelsForLayer(l *dnn.Layer) []kernels.Kernel {
	var ks []kernels.Kernel
	if m.Training {
		ks = kernels.ForLayerTraining(l)
	} else {
		ks = kernels.ForLayer(l)
	}
	if names, ok := m.Mapping[l.Signature()]; ok && len(names) == len(ks) {
		// Use the traced names (they match the dispatch rules by
		// construction; the check guards against stale tables).
		for i := range ks {
			ks[i].Name = names[i]
		}
	}
	return ks
}

// PredictNetwork implements Predictor: the sum over the network's kernel
// list of the per-kernel predictions. Queries are served from a compiled
// prediction plan (see plan.go) cached per network, so repeated predictions
// at any batch size run allocation-free, never mutate n, and are safe to
// issue from many goroutines. Results are bit-identical to
// PredictNetworkUncached.
//
//dnnperf:allocfree
func (m *KWModel) PredictNetwork(n *dnn.Network, batch int) (units.Seconds, error) {
	tm := obs.StartTimer(metricKWPredict)
	defer tm.Stop()
	if batch <= 0 {
		// Route through the uncached path for its validation error.
		//lint:ignore allocfree the invalid-batch path is off the steady state by definition
		return m.PredictNetworkUncached(n, batch)
	}
	p, err := m.planFor(n)
	if err != nil {
		// Compilation fails only for networks the uncached path also rejects;
		// take it so callers see the familiar shape-inference errors.
		//lint:ignore allocfree the compile-failure path is off the steady state by definition
		return m.PredictNetworkUncached(n, batch)
	}
	return p.Predict(batch), nil
}

// PredictSweep predicts the network at every batch size in batches, in
// input order, through one pass over the compiled plan. Results are
// bit-identical to calling PredictNetwork per batch size; the win is that
// the per-call overhead (fingerprint, cache lookup, timer) is paid once for
// the whole sweep and the plan's segments stay hot across batch sizes. All
// batch sizes must be positive. If plan compilation fails the sweep falls
// back to the uncached path, mirroring PredictNetwork.
func (m *KWModel) PredictSweep(n *dnn.Network, batches []int) ([]units.Seconds, error) {
	tm := obs.StartTimer(metricSweepPredict)
	defer tm.Stop()
	for _, b := range batches {
		if b <= 0 {
			return nil, fmt.Errorf("core: KW sweep of %q: batch size %d must be positive", n.Name, b)
		}
	}
	observeSweep(len(batches))
	p, err := m.planFor(n)
	if err != nil {
		return sweepUncached(n, batches, m.PredictNetworkUncached)
	}
	return p.PredictSweep(batches), nil
}

// PredictNetworkUncached is the reference prediction path: shape-infer the
// network at the batch size (mutating n) and sum per-kernel predictions. It
// is the behavior PredictNetwork had before plan compilation and remains the
// ground truth plans are tested against.
func (m *KWModel) PredictNetworkUncached(n *dnn.Network, batch int) (units.Seconds, error) {
	if err := n.Infer(batch); err != nil {
		return 0, err
	}
	var total units.Seconds
	for _, l := range n.Layers {
		for _, k := range m.kernelsForLayer(l) {
			total += m.PredictKernel(k.Name, units.FLOPs(k.LayerFLOPs), k.LayerInputElems, k.LayerOutputElems)
		}
	}
	return total, nil
}

// planFor returns the cached compiled plan for the network, compiling it on
// first use. Concurrent callers for the same network share one compilation.
// The cache hit path is allocation-free; the closure below only costs (and
// only runs) on a compile miss.
//
//dnnperf:allocfree
func (m *KWModel) planFor(n *dnn.Network) (*Plan, error) {
	key := planKey{name: n.Name, fp: networkFingerprint(n, m.Training)}
	//lint:ignore allocfree the GetOrCompute closure allocates only on the compile miss path
	return m.plans.GetOrCompute(key, func() (*Plan, error) {
		return m.CompilePlan(n)
	})
}

// CompiledPlan returns the model's cached compiled plan for the network,
// compiling it on first use — the exact plan PredictNetwork executes.
// Exposed so callers that attribute latency per stage (the serve tracing
// path) can time compile and predict separately while producing
// bit-identical predictions.
func (m *KWModel) CompiledPlan(n *dnn.Network) (*Plan, error) { return m.planFor(n) }

// CompilePlan compiles a standalone prediction plan for the network without
// touching the model's plan cache. The input network is never mutated.
func (m *KWModel) CompilePlan(n *dnn.Network) (*Plan, error) {
	return compilePlan(n, m.GPU, m.Training, m.Mapping, m.resolveKernel)
}

// resolveKernel maps a kernel name to the concrete regression line and driver
// PredictKernel would use — the same three-tier fallback (group → family →
// class), resolved once at plan-compile time.
func (m *KWModel) resolveKernel(name string, flopsZero bool) (regression.Line, Driver) {
	if gi, ok := m.GroupOf[name]; ok {
		g := m.Groups[gi]
		return g.Line, g.Driver
	}
	if c, ok := m.Families[FamilyOf(name)]; ok && c.N >= MinKernelObservations {
		return c.Line, c.Driver
	}
	d := DriverOperation
	if flopsZero {
		d = DriverOutput
	}
	return m.ClassFallback[d], d
}

// launchCount returns the number of kernels one batch of the network
// dispatches, read off the cached plan (the count is batch-invariant: batch
// size changes kernel *names*, never how many a layer launches). Returns 0
// for networks that fail to compile.
func (m *KWModel) launchCount(n *dnn.Network) int {
	p, err := m.planFor(n)
	if err != nil {
		return 0
	}
	return p.EntryCount()
}

// PredictLayerTime predicts one layer's execution time: the sum of its
// kernels' predictions. The layer must have inferred shapes. This is the
// per-layer granularity the disaggregated-memory case study schedules with.
// Resolved (line, driver value) terms are cached per layer signature, so the
// scheduling loops that call this per layer per configuration pay the kernel
// resolution once.
func (m *KWModel) PredictLayerTime(l *dnn.Layer) units.Seconds {
	key := layerKeyFor(l, m.Training)
	terms, err := m.layerPlans.GetOrCompute(key, func() ([]layerTerm, error) {
		ks := m.kernelsForLayer(l)
		out := make([]layerTerm, len(ks))
		for i, k := range ks {
			line, driver := m.resolveKernel(k.Name, k.LayerFLOPs == 0)
			var x float64
			switch driver {
			case DriverInput:
				x = float64(k.LayerInputElems)
			case DriverOperation:
				x = float64(k.LayerFLOPs)
			default:
				x = float64(k.LayerOutputElems)
			}
			out[i] = layerTerm{line: line, x: x}
		}
		return out, nil
	})
	if err != nil {
		return 0 // unreachable: the compute function never errors
	}
	return predictTerms(terms)
}

// PredictRecords predicts the end-to-end time implied by a set of kernel
// records (their structural fields only — durations are ignored). Useful
// for evaluating the regression layer in isolation from the mapping table.
func (m *KWModel) PredictRecords(recs []dataset.KernelRecord) units.Seconds {
	var total units.Seconds
	for _, r := range recs {
		total += m.PredictKernel(r.Kernel, r.LayerFLOPs, r.LayerInputElems, r.LayerOutputElems)
	}
	return total
}

// GroupSummaries renders a sorted per-group description for reports.
func (m *KWModel) GroupSummaries() []string {
	out := make([]string, 0, len(m.Groups))
	for _, g := range m.Groups {
		names := append([]string(nil), g.Kernels...)
		sort.Strings(names)
		out = append(out, string(g.Driver)+": "+names[0]+" (+"+strconv.Itoa(len(names)-1)+" more) "+g.Line.String())
	}
	sort.Strings(out)
	return out
}
