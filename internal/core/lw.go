package core

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/regression"
	"repro/internal/units"
)

// LWModel is the Layer-Wise model of §5.3: an independent linear regression
// per layer type from layer FLOPs to layer time; a network's predicted time
// is the sum of its layers' predictions.
type LWModel struct {
	// GPU is the device the model was trained on.
	GPU string
	// TrainBatch is the batch size of the training measurements.
	TrainBatch int
	// Lines maps each layer kind to its fitted FLOPs→seconds regression.
	Lines map[dnn.Kind]regression.Line
	// Pooled is the all-layers fallback regression for layer kinds absent
	// from the training set.
	Pooled regression.Line
}

// FitLW trains a Layer-Wise model from the dataset's layer records on the
// given GPU at the given batch size.
func FitLW(ds *dataset.Dataset, gpuName string, trainBatch int) (*LWModel, error) {
	var obs []dataset.LayerObs
	for _, r := range ds.Layers {
		if r.GPU != gpuName || r.BatchSize != trainBatch {
			continue
		}
		obs = append(obs, dataset.LayerObs{Kind: r.Kind, FLOPs: r.FLOPs, Seconds: r.Seconds})
	}
	return fitLWObs(obs, gpuName, trainBatch)
}

// fitLWObs assembles the model from one cell's layer observations (already
// filtered to gpuName/trainBatch, in dataset record order). Both FitLW and
// FitLWFromStats (which replays a streamed cell's observation log) end here,
// so the two paths share every bit of the fitting arithmetic.
func fitLWObs(obs []dataset.LayerObs, gpuName string, trainBatch int) (*LWModel, error) {
	byKind := map[dnn.Kind][][2]float64{}
	var allX, allY []float64
	for _, o := range obs {
		k := dnn.Kind(o.Kind)
		byKind[k] = append(byKind[k], [2]float64{float64(o.FLOPs), float64(o.Seconds)})
		allX = append(allX, float64(o.FLOPs))
		allY = append(allY, float64(o.Seconds))
	}
	if len(allX) == 0 {
		return nil, errNoRecords("LW", gpuName)
	}
	pooled, err := regression.Fit(allX, allY)
	if err != nil {
		return nil, fmt.Errorf("core: LW model: pooled fit: %w", err)
	}
	m := &LWModel{GPU: gpuName, TrainBatch: trainBatch,
		Lines: make(map[dnn.Kind]regression.Line, len(byKind)), Pooled: pooled}
	for k, pts := range byKind {
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p[0], p[1]
		}
		line, err := regression.Fit(xs, ys)
		if err != nil {
			// A kind with degenerate data (e.g. a single record) falls back
			// to the pooled line at prediction time.
			continue
		}
		m.Lines[k] = line
	}
	return m, nil
}

// Name implements Predictor.
func (m *LWModel) Name() string { return "LW" }

// GPUName implements Predictor.
func (m *LWModel) GPUName() string { return m.GPU }

// PredictLayer predicts one layer's execution time from its kind and FLOPs.
func (m *LWModel) PredictLayer(kind dnn.Kind, flops units.FLOPs) units.Seconds {
	if line, ok := m.Lines[kind]; ok {
		return clampTime(units.Seconds(line.Predict(float64(flops))))
	}
	return clampTime(units.Seconds(m.Pooled.Predict(float64(flops))))
}

// PredictNetwork implements Predictor: the sum of per-layer predictions over
// the network's layers that dispatch GPU work.
func (m *LWModel) PredictNetwork(n *dnn.Network, batch int) (units.Seconds, error) {
	tm := obs.StartTimer(metricLWPredict)
	defer tm.Stop()
	if err := n.Infer(batch); err != nil {
		return 0, err
	}
	var total units.Seconds
	for _, l := range n.Layers {
		if len(kernels.ForLayer(l)) == 0 {
			continue // view-only layers dispatch no GPU work
		}
		total += m.PredictLayer(l.Kind, units.FLOPs(dnn.LayerFLOPs(l)))
	}
	return total, nil
}

// KindsCovered returns the layer kinds with dedicated regressions, sorted.
func (m *LWModel) KindsCovered() []dnn.Kind {
	out := make([]dnn.Kind, 0, len(m.Lines))
	for k := range m.Lines {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
