package core

import "repro/internal/obs"

// Observability handles for the model layer, registered once at package
// init. Recording is gated by obs.Enabled() through obs.StartTimer, so the
// default (disabled) cost on the prediction hot path is one atomic load.
var (
	metricPlanCompile = obs.Default().Histogram("core_plan_compile_seconds",
		"Latency of compiling a prediction plan for one (network, model) pair.", nil)
	metricKWPredict = obs.Default().Histogram("core_kw_predict_seconds",
		"Latency of KWModel.PredictNetwork (cached or uncached path).", nil)
	metricIGKWPredict = obs.Default().Histogram("core_igkw_predict_seconds",
		"Latency of IGKWModel.PredictNetwork (cached or uncached path).", nil)
	metricLWPredict = obs.Default().Histogram("core_lw_predict_seconds",
		"Latency of LWModel.PredictNetwork.", nil)
	metricE2EPredict = obs.Default().Histogram("core_e2e_predict_seconds",
		"Latency of E2EModel.PredictNetwork.", nil)
	metricPlanCompiles = obs.Default().Counter("core_plan_compiles_total",
		"Prediction plans compiled (cache misses of the plan caches).")
)
