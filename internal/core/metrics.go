package core

import (
	"repro/internal/obs"
	"repro/internal/units"
)

// Observability handles for the model layer, registered once at package
// init. Recording is gated by obs.Enabled() through obs.StartTimer, so the
// default (disabled) cost on the prediction hot path is one atomic load.
var (
	metricPlanCompile = obs.Default().Histogram("core_plan_compile_seconds",
		"Latency of compiling a prediction plan for one (network, model) pair.", nil)
	metricKWPredict = obs.Default().Histogram("core_kw_predict_seconds",
		"Latency of KWModel.PredictNetwork (cached or uncached path).", nil)
	metricIGKWPredict = obs.Default().Histogram("core_igkw_predict_seconds",
		"Latency of IGKWModel.PredictNetwork (cached or uncached path).", nil)
	metricLWPredict = obs.Default().Histogram("core_lw_predict_seconds",
		"Latency of LWModel.PredictNetwork.", nil)
	metricE2EPredict = obs.Default().Histogram("core_e2e_predict_seconds",
		"Latency of E2EModel.PredictNetwork.", nil)
	metricPlanCompiles = obs.Default().Counter("core_plan_compiles_total",
		"Prediction plans compiled (cache misses of the plan caches).")
	metricSweepPredict = obs.Default().Histogram("core_sweep_predict_seconds",
		"Latency of one model-level PredictSweep call (all batch sizes).", nil)
	metricSweeps = obs.Default().Counter("core_sweeps_total",
		"Batch-size sweep predictions served (one per PredictSweep call).")
	metricSweepPoints = obs.Default().Counter("core_sweep_points_total",
		"Batch-size points evaluated across all sweep predictions.")
	metricSweepSize = obs.Default().ValueHistogram("core_sweep_size",
		"Distribution of batch-size points per sweep prediction.",
		[]units.Seconds{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	metricGrids = obs.Default().Counter("core_grids_total",
		"PredictGrid evaluations.")
	metricGridCells = obs.Default().Counter("core_grid_cells_total",
		"(model, network, batch) cells evaluated across all PredictGrid calls.")
)

// observeSweep records one sweep of the given width into the sweep metrics.
func observeSweep(points int) {
	metricSweeps.Inc()
	metricSweepPoints.Add(int64(points))
	metricSweepSize.Observe(units.Seconds(float64(points)))
}
