// Package core implements the paper's contribution: the family of
// linear-regression performance models for DNN execution time on GPUs.
//
// Four models of increasing fidelity are provided (§5):
//
//   - E2EModel — one regression from total network FLOPs to end-to-end time.
//   - LWModel — one regression per layer type, from layer FLOPs to layer time.
//   - KWModel — per-kernel-group regressions on an automatically classified
//     driver variable (layer input size, layer FLOPs, or layer output size),
//     routed through a layer→kernel mapping table.
//   - IGKWModel — a kernel-wise model whose regression slopes are re-derived
//     from a target GPU's theoretical memory bandwidth, predicting GPUs that
//     are absent from the training set.
//
// All models are trained purely from dataset records (internal/dataset) and
// predict from network structure alone — they never execute anything and
// never see the synthetic device model's parameters.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dnn"
	"repro/internal/units"
)

// minPrediction floors every per-component time prediction: a fitted line
// with a negative intercept can go below zero at small x, but a kernel or
// layer can never take negative time.
const minPrediction units.Seconds = 1e-7 // 0.1 µs

// Predictor is the common interface of the single-GPU models: predict the
// end-to-end execution time (seconds) of a network structure at a batch
// size, on the GPU the model was trained for.
type Predictor interface {
	// Name returns the model's short name ("E2E", "LW", "KW").
	Name() string
	// GPUName returns the GPU the model predicts for.
	GPUName() string
	// PredictNetwork predicts one batch's end-to-end time in seconds.
	PredictNetwork(n *dnn.Network, batch int) (units.Seconds, error)
}

// Eval is one prediction/measurement pair of an evaluation run.
type Eval struct {
	// Network is the evaluated network's name.
	Network string
	// Predicted and Measured are end-to-end seconds.
	Predicted, Measured units.Seconds
}

// Ratio returns Predicted/Measured, the quantity the paper's S-curve figures
// (11–14) plot.
func (e Eval) Ratio() float64 {
	if e.Measured == 0 {
		return math.Inf(1)
	}
	return float64(e.Predicted / e.Measured)
}

// RelError returns |Predicted−Measured|/Measured.
func (e Eval) RelError() float64 {
	if e.Measured == 0 {
		return math.Inf(1)
	}
	return math.Abs(float64(e.Predicted-e.Measured)) / float64(e.Measured)
}

// MeanRelError returns the average relative error over the evaluations — the
// paper's headline "error" metric (e.g. "0.35" for the E2E model).
func MeanRelError(evals []Eval) float64 {
	if len(evals) == 0 {
		return 0
	}
	var s float64
	for _, e := range evals {
		s += e.RelError()
	}
	return s / float64(len(evals))
}

// SortedRatios returns the Predicted/Measured ratios in ascending order —
// the S-curves of Figures 11–14.
func SortedRatios(evals []Eval) []float64 {
	out := make([]float64, len(evals))
	for i, e := range evals {
		out[i] = e.Ratio()
	}
	sort.Float64s(out)
	return out
}

// FractionWithin returns the fraction of evaluations whose relative error is
// at most tol (Figure 14's "about half of the models with an error of less
// than 10%").
func FractionWithin(evals []Eval, tol float64) float64 {
	if len(evals) == 0 {
		return 0
	}
	n := 0
	for _, e := range evals {
		if e.RelError() <= tol {
			n++
		}
	}
	return float64(n) / float64(len(evals))
}

// clampTime floors a component prediction at minPrediction.
//
//dnnperf:allocfree
func clampTime(t units.Seconds) units.Seconds {
	if t < minPrediction || t.IsNaN() {
		return minPrediction
	}
	return t
}

// DefaultEpsilon is the relative tolerance ApproxEqual applies when callers
// have no domain-specific bound: ~1e4 ULPs, loose enough to absorb
// re-association noise from refactored float pipelines, tight enough to
// distinguish any two measurements the profiler can produce.
const DefaultEpsilon = 1e-12

// ApproxEqual reports whether two floats agree within eps, scaled by the
// larger magnitude (absolute comparison near zero). It is the blessed
// replacement for `==`/`!=` on floats in non-test code: exact float equality
// silently turns into "never equal" under re-association or FMA contraction,
// so the floateq analyzer (internal/analysis) flags raw comparisons and
// points here.
func ApproxEqual(a, b, eps float64) bool {
	if a == b { // fast path; also handles ±Inf
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities; Inf-scale would absorb any finite gap below
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale > 1 {
		return diff <= eps*scale
	}
	return diff <= eps
}

// errNoRecords standardizes the "empty training data" failure.
func errNoRecords(model, gpu string) error {
	return fmt.Errorf("core: %s model: no training records for GPU %q", model, gpu)
}
