package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/units"
	"repro/internal/zoo"
)

// syntheticE2EDataset builds network records lying exactly on a planted
// FLOPs→time line.
func syntheticE2EDataset(gpuName string, slope, intercept float64) *dataset.Dataset {
	ds := &dataset.Dataset{}
	for i := 1; i <= 40; i++ {
		flops := int64(i) * 1e9
		ds.Networks = append(ds.Networks, dataset.NetworkRecord{
			Network: "net" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Family:  "F", Task: string(dnn.TaskImageClassification),
			GPU: gpuName, BatchSize: 512,
			TotalFLOPs: units.FLOPs(flops),
			E2ESeconds: units.Seconds(slope*float64(flops) + intercept),
		})
	}
	return ds
}

func TestE2EModelRecoversLine(t *testing.T) {
	ds := syntheticE2EDataset("A100", 2e-12, 5e-3)
	m, err := FitE2E(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Line.Slope-2e-12)/2e-12 > 1e-9 {
		t.Fatalf("slope = %v", m.Line.Slope)
	}
	want := 2e-12*50e9 + 5e-3
	if got := float64(m.PredictFLOPs(50e9)); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("PredictFLOPs = %v, want %v", got, want)
	}
	if m.Name() != "E2E" || m.GPUName() != "A100" {
		t.Fatal("identity accessors wrong")
	}
}

func TestE2EModelNeverNegative(t *testing.T) {
	// A negative-intercept fit must clamp tiny predictions at > 0.
	ds := syntheticE2EDataset("A100", 2e-12, -1e-3)
	m, err := FitE2E(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PredictFLOPs(1); got <= 0 {
		t.Fatalf("prediction %v must be positive", got)
	}
}

func TestFitE2EErrors(t *testing.T) {
	ds := syntheticE2EDataset("A100", 2e-12, 5e-3)
	if _, err := FitE2E(ds, "H100", 512); err == nil {
		t.Fatal("unknown GPU should error")
	}
	if _, err := FitE2E(ds, "A100", 64); err == nil {
		t.Fatal("missing batch size should error")
	}
}

func TestLWModelPerKindLines(t *testing.T) {
	ds := &dataset.Dataset{}
	// Conv layers at 2 ns/FLOP, BN layers at 10 ns/FLOP.
	for i := 1; i <= 30; i++ {
		ds.Layers = append(ds.Layers,
			dataset.LayerRecord{
				Network: "n", GPU: "A100", BatchSize: 512, LayerIndex: i,
				Kind: "Conv2D", FLOPs: units.FLOPs(i) * 1e6,
				Seconds: units.Seconds(2e-9 * float64(i) * 1e6),
			},
			dataset.LayerRecord{
				Network: "n", GPU: "A100", BatchSize: 512, LayerIndex: 100 + i,
				Kind: "BatchNorm", FLOPs: units.FLOPs(i) * 1e4,
				Seconds: units.Seconds(10e-9 * float64(i) * 1e4),
			})
	}
	m, err := FitLW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(m.PredictLayer(dnn.KindConv2D, 1e6)); math.Abs(got-2e-3)/2e-3 > 1e-6 {
		t.Fatalf("conv prediction = %v", got)
	}
	if got := float64(m.PredictLayer(dnn.KindBatchNorm, 1e4)); math.Abs(got-1e-4)/1e-4 > 1e-6 {
		t.Fatalf("bn prediction = %v", got)
	}
	// Unknown kinds use the pooled fallback and stay positive.
	if got := m.PredictLayer(dnn.KindSoftmax, 1e5); got <= 0 {
		t.Fatalf("fallback prediction = %v", got)
	}
	kinds := m.KindsCovered()
	if len(kinds) != 2 {
		t.Fatalf("KindsCovered = %v", kinds)
	}
}

// plantKernelDataset builds a kernel-record dataset for one GPU where every
// kernel behaves exactly linearly in its driver; rates scale with the GPU's
// bandwidth, as the IGKW model assumes.
func plantKernelDataset(g gpu.Spec, nets int) *dataset.Dataset {
	ds := &dataset.Dataset{}
	bwScale := g.MemBWGBps * 1e9
	for n := 0; n < nets; n++ {
		netName := "net" + string(rune('A'+n))
		for i := 0; i < 30; i++ {
			flops := int64((i + 1) * (n + 2) * 1e6)
			in := int64((i + 1) * (n + 1) * 5e4)
			out := int64((i + 1) * (n + 3) * 3e4)
			add := func(kernel string, d Driver, ratePerBW float64) {
				var x float64
				switch d {
				case DriverInput:
					x = float64(in)
				case DriverOperation:
					x = float64(flops)
				default:
					x = float64(out)
				}
				ds.Kernels = append(ds.Kernels, dataset.KernelRecord{
					Network: netName, GPU: g.Name, BatchSize: 512,
					LayerIndex: i, LayerKind: "Conv2D",
					LayerSignature: "sig" + string(rune('0'+i%10)),
					Kernel:         kernel,
					LayerFLOPs:     units.FLOPs(flops), LayerInputElems: in, LayerOutputElems: out,
					Seconds: units.Seconds(x/(ratePerBW*bwScale) + 2e-6),
				})
			}
			add("pre_transform", DriverInput, 0.05) // 0.05 elems/s per B/s of bandwidth
			add("main_gemm_64x64", DriverOperation, 0.5)
			add("post_transform", DriverOutput, 0.08)
		}
	}
	return ds
}

func TestKWModelOnPlantedData(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 4)
	m, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	if m.KernelCount() != 3 {
		t.Fatalf("kernels = %d", m.KernelCount())
	}
	// Per-kernel prediction reproduces the planted law.
	bw := gpu.A100.MemBWGBps * 1e9
	got := float64(m.PredictKernel("main_gemm_64x64", 1e8, 1, 1))
	want := 1e8/(0.5*bw) + 2e-6
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("kernel prediction = %v, want %v", got, want)
	}
	// PredictRecords sums the regressions over the record list.
	var sum float64
	for _, r := range ds.Kernels[:90] { // one network's records
		sum += float64(r.Seconds)
	}
	pred := float64(m.PredictRecords(ds.Kernels[:90]))
	if math.Abs(pred-sum)/sum > 0.02 {
		t.Fatalf("PredictRecords = %v, want ≈ %v", pred, sum)
	}
}

func TestKWModelFallbackHierarchy(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 4)
	m, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	// Unseen tile variant of a known family → family fallback, close to the
	// family's behaviour.
	got := float64(m.PredictKernel("main_gemm_128x128", 1e8, 1, 1))
	bw := gpu.A100.MemBWGBps * 1e9
	want := 1e8/(0.5*bw) + 2e-6
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("family fallback = %v, want ≈ %v", got, want)
	}
	// Entirely unknown kernel with FLOPs → operation-class fallback.
	if got := m.PredictKernel("mystery_kernel", 1e8, 5e5, 5e5); got <= 0 {
		t.Fatalf("class fallback = %v", got)
	}
	// Zero-FLOPs unknown kernel → output-class fallback.
	if got := m.PredictKernel("mystery_copy", 0, 5e5, 5e5); got <= 0 {
		t.Fatalf("output fallback = %v", got)
	}
}

func TestIGKWRecoversBandwidthScaling(t *testing.T) {
	// Train on three GPUs whose kernel rates scale exactly with bandwidth;
	// the IGKW model must then predict a fourth GPU near-perfectly.
	ds := &dataset.Dataset{}
	train := []gpu.Spec{gpu.A100, gpu.A40, gpu.GTX1080Ti}
	for _, g := range train {
		ds.Merge(plantKernelDataset(g, 4))
	}
	m, err := FitIGKW(ds, train, gpu.TitanRTX, 512)
	if err != nil {
		t.Fatal(err)
	}
	if m.GPUName() != "TITAN RTX" || m.Name() != "IGKW" {
		t.Fatal("identity accessors wrong")
	}
	target := plantKernelDataset(gpu.TitanRTX, 1)
	var want float64
	for _, r := range target.Kernels {
		want += float64(r.Seconds)
	}
	got := float64(m.PredictRecords(target.Kernels))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("IGKW prediction = %v, want ≈ %v", got, want)
	}
}

func TestIGKWNeedsTwoGPUs(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 2)
	if _, err := FitIGKW(ds, []gpu.Spec{gpu.A100}, gpu.TitanRTX, 512); err == nil {
		t.Fatal("single training GPU should error")
	}
}

func TestResolveRateClamping(t *testing.T) {
	// Extrapolating far below the observed bandwidths must not produce a
	// negative or absurd rate.
	line, ok := resolveRate(
		[]float64{800, 1000, 1200},
		[]float64{100, 200, 300}, // strong positive trend, intercept −300
		[]float64{1e-6, 1e-6, 1e-6},
		10, // far below the observations
	)
	if !ok {
		t.Fatal("resolveRate failed")
	}
	if line.Slope <= 0 || math.IsInf(line.Slope, 0) {
		t.Fatalf("clamped slope = %v", line.Slope)
	}
}

func TestResolveRateSingleGPU(t *testing.T) {
	line, ok := resolveRate([]float64{500}, []float64{100}, []float64{2e-6}, 1000)
	if !ok {
		t.Fatal("single-point resolve failed")
	}
	// Proportional scaling: rate 200 at bw 1000 → slope 1/200.
	if math.Abs(line.Slope-1.0/200) > 1e-12 {
		t.Fatalf("slope = %v", line.Slope)
	}
	if line.Intercept != 2e-6 {
		t.Fatalf("intercept = %v", line.Intercept)
	}
}

func TestEvalMetrics(t *testing.T) {
	evals := []Eval{
		{Network: "a", Predicted: 11, Measured: 10}, // +10 %
		{Network: "b", Predicted: 8, Measured: 10},  // −20 %
		{Network: "c", Predicted: 10, Measured: 10}, // 0 %
	}
	if got := MeanRelError(evals); !ApproxEqual(got, 0.1, 1e-12) {
		t.Fatalf("MeanRelError = %v", got)
	}
	ratios := SortedRatios(evals)
	if ratios[0] != 0.8 || ratios[1] != 1.0 || ratios[2] != 1.1 {
		t.Fatalf("SortedRatios = %v", ratios)
	}
	if got := FractionWithin(evals, 0.10); !ApproxEqual(got, 2.0/3, 1e-12) {
		t.Fatalf("FractionWithin = %v", got)
	}
	if MeanRelError(nil) != 0 || FractionWithin(nil, 1) != 0 {
		t.Fatal("empty evals should give 0")
	}
	if !math.IsInf((Eval{Predicted: 1}).Ratio(), 1) {
		t.Fatal("zero measured should give +Inf ratio")
	}
}

// TestEndToEndPipeline is the integration test: build a small dataset
// through the real substrate, train all models, and verify the paper's
// qualitative ordering E2E > LW > KW on held-out networks.
func TestEndToEndPipeline(t *testing.T) {
	all := zoo.Full()
	var nets []*dnn.Network
	for i := 0; i < len(all); i += 4 {
		nets = append(nets, all[i])
	}
	byName := map[string]*dnn.Network{}
	for _, n := range nets {
		byName[n.Name] = n
	}
	opt := dataset.DefaultBuildOptions()
	opt.Batches = 8
	opt.Warmup = 2
	ds, _, err := dataset.Build(nets, []gpu.Spec{gpu.A100}, opt)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.SplitByNetwork(0.15, 1)

	e2e, err := FitE2E(train, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := FitLW(train, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	kw, err := FitKW(train, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	if kw.ModelCount() >= kw.KernelCount() {
		t.Fatalf("grouping should reduce models: %d kernels → %d models",
			kw.KernelCount(), kw.ModelCount())
	}

	errs := map[string]float64{}
	for _, m := range []Predictor{e2e, lw, kw} {
		var evals []Eval
		for _, r := range test.Networks {
			if r.BatchSize != 512 || r.Task != string(dnn.TaskImageClassification) {
				continue
			}
			p, err := m.PredictNetwork(byName[r.Network], 512)
			if err != nil {
				t.Fatal(err)
			}
			evals = append(evals, Eval{Network: r.Network, Predicted: p, Measured: r.E2ESeconds})
		}
		if len(evals) < 5 {
			t.Fatalf("%s: only %d test networks", m.Name(), len(evals))
		}
		errs[m.Name()] = MeanRelError(evals)
	}
	t.Logf("errors: E2E=%.3f LW=%.3f KW=%.3f", errs["E2E"], errs["LW"], errs["KW"])
	if !(errs["KW"] < errs["LW"] && errs["LW"] < errs["E2E"]) {
		t.Fatalf("model ordering violated: %v", errs)
	}
	if errs["KW"] > 0.15 {
		t.Fatalf("KW error %v far above the paper's regime", errs["KW"])
	}
}

// TestKWPredictLayerTime checks the per-layer prediction used by the
// disaggregated-memory case study.
func TestKWPredictLayerTime(t *testing.T) {
	nets := []*dnn.Network{zoo.MustResNet(18), zoo.MustVGG(11, false)}
	opt := dataset.DefaultBuildOptions()
	opt.Batches = 3
	opt.Warmup = 1
	opt.E2EBatchSizes = []int{512}
	ds, _, err := dataset.Build(nets, []gpu.Spec{gpu.A100}, opt)
	if err != nil {
		t.Fatal(err)
	}
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	net := zoo.MustResNet(18)
	if err := net.Infer(512); err != nil {
		t.Fatal(err)
	}
	var sum units.Seconds
	for _, l := range net.Layers {
		lt := kw.PredictLayerTime(l)
		if lt < 0 {
			t.Fatalf("negative layer time for %s", l.Name)
		}
		sum += lt
	}
	whole, err := kw.PredictNetwork(net, 512)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(sum-whole))/float64(whole) > 1e-9 {
		t.Fatalf("Σ layer predictions %v != network prediction %v", sum, whole)
	}
}

func TestGroupSummaries(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 3)
	m, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.GroupSummaries(); len(got) != m.ModelCount() {
		t.Fatalf("summaries = %d, models = %d", len(got), m.ModelCount())
	}
}
