package core

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// Telemetry must be a pure side channel: the golden artifacts (serialized
// model + exact plan dump) are byte-identical whether observation and
// tracing are enabled or not.
func TestGoldenDeterminismWithObsEnabled(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	prevEnabled := obs.Enabled()
	prevTracer := obs.CurrentTracer()
	defer func() {
		obs.SetEnabled(prevEnabled)
		obs.SetTracer(prevTracer)
	}()

	obs.SetEnabled(false)
	obs.SetTracer(nil)
	modelOff, planOff := goldenArtifacts(t, runtime.NumCPU())

	obs.SetEnabled(true)
	obs.SetTracer(obs.NewTracer())
	modelOn, planOn := goldenArtifacts(t, runtime.NumCPU())

	if !bytes.Equal(modelOff, modelOn) {
		t.Errorf("serialized model differs with observation enabled (%d vs %d bytes)",
			len(modelOff), len(modelOn))
	}
	if !bytes.Equal(planOff, planOn) {
		t.Errorf("compiled plan differs with observation enabled:\n%s\nvs\n%s", planOff, planOn)
	}
	// And the run must actually have recorded telemetry — otherwise this
	// test proves nothing.
	if obs.CurrentTracer() == nil || len(obs.CurrentTracer().Events()) == 0 {
		t.Error("no spans recorded with tracing enabled; instrumentation is dead")
	}
}

// BenchmarkKWPredictPlanObsEnabled is BenchmarkKWPredictPlan with latency
// timing on — the pair quantifies the instrumentation overhead on the
// cached hot path (the acceptance bound is <5%).
func BenchmarkKWPredictPlanObsEnabled(b *testing.B) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	kw, net := benchKW(b)
	if _, err := kw.PredictNetwork(net, 512); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kw.PredictNetwork(net, 64+(i%4)*64); err != nil {
			b.Fatal(err)
		}
	}
}
