package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/regression"
)

// Online learning for the kernel-wise model. The paper motivates training
// from a single batch size partly because it "makes our solutions more
// suitable for online learning (updating the model in the deployed
// environment in real-time)" (§5.2). ObserveRecords implements that claim
// with a strong guarantee: after any stream of updates the model is
// identical to one freshly fitted on the union of all observed records.
//
// The mechanism: every kernel keeps one OLS accumulator per candidate driver
// variable (the sufficient statistics of §4 O5's three regressions). New
// records fold into the accumulators in O(1); the classification, grouping
// and fallback structure are then rebuilt from the accumulators — cheap,
// since the data is already reduced to per-kernel statistics.
type onlineState struct {
	// kernelAcc[name][i] accumulates (driver_i, seconds) for Drivers()[i].
	kernelAcc map[string]*[3]regression.Accumulator
	// mapping accumulates layer-signature → kernel-list entries from
	// streamed records.
	mapping map[string][]string
}

// accumulate folds records into the per-kernel driver accumulators.
func (st *onlineState) accumulate(recs []dataset.KernelRecord) {
	for _, r := range recs {
		acc, ok := st.kernelAcc[r.Kernel]
		if !ok {
			acc = &[3]regression.Accumulator{}
			st.kernelAcc[r.Kernel] = acc
		}
		for i, d := range Drivers() {
			acc[i].Add(driverX(r, d), float64(r.Seconds))
		}
	}
}

// sortedStringKeys returns the map's keys in sorted order. Every loop in this
// package that folds floats or appends to an output slice while walking a
// string-keyed map iterates via this helper: Go randomizes map iteration
// order, and float accumulation is not associative, so ranging the map
// directly would make refitted coefficients differ bit-for-bit between runs
// (the detrange invariant in internal/analysis).
func sortedStringKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// initOnline seeds the accumulators (and the mapping table) from the
// fit-time records so later observations blend with the training data.
func (m *KWModel) initOnline(recs []dataset.KernelRecord) {
	st := &onlineState{
		kernelAcc: map[string]*[3]regression.Accumulator{},
		mapping:   map[string][]string{},
	}
	st.accumulate(recs)
	m.online = st
}

// classifyFromAccumulators reproduces ClassifyKernels from the sufficient
// statistics: best (non-negative-slope-preferred) R² wins.
func classifyFromAccumulators(name string, acc *[3]regression.Accumulator) Classification {
	c := Classification{Kernel: name, R2: map[Driver]float64{}, N: acc[0].N()}
	best := -1.0
	for i, d := range Drivers() {
		line, err := acc[i].Line()
		if err != nil {
			continue
		}
		r2 := line.R2
		if line.Slope < 0 {
			r2 -= 1
		}
		c.R2[d] = line.R2
		if r2 > best {
			best = r2
			c.Driver = d
			c.Line = line
		}
	}
	if c.Driver == "" {
		c.Driver = DriverOutput
		c.Line = regression.Line{Intercept: acc[0].MeanY(), N: acc[0].N()}
	}
	return c
}

// rebuildFromAccumulators reconstructs classification, groups and fallbacks
// from the online statistics — the same structure FitKW derives from raw
// records. Kernels the model knows from fit time but whose statistics are
// not in the accumulators (possible after deserialization, where only the
// fitted parameters survive) keep their existing models as frozen singleton
// groups, so updating is never destructive.
func (m *KWModel) rebuildFromAccumulators() {
	st := m.online

	// Frozen state: previously fitted kernels without online statistics.
	frozen := map[string]Group{}
	for _, name := range sortedStringKeys(m.GroupOf) {
		if _, ok := st.kernelAcc[name]; !ok {
			g := m.Groups[m.GroupOf[name]]
			frozen[name] = Group{Driver: g.Driver, Kernels: []string{name},
				Line: g.Line, RMSE: g.RMSE}
		}
	}

	if m.Classif == nil {
		m.Classif = map[string]Classification{}
	}
	for _, name := range sortedStringKeys(st.kernelAcc) {
		m.Classif[name] = classifyFromAccumulators(name, st.kernelAcc[name])
	}

	// Regroup accumulator-backed kernels by (driver, slope proximity)
	// exactly as GroupKernels does, then re-attach the frozen singletons in
	// sorted order (ranging the map would append them — and therefore assign
	// group indices — in a different order every run).
	m.Groups, m.GroupOf = groupFromAccumulators(m.Classif, st.kernelAcc)
	for _, name := range sortedStringKeys(frozen) {
		m.GroupOf[name] = len(m.Groups)
		m.Groups = append(m.Groups, frozen[name])
	}

	// Per-driver class fallbacks from merged accumulators (only when the
	// statistics exist and are non-degenerate; a deserialized model keeps its
	// fitted fallbacks). classPools/familyAccumulators merge in sorted kernel
	// order, keeping the pooled statistics bit-identical across runs.
	if len(st.kernelAcc) > 0 {
		if m.ClassFallback == nil {
			m.ClassFallback = map[Driver]regression.Line{}
		}
		pools := classPools(m.Classif, st.kernelAcc)
		for i, d := range Drivers() {
			if line, err := pools[i].Line(); err == nil {
				m.ClassFallback[d] = line
			}
		}

		// Family-level models from merged accumulators of same-family
		// kernels (frozen families are preserved unless re-observed).
		if m.Families == nil {
			m.Families = map[string]Classification{}
		}
		famAcc := familyAccumulators(st.kernelAcc)
		for _, fam := range sortedStringKeys(famAcc) {
			m.Families[fam] = classifyFromAccumulators(fam, famAcc[fam])
		}
	}

	// Extend the mapping table with streamed signatures.
	if m.Mapping == nil {
		m.Mapping = map[string][]string{}
	}
	for _, sig := range sortedStringKeys(st.mapping) {
		if _, ok := m.Mapping[sig]; !ok {
			m.Mapping[sig] = st.mapping[sig]
		}
	}
}

// groupFromAccumulators mirrors GroupKernels over accumulator statistics.
func groupFromAccumulators(classif map[string]Classification,
	kernelAcc map[string]*[3]regression.Accumulator) ([]Group, map[string]int) {

	var groups []Group
	groupOf := map[string]int{}
	for _, d := range Drivers() {
		var members []kernelSlope
		for _, name := range sortedStringKeys(classif) {
			c := classif[name]
			if _, backed := kernelAcc[name]; !backed {
				continue // frozen fit-time kernel with no online statistics
			}
			if c.Driver == d && c.N >= MinKernelObservations {
				members = append(members, kernelSlope{name, c.Line.Slope})
			}
		}
		sortMembers(members)
		for i := 0; i < len(members); {
			j := i + 1
			anchor := members[i].slope
			for j < len(members) {
				s := members[j].slope
				if anchor <= 0 || s <= 0 || s > anchor*slopeMergeRatio {
					break
				}
				j++
			}
			g := Group{Driver: d}
			var pooled regression.Accumulator
			for _, mem := range members[i:j] {
				g.Kernels = append(g.Kernels, mem.name)
				groupOf[mem.name] = len(groups)
				pooled.Merge(kernelAcc[mem.name][driverIndex(d)])
			}
			if line, err := pooled.Line(); err == nil {
				g.Line = line
				g.RMSE = pooled.RMSE()
			} else {
				g.Line = regression.Line{Intercept: pooled.MeanY(), N: pooled.N()}
			}
			groups = append(groups, g)
			i = j
		}
	}
	return groups, groupOf
}

// kernelSlope pairs a kernel with its classified slope for grouping.
type kernelSlope struct {
	name  string
	slope float64
}

// sortMembers orders by (slope, name) for deterministic grouping. The
// comparator orders on < and > only — an equality test on the float slopes
// would trip the floateq invariant for no gain.
func sortMembers(members []kernelSlope) {
	sort.Slice(members, func(i, j int) bool {
		if members[i].slope < members[j].slope {
			return true
		}
		if members[i].slope > members[j].slope {
			return false
		}
		return members[i].name < members[j].name
	})
}

// ObserveRecords folds new kernel measurements into the model in place and
// rebuilds the classification/grouping structure from the accumulated
// statistics, so the model always equals a fresh fit on everything observed.
// It returns the number of group models after the update and the number of
// kernels that gained a dedicated model through this batch.
func (m *KWModel) ObserveRecords(recs []dataset.KernelRecord) (groups, newKernels int) {
	if m.online == nil {
		m.initOnline(nil)
	}
	st := m.online

	before := map[string]bool{}
	for _, name := range sortedStringKeys(m.GroupOf) {
		before[name] = true
	}

	st.accumulate(recs)
	for sig, ks := range buildMapping(recs) {
		if _, ok := st.mapping[sig]; !ok {
			st.mapping[sig] = ks
		}
	}
	m.rebuildFromAccumulators()

	// The regression structure changed: every compiled plan and cached layer
	// term list may now be stale.
	m.plans.Clear()
	m.layerPlans.Clear()

	for _, name := range sortedStringKeys(m.GroupOf) {
		if !before[name] {
			newKernels++
		}
	}
	return len(m.Groups), newKernels
}

// PendingKernels reports kernels observed online that do not yet have enough
// measurements for a dedicated model, with their observation counts.
func (m *KWModel) PendingKernels() map[string]int {
	out := map[string]int{}
	if m.online == nil {
		return out
	}
	for _, name := range sortedStringKeys(m.online.kernelAcc) {
		if acc := m.online.kernelAcc[name]; acc[0].N() < MinKernelObservations {
			if _, ok := m.GroupOf[name]; !ok {
				out[name] = acc[0].N()
			}
		}
	}
	return out
}
