package core

import (
	"math"
	"testing"

	"repro/internal/gpu"
)

func TestObserveRecordsRefinesGroups(t *testing.T) {
	// Fit on a slightly biased subset, then stream in the rest; the group
	// line must move toward the full-data fit.
	full := plantKernelDataset(gpu.A100, 6)
	half := plantKernelDataset(gpu.A100, 3)

	m, err := FitKW(half, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	gi := m.GroupOf["main_gemm_64x64"]
	before := m.Groups[gi].Line

	// Stream the remaining records (networks D–F).
	var fresh int
	seen := map[string]bool{}
	for _, r := range half.Kernels {
		seen[r.Network] = true
	}
	var stream = full.Kernels[:0:0]
	for _, r := range full.Kernels {
		if !seen[r.Network] {
			stream = append(stream, r)
			fresh++
		}
	}
	if fresh == 0 {
		t.Fatal("no fresh records to stream")
	}
	updated, created := m.ObserveRecords(stream)
	if updated == 0 {
		t.Fatal("no groups updated")
	}
	if created != 0 {
		t.Fatalf("unexpected new kernels: %d", created)
	}
	after := m.Groups[gi].Line
	if after == before {
		t.Fatal("group line did not move")
	}
	// The refreshed line must match fitting on all the data at once.
	whole, err := FitKW(full, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	wholeLine := whole.Groups[whole.GroupOf["main_gemm_64x64"]].Line
	if math.Abs(after.Slope-wholeLine.Slope)/wholeLine.Slope > 1e-9 {
		t.Fatalf("online slope %v vs batch slope %v", after.Slope, wholeLine.Slope)
	}
}

func TestObserveRecordsPromotesNewKernels(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 4)
	m, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.GroupOf["brand_new_kernel"]; ok {
		t.Fatal("kernel should not exist yet")
	}

	// Stream fewer than the promotion threshold: stays pending.
	few := plantRecords("brand_new_kernel", DriverOperation, 4e-9, 1e-6, MinKernelObservations-1, 42)
	if _, created := m.ObserveRecords(few); created != 0 {
		t.Fatal("premature promotion")
	}
	if n := m.PendingKernels()["brand_new_kernel"]; n != MinKernelObservations-1 {
		t.Fatalf("pending count = %d", n)
	}

	// One more observation crosses the threshold.
	one := plantRecords("brand_new_kernel", DriverOperation, 4e-9, 1e-6, 1, 43)
	if _, created := m.ObserveRecords(one); created != 1 {
		t.Fatal("kernel not promoted")
	}
	gi, ok := m.GroupOf["brand_new_kernel"]
	if !ok {
		t.Fatal("promoted kernel has no group")
	}
	if m.Groups[gi].Driver != DriverOperation {
		t.Fatalf("promoted driver = %s", m.Groups[gi].Driver)
	}
	// Its predictions now follow the planted law.
	got := float64(m.PredictKernel("brand_new_kernel", 1e6, 1, 1))
	want := 4e-9*1e6 + 1e-6
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("promoted prediction %v, want ≈ %v", got, want)
	}
	if len(m.PendingKernels()) != 0 {
		t.Fatal("pending buffer not drained")
	}
}

func TestObserveRecordsOnUninitializedModel(t *testing.T) {
	// A model assembled without initOnline (e.g. deserialized) must not
	// panic; ObserveRecords bootstraps the state lazily.
	m := &KWModel{GPU: "A100", GroupOf: map[string]int{}, Classif: map[string]Classification{}}
	recs := plantRecords("k", DriverInput, 1e-9, 1e-6, MinKernelObservations, 44)
	if _, created := m.ObserveRecords(recs); created != 1 {
		t.Fatal("bootstrap promotion failed")
	}
}
