package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/regression"
	"repro/internal/units"
)

// Small-batch correction — the paper's stated limitation and plan (§7):
// "when the batch size or the network is small, and the GPU cannot be fully
// utilized, the CPU and the CPU-GPU communication can be the major
// performance bottleneck. … in the future, we plan to include a CPU and a
// communication model so that we can also accurately predict performance
// for small workloads."
//
// SmallBatchModel implements that plan in the same data-driven spirit: per
// batch size, the measured end-to-end time is recalibrated against two
// structural predictors — the raw KW prediction and the kernel-launch count
// (each launch costs CPU time; short kernels also pipeline under their
// neighbours, so the correction can carry either sign).

// SmallBatchModel wraps a kernel-wise model with per-batch-size
// recalibrations.
type SmallBatchModel struct {
	// KW is the underlying kernel-wise model.
	KW *KWModel
	// Corrections maps a batch size to the fitted calibration
	// (predictors: [raw KW prediction, kernel-launch count]).
	Corrections map[int]regression.MultiModel
}

// NetworkResolver resolves a dataset network name to its structure.
type NetworkResolver func(name string) (*dnn.Network, error)

// FitSmallBatch learns the residual corrections from the dataset's
// end-to-end records across every batch size present.
func FitSmallBatch(kw *KWModel, ds *dataset.Dataset, resolve NetworkResolver) (*SmallBatchModel, error) {
	type pt struct {
		x []float64
		y float64
	}
	byBatch := map[int][]pt{}
	for _, r := range ds.Networks {
		if r.GPU != kw.GPU || r.Task != string(dnn.TaskImageClassification) {
			continue
		}
		net, err := resolve(r.Network)
		if err != nil {
			return nil, fmt.Errorf("core: small-batch fit: %w", err)
		}
		pred, err := kw.PredictNetwork(net, r.BatchSize)
		if err != nil {
			return nil, err
		}
		count := float64(kw.launchCount(net))
		byBatch[r.BatchSize] = append(byBatch[r.BatchSize],
			pt{x: []float64{float64(pred), count}, y: float64(r.E2ESeconds)})
	}
	if len(byBatch) == 0 {
		return nil, errNoRecords("small-batch", kw.GPU)
	}
	m := &SmallBatchModel{KW: kw, Corrections: map[int]regression.MultiModel{}}
	batches := make([]int, 0, len(byBatch))
	for bs := range byBatch {
		batches = append(batches, bs)
	}
	sort.Ints(batches)
	for _, bs := range batches {
		pts := byBatch[bs]
		xs := make([][]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.x, p.y
		}
		model, err := regression.MultiFit(xs, ys)
		if err != nil {
			continue // too few networks at this batch: no correction
		}
		m.Corrections[bs] = model
	}
	return m, nil
}

// Name implements Predictor.
func (m *SmallBatchModel) Name() string { return "KW+overhead" }

// GPUName implements Predictor.
func (m *SmallBatchModel) GPUName() string { return m.KW.GPU }

// PredictNetwork implements Predictor: the KW prediction plus the residual
// correction of the nearest fitted batch size (log-scale distance).
func (m *SmallBatchModel) PredictNetwork(n *dnn.Network, batch int) (units.Seconds, error) {
	pred, err := m.KW.PredictNetwork(n, batch)
	if err != nil {
		return 0, err
	}
	cal, ok := m.correctionFor(batch)
	if !ok {
		return pred, nil
	}
	corrected := cal.Predict([]float64{float64(pred), float64(m.KW.launchCount(n))})
	return clampTime(units.Seconds(corrected)), nil
}

// correctionFor picks the calibration of the nearest fitted batch size
// (log-scale distance). Candidates are scanned in sorted batch order so a
// distance tie resolves to the smaller batch size on every run.
func (m *SmallBatchModel) correctionFor(batch int) (regression.MultiModel, bool) {
	if cal, ok := m.Corrections[batch]; ok {
		return cal, true
	}
	bestDist := math.Inf(1)
	var best regression.MultiModel
	found := false
	for _, bs := range m.FittedBatchSizes() {
		d := math.Abs(math.Log(float64(bs)) - math.Log(float64(batch)))
		if d < bestDist {
			bestDist, best, found = d, m.Corrections[bs], true
		}
	}
	return best, found
}

// FittedBatchSizes lists the batch sizes with learned corrections, sorted.
func (m *SmallBatchModel) FittedBatchSizes() []int {
	out := make([]int, 0, len(m.Corrections))
	for bs := range m.Corrections {
		out = append(out, bs)
	}
	sort.Ints(out)
	return out
}
