package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/regression"
	"repro/internal/zoo"
)

func TestSmallBatchCorrection(t *testing.T) {
	// Full pipeline on a diverse subset: the corrected model must improve
	// on the raw KW model at the smallest batch size.
	all := zoo.Full()
	var nets []*dnn.Network
	byName := map[string]*dnn.Network{}
	for i := 0; i < len(all); i += 8 {
		nets = append(nets, all[i])
		byName[all[i].Name] = all[i]
	}
	opt := dataset.DefaultBuildOptions()
	opt.Batches = 5
	opt.Warmup = 1
	opt.E2EBatchSizes = []int{4, 512}
	ds, _, err := dataset.Build(nets, []gpu.Spec{gpu.A100}, opt)
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.SplitByNetwork(0.2, 3)

	kw, err := FitKW(train, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	resolve := func(name string) (*dnn.Network, error) { return byName[name], nil }
	sb, err := FitSmallBatch(kw, train, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.FittedBatchSizes()) < 2 {
		t.Fatalf("fitted batches = %v", sb.FittedBatchSizes())
	}
	if sb.Name() != "KW+overhead" || sb.GPUName() != "A100" {
		t.Fatal("identity accessors wrong")
	}

	evalErr := func(m Predictor, batch int) float64 {
		var evals []Eval
		for _, r := range test.Networks {
			if r.BatchSize != batch || r.Task != string(dnn.TaskImageClassification) {
				continue
			}
			p, err := m.PredictNetwork(byName[r.Network], batch)
			if err != nil {
				t.Fatal(err)
			}
			evals = append(evals, Eval{Predicted: p, Measured: r.E2ESeconds})
		}
		if len(evals) == 0 {
			t.Fatalf("no test records at batch %d", batch)
		}
		return MeanRelError(evals)
	}

	raw4, cor4 := evalErr(kw, 4), evalErr(sb, 4)
	t.Logf("batch 4: raw %.3f corrected %.3f", raw4, cor4)
	if cor4 >= raw4 {
		t.Fatalf("correction did not help at batch 4: %.3f vs %.3f", cor4, raw4)
	}
	// At the training batch size the correction must not do damage.
	raw512, cor512 := evalErr(kw, 512), evalErr(sb, 512)
	t.Logf("batch 512: raw %.3f corrected %.3f", raw512, cor512)
	if cor512 > raw512*1.75 {
		t.Fatalf("correction degraded the training batch: %.3f vs %.3f", cor512, raw512)
	}
}

func TestSmallBatchNearestFallback(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 4)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built corrections: identity at 512, doubling at 4.
	sb := &SmallBatchModel{KW: kw, Corrections: map[int]regression.MultiModel{
		512: {Coef: []float64{1, 0}},
		4:   {Coef: []float64{2, 0}},
	}}
	if cal, ok := sb.correctionFor(512); !ok || cal.Coef[0] != 1 {
		t.Fatal("exact batch lookup failed")
	}
	// Batch 8 is nearest (log-scale) to 4.
	if cal, ok := sb.correctionFor(8); !ok || cal.Coef[0] != 2 {
		t.Fatal("nearest-batch fallback failed")
	}
	// Batch 200 is nearest to 512.
	if cal, ok := sb.correctionFor(200); !ok || cal.Coef[0] != 1 {
		t.Fatal("nearest-batch fallback (high side) failed")
	}
	if sizes := sb.FittedBatchSizes(); len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 512 {
		t.Fatalf("FittedBatchSizes = %v", sizes)
	}
}
