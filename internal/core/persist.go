package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/gpu"
	"repro/internal/regression"
)

// Model persistence. The paper's workflow (Figure 10) explicitly separates
// training from prediction: "the performance analytical model and its
// parameters can be distributed to users". This file serializes trained
// models as JSON so a model trained where the measurements live can be
// shipped to users who only have network structures.
//
// The envelope carries a kind tag and a format version; unknown kinds and
// newer versions are rejected with descriptive errors.

// persistVersion is the current serialization format version.
const persistVersion = 1

// envelope wraps any serialized model.
type envelope struct {
	Kind    string          `json:"kind"`
	Version int             `json:"version"`
	Model   json.RawMessage `json:"model"`
}

// Model kinds in envelopes.
const (
	kindE2E  = "e2e"
	kindLW   = "lw"
	kindKW   = "kw"
	kindIGKW = "igkw"
)

// kwModelJSON mirrors KWModel's exported state (the unexported online state
// is rebuilt lazily on first ObserveRecords).
type kwModelJSON struct {
	GPU           string                     `json:"gpu"`
	TrainBatch    int                        `json:"train_batch"`
	Classif       map[string]Classification  `json:"classification"`
	Groups        []Group                    `json:"groups"`
	GroupOf       map[string]int             `json:"group_of"`
	Mapping       map[string][]string        `json:"mapping"`
	Families      map[string]Classification  `json:"families"`
	ClassFallback map[Driver]regression.Line `json:"class_fallback"`
	Training      bool                       `json:"training"`
}

// igkwModelJSON mirrors IGKWModel's exported state.
type igkwModelJSON struct {
	TrainGPUs     []string                   `json:"train_gpus"`
	Target        gpu.Spec                   `json:"target"`
	TrainBatch    int                        `json:"train_batch"`
	Lines         map[string]regression.Line `json:"lines"`
	DriverOf      map[string]Driver          `json:"driver_of"`
	Mapping       map[string][]string        `json:"mapping"`
	FamilyLines   map[string]regression.Line `json:"family_lines"`
	FamilyDriver  map[string]Driver          `json:"family_driver"`
	ClassFallback map[Driver]regression.Line `json:"class_fallback"`
}

// Save serializes a trained model (E2E, LW, KW or IGKW) to w.
func Save(w io.Writer, model Predictor) error {
	var kind string
	var payload interface{}
	switch m := model.(type) {
	case *E2EModel:
		kind, payload = kindE2E, m
	case *LWModel:
		kind, payload = kindLW, m
	case *KWModel:
		kind, payload = kindKW, kwModelJSON{
			GPU: m.GPU, TrainBatch: m.TrainBatch, Classif: m.Classif,
			Groups: m.Groups, GroupOf: m.GroupOf, Mapping: m.Mapping,
			Families: m.Families, ClassFallback: m.ClassFallback,
			Training: m.Training,
		}
	case *IGKWModel:
		kind, payload = kindIGKW, igkwModelJSON{
			TrainGPUs: m.TrainGPUs, Target: m.Target, TrainBatch: m.TrainBatch,
			Lines: m.Lines, DriverOf: m.DriverOf, Mapping: m.Mapping,
			FamilyLines: m.FamilyLines, FamilyDriver: m.FamilyDriver,
			ClassFallback: m.ClassFallback,
		}
	default:
		return fmt.Errorf("core: cannot serialize model type %T", model)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("core: serialize %s model: %w", kind, err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(envelope{Kind: kind, Version: persistVersion, Model: raw})
}

// Load deserializes a model previously written by Save. The concrete type is
// recovered from the envelope's kind tag.
func Load(r io.Reader) (Predictor, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	if env.Version > persistVersion {
		return nil, fmt.Errorf("core: model format version %d is newer than supported %d",
			env.Version, persistVersion)
	}
	switch env.Kind {
	case kindE2E:
		m := &E2EModel{}
		if err := json.Unmarshal(env.Model, m); err != nil {
			return nil, fmt.Errorf("core: load E2E model: %w", err)
		}
		return m, nil
	case kindLW:
		m := &LWModel{}
		if err := json.Unmarshal(env.Model, m); err != nil {
			return nil, fmt.Errorf("core: load LW model: %w", err)
		}
		return m, nil
	case kindKW:
		var j kwModelJSON
		if err := json.Unmarshal(env.Model, &j); err != nil {
			return nil, fmt.Errorf("core: load KW model: %w", err)
		}
		return &KWModel{
			GPU: j.GPU, TrainBatch: j.TrainBatch, Classif: j.Classif,
			Groups: j.Groups, GroupOf: j.GroupOf, Mapping: j.Mapping,
			Families: j.Families, ClassFallback: j.ClassFallback,
			Training: j.Training,
		}, nil
	case kindIGKW:
		var j igkwModelJSON
		if err := json.Unmarshal(env.Model, &j); err != nil {
			return nil, fmt.Errorf("core: load IGKW model: %w", err)
		}
		return &IGKWModel{
			TrainGPUs: j.TrainGPUs, Target: j.Target, TrainBatch: j.TrainBatch,
			Lines: j.Lines, DriverOf: j.DriverOf, Mapping: j.Mapping,
			FamilyLines: j.FamilyLines, FamilyDriver: j.FamilyDriver,
			ClassFallback: j.ClassFallback,
		}, nil
	}
	return nil, fmt.Errorf("core: unknown model kind %q", env.Kind)
}

// SaveFile writes a model to path.
func SaveFile(path string, model Predictor) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := Save(f, model); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return Load(f)
}
