package core

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/units"
	"repro/internal/zoo"
)

// roundTrip saves and reloads a model through the JSON envelope.
func roundTrip(t *testing.T, m Predictor) Predictor {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// samePrediction asserts two predictors agree on a reference network.
func samePrediction(t *testing.T, a, b Predictor) {
	t.Helper()
	net := zoo.MustResNet(18)
	pa, err := a.PredictNetwork(net, 64)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.PredictNetwork(net, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(pa-pb)) > 1e-15*math.Abs(float64(pa)) {
		t.Fatalf("predictions diverge after round trip: %v vs %v", pa, pb)
	}
}

func TestSaveLoadE2E(t *testing.T) {
	ds := syntheticE2EDataset("A100", 2e-12, 5e-3)
	m, err := FitE2E(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, m)
	if back.Name() != "E2E" || back.GPUName() != "A100" {
		t.Fatal("identity lost")
	}
	samePrediction(t, m, back)
}

func TestSaveLoadKW(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 4)
	m, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, m).(*KWModel)
	samePrediction(t, m, back)
	if back.KernelCount() != m.KernelCount() || back.ModelCount() != m.ModelCount() {
		t.Fatal("model structure lost")
	}
	// The reloaded model must still accept streaming updates (online state
	// rebuilds lazily).
	recs := plantRecords("streamed_kernel", DriverInput, 1e-9, 1e-6, MinKernelObservations, 77)
	if _, created := back.ObserveRecords(recs); created != 1 {
		t.Fatal("reloaded model cannot learn online")
	}
}

func TestSaveLoadIGKW(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 4)
	ds.Merge(plantKernelDataset(gpu.A40, 4))
	ds.Merge(plantKernelDataset(gpu.GTX1080Ti, 4))
	m, err := FitIGKW(ds, []gpu.Spec{gpu.A100, gpu.A40, gpu.GTX1080Ti}, gpu.TitanRTX, 512)
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, m)
	if back.GPUName() != "TITAN RTX" {
		t.Fatalf("target lost: %q", back.GPUName())
	}
	samePrediction(t, m, back)
}

func TestSaveLoadLW(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 4)
	// Synthesize layer records from the kernel records.
	for _, r := range ds.Kernels {
		ds.Layers = append(ds.Layers, layerFromKernel(r))
	}
	m, err := FitLW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	samePrediction(t, m, roundTrip(t, m))
}

func TestSaveLoadFile(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 4)
	m, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "kw.json")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	samePrediction(t, m, back)
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should error")
	}
	if _, err := Load(strings.NewReader(`{"kind":"mystery","version":1,"model":{}}`)); err == nil {
		t.Fatal("unknown kind should error")
	}
	if _, err := Load(strings.NewReader(`{"kind":"kw","version":99,"model":{}}`)); err == nil {
		t.Fatal("future version should error")
	}
}

func TestSaveUnsupportedType(t *testing.T) {
	if err := Save(&bytes.Buffer{}, unsupportedPredictor{}); err == nil {
		t.Fatal("unsupported type should error")
	}
}

// unsupportedPredictor exercises Save's type guard.
type unsupportedPredictor struct{}

func (unsupportedPredictor) Name() string    { return "x" }
func (unsupportedPredictor) GPUName() string { return "x" }
func (unsupportedPredictor) PredictNetwork(*dnn.Network, int) (units.Seconds, error) {
	return 0, nil
}

// layerFromKernel synthesizes a layer record matching a kernel record.
func layerFromKernel(r dataset.KernelRecord) dataset.LayerRecord {
	return dataset.LayerRecord{
		Network: r.Network, GPU: r.GPU, BatchSize: r.BatchSize,
		LayerIndex: r.LayerIndex, Kind: r.LayerKind,
		FLOPs: r.LayerFLOPs, InputElems: r.LayerInputElems,
		OutputElems: r.LayerOutputElems, Seconds: r.Seconds,
	}
}
