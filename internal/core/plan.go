package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dnn"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/regression"
	"repro/internal/units"
)

// Compiled prediction plans. A Plan is the result of running shape inference
// and layer→kernel resolution once for a (network, model) pair and reducing
// every kernel to the data its prediction actually needs: a resolved
// regression line plus the affine map from batch size to the kernel's driver
// variable. Predicting at any batch size is then a single allocation-free
// pass over a flat segment slice — no Infer call, no map lookups, no
// goroutine-visible mutation — which is what makes the models safe and fast
// to query concurrently.
//
// Why an affine map suffices: every driver candidate (layer input elements,
// layer FLOPs, layer output elements) is an exact affine function of the
// batch size N. Activation tensors carry N as their leading dimension, so
// element counts and FLOPs are proportional to N; the one exception, the
// optimizer kernel whose driver is the (batch-independent) parameter count,
// is the constant special case. Two shape inferences — at N=1 and N=2 —
// therefore determine each driver exactly at every batch size, in integer
// arithmetic, so the compiled path reproduces the uncached path bit for bit.
//
// Why segments: the *identity* of a kernel (its name, and therefore which
// regression line resolves for it) can change with batch size in exactly two
// ways — GEMM tile variants switch at known row-count thresholds
// (kernels.BatchBreakpoints), and the learned mapping table can substitute
// traced names only at the batch sizes embedded in its signatures. The
// compiler enumerates that finite breakpoint set, resolves the plan at each,
// and stores one segment per distinct resolution; adjacent identical
// resolutions merge, so most entries hold a single segment.

// planSeg is one kernel's resolution over a half-open batch range
// [minBatch, nextSeg.minBatch): the regression line and the affine driver
// map x(N) = xPer·N + xConst.
type planSeg struct {
	minBatch     int
	xPer, xConst int64
	line         regression.Line
}

// Plan is a compiled predictor for one network on one model. It is immutable
// after compilation and safe for concurrent use.
type Plan struct {
	// Network and GPU identify what the plan predicts.
	Network string
	GPU     string

	// segs holds every entry's segments back to back, each entry's sorted by
	// ascending minBatch (the first always has minBatch 1); entryEnd[i] is
	// the end offset of entry i's segments within segs.
	segs     []planSeg
	entryEnd []int32
}

// EntryCount returns the number of kernel invocations the plan sums over.
func (p *Plan) EntryCount() int { return len(p.entryEnd) }

// SegmentCount returns the total number of batch-range segments; it exceeds
// EntryCount only when some kernel resolves differently across batch sizes.
func (p *Plan) SegmentCount() int { return len(p.segs) }

// Predict returns the predicted end-to-end seconds of one batch. The batch
// size must be positive (callers route non-positive batches through the
// uncached path for its validation errors). It performs no allocation and is
// safe to call concurrently.
//
//dnnperf:allocfree
func (p *Plan) Predict(batch int) units.Seconds {
	var total units.Seconds
	start := 0
	for _, e := range p.entryEnd {
		end := int(e)
		seg := &p.segs[start]
		for i := end - 1; i > start; i-- {
			if p.segs[i].minBatch <= batch {
				seg = &p.segs[i]
				break
			}
		}
		x := float64(seg.xPer*int64(batch) + seg.xConst)
		total += clampTime(units.Seconds(seg.line.Predict(x)))
		start = end
	}
	return total
}

// PredictSweep predicts every batch size in batches in one pass, returning
// one total per batch in input order. Results are bit-identical to calling
// Predict per batch: per output slot the same terms accumulate in the same
// entry order through the same expression. The win over the loop is
// locality — each entry's segments are resolved once and applied to every
// batch size while still hot, and most entries hit the single-segment fast
// path where the segment lives in registers across the whole sweep.
func (p *Plan) PredictSweep(batches []int) []units.Seconds {
	out := make([]units.Seconds, len(batches))
	p.PredictSweepInto(out, batches)
	return out
}

// PredictSweepInto is PredictSweep writing into dst (which must have at
// least len(batches) elements), for callers that reuse buffers. It performs
// no allocation and is safe to call concurrently.
//
//dnnperf:allocfree
func (p *Plan) PredictSweepInto(dst []units.Seconds, batches []int) {
	dst = dst[:len(batches)]
	for j := range dst {
		dst[j] = 0
	}
	start := 0
	for _, e := range p.entryEnd {
		end := int(e)
		if end == start+1 {
			seg := p.segs[start]
			for j, batch := range batches {
				x := float64(seg.xPer*int64(batch) + seg.xConst)
				dst[j] += clampTime(units.Seconds(seg.line.Predict(x)))
			}
			start = end
			continue
		}
		for j, batch := range batches {
			seg := &p.segs[start]
			for i := end - 1; i > start; i-- {
				if p.segs[i].minBatch <= batch {
					seg = &p.segs[i]
					break
				}
			}
			x := float64(seg.xPer*int64(batch) + seg.xConst)
			dst[j] += clampTime(units.Seconds(seg.line.Predict(x)))
		}
		start = end
	}
}

// kernelResolve maps a kernel name (plus whether its layer carries zero
// FLOPs, which steers the last-resort fallback) to the concrete regression
// line and driver the model would use — the model-specific half of plan
// compilation.
type kernelResolve func(name string, flopsZero bool) (regression.Line, Driver)

// driverAffine holds the affine batch→value maps of one kernel's three
// driver candidates.
type driverAffine struct {
	inPer, inConst   int64
	opPer, opConst   int64
	outPer, outConst int64
}

func (a driverAffine) pick(d Driver) (per, cnst int64) {
	switch d {
	case DriverInput:
		return a.inPer, a.inConst
	case DriverOperation:
		return a.opPer, a.opConst
	default:
		return a.outPer, a.outConst
	}
}

// distLayer is the compiled form of one distinct layer shape: its kernels'
// segments back to back (each kernel's ascending by minBatch) and the
// per-kernel end offsets within segs — the same layout Plan uses globally.
type distLayer struct {
	segs []planSeg
	end  []int32
}

// compilePlan builds a Plan for the network. It works on a private clone, so
// the caller's network is never mutated (and concurrent compilations of the
// same network cannot race).
//
// The compiler exploits two structural facts to stay cheap. First, networks
// repeat layers: ResNet/DenseNet instantiate the same (kind, parameters,
// shapes) block dozens of times, and two layers that agree on all of those
// at batch 1 agree at every batch size (shapes differ across batches only in
// dimension 0), so they resolve to identical segment lists. Each distinct
// shape is compiled once and duplicates copy its segments. Second, a layer's
// kernel resolution depends only on its own shapes, so instead of re-running
// full-network shape inference at every batch breakpoint the compiler infers
// once at batch 1 and then rewrites one layer's batch dimension at a time
// (Layer.Rebatch, exact by construction). Segment scratch lives in a
// preallocated arena reused across layers, and signature/memo keys are built
// in reused byte buffers looked up with the map[string(buf)] idiom, so the
// per-layer map+string churn of the naive compiler is gone.
func compilePlan(n *dnn.Network, gpuName string, training bool,
	mapping map[string][]string, resolve kernelResolve) (*Plan, error) {

	tm := obs.StartTimer(metricPlanCompile)
	defer tm.Stop()
	sp := obs.StartSpan("plan-compile " + n.Name)
	sp.SetArg("gpu", gpuName)
	defer sp.End()
	metricPlanCompiles.Inc()

	clone := n.Clone()
	dispatch := kernels.ForLayer
	if training {
		dispatch = kernels.ForLayerTraining
	}

	// The only full shape inference; every other batch size is reached by
	// rewriting one layer's batch dimension in place.
	if err := clone.Infer(1); err != nil {
		return nil, err
	}

	// Deduplicate layers by their exact batch-1 shape key. The key must be
	// exact — a hash could collide two genuinely different layers and
	// silently corrupt the plan — so it is the full parameter and shape
	// rendering, and only the first occurrence pays the map-insert copy.
	distinct := make(map[string]int, len(clone.Layers))
	reps := make([]int, 0, len(clone.Layers))
	repOf := make([]int, len(clone.Layers))
	var keyBuf []byte
	for i, l := range clone.Layers {
		keyBuf = appendLayerShapeKey(keyBuf[:0], l)
		d, ok := distinct[string(keyBuf)]
		if !ok {
			d = len(reps)
			distinct[string(keyBuf)] = d
			reps = append(reps, i)
		}
		repOf[i] = d
	}

	// The finite set of batch sizes where any kernel's resolution can
	// change. BatchBreakpoints is batch-invariant and identical across
	// duplicate layers, so the union over distinct layers equals the union
	// over all layers.
	bpSet := map[int]bool{1: true}
	for _, ri := range reps {
		for _, bp := range kernels.BatchBreakpoints(clone.Layers[ri]) {
			bpSet[bp] = true
		}
	}
	for sig := range mapping {
		if b := signatureBatch(sig); b > 0 {
			bpSet[b] = true   // the mapping substitution can start applying here
			bpSet[b+1] = true // ... and stops applying here
		}
	}
	breakpoints := make([]int, 0, len(bpSet))
	for b := range bpSet {
		breakpoints = append(breakpoints, b)
	}
	sort.Ints(breakpoints)
	nbp := len(breakpoints)

	// Compile each distinct layer: resolve its kernels at every breakpoint,
	// merging adjacent identical resolutions. Scratch segment storage is one
	// arena sliced into non-overlapping per-kernel append regions, reused
	// across layers.
	dists := make([]distLayer, len(reps))
	var arena []planSeg
	var kernSegs [][]planSeg
	var affine []driverAffine
	var sigBuf []byte
	for di, ri := range reps {
		l := clone.Layers[ri]

		// Kernel lists at N=1 and N=2 determine each driver's affine map.
		l.Rebatch(1)
		ks1 := dispatch(l)
		nk := len(ks1)
		if nk == 0 {
			continue // shape-only layer (Flatten, Dropout, ...): no entries
		}
		l.Rebatch(2)
		ks2 := dispatch(l)
		if len(ks2) != nk {
			return nil, fmt.Errorf("core: plan compile %q: kernel count changed with batch size (%d vs %d)",
				n.Name, nk, len(ks2))
		}
		if cap(affine) < nk {
			affine = make([]driverAffine, nk)
		}
		affine = affine[:nk]
		for i := range ks1 {
			a := &affine[i]
			a.inPer, a.inConst = affineFromTwo(ks1[i].LayerInputElems, ks2[i].LayerInputElems)
			a.opPer, a.opConst = affineFromTwo(ks1[i].LayerFLOPs, ks2[i].LayerFLOPs)
			a.outPer, a.outConst = affineFromTwo(ks1[i].LayerOutputElems, ks2[i].LayerOutputElems)
		}

		if cap(arena) < nk*nbp {
			arena = make([]planSeg, nk*nbp)
		}
		if cap(kernSegs) < nk {
			kernSegs = make([][]planSeg, nk)
		}
		kernSegs = kernSegs[:nk]
		for k := 0; k < nk; k++ {
			kernSegs[k] = arena[k*nbp : k*nbp : (k+1)*nbp]
		}

		for _, b := range breakpoints {
			l.Rebatch(b)
			ks := dispatch(l)
			if len(ks) != nk {
				return nil, fmt.Errorf("core: plan compile %q: kernel count changed at batch %d", n.Name, b)
			}
			sigBuf = l.AppendSignature(sigBuf[:0])
			if names, ok := mapping[string(sigBuf)]; ok && len(names) == len(ks) {
				for i := range ks {
					ks[i].Name = names[i]
				}
			}
			for k := range ks {
				line, driver := resolve(ks[k].Name, ks[k].LayerFLOPs == 0)
				per, cnst := affine[k].pick(driver)
				seg := planSeg{minBatch: b, xPer: per, xConst: cnst, line: line}
				if prev := kernSegs[k]; len(prev) > 0 && sameResolution(prev[len(prev)-1], seg) {
					continue
				}
				kernSegs[k] = append(kernSegs[k], seg)
			}
		}

		total := 0
		for k := range kernSegs {
			total += len(kernSegs[k])
		}
		d := &dists[di]
		d.segs = make([]planSeg, 0, total)
		d.end = make([]int32, nk)
		for k := range kernSegs {
			d.segs = append(d.segs, kernSegs[k]...)
			d.end[k] = int32(len(d.segs))
		}
	}

	// Assemble the plan by walking the layers in network order, copying each
	// one's distinct compilation — the same segment values, in the same
	// order, the per-breakpoint full-network compiler produced.
	totalSegs, totalEntries := 0, 0
	for _, d := range repOf {
		totalSegs += len(dists[d].segs)
		totalEntries += len(dists[d].end)
	}
	p := &Plan{Network: n.Name, GPU: gpuName}
	p.segs = make([]planSeg, 0, totalSegs)
	p.entryEnd = make([]int32, 0, totalEntries)
	for _, d := range repOf {
		dl := &dists[d]
		base := int32(len(p.segs))
		p.segs = append(p.segs, dl.segs...)
		for _, e := range dl.end {
			p.entryEnd = append(p.entryEnd, base+e)
		}
	}
	return p, nil
}

// appendLayerShapeKey appends an exact rendering of everything a layer's
// kernel resolution can depend on — kind, every dispatch parameter, and
// every inferred shape — to dst. Two layers with equal keys at batch 1
// compile to identical plan segments at every batch size.
func appendLayerShapeKey(dst []byte, l *dnn.Layer) []byte {
	dst = append(dst, l.Kind...)
	for _, v := range [...]int{l.Cin, l.Cout, l.KH, l.KW, l.Stride, l.Pad, l.Groups,
		l.InFeatures, l.OutFeatures, l.VocabSize, l.EmbedDim, l.Heads} {
		dst = append(dst, '|')
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	dst = append(dst, '|')
	dst = strconv.AppendBool(dst, l.TransposeB)
	dst = append(dst, '#')
	dst = strconv.AppendInt(dst, int64(len(l.InShapes)), 10)
	for _, s := range l.InShapes {
		dst = append(dst, '#')
		for _, d := range s {
			dst = append(dst, ',')
			dst = strconv.AppendInt(dst, int64(d), 10)
		}
	}
	dst = append(dst, '>')
	for _, d := range l.OutShape {
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(d), 10)
	}
	return dst
}

// affineFromTwo recovers v(N) = per·N + const from v(1) and v(2). Every
// driver variable is affine in the batch size, so the recovery is exact.
func affineFromTwo(v1, v2 int64) (per, cnst int64) {
	per = v2 - v1
	return per, v1 - per
}

// sameResolution reports whether two segments predict identically (ignoring
// their batch ranges), allowing adjacent segments to merge.
func sameResolution(a, b planSeg) bool {
	return a.xPer == b.xPer && a.xConst == b.xConst && a.line == b.line
}

// signatureBatch extracts the batch size embedded in a layer signature's
// first inferred shape ("...|in=(512, 3, 224, 224)|..."). The "(" excludes
// parameter fields like Linear's "|in=4096". Returns 0 when no shape batch is
// present.
func signatureBatch(sig string) int {
	i := strings.Index(sig, "|in=(")
	if i < 0 {
		return 0
	}
	n := 0
	for j := i + len("|in=("); j < len(sig); j++ {
		c := sig[j]
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// ------------------------------------------------------------- cache keys

// planKey identifies a compiled plan in a model's plan cache. Network names
// alone are not a safe key — independently built networks can share a name —
// so the key pairs the name with a structural fingerprint.
type planKey struct {
	name string
	fp   uint64
}

// Hash implements cache.Hasher.
func (k planKey) Hash() uint64 { return k.fp }

// layerKey identifies a per-layer term list in the layer-prediction cache.
// The signature pins the layer's kind, parameters and first-input/output
// shapes; the summed input element count disambiguates multi-input layers
// whose extra inputs the signature does not cover.
type layerKey struct {
	sig     string
	inElems int64
	h       uint64
}

// Hash implements cache.Hasher.
func (k layerKey) Hash() uint64 { return k.h }

// layerTerm is one kernel's resolved (line, driver value) pair within a
// cached layer prediction.
type layerTerm struct {
	line regression.Line
	x    float64
}

// predictTerms sums a cached layer's kernel predictions.
//
//dnnperf:allocfree
func predictTerms(terms []layerTerm) units.Seconds {
	var total units.Seconds
	for _, t := range terms {
		total += clampTime(units.Seconds(t.line.Predict(t.x)))
	}
	return total
}

// FNV-1a, hand-rolled so fingerprinting allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

type fnv64 uint64

//dnnperf:allocfree
func (h *fnv64) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * fnvPrime64
	}
	*h = fnv64(x)
}

//dnnperf:allocfree
func (h *fnv64) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x = (x ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	*h = fnv64(x)
}

//dnnperf:allocfree
func (h *fnv64) num(v int) { h.u64(uint64(int64(v))) }

//dnnperf:allocfree
func (h *fnv64) flag(b bool) {
	if b {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

// networkFingerprint hashes everything about a network's structure that a
// prediction can depend on: identity, input shape, and per-layer kinds,
// parameters and wiring. Layer names are deliberately excluded — predictions
// never consume them. The training flag is folded in because training and
// inference plans differ for the same structure.
//
//dnnperf:allocfree
func networkFingerprint(n *dnn.Network, training bool) uint64 {
	h := fnv64(fnvOffset64)
	h.str(n.Name)
	h.str(n.Family)
	h.str(string(n.Task))
	h.flag(training)
	h.num(len(n.InputShape))
	for _, d := range n.InputShape {
		h.num(d)
	}
	h.num(len(n.Layers))
	for _, l := range n.Layers {
		h.str(string(l.Kind))
		h.num(len(l.Inputs))
		for _, in := range l.Inputs {
			h.num(in)
		}
		h.num(l.Cin)
		h.num(l.Cout)
		h.num(l.KH)
		h.num(l.KW)
		h.num(l.Stride)
		h.num(l.Pad)
		h.num(l.Groups)
		h.num(l.InFeatures)
		h.num(l.OutFeatures)
		h.num(l.VocabSize)
		h.num(l.EmbedDim)
		h.num(l.Heads)
		h.flag(l.TransposeB)
	}
	return uint64(h)
}

// NetworkFingerprint exposes the structural fingerprint the plan caches key
// on. Callers that coalesce or deduplicate work per network — e.g. the serve
// layer's in-flight request merging — should key on this rather than the
// name alone, for the same reason the plan cache does: independently built
// networks can share a name.
func NetworkFingerprint(n *dnn.Network, training bool) uint64 {
	return networkFingerprint(n, training)
}

// layerKeyFor builds the cache key of one inferred layer.
func layerKeyFor(l *dnn.Layer, training bool) layerKey {
	sig := l.Signature()
	inElems := int64(0)
	for _, s := range l.InShapes {
		inElems += s.Numel()
	}
	if inElems == 0 {
		inElems = l.InShape.Numel()
	}
	h := fnv64(fnvOffset64)
	h.str(sig)
	h.u64(uint64(inElems))
	h.flag(training)
	return layerKey{sig: sig, inElems: inElems, h: uint64(h)}
}
