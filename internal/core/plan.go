package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dnn"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/regression"
	"repro/internal/units"
)

// Compiled prediction plans. A Plan is the result of running shape inference
// and layer→kernel resolution once for a (network, model) pair and reducing
// every kernel to the data its prediction actually needs: a resolved
// regression line plus the affine map from batch size to the kernel's driver
// variable. Predicting at any batch size is then a single allocation-free
// pass over a flat segment slice — no Infer call, no map lookups, no
// goroutine-visible mutation — which is what makes the models safe and fast
// to query concurrently.
//
// Why an affine map suffices: every driver candidate (layer input elements,
// layer FLOPs, layer output elements) is an exact affine function of the
// batch size N. Activation tensors carry N as their leading dimension, so
// element counts and FLOPs are proportional to N; the one exception, the
// optimizer kernel whose driver is the (batch-independent) parameter count,
// is the constant special case. Two shape inferences — at N=1 and N=2 —
// therefore determine each driver exactly at every batch size, in integer
// arithmetic, so the compiled path reproduces the uncached path bit for bit.
//
// Why segments: the *identity* of a kernel (its name, and therefore which
// regression line resolves for it) can change with batch size in exactly two
// ways — GEMM tile variants switch at known row-count thresholds
// (kernels.BatchBreakpoints), and the learned mapping table can substitute
// traced names only at the batch sizes embedded in its signatures. The
// compiler enumerates that finite breakpoint set, resolves the plan at each,
// and stores one segment per distinct resolution; adjacent identical
// resolutions merge, so most entries hold a single segment.

// planSeg is one kernel's resolution over a half-open batch range
// [minBatch, nextSeg.minBatch): the regression line and the affine driver
// map x(N) = xPer·N + xConst.
type planSeg struct {
	minBatch     int
	xPer, xConst int64
	line         regression.Line
}

// Plan is a compiled predictor for one network on one model. It is immutable
// after compilation and safe for concurrent use.
type Plan struct {
	// Network and GPU identify what the plan predicts.
	Network string
	GPU     string

	// segs holds every entry's segments back to back, each entry's sorted by
	// ascending minBatch (the first always has minBatch 1); entryEnd[i] is
	// the end offset of entry i's segments within segs.
	segs     []planSeg
	entryEnd []int32
}

// EntryCount returns the number of kernel invocations the plan sums over.
func (p *Plan) EntryCount() int { return len(p.entryEnd) }

// SegmentCount returns the total number of batch-range segments; it exceeds
// EntryCount only when some kernel resolves differently across batch sizes.
func (p *Plan) SegmentCount() int { return len(p.segs) }

// Predict returns the predicted end-to-end seconds of one batch. The batch
// size must be positive (callers route non-positive batches through the
// uncached path for its validation errors). It performs no allocation and is
// safe to call concurrently.
func (p *Plan) Predict(batch int) units.Seconds {
	var total units.Seconds
	start := 0
	for _, e := range p.entryEnd {
		end := int(e)
		seg := &p.segs[start]
		for i := end - 1; i > start; i-- {
			if p.segs[i].minBatch <= batch {
				seg = &p.segs[i]
				break
			}
		}
		x := float64(seg.xPer*int64(batch) + seg.xConst)
		total += clampTime(units.Seconds(seg.line.Predict(x)))
		start = end
	}
	return total
}

// kernelResolve maps a kernel name (plus whether its layer carries zero
// FLOPs, which steers the last-resort fallback) to the concrete regression
// line and driver the model would use — the model-specific half of plan
// compilation.
type kernelResolve func(name string, flopsZero bool) (regression.Line, Driver)

// driverAffine holds the affine batch→value maps of one kernel's three
// driver candidates.
type driverAffine struct {
	inPer, inConst   int64
	opPer, opConst   int64
	outPer, outConst int64
}

func (a driverAffine) pick(d Driver) (per, cnst int64) {
	switch d {
	case DriverInput:
		return a.inPer, a.inConst
	case DriverOperation:
		return a.opPer, a.opConst
	default:
		return a.outPer, a.outConst
	}
}

// compilePlan builds a Plan for the network. It works on a private clone, so
// the caller's network is never mutated (and concurrent compilations of the
// same network cannot race).
func compilePlan(n *dnn.Network, gpuName string, training bool,
	mapping map[string][]string, resolve kernelResolve) (*Plan, error) {

	tm := obs.StartTimer(metricPlanCompile)
	defer tm.Stop()
	sp := obs.StartSpan("plan-compile " + n.Name)
	sp.SetArg("gpu", gpuName)
	defer sp.End()
	metricPlanCompiles.Inc()

	clone := n.Clone()
	dispatch := kernels.ForLayer
	if training {
		dispatch = kernels.ForLayerTraining
	}

	// Driver values at N=1 and N=2 determine each driver's affine map.
	if err := clone.Infer(1); err != nil {
		return nil, err
	}
	var at1 []kernels.Kernel
	for _, l := range clone.Layers {
		at1 = append(at1, dispatch(l)...)
	}
	if err := clone.Infer(2); err != nil {
		return nil, err
	}
	var at2 []kernels.Kernel
	for _, l := range clone.Layers {
		at2 = append(at2, dispatch(l)...)
	}
	if len(at1) != len(at2) {
		return nil, fmt.Errorf("core: plan compile %q: kernel count changed with batch size (%d vs %d)",
			n.Name, len(at1), len(at2))
	}
	affine := make([]driverAffine, len(at1))
	for i := range at1 {
		a := &affine[i]
		a.inPer, a.inConst = affineFromTwo(at1[i].LayerInputElems, at2[i].LayerInputElems)
		a.opPer, a.opConst = affineFromTwo(at1[i].LayerFLOPs, at2[i].LayerFLOPs)
		a.outPer, a.outConst = affineFromTwo(at1[i].LayerOutputElems, at2[i].LayerOutputElems)
	}

	// The finite set of batch sizes where any kernel's resolution can change.
	bpSet := map[int]bool{1: true}
	for _, l := range clone.Layers {
		for _, bp := range kernels.BatchBreakpoints(l) {
			bpSet[bp] = true
		}
	}
	for sig := range mapping {
		if b := signatureBatch(sig); b > 0 {
			bpSet[b] = true   // the mapping substitution can start applying here
			bpSet[b+1] = true // ... and stops applying here
		}
	}
	breakpoints := make([]int, 0, len(bpSet))
	for b := range bpSet {
		breakpoints = append(breakpoints, b)
	}
	sort.Ints(breakpoints)

	// Resolve the full kernel list at every breakpoint; emit a new segment
	// only where the resolution differs from the previous breakpoint's.
	perEntry := make([][]planSeg, len(at1))
	for _, b := range breakpoints {
		if err := clone.Infer(b); err != nil {
			return nil, err
		}
		idx := 0
		for _, l := range clone.Layers {
			ks := dispatch(l)
			if names, ok := mapping[l.Signature()]; ok && len(names) == len(ks) {
				for i := range ks {
					ks[i].Name = names[i]
				}
			}
			for _, k := range ks {
				if idx >= len(at1) {
					return nil, fmt.Errorf("core: plan compile %q: kernel count changed at batch %d", n.Name, b)
				}
				line, driver := resolve(k.Name, k.LayerFLOPs == 0)
				per, cnst := affine[idx].pick(driver)
				seg := planSeg{minBatch: b, xPer: per, xConst: cnst, line: line}
				if prev := perEntry[idx]; len(prev) > 0 && sameResolution(prev[len(prev)-1], seg) {
					idx++
					continue
				}
				perEntry[idx] = append(perEntry[idx], seg)
				idx++
			}
		}
		if idx != len(at1) {
			return nil, fmt.Errorf("core: plan compile %q: kernel count changed at batch %d", n.Name, b)
		}
	}

	p := &Plan{Network: n.Name, GPU: gpuName, entryEnd: make([]int32, len(perEntry))}
	total := 0
	for _, segs := range perEntry {
		total += len(segs)
	}
	p.segs = make([]planSeg, 0, total)
	for i, segs := range perEntry {
		p.segs = append(p.segs, segs...)
		p.entryEnd[i] = int32(len(p.segs))
	}
	return p, nil
}

// affineFromTwo recovers v(N) = per·N + const from v(1) and v(2). Every
// driver variable is affine in the batch size, so the recovery is exact.
func affineFromTwo(v1, v2 int64) (per, cnst int64) {
	per = v2 - v1
	return per, v1 - per
}

// sameResolution reports whether two segments predict identically (ignoring
// their batch ranges), allowing adjacent segments to merge.
func sameResolution(a, b planSeg) bool {
	return a.xPer == b.xPer && a.xConst == b.xConst && a.line == b.line
}

// signatureBatch extracts the batch size embedded in a layer signature's
// first inferred shape ("...|in=(512, 3, 224, 224)|..."). The "(" excludes
// parameter fields like Linear's "|in=4096". Returns 0 when no shape batch is
// present.
func signatureBatch(sig string) int {
	i := strings.Index(sig, "|in=(")
	if i < 0 {
		return 0
	}
	n := 0
	for j := i + len("|in=("); j < len(sig); j++ {
		c := sig[j]
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// ------------------------------------------------------------- cache keys

// planKey identifies a compiled plan in a model's plan cache. Network names
// alone are not a safe key — independently built networks can share a name —
// so the key pairs the name with a structural fingerprint.
type planKey struct {
	name string
	fp   uint64
}

// Hash implements cache.Hasher.
func (k planKey) Hash() uint64 { return k.fp }

// layerKey identifies a per-layer term list in the layer-prediction cache.
// The signature pins the layer's kind, parameters and first-input/output
// shapes; the summed input element count disambiguates multi-input layers
// whose extra inputs the signature does not cover.
type layerKey struct {
	sig     string
	inElems int64
	h       uint64
}

// Hash implements cache.Hasher.
func (k layerKey) Hash() uint64 { return k.h }

// layerTerm is one kernel's resolved (line, driver value) pair within a
// cached layer prediction.
type layerTerm struct {
	line regression.Line
	x    float64
}

// predictTerms sums a cached layer's kernel predictions.
func predictTerms(terms []layerTerm) units.Seconds {
	var total units.Seconds
	for _, t := range terms {
		total += clampTime(units.Seconds(t.line.Predict(t.x)))
	}
	return total
}

// FNV-1a, hand-rolled so fingerprinting allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * fnvPrime64
	}
	*h = fnv64(x)
}

func (h *fnv64) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x = (x ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	*h = fnv64(x)
}

func (h *fnv64) num(v int) { h.u64(uint64(int64(v))) }

func (h *fnv64) flag(b bool) {
	if b {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

// networkFingerprint hashes everything about a network's structure that a
// prediction can depend on: identity, input shape, and per-layer kinds,
// parameters and wiring. Layer names are deliberately excluded — predictions
// never consume them. The training flag is folded in because training and
// inference plans differ for the same structure.
func networkFingerprint(n *dnn.Network, training bool) uint64 {
	h := fnv64(fnvOffset64)
	h.str(n.Name)
	h.str(n.Family)
	h.str(string(n.Task))
	h.flag(training)
	h.num(len(n.InputShape))
	for _, d := range n.InputShape {
		h.num(d)
	}
	h.num(len(n.Layers))
	for _, l := range n.Layers {
		h.str(string(l.Kind))
		h.num(len(l.Inputs))
		for _, in := range l.Inputs {
			h.num(in)
		}
		h.num(l.Cin)
		h.num(l.Cout)
		h.num(l.KH)
		h.num(l.KW)
		h.num(l.Stride)
		h.num(l.Pad)
		h.num(l.Groups)
		h.num(l.InFeatures)
		h.num(l.OutFeatures)
		h.num(l.VocabSize)
		h.num(l.EmbedDim)
		h.num(l.Heads)
		h.flag(l.TransposeB)
	}
	return uint64(h)
}

// layerKeyFor builds the cache key of one inferred layer.
func layerKeyFor(l *dnn.Layer, training bool) layerKey {
	sig := l.Signature()
	inElems := int64(0)
	for _, s := range l.InShapes {
		inElems += s.Numel()
	}
	if inElems == 0 {
		inElems = l.InShape.Numel()
	}
	h := fnv64(fnvOffset64)
	h.str(sig)
	h.u64(uint64(inElems))
	h.flag(training)
	return layerKey{sig: sig, inElems: inElems, h: uint64(h)}
}
