package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/units"
	"repro/internal/zoo"
)

// planFixtureBatches are the query batch sizes the identity tests cover: the
// small-batch regime (1, 4), a mid point (64) and the training batch (512).
var planFixtureBatches = []int{1, 4, 64, 512}

// zooSample returns the quick-lab zoo sample (every sixth network).
func zooSample() []*dnn.Network {
	full := zoo.Full()
	var sub []*dnn.Network
	for i := 0; i < len(full); i += 6 {
		sub = append(sub, full[i])
	}
	return sub
}

// buildSampleDataset collects a reduced dataset of the zoo sample on A100.
func buildSampleDataset(t testing.TB, training bool) *dataset.Dataset {
	t.Helper()
	opt := dataset.DefaultBuildOptions()
	opt.Batches = 8
	opt.Warmup = 2
	opt.Training = training
	ds, _, err := dataset.Build(zooSample(), []gpu.Spec{gpu.A100}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// assertPlanIdentity checks that the plan-backed prediction path returns the
// exact same float64 (==, not within-epsilon) as the reference uncached path
// for every network in the sample at every fixture batch size.
func assertPlanIdentity(t *testing.T, predict func(*dnn.Network, int) (units.Seconds, error),
	uncached func(*dnn.Network, int) (units.Seconds, error)) {
	t.Helper()
	for _, n := range zooSample() {
		for _, batch := range planFixtureBatches {
			want, wantErr := uncached(n, batch)
			got, gotErr := predict(n, batch)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s@%d: uncached err %v, plan err %v", n.Name, batch, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if got != want {
				t.Fatalf("%s@%d: plan %v != uncached %v (diff %g)",
					n.Name, batch, got, want, got-want)
			}
		}
	}
}

// TestKWPlanBitIdentical is the accuracy-preservation proof for the inference
// model: the compiled-plan fast path must be bit-identical to the original
// Infer-and-sum path for every zoo-sample network at every batch size.
func TestKWPlanBitIdentical(t *testing.T) {
	ds := buildSampleDataset(t, false)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	assertPlanIdentity(t, kw.PredictNetwork, kw.PredictNetworkUncached)
}

// TestKWPlanBitIdenticalTraining repeats the identity proof for a
// training-step model, whose kernel lists include backward and optimizer
// kernels (the constant-driver sgd_update among them).
func TestKWPlanBitIdenticalTraining(t *testing.T) {
	ds := buildSampleDataset(t, true)
	kw, err := FitKWOptions(ds, "A100", 512, KWOptions{Training: true})
	if err != nil {
		t.Fatal(err)
	}
	assertPlanIdentity(t, kw.PredictNetwork, kw.PredictNetworkUncached)
}

// TestIGKWPlanBitIdentical repeats the identity proof for the
// interpolation-based cross-GPU model.
func TestIGKWPlanBitIdentical(t *testing.T) {
	ds := &dataset.Dataset{}
	for _, g := range []gpu.Spec{gpu.A100, gpu.A40, gpu.V100} {
		ds.Merge(plantKernelDataset(g, 3))
	}
	m, err := FitIGKW(ds, []gpu.Spec{gpu.A100, gpu.A40, gpu.V100}, gpu.TitanRTX, 512)
	if err != nil {
		t.Fatal(err)
	}
	assertPlanIdentity(t, m.PredictNetwork, m.PredictNetworkUncached)
}

// TestKWPlanConcurrent hammers one shared model from many goroutines (run
// under -race in CI) and checks every concurrent result against the serial
// reference. The uncached path mutates the network's shape state, so this
// also proves the plan path never touches it.
func TestKWPlanConcurrent(t *testing.T) {
	ds := buildSampleDataset(t, false)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	nets := zooSample()[:8]

	// Serial reference, computed first on private clones.
	want := map[string]units.Seconds{}
	for _, n := range nets {
		for _, batch := range planFixtureBatches {
			v, err := kw.PredictNetworkUncached(n.Clone(), batch)
			if err != nil {
				t.Fatal(err)
			}
			want[fmt.Sprintf("%s@%d", n.Name, batch)] = v
		}
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for i, n := range nets {
					batch := planFixtureBatches[(g+rep+i)%len(planFixtureBatches)]
					got, err := kw.PredictNetwork(n, batch)
					if err != nil {
						t.Errorf("goroutine %d: %s@%d: %v", g, n.Name, batch, err)
						return
					}
					if w := want[fmt.Sprintf("%s@%d", n.Name, batch)]; got != w {
						t.Errorf("goroutine %d: %s@%d: %v != %v", g, n.Name, batch, got, w)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPlanSegments checks the piecewise structure: ResNet-50's GEMM tiles
// change with batch size, so its plan must carry more segments than entries,
// while every entry keeps at least one.
func TestPlanSegments(t *testing.T) {
	ds := buildSampleDataset(t, false)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	net, err := zoo.ByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	p, err := kw.CompilePlan(net)
	if err != nil {
		t.Fatal(err)
	}
	if p.EntryCount() == 0 {
		t.Fatal("plan has no entries")
	}
	if p.SegmentCount() <= p.EntryCount() {
		t.Fatalf("resnet50 plan has %d segments for %d entries; want batch-dependent resolution (more segments)",
			p.SegmentCount(), p.EntryCount())
	}
}

// TestObserveRecordsInvalidatesPlans: online updates change the regression
// lines, so cached plans must be dropped and recompiled to stay identical to
// the uncached path.
func TestObserveRecordsInvalidatesPlans(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 3)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	net, err := zoo.ByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	before, err := kw.PredictNetwork(net, 512)
	if err != nil {
		t.Fatal(err)
	}
	if kw.plans.Len() == 0 {
		t.Fatal("prediction did not populate the plan cache")
	}

	// Shift one kernel's behaviour drastically and observe it.
	extra := plantKernelDataset(gpu.A100, 3).Kernels
	for i := range extra {
		extra[i].Seconds *= 100
	}
	kw.ObserveRecords(extra)
	if kw.plans.Len() != 0 {
		t.Fatalf("ObserveRecords left %d cached plans", kw.plans.Len())
	}

	after, err := kw.PredictNetwork(net, 512)
	if err != nil {
		t.Fatal(err)
	}
	wantAfter, err := kw.PredictNetworkUncached(net.Clone(), 512)
	if err != nil {
		t.Fatal(err)
	}
	if after != wantAfter {
		t.Fatalf("post-update plan %v != uncached %v", after, wantAfter)
	}
	if after == before {
		t.Fatal("100x slower observations did not change the prediction — stale plan served")
	}
}

// ------------------------------------------------------------- benchmarks

// benchKW builds the benchmark fixture: a KW model fitted on a tiny real
// dataset plus the ResNet-50 query network.
func benchKW(b *testing.B) (*KWModel, *dnn.Network) {
	b.Helper()
	nets := []*dnn.Network{zoo.MustResNet(50), zoo.MustResNet(18)}
	opt := dataset.DefaultBuildOptions()
	opt.Batches = 3
	opt.Warmup = 1
	opt.E2EBatchSizes = []int{512}
	ds, _, err := dataset.Build(nets, []gpu.Spec{gpu.A100}, opt)
	if err != nil {
		b.Fatal(err)
	}
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		b.Fatal(err)
	}
	return kw, zoo.MustResNet(50)
}

// BenchmarkPlanCompile measures one full plan compilation (the cache-miss
// cost): shape inference at every breakpoint plus kernel resolution.
func BenchmarkPlanCompile(b *testing.B) {
	kw, net := benchKW(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kw.CompilePlan(net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKWPredictPlan measures the steady-state hot path: a repeated
// PredictNetwork against a warm plan cache. Compare with
// BenchmarkKWPredictUncached for the speedup the plan layer buys.
func BenchmarkKWPredictPlan(b *testing.B) {
	kw, net := benchKW(b)
	if _, err := kw.PredictNetwork(net, 512); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kw.PredictNetwork(net, 64+(i%4)*64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKWPredictUncached measures the pre-plan reference path: full shape
// inference plus per-kernel map lookups on every call.
func BenchmarkKWPredictUncached(b *testing.B) {
	kw, net := benchKW(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kw.PredictNetworkUncached(net, 64+(i%4)*64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKWPredictParallel measures contended throughput: every P issues
// queries against the same cached plan, the scheduler case-study pattern.
func BenchmarkKWPredictParallel(b *testing.B) {
	kw, net := benchKW(b)
	if _, err := kw.PredictNetwork(net, 512); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := kw.PredictNetwork(net, 64+(i%4)*64); err != nil {
				b.Fatal(err)
			}
		}
	})
}
