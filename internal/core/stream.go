package core

import (
	"repro/internal/dataset"
	"repro/internal/regression"
)

// Streaming fits. FitKW/FitLW/FitE2E rescan (and re-filter) the dataset's
// full record slices on every call; the collection fast path instead reduces
// the measurements to per-(GPU, batch) observation logs (dataset.Stats) —
// either streamed during collection (dataset.BuildWithStats) or derived from
// an existing dataset (dataset.StatsFromDataset) — and the Fit*FromStats
// variants fit one cell's log directly. A cell's log is the ordered
// projection of exactly the records the record-scan fit reads, and both
// paths funnel into one shared fitting core (fitKWRecords / fitLWObs /
// fitE2EObs), so the fitted coefficients are byte-for-byte identical no
// matter which path — or how many collection workers — produced them (the
// golden tests enforce this).

// FitKWFromStats trains a Kernel-Wise model from streamed statistics on the
// given GPU at the given batch size, with the paper's full design.
func FitKWFromStats(st *dataset.Stats, gpuName string, trainBatch int) (*KWModel, error) {
	return FitKWFromStatsOptions(st, gpuName, trainBatch, KWOptions{})
}

// FitKWFromStatsOptions is FitKWFromStats with explicit design-choice
// options. The cell's kernel log is replayed through the same fitting core
// as the record-scan FitKWOptions; the layer→kernel mapping table was
// already committed during the fold (first-wins in record order, as
// buildMapping does) and is copied so the model owns its map.
func FitKWFromStatsOptions(st *dataset.Stats, gpuName string, trainBatch int, opt KWOptions) (*KWModel, error) {
	cell := st.Cell(gpuName, trainBatch)
	if cell == nil || len(cell.Kernels) == 0 {
		return nil, errNoRecords("KW", gpuName)
	}
	recs := make([]dataset.KernelRecord, len(cell.Kernels))
	for i, o := range cell.Kernels {
		recs[i] = dataset.KernelRecord{
			Kernel:           o.Kernel,
			LayerFLOPs:       o.LayerFLOPs,
			LayerInputElems:  o.LayerInputElems,
			LayerOutputElems: o.LayerOutputElems,
			Seconds:          o.Seconds,
		}
	}
	return fitKWRecords(recs, cloneMapping(cell.Mapping), gpuName, trainBatch, opt)
}

// FitLWFromStats trains a Layer-Wise model from streamed statistics.
func FitLWFromStats(st *dataset.Stats, gpuName string, trainBatch int) (*LWModel, error) {
	cell := st.Cell(gpuName, trainBatch)
	if cell == nil {
		return nil, errNoRecords("LW", gpuName)
	}
	return fitLWObs(cell.Layers, gpuName, trainBatch)
}

// FitE2EFromStats trains an End-to-End model from streamed statistics.
func FitE2EFromStats(st *dataset.Stats, gpuName string, trainBatch int) (*E2EModel, error) {
	cell := st.Cell(gpuName, trainBatch)
	if cell == nil {
		return nil, errNoRecords("E2E", gpuName)
	}
	return fitE2EObs(cell.Network, gpuName, trainBatch)
}

// driverIndex maps a driver to its accumulator axis; unknown drivers take
// the output axis, mirroring driverX's default.
func driverIndex(d Driver) int {
	switch d {
	case DriverInput:
		return 0
	case DriverOperation:
		return 1
	default:
		return 2
	}
}

// familyAccumulators pools all size variants of each kernel family into one
// accumulator triple, merging in sorted kernel order (accumulator merges
// fold floating-point sums; sorted order keeps them bit-identical per run).
// Part of the online-rebuild chain (see rebuildFromAccumulators).
func familyAccumulators(accs map[string]*[3]regression.Accumulator) map[string]*[3]regression.Accumulator {
	famAcc := map[string]*[3]regression.Accumulator{}
	for _, name := range sortedStringKeys(accs) {
		acc := accs[name]
		fam := FamilyOf(name)
		fa, ok := famAcc[fam]
		if !ok {
			fa = &[3]regression.Accumulator{}
			famAcc[fam] = fa
		}
		for i := range fa {
			fa[i].Merge(acc[i])
		}
	}
	return famAcc
}

// classPools merges each driver class's member accumulators (on the class's
// own axis) into one pooled accumulator per driver, in sorted kernel order.
// Part of the online-rebuild chain (see rebuildFromAccumulators).
func classPools(classif map[string]Classification,
	accs map[string]*[3]regression.Accumulator) [3]regression.Accumulator {

	var pools [3]regression.Accumulator
	kernelNames := sortedStringKeys(accs)
	for i, d := range Drivers() {
		for _, name := range kernelNames {
			if classif[name].Driver == d {
				pools[i].Merge(accs[name][i])
			}
		}
	}
	return pools
}

// cloneMapping shallow-copies the layer-signature table so the model owns
// its map (the name slices are immutable by convention and shared).
func cloneMapping(src map[string][]string) map[string][]string {
	out := make(map[string][]string, len(src))
	for sig, names := range src {
		out[sig] = names
	}
	return out
}
