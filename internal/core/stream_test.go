package core

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpu"
)

// saveBytes serializes a fitted model for exact comparison.
func saveBytes(t *testing.T, m Predictor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamingFitGolden is the streaming-fit golden test: the KW, LW and
// E2E models fitted from collection-time sufficient statistics serialize to
// the exact bytes of the models fitted by rescanning the dataset records —
// and both are identical across collection worker counts. Run under -race
// by the verify gate, this pins the shard-and-merge fold order.
func TestStreamingFitGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	nets := zooSample()
	opt := dataset.DefaultBuildOptions()
	opt.Batches = 8
	opt.Warmup = 2
	gpus := []gpu.Spec{gpu.A100}

	type artifacts struct{ kw, lw, e2e []byte }
	run := func(workers int) (scan, stream artifacts) {
		opt.Workers = workers
		ds, st, _, err := dataset.BuildWithStats(nets, gpus, opt)
		if err != nil {
			t.Fatal(err)
		}

		kwScan, err := FitKW(ds, "A100", 512)
		if err != nil {
			t.Fatal(err)
		}
		lwScan, err := FitLW(ds, "A100", 512)
		if err != nil {
			t.Fatal(err)
		}
		e2eScan, err := FitE2E(ds, "A100", 512)
		if err != nil {
			t.Fatal(err)
		}
		scan = artifacts{saveBytes(t, kwScan), saveBytes(t, lwScan), saveBytes(t, e2eScan)}

		kwStream, err := FitKWFromStats(st, "A100", 512)
		if err != nil {
			t.Fatal(err)
		}
		lwStream, err := FitLWFromStats(st, "A100", 512)
		if err != nil {
			t.Fatal(err)
		}
		e2eStream, err := FitE2EFromStats(st, "A100", 512)
		if err != nil {
			t.Fatal(err)
		}
		stream = artifacts{saveBytes(t, kwStream), saveBytes(t, lwStream), saveBytes(t, e2eStream)}
		return scan, stream
	}

	check := func(label string, a, b artifacts) {
		t.Helper()
		if !bytes.Equal(a.kw, b.kw) {
			t.Errorf("%s: KW coefficients differ (%d vs %d bytes)", label, len(a.kw), len(b.kw))
		}
		if !bytes.Equal(a.lw, b.lw) {
			t.Errorf("%s: LW coefficients differ", label)
		}
		if !bytes.Equal(a.e2e, b.e2e) {
			t.Errorf("%s: E2E coefficients differ", label)
		}
	}

	scan1, stream1 := run(1)
	check("Workers=1 scan vs streaming", scan1, stream1)

	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		procs = 4
	}
	scanN, streamN := run(procs)
	check("parallel scan vs streaming", scanN, streamN)
	check("scan across worker counts", scan1, scanN)
	check("streaming across worker counts", stream1, streamN)

	if len(scan1.kw) == 0 || len(scan1.lw) == 0 || len(scan1.e2e) == 0 {
		t.Fatal("implausibly empty serialized model")
	}
}

// BenchmarkFitKW gates the fitting side of the fast path (the bench_compare
// gate for this package): one full KW fit from sufficient statistics. The
// dataset and its stats are collected once outside the timer.
func BenchmarkFitKW(b *testing.B) {
	nets := zooSample()
	opt := dataset.DefaultBuildOptions()
	opt.Batches = 8
	opt.Warmup = 2
	_, st, _, err := dataset.BuildWithStats(nets, []gpu.Spec{gpu.A100}, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitKWFromStats(st, "A100", 512); err != nil {
			b.Fatal(err)
		}
	}
}
