package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/zoo"
)

// sweepFixtureBatches covers the small-batch regime, off-breakpoint values
// and the training batch — the points where segment selection could diverge.
var sweepFixtureBatches = []int{1, 2, 3, 4, 7, 8, 63, 64, 511, 512}

// assertSweepIdentity checks that one PredictSweep call returns the exact
// same float64s (==, not within-epsilon) as per-batch PredictNetwork calls.
func assertSweepIdentity(t *testing.T, m SweepPredictor, nets []*dnn.Network) {
	t.Helper()
	for _, n := range nets {
		want := make([]units.Seconds, len(sweepFixtureBatches))
		for i, b := range sweepFixtureBatches {
			v, err := m.PredictNetwork(n, b)
			if err != nil {
				t.Fatalf("%s@%d: %v", n.Name, b, err)
			}
			want[i] = v
		}
		got, err := m.PredictSweep(n, sweepFixtureBatches)
		if err != nil {
			t.Fatalf("%s: sweep: %v", n.Name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: sweep returned %d results for %d batches", n.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s@%d: sweep %v != looped %v (diff %g)",
					n.Name, sweepFixtureBatches[i], got[i], want[i], got[i]-want[i])
			}
		}
	}
}

// TestKWSweepBitIdentical is the golden test for the sweep path: one
// PredictSweep pass must be bit-identical to looped PredictNetwork calls for
// every zoo-sample network, with observation both off and on (telemetry must
// stay a pure side channel).
func TestKWSweepBitIdentical(t *testing.T) {
	ds := buildSampleDataset(t, false)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	nets := zooSample()

	prev := obs.Enabled()
	defer obs.SetEnabled(prev)
	obs.SetEnabled(false)
	t.Run("obs-off", func(t *testing.T) { assertSweepIdentity(t, kw, nets) })
	obs.SetEnabled(true)
	t.Run("obs-on", func(t *testing.T) { assertSweepIdentity(t, kw, nets) })
}

// TestIGKWSweepBitIdentical repeats the sweep identity proof for the
// cross-GPU model.
func TestIGKWSweepBitIdentical(t *testing.T) {
	ds := &dataset.Dataset{}
	for _, g := range []gpu.Spec{gpu.A100, gpu.A40, gpu.V100} {
		ds.Merge(plantKernelDataset(g, 3))
	}
	m, err := FitIGKW(ds, []gpu.Spec{gpu.A100, gpu.A40, gpu.V100}, gpu.TitanRTX, 512)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepIdentity(t, m, zooSample()[:20])
}

func TestPredictSweepValidation(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 3)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	net, err := zoo.ByName("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kw.PredictSweep(net, []int{4, 0, 8}); err == nil {
		t.Fatal("batch 0 must be rejected")
	}
	if _, err := kw.PredictSweep(net, []int{-1}); err == nil {
		t.Fatal("negative batch must be rejected")
	}
	out, err := kw.PredictSweep(net, nil)
	if err != nil {
		t.Fatalf("empty sweep: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty sweep returned %d results", len(out))
	}
}

// badNetwork builds a network whose shape inference fails, for error-path
// coverage (a Linear fed the wrong feature count).
func badNetwork(name string) *dnn.Network {
	n := dnn.New(name, "test", dnn.TaskImageClassification, dnn.Shape{8})
	n.Linear(dnn.NetworkInput, 99, 10)
	return n
}

func TestPredictSweepErrorPropagates(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 3)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kw.PredictSweep(badNetwork("bad"), []int{1, 2}); err == nil {
		t.Fatal("sweep over an invalid network must error")
	}
}

func TestPredictGridMatchesLoop(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 3)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	nets := []*dnn.Network{mustNet(t, "resnet50"), mustNet(t, "resnet18")}
	batches := []int{1, 64, 512}

	g, err := PredictGrid([]SweepPredictor{kw}, nets, batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.GPUs) != 1 || g.GPUs[0] != "A100" {
		t.Fatalf("GPUs = %v", g.GPUs)
	}
	if len(g.Networks) != 2 || g.Networks[0] != "resnet50" || g.Networks[1] != "resnet18" {
		t.Fatalf("Networks = %v", g.Networks)
	}
	for j, n := range nets {
		for k, b := range batches {
			want, err := kw.PredictNetwork(n, b)
			if err != nil {
				t.Fatal(err)
			}
			if got := g.Seconds[0][j][k]; got != want {
				t.Fatalf("cell (%s, %d): %v != %v", n.Name, b, got, want)
			}
		}
	}

	tm := g.TimesForBatch(1)
	row, ok := tm["A100"]
	if !ok || len(row) != 2 {
		t.Fatalf("TimesForBatch = %v", tm)
	}
	for j := range nets {
		if row[j] != g.Seconds[0][j][1].Float64() {
			t.Fatalf("TimesForBatch[%d] = %v, want %v", j, row[j], g.Seconds[0][j][1].Float64())
		}
	}
}

// TestPredictGridFirstErrorWins: errors must be deterministic — the first
// failing cell in (model, network) order, regardless of goroutine timing.
func TestPredictGridFirstErrorWins(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 3)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	nets := []*dnn.Network{mustNet(t, "resnet18"), badNetwork("bad-one"), badNetwork("bad-two")}
	for i := 0; i < 10; i++ {
		_, err := PredictGrid([]SweepPredictor{kw}, nets, []int{1, 4})
		if err == nil {
			t.Fatal("grid with invalid networks must error")
		}
		if !strings.Contains(err.Error(), "grid cell") || !strings.Contains(err.Error(), "bad-one") {
			t.Fatalf("error %q should name the first failing cell (bad-one)", err)
		}
	}
}

func mustNet(t *testing.T, name string) *dnn.Network {
	t.Helper()
	n, err := zoo.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// ------------------------------------------------------------- benchmarks

// sweepBenchBatches is a 64-point batch grid, the design-space-exploration
// shape the sweep API exists for.
func sweepBenchBatches() []int {
	out := make([]int, 64)
	for i := range out {
		out[i] = 8 * (i + 1)
	}
	return out
}

// BenchmarkPredictSweep measures a 64-point sweep through one PredictSweep
// call. Compare with BenchmarkPredictSweepLoop: the sweep pays the per-query
// overhead (validation, fingerprint, cache lookup, telemetry) once instead
// of 64 times.
func BenchmarkPredictSweep(b *testing.B) {
	kw, net := benchKW(b)
	batches := sweepBenchBatches()
	if _, err := kw.PredictSweep(net, batches); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kw.PredictSweep(net, batches); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictSweepLoop is the same 64-point grid through per-batch
// PredictNetwork calls — the consumer pattern PredictSweep replaces.
func BenchmarkPredictSweepLoop(b *testing.B) {
	kw, net := benchKW(b)
	batches := sweepBenchBatches()
	if _, err := kw.PredictNetwork(net, 512); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, batch := range batches {
			if _, err := kw.PredictNetwork(net, batch); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPredictGrid measures the scheduling-case-study shape: one model,
// eight networks, a 16-point batch grid.
func BenchmarkPredictGrid(b *testing.B) {
	kw, _ := benchKW(b)
	nets := zooSample()[:8]
	batches := sweepBenchBatches()[:16]
	if _, err := PredictGrid([]SweepPredictor{kw}, nets, batches); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PredictGrid([]SweepPredictor{kw}, nets, batches); err != nil {
			b.Fatal(err)
		}
	}
}
