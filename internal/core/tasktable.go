package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dnn"
)

// Task-table construction: the cluster-scale scheduler consumes a dense
// (GPU × task) time table for queues of up to 10⁶ tasks, where each task
// is one of a handful of networks at some batch size. Predicting per task
// would pay the per-call overhead a million times; instead TaskTimes runs
// one PredictSweep per (model, network) pair over the task list's UNIQUE
// batch sizes — bit-identical to per-task prediction by the SweepPredictor
// contract — and scatters the handful of predicted values across the
// million task slots.

// TaskTimes builds the gpu-major time table for a task list: taskNet[i]
// and taskBatch[i] give task i's network (an index into nets) and batch
// size. The result rows follow the models' order (names from GPUName), and
// row g holds task i's seconds at gpuTimes[g*len(taskNet)+i] — the layout
// sched.NewDenseTimes fills via Row. Prediction runs one goroutine per
// (model, network) pair, like PredictGrid; the scatter is deterministic.
func TaskTimes(models []SweepPredictor, nets []*dnn.Network, taskNet, taskBatch []int) ([]string, []float64, error) {
	nTasks := len(taskNet)
	if nTasks == 0 {
		return nil, nil, fmt.Errorf("core: task table with no tasks")
	}
	if len(taskBatch) != nTasks {
		return nil, nil, fmt.Errorf("core: %d task networks but %d task batches", nTasks, len(taskBatch))
	}
	if len(models) == 0 {
		return nil, nil, fmt.Errorf("core: task table with no models")
	}

	// Collect each network's unique batch sizes, sorted so sweep inputs —
	// and therefore any sweep-internal rounding — are order-independent.
	batchSets := make([]map[int]int, len(nets)) // net → batch → sweep index
	for i, nj := range taskNet {
		if nj < 0 || nj >= len(nets) {
			return nil, nil, fmt.Errorf("core: task %d references network %d of %d", i, nj, len(nets))
		}
		if taskBatch[i] <= 0 {
			return nil, nil, fmt.Errorf("core: task %d has non-positive batch %d", i, taskBatch[i])
		}
		if batchSets[nj] == nil {
			batchSets[nj] = make(map[int]int)
		}
		batchSets[nj][taskBatch[i]] = 0
	}
	sweepBatches := make([][]int, len(nets))
	for j, set := range batchSets {
		if set == nil {
			continue // network never referenced: no sweep needed
		}
		bs := make([]int, 0, len(set))
		for b := range set {
			bs = append(bs, b)
		}
		sort.Ints(bs)
		for k, b := range bs {
			set[b] = k
		}
		sweepBatches[j] = bs
	}

	gpus := make([]string, len(models))
	for g, m := range models {
		gpus[g] = m.GPUName()
	}

	// One sweep per (model, referenced network), goroutine-parallel with
	// indexed result slots — deterministic like PredictGrid, and the first
	// failing (model, network) in input order wins error reporting.
	seconds := make([][][]float64, len(models)) // [model][net][sweep index]
	errs := make([]error, len(models)*len(nets))
	var wg sync.WaitGroup
	for g, m := range models {
		seconds[g] = make([][]float64, len(nets))
		for j, n := range nets {
			if sweepBatches[j] == nil {
				continue
			}
			wg.Add(1)
			go func(g, j int, m SweepPredictor, n *dnn.Network) {
				defer wg.Done()
				out, err := m.PredictSweep(n, sweepBatches[j])
				if err != nil {
					errs[g*len(nets)+j] = fmt.Errorf("core: task table cell (%s, %s): %w", m.GPUName(), n.Name, err)
					return
				}
				row := make([]float64, len(out))
				for k, v := range out {
					row[k] = v.Float64()
				}
				seconds[g][j] = row
			}(g, j, m, n)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Scatter the per-(net, batch) predictions across the task slots.
	table := make([]float64, len(models)*nTasks)
	for g := range models {
		row := table[g*nTasks : (g+1)*nTasks]
		for i, nj := range taskNet {
			row[i] = seconds[g][nj][batchSets[nj][taskBatch[i]]]
		}
	}
	return gpus, table, nil
}
