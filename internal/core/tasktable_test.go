package core

import (
	"strings"
	"testing"

	"repro/internal/dnn"
	"repro/internal/gpu"
)

// TestTaskTimesMatchesPointPredictions: the sweep-fed builder must agree
// bit-for-bit with per-task PredictNetwork calls — that is the whole
// SweepPredictor contract the scatter relies on.
func TestTaskTimesMatchesPointPredictions(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 3)
	kwA, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	dsB := plantKernelDataset(gpu.TitanRTX, 3)
	kwB, err := FitKW(dsB, "TITAN RTX", 512)
	if err != nil {
		t.Fatal(err)
	}
	models := []SweepPredictor{kwA, kwB}
	nets := []*dnn.Network{mustNet(t, "resnet50"), mustNet(t, "resnet18")}

	// A queue reusing few (network, batch) combinations across many tasks.
	taskNet := []int{0, 1, 0, 1, 0, 0, 1, 1, 0}
	taskBatch := []int{1, 64, 16, 1, 1, 16, 64, 64, 16}

	gpus, table, err := TaskTimes(models, nets, taskNet, taskBatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(gpus) != 2 || gpus[0] != "A100" || gpus[1] != "TITAN RTX" {
		t.Fatalf("gpus = %v", gpus)
	}
	if len(table) != 2*len(taskNet) {
		t.Fatalf("table has %d entries, want %d", len(table), 2*len(taskNet))
	}
	for g, m := range models {
		for i := range taskNet {
			want, err := m.PredictNetwork(nets[taskNet[i]], taskBatch[i])
			if err != nil {
				t.Fatal(err)
			}
			if got := table[g*len(taskNet)+i]; got != want.Float64() {
				t.Fatalf("task %d on %s: table %v != point prediction %v",
					i, gpus[g], got, want.Float64())
			}
		}
	}
}

// TestTaskTimesValidation covers the builder's error paths, including the
// deterministic first-cell-wins error from a failing sweep.
func TestTaskTimesValidation(t *testing.T) {
	ds := plantKernelDataset(gpu.A100, 3)
	kw, err := FitKW(ds, "A100", 512)
	if err != nil {
		t.Fatal(err)
	}
	models := []SweepPredictor{kw}
	nets := []*dnn.Network{mustNet(t, "resnet18")}

	if _, _, err := TaskTimes(models, nets, nil, nil); err == nil {
		t.Fatal("empty task list should error")
	}
	if _, _, err := TaskTimes(models, nets, []int{0}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, _, err := TaskTimes(nil, nets, []int{0}, []int{1}); err == nil {
		t.Fatal("no models should error")
	}
	if _, _, err := TaskTimes(models, nets, []int{1}, []int{1}); err == nil {
		t.Fatal("out-of-range network index should error")
	}
	if _, _, err := TaskTimes(models, nets, []int{0}, []int{0}); err == nil {
		t.Fatal("non-positive batch should error")
	}

	bad := []*dnn.Network{mustNet(t, "resnet18"), badNetwork("bad-one"), badNetwork("bad-two")}
	for trial := 0; trial < 5; trial++ {
		_, _, err := TaskTimes(models, bad, []int{0, 1, 2}, []int{1, 1, 1})
		if err == nil {
			t.Fatal("failing sweeps must error")
		}
		if !strings.Contains(err.Error(), "bad-one") {
			t.Fatalf("error %q should name the first failing network", err)
		}
	}
}
