package dataset

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/units"
)

// BuildOptions configures dataset collection.
type BuildOptions struct {
	// E2EBatchSizes are the batch sizes at which end-to-end times are
	// recorded (Figure 3 uses "batch size 4 or higher"; training uses 512).
	E2EBatchSizes []int
	// DetailBatchSize is the batch size at which layer- and kernel-level
	// records are collected (the paper trains at BS=512, where GPUs are
	// fully utilized).
	DetailBatchSize int
	// Batches is the measured-batch count per point (paper: 30).
	Batches int
	// Warmup is the warm-up batch count (paper: 20).
	Warmup int
	// Training collects training-step measurements (forward + backward +
	// optimizer kernels) instead of inference.
	Training bool
	// SimConfig overrides the device-model constants (zero = defaults).
	SimConfig sim.Config
	// Workers bounds collection parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultBuildOptions returns the paper's collection protocol.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		E2EBatchSizes:   []int{4, 64, 512},
		DetailBatchSize: 512,
		Batches:         30,
		Warmup:          20,
	}
}

// BuildReport summarizes a collection run.
type BuildReport struct {
	// Profiled counts successful (network, GPU, batch) executions.
	Profiled int
	// OutOfMemory lists the runs dropped for exceeding device memory, as
	// "network@batch on GPU" strings.
	OutOfMemory []string
}

// Build collects the dataset: for every (network, GPU) pair it records
// end-to-end times at every E2E batch size and layer/kernel detail at the
// detail batch size. Out-of-memory runs are dropped and reported, mirroring
// the paper's cleaning step. Collection parallelizes across networks; the
// result is deterministic (per-run RNG seeds depend only on network, GPU and
// batch size) and ordered by (network index, GPU index).
func Build(nets []*dnn.Network, gpus []gpu.Spec, opt BuildOptions) (*Dataset, *BuildReport, error) {
	if len(nets) == 0 || len(gpus) == 0 {
		return nil, nil, errors.New("dataset: Build needs at least one network and one GPU")
	}
	if opt.Batches <= 0 {
		opt.Batches = 30
	}
	if opt.DetailBatchSize <= 0 {
		opt.DetailBatchSize = 512
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nets) {
		workers = len(nets)
	}

	devices := make([]*sim.Device, len(gpus))
	for i, g := range gpus {
		devices[i] = sim.New(g, opt.SimConfig)
	}

	results := make([]collectResult, len(nets))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = collectNetwork(nets[i], devices, opt)
			}
		}()
	}
	for i := range nets {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	ds := &Dataset{}
	report := &BuildReport{}
	for i := range results {
		if results[i].err != nil {
			return nil, nil, fmt.Errorf("dataset: network %q: %w", nets[i].Name, results[i].err)
		}
		ds.Merge(&results[i].ds)
		report.OutOfMemory = append(report.OutOfMemory, results[i].oom...)
		report.Profiled += results[i].profiled
	}
	sort.Strings(report.OutOfMemory)
	return ds, report, nil
}

// collectResult is one network's collection output.
type collectResult struct {
	ds Dataset
	// profiled counts the successful (network, GPU, batch) executions — the
	// quantity BuildReport.Profiled aggregates.
	profiled int
	oom      []string
	err      error
}

// collectNetwork profiles one network on every device. It works on a private
// clone so parallel workers never share mutable shape state.
func collectNetwork(src *dnn.Network, devices []*sim.Device, opt BuildOptions) (res collectResult) {
	net := cloneNetwork(src)

	batches := make([]int, 0, len(opt.E2EBatchSizes)+1)
	batches = append(batches, opt.E2EBatchSizes...)
	hasDetail := false
	for _, b := range batches {
		if b == opt.DetailBatchSize {
			hasDetail = true
		}
	}
	if !hasDetail {
		batches = append(batches, opt.DetailBatchSize)
	}

	// One profiler for the whole network, re-pointed per device, so its
	// per-kernel scratch buffers are reused across every profiled run.
	p := &profiler.Profiler{Warmup: opt.Warmup, Batches: opt.Batches, Training: opt.Training}
	for _, dev := range devices {
		p.Device = dev
		for _, bs := range batches {
			tr, err := p.Profile(net, bs)
			if errors.Is(err, profiler.ErrOutOfMemory) {
				res.oom = append(res.oom, fmt.Sprintf("%s@%d on %s", net.Name, bs, dev.GPU.Name))
				continue
			}
			if err != nil {
				res.err = err
				return res
			}
			res.profiled++
			if bs == opt.DetailBatchSize {
				res.ds.AddTrace(tr) // full detail
			} else {
				// End-to-end record only.
				res.ds.Networks = append(res.ds.Networks, NetworkRecord{
					Network: tr.Network, Family: tr.Family, Task: string(tr.Task),
					GPU: tr.GPU, BatchSize: tr.BatchSize,
					TotalFLOPs: units.FLOPs(tr.TotalFLOPs), E2ESeconds: units.Seconds(tr.E2ETime),
				})
			}
		}
	}
	return res
}

// cloneNetwork deep-copies the network structure so shape inference in one
// goroutine cannot race another.
func cloneNetwork(n *dnn.Network) *dnn.Network { return n.Clone() }
