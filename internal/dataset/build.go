package dataset

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/units"
)

var (
	metricBuildSeconds = obs.Default().Histogram("dataset_build_seconds",
		"Wall-clock duration of one dataset.Build collection pass.", nil)
	metricBuilds = obs.Default().Counter("dataset_builds_total",
		"Dataset collection passes completed.")
	metricBuildRecords = obs.Default().Counter("dataset_records_total",
		"Records (network + layer + kernel) emitted by dataset collection.")
)

// BuildOptions configures dataset collection.
type BuildOptions struct {
	// E2EBatchSizes are the batch sizes at which end-to-end times are
	// recorded (Figure 3 uses "batch size 4 or higher"; training uses 512).
	E2EBatchSizes []int
	// DetailBatchSize is the batch size at which layer- and kernel-level
	// records are collected (the paper trains at BS=512, where GPUs are
	// fully utilized).
	DetailBatchSize int
	// Batches is the measured-batch count per point (paper: 30).
	Batches int
	// Warmup is the warm-up batch count (paper: 20).
	Warmup int
	// Training collects training-step measurements (forward + backward +
	// optimizer kernels) instead of inference.
	Training bool
	// Dedup drops exact duplicate records at collection time. Every record
	// carries its network name, so duplicates can only arise within one
	// network's output — dropping them per network inside the parallel
	// collection workers is byte-identical to calling Dataset.Clean on the
	// built result, without the serial whole-dataset pass.
	Dedup bool
	// SimConfig overrides the device-model constants (zero = defaults).
	SimConfig sim.Config
	// Workers bounds collection parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultBuildOptions returns the paper's collection protocol.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{
		E2EBatchSizes:   []int{4, 64, 512},
		DetailBatchSize: 512,
		Batches:         30,
		Warmup:          20,
	}
}

// BuildReport summarizes a collection run.
type BuildReport struct {
	// Profiled counts successful (network, GPU, batch) executions.
	Profiled int
	// OutOfMemory lists the runs dropped for exceeding device memory, as
	// "network@batch on GPU" strings.
	OutOfMemory []string
}

// Build collects the dataset: for every (network, GPU) pair it records
// end-to-end times at every E2E batch size and layer/kernel detail at the
// detail batch size. Out-of-memory runs are dropped and reported, mirroring
// the paper's cleaning step. Collection parallelizes across networks; the
// result is deterministic (per-run RNG seeds depend only on network, GPU and
// batch size) and ordered by (network index, GPU index).
func Build(nets []*dnn.Network, gpus []gpu.Spec, opt BuildOptions) (*Dataset, *BuildReport, error) {
	results, report, err := collect(nets, gpus, opt, false)
	if err != nil {
		return nil, nil, err
	}
	ds := mergeResults(results, -1)
	metricBuildRecords.Add(int64(len(ds.Networks) + len(ds.Layers) + len(ds.Kernels)))
	return ds, report, nil
}

// BuildPerGPU is Build split by device: result i holds exactly the records
// of gpus[i], byte-identical to Build(...).FilterGPU(gpus[i].Name) but
// assembled without materializing (and then rescanning) the combined
// dataset. The experiment lab caches datasets per GPU, so this is its
// collection entry point.
func BuildPerGPU(nets []*dnn.Network, gpus []gpu.Spec, opt BuildOptions) ([]*Dataset, *BuildReport, error) {
	results, report, err := collect(nets, gpus, opt, false)
	if err != nil {
		return nil, nil, err
	}
	parts := make([]*Dataset, len(gpus))
	total := 0
	for di := range gpus {
		parts[di] = mergeResults(results, di)
		total += len(parts[di].Networks) + len(parts[di].Layers) + len(parts[di].Kernels)
	}
	metricBuildRecords.Add(int64(total))
	return parts, report, nil
}

// BuildWithStats collects the dataset and, in the same pass, folds every
// trace into streaming sufficient statistics (the collection half of the
// paper's "trains in seconds" loop). The returned Stats are bit-identical to
// StatsFromDataset applied to the returned dataset; the core Fit*FromStats
// functions consume them without rescanning records.
func BuildWithStats(nets []*dnn.Network, gpus []gpu.Spec, opt BuildOptions) (*Dataset, *Stats, *BuildReport, error) {
	results, report, err := collect(nets, gpus, opt, true)
	if err != nil {
		return nil, nil, nil, err
	}
	ds := mergeResults(results, -1)
	stats := NewStats()
	for i := range results {
		stats.Merge(results[i].stats)
	}
	metricBuildRecords.Add(int64(len(ds.Networks) + len(ds.Layers) + len(ds.Kernels)))
	return ds, stats, report, nil
}

// collect runs the parallel collection pass and returns the per-network
// results (each holding one Dataset per device) plus the aggregate report.
func collect(nets []*dnn.Network, gpus []gpu.Spec, opt BuildOptions, wantStats bool) ([]collectResult, *BuildReport, error) {
	if len(nets) == 0 || len(gpus) == 0 {
		return nil, nil, errors.New("dataset: Build needs at least one network and one GPU")
	}
	if opt.Batches <= 0 {
		opt.Batches = 30
	}
	if opt.DetailBatchSize <= 0 {
		opt.DetailBatchSize = 512
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nets) {
		workers = len(nets)
	}
	tm := obs.StartTimer(metricBuildSeconds)
	defer tm.Stop()

	devices := make([]*sim.Device, len(gpus))
	for i, g := range gpus {
		devices[i] = sim.New(g, opt.SimConfig)
	}

	// The channel is buffered to the full job count and filled before any
	// worker starts, so no code path (panic included) can leave a worker
	// blocked on a send that never comes.
	results := make([]collectResult, len(nets))
	jobs := make(chan int, len(nets))
	for i := range nets {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One profiler (and one dedup scratch) per worker, so per-kernel
			// scratch, the base-time memo and the dedup maps persist across
			// every network this worker collects.
			p := &profiler.Profiler{Warmup: opt.Warmup, Batches: opt.Batches, Training: opt.Training}
			var cl cleaner
			for i := range jobs {
				results[i] = collectNetwork(p, &cl, nets[i], devices, opt, wantStats)
			}
		}()
	}
	wg.Wait()

	report := &BuildReport{}
	for i := range results {
		if results[i].err != nil {
			return nil, nil, fmt.Errorf("dataset: network %q: %w", nets[i].Name, results[i].err)
		}
		report.OutOfMemory = append(report.OutOfMemory, results[i].oom...)
		report.Profiled += results[i].profiled
	}
	sort.Strings(report.OutOfMemory)
	metricBuilds.Inc()
	return results, report, nil
}

// mergeResults concatenates the per-network collection outputs, presized
// exactly. device selects one device's records; -1 merges all devices in the
// legacy (network-outer, device-inner) Build order.
func mergeResults(results []collectResult, device int) *Dataset {
	nNet, nLay, nKer := 0, 0, 0
	for i := range results {
		for di := range results[i].ds {
			if device >= 0 && di != device {
				continue
			}
			d := &results[i].ds[di]
			nNet += len(d.Networks)
			nLay += len(d.Layers)
			nKer += len(d.Kernels)
		}
	}
	out := &Dataset{}
	out.Grow(nNet, nLay, nKer)
	for i := range results {
		for di := range results[i].ds {
			if device >= 0 && di != device {
				continue
			}
			out.Merge(&results[i].ds[di])
		}
	}
	return out
}

// collectResult is one network's collection output: one Dataset per device,
// so per-GPU assembly never rescans a combined dataset.
type collectResult struct {
	ds    []Dataset
	stats *Stats
	// profiled counts the successful (network, GPU, batch) executions — the
	// quantity BuildReport.Profiled aggregates.
	profiled int
	oom      []string
	err      error
}

// collectNetwork profiles one network on every device. It works on a private
// clone so parallel workers never share mutable shape state. The loop is
// batch-outer/device-inner: shape inference and kernel enumeration run once
// per batch size (Profiler.Prepare) and the prepared plan replays on each
// device — the per-device work is just the timing simulation. Records are
// emitted per device in batch order, which is exactly the legacy
// (device-outer, batch-inner) order once the per-device slices are
// concatenated.
func collectNetwork(p *profiler.Profiler, cl *cleaner, src *dnn.Network, devices []*sim.Device, opt BuildOptions, wantStats bool) (res collectResult) {
	defer func() {
		if r := recover(); r != nil {
			res.err = fmt.Errorf("dataset: collecting %s: panic: %v", src.Name, r)
		}
	}()
	net := cloneNetwork(src)

	batches := make([]int, 0, len(opt.E2EBatchSizes)+1)
	batches = append(batches, opt.E2EBatchSizes...)
	hasDetail := false
	for _, b := range batches {
		if b == opt.DetailBatchSize {
			hasDetail = true
		}
	}
	if !hasDetail {
		batches = append(batches, opt.DetailBatchSize)
	}

	// Collect batch-outer into a (device, batch) grid of traces.
	grid := make([][]*profiler.Trace, len(devices))
	for di := range grid {
		grid[di] = make([]*profiler.Trace, len(batches))
	}
	for bi, bs := range batches {
		prep, err := p.Prepare(net, bs)
		if err != nil {
			res.err = err
			return res
		}
		for di, dev := range devices {
			p.Device = dev
			var tr *profiler.Trace
			var err error
			if bs == opt.DetailBatchSize {
				tr, err = p.ProfilePrepared(prep)
			} else {
				// Only the end-to-end record survives for this batch size;
				// skip assembling the per-kernel trace.
				tr, err = p.ProfileE2EPrepared(prep)
			}
			if errors.Is(err, profiler.ErrOutOfMemory) {
				res.oom = append(res.oom, fmt.Sprintf("%s@%d on %s", net.Name, bs, dev.GPU.Name))
				continue
			}
			if err != nil {
				res.err = err
				return res
			}
			res.profiled++
			grid[di][bi] = tr
		}
	}

	// Pre-size each device's slices from exact counts, then emit per device
	// in batch order.
	res.ds = make([]Dataset, len(devices))
	if wantStats {
		res.stats = NewStats()
	}
	for di := range grid {
		nNet, nLay, nKer := 0, 0, 0
		for bi, bs := range batches {
			tr := grid[di][bi]
			if tr == nil {
				continue
			}
			nNet++
			if bs != opt.DetailBatchSize {
				continue
			}
			for li := range tr.Layers {
				if k := len(tr.Layers[li].Kernels); k > 0 {
					nLay++
					nKer += k
				}
			}
		}
		d := &res.ds[di]
		d.Grow(nNet, nLay, nKer)
		for bi, bs := range batches {
			tr := grid[di][bi]
			if tr == nil {
				continue
			}
			if bs == opt.DetailBatchSize {
				d.AddTrace(tr) // full detail
				if wantStats {
					res.stats.FoldTrace(tr)
				}
				continue
			}
			// End-to-end record only.
			rec := NetworkRecord{
				Network: tr.Network, Family: tr.Family, Task: string(tr.Task),
				GPU: tr.GPU, BatchSize: tr.BatchSize,
				TotalFLOPs: units.FLOPs(tr.TotalFLOPs), E2ESeconds: units.Seconds(tr.E2ETime),
			}
			d.Networks = append(d.Networks, rec)
			if wantStats {
				res.stats.FoldNetworkRecord(rec)
			}
		}
	}
	if opt.Dedup {
		// Duplicates carry their network and GPU names, so they can only
		// arise within one device's slice here. With distinct batch sizes the
		// structure narrows further — network records differ by batch size
		// and layer records by layer index, so only kernel records can repeat
		// — and a tiny per-layer scan replaces hashing every record. Repeated
		// batch sizes (degenerate options) fall back to the generic cleaner,
		// whose worker-owned maps are cleared, not reallocated, per network.
		uniqueBatches := true
	batchCheck:
		for i := 1; i < len(batches); i++ {
			for j := 0; j < i; j++ {
				if batches[j] == batches[i] {
					uniqueBatches = false
					break batchCheck
				}
			}
		}
		dropped := 0
		for di := range res.ds {
			if uniqueBatches {
				n := len(res.ds[di].Kernels)
				res.ds[di].Kernels = dedupKernelGroups(res.ds[di].Kernels)
				dropped += n - len(res.ds[di].Kernels)
			} else {
				dropped += cl.clean(&res.ds[di])
			}
		}
		if dropped > 0 && wantStats {
			// Refold so the stats keep describing exactly the returned
			// records. Dropping only happens when two kernels of one layer
			// coincide in name and duration (certain only for noise-free
			// devices), so the refold is almost never taken.
			res.stats = NewStats()
			for di := range res.ds {
				res.stats.Merge(StatsFromDataset(&res.ds[di]))
			}
		}
	}
	return res
}

// dedupKernelGroups drops exact duplicate kernel records in place and
// returns the compacted slice. The records come from a single detail trace:
// one layer's launches are contiguous and share every field except the
// kernel name and duration, so a duplicate can only repeat within its layer
// group — and groups are a handful of launches, making a quadratic in-group
// scan cheaper than hashing every record into a set.
func dedupKernelGroups(recs []KernelRecord) []KernelRecord {
	out := recs[:0]
	groupStart := 0
	for i := range recs {
		if i > 0 && recs[i].LayerIndex != recs[i-1].LayerIndex {
			groupStart = len(out)
		}
		dup := false
		for j := groupStart; j < len(out); j++ {
			if out[j] == recs[i] {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, recs[i])
		}
	}
	return out
}

// cloneNetwork deep-copies the network structure so shape inference in one
// goroutine cannot race another.
func cloneNetwork(n *dnn.Network) *dnn.Network { return n.Clone() }
