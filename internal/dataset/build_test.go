package dataset

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/zoo"
)

// smallOpt is the compact collection protocol the build tests share.
func smallOpt() BuildOptions {
	opt := DefaultBuildOptions()
	opt.Batches = 2
	opt.Warmup = 1
	opt.E2EBatchSizes = []int{4, 64}
	opt.DetailBatchSize = 64
	return opt
}

func smallNets() []*dnn.Network {
	return []*dnn.Network{
		zoo.MustResNet(18),
		zoo.MustVGG(11, false),
		zoo.StandardMobileNetV2(),
		zoo.MustDenseNet(121),
	}
}

// TestBuildPanicReturnsError is the regression test for the worker-deadlock
// fix: a panic while collecting one network must surface as an error from
// Build — not hang the remaining workers on the jobs channel or crash the
// process. The nil layer pointer panics inside collectNetwork's recover
// scope (during Clone/Infer).
func TestBuildPanicReturnsError(t *testing.T) {
	bad := zoo.MustResNet(18)
	bad.Name = "bad-panics"
	bad.Layers = append(bad.Layers, nil)
	nets := append(smallNets(), bad)

	opt := smallOpt()
	opt.Workers = 2

	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, _, err = Build(nets, []gpu.Spec{gpu.A100}, opt)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Build deadlocked after a collection panic")
	}
	if err == nil {
		t.Fatal("Build swallowed the collection panic")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "bad-panics") {
		t.Fatalf("err = %v, want a panic error naming the network", err)
	}
}

// TestBuildErrorDrainsJobs feeds more erroring networks than workers: every
// worker must still drain the (buffered) jobs channel and Build must return
// the first error in network order.
func TestBuildErrorDrainsJobs(t *testing.T) {
	mkBad := func(name string) *dnn.Network {
		n := dnn.New(name, "Test", dnn.TaskImageClassification, dnn.Shape{3, 8, 8})
		n.Conv(dnn.NetworkInput, 7, 3, 1, 1, 0) // channel mismatch: Infer errors
		return n
	}
	nets := []*dnn.Network{mkBad("bad0"), mkBad("bad1"), mkBad("bad2"), mkBad("bad3")}
	opt := smallOpt()
	opt.Workers = 2
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, _, err = Build(nets, []gpu.Spec{gpu.A100}, opt)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Build deadlocked on the error path")
	}
	if err == nil || !strings.Contains(err.Error(), `network "bad0"`) {
		t.Fatalf("err = %v, want the first network's error", err)
	}
}

// TestBuildWithStatsMatchesScan proves the streaming contract: the Stats
// folded during collection equal StatsFromDataset over the returned records,
// and both the dataset and the stats are identical across worker counts.
func TestBuildWithStatsMatchesScan(t *testing.T) {
	opt := smallOpt()
	gpus := []gpu.Spec{gpu.A100, gpu.V100}

	opt.Workers = 1
	ds1, st1, _, err := BuildWithStats(smallNets(), gpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st1, StatsFromDataset(ds1)) {
		t.Fatal("streamed stats differ from a full-record rescan (Workers=1)")
	}

	opt.Workers = runtime.GOMAXPROCS(0)
	ds2, st2, _, err := BuildWithStats(smallNets(), gpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds1, ds2) {
		t.Fatal("dataset differs across worker counts")
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("stats differ across worker counts")
	}
	if !reflect.DeepEqual(st2, StatsFromDataset(ds2)) {
		t.Fatal("streamed stats differ from a full-record rescan (parallel)")
	}
}

// TestBuildPerGPUMatchesFilterGPU proves the per-device assembly contract:
// BuildPerGPU's parts are byte-identical to filtering the combined Build.
func TestBuildPerGPUMatchesFilterGPU(t *testing.T) {
	opt := smallOpt()
	gpus := []gpu.Spec{gpu.A100, gpu.TitanRTX}

	combined, repA, err := Build(smallNets(), gpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	parts, repB, err := BuildPerGPU(smallNets(), gpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("reports differ: %+v vs %+v", repA, repB)
	}
	for i, g := range gpus {
		want := combined.FilterGPU(g.Name)
		if !reflect.DeepEqual(parts[i], want) {
			t.Fatalf("BuildPerGPU part %d (%s) differs from Build+FilterGPU", i, g.Name)
		}
	}
}

// TestBuildDedupMatchesClean proves collection-time deduplication is
// byte-identical to a serial Clean of the built result — on the structural
// fast path (distinct batch sizes), on the generic-cleaner fallback
// (repeated batch sizes), and with a noise-free device where exact duplicate
// kernel durations actually occur.
func TestBuildDedupMatchesClean(t *testing.T) {
	run := func(t *testing.T, nets []*dnn.Network, opt BuildOptions, wantDuplicates bool) {
		gpus := []gpu.Spec{gpu.A100, gpu.V100}
		plain, _, err := Build(nets, gpus, opt)
		if err != nil {
			t.Fatal(err)
		}
		if dropped := plain.Clean(); wantDuplicates && dropped == 0 {
			t.Fatal("fixture produced no duplicates; the dedup path is not exercised")
		}

		opt.Dedup = true
		deduped, _, err := Build(nets, gpus, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, deduped) {
			t.Fatal("Dedup build differs from Build+Clean")
		}

		// Streaming stats must describe exactly the deduplicated records.
		ds, st, _, err := BuildWithStats(nets, gpus, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ds, deduped) {
			t.Fatal("BuildWithStats with Dedup differs from Build with Dedup")
		}
		if !reflect.DeepEqual(st, StatsFromDataset(ds)) {
			t.Fatal("stats diverge from deduplicated records")
		}
	}

	t.Run("distinct-batches", func(t *testing.T) { run(t, smallNets(), smallOpt(), false) })

	t.Run("repeated-batches", func(t *testing.T) {
		// Degenerate options: the detail batch size appears twice, so whole
		// duplicate record sets are emitted and the structural fast path does
		// not apply — the generic cleaner fallback must handle it.
		opt := smallOpt()
		opt.E2EBatchSizes = []int{64, 64}
		run(t, smallNets(), opt, true)
	})

	t.Run("noise-free", func(t *testing.T) {
		// σ<0 disables measurement noise; durations are then fully
		// deterministic, the hardest setting for accidental divergence
		// between the two dedup implementations.
		opt := smallOpt()
		opt.SimConfig = sim.Config{NoiseSigma: -1}
		run(t, smallNets(), opt, false)
	})
}

// TestDedupKernelGroups exercises the structural dedup's drop path directly:
// the current kernel enumeration never emits byte-equal launches within one
// layer, so this is the safety net's only coverage. The result must match
// the generic Clean on the same records.
func TestDedupKernelGroups(t *testing.T) {
	rec := func(layer int, name string, secs float64) KernelRecord {
		return KernelRecord{
			Network: "n", GPU: "g", BatchSize: 64, LayerIndex: layer,
			LayerKind: "Conv2D", Kernel: name, Seconds: units.Seconds(secs),
		}
	}
	recs := []KernelRecord{
		rec(0, "a", 1), rec(0, "a", 1), // duplicate within the group
		rec(0, "a", 2),                 // same name, different duration: kept
		rec(1, "a", 1),                 // same record in a NEW group: kept
		rec(1, "b", 1), rec(1, "a", 1), // duplicate across an interleave
		rec(2, "c", 3),
	}
	ref := &Dataset{Kernels: append([]KernelRecord(nil), recs...)}
	ref.Clean()

	got := dedupKernelGroups(append([]KernelRecord(nil), recs...))
	if !reflect.DeepEqual(got, ref.Kernels) {
		t.Fatalf("dedupKernelGroups = %+v\nwant (Clean) %+v", got, ref.Kernels)
	}
	if len(got) != 5 {
		t.Fatalf("kept %d records, want 5", len(got))
	}
}

// BenchmarkDatasetBuild gates the collection pipeline itself (the bench_compare
// gate for this package): four diverse networks on one GPU with the default
// batch-size protocol at a reduced measurement count. Complements the root
// package's BenchmarkLabDatasetBuild, which also covers the lab's caching
// layer and the per-GPU split.
func BenchmarkDatasetBuild(b *testing.B) {
	nets := smallNets()
	opt := DefaultBuildOptions()
	opt.Batches = 8
	opt.Warmup = 2
	gpus := []gpu.Spec{gpu.A100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Build(nets, gpus, opt); err != nil {
			b.Fatal(err)
		}
	}
}
