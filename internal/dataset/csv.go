package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/units"
)

// CSV persistence: the dataset is stored as three files —
// networks.csv, layers.csv, kernels.csv — matching the paper's artifact
// layout ("we prepare our dataset as CSV files", §3).

// File names within a dataset directory.
const (
	NetworksCSV = "networks.csv"
	LayersCSV   = "layers.csv"
	KernelsCSV  = "kernels.csv"
)

var networkHeader = []string{"network", "family", "task", "gpu", "batch_size", "total_flops", "e2e_seconds"}
var layerHeader = []string{"network", "gpu", "batch_size", "layer_index", "kind", "signature", "flops", "input_elems", "output_elems", "seconds"}
var kernelHeader = []string{"network", "gpu", "batch_size", "layer_index", "layer_kind", "layer_signature", "kernel", "layer_flops", "layer_input_elems", "layer_output_elems", "seconds"}

// WriteDir writes the dataset into dir (created if missing).
func (d *Dataset) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := writeCSV(filepath.Join(dir, NetworksCSV), networkHeader, len(d.Networks), func(i int) []string {
		r := d.Networks[i]
		return []string{r.Network, r.Family, r.Task, r.GPU,
			strconv.Itoa(r.BatchSize), strconv.FormatInt(int64(r.TotalFLOPs), 10),
			formatSeconds(float64(r.E2ESeconds))}
	}); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, LayersCSV), layerHeader, len(d.Layers), func(i int) []string {
		r := d.Layers[i]
		return []string{r.Network, r.GPU, strconv.Itoa(r.BatchSize),
			strconv.Itoa(r.LayerIndex), r.Kind, r.Signature,
			strconv.FormatInt(int64(r.FLOPs), 10), strconv.FormatInt(r.InputElems, 10),
			strconv.FormatInt(r.OutputElems, 10), formatSeconds(float64(r.Seconds))}
	}); err != nil {
		return err
	}
	return writeCSV(filepath.Join(dir, KernelsCSV), kernelHeader, len(d.Kernels), func(i int) []string {
		r := d.Kernels[i]
		return []string{r.Network, r.GPU, strconv.Itoa(r.BatchSize),
			strconv.Itoa(r.LayerIndex), r.LayerKind, r.LayerSignature, r.Kernel,
			strconv.FormatInt(int64(r.LayerFLOPs), 10), strconv.FormatInt(r.LayerInputElems, 10),
			strconv.FormatInt(r.LayerOutputElems, 10), formatSeconds(float64(r.Seconds))}
	})
}

// ReadDir loads a dataset previously written with WriteDir.
func ReadDir(dir string) (*Dataset, error) {
	d := &Dataset{}
	err := readCSV(filepath.Join(dir, NetworksCSV), networkHeader, func(rec []string) error {
		bs, err := strconv.Atoi(rec[4])
		if err != nil {
			return err
		}
		fl, err := strconv.ParseInt(rec[5], 10, 64)
		if err != nil {
			return err
		}
		sec, err := strconv.ParseFloat(rec[6], 64)
		if err != nil {
			return err
		}
		d.Networks = append(d.Networks, NetworkRecord{
			Network: rec[0], Family: rec[1], Task: rec[2], GPU: rec[3],
			BatchSize: bs, TotalFLOPs: units.FLOPs(fl), E2ESeconds: units.Seconds(sec),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = readCSV(filepath.Join(dir, LayersCSV), layerHeader, func(rec []string) error {
		bs, err := strconv.Atoi(rec[2])
		if err != nil {
			return err
		}
		li, err := strconv.Atoi(rec[3])
		if err != nil {
			return err
		}
		fl, err := strconv.ParseInt(rec[6], 10, 64)
		if err != nil {
			return err
		}
		ie, err := strconv.ParseInt(rec[7], 10, 64)
		if err != nil {
			return err
		}
		oe, err := strconv.ParseInt(rec[8], 10, 64)
		if err != nil {
			return err
		}
		sec, err := strconv.ParseFloat(rec[9], 64)
		if err != nil {
			return err
		}
		d.Layers = append(d.Layers, LayerRecord{
			Network: rec[0], GPU: rec[1], BatchSize: bs, LayerIndex: li,
			Kind: rec[4], Signature: rec[5], FLOPs: units.FLOPs(fl),
			InputElems: ie, OutputElems: oe, Seconds: units.Seconds(sec),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = readCSV(filepath.Join(dir, KernelsCSV), kernelHeader, func(rec []string) error {
		bs, err := strconv.Atoi(rec[2])
		if err != nil {
			return err
		}
		li, err := strconv.Atoi(rec[3])
		if err != nil {
			return err
		}
		fl, err := strconv.ParseInt(rec[7], 10, 64)
		if err != nil {
			return err
		}
		ie, err := strconv.ParseInt(rec[8], 10, 64)
		if err != nil {
			return err
		}
		oe, err := strconv.ParseInt(rec[9], 10, 64)
		if err != nil {
			return err
		}
		sec, err := strconv.ParseFloat(rec[10], 64)
		if err != nil {
			return err
		}
		d.Kernels = append(d.Kernels, KernelRecord{
			Network: rec[0], GPU: rec[1], BatchSize: bs, LayerIndex: li,
			LayerKind: rec[4], LayerSignature: rec[5], Kernel: rec[6],
			LayerFLOPs: units.FLOPs(fl), LayerInputElems: ie, LayerOutputElems: oe,
			Seconds: units.Seconds(sec),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// formatSeconds keeps full float64 precision so CSV round-trips exactly.
func formatSeconds(s float64) string { return strconv.FormatFloat(s, 'g', -1, 64) }

// writeCSV writes header + n rows produced by row(i).
func writeCSV(path string, header []string, n int, row func(int) []string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("dataset: write %s: %w", path, err)
	}
	for i := 0; i < n; i++ {
		if err := w.Write(row(i)); err != nil {
			f.Close()
			return fmt.Errorf("dataset: write %s: %w", path, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("dataset: write %s: %w", path, err)
	}
	return f.Close()
}

// readCSV validates the header and streams rows into fn.
func readCSV(path string, header []string, fn func([]string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = len(header)
	got, err := r.Read()
	if err != nil {
		return fmt.Errorf("dataset: read %s header: %w", path, err)
	}
	for i := range header {
		if got[i] != header[i] {
			return fmt.Errorf("dataset: %s: header column %d is %q, want %q", path, i, got[i], header[i])
		}
	}
	line := 1
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dataset: read %s: %w", path, err)
		}
		line++
		if err := fn(rec); err != nil {
			return fmt.Errorf("dataset: %s line %d: %w", path, line, err)
		}
	}
}
