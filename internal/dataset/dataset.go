// Package dataset holds the measurement database the paper's models train
// on (§3 "Data management"): network-, layer- and kernel-level records with
// the structural information (shapes, FLOPs, layer↔kernel mapping) and the
// measured execution times, plus CSV persistence, cleaning, and train/test
// splitting.
package dataset

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"repro/internal/profiler"
	"repro/internal/units"
)

// NetworkRecord is one end-to-end measurement of a network.
type NetworkRecord struct {
	Network   string
	Family    string
	Task      string
	GPU       string
	BatchSize int
	// TotalFLOPs is the theoretical forward-pass FLOPs at this batch size.
	TotalFLOPs units.FLOPs
	// E2ESeconds is the measured end-to-end time of one batch.
	E2ESeconds units.Seconds
}

// LayerRecord is one layer-level measurement.
type LayerRecord struct {
	Network   string
	GPU       string
	BatchSize int
	// LayerIndex is the layer's position within the network.
	LayerIndex int
	Kind       string
	Signature  string
	// FLOPs, InputElems, OutputElems are the layer's structural metrics.
	FLOPs       units.FLOPs
	InputElems  int64
	OutputElems int64
	// Seconds is the measured layer execution time.
	Seconds units.Seconds
}

// KernelRecord is one kernel-level measurement, carrying the three
// layer-level driver candidates of observation O5.
type KernelRecord struct {
	Network   string
	GPU       string
	BatchSize int
	// LayerIndex links the kernel back to its layer (the profiler-derived
	// layer↔kernel mapping of Figure 2).
	LayerIndex     int
	LayerKind      string
	LayerSignature string
	// Kernel is the kernel implementation name.
	Kernel string
	// LayerFLOPs, LayerInputElems, LayerOutputElems are the candidate driver
	// variables the kernel-wise classifier regresses against.
	LayerFLOPs       units.FLOPs
	LayerInputElems  int64
	LayerOutputElems int64
	// Seconds is the measured kernel duration.
	Seconds units.Seconds
}

// Dataset is the in-memory measurement database.
type Dataset struct {
	Networks []NetworkRecord
	Layers   []LayerRecord
	Kernels  []KernelRecord
}

// AddTrace ingests a profiler trace: one network record, one layer record per
// layer that dispatched kernels, and one kernel record per kernel event.
func (d *Dataset) AddTrace(t *profiler.Trace) {
	d.Networks = append(d.Networks, NetworkRecord{
		Network:   t.Network,
		Family:    t.Family,
		Task:      string(t.Task),
		GPU:       t.GPU,
		BatchSize: t.BatchSize,

		TotalFLOPs: units.FLOPs(t.TotalFLOPs),
		E2ESeconds: units.Seconds(t.E2ETime),
	})
	for _, l := range t.Layers {
		if len(l.Kernels) == 0 {
			continue
		}
		d.Layers = append(d.Layers, LayerRecord{
			Network:     t.Network,
			GPU:         t.GPU,
			BatchSize:   t.BatchSize,
			LayerIndex:  l.Index,
			Kind:        string(l.Kind),
			Signature:   l.Signature,
			FLOPs:       units.FLOPs(l.FLOPs),
			InputElems:  l.InputElems,
			OutputElems: l.OutputElems,
			Seconds:     units.Seconds(l.Duration),
		})
		for _, ev := range l.Kernels {
			d.Kernels = append(d.Kernels, KernelRecord{
				Network:          t.Network,
				GPU:              t.GPU,
				BatchSize:        t.BatchSize,
				LayerIndex:       l.Index,
				LayerKind:        string(l.Kind),
				LayerSignature:   l.Signature,
				Kernel:           ev.Name,
				LayerFLOPs:       units.FLOPs(ev.Kernel.LayerFLOPs),
				LayerInputElems:  ev.Kernel.LayerInputElems,
				LayerOutputElems: ev.Kernel.LayerOutputElems,
				Seconds:          units.Seconds(ev.Duration),
			})
		}
	}
}

// Merge appends all records of o into d.
func (d *Dataset) Merge(o *Dataset) {
	d.Networks = append(d.Networks, o.Networks...)
	d.Layers = append(d.Layers, o.Layers...)
	d.Kernels = append(d.Kernels, o.Kernels...)
}

// Grow reserves capacity for at least the given number of additional
// network, layer and kernel records, so bulk AddTrace/Merge sequences with
// known totals avoid repeated append reallocation.
func (d *Dataset) Grow(networks, layers, kernels int) {
	d.Networks = slices.Grow(d.Networks, networks)
	d.Layers = slices.Grow(d.Layers, layers)
	d.Kernels = slices.Grow(d.Kernels, kernels)
}

// NetworkNames returns the distinct network names, sorted.
func (d *Dataset) NetworkNames() []string {
	set := map[string]bool{}
	for _, r := range d.Networks {
		set[r.Network] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GPUNames returns the distinct GPU names, sorted.
func (d *Dataset) GPUNames() []string {
	set := map[string]bool{}
	for _, r := range d.Networks {
		set[r.GPU] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// KernelNames returns the distinct kernel names, sorted.
func (d *Dataset) KernelNames() []string {
	set := map[string]bool{}
	for _, r := range d.Kernels {
		set[r.Kernel] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FilterGPU returns the subset of records measured on the given GPU. The
// output slices are sized exactly (one counting pass per record type), so
// splitting a large merged dataset never pays append-growth reallocation.
func (d *Dataset) FilterGPU(gpuName string) *Dataset {
	nNet, nLay, nKer := 0, 0, 0
	for i := range d.Networks {
		if d.Networks[i].GPU == gpuName {
			nNet++
		}
	}
	for i := range d.Layers {
		if d.Layers[i].GPU == gpuName {
			nLay++
		}
	}
	for i := range d.Kernels {
		if d.Kernels[i].GPU == gpuName {
			nKer++
		}
	}
	out := &Dataset{
		Networks: make([]NetworkRecord, 0, nNet),
		Layers:   make([]LayerRecord, 0, nLay),
		Kernels:  make([]KernelRecord, 0, nKer),
	}
	for _, r := range d.Networks {
		if r.GPU == gpuName {
			out.Networks = append(out.Networks, r)
		}
	}
	for _, r := range d.Layers {
		if r.GPU == gpuName {
			out.Layers = append(out.Layers, r)
		}
	}
	for _, r := range d.Kernels {
		if r.GPU == gpuName {
			out.Kernels = append(out.Kernels, r)
		}
	}
	return out
}

// FilterNetworks returns the subset of records whose network name is in keep.
func (d *Dataset) FilterNetworks(keep map[string]bool) *Dataset {
	out := &Dataset{}
	for _, r := range d.Networks {
		if keep[r.Network] {
			out.Networks = append(out.Networks, r)
		}
	}
	for _, r := range d.Layers {
		if keep[r.Network] {
			out.Layers = append(out.Layers, r)
		}
	}
	for _, r := range d.Kernels {
		if keep[r.Network] {
			out.Kernels = append(out.Kernels, r)
		}
	}
	return out
}

// FilterTask returns the subset of network records (and their layer/kernel
// records) whose task matches.
func (d *Dataset) FilterTask(task string) *Dataset {
	keep := map[string]bool{}
	for _, r := range d.Networks {
		if r.Task == task {
			keep[r.Network] = true
		}
	}
	return d.FilterNetworks(keep)
}

// Clean removes exact duplicate records, mirroring the paper's dataset
// cleaning ("removing the duplications", §3; fail-to-execute runs are already
// excluded at collection time). It returns the number of records dropped.
func (d *Dataset) Clean() int {
	var c cleaner
	return c.clean(d)
}

// cleaner is Clean with reusable state: the seen-maps are cleared, not
// reallocated, between calls. The dataset builder dedups every network's
// output inside its collection worker, so without reuse those small maps
// would dominate the worker's allocations.
type cleaner struct {
	nets map[NetworkRecord]bool
	lays map[LayerRecord]bool
	kers map[KernelRecord]bool
}

func (c *cleaner) clean(d *Dataset) int {
	dropped := 0
	{
		if c.nets == nil {
			c.nets = make(map[NetworkRecord]bool, len(d.Networks))
		} else {
			clear(c.nets)
		}
		out := d.Networks[:0]
		for _, r := range d.Networks {
			if c.nets[r] {
				dropped++
				continue
			}
			c.nets[r] = true
			out = append(out, r)
		}
		d.Networks = out
	}
	{
		if c.lays == nil {
			c.lays = make(map[LayerRecord]bool, len(d.Layers))
		} else {
			clear(c.lays)
		}
		out := d.Layers[:0]
		for _, r := range d.Layers {
			if c.lays[r] {
				dropped++
				continue
			}
			c.lays[r] = true
			out = append(out, r)
		}
		d.Layers = out
	}
	{
		// Kernel records legitimately repeat (a layer can launch the same
		// kernel name once per algorithm stage, and different layers share
		// kernels); only drop *exact* duplicates including duration.
		if c.kers == nil {
			c.kers = make(map[KernelRecord]bool, len(d.Kernels))
		} else {
			clear(c.kers)
		}
		out := d.Kernels[:0]
		for _, r := range d.Kernels {
			if c.kers[r] {
				dropped++
				continue
			}
			c.kers[r] = true
			out = append(out, r)
		}
		d.Kernels = out
	}
	return dropped
}

// SplitByNetwork partitions the dataset into train/test by drawing testFrac
// of the *networks* (not individual rows) into the test set, so evaluation
// always predicts networks the models never saw — the paper's "predict new
// DNNs" setting. The draw is stratified by task, guaranteeing both the
// image-classification and the text-classification groups are represented in
// the test set. The split is deterministic in seed.
func (d *Dataset) SplitByNetwork(testFrac float64, seed int64) (train, test *Dataset) {
	byTask := map[string][]string{}
	taskOf := map[string]string{}
	for _, r := range d.Networks {
		if _, ok := taskOf[r.Network]; !ok {
			taskOf[r.Network] = r.Task
		}
	}
	for _, name := range d.NetworkNames() {
		t := taskOf[name]
		byTask[t] = append(byTask[t], name)
	}
	tasks := make([]string, 0, len(byTask))
	for t := range byTask {
		tasks = append(tasks, t)
	}
	sort.Strings(tasks)

	rnd := rand.New(rand.NewSource(seed))
	testSet := map[string]bool{}
	trainSet := map[string]bool{}
	for _, t := range tasks {
		names := byTask[t]
		rnd.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
		nTest := int(float64(len(names))*testFrac + 0.5)
		if nTest < 1 && len(names) > 1 {
			nTest = 1
		}
		for _, n := range names[:nTest] {
			testSet[n] = true
		}
		for _, n := range names[nTest:] {
			trainSet[n] = true
		}
	}
	return d.FilterNetworks(trainSet), d.FilterNetworks(testSet)
}

// Summary describes the dataset sizes.
func (d *Dataset) Summary() string {
	return fmt.Sprintf("%d network records, %d layer records, %d kernel records (%d networks, %d GPUs, %d distinct kernels)",
		len(d.Networks), len(d.Layers), len(d.Kernels),
		len(d.NetworkNames()), len(d.GPUNames()), len(d.KernelNames()))
}
