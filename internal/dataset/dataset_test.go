package dataset

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dnn"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/zoo"
)

// smallBuild collects a compact dataset for the tests: a handful of diverse
// networks on one or two GPUs.
func smallBuild(t *testing.T, gpus []gpu.Spec) *Dataset {
	t.Helper()
	nets := []*dnn.Network{
		zoo.MustResNet(18),
		zoo.MustVGG(11, false),
		zoo.StandardMobileNetV2(),
		zoo.MustDenseNet(121),
		mustTransformer(t, "bert-tiny"),
		mustTransformer(t, "bert-mini"),
	}
	opt := DefaultBuildOptions()
	opt.Batches = 3
	opt.Warmup = 1
	opt.E2EBatchSizes = []int{4, 512}
	ds, _, err := Build(nets, gpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mustTransformer(t *testing.T, name string) *dnn.Network {
	t.Helper()
	n, err := zoo.StandardTransformer(name)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAddTraceCounts(t *testing.T) {
	net := zoo.MustResNet(18)
	tr, err := profiler.NewFast(sim.NewDefault(gpu.A100), 2).Profile(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	var ds Dataset
	ds.AddTrace(tr)
	if len(ds.Networks) != 1 {
		t.Fatalf("network records = %d", len(ds.Networks))
	}
	// Only layers that dispatched kernels get layer records.
	withKernels := 0
	var kernelEvents int
	for _, l := range tr.Layers {
		if len(l.Kernels) > 0 {
			withKernels++
			kernelEvents += len(l.Kernels)
		}
	}
	if len(ds.Layers) != withKernels {
		t.Fatalf("layer records = %d, want %d", len(ds.Layers), withKernels)
	}
	if len(ds.Kernels) != kernelEvents {
		t.Fatalf("kernel records = %d, want %d", len(ds.Kernels), kernelEvents)
	}
}

func TestBuildShape(t *testing.T) {
	ds := smallBuild(t, []gpu.Spec{gpu.A100})
	// Every network gets E2E records at batch 4 and 512.
	names := ds.NetworkNames()
	if len(names) != 6 {
		t.Fatalf("networks = %v", names)
	}
	perNet := map[string]map[int]bool{}
	for _, r := range ds.Networks {
		if perNet[r.Network] == nil {
			perNet[r.Network] = map[int]bool{}
		}
		perNet[r.Network][r.BatchSize] = true
	}
	for n, bs := range perNet {
		if !bs[4] || !bs[512] {
			t.Fatalf("%s: batch coverage %v", n, bs)
		}
	}
	// Detail records exist only at the detail batch size.
	for _, r := range ds.Kernels {
		if r.BatchSize != 512 {
			t.Fatalf("kernel record at batch %d", r.BatchSize)
		}
	}
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	nets := []*dnn.Network{zoo.MustResNet(18), zoo.MustVGG(11, false), zoo.StandardMobileNetV2()}
	opt := DefaultBuildOptions()
	opt.Batches = 2
	opt.Warmup = 0
	opt.E2EBatchSizes = []int{8}
	opt.DetailBatchSize = 8

	opt.Workers = 1
	a, _, err := Build(nets, []gpu.Spec{gpu.A100}, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	b, _, err := Build(nets, []gpu.Spec{gpu.A100}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("dataset differs across worker counts")
	}
}

func TestBuildReportsOOM(t *testing.T) {
	nets := []*dnn.Network{zoo.MustVGG(16, false)}
	opt := DefaultBuildOptions()
	opt.Batches = 1
	opt.Warmup = 0
	opt.E2EBatchSizes = []int{4, 512}
	ds, rep, err := Build(nets, []gpu.Spec{gpu.QuadroP620}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OutOfMemory) == 0 {
		t.Fatal("VGG-16 at batch 512 should OOM on a 2 GB card")
	}
	for _, r := range ds.Networks {
		if r.BatchSize == 512 {
			t.Fatal("OOM run leaked into the dataset")
		}
	}
}

func TestBuildReportProfiledCounts(t *testing.T) {
	// Without OOMs, Profiled is exactly networks × GPUs × batch sizes.
	nets := []*dnn.Network{zoo.MustResNet(18), zoo.StandardMobileNetV2(), zoo.MustDenseNet(121)}
	opt := DefaultBuildOptions()
	opt.Batches = 1
	opt.Warmup = 0
	opt.E2EBatchSizes = []int{4, 512} // detail size 512 folds into this list
	gpus := []gpu.Spec{gpu.A100, gpu.V100}
	_, rep, err := Build(nets, gpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OutOfMemory) != 0 {
		t.Fatalf("unexpected OOMs: %v", rep.OutOfMemory)
	}
	want := len(nets) * len(gpus) * 2
	if rep.Profiled != want {
		t.Fatalf("Profiled = %d; want %d (one per (network, GPU, batch) execution)",
			rep.Profiled, want)
	}

	// With OOMs, the dropped runs move from Profiled to OutOfMemory and the
	// two still account for every attempted execution.
	_, rep, err = Build([]*dnn.Network{zoo.MustVGG(16, false)}, []gpu.Spec{gpu.QuadroP620}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OutOfMemory) == 0 {
		t.Fatal("VGG-16 at batch 512 should OOM on a 2 GB card")
	}
	if got := rep.Profiled + len(rep.OutOfMemory); got != 2 {
		t.Fatalf("Profiled (%d) + OOM (%d) = %d; want 2 attempted executions",
			rep.Profiled, len(rep.OutOfMemory), got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, _, err := Build(nil, []gpu.Spec{gpu.A100}, DefaultBuildOptions()); err == nil {
		t.Fatal("empty network list should error")
	}
	if _, _, err := Build([]*dnn.Network{zoo.MustResNet(18)}, nil, DefaultBuildOptions()); err == nil {
		t.Fatal("empty GPU list should error")
	}
}

func TestCleanRemovesDuplicates(t *testing.T) {
	ds := smallBuild(t, []gpu.Spec{gpu.A100})
	nNet, nLay, nKer := len(ds.Networks), len(ds.Layers), len(ds.Kernels)
	dup := &Dataset{}
	dup.Merge(ds)
	dup.Merge(ds)
	dropped := dup.Clean()
	if dropped != nNet+nLay+nKer {
		t.Fatalf("Clean dropped %d, want %d", dropped, nNet+nLay+nKer)
	}
	if len(dup.Networks) != nNet || len(dup.Layers) != nLay || len(dup.Kernels) != nKer {
		t.Fatal("Clean changed the deduplicated contents")
	}
	// A second Clean is a no-op.
	if dropped := dup.Clean(); dropped != 0 {
		t.Fatalf("idempotent Clean dropped %d", dropped)
	}
}

func TestSplitByNetwork(t *testing.T) {
	ds := smallBuild(t, []gpu.Spec{gpu.A100})
	train, test := ds.SplitByNetwork(0.34, 7)
	trainNames := map[string]bool{}
	for _, n := range train.NetworkNames() {
		trainNames[n] = true
	}
	for _, n := range test.NetworkNames() {
		if trainNames[n] {
			t.Fatalf("network %q appears in both splits", n)
		}
	}
	if len(train.NetworkNames())+len(test.NetworkNames()) != len(ds.NetworkNames()) {
		t.Fatal("split loses networks")
	}
	// Stratified: both tasks present in the test split.
	tasks := map[string]bool{}
	for _, r := range test.Networks {
		tasks[r.Task] = true
	}
	if !tasks[string(dnn.TaskImageClassification)] || !tasks[string(dnn.TaskTextClassification)] {
		t.Fatalf("test split tasks = %v, want both", tasks)
	}
	// Deterministic in the seed.
	_, test2 := ds.SplitByNetwork(0.34, 7)
	if !reflect.DeepEqual(test.NetworkNames(), test2.NetworkNames()) {
		t.Fatal("split is not deterministic")
	}
	_, test3 := ds.SplitByNetwork(0.34, 8)
	if reflect.DeepEqual(test.NetworkNames(), test3.NetworkNames()) {
		t.Fatal("different seeds should give different splits (with high probability)")
	}
}

func TestFilters(t *testing.T) {
	ds := smallBuild(t, []gpu.Spec{gpu.A100, gpu.V100})
	a100 := ds.FilterGPU("A100")
	for _, r := range a100.Networks {
		if r.GPU != "A100" {
			t.Fatal("FilterGPU leaked records")
		}
	}
	if len(a100.Networks) == 0 || len(a100.Kernels) == 0 {
		t.Fatal("FilterGPU dropped everything")
	}

	text := ds.FilterTask(string(dnn.TaskTextClassification))
	for _, r := range text.Networks {
		if !strings.HasPrefix(r.Network, "bert") {
			t.Fatalf("text filter kept %q", r.Network)
		}
	}
	if len(text.NetworkNames()) != 2 {
		t.Fatalf("text networks = %v", text.NetworkNames())
	}

	keep := map[string]bool{"resnet18": true}
	sub := ds.FilterNetworks(keep)
	if got := sub.NetworkNames(); len(got) != 1 || got[0] != "resnet18" {
		t.Fatalf("FilterNetworks = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := smallBuild(t, []gpu.Spec{gpu.A100})
	dir := filepath.Join(t.TempDir(), "ds")
	if err := ds.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatal("CSV round-trip altered the dataset")
	}
}

func TestReadDirHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	ds := smallBuild(t, []gpu.Spec{gpu.A100})
	if err := ds.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt one header.
	path := filepath.Join(dir, NetworksCSV)
	if err := writeCSV(path, []string{"wrong"}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("mismatched header should error")
	}
}

func TestSummaryAndNames(t *testing.T) {
	ds := smallBuild(t, []gpu.Spec{gpu.A100})
	s := ds.Summary()
	if !strings.Contains(s, "6 networks") || !strings.Contains(s, "1 GPUs") {
		t.Fatalf("Summary = %q", s)
	}
	kn := ds.KernelNames()
	for i := 1; i < len(kn); i++ {
		if kn[i-1] >= kn[i] {
			t.Fatal("KernelNames not sorted")
		}
	}
	if len(kn) == 0 {
		t.Fatal("no kernel names")
	}
}
