package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadNetworksCSV feeds arbitrary bytes to the dataset reader: malformed
// CSV must produce errors, never panics, and valid files must round-trip.
func FuzzReadNetworksCSV(f *testing.F) {
	f.Add([]byte("network,family,task,gpu,batch_size,total_flops,e2e_seconds\nresnet50,ResNet,image-classification,A100,512,4000000000,0.5\n"))
	f.Add([]byte("network,family,task,gpu,batch_size,total_flops,e2e_seconds\nx,y,z,w,notanumber,1,2\n"))
	f.Add([]byte(""))
	f.Add([]byte("garbage"))
	f.Add([]byte("network,family,task,gpu,batch_size,total_flops,e2e_seconds\n\"unterminated"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, NetworksCSV), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Valid empty companions so only the fuzzed file is under test.
		empty := &Dataset{}
		tmp := t.TempDir()
		if err := empty.WriteDir(tmp); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{LayersCSV, KernelsCSV} {
			b, err := os.ReadFile(filepath.Join(tmp, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		ds, err := ReadDir(dir) // must not panic
		if err != nil {
			return
		}
		// Anything successfully parsed must survive a round-trip.
		out := t.TempDir()
		if err := ds.WriteDir(out); err != nil {
			t.Fatalf("round-trip write failed: %v", err)
		}
		if _, err := ReadDir(out); err != nil {
			t.Fatalf("round-trip read failed: %v", err)
		}
	})
}
