// Streaming shard-and-merge statistics. The paper's speed claim (§5.4,
// Table 5: the models train "in seconds") rests on collection+fit being one
// cheap pass over the measurements. A Stats value reduces the dataset to
// exactly what the core fits consume — per-(GPU, batch) observation logs
// keyed by kernel name, layer kind and network — so fitting touches only its
// own cell instead of rescanning (and re-filtering) every record, and
// collection workers can fold traces into their partial as they profile.
//
// Determinism contract: the repo's golden standard is byte-identical fitted
// coefficients regardless of which path produced the statistics — streamed
// during collection at any worker count, or derived from an already-collected
// dataset. Ordinary least squares folds floating-point sums, which are not
// associative, so the fits are order-sensitive in their last bits. The cell
// statistics therefore keep the *ordered* projection of the records each fit
// reads (merging partials is concatenation in network order, which is exact),
// and the core fits replay the record-scan arithmetic over the log verbatim.
// Scalar moment accumulators would be smaller, but cannot reproduce the
// two-pass OLS bit patterns; they remain the representation of the *online*
// path (regression.Accumulator), where replaying history is explicitly not
// the contract.
package dataset

import (
	"sort"

	"repro/internal/profiler"
	"repro/internal/units"
)

// CellKey identifies one (GPU, batch size) slice of the dataset — the unit
// the core models train on.
type CellKey struct {
	GPU   string
	Batch int
}

// KernelObs is one kernel observation: the projection of a KernelRecord the
// kernel-wise fit consumes (the three candidate driver variables of
// observation O5 and the measured duration).
type KernelObs struct {
	Kernel           string
	LayerFLOPs       units.FLOPs
	LayerInputElems  int64
	LayerOutputElems int64
	Seconds          units.Seconds
}

// LayerObs is one layer observation: the projection of a LayerRecord the
// layer-wise fit consumes.
type LayerObs struct {
	Kind    string
	FLOPs   units.FLOPs
	Seconds units.Seconds
}

// NetworkObs is one end-to-end observation: the projection of a
// NetworkRecord the end-to-end fit consumes.
type NetworkObs struct {
	TotalFLOPs units.FLOPs
	E2ESeconds units.Seconds
}

// CellStats holds the ordered observation logs of one (GPU, batch size)
// cell. Within a cell, each log preserves dataset record order — the order
// the record-scan fits read.
type CellStats struct {
	// Kernels logs (driver candidates, seconds) per kernel launch.
	Kernels []KernelObs
	// Layers logs (layer FLOPs, seconds) per kernel-bearing layer.
	Layers []LayerObs
	// Network logs (total FLOPs, end-to-end seconds) per network run.
	Network []NetworkObs
	// Mapping is the layer-signature → kernel-list table (first seen wins,
	// as in the record-based buildMapping).
	Mapping map[string][]string
}

// newCellStats returns an empty cell.
func newCellStats() *CellStats {
	return &CellStats{Mapping: map[string][]string{}}
}

// Stats is the streaming reduction of a dataset: one CellStats per
// (GPU, batch size) observed.
type Stats struct {
	Cells map[CellKey]*CellStats
}

// NewStats returns an empty Stats ready to fold into.
func NewStats() *Stats { return &Stats{Cells: map[CellKey]*CellStats{}} }

// Cell returns the statistics of one (GPU, batch size), or nil when the
// dataset holds no measurements for it.
func (s *Stats) Cell(gpuName string, batch int) *CellStats {
	return s.Cells[CellKey{GPU: gpuName, Batch: batch}]
}

// cell returns the cell for the key, creating it on first use.
func (s *Stats) cell(k CellKey) *CellStats {
	c, ok := s.Cells[k]
	if !ok {
		c = newCellStats()
		s.Cells[k] = c
	}
	return c
}

// FoldTrace folds a full profiler trace into the trace's (GPU, batch) cell:
// the network-level observation, one layer observation per kernel-bearing
// layer, one kernel observation per event, and the layer→kernel mapping.
// The folded values are exactly those AddTrace turns into records, in the
// same order, so folding a trace here and scanning its records with
// StatsFromDataset produce the same logs.
func (s *Stats) FoldTrace(t *profiler.Trace) {
	c := s.cell(CellKey{GPU: t.GPU, Batch: t.BatchSize})
	c.Network = append(c.Network, NetworkObs{
		TotalFLOPs: units.FLOPs(t.TotalFLOPs),
		E2ESeconds: units.Seconds(t.E2ETime),
	})
	for li := range t.Layers {
		l := &t.Layers[li]
		if len(l.Kernels) == 0 {
			continue
		}
		c.Layers = append(c.Layers, LayerObs{
			Kind:    string(l.Kind),
			FLOPs:   units.FLOPs(l.FLOPs),
			Seconds: units.Seconds(l.Duration),
		})
		for _, ev := range l.Kernels {
			c.Kernels = append(c.Kernels, KernelObs{
				Kernel:           ev.Name,
				LayerFLOPs:       units.FLOPs(ev.Kernel.LayerFLOPs),
				LayerInputElems:  ev.Kernel.LayerInputElems,
				LayerOutputElems: ev.Kernel.LayerOutputElems,
				Seconds:          units.Seconds(ev.Duration),
			})
		}
		if _, ok := c.Mapping[l.Signature]; !ok {
			names := make([]string, len(l.Kernels))
			for i, ev := range l.Kernels {
				names[i] = ev.Name
			}
			c.Mapping[l.Signature] = names
		}
	}
}

// FoldNetworkRecord folds one end-to-end record.
func (s *Stats) FoldNetworkRecord(r NetworkRecord) {
	c := s.cell(CellKey{GPU: r.GPU, Batch: r.BatchSize})
	c.Network = append(c.Network, NetworkObs{TotalFLOPs: r.TotalFLOPs, E2ESeconds: r.E2ESeconds})
}

// FoldLayerRecord folds one layer record.
func (s *Stats) FoldLayerRecord(r LayerRecord) {
	c := s.cell(CellKey{GPU: r.GPU, Batch: r.BatchSize})
	c.Layers = append(c.Layers, LayerObs{Kind: r.Kind, FLOPs: r.FLOPs, Seconds: r.Seconds})
}

// FoldKernelRecord folds one kernel record's observation. It cannot see
// layer-instance boundaries, so it leaves Mapping alone — use FoldTrace (or
// StatsFromDataset, which reconstructs instances from record contiguity)
// when the mapping is needed.
func (s *Stats) FoldKernelRecord(r KernelRecord) {
	c := s.cell(CellKey{GPU: r.GPU, Batch: r.BatchSize})
	c.Kernels = append(c.Kernels, KernelObs{
		Kernel:           r.Kernel,
		LayerFLOPs:       r.LayerFLOPs,
		LayerInputElems:  r.LayerInputElems,
		LayerOutputElems: r.LayerOutputElems,
		Seconds:          r.Seconds,
	})
}

// sortedCellKeys returns the cell keys ordered by (GPU, batch): map
// iteration order is randomized, and Merge's first-wins mapping commits (and
// log concatenations) should happen in one deterministic cell order.
func sortedCellKeys(m map[CellKey]*CellStats) []CellKey {
	keys := make([]CellKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].GPU != keys[j].GPU {
			return keys[i].GPU < keys[j].GPU
		}
		return keys[i].Batch < keys[j].Batch
	})
	return keys
}

// sortedKeys returns a string-keyed map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge folds another Stats into s by concatenating each cell's logs (and
// committing its mapping entries first-wins). Concatenation is exact, so
// merging per-network partials in network order reproduces the single-fold
// logs bit-for-bit no matter how collection work was sharded.
func (s *Stats) Merge(o *Stats) {
	for _, key := range sortedCellKeys(o.Cells) {
		src := o.Cells[key]
		dst := s.cell(key)
		dst.Kernels = append(dst.Kernels, src.Kernels...)
		dst.Layers = append(dst.Layers, src.Layers...)
		dst.Network = append(dst.Network, src.Network...)
		for _, sig := range sortedKeys(src.Mapping) {
			if _, ok := dst.Mapping[sig]; !ok {
				dst.Mapping[sig] = src.Mapping[sig]
			}
		}
	}
}

// StatsFromDataset reduces an already-collected dataset to its per-cell
// observation logs. Records fold in slice order, so each cell's log is the
// record order the record-scan fits read — and, because a built dataset
// emits every record of network i before network i+1 and Merge concatenates,
// the result is bit-identical to the Stats collected alongside the same
// dataset by BuildWithStats.
func StatsFromDataset(ds *Dataset) *Stats {
	s := NewStats()
	for i := range ds.Networks {
		s.FoldNetworkRecord(ds.Networks[i])
	}
	for i := range ds.Layers {
		s.FoldLayerRecord(ds.Layers[i])
	}
	foldKernelRecords(s, ds.Kernels)
	return s
}

// foldKernelRecords folds kernel records and reconstructs the layer→kernel
// mapping from the record stream: AddTrace emits a layer instance's kernels
// contiguously, so a change in (network, GPU, batch, layer index) closes the
// instance and commits its kernel-name list first-wins — the same order
// FoldTrace observes on the live trace.
func foldKernelRecords(s *Stats, recs []KernelRecord) {
	var names []string
	commit := func(last KernelRecord) {
		if len(names) == 0 {
			return
		}
		c := s.cell(CellKey{GPU: last.GPU, Batch: last.BatchSize})
		if _, ok := c.Mapping[last.LayerSignature]; !ok {
			c.Mapping[last.LayerSignature] = names
		}
		names = nil
	}
	for i := range recs {
		r := recs[i]
		if i > 0 {
			if prev := recs[i-1]; prev.Network != r.Network || prev.GPU != r.GPU ||
				prev.BatchSize != r.BatchSize || prev.LayerIndex != r.LayerIndex {
				commit(prev)
			}
		}
		s.FoldKernelRecord(r)
		names = append(names, r.Kernel)
	}
	if len(recs) > 0 {
		commit(recs[len(recs)-1])
	}
}
