// Package disagg implements case study 2 (§6): a disaggregated-memory
// system in which a GPU with small local memory computes a DNN layer by
// layer while a prefetcher streams each layer's parameters from a
// network-attached memory pool. Like the MGPUSim network model the paper
// connects its predictor to, the simulation is purely event-driven — it
// fast-forwards from event to event with no cycle-level detail, which is why
// whole bandwidth sweeps complete in milliseconds.
package disagg

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/units"
)

// Observability handles for the event-driven network model. The counters
// accumulate across simulations; the gauges describe the most recent one
// (bandwidth sweeps overwrite them per point, which is the intended live
// view of a running sweep).
var (
	metricSims = obs.Default().Counter("disagg_simulations_total",
		"Event-driven disaggregated-memory simulations completed.")
	metricEvents = obs.Default().Counter("disagg_events_total",
		"Discrete events processed across all simulations.")
	metricTransferred = obs.Default().BytesCounter("disagg_transferred_bytes_total",
		"Bytes moved over the disaggregation link across all simulations.")
	metricQueueDepthPeak = obs.Default().Gauge("disagg_event_queue_depth_peak",
		"Peak event-queue depth of the most recent simulation.")
	metricResidentPeak = obs.Default().Gauge("disagg_resident_bytes_peak",
		"Peak prefetched-but-unconsumed bytes of the most recent simulation.")
)

// Config describes the disaggregated system.
type Config struct {
	// LinkGBps is the network bandwidth between the GPU and the remote
	// memory pool, in GB/s.
	LinkGBps float64
	// LinkLatencyUS is the fixed per-transfer latency in microseconds.
	LinkLatencyUS float64
	// LocalMemBytes bounds the weights resident locally: prefetched-but-
	// unconsumed parameters may not exceed it. Zero means unbounded.
	LocalMemBytes units.Bytes
}

// LayerJob is one layer's work: its compute time (obtained from a
// performance model — the connection point to internal/core) and the bytes
// that must cross the link before compute can start. In a disaggregated
// system the remote pool holds both the parameters and the spilled
// activations (the GPU's local memory is small by design), so RemoteBytes is
// typically weights + input/output activation traffic.
type LayerJob struct {
	// Name labels the layer for traces.
	Name string
	// ComputeSeconds is the layer's GPU execution time.
	ComputeSeconds units.Seconds
	// RemoteBytes is the traffic the prefetcher moves over the link for
	// this layer.
	RemoteBytes units.Bytes
}

// Result summarizes one simulation.
type Result struct {
	// TotalSeconds is the end-to-end completion time of one batch.
	TotalSeconds units.Seconds
	// ComputeSeconds is the total GPU busy time (sum of compute).
	ComputeSeconds units.Seconds
	// FetchSeconds is the total link busy time.
	FetchSeconds units.Seconds
	// StallSeconds is GPU idle time spent waiting for parameters.
	StallSeconds units.Seconds
}

// ComputeUtilization is the fraction of total time the GPU computed.
func (r Result) ComputeUtilization() float64 {
	if r.TotalSeconds == 0 {
		return 0
	}
	return float64(r.ComputeSeconds / r.TotalSeconds)
}

// event kinds of the discrete-event engine.
type eventKind int

const (
	evFetchDone eventKind = iota
	evComputeDone
)

// event is one scheduled occurrence.
type event struct {
	at   float64
	kind eventKind
	idx  int // layer index
	seq  int // tie-break for determinism
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at < q[j].at {
		return true
	}
	if q[i].at > q[j].at {
		return false
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Simulate runs the event-driven model: the prefetcher fetches layer
// parameters in order over the serial link (respecting the local-memory
// window); the GPU computes layer i once layer i−1 finished and layer i's
// parameters arrived.
func Simulate(jobs []LayerJob, cfg Config) (Result, error) {
	if cfg.LinkGBps <= 0 {
		return Result{}, fmt.Errorf("disagg: link bandwidth must be positive, got %v", cfg.LinkGBps)
	}
	for i, j := range jobs {
		if j.ComputeSeconds < 0 || j.RemoteBytes < 0 {
			return Result{}, fmt.Errorf("disagg: job %d (%s) has negative work", i, j.Name)
		}
		if cfg.LocalMemBytes > 0 && j.RemoteBytes > cfg.LocalMemBytes {
			return Result{}, fmt.Errorf("disagg: job %d (%s) traffic (%d B) exceeds local memory (%d B)",
				i, j.Name, j.RemoteBytes, cfg.LocalMemBytes)
		}
	}
	if len(jobs) == 0 {
		return Result{}, nil
	}

	linkBytesPerSec := cfg.LinkGBps * 1e9
	latency := cfg.LinkLatencyUS * 1e-6

	var (
		now            float64
		q              eventQueue
		seq            int
		nextFetch      int // next layer whose fetch hasn't started
		nextCompute    int // next layer to compute
		fetched        = make([]bool, len(jobs))
		computing      = -1
		linkBusy       bool
		residentB      units.Bytes // prefetched-but-unconsumed bytes
		res            Result
		lastComputeEnd float64

		// Telemetry accumulators, folded into the obs metrics once at the
		// end so the event loop stays free of atomic traffic.
		movedB        units.Bytes
		peakQueue     int
		peakResidentB units.Bytes
		eventCount    int64
	)

	push := func(at float64, k eventKind, idx int) {
		heap.Push(&q, event{at: at, kind: k, idx: idx, seq: seq})
		seq++
		if len(q) > peakQueue {
			peakQueue = len(q)
		}
	}

	// tryStartFetch launches the next in-order fetch if the link is free and
	// the local-memory window has room.
	tryStartFetch := func() {
		for !linkBusy && nextFetch < len(jobs) {
			j := jobs[nextFetch]
			if cfg.LocalMemBytes > 0 && residentB+j.RemoteBytes > cfg.LocalMemBytes {
				return // window full; retry when compute frees space
			}
			dur := latency + float64(j.RemoteBytes)/linkBytesPerSec
			residentB += j.RemoteBytes
			movedB += j.RemoteBytes
			if residentB > peakResidentB {
				peakResidentB = residentB
			}
			res.FetchSeconds += units.Seconds(dur)
			linkBusy = true
			push(now+dur, evFetchDone, nextFetch)
			nextFetch++
		}
	}

	// tryStartCompute launches the next layer if the GPU is idle and its
	// parameters arrived.
	tryStartCompute := func() {
		if computing >= 0 || nextCompute >= len(jobs) || !fetched[nextCompute] {
			return
		}
		j := jobs[nextCompute]
		res.StallSeconds += units.Seconds(now - lastComputeEnd)
		res.ComputeSeconds += j.ComputeSeconds
		computing = nextCompute
		push(now+float64(j.ComputeSeconds), evComputeDone, nextCompute)
	}

	tryStartFetch()
	tryStartCompute()
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		if e.at < now {
			return Result{}, fmt.Errorf("disagg: event time went backwards (%v < %v)", e.at, now)
		}
		now = e.at
		eventCount++
		switch e.kind {
		case evFetchDone:
			fetched[e.idx] = true
			linkBusy = false
			tryStartFetch()
			tryStartCompute()
		case evComputeDone:
			residentB -= jobs[e.idx].RemoteBytes
			computing = -1
			nextCompute = e.idx + 1
			lastComputeEnd = now
			tryStartFetch()
			tryStartCompute()
		}
	}
	if nextCompute != len(jobs) {
		return Result{}, fmt.Errorf("disagg: deadlock — computed %d of %d layers (local memory too small for the prefetch window?)",
			nextCompute, len(jobs))
	}
	res.TotalSeconds = units.Seconds(now)

	metricSims.Inc()
	metricEvents.Add(eventCount)
	metricTransferred.Add(movedB)
	metricQueueDepthPeak.Set(int64(peakQueue))
	metricResidentPeak.Set(int64(peakResidentB))
	return res, nil
}

// Sweep simulates the same job list across several link bandwidths and
// returns each total time, in the input order.
func Sweep(jobs []LayerJob, base Config, bandwidthsGBps []float64) ([]Result, error) {
	out := make([]Result, len(bandwidthsGBps))
	for i, bw := range bandwidthsGBps {
		cfg := base
		cfg.LinkGBps = bw
		r, err := Simulate(jobs, cfg)
		if err != nil {
			return nil, fmt.Errorf("disagg: sweep at %v GB/s: %w", bw, err)
		}
		out[i] = r
	}
	return out, nil
}

// Speedups normalizes a sweep's totals to the first entry's total —
// Figure 17 plots "speedup over 16 GB/s network".
func Speedups(results []Result) []float64 {
	out := make([]float64, len(results))
	if len(results) == 0 || results[0].TotalSeconds == 0 {
		return out
	}
	base := results[0].TotalSeconds
	for i, r := range results {
		if r.TotalSeconds == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = float64(base / r.TotalSeconds)
	}
	return out
}
