package disagg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func almostEqual[A, B ~float64](a A, b B) bool {
	x, y := float64(a), float64(b)
	return math.Abs(x-y) <= 1e-12*math.Max(math.Abs(x), math.Abs(y))+1e-15
}

func TestComputeBoundPipeline(t *testing.T) {
	// Tiny fetches: the GPU never stalls after the first fetch; total is
	// first fetch + Σ compute.
	jobs := []LayerJob{
		{Name: "a", ComputeSeconds: 10e-3, RemoteBytes: 1000},
		{Name: "b", ComputeSeconds: 10e-3, RemoteBytes: 1000},
		{Name: "c", ComputeSeconds: 10e-3, RemoteBytes: 1000},
	}
	res, err := Simulate(jobs, Config{LinkGBps: 100})
	if err != nil {
		t.Fatal(err)
	}
	firstFetch := 1000.0 / 100e9
	want := firstFetch + 30e-3
	if !almostEqual(res.TotalSeconds, want) {
		t.Fatalf("total = %v, want %v", res.TotalSeconds, want)
	}
	if !almostEqual(res.ComputeSeconds, 30e-3) {
		t.Fatalf("compute = %v", res.ComputeSeconds)
	}
	if float64(res.StallSeconds) > firstFetch+1e-12 {
		t.Fatalf("stall = %v, want ≈ first fetch only", res.StallSeconds)
	}
}

func TestFetchBoundPipeline(t *testing.T) {
	// Zero compute: total is the serialized fetch time.
	jobs := []LayerJob{
		{Name: "a", RemoteBytes: 1e9},
		{Name: "b", RemoteBytes: 1e9},
	}
	res, err := Simulate(jobs, Config{LinkGBps: 1}) // 1 GB/s → 1 s per layer
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.TotalSeconds, 2.0) {
		t.Fatalf("total = %v, want 2", res.TotalSeconds)
	}
	if !almostEqual(res.FetchSeconds, 2.0) {
		t.Fatalf("fetch = %v", res.FetchSeconds)
	}
}

func TestHandComputedOverlap(t *testing.T) {
	// Layer 1: fetch 1 s, compute 2 s. Layer 2: fetch 2 s, compute 1 s.
	// Timeline: f1 done at 1, c1 runs 1→3; f2 runs 1→3 (overlapped);
	// c2 runs 3→4. Total 4 s.
	jobs := []LayerJob{
		{Name: "l1", ComputeSeconds: 2, RemoteBytes: 1e9},
		{Name: "l2", ComputeSeconds: 1, RemoteBytes: 2e9},
	}
	res, err := Simulate(jobs, Config{LinkGBps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.TotalSeconds, 4.0) {
		t.Fatalf("total = %v, want 4", res.TotalSeconds)
	}
	if !almostEqual(res.StallSeconds, 1.0) { // only the initial fill
		t.Fatalf("stall = %v, want 1", res.StallSeconds)
	}
}

func TestLocalMemoryWindowSerializes(t *testing.T) {
	// Window fits exactly one layer's traffic: fetch i+1 cannot start until
	// compute i finishes. Total = Σ(fetch_i + compute_i).
	jobs := []LayerJob{
		{Name: "a", ComputeSeconds: 1, RemoteBytes: 1e9},
		{Name: "b", ComputeSeconds: 1, RemoteBytes: 1e9},
	}
	res, err := Simulate(jobs, Config{LinkGBps: 1, LocalMemBytes: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.TotalSeconds, 4.0) {
		t.Fatalf("total = %v, want 4 (fully serialized)", res.TotalSeconds)
	}

	// A window of two layers restores the overlap.
	res2, err := Simulate(jobs, Config{LinkGBps: 1, LocalMemBytes: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalSeconds >= res.TotalSeconds {
		t.Fatalf("larger window should be faster: %v vs %v", res2.TotalSeconds, res.TotalSeconds)
	}
}

func TestLinkLatency(t *testing.T) {
	jobs := []LayerJob{{Name: "a", ComputeSeconds: 0, RemoteBytes: 0}}
	res, err := Simulate(jobs, Config{LinkGBps: 1, LinkLatencyUS: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.TotalSeconds, 50e-6) {
		t.Fatalf("total = %v, want 50 µs latency", res.TotalSeconds)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Simulate(nil, Config{LinkGBps: 0}); err == nil {
		t.Fatal("zero bandwidth should error")
	}
	if _, err := Simulate([]LayerJob{{ComputeSeconds: -1}}, Config{LinkGBps: 1}); err == nil {
		t.Fatal("negative compute should error")
	}
	_, err := Simulate([]LayerJob{{RemoteBytes: 10, Name: "big"}},
		Config{LinkGBps: 1, LocalMemBytes: 5})
	if err == nil || !strings.Contains(err.Error(), "local memory") {
		t.Fatalf("oversized layer: err = %v", err)
	}
}

func TestEmptyJobs(t *testing.T) {
	res, err := Simulate(nil, Config{LinkGBps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds != 0 {
		t.Fatalf("empty total = %v", res.TotalSeconds)
	}
}

func TestSweepMonotone(t *testing.T) {
	jobs := []LayerJob{
		{Name: "a", ComputeSeconds: 1e-3, RemoteBytes: 5e8},
		{Name: "b", ComputeSeconds: 1e-3, RemoteBytes: 5e8},
		{Name: "c", ComputeSeconds: 1e-3, RemoteBytes: 5e8},
	}
	results, err := Sweep(jobs, Config{}, []float64{16, 32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].TotalSeconds > results[i-1].TotalSeconds+1e-15 {
			t.Fatalf("more bandwidth made it slower at index %d", i)
		}
	}
	sp := Speedups(results)
	if sp[0] != 1 {
		t.Fatalf("speedups[0] = %v, want 1", sp[0])
	}
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1]-1e-12 {
			t.Fatalf("speedups not non-decreasing: %v", sp)
		}
	}
}

// TestTotalBounds: for any job list, the total time is at least
// max(Σ compute, Σ fetch) and at most Σ compute + Σ fetch (full overlap vs
// none), up to latency.
func TestTotalBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		jobs := make([]LayerJob, n)
		var sumC, sumF float64
		const bw = 10.0 // GB/s
		for i := range jobs {
			jobs[i] = LayerJob{
				ComputeSeconds: units.Seconds(rnd.Float64() * 1e-3),
				RemoteBytes:    units.Bytes(rnd.Intn(1e7)),
			}
			sumC += float64(jobs[i].ComputeSeconds)
			sumF += float64(jobs[i].RemoteBytes) / (bw * 1e9)
		}
		res, err := Simulate(jobs, Config{LinkGBps: bw})
		if err != nil {
			return false
		}
		lower := math.Max(sumC, sumF)
		upper := sumC + sumF
		return float64(res.TotalSeconds) >= lower-1e-12 && float64(res.TotalSeconds) <= upper+1e-12
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestComputeUtilization(t *testing.T) {
	r := Result{TotalSeconds: 2, ComputeSeconds: 1}
	if got := r.ComputeUtilization(); got != 0.5 {
		t.Fatalf("utilization = %v", got)
	}
	if (Result{}).ComputeUtilization() != 0 {
		t.Fatal("zero result utilization should be 0")
	}
}

func TestSpeedupsEdgeCases(t *testing.T) {
	if got := Speedups(nil); len(got) != 0 {
		t.Fatal("nil results should give empty speedups")
	}
	got := Speedups([]Result{{TotalSeconds: 2}, {TotalSeconds: 0}})
	if !math.IsInf(got[1], 1) {
		t.Fatalf("zero-time entry should be +Inf, got %v", got[1])
	}
}
