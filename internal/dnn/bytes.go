package dnn

// Byte-traffic estimates for layers, used by the synthetic device model
// (internal/sim) as the memory leg of its roofline, and by the bandwidth
// efficiency study (Figure 9). These are *theoretical* counts from shape
// information — the paper makes the same simplification ("we use the layer
// shape information to estimate the number of bytes to read/write, while the
// actual GPU may read/write much more", §4 O6).

// bytesPerElem is the element size of FP32 activations and weights.
const bytesPerElem = 4

// LayerInputBytes returns the bytes read from all input tensors of a layer.
func LayerInputBytes(l *Layer) int64 {
	var total int64
	for _, s := range l.InShapes {
		total += s.Numel() * bytesPerElem
	}
	if total == 0 { // not inferred with InShapes (single input path)
		total = l.InShape.Numel() * bytesPerElem
	}
	return total
}

// LayerOutputBytes returns the bytes written to the output tensor.
func LayerOutputBytes(l *Layer) int64 {
	return l.OutShape.Numel() * bytesPerElem
}

// LayerWeightBytes returns the bytes of learned parameters streamed in.
func LayerWeightBytes(l *Layer) int64 {
	return l.WeightCount() * bytesPerElem
}

// LayerBytes returns the total theoretical memory traffic of a layer:
// inputs + weights read, output written.
func LayerBytes(l *Layer) int64 {
	return LayerInputBytes(l) + LayerWeightBytes(l) + LayerOutputBytes(l)
}

// TotalBytes returns the sum of LayerBytes over the network at its inferred
// batch size, or 0 if shapes are not inferred.
func (n *Network) TotalBytes() int64 {
	var total int64
	for _, l := range n.Layers {
		total += LayerBytes(l)
	}
	return total
}

// ArithmeticIntensity returns total FLOPs divided by total bytes for the
// network at its inferred batch size (operations per byte, §7).
func (n *Network) ArithmeticIntensity() float64 {
	b := n.TotalBytes()
	if b == 0 {
		return 0
	}
	f, err := n.TotalFLOPs()
	if err != nil {
		return 0
	}
	return float64(f) / float64(b)
}
