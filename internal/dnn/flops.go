package dnn

import "fmt"

// FLOPs conventions follow the paper (§2.2): FLOPs counts floating-point
// *multiplications* required by the theoretical algorithm, as produced by
// PyTorch-OpCounter. For a convolution this is N·Cout·H'·W'·(Cin/g)·Kh·Kw;
// elementwise and normalization layers count one (or a few) operations per
// element so that the layer-wise model has a non-degenerate regressor for
// every layer type.

// Per-element operation weights for non-GEMM layers. These are fixed
// conventions, not tuned values: they only scale the x-axis of each layer
// type's regression line.
const (
	flopsPerElemBN      = 2 // scale + shift
	flopsPerElemLN      = 4 // mean/var accumulate + normalize + affine
	flopsPerElemAct     = 1
	flopsPerElemGELU    = 4 // tanh-approximation polynomial
	flopsPerElemSoftmax = 3 // exp + sum + divide
	flopsPerElemAdd     = 1
)

// LayerFLOPs returns the theoretical FLOPs of a layer at its inferred shapes.
// The network must have been inferred (Network.Infer) first; layers with
// un-inferred shapes return 0.
func LayerFLOPs(l *Layer) int64 {
	if len(l.OutShape) == 0 {
		return 0
	}
	switch l.Kind {
	case KindConv2D:
		g := l.Groups
		if g == 0 {
			g = 1
		}
		// N · Cout · H' · W' · (Cin/g) · Kh · Kw
		out := l.OutShape
		return int64(out[0]) * int64(out[1]) * int64(out[2]) * int64(out[3]) *
			int64(l.Cin/g) * int64(l.KH) * int64(l.KW)

	case KindLinear:
		// Every position in the output multiplies an InFeatures-long vector.
		return l.OutShape.Numel() * int64(l.InFeatures)

	case KindBatchNorm:
		return l.OutShape.Numel() * flopsPerElemBN

	case KindLayerNorm:
		return l.OutShape.Numel() * flopsPerElemLN

	case KindReLU, KindReLU6, KindSigmoid:
		return l.OutShape.Numel() * flopsPerElemAct

	case KindGELU:
		return l.OutShape.Numel() * flopsPerElemGELU

	case KindSoftmax:
		return l.OutShape.Numel() * flopsPerElemSoftmax

	case KindMaxPool2D, KindAvgPool2D:
		// One comparison/accumulate per window element per output element.
		return l.OutShape.Numel() * int64(l.KH) * int64(l.KW)

	case KindGlobalAvgPool:
		// One accumulate per input element.
		return l.InShape.Numel()

	case KindAdd:
		return l.OutShape.Numel() * flopsPerElemAdd

	case KindMatMul:
		// Per head: (T × d) · (d × T) or (T × T) · (T × d); both cost T·T·d
		// multiplications, d = D/heads.
		a := l.InShapes[0]
		n, t := int64(a[0]), int64(a[1])
		var d int64
		if l.TransposeB {
			d = int64(a[2]) / int64(l.Heads)
		} else {
			d = int64(l.InShapes[1][2]) / int64(l.Heads)
		}
		return n * int64(l.Heads) * t * t * d

	case KindConcat, KindFlatten, KindDropout, KindChannelShuffle,
		KindEmbedding, KindReshapeTokens, KindIdentity:
		// Data-movement-only layers: zero arithmetic by the thop convention.
		return 0
	}
	return 0
}

// TotalFLOPs returns the sum of LayerFLOPs over the whole network at its
// inferred batch size. It returns an error if shapes are not inferred.
func (n *Network) TotalFLOPs() (int64, error) {
	if n.batch == 0 {
		return 0, fmt.Errorf("dnn: network %q: TotalFLOPs requires Infer", n.Name)
	}
	var total int64
	for _, l := range n.Layers {
		total += LayerFLOPs(l)
	}
	return total, nil
}

// FLOPsAt is a convenience that infers the network at the given batch size
// and returns the total FLOPs.
func (n *Network) FLOPsAt(batch int) (int64, error) {
	if err := n.Infer(batch); err != nil {
		return 0, err
	}
	return n.TotalFLOPs()
}
