package dnn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvFLOPsFormula(t *testing.T) {
	// N·Cout·H'·W'·(Cin/g)·Kh·Kw, the paper's §2.2 convention.
	n := New("f", "Test", TaskImageClassification, Shape{3, 224, 224})
	n.Conv(NetworkInput, 3, 64, 7, 2, 3)
	if err := n.Infer(2); err != nil {
		t.Fatal(err)
	}
	want := int64(2) * 64 * 112 * 112 * 3 * 7 * 7
	if got := LayerFLOPs(n.Layers[0]); got != want {
		t.Fatalf("conv FLOPs = %d, want %d", got, want)
	}
}

func TestGroupedConvFLOPs(t *testing.T) {
	n := New("g", "Test", TaskImageClassification, Shape{8, 16, 16})
	n.GroupConv(NetworkInput, 8, 8, 3, 1, 1, 4)
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	want := int64(1) * 8 * 16 * 16 * (8 / 4) * 3 * 3
	if got := LayerFLOPs(n.Layers[0]); got != want {
		t.Fatalf("grouped conv FLOPs = %d, want %d", got, want)
	}
}

func TestDepthwiseConvFLOPs(t *testing.T) {
	n := New("dw", "Test", TaskImageClassification, Shape{8, 16, 16})
	n.DWConv(NetworkInput, 8, 3, 1, 1)
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	want := int64(1) * 8 * 16 * 16 * 1 * 3 * 3
	if got := LayerFLOPs(n.Layers[0]); got != want {
		t.Fatalf("depthwise conv FLOPs = %d, want %d", got, want)
	}
}

func TestLinearFLOPs(t *testing.T) {
	n := New("fc", "Test", TaskImageClassification, Shape{128})
	n.Linear(NetworkInput, 128, 64)
	if err := n.Infer(4); err != nil {
		t.Fatal(err)
	}
	want := int64(4) * 64 * 128
	if got := LayerFLOPs(n.Layers[0]); got != want {
		t.Fatalf("linear FLOPs = %d, want %d", got, want)
	}
}

func TestMatMulFLOPs(t *testing.T) {
	n := New("mm", "Test", TaskTextClassification, Shape{8})
	x := n.Embedding(NetworkInput, 100, 32)
	q := n.Linear(x, 32, 32)
	k := n.Linear(x, 32, 32)
	s := n.MatMul(q, k, 4, true)
	if err := n.Infer(2); err != nil {
		t.Fatal(err)
	}
	// N · heads · T · T · (D/heads) = 2·4·8·8·8
	want := int64(2) * 4 * 8 * 8 * 8
	if got := LayerFLOPs(n.Layers[s]); got != want {
		t.Fatalf("matmul FLOPs = %d, want %d", got, want)
	}
}

func TestDataMovementLayersHaveZeroFLOPs(t *testing.T) {
	n := New("moves", "Test", TaskImageClassification, Shape{4, 8, 8})
	a := n.Conv(NetworkInput, 4, 4, 1, 1, 0)
	b := n.Conv(NetworkInput, 4, 4, 1, 1, 0)
	cat := n.Concat(a, b)
	sh := n.ChannelShuffle(cat, 2)
	fl := n.Flatten(sh)
	dr := n.Dropout(fl)
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{cat, sh, fl, dr} {
		if got := LayerFLOPs(n.Layers[idx]); got != 0 {
			t.Errorf("layer %d (%s): FLOPs = %d, want 0", idx, n.Layers[idx].Kind, got)
		}
	}
}

func TestTotalFLOPsRequiresInfer(t *testing.T) {
	n := buildTinyCNN()
	if _, err := n.TotalFLOPs(); err == nil {
		t.Fatal("TotalFLOPs before Infer should error")
	}
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	total, err := n.TotalFLOPs()
	if err != nil || total <= 0 {
		t.Fatalf("TotalFLOPs = %d, %v", total, err)
	}
	// Adding a layer invalidates the inference.
	n.ReLU(n.Output())
	if _, err := n.TotalFLOPs(); err == nil {
		t.Fatal("TotalFLOPs after structural change should error")
	}
}

// TestFLOPsLinearInBatch is O3's structural premise: batch size is a pure
// multiplication factor of FLOPs.
func TestFLOPsLinearInBatch(t *testing.T) {
	n := buildTinyCNN()
	base, err := n.FLOPsAt(1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(b uint8) bool {
		batch := int(b%64) + 1
		got, err := n.FLOPsAt(batch)
		return err == nil && got == int64(batch)*base
	}
	cfg := &quick.Config{MaxCount: 64, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestConvFLOPsProperty cross-checks LayerFLOPs against an independent
// computation for random convolution geometries.
func TestConvFLOPsProperty(t *testing.T) {
	f := func(cinB, coutB, kB, resB, batchB uint8) bool {
		cin := int(cinB%32) + 1
		cout := int(coutB%32) + 1
		k := []int{1, 3, 5}[int(kB)%3]
		res := int(resB%24) + k // ensure output ≥ 1 with pad 0, stride 1
		batch := int(batchB%8) + 1

		n := New("p", "Test", TaskImageClassification, Shape{cin, res, res})
		n.Conv(NetworkInput, cin, cout, k, 1, 0)
		if err := n.Infer(batch); err != nil {
			return false
		}
		out := res - k + 1
		want := int64(batch) * int64(cout) * int64(out) * int64(out) *
			int64(cin) * int64(k) * int64(k)
		return LayerFLOPs(n.Layers[0]) == want
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWeightCount(t *testing.T) {
	n := New("w", "Test", TaskImageClassification, Shape{3, 8, 8})
	conv := n.Conv(NetworkInput, 3, 8, 3, 1, 1)
	bn := n.BN(conv)
	fl := n.Flatten(bn)
	lin := n.Linear(fl, 8*8*8, 10)
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	if got := n.Layers[conv].WeightCount(); got != 8*3*9 {
		t.Errorf("conv WeightCount = %d", got)
	}
	if got := n.Layers[bn].WeightCount(); got != 16 {
		t.Errorf("bn WeightCount = %d", got)
	}
	if got := n.Layers[lin].WeightCount(); got != int64(8*8*8*10+10) {
		t.Errorf("linear WeightCount = %d", got)
	}
	if got := n.Layers[fl].WeightCount(); got != 0 {
		t.Errorf("flatten WeightCount = %d", got)
	}
}
