package dnn

import (
	"fmt"
	"strconv"
)

// Kind identifies the operation a layer performs. The set covers the layer
// vocabulary of the image-classification and text-classification networks
// used in the paper (TorchVision CNNs and HuggingFace-style transformers).
type Kind string

// Layer kinds.
const (
	KindConv2D         Kind = "Conv2D"
	KindLinear         Kind = "Linear"
	KindBatchNorm      Kind = "BatchNorm"
	KindLayerNorm      Kind = "LayerNorm"
	KindReLU           Kind = "ReLU"
	KindReLU6          Kind = "ReLU6"
	KindGELU           Kind = "GELU"
	KindSigmoid        Kind = "Sigmoid"
	KindSoftmax        Kind = "Softmax"
	KindMaxPool2D      Kind = "MaxPool"
	KindAvgPool2D      Kind = "AvgPool"
	KindGlobalAvgPool  Kind = "GlobalAvgPool"
	KindAdd            Kind = "Add"
	KindConcat         Kind = "Concat"
	KindFlatten        Kind = "Flatten"
	KindDropout        Kind = "Dropout"
	KindChannelShuffle Kind = "ChannelShuffle"
	KindEmbedding      Kind = "Embedding"
	KindMatMul         Kind = "MatMul"
	KindReshapeTokens  Kind = "ReshapeTokens"
	KindIdentity       Kind = "Identity"
)

// Kinds lists every layer kind, in a stable order, for table-driven code.
func Kinds() []Kind {
	return []Kind{
		KindConv2D, KindLinear, KindBatchNorm, KindLayerNorm, KindReLU,
		KindReLU6, KindGELU, KindSigmoid, KindSoftmax, KindMaxPool2D,
		KindAvgPool2D, KindGlobalAvgPool, KindAdd, KindConcat, KindFlatten,
		KindDropout, KindChannelShuffle, KindEmbedding, KindMatMul,
		KindReshapeTokens, KindIdentity,
	}
}

// NetworkInput is the pseudo-index used in Layer.Inputs to reference the
// network's input tensor rather than another layer's output.
const NetworkInput = -1

// Layer is a single operation in a network. Parameter fields are meaningful
// only for the kinds that use them (documented per field); unused fields are
// zero. InShape and OutShape are populated by Network.Infer.
type Layer struct {
	// Name is unique within the network (assigned by Network.Add).
	Name string
	// Kind selects the operation.
	Kind Kind

	// Inputs lists the indices of producer layers within Network.Layers.
	// NetworkInput (-1) denotes the network input tensor. Most layers have
	// exactly one input; Add and Concat and MatMul take two or more.
	Inputs []int

	// Cin, Cout are input/output channel counts (Conv2D).
	Cin, Cout int
	// KH, KW are kernel height/width (Conv2D, MaxPool, AvgPool).
	KH, KW int
	// Stride is the spatial stride (Conv2D, MaxPool, AvgPool).
	Stride int
	// Pad is the symmetric spatial padding (Conv2D, MaxPool, AvgPool).
	Pad int
	// Groups is the convolution group count (Conv2D, ChannelShuffle).
	Groups int

	// InFeatures, OutFeatures are input/output widths (Linear).
	InFeatures, OutFeatures int

	// VocabSize and EmbedDim parameterize Embedding layers.
	VocabSize, EmbedDim int

	// Heads is the attention head count (MatMul in attention blocks).
	Heads int
	// TransposeB indicates the MatMul computes A·Bᵀ (score matmul) rather
	// than A·B (context matmul).
	TransposeB bool

	// InShape is the shape of the (first) input after shape inference.
	InShape Shape
	// InShapes holds the shape of every input for multi-input layers.
	InShapes []Shape
	// OutShape is the output shape after shape inference.
	OutShape Shape
}

// HasWeights reports whether the layer owns learned parameters that occupy
// device memory (used by the OOM model and the disaggregated-memory
// prefetcher).
func (l *Layer) HasWeights() bool {
	switch l.Kind {
	case KindConv2D, KindLinear, KindBatchNorm, KindLayerNorm, KindEmbedding:
		return true
	}
	return false
}

// WeightCount returns the number of learned scalar parameters of the layer.
func (l *Layer) WeightCount() int64 {
	switch l.Kind {
	case KindConv2D:
		g := l.Groups
		if g == 0 {
			g = 1
		}
		return int64(l.Cout) * int64(l.Cin/g) * int64(l.KH) * int64(l.KW)
	case KindLinear:
		return int64(l.InFeatures)*int64(l.OutFeatures) + int64(l.OutFeatures)
	case KindBatchNorm, KindLayerNorm:
		// scale + shift per channel/feature.
		c := l.InShape.Channels()
		if l.Kind == KindLayerNorm && l.InShape.Rank() >= 1 {
			c = l.InShape[len(l.InShape)-1]
		}
		return 2 * int64(c)
	case KindEmbedding:
		return int64(l.VocabSize) * int64(l.EmbedDim)
	}
	return 0
}

// Signature is a structural key identifying the layer's problem instance:
// kind plus the parameters and inferred shapes that determine which GPU
// kernels a cuDNN-like library would dispatch. The kernel-wise model's
// layer→kernel mapping table is keyed by this signature, following the
// paper's "look-up table that maps from the layer type and input/output size
// to the kernel list" (§5.4).
func (l *Layer) Signature() string {
	return string(l.AppendSignature(make([]byte, 0, 96)))
}

// AppendSignature appends Signature's rendering to dst and returns the
// extended slice. It exists for hot paths (plan compilation resolves a
// signature per layer per batch breakpoint) that want to reuse one buffer
// and look the result up with the map[string(buf)] idiom instead of
// materializing a string: fmt-free, it allocates only when dst must grow.
func (l *Layer) AppendSignature(dst []byte) []byte {
	dst = append(dst, l.Kind...)
	switch l.Kind {
	case KindConv2D:
		dst = append(dst, "|cin="...)
		dst = strconv.AppendInt(dst, int64(l.Cin), 10)
		dst = append(dst, "|cout="...)
		dst = strconv.AppendInt(dst, int64(l.Cout), 10)
		dst = append(dst, "|k="...)
		dst = strconv.AppendInt(dst, int64(l.KH), 10)
		dst = append(dst, 'x')
		dst = strconv.AppendInt(dst, int64(l.KW), 10)
		dst = append(dst, "|s="...)
		dst = strconv.AppendInt(dst, int64(l.Stride), 10)
		dst = append(dst, "|p="...)
		dst = strconv.AppendInt(dst, int64(l.Pad), 10)
		dst = append(dst, "|g="...)
		dst = strconv.AppendInt(dst, int64(l.Groups), 10)
	case KindLinear:
		dst = append(dst, "|in="...)
		dst = strconv.AppendInt(dst, int64(l.InFeatures), 10)
		dst = append(dst, "|out="...)
		dst = strconv.AppendInt(dst, int64(l.OutFeatures), 10)
	case KindMaxPool2D, KindAvgPool2D:
		dst = append(dst, "|k="...)
		dst = strconv.AppendInt(dst, int64(l.KH), 10)
		dst = append(dst, 'x')
		dst = strconv.AppendInt(dst, int64(l.KW), 10)
		dst = append(dst, "|s="...)
		dst = strconv.AppendInt(dst, int64(l.Stride), 10)
		dst = append(dst, "|p="...)
		dst = strconv.AppendInt(dst, int64(l.Pad), 10)
	case KindEmbedding:
		dst = append(dst, "|vocab="...)
		dst = strconv.AppendInt(dst, int64(l.VocabSize), 10)
		dst = append(dst, "|dim="...)
		dst = strconv.AppendInt(dst, int64(l.EmbedDim), 10)
	case KindMatMul:
		dst = append(dst, "|heads="...)
		dst = strconv.AppendInt(dst, int64(l.Heads), 10)
		dst = append(dst, "|tb="...)
		dst = strconv.AppendBool(dst, l.TransposeB)
	}
	dst = append(dst, "|in="...)
	dst = l.InShape.appendString(dst)
	dst = append(dst, "|out="...)
	return l.OutShape.appendString(dst)
}

// Rebatch rewrites the batch dimension of the layer's inferred shapes in
// place. Valid only on layers whose shapes came from Network.Infer: every
// layer kind produces an output shape whose leading dimension is the batch
// size and whose remaining dimensions are batch-invariant, so overwriting
// dimension 0 reproduces exactly what re-inference at the new batch size
// would compute. InShape aliases InShapes[0] and producers' OutShape slices;
// the writes are idempotent, so the aliasing is harmless.
func (l *Layer) Rebatch(batch int) {
	if len(l.InShape) > 0 {
		l.InShape[0] = batch
	}
	for _, s := range l.InShapes {
		if len(s) > 0 {
			s[0] = batch
		}
	}
	if len(l.OutShape) > 0 {
		l.OutShape[0] = batch
	}
}

// validate checks parameter consistency independent of shapes.
func (l *Layer) validate() error {
	if len(l.Inputs) == 0 {
		return fmt.Errorf("dnn: layer %q (%s) has no inputs", l.Name, l.Kind)
	}
	switch l.Kind {
	case KindConv2D:
		if l.Cin <= 0 || l.Cout <= 0 || l.KH <= 0 || l.KW <= 0 || l.Stride <= 0 {
			return fmt.Errorf("dnn: conv layer %q has non-positive parameters", l.Name)
		}
		g := l.Groups
		if g <= 0 {
			return fmt.Errorf("dnn: conv layer %q has groups=%d", l.Name, g)
		}
		if l.Cin%g != 0 || l.Cout%g != 0 {
			return fmt.Errorf("dnn: conv layer %q channels (%d→%d) not divisible by groups %d",
				l.Name, l.Cin, l.Cout, g)
		}
	case KindLinear:
		if l.InFeatures <= 0 || l.OutFeatures <= 0 {
			return fmt.Errorf("dnn: linear layer %q has non-positive feature sizes", l.Name)
		}
	case KindMaxPool2D, KindAvgPool2D:
		if l.KH <= 0 || l.KW <= 0 || l.Stride <= 0 {
			return fmt.Errorf("dnn: pool layer %q has non-positive parameters", l.Name)
		}
	case KindEmbedding:
		if l.VocabSize <= 0 || l.EmbedDim <= 0 {
			return fmt.Errorf("dnn: embedding layer %q has non-positive parameters", l.Name)
		}
	case KindAdd:
		if len(l.Inputs) < 2 {
			return fmt.Errorf("dnn: add layer %q needs at least 2 inputs", l.Name)
		}
	case KindConcat:
		if len(l.Inputs) < 2 {
			return fmt.Errorf("dnn: concat layer %q needs at least 2 inputs", l.Name)
		}
	case KindMatMul:
		if len(l.Inputs) != 2 {
			return fmt.Errorf("dnn: matmul layer %q needs exactly 2 inputs", l.Name)
		}
		if l.Heads <= 0 {
			return fmt.Errorf("dnn: matmul layer %q has heads=%d", l.Name, l.Heads)
		}
	case KindChannelShuffle:
		if l.Groups <= 0 {
			return fmt.Errorf("dnn: channel shuffle layer %q has groups=%d", l.Name, l.Groups)
		}
	}
	return nil
}
