package dnn

import (
	"fmt"
	"strconv"
)

// Task labels the problem a network solves; the paper's dataset covers image
// classification plus a transformer extension for text classification.
type Task string

// Supported tasks.
const (
	TaskImageClassification Task = "image-classification"
	TaskTextClassification  Task = "text-classification"
)

// Network is a DAG of layers stored in topological order: a layer may only
// reference earlier layers (or the network input) as its inputs. This mirrors
// how frameworks serialize models and makes shape inference a single forward
// pass.
type Network struct {
	// Name uniquely identifies the network in the dataset, e.g. "resnet50".
	Name string
	// Family groups structural variants, e.g. "ResNet", "VGG", "DenseNet".
	Family string
	// Task is the problem class the network targets.
	Task Task
	// InputShape is the per-sample input shape, without batch dimension
	// (e.g. {3, 224, 224} for ImageNet, {128} for 128-token sequences).
	InputShape Shape
	// Layers holds the layers in topological order.
	Layers []*Layer

	// batch is the batch size of the most recent successful Infer call, or 0.
	batch int
}

// New creates an empty network with the given identity and per-sample input
// shape.
func New(name, family string, task Task, input Shape) *Network {
	return &Network{Name: name, Family: family, Task: task, InputShape: input.Clone()}
}

// Add appends a layer and returns its index, for use as an input reference by
// later layers. The layer's Inputs must already be set and must reference
// only earlier layers or NetworkInput. Add assigns the layer a unique name
// if it has none.
func (n *Network) Add(l *Layer) int {
	idx := len(n.Layers)
	if l.Name == "" {
		l.Name = string(l.Kind) + "_" + strconv.Itoa(idx)
	}
	n.Layers = append(n.Layers, l)
	n.batch = 0 // invalidate any prior inference
	return idx
}

// Conv adds a standard 2-D convolution (groups=1).
func (n *Network) Conv(in, cin, cout, k, stride, pad int) int {
	return n.Add(&Layer{Kind: KindConv2D, Inputs: []int{in},
		Cin: cin, Cout: cout, KH: k, KW: k, Stride: stride, Pad: pad, Groups: 1})
}

// GroupConv adds a grouped 2-D convolution.
func (n *Network) GroupConv(in, cin, cout, k, stride, pad, groups int) int {
	return n.Add(&Layer{Kind: KindConv2D, Inputs: []int{in},
		Cin: cin, Cout: cout, KH: k, KW: k, Stride: stride, Pad: pad, Groups: groups})
}

// DWConv adds a depthwise convolution (groups = channels).
func (n *Network) DWConv(in, c, k, stride, pad int) int {
	return n.GroupConv(in, c, c, k, stride, pad, c)
}

// BN adds a batch-normalization layer.
func (n *Network) BN(in int) int {
	return n.Add(&Layer{Kind: KindBatchNorm, Inputs: []int{in}})
}

// LN adds a layer-normalization layer.
func (n *Network) LN(in int) int {
	return n.Add(&Layer{Kind: KindLayerNorm, Inputs: []int{in}})
}

// ReLU adds a ReLU activation.
func (n *Network) ReLU(in int) int {
	return n.Add(&Layer{Kind: KindReLU, Inputs: []int{in}})
}

// ReLU6 adds a ReLU6 activation (MobileNet family).
func (n *Network) ReLU6(in int) int {
	return n.Add(&Layer{Kind: KindReLU6, Inputs: []int{in}})
}

// GELU adds a GELU activation (transformers).
func (n *Network) GELU(in int) int {
	return n.Add(&Layer{Kind: KindGELU, Inputs: []int{in}})
}

// Softmax adds a softmax over the last dimension.
func (n *Network) Softmax(in int) int {
	return n.Add(&Layer{Kind: KindSoftmax, Inputs: []int{in}})
}

// MaxPool adds a 2-D max pooling layer.
func (n *Network) MaxPool(in, k, stride, pad int) int {
	return n.Add(&Layer{Kind: KindMaxPool2D, Inputs: []int{in}, KH: k, KW: k, Stride: stride, Pad: pad})
}

// AvgPool adds a 2-D average pooling layer.
func (n *Network) AvgPool(in, k, stride, pad int) int {
	return n.Add(&Layer{Kind: KindAvgPool2D, Inputs: []int{in}, KH: k, KW: k, Stride: stride, Pad: pad})
}

// GlobalAvgPool adds an adaptive average pool to 1×1.
func (n *Network) GlobalAvgPool(in int) int {
	return n.Add(&Layer{Kind: KindGlobalAvgPool, Inputs: []int{in}})
}

// Flatten collapses all non-batch dimensions.
func (n *Network) Flatten(in int) int {
	return n.Add(&Layer{Kind: KindFlatten, Inputs: []int{in}})
}

// Linear adds a fully connected layer.
func (n *Network) Linear(in, inFeatures, outFeatures int) int {
	return n.Add(&Layer{Kind: KindLinear, Inputs: []int{in},
		InFeatures: inFeatures, OutFeatures: outFeatures})
}

// Residual adds an elementwise Add joining two branches.
func (n *Network) Residual(a, b int) int {
	return n.Add(&Layer{Kind: KindAdd, Inputs: []int{a, b}})
}

// Concat adds a channel-dimension concatenation of the given branches.
func (n *Network) Concat(ins ...int) int {
	inputs := make([]int, len(ins))
	copy(inputs, ins)
	return n.Add(&Layer{Kind: KindConcat, Inputs: inputs})
}

// Dropout adds a dropout layer (a no-op at inference, kept for structural
// fidelity with the source models).
func (n *Network) Dropout(in int) int {
	return n.Add(&Layer{Kind: KindDropout, Inputs: []int{in}})
}

// ChannelShuffle adds a ShuffleNet-style channel shuffle.
func (n *Network) ChannelShuffle(in, groups int) int {
	return n.Add(&Layer{Kind: KindChannelShuffle, Inputs: []int{in}, Groups: groups})
}

// Embedding adds a token-embedding lookup layer.
func (n *Network) Embedding(in, vocab, dim int) int {
	return n.Add(&Layer{Kind: KindEmbedding, Inputs: []int{in}, VocabSize: vocab, EmbedDim: dim})
}

// MatMul adds a batched attention matmul of inputs a and b.
func (n *Network) MatMul(a, b, heads int, transposeB bool) int {
	return n.Add(&Layer{Kind: KindMatMul, Inputs: []int{a, b}, Heads: heads, TransposeB: transposeB})
}

// Sigmoid adds a sigmoid activation.
func (n *Network) Sigmoid(in int) int {
	return n.Add(&Layer{Kind: KindSigmoid, Inputs: []int{in}})
}

// Output returns the index of the network's output layer (the last layer).
func (n *Network) Output() int { return len(n.Layers) - 1 }

// Batch returns the batch size of the most recent successful Infer, or 0 if
// shapes are not inferred.
func (n *Network) Batch() int { return n.batch }

// Infer runs static shape inference at the given batch size, populating every
// layer's InShape/InShapes/OutShape. It validates the DAG (topological input
// references) and per-layer parameter/shape consistency.
func (n *Network) Infer(batch int) error {
	if batch <= 0 {
		return fmt.Errorf("dnn: network %q: batch size %d must be positive", n.Name, batch)
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("dnn: network %q has no layers", n.Name)
	}
	if !n.InputShape.Valid() {
		return fmt.Errorf("dnn: network %q has invalid input shape %s", n.Name, n.InputShape)
	}
	netIn := n.InputShape.WithBatch(batch)

	for i, l := range n.Layers {
		if err := l.validate(); err != nil {
			return err
		}
		ins := make([]Shape, len(l.Inputs))
		for j, src := range l.Inputs {
			switch {
			case src == NetworkInput:
				ins[j] = netIn
			case src >= 0 && src < i:
				ins[j] = n.Layers[src].OutShape
			default:
				return fmt.Errorf("dnn: network %q: layer %d (%q) references input %d (must be < %d or NetworkInput)",
					n.Name, i, l.Name, src, i)
			}
		}
		out, err := inferLayer(l, ins)
		if err != nil {
			return fmt.Errorf("dnn: network %q: layer %d (%q): %w", n.Name, i, l.Name, err)
		}
		l.InShape = ins[0]
		l.InShapes = ins
		l.OutShape = out
	}
	n.batch = batch
	return nil
}

// Rebatch re-targets the network's inferred shapes at a new batch size by
// rewriting the batch dimension in place, skipping the per-layer validation
// and shape allocation Infer repeats on every call. It is exact: every layer
// kind's output shape is (batch, batch-invariant dims...), so the rewrite
// produces bit-identical shapes to a fresh Infer at the same batch size
// (TestRebatchMatchesInfer proves this over the full zoo). A network that
// has never been inferred falls through to Infer for its validation.
func (n *Network) Rebatch(batch int) error {
	if batch <= 0 {
		return fmt.Errorf("dnn: network %q: batch size %d must be positive", n.Name, batch)
	}
	if n.batch == 0 {
		return n.Infer(batch)
	}
	if n.batch == batch {
		return nil
	}
	for _, l := range n.Layers {
		l.Rebatch(batch)
	}
	n.batch = batch
	return nil
}

// inferLayer computes the output shape of a layer from its input shapes.
func inferLayer(l *Layer, ins []Shape) (Shape, error) {
	in := ins[0]
	switch l.Kind {
	case KindConv2D:
		if in.Rank() != 4 {
			return nil, fmt.Errorf("conv expects NCHW input, got %s", in)
		}
		if in[1] != l.Cin {
			return nil, fmt.Errorf("conv expects %d input channels, got %d", l.Cin, in[1])
		}
		if in[2]+2*l.Pad < l.KH || in[3]+2*l.Pad < l.KW {
			return nil, fmt.Errorf("conv kernel %dx%d exceeds padded input %s", l.KH, l.KW, in)
		}
		oh := convOut(in[2], l.KH, l.Stride, l.Pad)
		ow := convOut(in[3], l.KW, l.Stride, l.Pad)
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("conv output spatial size %dx%d is non-positive for input %s", oh, ow, in)
		}
		return Shape{in[0], l.Cout, oh, ow}, nil

	case KindMaxPool2D, KindAvgPool2D:
		if in.Rank() != 4 {
			return nil, fmt.Errorf("pool expects NCHW input, got %s", in)
		}
		if in[2]+2*l.Pad < l.KH || in[3]+2*l.Pad < l.KW {
			return nil, fmt.Errorf("pool window %dx%d exceeds padded input %s", l.KH, l.KW, in)
		}
		oh := convOut(in[2], l.KH, l.Stride, l.Pad)
		ow := convOut(in[3], l.KW, l.Stride, l.Pad)
		if oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("pool output spatial size %dx%d is non-positive for input %s", oh, ow, in)
		}
		return Shape{in[0], in[1], oh, ow}, nil

	case KindGlobalAvgPool:
		if in.Rank() != 4 {
			return nil, fmt.Errorf("global pool expects NCHW input, got %s", in)
		}
		return Shape{in[0], in[1], 1, 1}, nil

	case KindBatchNorm:
		if in.Rank() < 2 {
			return nil, fmt.Errorf("batchnorm expects rank ≥ 2 input, got %s", in)
		}
		return in.Clone(), nil

	case KindLayerNorm, KindReLU, KindReLU6, KindGELU, KindSigmoid,
		KindSoftmax, KindDropout, KindIdentity:
		return in.Clone(), nil

	case KindChannelShuffle:
		if in.Rank() != 4 {
			return nil, fmt.Errorf("channel shuffle expects NCHW input, got %s", in)
		}
		if in[1]%l.Groups != 0 {
			return nil, fmt.Errorf("channel shuffle: %d channels not divisible by %d groups", in[1], l.Groups)
		}
		return in.Clone(), nil

	case KindFlatten:
		if in.Rank() < 2 {
			return nil, fmt.Errorf("flatten expects rank ≥ 2 input, got %s", in)
		}
		f := int64(1)
		for _, d := range in[1:] {
			f *= int64(d)
		}
		return Shape{in[0], int(f)}, nil

	case KindLinear:
		last := in[len(in)-1]
		if last != l.InFeatures {
			return nil, fmt.Errorf("linear expects %d input features, got %d (input %s)", l.InFeatures, last, in)
		}
		out := in.Clone()
		out[len(out)-1] = l.OutFeatures
		return out, nil

	case KindAdd:
		for _, s := range ins[1:] {
			if !s.Equal(in) {
				return nil, fmt.Errorf("add inputs have mismatched shapes %s vs %s", in, s)
			}
		}
		return in.Clone(), nil

	case KindConcat:
		if in.Rank() < 2 {
			return nil, fmt.Errorf("concat expects rank ≥ 2 inputs, got %s", in)
		}
		out := in.Clone()
		for _, s := range ins[1:] {
			if s.Rank() != in.Rank() {
				return nil, fmt.Errorf("concat inputs have mismatched ranks %s vs %s", in, s)
			}
			for d := range s {
				if d != 1 && s[d] != in[d] {
					return nil, fmt.Errorf("concat inputs differ outside channel dim: %s vs %s", in, s)
				}
			}
			out[1] += s[1]
		}
		return out, nil

	case KindReshapeTokens:
		// (N, D, H, W) → (N, T=H·W, D): the zero-copy view a vision
		// transformer uses between its patch embedding and its encoder.
		if in.Rank() != 4 {
			return nil, fmt.Errorf("token reshape expects NCHW input, got %s", in)
		}
		return Shape{in[0], in[2] * in[3], in[1]}, nil

	case KindEmbedding:
		if in.Rank() != 2 {
			return nil, fmt.Errorf("embedding expects (N, T) token input, got %s", in)
		}
		return Shape{in[0], in[1], l.EmbedDim}, nil

	case KindMatMul:
		// Attention matmuls over (N, T, D) activations split into l.Heads
		// heads of width D/heads.
		a, b := ins[0], ins[1]
		if a.Rank() != 3 || b.Rank() != 3 {
			return nil, fmt.Errorf("matmul expects (N, T, D) inputs, got %s and %s", a, b)
		}
		if a[0] != b[0] || a[1] != b[1] {
			return nil, fmt.Errorf("matmul batch/sequence mismatch: %s vs %s", a, b)
		}
		if l.TransposeB {
			// scores: (N, h, T, d) × (N, h, d, T) → per-head (T, T); we
			// represent the result as (N, T, heads*T).
			return Shape{a[0], a[1], l.Heads * a[1]}, nil
		}
		// context: (N, h, T, T) × (N, h, T, d) → (N, T, D).
		if a[2] != l.Heads*a[1] {
			return nil, fmt.Errorf("context matmul expects scores of width heads*T=%d, got %d", l.Heads*a[1], a[2])
		}
		return Shape{b[0], b[1], b[2]}, nil
	}
	return nil, fmt.Errorf("unknown layer kind %q", l.Kind)
}

// convOut computes the output spatial extent of a convolution/pool dimension.
func convOut(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// WeightBytes returns the total parameter footprint of the network in bytes,
// assuming 4-byte (FP32) weights.
func (n *Network) WeightBytes() int64 {
	var total int64
	for _, l := range n.Layers {
		total += 4 * l.WeightCount()
	}
	return total
}

// ActivationBytes returns the total activation traffic of one forward pass in
// bytes (sum of every layer's output tensor), assuming FP32. Requires Infer.
func (n *Network) ActivationBytes() int64 {
	var total int64
	for _, l := range n.Layers {
		total += 4 * l.OutShape.Numel()
	}
	return total
}

// PeakActivationBytes returns a simple peak-memory estimate: the two largest
// layer outputs (producer + consumer live simultaneously), assuming FP32.
func (n *Network) PeakActivationBytes() int64 {
	var max1, max2 int64
	for _, l := range n.Layers {
		b := 4 * l.OutShape.Numel()
		if b > max1 {
			max1, max2 = b, max1
		} else if b > max2 {
			max2 = b
		}
	}
	return max1 + max2
}

// Validate runs shape inference at batch size 1 purely as a structural check.
func (n *Network) Validate() error { return n.Infer(1) }

// Clone deep-copies the network structure (layers and input references) with
// shape state reset, so inference on the clone never races or disturbs the
// original. Callers that need shapes run Infer on the clone.
func (n *Network) Clone() *Network {
	c := New(n.Name, n.Family, n.Task, n.InputShape)
	for _, l := range n.Layers {
		lc := *l
		lc.Inputs = append([]int(nil), l.Inputs...)
		lc.InShape = nil
		lc.InShapes = nil
		lc.OutShape = nil
		c.Add(&lc)
	}
	return c
}
