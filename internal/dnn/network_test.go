package dnn

import (
	"strings"
	"testing"
)

// buildTinyCNN assembles a small but representative CNN: stem conv, BN,
// ReLU, pool, a residual pair, global pool, flatten, linear.
func buildTinyCNN() *Network {
	n := New("tiny", "Test", TaskImageClassification, Shape{3, 32, 32})
	x := n.Conv(NetworkInput, 3, 16, 3, 1, 1)
	x = n.BN(x)
	x = n.ReLU(x)
	x = n.MaxPool(x, 2, 2, 0)
	branch := n.Conv(x, 16, 16, 3, 1, 1)
	branch = n.BN(branch)
	x = n.Residual(branch, x)
	x = n.ReLU(x)
	x = n.GlobalAvgPool(x)
	x = n.Flatten(x)
	n.Linear(x, 16, 10)
	return n
}

func TestInferShapes(t *testing.T) {
	n := buildTinyCNN()
	if err := n.Infer(4); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		idx   int
		shape Shape
	}{
		{0, Shape{4, 16, 32, 32}}, // conv stem
		{3, Shape{4, 16, 16, 16}}, // pool
		{6, Shape{4, 16, 16, 16}}, // residual
		{8, Shape{4, 16, 1, 1}},   // global pool
		{9, Shape{4, 16}},         // flatten
		{10, Shape{4, 10}},        // linear
	}
	for _, w := range want {
		if got := n.Layers[w.idx].OutShape; !got.Equal(w.shape) {
			t.Errorf("layer %d (%s): OutShape = %v, want %v",
				w.idx, n.Layers[w.idx].Kind, got, w.shape)
		}
	}
	if n.Batch() != 4 {
		t.Errorf("Batch() = %d, want 4", n.Batch())
	}
}

func TestInferConvGeometry(t *testing.T) {
	// The classic ResNet stem: 7×7 stride-2 pad-3 on 224 → 112.
	n := New("stem", "Test", TaskImageClassification, Shape{3, 224, 224})
	n.Conv(NetworkInput, 3, 64, 7, 2, 3)
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	if got := n.Layers[0].OutShape; !got.Equal(Shape{1, 64, 112, 112}) {
		t.Fatalf("stem OutShape = %v", got)
	}
}

func TestInferConcat(t *testing.T) {
	n := New("cat", "Test", TaskImageClassification, Shape{8, 10, 10})
	a := n.Conv(NetworkInput, 8, 4, 1, 1, 0)
	b := n.Conv(NetworkInput, 8, 6, 1, 1, 0)
	c := n.Concat(a, b)
	if err := n.Infer(2); err != nil {
		t.Fatal(err)
	}
	if got := n.Layers[c].OutShape; !got.Equal(Shape{2, 10, 10, 10}) {
		t.Fatalf("concat OutShape = %v, want (2, 10, 10, 10)", got)
	}
}

func TestInferErrors(t *testing.T) {
	t.Run("add shape mismatch", func(t *testing.T) {
		n := New("bad", "Test", TaskImageClassification, Shape{3, 8, 8})
		a := n.Conv(NetworkInput, 3, 4, 1, 1, 0)
		b := n.Conv(NetworkInput, 3, 8, 1, 1, 0)
		n.Residual(a, b)
		if err := n.Infer(1); err == nil {
			t.Fatal("want error for mismatched Add inputs")
		}
	})
	t.Run("forward reference", func(t *testing.T) {
		n := New("bad", "Test", TaskImageClassification, Shape{3, 8, 8})
		n.Add(&Layer{Kind: KindReLU, Inputs: []int{5}})
		if err := n.Infer(1); err == nil {
			t.Fatal("want error for forward input reference")
		}
	})
	t.Run("channel mismatch", func(t *testing.T) {
		n := New("bad", "Test", TaskImageClassification, Shape{3, 8, 8})
		n.Conv(NetworkInput, 16, 4, 1, 1, 0) // claims 16 input channels
		if err := n.Infer(1); err == nil {
			t.Fatal("want error for conv channel mismatch")
		}
	})
	t.Run("linear feature mismatch", func(t *testing.T) {
		n := New("bad", "Test", TaskImageClassification, Shape{10})
		n.Linear(NetworkInput, 20, 5)
		if err := n.Infer(1); err == nil {
			t.Fatal("want error for linear feature mismatch")
		}
	})
	t.Run("non-positive batch", func(t *testing.T) {
		n := buildTinyCNN()
		if err := n.Infer(0); err == nil {
			t.Fatal("want error for batch 0")
		}
	})
	t.Run("empty network", func(t *testing.T) {
		n := New("empty", "Test", TaskImageClassification, Shape{3, 8, 8})
		if err := n.Infer(1); err == nil {
			t.Fatal("want error for empty network")
		}
	})
	t.Run("spatial collapse", func(t *testing.T) {
		n := New("bad", "Test", TaskImageClassification, Shape{3, 4, 4})
		x := n.MaxPool(NetworkInput, 2, 2, 0) // 4 → 2
		x = n.MaxPool(x, 2, 2, 0)             // 2 → 1
		n.MaxPool(x, 2, 2, 0)                 // 1 → 0: error
		if err := n.Infer(1); err == nil {
			t.Fatal("want error for collapsed spatial size")
		}
	})
}

func TestLayerValidate(t *testing.T) {
	bad := []*Layer{
		{Kind: KindConv2D, Inputs: []int{NetworkInput}, Cin: 3, Cout: 4, KH: 3, KW: 3, Stride: 1, Groups: 0},
		{Kind: KindConv2D, Inputs: []int{NetworkInput}, Cin: 3, Cout: 4, KH: 3, KW: 3, Stride: 1, Groups: 2},
		{Kind: KindLinear, Inputs: []int{NetworkInput}, InFeatures: 0, OutFeatures: 4},
		{Kind: KindAdd, Inputs: []int{NetworkInput}},
		{Kind: KindConcat, Inputs: []int{NetworkInput}},
		{Kind: KindMatMul, Inputs: []int{NetworkInput, 0}, Heads: 0},
		{Kind: KindEmbedding, Inputs: []int{NetworkInput}, VocabSize: 0, EmbedDim: 4},
		{Kind: KindReLU, Inputs: nil},
		{Kind: KindChannelShuffle, Inputs: []int{NetworkInput}, Groups: 0},
	}
	for i, l := range bad {
		if err := l.validate(); err == nil {
			t.Errorf("case %d (%s): want validation error", i, l.Kind)
		}
	}
}

func TestSignatureStability(t *testing.T) {
	n := buildTinyCNN()
	if err := n.Infer(4); err != nil {
		t.Fatal(err)
	}
	sig := n.Layers[0].Signature()
	if !strings.Contains(sig, "Conv2D") || !strings.Contains(sig, "cin=3") {
		t.Fatalf("unexpected conv signature %q", sig)
	}
	// Same structure at the same batch must give identical signatures.
	n2 := buildTinyCNN()
	if err := n2.Infer(4); err != nil {
		t.Fatal(err)
	}
	if n2.Layers[0].Signature() != sig {
		t.Fatal("signatures differ across identical builds")
	}
	// Different batch changes the signature (shapes embed the batch).
	if err := n2.Infer(8); err != nil {
		t.Fatal(err)
	}
	if n2.Layers[0].Signature() == sig {
		t.Fatal("signature should change with batch size")
	}
}

func TestTransformerInference(t *testing.T) {
	n := New("tx", "Test", TaskTextClassification, Shape{16})
	x := n.Embedding(NetworkInput, 100, 32)
	q := n.Linear(x, 32, 32)
	k := n.Linear(x, 32, 32)
	v := n.Linear(x, 32, 32)
	s := n.MatMul(q, k, 4, true)
	s = n.Softmax(s)
	c := n.MatMul(s, v, 4, false)
	n.LN(c)
	if err := n.Infer(2); err != nil {
		t.Fatal(err)
	}
	if got := n.Layers[s].OutShape; !got.Equal(Shape{2, 16, 64}) {
		t.Fatalf("scores shape = %v, want (2, 16, 64)", got)
	}
	if got := n.Layers[c].OutShape; !got.Equal(Shape{2, 16, 32}) {
		t.Fatalf("context shape = %v, want (2, 16, 32)", got)
	}
}

func TestWeightAndActivationBytes(t *testing.T) {
	n := buildTinyCNN()
	if err := n.Infer(2); err != nil {
		t.Fatal(err)
	}
	// conv1: 16·3·3·3, conv2: 16·16·3·3, 2 BN (2·16 each), linear 16·10+10.
	wantWeights := int64(16*3*9+16*16*9+2*2*16+16*10+10) * 4
	if got := n.WeightBytes(); got != wantWeights {
		t.Errorf("WeightBytes() = %d, want %d", got, wantWeights)
	}
	if n.ActivationBytes() <= 0 {
		t.Error("ActivationBytes() should be positive")
	}
	if n.PeakActivationBytes() > n.ActivationBytes() {
		t.Error("peak activations cannot exceed total activations")
	}
	if n.TotalBytes() < n.WeightBytes() {
		t.Error("TotalBytes should include weights")
	}
	if n.ArithmeticIntensity() <= 0 {
		t.Error("ArithmeticIntensity should be positive")
	}
}

func TestValidateRunsAtBatchOne(t *testing.T) {
	n := buildTinyCNN()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Batch() != 1 {
		t.Errorf("Validate should leave batch = 1, got %d", n.Batch())
	}
}

func TestAddAssignsUniqueNames(t *testing.T) {
	n := buildTinyCNN()
	seen := map[string]bool{}
	for _, l := range n.Layers {
		if l.Name == "" {
			t.Fatal("layer with empty name")
		}
		if seen[l.Name] {
			t.Fatalf("duplicate layer name %q", l.Name)
		}
		seen[l.Name] = true
	}
}
