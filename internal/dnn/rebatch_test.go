package dnn

import (
	"fmt"
	"strings"
	"testing"
)

// buildTinyTransformer mirrors TestTransformerInference's network so the
// rebatch/signature properties are exercised on the text-shaped layer kinds
// (Embedding, MatMul, LayerNorm) as well as the CNN ones.
func buildTinyTransformer() *Network {
	n := New("tinytx", "Test", TaskTextClassification, Shape{16})
	x := n.Embedding(NetworkInput, 100, 32)
	q := n.Linear(x, 32, 32)
	k := n.Linear(x, 32, 32)
	v := n.Linear(x, 32, 32)
	s := n.MatMul(q, k, 4, true)
	s = n.Softmax(s)
	c := n.MatMul(s, v, 4, false)
	n.LN(c)
	return n
}

// TestRebatchMatchesInfer proves Rebatch's exactness claim: rewriting the
// batch dimension in place produces the same shapes, in every slot of every
// layer, as a fresh shape inference at the target batch size.
func TestRebatchMatchesInfer(t *testing.T) {
	builders := map[string]func() *Network{
		"cnn":         buildTinyCNN,
		"transformer": buildTinyTransformer,
	}
	batches := []int{1, 2, 7, 64, 512}
	for name, build := range builders {
		re := build()
		for _, b := range batches {
			if err := re.Rebatch(b); err != nil {
				t.Fatalf("%s: Rebatch(%d): %v", name, b, err)
			}
			ref := build()
			if err := ref.Infer(b); err != nil {
				t.Fatalf("%s: Infer(%d): %v", name, b, err)
			}
			if re.Batch() != ref.Batch() {
				t.Fatalf("%s: Batch() = %d, want %d", name, re.Batch(), ref.Batch())
			}
			for i := range ref.Layers {
				got, want := re.Layers[i], ref.Layers[i]
				if !got.InShape.Equal(want.InShape) {
					t.Fatalf("%s batch %d layer %d: InShape = %v, want %v", name, b, i, got.InShape, want.InShape)
				}
				if len(got.InShapes) != len(want.InShapes) {
					t.Fatalf("%s batch %d layer %d: %d InShapes, want %d", name, b, i, len(got.InShapes), len(want.InShapes))
				}
				for j := range want.InShapes {
					if !got.InShapes[j].Equal(want.InShapes[j]) {
						t.Fatalf("%s batch %d layer %d: InShapes[%d] = %v, want %v", name, b, i, j, got.InShapes[j], want.InShapes[j])
					}
				}
				if !got.OutShape.Equal(want.OutShape) {
					t.Fatalf("%s batch %d layer %d: OutShape = %v, want %v", name, b, i, got.OutShape, want.OutShape)
				}
			}
		}
	}
}

// TestRebatchValidation checks the error and no-op paths.
func TestRebatchValidation(t *testing.T) {
	n := buildTinyCNN()
	if err := n.Rebatch(0); err == nil {
		t.Fatal("Rebatch(0) on an uninferred network should error")
	}
	if err := n.Rebatch(4); err != nil { // never inferred: falls through to Infer
		t.Fatal(err)
	}
	if n.Batch() != 4 {
		t.Fatalf("Batch() = %d, want 4", n.Batch())
	}
	if err := n.Rebatch(4); err != nil { // same batch: no-op
		t.Fatal(err)
	}
	if err := n.Rebatch(-1); err == nil {
		t.Fatal("Rebatch(-1) should error")
	}
}

// fmtSignature is the fmt-based rendering Signature used before it switched
// to AppendSignature, kept here as the reference the strconv path is pinned
// against.
func fmtSignature(l *Layer) string {
	var b strings.Builder
	b.WriteString(string(l.Kind))
	switch l.Kind {
	case KindConv2D:
		fmt.Fprintf(&b, "|cin=%d|cout=%d|k=%dx%d|s=%d|p=%d|g=%d",
			l.Cin, l.Cout, l.KH, l.KW, l.Stride, l.Pad, l.Groups)
	case KindLinear:
		fmt.Fprintf(&b, "|in=%d|out=%d", l.InFeatures, l.OutFeatures)
	case KindMaxPool2D, KindAvgPool2D:
		fmt.Fprintf(&b, "|k=%dx%d|s=%d|p=%d", l.KH, l.KW, l.Stride, l.Pad)
	case KindEmbedding:
		fmt.Fprintf(&b, "|vocab=%d|dim=%d", l.VocabSize, l.EmbedDim)
	case KindMatMul:
		fmt.Fprintf(&b, "|heads=%d|tb=%t", l.Heads, l.TransposeB)
	}
	fmt.Fprintf(&b, "|in=%s|out=%s", l.InShape, l.OutShape)
	return b.String()
}

// TestAppendSignatureMatchesSignature pins Signature/AppendSignature to the
// fmt-based rendering they replaced, across every layer kind the builders
// produce, both before and after shape inference. The mapping tables learned
// by the KW models are keyed by these strings, so the rendering is a
// compatibility contract, not a formatting choice.
func TestAppendSignatureMatchesSignature(t *testing.T) {
	for _, build := range []func() *Network{buildTinyCNN, buildTinyTransformer} {
		n := build()
		check := func(stage string) {
			for i, l := range n.Layers {
				want := fmtSignature(l)
				if got := l.Signature(); got != want {
					t.Fatalf("%s %s layer %d: Signature = %q, want %q", n.Name, stage, i, got, want)
				}
				if got := string(l.AppendSignature(nil)); got != want {
					t.Fatalf("%s %s layer %d: AppendSignature = %q, want %q", n.Name, stage, i, got, want)
				}
			}
		}
		check("uninferred")
		if err := n.Infer(8); err != nil {
			t.Fatal(err)
		}
		check("inferred")
	}
}
