// Package dnn provides a framework-independent representation of deep neural
// networks: layers, the network DAG that connects them, static shape
// inference, and the structural work metrics (FLOPs and byte traffic) that the
// performance models in internal/core consume.
//
// The representation deliberately mirrors the level at which the MICRO'23
// paper "Path Forward Beyond Simulators" operates: a network is a topological
// list of layers, each layer knows its parameters and (after shape inference
// at a given batch size) its input/output tensor shapes, and from those two
// pieces of information alone all model inputs — total FLOPs, per-layer
// FLOPs, and the input/output NCHW products used by the kernel-wise model —
// can be derived without executing anything.
package dnn

import (
	"fmt"
	"strconv"
	"strings"
)

// Shape is a tensor shape. By convention dimension 0 is the batch size once a
// network has been inferred at a concrete batch size; before inference,
// network input shapes exclude the batch dimension (e.g. {3, 224, 224} for an
// ImageNet image, {128} for a 128-token text sequence).
type Shape []int

// Numel returns the total number of elements described by the shape.
// An empty shape has zero elements.
func (s Shape) Numel() int64 {
	if len(s) == 0 {
		return 0
	}
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Clone returns a copy of the shape that shares no storage with s.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and dimensions.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every dimension is strictly positive.
func (s Shape) Valid() bool {
	if len(s) == 0 {
		return false
	}
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// Batch returns dimension 0, the batch size of an inferred shape.
func (s Shape) Batch() int {
	if len(s) == 0 {
		return 0
	}
	return s[0]
}

// Channels returns the channel dimension of an inferred NCHW shape, or the
// feature dimension of an (N, F) / (N, T, D) shape.
func (s Shape) Channels() int {
	switch len(s) {
	case 0, 1:
		return 0
	default:
		return s[1]
	}
}

// Spatial returns the product of all dimensions after the channel dimension
// (H*W for NCHW, 1 for flat shapes).
func (s Shape) Spatial() int64 {
	if len(s) <= 2 {
		return 1
	}
	p := int64(1)
	for _, d := range s[2:] {
		p *= int64(d)
	}
	return p
}

// WithBatch returns a new shape with the batch dimension n prepended.
func (s Shape) WithBatch(n int) Shape {
	out := make(Shape, 0, len(s)+1)
	out = append(out, n)
	out = append(out, s...)
	return out
}

// String renders the shape as, e.g., "(64, 3, 224, 224)".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// appendString appends the String rendering to dst without allocating.
func (s Shape) appendString(dst []byte) []byte {
	dst = append(dst, '(')
	for i, d := range s {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = strconv.AppendInt(dst, int64(d), 10)
	}
	return append(dst, ')')
}
