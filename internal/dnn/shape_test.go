package dnn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeNumel(t *testing.T) {
	tests := []struct {
		name string
		s    Shape
		want int64
	}{
		{"empty", Shape{}, 0},
		{"scalar-dim", Shape{1}, 1},
		{"vector", Shape{7}, 7},
		{"nchw", Shape{2, 3, 4, 5}, 120},
		{"imagenet", Shape{64, 3, 224, 224}, 64 * 3 * 224 * 224},
	}
	for _, tt := range tests {
		if got := tt.s.Numel(); got != tt.want {
			t.Errorf("%s: Numel() = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestShapeCloneIndependence(t *testing.T) {
	s := Shape{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatalf("Clone shares storage: s = %v", s)
	}
	if !s.Equal(Shape{1, 2, 3}) {
		t.Fatalf("original mutated: %v", s)
	}
}

func TestShapeEqual(t *testing.T) {
	tests := []struct {
		a, b Shape
		want bool
	}{
		{Shape{1, 2}, Shape{1, 2}, true},
		{Shape{1, 2}, Shape{2, 1}, false},
		{Shape{1, 2}, Shape{1, 2, 3}, false},
		{Shape{}, Shape{}, true},
		{nil, Shape{}, true},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%v.Equal(%v) = %t, want %t", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestShapeValid(t *testing.T) {
	if (Shape{}).Valid() {
		t.Error("empty shape should be invalid")
	}
	if (Shape{3, 0, 2}).Valid() {
		t.Error("zero dimension should be invalid")
	}
	if (Shape{3, -1}).Valid() {
		t.Error("negative dimension should be invalid")
	}
	if !(Shape{3, 224, 224}).Valid() {
		t.Error("positive shape should be valid")
	}
}

func TestShapeAccessors(t *testing.T) {
	s := Shape{8, 64, 14, 14}
	if s.Batch() != 8 {
		t.Errorf("Batch() = %d, want 8", s.Batch())
	}
	if s.Channels() != 64 {
		t.Errorf("Channels() = %d, want 64", s.Channels())
	}
	if s.Spatial() != 196 {
		t.Errorf("Spatial() = %d, want 196", s.Spatial())
	}
	if s.Rank() != 4 {
		t.Errorf("Rank() = %d, want 4", s.Rank())
	}
	flat := Shape{8, 1000}
	if flat.Spatial() != 1 {
		t.Errorf("flat Spatial() = %d, want 1", flat.Spatial())
	}
	if (Shape{}).Batch() != 0 || (Shape{5}).Channels() != 0 {
		t.Error("degenerate accessors should return 0")
	}
}

func TestShapeWithBatch(t *testing.T) {
	s := Shape{3, 224, 224}
	b := s.WithBatch(16)
	if !b.Equal(Shape{16, 3, 224, 224}) {
		t.Fatalf("WithBatch = %v", b)
	}
	if !s.Equal(Shape{3, 224, 224}) {
		t.Fatalf("WithBatch mutated receiver: %v", s)
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{2, 3}).String(); got != "(2, 3)" {
		t.Errorf("String() = %q", got)
	}
	if got := (Shape{}).String(); got != "()" {
		t.Errorf("empty String() = %q", got)
	}
}

// TestShapeNumelProperty checks Numel's product law on random valid shapes.
func TestShapeNumelProperty(t *testing.T) {
	f := func(dims []uint8) bool {
		s := make(Shape, 0, len(dims))
		want := int64(1)
		for _, d := range dims {
			v := int(d%16) + 1
			s = append(s, v)
			want *= int64(v)
		}
		if len(s) == 0 {
			return true
		}
		return s.Numel() == want && s.Valid()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestShapeWithBatchProperty: prepending a batch multiplies Numel by it.
func TestShapeWithBatchProperty(t *testing.T) {
	f := func(dims []uint8, batch uint8) bool {
		s := make(Shape, 0, len(dims))
		for _, d := range dims {
			s = append(s, int(d%8)+1)
		}
		if len(s) == 0 {
			return true
		}
		n := int(batch%64) + 1
		return s.WithBatch(n).Numel() == int64(n)*s.Numel()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestKindsEnumeratesEverything(t *testing.T) {
	// Every kind used by the builders must appear in Kinds() exactly once.
	kinds := Kinds()
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate kind %q", k)
		}
		seen[k] = true
	}
	for _, k := range []Kind{KindConv2D, KindLinear, KindBatchNorm, KindLayerNorm,
		KindReLU, KindReLU6, KindGELU, KindSigmoid, KindSoftmax, KindMaxPool2D,
		KindAvgPool2D, KindGlobalAvgPool, KindAdd, KindConcat, KindFlatten,
		KindDropout, KindChannelShuffle, KindEmbedding, KindMatMul,
		KindReshapeTokens, KindIdentity} {
		if !seen[k] {
			t.Fatalf("Kinds() missing %q", k)
		}
	}
}

func TestLayerBytesAccounting(t *testing.T) {
	n := New("b", "Test", TaskImageClassification, Shape{3, 8, 8})
	conv := n.Conv(NetworkInput, 3, 4, 3, 1, 1)
	add := n.Residual(conv, conv)
	if err := n.Infer(2); err != nil {
		t.Fatal(err)
	}
	c := n.Layers[conv]
	if got, want := LayerInputBytes(c), int64(2*3*8*8*4); got != want {
		t.Fatalf("conv input bytes = %d, want %d", got, want)
	}
	if got, want := LayerOutputBytes(c), int64(2*4*8*8*4); got != want {
		t.Fatalf("conv output bytes = %d, want %d", got, want)
	}
	if got, want := LayerWeightBytes(c), int64(4*3*9*4); got != want {
		t.Fatalf("conv weight bytes = %d, want %d", got, want)
	}
	// Multi-input layers sum every input tensor.
	a := n.Layers[add]
	if got, want := LayerInputBytes(a), int64(2*2*4*8*8*4); got != want {
		t.Fatalf("add input bytes = %d, want %d", got, want)
	}
	if LayerBytes(c) != LayerInputBytes(c)+LayerWeightBytes(c)+LayerOutputBytes(c) {
		t.Fatal("LayerBytes is not the sum of its parts")
	}
}
