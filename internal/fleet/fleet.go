// Package fleet turns N dnnperf serve replicas into one serving tier. A
// stdlib-only reverse proxy shards prediction requests across the replicas
// with a consistent-hash ring keyed by the request's network identity — the
// same key the replicas' plan caches use — so each replica's singleflight
// plan-cache LRU holds a (mostly) disjoint slice of the key space and the
// fleet's aggregate cache capacity scales linearly with replica count.
//
// The proxy is health-aware and self-protecting:
//
//   - Routing only considers replicas whose /readyz reports a warmed model;
//     a background prober refreshes readiness continuously.
//   - Connection-level failures (refused, reset) mark the replica unready
//     immediately and retry the next ring owner, bounded by Options.Retries.
//   - Admission control: each replica has an in-flight cap. A request whose
//     owner is saturated spills to the next ready owner on the ring; when
//     the whole fleet is above the high watermark the proxy sheds the
//     request with 429 and a Retry-After hint instead of queueing — the
//     open-loop-safe response to compile queues backing up.
//
// Endpoints served by the proxy itself: /healthz (proxy liveness),
// /readyz (≥1 ready replica), /fleetz (full fleet introspection JSON).
// Everything else is forwarded.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Proxy-level observability.
var (
	metricRequests = obs.Default().Counter("fleet_proxy_requests_total",
		"Requests handled by the fleet proxy.")
	metricForwarded = obs.Default().Counter("fleet_forwarded_total",
		"Requests forwarded to a replica.")
	metricRetries = obs.Default().Counter("fleet_retries_total",
		"Forward attempts retried on another replica after a connection failure.")
	metricSpills = obs.Default().Counter("fleet_spills_total",
		"Requests routed past their saturated ring owner to another ready replica.")
	metricRejected = obs.Default().Counter("fleet_admission_rejected_total",
		"Requests shed with 429 by admission control.")
	metricUnavailable = obs.Default().Counter("fleet_unavailable_total",
		"Requests answered 503 because no ready replica existed.")
	metricProxyErrors = obs.Default().Counter("fleet_proxy_errors_total",
		"Requests answered 502 after exhausting every forward attempt.")
	metricLatency = obs.Default().Histogram("fleet_proxy_seconds",
		"Proxy request latency, including the replica round trip.", nil)
	metricInflight = obs.Default().Gauge("fleet_inflight_requests",
		"Requests currently being forwarded, fleet-wide.")
)

// vnodesPerReplica is the ring's virtual-node fan-out. 64 points per replica
// keeps the key-space split within a few percent of even for small fleets.
const vnodesPerReplica = 64

// maxBufferedBody bounds the request body the proxy will buffer for
// retryable forwarding; longer bodies get 413 (mirroring the replicas' cap).
const maxBufferedBody = 1 << 20

// Options tunes a Proxy.
type Options struct {
	// MaxInflight caps concurrently forwarded requests per replica; 0 means
	// 256. Admission control sheds load with 429 once every ready replica is
	// at its cap (the queue-depth high watermark).
	MaxInflight int
	// Retries bounds how many additional replicas a request may try after a
	// connection-level failure; 0 means 2.
	Retries int
	// HealthInterval is the readiness probe period; 0 means 250ms.
	HealthInterval time.Duration
	// Timeout bounds one forwarded request; 0 means 30s.
	Timeout time.Duration
	// RetryAfter is the hint returned with 429 responses, in seconds; 0
	// means 1.
	RetryAfter int
	// SampleEvery is the head-based trace sampling period: 1 in SampleEvery
	// forwarded requests gets a full trace (the first always does); 0 means
	// 64. Requests arriving with a valid sampled traceparent header are
	// always traced.
	SampleEvery int
	// SlowSample is the latency past which an unsampled request still gets a
	// post-hoc summary span; 0 means 250ms.
	SlowSample time.Duration
	// ProcessName labels the proxy's track group in merged Perfetto
	// timelines; empty means "proxy".
	ProcessName string
}

func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.Retries <= 0 {
		o.Retries = 2
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 250 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 1
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 64
	}
	if o.SlowSample <= 0 {
		o.SlowSample = 250 * time.Millisecond
	}
	if o.ProcessName == "" {
		o.ProcessName = "proxy"
	}
	return o
}

// replica is one backend and its routing state.
type replica struct {
	addr     string // host:port
	ready    atomic.Bool
	inflight atomic.Int64
	// modelVersion mirrors the replica's /readyz model version for /fleetz.
	modelVersion atomic.Uint64
}

// ringPoint is one virtual node: a hash position owned by a replica.
type ringPoint struct {
	hash uint64
	idx  int // index into Proxy.replicas
}

// Proxy is the sharding reverse proxy. Create with New, then Start the
// health prober; the Proxy itself is an http.Handler.
type Proxy struct {
	opt      Options
	replicas []*replica
	ring     []ringPoint
	client   *http.Client
	probes   *http.Client

	// tracer holds the proxy's own span buffer; reqTrack is the single
	// reserved track every request span lands on (one timeline row per
	// process in the merged view), sampleN drives head sampling.
	tracer   *obs.Tracer
	reqTrack int64
	sampleN  atomic.Uint64
	slo      *obs.SLOTracker

	wg sync.WaitGroup
}

// New builds a proxy over the replica addresses (host:port each).
func New(addrs []string, opt Options) (*Proxy, error) {
	if len(addrs) == 0 {
		return nil, errors.New("fleet: no replicas")
	}
	opt = opt.withDefaults()
	p := &Proxy{
		opt: opt,
		client: &http.Client{
			Timeout: opt.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        4 * opt.MaxInflight,
				MaxIdleConnsPerHost: opt.MaxInflight,
			},
		},
		probes: &http.Client{Timeout: 2 * time.Second},
		tracer: obs.NewTracer(),
	}
	p.reqTrack = p.tracer.ReserveTrack()
	// Availability counts 502 (exhausted forwards) and 503 (no ready
	// replica) as bad; 429 is deliberate shedding, not a broken promise, so
	// it burns no availability budget.
	p.slo = obs.NewSLOTracker(obs.SLOConfig{},
		metricRequests.Value,
		func() int64 { return metricProxyErrors.Value() + metricUnavailable.Value() },
		metricLatency)
	for i, addr := range addrs {
		if addr == "" {
			return nil, fmt.Errorf("fleet: replica %d has an empty address", i)
		}
		p.replicas = append(p.replicas, &replica{addr: addr})
		for v := 0; v < vnodesPerReplica; v++ {
			p.ring = append(p.ring, ringPoint{hash: mix64(fnv64(fmt.Sprintf("%s#%d", addr, v))), idx: i})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool { return p.ring[i].hash < p.ring[j].hash })
	return p, nil
}

// Start launches the readiness prober; it stops when ctx is cancelled. Wait
// returns once the prober goroutine has exited.
func (p *Proxy) Start(ctx context.Context) {
	p.probeAll()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.opt.HealthInterval)
		defer t.Stop()
		// SLO burn-rate windows need periodic counter samples; piggyback on
		// the prober goroutine rather than spawning another.
		slo := time.NewTicker(2 * time.Second)
		defer slo.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.probeAll()
			case <-slo.C:
				p.slo.Sample()
			}
		}
	}()
}

// Wait blocks until the prober has stopped.
func (p *Proxy) Wait() { p.wg.Wait() }

// probeAll refreshes every replica's readiness from its /readyz endpoint.
func (p *Proxy) probeAll() {
	var wg sync.WaitGroup
	for _, r := range p.replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			r.ready.Store(p.probe(r))
		}(r)
	}
	wg.Wait()
}

// probe asks one replica for readiness and records its model version.
func (p *Proxy) probe(r *replica) bool {
	resp, err := p.probes.Get("http://" + r.addr + "/readyz")
	if err != nil {
		return false
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var body struct {
		ModelVersion uint64 `json:"model_version"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err == nil {
		r.modelVersion.Store(body.ModelVersion)
	}
	return true
}

// ReadyCount returns how many replicas currently pass readiness.
func (p *Proxy) ReadyCount() int {
	n := 0
	for _, r := range p.replicas {
		if r.ready.Load() {
			n++
		}
	}
	return n
}

// WaitReady blocks until want replicas are ready or ctx expires.
func (p *Proxy) WaitReady(ctx context.Context, want int) error {
	for {
		p.probeAll()
		if p.ReadyCount() >= want {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: %d/%d replicas ready: %w", p.ReadyCount(), want, ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// mix64 is the splitmix64 finalizer. FNV-1a over near-identical short
// strings ("host:port#3" vs "host:port#4") leaves its low entropy clustered;
// avalanching the output spreads ring points evenly so every replica owns a
// fair slice of the key space.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64 is FNV-1a, matching the hashing the replicas' caches build on.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// shardKey extracts the routing key for a request: the network identity.
// GET requests carry it as ?network=; buffered POST bodies are scanned for
// the "network" field, falling back to hashing the whole body (an inline
// network_spec IS the network identity). Requests with no network identity
// (metrics, health) hash their path so they spread deterministically.
func shardKey(r *http.Request, body []byte) uint64 {
	if net := queryNetwork(r.URL.RawQuery); net != "" {
		return fnv64(net)
	}
	if len(body) > 0 {
		if net := jsonStringField(body, "network"); net != "" {
			return fnv64(net)
		}
		h := uint64(14695981039346656037)
		for _, b := range body {
			h ^= uint64(b)
			h *= 1099511628211
		}
		return h
	}
	return fnv64(r.URL.Path)
}

// queryNetwork pulls the network parameter straight off the raw query.
func queryNetwork(rawQuery string) string {
	for len(rawQuery) > 0 {
		var pair string
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			pair, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			pair, rawQuery = rawQuery, ""
		}
		if v, ok := strings.CutPrefix(pair, "network="); ok {
			if u, err := url.QueryUnescape(v); err == nil {
				return u
			}
			return v
		}
	}
	return ""
}

// jsonStringField scans raw JSON for a top-level-ish `"name": "value"` pair
// without decoding the document. Good enough for routing: a false miss just
// hashes the body instead.
func jsonStringField(body []byte, name string) string {
	needle := []byte(`"` + name + `"`)
	i := bytes.Index(body, needle)
	if i < 0 {
		return ""
	}
	rest := body[i+len(needle):]
	j := bytes.IndexByte(rest, ':')
	if j < 0 {
		return ""
	}
	rest = bytes.TrimLeft(rest[j+1:], " \t\r\n")
	if len(rest) == 0 || rest[0] != '"' {
		return ""
	}
	rest = rest[1:]
	k := bytes.IndexByte(rest, '"')
	if k < 0 {
		return ""
	}
	return string(rest[:k])
}

// owners yields the ring walk for a hash: the owner replica first, then each
// distinct successor. The returned slice is indices into p.replicas.
func (p *Proxy) owners(hash uint64) []int {
	hash = mix64(hash) // spread clustered key hashes before the ring walk
	// First ring point with hash >= key, wrapping.
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= hash })
	if i == len(p.ring) {
		i = 0
	}
	out := make([]int, 0, len(p.replicas))
	seen := make(map[int]bool, len(p.replicas))
	for n := 0; n < len(p.ring) && len(out) < len(p.replicas); n++ {
		idx := p.ring[(i+n)%len(p.ring)].idx
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// Owner returns the ready ring owner's address for a network name — the
// replica a /predict?network=name request will be forwarded to. Exposed for
// tests and /fleetz introspection.
func (p *Proxy) Owner(network string) (string, bool) {
	for _, idx := range p.owners(fnv64(network)) {
		if r := p.replicas[idx]; r.ready.Load() {
			return r.addr, true
		}
	}
	return "", false
}

// ServeHTTP implements the proxy.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	metricRequests.Inc()
	tm := obs.StartTimer(metricLatency)
	defer tm.Stop()

	switch req.URL.Path {
	case "/healthz":
		p.writeHealth(w)
		return
	case "/readyz":
		p.writeReady(w)
		return
	case "/fleetz":
		p.writeFleetz(w)
		return
	case "/metricsz":
		p.writeMetricsz(w)
		return
	case "/sloz":
		p.writeSloz(w)
		return
	case "/tracez.json":
		p.writeTracez(w)
		return
	}

	// Head-based sampling: the decision is one counter increment; all span
	// allocation happens only on the sampled path. The trace ID is echoed
	// before any write so the client always sees it.
	rt := p.sampleRequest(req)
	unsampledStart := p.tracer.Now()
	if rt != nil {
		w.Header().Set(TraceIDHeader, rt.sc.TraceID())
	}
	status := p.route(w, req, rt)
	if rt != nil {
		rt.finish(req.Method, req.URL.Path, status)
	} else {
		p.recordBadUnsampled(req.Method, req.URL.Path, status, unsampledStart, p.tracer.Now())
	}
}

// route buffers the body, walks the ring, and forwards; it returns the
// status committed to the client. rt is nil for unsampled requests.
func (p *Proxy) route(w http.ResponseWriter, req *http.Request, rt *proxyTrace) int {
	// Buffer the body once so retries can replay it.
	var body []byte
	if req.Body != nil && req.Body != http.NoBody {
		b, err := io.ReadAll(io.LimitReader(req.Body, maxBufferedBody+1))
		req.Body.Close()
		if err != nil {
			writeError(w, http.StatusBadGateway, "reading request body: "+err.Error())
			return http.StatusBadGateway
		}
		if len(b) > maxBufferedBody {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", maxBufferedBody))
			return http.StatusRequestEntityTooLarge
		}
		body = b
	}

	owners := p.owners(shardKey(req, body))
	rt.stage("shard_pick")

	// Admission + readiness walk: the first ready owner under its in-flight
	// cap gets the request; saturated owners are spilled past. If a ready
	// owner exists but all are saturated → 429; if none is ready → 503.
	attempts := 0
	sawReady := false
	sawSpill := false
	for _, idx := range owners {
		r := p.replicas[idx]
		if !r.ready.Load() {
			continue
		}
		sawReady = true
		if r.inflight.Load() >= int64(p.opt.MaxInflight) {
			sawSpill = true
			continue
		}
		if attempts > p.opt.Retries {
			break
		}
		if attempts > 0 {
			metricRetries.Inc()
		}
		if sawSpill {
			metricSpills.Inc()
			sawSpill = false
		}
		attempts++
		rt.stage("admission")
		hopStart := p.tracer.Now()
		status, retryable := p.forward(w, req, r, body, rt)
		rt.hop(attempts, r.addr, hopStart)
		if !retryable {
			return status
		}
		// Connection-level failure: the prober will confirm, but don't wait.
		r.ready.Store(false)
	}

	if attempts > 0 {
		metricProxyErrors.Inc()
		writeError(w, http.StatusBadGateway, "every forward attempt failed")
		return http.StatusBadGateway
	}
	rt.stage("admission")
	if sawReady {
		metricRejected.Inc()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", p.opt.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "fleet saturated: all ready replicas at their in-flight cap")
		return http.StatusTooManyRequests
	}
	metricUnavailable.Inc()
	writeError(w, http.StatusServiceUnavailable, "no ready replica")
	return http.StatusServiceUnavailable
}

// forward sends the request to one replica and relays the response. It
// reports retryable=true only for connection-level failures where no
// response bytes reached the client. A sampled request propagates its trace
// context downstream, with a fresh span ID per attempt.
func (p *Proxy) forward(w http.ResponseWriter, req *http.Request, r *replica, body []byte, rt *proxyTrace) (int, bool) {
	r.inflight.Add(1)
	metricInflight.Add(1)
	defer func() {
		r.inflight.Add(-1)
		metricInflight.Add(-1)
	}()

	out, err := http.NewRequestWithContext(req.Context(), req.Method,
		"http://"+r.addr+req.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return http.StatusBadGateway, false
	}
	copyHeaders(out.Header, req.Header)
	out.Header.Set("X-Forwarded-For", req.RemoteAddr)
	if rt != nil {
		out.Header.Set("traceparent", rt.sc.Child().Traceparent())
	}

	metricForwarded.Inc()
	resp, err := p.client.Do(out)
	if err != nil {
		// Nothing was written to the client yet; safe to retry elsewhere.
		return 0, true
	}
	defer resp.Body.Close()

	copyHeaders(w.Header(), resp.Header)
	w.Header().Set("X-Fleet-Replica", r.addr)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return resp.StatusCode, false
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		dst[k] = vs
	}
}

// writeHealth reports proxy liveness.
func (p *Proxy) writeHealth(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"replicas": len(p.replicas),
		"ready":    p.ReadyCount(),
	})
}

// writeReady answers 200 when at least one replica can take traffic.
func (p *Proxy) writeReady(w http.ResponseWriter) {
	ready := p.ReadyCount()
	status := http.StatusOK
	if ready == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":    ready > 0,
		"replicas": len(p.replicas),
		"warmed":   ready,
	})
}

// ReplicaStatus is one row of the /fleetz introspection response.
type ReplicaStatus struct {
	Addr         string `json:"addr"`
	Ready        bool   `json:"ready"`
	Inflight     int64  `json:"inflight"`
	ModelVersion uint64 `json:"model_version"`
}

// Fleetz snapshots per-replica routing state: address, readiness, in-flight
// count, and the model version the last probe observed.
func (p *Proxy) Fleetz() []ReplicaStatus {
	rows := make([]ReplicaStatus, len(p.replicas))
	for i, r := range p.replicas {
		rows[i] = ReplicaStatus{
			Addr:         r.addr,
			Ready:        r.ready.Load(),
			Inflight:     r.inflight.Load(),
			ModelVersion: r.modelVersion.Load(),
		}
	}
	return rows
}

// writeFleetz dumps the routing state.
func (p *Proxy) writeFleetz(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, map[string]any{
		"replicas":     p.Fleetz(),
		"vnodes":       vnodesPerReplica,
		"max_inflight": p.opt.MaxInflight,
		"retries":      p.opt.Retries,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
