package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeReplica is an httptest stand-in for a dnnperf serve process: it
// answers /readyz like a warmed replica and tags every other response with
// its own name so tests can observe routing.
type fakeReplica struct {
	name    string
	srv     *httptest.Server
	mu      sync.Mutex
	served  map[string]int // shard key (network) -> count
	handler http.HandlerFunc
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{name: name, served: map[string]int{}}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"ready":true,"model_version":7}`)
			return
		}
		f.mu.Lock()
		f.served[r.URL.Query().Get("network")]++
		f.mu.Unlock()
		if f.handler != nil {
			f.handler(w, r)
			return
		}
		w.Header().Set("X-Replica-Name", f.name)
		fmt.Fprint(w, f.name)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func (f *fakeReplica) count(network string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.served[network]
}

// startProxy builds a started proxy over the replicas and an httptest
// front-end serving it.
func startProxy(t *testing.T, opt Options, reps ...*fakeReplica) (*Proxy, *httptest.Server) {
	t.Helper()
	addrs := make([]string, len(reps))
	for i, r := range reps {
		addrs[i] = r.addr()
	}
	p, err := New(addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(func() { cancel(); p.Wait() })
	p.Start(ctx)
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestShardingIsDeterministicAndSpreads(t *testing.T) {
	reps := []*fakeReplica{
		newFakeReplica(t, "r0"), newFakeReplica(t, "r1"),
		newFakeReplica(t, "r2"), newFakeReplica(t, "r3"),
	}
	p, front := startProxy(t, Options{}, reps...)

	// The same network always lands on its ring owner.
	owner, ok := p.Owner("resnet50")
	if !ok {
		t.Fatal("no ready owner for resnet50")
	}
	var ownerName string
	for i := 0; i < 10; i++ {
		status, body := get(t, front.URL+"/predict?network=resnet50&batch=8")
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if ownerName == "" {
			ownerName = body
		} else if body != ownerName {
			t.Fatalf("request %d landed on %q, earlier ones on %q", i, body, ownerName)
		}
	}
	for _, r := range reps {
		if r.addr() == owner && r.count("resnet50") != 10 {
			t.Fatalf("ring owner %s served %d of 10 requests", owner, r.count("resnet50"))
		}
	}

	// Distinct networks spread across more than one replica.
	hit := map[string]bool{}
	for i := 0; i < 32; i++ {
		_, body := get(t, fmt.Sprintf("%s/predict?network=net-%d&batch=1", front.URL, i))
		hit[body] = true
	}
	if len(hit) < 2 {
		t.Fatalf("32 distinct networks all routed to one replica: %v", hit)
	}
}

func TestShardKeyFromPOSTBody(t *testing.T) {
	body := []byte(`{"network": "bert-large", "batches": [1, 8]}`)
	req, _ := http.NewRequest(http.MethodPost, "http://x/predict/batch", nil)
	if got, want := shardKey(req, body), fnv64("bert-large"); got != want {
		t.Fatalf("POST body shard key = %d, want fnv(network)=%d", got, want)
	}
	// Query param wins over the body when both exist.
	req, _ = http.NewRequest(http.MethodPost, "http://x/predict?network=vgg16", nil)
	if got, want := shardKey(req, body), fnv64("vgg16"); got != want {
		t.Fatalf("query-vs-body precedence: got %d, want %d", got, want)
	}
	// No network anywhere: whole-body hash, still deterministic.
	raw := []byte(`{"layers": [1, 2, 3]}`)
	req, _ = http.NewRequest(http.MethodPost, "http://x/predict/batch", nil)
	if shardKey(req, raw) != shardKey(req, raw) {
		t.Fatal("body hash not deterministic")
	}
}

func TestHealthAwareRerouting(t *testing.T) {
	r0 := newFakeReplica(t, "r0")
	r1 := newFakeReplica(t, "r1")
	p, front := startProxy(t, Options{HealthInterval: 20 * time.Millisecond}, r0, r1)

	// Find a network owned by r0 so its death forces rerouting.
	var net string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("owned-%d", i)
		if owner, ok := p.Owner(cand); ok && owner == r0.addr() {
			net = cand
			break
		}
	}
	if status, body := get(t, front.URL+"/predict?network="+net); status != http.StatusOK || body != "r0" {
		t.Fatalf("pre-kill: status=%d body=%q, want 200 r0", status, body)
	}

	r0.srv.Close() // replica dies

	// The very next request must still succeed: the refused connection is
	// retried against the ring successor without waiting for the prober.
	if status, body := get(t, front.URL+"/predict?network="+net); status != http.StatusOK || body != "r1" {
		t.Fatalf("post-kill: status=%d body=%q, want 200 r1", status, body)
	}

	// The prober then keeps r0 out of the ready set.
	time.Sleep(100 * time.Millisecond)
	if owner, ok := p.Owner(net); !ok || owner != r1.addr() {
		t.Fatalf("owner after death = %q (ok=%t), want %s", owner, ok, r1.addr())
	}
}

func TestAdmissionControl429(t *testing.T) {
	release := make(chan struct{})
	slow := newFakeReplica(t, "slow")
	slow.handler = func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	}
	_, front := startProxy(t, Options{MaxInflight: 1}, slow)

	// Occupy the only in-flight slot.
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(front.URL + "/predict?network=a")
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the first request is held inside the replica.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if slow.count("a") == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the replica")
		}
		time.Sleep(time.Millisecond)
	}

	// Second request: the only ready replica is at its cap → shed with 429.
	resp, err := http.Get(front.URL + "/predict?network=b")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
}

func TestRetryOnRefusedIsBounded(t *testing.T) {
	// A listener that is closed immediately: connections are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	alive := newFakeReplica(t, "alive")
	p, err := New([]string{deadAddr, alive.addr()}, Options{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Force both "ready" so the dead one is actually attempted.
	for _, r := range p.replicas {
		r.ready.Store(true)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	// Whatever the ring owner is, every request must end on the live
	// replica via the bounded retry walk.
	for i := 0; i < 8; i++ {
		status, body := get(t, fmt.Sprintf("%s/predict?network=n-%d", front.URL, i))
		if status != http.StatusOK || body != "alive" {
			t.Fatalf("request %d: status=%d body=%q", i, status, body)
		}
		p.replicas[0].ready.Store(true) // resurrect for the next round
	}
}

func TestNoReadyReplicas503(t *testing.T) {
	r0 := newFakeReplica(t, "r0")
	p, err := New([]string{r0.addr()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Never started, never probed: nothing is ready.
	front := httptest.NewServer(p)
	defer front.Close()

	status, _ := get(t, front.URL+"/predict?network=x")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	status, _ = get(t, front.URL+"/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with no ready replicas, want 503", status)
	}
}

func TestFleetzIntrospection(t *testing.T) {
	r0 := newFakeReplica(t, "r0")
	r1 := newFakeReplica(t, "r1")
	p, front := startProxy(t, Options{MaxInflight: 5, Retries: 1}, r0, r1)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.WaitReady(ctx, 2); err != nil {
		t.Fatal(err)
	}

	status, body := get(t, front.URL+"/fleetz")
	if status != http.StatusOK {
		t.Fatalf("/fleetz status %d", status)
	}
	var got struct {
		Replicas    []ReplicaStatus `json:"replicas"`
		VNodes      int             `json:"vnodes"`
		MaxInflight int             `json:"max_inflight"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("decoding /fleetz: %v\n%s", err, body)
	}
	if len(got.Replicas) != 2 || got.VNodes != vnodesPerReplica || got.MaxInflight != 5 {
		t.Fatalf("/fleetz = %+v", got)
	}
	for _, r := range got.Replicas {
		if !r.Ready || r.ModelVersion != 7 || r.Inflight != 0 {
			t.Fatalf("replica row %+v, want ready with model_version 7", r)
		}
	}

	status, body = get(t, front.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"ready": 2`) {
		t.Fatalf("/healthz = %d %s", status, body)
	}
}

func TestBodyTooLarge413(t *testing.T) {
	r0 := newFakeReplica(t, "r0")
	_, front := startProxy(t, Options{}, r0)

	big := strings.NewReader(strings.Repeat("x", maxBufferedBody+1))
	resp, err := http.Post(front.URL+"/predict/batch", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestRingIsBalanced(t *testing.T) {
	addrs := []string{"10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1", "10.0.0.4:1"}
	p, err := New(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(addrs))
	const keys = 4096
	for i := 0; i < keys; i++ {
		owners := p.owners(fnv64(fmt.Sprintf("network-%d", i)))
		counts[owners[0]]++
	}
	for i, c := range counts {
		frac := float64(c) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("replica %d owns %.0f%% of the key space; ring badly unbalanced: %v",
				i, 100*frac, counts)
		}
	}
}
