package fleet

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Request tracing at the proxy. The proxy is the head of every request, so
// it owns the sampling decision: 1 in Options.SampleEvery forwarded requests
// gets a fresh trace (the first forwarded request is always sampled), and a
// request arriving with a valid sampled `traceparent` header continues its
// existing trace. Sampled requests carry their context to the replica in a
// `traceparent` header and echo the trace ID to the client in `X-Trace-Id`;
// the proxy's own stages (shard pick, admission, upstream wait, retry hops)
// are recorded as Complete events on one reserved track, so the whole
// process renders as a single timeline row in Perfetto.
//
// Unsampled requests cost one counter increment and two clock reads; if one
// turns out bad — 5xx, or slower than Options.SlowSample — a single summary
// span is recorded post-hoc so tail latency is never invisible. (Post-hoc
// means the response headers are already gone; deliberate trade: the header
// echo only exists for head-sampled requests.)

// TraceIDHeader is the response header echoing the request's trace ID.
const TraceIDHeader = "X-Trace-Id"

// traceparentHeader is the W3C propagation header, canonical form.
const traceparentHeader = "Traceparent"

// proxyTrace follows one sampled request through the proxy.
type proxyTrace struct {
	p     *Proxy
	sc    obs.SpanContext
	start time.Duration
	last  time.Duration
}

// sampleRequest decides whether this forwarded request is traced. Returns
// nil for unsampled requests — every method on a nil *proxyTrace is a no-op.
func (p *Proxy) sampleRequest(req *http.Request) *proxyTrace {
	if sc, ok := obs.ParseTraceparent(traceparentOf(req.Header)); ok && sc.Flags&obs.FlagSampled != 0 {
		return p.newProxyTrace(sc.Child())
	}
	n := p.sampleN.Add(1)
	if (n-1)%uint64(p.opt.SampleEvery) != 0 {
		return nil
	}
	return p.newProxyTrace(obs.NewSpanContext())
}

// traceparentOf reads the propagation header by canonical key.
func traceparentOf(h http.Header) string {
	if vs := h[traceparentHeader]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

func (p *Proxy) newProxyTrace(sc obs.SpanContext) *proxyTrace {
	now := p.tracer.Now()
	return &proxyTrace{p: p, sc: sc, start: now, last: now}
}

// stage completes a span covering everything since the previous stage
// boundary (or the request start).
func (t *proxyTrace) stage(name string) {
	if t == nil {
		return
	}
	now := t.p.tracer.Now()
	t.p.tracer.Complete(obs.TraceEvent{
		Name:  name,
		Cat:   obs.StageCat,
		Track: t.p.reqTrack,
		Start: t.last,
		Dur:   now - t.last,
		Args:  []obs.Arg{{Key: "trace_id", Val: t.sc.TraceID()}},
	})
	t.last = now
}

// hop completes one forward attempt's span: "upstream_wait" for the first
// attempt, "retry_hop" for each retry, annotated with the replica address.
func (t *proxyTrace) hop(attempt int, addr string, from time.Duration) {
	if t == nil {
		return
	}
	name := "upstream_wait"
	if attempt > 1 {
		name = "retry_hop"
	}
	now := t.p.tracer.Now()
	t.p.tracer.Complete(obs.TraceEvent{
		Name:  name,
		Cat:   obs.StageCat,
		Track: t.p.reqTrack,
		Start: from,
		Dur:   now - from,
		Args: []obs.Arg{
			{Key: "trace_id", Val: t.sc.TraceID()},
			{Key: "replica", Val: addr},
			{Key: "attempt", Val: strconv.Itoa(attempt)},
		},
	})
	t.last = now
}

// finish completes the whole-request span.
func (t *proxyTrace) finish(method, path string, status int) {
	if t == nil {
		return
	}
	now := t.p.tracer.Now()
	t.p.tracer.Complete(obs.TraceEvent{
		Name:  method + " " + path,
		Cat:   obs.RequestCat,
		Track: t.p.reqTrack,
		Start: t.start,
		Dur:   now - t.start,
		Args: []obs.Arg{
			{Key: "trace_id", Val: t.sc.TraceID()},
			{Key: "status", Val: strconv.Itoa(status)},
		},
	})
}

// recordBadUnsampled records the post-hoc summary span for an unsampled
// request that erred or exceeded the slow threshold.
func (p *Proxy) recordBadUnsampled(method, path string, status int, start, end time.Duration) {
	if status < 500 && end-start < p.opt.SlowSample {
		return
	}
	name := "slow_request"
	if status >= 500 {
		name = "error_request"
	}
	p.tracer.Complete(obs.TraceEvent{
		Name:  name,
		Cat:   obs.RequestCat,
		Track: p.reqTrack,
		Start: start,
		Dur:   end - start,
		Args: []obs.Arg{
			{Key: "route", Val: method + " " + path},
			{Key: "status", Val: strconv.Itoa(status)},
		},
	})
}

// ProcessTrace snapshots the proxy's span buffer for merged timelines.
func (p *Proxy) ProcessTrace() obs.ProcessTrace {
	return p.tracer.ProcessTrace(p.opt.ProcessName)
}

// ReplicaAddrs lists the backend addresses (for trace and metric scraping).
func (p *Proxy) ReplicaAddrs() []string {
	out := make([]string, len(p.replicas))
	for i, r := range p.replicas {
		out[i] = r.addr
	}
	return out
}

// writeTracez serves the proxy's own span buffer as a ProcessTrace document.
func (p *Proxy) writeTracez(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteProcessTrace(w, p.ProcessTrace())
}

// writeSloz serves the proxy-level SLO burn-rate report.
func (p *Proxy) writeSloz(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, p.slo.Report())
}

// writeMetricsz scrapes every replica's /metrics.json and serves the merged
// fleet view: counters and gauges summed, histograms summed bucket-wise
// (exact — all replicas run the same code with the same bucket edges).
// Replicas that fail to scrape are listed in "failed"; metric names whose
// shapes disagree are listed in "skipped".
func (p *Proxy) writeMetricsz(w http.ResponseWriter) {
	var sets [][]obs.MetricJSON
	var failed []string
	scraped := 0
	for _, r := range p.replicas {
		ms, err := p.scrapeMetrics(r.addr)
		if err != nil {
			failed = append(failed, r.addr)
			continue
		}
		scraped++
		sets = append(sets, ms)
	}
	merged, skipped := obs.MergeMetrics(sets...)
	writeJSON(w, http.StatusOK, map[string]any{
		"replicas": len(p.replicas),
		"scraped":  scraped,
		"failed":   failed,
		"skipped":  skipped,
		"metrics":  merged,
	})
}

// scrapeMetrics fetches one replica's metric document.
func (p *Proxy) scrapeMetrics(addr string) ([]obs.MetricJSON, error) {
	resp, err := p.probes.Get("http://" + addr + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errStatus(resp.StatusCode)
	}
	return obs.DecodeMetrics(resp.Body)
}

// errStatus is a minimal non-200 scrape error.
type errStatus int

func (e errStatus) Error() string { return "status " + strconv.Itoa(int(e)) }
