package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/units"
)

// traceRecordingReplica wraps a fakeReplica to capture the traceparent
// headers it receives.
type traceRecordingReplica struct {
	*fakeReplica
	mu      sync.Mutex
	parents []string
}

func newTraceRecordingReplica(t *testing.T, name string) *traceRecordingReplica {
	r := &traceRecordingReplica{fakeReplica: newFakeReplica(t, name)}
	r.handler = func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		r.parents = append(r.parents, req.Header.Get("traceparent"))
		r.mu.Unlock()
		w.Header().Set("X-Replica-Name", r.name)
		fmt.Fprint(w, r.name)
	}
	return r
}

func (r *traceRecordingReplica) seenParents() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.parents))
	copy(out, r.parents)
	return out
}

// eventsByName indexes a process trace for assertions.
func eventsByName(pt obs.ProcessTrace) map[string][]obs.TraceEvent {
	out := map[string][]obs.TraceEvent{}
	for _, ev := range pt.Events {
		out[ev.Name] = append(out[ev.Name], ev)
	}
	return out
}

func argOf(ev obs.TraceEvent, key string) string {
	for _, a := range ev.Args {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

func TestTraceIDEchoAndPropagation(t *testing.T) {
	a := newTraceRecordingReplica(t, "a")
	b := newTraceRecordingReplica(t, "b")
	p, front := startProxy(t, Options{SampleEvery: 1}, a.fakeReplica, b.fakeReplica)

	resp, err := http.Get(front.URL + "/predict?network=resnet50&batch=8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get(TraceIDHeader)
	if len(traceID) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex digits", traceID)
	}

	// The replica that served it must have received a traceparent carrying
	// the same trace ID.
	parents := append(a.seenParents(), b.seenParents()...)
	if len(parents) != 1 {
		t.Fatalf("replicas saw %d requests, want 1", len(parents))
	}
	sc, ok := obs.ParseTraceparent(parents[0])
	if !ok {
		t.Fatalf("replica received malformed traceparent %q", parents[0])
	}
	if sc.TraceID() != traceID {
		t.Fatalf("replica trace ID %s != echoed %s", sc.TraceID(), traceID)
	}
	if sc.Flags&obs.FlagSampled == 0 {
		t.Fatal("propagated context not flagged sampled")
	}

	// The proxy's span buffer must hold the request span and the stage
	// spans, all tagged with the trace ID.
	evs := eventsByName(p.ProcessTrace())
	for _, name := range []string{"GET /predict", "shard_pick", "admission", "upstream_wait"} {
		matches := evs[name]
		if len(matches) == 0 {
			t.Fatalf("proxy trace missing %q; have %v", name, names(p.ProcessTrace()))
		}
		if got := argOf(matches[0], "trace_id"); got != traceID {
			t.Fatalf("%s span trace_id = %q, want %q", name, got, traceID)
		}
	}
}

func names(pt obs.ProcessTrace) []string {
	var out []string
	for _, ev := range pt.Events {
		out = append(out, ev.Name)
	}
	return out
}

func TestSamplingPeriod(t *testing.T) {
	a := newFakeReplica(t, "a")
	_, front := startProxy(t, Options{SampleEvery: 4}, a)

	var sampled []bool
	for i := 0; i < 8; i++ {
		resp, err := http.Get(front.URL + "/predict?network=resnet50")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		sampled = append(sampled, resp.Header.Get(TraceIDHeader) != "")
	}
	want := []bool{true, false, false, false, true, false, false, false}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampling pattern %v, want %v (1-in-4, first always)", sampled, want)
		}
	}
}

func TestIncomingTraceparentContinuation(t *testing.T) {
	a := newTraceRecordingReplica(t, "a")
	// Huge period: only the continuation (and the always-sampled first
	// request) can produce traces.
	_, front := startProxy(t, Options{SampleEvery: 1 << 30}, a.fakeReplica)

	// Burn the always-sampled first request.
	resp, err := http.Get(front.URL + "/predict?network=warm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	upstream := obs.NewSpanContext()
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/predict?network=resnet50", nil)
	req.Header.Set("traceparent", upstream.Traceparent())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceIDHeader); got != upstream.TraceID() {
		t.Fatalf("continued trace echoed %q, want upstream %q", got, upstream.TraceID())
	}

	// A malformed header must not be continued.
	req, _ = http.NewRequest(http.MethodGet, front.URL+"/predict?network=resnet50", nil)
	req.Header.Set("traceparent", "00-not-a-trace-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceIDHeader); got != "" {
		t.Fatalf("malformed traceparent produced a trace %q", got)
	}

	// An unsampled (flags 00) upstream context must not force sampling.
	unsampled := obs.NewSpanContext()
	unsampled.Flags = 0
	req, _ = http.NewRequest(http.MethodGet, front.URL+"/predict?network=resnet50", nil)
	req.Header.Set("traceparent", unsampled.Traceparent())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceIDHeader); got != "" {
		t.Fatalf("unsampled traceparent produced a trace %q", got)
	}
}

func TestTracePropagationAcrossRetry(t *testing.T) {
	a := newTraceRecordingReplica(t, "a")
	b := newTraceRecordingReplica(t, "b")
	p, front := startProxy(t, Options{SampleEvery: 1, HealthInterval: time.Hour}, a.fakeReplica, b.fakeReplica)

	// Find the ring owner for the key and kill it, so the request retries
	// onto the survivor.
	owner, ok := p.Owner("resnet50")
	if !ok {
		t.Fatal("no owner")
	}
	victim, survivor := a, b
	if owner == b.addr() {
		victim, survivor = b, a
	}
	victim.srv.Close()

	resp, err := http.Get(front.URL + "/predict?network=resnet50")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after retry", resp.StatusCode)
	}
	traceID := resp.Header.Get(TraceIDHeader)
	if traceID == "" {
		t.Fatal("no trace ID on retried request")
	}

	parents := survivor.seenParents()
	if len(parents) != 1 {
		t.Fatalf("survivor saw %d requests, want 1", len(parents))
	}
	sc, ok := obs.ParseTraceparent(parents[0])
	if !ok || sc.TraceID() != traceID {
		t.Fatalf("survivor traceparent %q does not carry trace %s", parents[0], traceID)
	}

	evs := eventsByName(p.ProcessTrace())
	if len(evs["upstream_wait"]) == 0 || len(evs["retry_hop"]) == 0 {
		t.Fatalf("retried trace lacks upstream_wait+retry_hop spans; have %v", names(p.ProcessTrace()))
	}
	hop := evs["retry_hop"][0]
	if argOf(hop, "replica") != survivor.addr() {
		t.Fatalf("retry_hop replica = %q, want survivor %q", argOf(hop, "replica"), survivor.addr())
	}
	if argOf(hop, "trace_id") != traceID {
		t.Fatalf("retry_hop trace_id = %q, want %q", argOf(hop, "trace_id"), traceID)
	}
}

func TestTracePropagationAcrossSpill(t *testing.T) {
	a := newTraceRecordingReplica(t, "a")
	b := newTraceRecordingReplica(t, "b")
	p, front := startProxy(t, Options{SampleEvery: 1, MaxInflight: 1, HealthInterval: time.Hour}, a.fakeReplica, b.fakeReplica)

	owner, ok := p.Owner("resnet50")
	if !ok {
		t.Fatal("no owner")
	}
	// Saturate the owner directly (in-package) so the request spills.
	var spilledTo *traceRecordingReplica
	for i, r := range p.replicas {
		if r.addr == owner {
			p.replicas[i].inflight.Add(1)
			defer p.replicas[i].inflight.Add(-1)
		}
	}
	if owner == a.addr() {
		spilledTo = b
	} else {
		spilledTo = a
	}

	resp, err := http.Get(front.URL + "/predict?network=resnet50")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after spill", resp.StatusCode)
	}
	traceID := resp.Header.Get(TraceIDHeader)
	parents := spilledTo.seenParents()
	if len(parents) != 1 {
		t.Fatalf("spill target saw %d requests, want 1", len(parents))
	}
	if sc, ok := obs.ParseTraceparent(parents[0]); !ok || sc.TraceID() != traceID {
		t.Fatalf("spill target traceparent %q does not carry trace %s", parents[0], traceID)
	}
	if metricSpills.Value() == 0 {
		t.Fatal("spill not counted")
	}
}

// metricsReplica answers /metrics.json with a registry of its own.
func metricsReplica(t *testing.T, name string, reqs int64, lats []units.Seconds) *fakeReplica {
	reg := obs.NewRegistry()
	reg.Counter("serve_predictions_total", "").Add(reqs)
	h := reg.Histogram("serve_request_seconds", "", nil)
	for _, l := range lats {
		h.Observe(l)
	}
	f := newFakeReplica(t, name)
	f.handler = func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/metrics.json" {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		fmt.Fprint(w, name)
	}
	return f
}

func TestMetricszMergesReplicaBuckets(t *testing.T) {
	a := metricsReplica(t, "a", 3, []units.Seconds{1e-6, 2e-4, 0.3})
	b := metricsReplica(t, "b", 9, []units.Seconds{1e-6, 1e-6, 7})
	_, front := startProxy(t, Options{}, a, b)

	status, body := get(t, front.URL+"/metricsz")
	if status != http.StatusOK {
		t.Fatalf("/metricsz status %d: %s", status, body)
	}
	var doc struct {
		Replicas int              `json:"replicas"`
		Scraped  int              `json:"scraped"`
		Failed   []string         `json:"failed"`
		Skipped  []string         `json:"skipped"`
		Metrics  []obs.MetricJSON `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("decoding /metricsz: %v", err)
	}
	if doc.Replicas != 2 || doc.Scraped != 2 || len(doc.Failed) != 0 || len(doc.Skipped) != 0 {
		t.Fatalf("scrape summary %+v", doc)
	}

	var hist, counter *obs.MetricJSON
	for i := range doc.Metrics {
		switch doc.Metrics[i].Name {
		case "serve_request_seconds":
			hist = &doc.Metrics[i]
		case "serve_predictions_total":
			counter = &doc.Metrics[i]
		}
	}
	if counter == nil || *counter.Value != 12 {
		t.Fatalf("merged counter = %+v, want 12", counter)
	}
	if hist == nil || *hist.Count != 6 {
		t.Fatalf("merged histogram count = %+v, want 6", hist)
	}
	// Exact bucket-wise sum: recompute what each replica reported and
	// compare bucket by bucket.
	aReg := obs.NewRegistry()
	ah := aReg.Histogram("serve_request_seconds", "", nil)
	for _, l := range []units.Seconds{1e-6, 2e-4, 0.3} {
		ah.Observe(l)
	}
	bReg := obs.NewRegistry()
	bh := bReg.Histogram("serve_request_seconds", "", nil)
	for _, l := range []units.Seconds{1e-6, 1e-6, 7} {
		bh.Observe(l)
	}
	var aSnap, bSnap obs.MetricSnapshot
	for _, m := range aReg.Snapshot() {
		if m.Name == "serve_request_seconds" {
			aSnap = m
		}
	}
	for _, m := range bReg.Snapshot() {
		if m.Name == "serve_request_seconds" {
			bSnap = m
		}
	}
	if len(hist.Buckets) != len(aSnap.Buckets) {
		t.Fatalf("bucket count %d != %d", len(hist.Buckets), len(aSnap.Buckets))
	}
	for i := range hist.Buckets {
		want := aSnap.Buckets[i].Cumulative + bSnap.Buckets[i].Cumulative
		if hist.Buckets[i].Cumulative != want {
			t.Fatalf("bucket %d: merged %d, want %d", i, hist.Buckets[i].Cumulative, want)
		}
	}
}

func TestMetricszReportsFailedScrapes(t *testing.T) {
	a := metricsReplica(t, "a", 1, nil)
	b := newFakeReplica(t, "b") // no /metrics.json: default handler answers 200 text
	b.handler = func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, "no metrics", http.StatusNotFound)
	}
	_, front := startProxy(t, Options{}, a, b)

	status, body := get(t, front.URL+"/metricsz")
	if status != http.StatusOK {
		t.Fatalf("/metricsz status %d", status)
	}
	var doc struct {
		Scraped int      `json:"scraped"`
		Failed  []string `json:"failed"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Scraped != 1 || len(doc.Failed) != 1 || doc.Failed[0] != b.addr() {
		t.Fatalf("scrape summary %+v, want 1 scraped and b failed", doc)
	}
}

func TestSlozEndpoint(t *testing.T) {
	a := newFakeReplica(t, "a")
	_, front := startProxy(t, Options{}, a)

	// Serve a little traffic so the report has requests to window.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(front.URL + "/predict?network=resnet50")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	status, body := get(t, front.URL+"/sloz")
	if status != http.StatusOK {
		t.Fatalf("/sloz status %d: %s", status, body)
	}
	var rep obs.SLOReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("decoding /sloz: %v", err)
	}
	if rep.AvailabilityObjective <= 0 || rep.LatencyObjective <= 0 {
		t.Fatalf("objectives missing: %+v", rep)
	}
	if len(rep.Windows) == 0 {
		t.Fatal("no windows in /sloz report")
	}
	for _, w := range rep.Windows {
		if w.AvailabilityBurnRate < 0 || w.LatencyBurnRate < 0 {
			t.Fatalf("negative burn rate: %+v", w)
		}
	}
}

func TestTracezEndpoint(t *testing.T) {
	a := newFakeReplica(t, "a")
	_, front := startProxy(t, Options{SampleEvery: 1, ProcessName: "proxy test"}, a)

	resp, err := http.Get(front.URL + "/predict?network=resnet50")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status, body := get(t, front.URL+"/tracez.json")
	if status != http.StatusOK {
		t.Fatalf("/tracez.json status %d", status)
	}
	pt, err := obs.ReadProcessTrace(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decoding /tracez.json: %v", err)
	}
	if pt.Process != "proxy test" {
		t.Fatalf("process = %q", pt.Process)
	}
	if len(pt.Events) == 0 {
		t.Fatal("no events in proxy trace")
	}
}
