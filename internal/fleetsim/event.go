package fleetsim

// The event engine. A discrete-event simulator lives or dies by its event
// queue, so this one is engineered as a hot path: a binary min-heap over a
// preallocated event arena whose capacity is a structural invariant of the
// simulation (one pending trace arrival, at most one completion per
// replica, at most one pending re-arrival per closed-loop user — the heap
// can never outgrow 2+replicas+users), keyed by (time, seq) so ties resolve
// in push order and every replay is bit-identical. Push and pop are
// allocation-free leaf kernels; there is no interface, no container/heap,
// no per-event boxing.

// Event kinds.
const (
	evArrival  = uint8(iota) // open-loop trace arrival; idx is the request id
	evFree                   // replica finished a batch; idx is the replica id
	evUserNext               // closed-loop user issues a request; idx is the user id
)

// event is one scheduled simulation event. 16 bytes, passed by value.
type event struct {
	t    float64 // simulated seconds
	seq  uint32  // push order; the deterministic tie-break
	kind uint8
	idx  int32
}

// eventHeap is a binary min-heap over a fixed-capacity arena.
type eventHeap struct {
	ev  []event // preallocated to the structural bound; never grows
	n   int
	seq uint32 // monotone push counter
}

// newEventHeap allocates the arena for at most cap pending events.
func newEventHeap(capacity int) *eventHeap {
	return &eventHeap{ev: make([]event, capacity)}
}

// reset empties the heap without releasing the arena.
//
//dnnperf:allocfree
func (h *eventHeap) reset() {
	h.n = 0
	h.seq = 0
}

// less orders events by (time, push sequence).
//
//dnnperf:allocfree
func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	//lint:ignore floateq event times are compared exactly on purpose: equal-time events must fall through to the seq tie-break for deterministic FIFO order, and both operands are stored values, never re-derived sums
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// push schedules an event. The arena bound is structural; overflowing it is
// a simulator bug, and the slice bounds check turns it into a panic rather
// than silent growth.
//
//dnnperf:allocfree
func (h *eventHeap) push(t float64, kind uint8, idx int32) {
	h.ev[h.n] = event{t: t, seq: h.seq, kind: kind, idx: idx}
	h.seq++
	h.n++
	h.siftUp(h.n - 1)
}

// pop removes and returns the earliest event.
//
//dnnperf:allocfree
func (h *eventHeap) pop() event {
	top := h.ev[0]
	h.n--
	if h.n > 0 {
		h.ev[0] = h.ev[h.n]
		h.siftDown(0)
	}
	return top
}

//dnnperf:allocfree
func (h *eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

//dnnperf:allocfree
func (h *eventHeap) siftDown(i int) {
	for {
		left := 2*i + 1
		if left >= h.n {
			return
		}
		least := left
		if right := left + 1; right < h.n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.ev[i], h.ev[least] = h.ev[least], h.ev[i]
		i = least
	}
}

// ring is a FIFO queue of request ids backed by a power-of-two circular
// buffer — each replica's wait queue. Steady-state push/pop/peek are
// allocation-free; growth doubles the buffer through the cold grow path
// before push when full (the caller checks full first), so once a replay
// has warmed the high-water mark, later replays never allocate.
type ring struct {
	buf  []int32 // len is a power of two
	head int32
	n    int32
}

// newRing allocates a ring with the given power-of-two capacity.
func newRing(capacity int32) ring {
	return ring{buf: make([]int32, capacity)}
}

// full reports whether the next push needs grow first.
//
//dnnperf:allocfree
func (r *ring) full() bool { return int(r.n) == len(r.buf) }

// grow doubles the buffer, unrolling the wrapped contents. Cold path.
func (r *ring) grow() {
	next := make([]int32, 2*len(r.buf))
	for i := int32(0); i < r.n; i++ {
		next[i] = r.at(i)
	}
	r.buf = next
	r.head = 0
}

// push appends a request id; the caller must have ensured space.
//
//dnnperf:allocfree
func (r *ring) push(v int32) {
	r.buf[(r.head+r.n)&int32(len(r.buf)-1)] = v
	r.n++
}

// pop removes and returns the oldest request id.
//
//dnnperf:allocfree
func (r *ring) pop() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) & int32(len(r.buf)-1)
	r.n--
	return v
}

// at returns the i-th queued id from the head without removing it.
//
//dnnperf:allocfree
func (r *ring) at(i int32) int32 {
	return r.buf[(r.head+i)&int32(len(r.buf)-1)]
}

// reset empties the ring, keeping the warmed capacity.
//
//dnnperf:allocfree
func (r *ring) reset() {
	r.head = 0
	r.n = 0
}
