package fleetsim

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/loadgen"
	"repro/internal/sched"
	"repro/internal/units"
)

// smallScenario is the shared open-loop fixture: a 4-type heterogeneous
// fleet under Poisson traffic at a rate the fleet can absorb.
func smallScenario() Scenario {
	return Scenario{
		Name:      "small",
		Fleet:     []int32{0, 1, 2, 3},
		Arrival:   loadgen.Poisson,
		RateRPS:   400,
		Requests:  20_000,
		MaxBatch:  8,
		PostProcS: 200e-6,
		Policy:    "jsq",
		Seed:      7,
	}
}

func mustRun(t *testing.T, sc Scenario, st *StepTable) Result {
	t.Helper()
	res, err := sc.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReplayInvariants(t *testing.T) {
	st := SyntheticStepTable(4, 8, 16, 42)
	sc := smallScenario()
	res := mustRun(t, sc, st)

	if res.Requests != int64(sc.Requests) || res.Unfinished != 0 {
		t.Fatalf("served %d of %d, unfinished %d", res.Requests, sc.Requests, res.Unfinished)
	}
	if !(res.P50S > 0 && res.P50S <= res.P90S && res.P90S <= res.P99S && res.P99S <= res.P999S && res.P999S <= res.MaxS) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v p999=%v max=%v",
			res.P50S, res.P90S, res.P99S, res.P999S, res.MaxS)
	}
	// Every latency includes at least the post-processing constant.
	if res.P50S < sc.PostProcS {
		t.Fatalf("p50 %v below the %v post-processing floor", res.P50S, sc.PostProcS)
	}
	if res.SimSeconds <= 0 || res.MaxS > res.SimSeconds {
		t.Fatalf("sim span %v vs max latency %v", res.SimSeconds, res.MaxS)
	}
	if res.MeanBatch < 1 || float64(res.MeanBatch) > float64(sc.MaxBatch) {
		t.Fatalf("mean batch %v outside [1, %d]", res.MeanBatch, sc.MaxBatch)
	}
	// Each request contributes an arrival event and rides exactly one batch.
	if res.Events != int64(sc.Requests)+res.Batches {
		t.Fatalf("events %d != arrivals %d + batches %d", res.Events, sc.Requests, res.Batches)
	}
	if len(res.Util) != 4 || len(res.MaxQueueDepth) != 4 {
		t.Fatalf("per-replica stats sized %d/%d, want 4", len(res.Util), len(res.MaxQueueDepth))
	}
	for r, u := range res.Util {
		if u <= 0 || u > 1 {
			t.Fatalf("replica %d utilization %v outside (0, 1]", r, u)
		}
		if res.MaxQueueDepth[r] < 1 {
			t.Fatalf("replica %d never held a request", r)
		}
	}
}

// TestReplayBitIdentical pins the determinism contract: the same scenario
// replayed on the same Sim, on a fresh Sim, and under different sweep
// parallelism yields bit-identical results.
func TestReplayBitIdentical(t *testing.T) {
	st := SyntheticStepTable(4, 8, 16, 42)
	sc := smallScenario()

	a := mustRun(t, sc, st)
	b := mustRun(t, sc, st)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fresh-Sim replays differ:\n%+v\n%+v", a, b)
	}

	sim, err := sc.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	r1 := sim.Replay()
	u1 := append([]float64(nil), r1.Util...)
	r2 := sim.Replay()
	if !reflect.DeepEqual(u1, r2.Util) || r1.P999S != r2.P999S || r1.Events != r2.Events {
		t.Fatal("repeated Replay on one Sim diverged")
	}

	grid := Grid(sc, []int{2, 4}, []float64{200, 400}, []string{"jsq", "rr", "lpt"})
	seq, err := Sweep(st, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(max(2, prev))
	par, err := Sweep(st, grid, 8)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("sweep results depend on worker count")
	}
}

// TestReplaySteadyStateAllocFree pins the tentpole's 0 allocs/op claim at
// the API level (the benchmark gate pins it in CI).
func TestReplaySteadyStateAllocFree(t *testing.T) {
	st := SyntheticStepTable(4, 8, 16, 42)
	sc := smallScenario()
	sim, err := sc.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	sim.Replay() // warm the ring high-water marks
	if allocs := testing.AllocsPerRun(3, func() { sim.Replay() }); allocs != 0 {
		t.Fatalf("steady-state Replay allocates %v per op, want 0", allocs)
	}
}

func TestClosedLoop(t *testing.T) {
	st := SyntheticStepTable(2, 4, 8, 1)
	sc := Scenario{
		Name:       "closed",
		FleetSize:  2,
		Arrival:    loadgen.Closed,
		Users:      32,
		ThinkMeanS: 0.05,
		HorizonS:   30,
		MaxBatch:   4,
		PostProcS:  100e-6,
		Seed:       11,
	}
	res := mustRun(t, sc, st)
	// 32 users over 30s with ~50ms think + service must cycle many times.
	if res.Requests < int64(sc.Users)*10 {
		t.Fatalf("closed loop served %d requests for %d users over %vs", res.Requests, sc.Users, sc.HorizonS)
	}
	if res.Unfinished != 0 {
		t.Fatalf("closed loop left %d unfinished", res.Unfinished)
	}
	if res.P50S <= 0 || res.MaxS > res.SimSeconds {
		t.Fatalf("closed-loop latencies implausible: %+v", res)
	}
	again := mustRun(t, sc, st)
	if !reflect.DeepEqual(res, again) {
		t.Fatal("closed-loop replay not deterministic")
	}
}

// TestPolicySeamSeparatesSchedulers is the policy-seam contract: on a
// 2-replica fleet with three simultaneous batch-1 requests of step times
// {3, 3, 4}, in-order greedy packs {3, 4} onto one replica (makespan 7)
// while LPT places the 4 first and finishes in 6 — both values exact, so
// the seam provably changes simulated outcomes.
func TestPolicySeamSeparatesSchedulers(t *testing.T) {
	st, err := NewStepTable([]string{"g"}, []string{"A", "B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Set(0, 0, 1, 3) // network A: 3s at batch 1
	st.Set(0, 1, 1, 4) // network B: 4s at batch 1
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	// Three requests effectively at t=0 (strictly increasing by ε), nets
	// A, A, B → step times 3, 3, 4 in arrival order. MaxBatch 1 keeps the
	// two A requests from batching together.
	tr := &Trace{
		ArrivalS: []float64{0, 1e-12, 2e-12},
		Net:      []int32{0, 0, 1},
	}
	fleet := []int32{0, 0}

	makespan := func(pol sched.Policy) float64 {
		t.Helper()
		planned, err := PlanRoute(st, fleet, tr, pol)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSim(st, Config{Fleet: fleet, MaxBatch: 1, Router: RoutePlanned, Planned: planned}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Replay().SimSeconds
	}

	if got := makespan(sched.InOrderPolicy{}); got != 7.0 {
		t.Errorf("in-order greedy makespan = %v, want exactly 7", got)
	}
	if got := makespan(sched.ListPolicy{}); got != 6.0 {
		t.Errorf("LPT makespan = %v, want exactly 6", got)
	}
	if got := makespan(sched.SearchPolicy{}); got != 6.0 {
		t.Errorf("local search makespan = %v, want exactly 6", got)
	}
}

// fakeSweep is a deterministic SweepPredictor for BuildStepTable tests.
type fakeSweep struct {
	gpu   string
	scale float64
	fail  bool
}

func (f fakeSweep) Name() string    { return "fake" }
func (f fakeSweep) GPUName() string { return f.gpu }
func (f fakeSweep) PredictNetwork(n *dnn.Network, batch int) (units.Seconds, error) {
	return units.Seconds(f.scale * float64(batch) * float64(len(n.Name))), nil
}
func (f fakeSweep) PredictSweep(n *dnn.Network, batches []int) ([]units.Seconds, error) {
	if f.fail {
		return nil, fmt.Errorf("fit diverged")
	}
	out := make([]units.Seconds, len(batches))
	for i, b := range batches {
		out[i], _ = f.PredictNetwork(n, b)
	}
	return out, nil
}

func TestBuildStepTable(t *testing.T) {
	nets := []*dnn.Network{{Name: "ab"}, {Name: "abc"}}
	models := []core.SweepPredictor{
		fakeSweep{gpu: "v100", scale: 1e-3},
		fakeSweep{gpu: "a100", scale: 5e-4},
	}
	st, err := BuildStepTable(models, nets, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.At(1, 1, 4); got != 5e-4*4*3 {
		t.Fatalf("At(a100, abc, 4) = %v, want %v", got, 5e-4*4*3)
	}
	if got := st.At(0, 0, 1); got != 1e-3*2 {
		t.Fatalf("At(v100, ab, 1) = %v, want %v", got, 1e-3*2)
	}
	if gp := st.GPUs(); len(gp) != 2 || gp[0] != "v100" || gp[1] != "a100" {
		t.Fatalf("GPU order %v", gp)
	}

	_, err = BuildStepTable([]core.SweepPredictor{
		fakeSweep{gpu: "v100", scale: 1e-3},
		fakeSweep{gpu: "a100", scale: 5e-4, fail: true},
	}, nets, 4)
	if err == nil {
		t.Fatal("failing model accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	st := SyntheticStepTable(2, 2, 4, 3)
	tr := &Trace{ArrivalS: []float64{0, 1}, Net: []int32{0, 1}}
	cases := []struct {
		name  string
		cfg   Config
		trace *Trace
	}{
		{"empty fleet", Config{}, tr},
		{"bad gpu id", Config{Fleet: []int32{5}}, tr},
		{"batch too big", Config{Fleet: []int32{0}, MaxBatch: 9}, tr},
		{"no trace open loop", Config{Fleet: []int32{0}}, nil},
		{"planned length", Config{Fleet: []int32{0}, Router: RoutePlanned, Planned: []int32{0}}, tr},
		{"planned replica range", Config{Fleet: []int32{0}, Router: RoutePlanned, Planned: []int32{0, 3}}, tr},
		{"closed with trace", Config{Fleet: []int32{0}, Users: 2, HorizonS: 1}, tr},
		{"closed no horizon", Config{Fleet: []int32{0}, Users: 2}, nil},
	}
	for _, c := range cases {
		if _, err := NewSim(st, c.cfg, c.trace); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := (&Trace{ArrivalS: []float64{0, 0}, Net: []int32{0, 0}}).Validate(2); err == nil {
		t.Error("non-increasing trace accepted")
	}
	if err := (&Trace{ArrivalS: []float64{0}, Net: []int32{7}}).Validate(2); err == nil {
		t.Error("out-of-range net accepted")
	}
	if _, _, err := ParsePolicy("optimal"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestGridAndCapacity(t *testing.T) {
	st := SyntheticStepTable(1, 4, 8, 9)
	base := Scenario{
		Arrival:   loadgen.Poisson,
		Requests:  5_000,
		MaxBatch:  8,
		PostProcS: 100e-6,
		Seed:      5,
	}
	grid := Grid(base, []int{1, 2, 4, 8}, []float64{100, 200}, []string{"jsq"})
	if len(grid) != 8 {
		t.Fatalf("grid size %d, want 8", len(grid))
	}
	results, err := Sweep(st, grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger fleets at a fixed rate cannot make the p99 worse.
	for _, rate := range []float64{100, 200} {
		var prev float64 = math.Inf(1)
		for _, r := range results {
			if r.Scenario.RateRPS != rate {
				continue
			}
			if r.Result.P99S > prev*1.0000001 {
				t.Errorf("rate %v: p99 %v at fleet %d worse than smaller fleet's %v",
					rate, r.Result.P99S, r.Scenario.FleetSize, prev)
			}
			prev = r.Result.P99S
		}
	}
	minFleet := MinFleetForP99(results, results[len(results)-1].Result.P99S*1.01)
	for key, n := range minFleet {
		if n < 1 || n > 8 {
			t.Errorf("capacity answer %s → %d outside the swept sizes", key, n)
		}
	}
}

func TestRingGrowsAndKeepsFIFO(t *testing.T) {
	r := newRing(2)
	for i := int32(0); i < 100; i++ {
		if r.full() {
			r.grow()
		}
		r.push(i)
	}
	for i := int32(0); i < 100; i++ {
		if got := r.pop(); got != i {
			t.Fatalf("pop %d = %d", i, got)
		}
	}
}

func TestHeapOrdersByTimeThenSeq(t *testing.T) {
	h := newEventHeap(8)
	h.push(3.0, evArrival, 0)
	h.push(1.0, evArrival, 1)
	h.push(2.0, evArrival, 2)
	h.push(1.0, evFree, 3) // same time as idx 1, pushed later
	want := []int32{1, 3, 2, 0}
	for i, w := range want {
		if got := h.pop(); got.idx != w {
			t.Fatalf("pop %d: idx %d, want %d", i, got.idx, w)
		}
	}
}

func TestTimeline(t *testing.T) {
	st := SyntheticStepTable(2, 2, 4, 6)
	proc := loadgen.NewPoissonArrivals(200, 3)
	tr, err := BuildTrace(proc, 2, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(st, Config{Fleet: []int32{0, 1}, MaxBatch: 4, Router: RouteJSQ, RecordTimeline: true}, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Replay()
	spans := sim.Timeline()
	if int64(len(spans)) != res.Batches {
		t.Fatalf("%d spans for %d batches", len(spans), res.Batches)
	}
	var total int64
	for _, s := range spans {
		if s.DurS <= 0 || s.Size < 1 || s.Replica < 0 || s.Replica > 1 {
			t.Fatalf("bad span %+v", s)
		}
		total += int64(s.Size)
	}
	if total != res.Requests {
		t.Fatalf("spans cover %d requests of %d", total, res.Requests)
	}
}

// BenchmarkFleetSimReplay is the gated throughput benchmark: one
// single-goroutine replay of a 100k-request Poisson trace against a
// heterogeneous 4-GPU fleet, the scenario the ≥1M requests/sec single-core
// claim is pinned on. ReportAllocs feeds the absolute 0 allocs/op gate;
// the req/s and events/s metrics feed the throughput floor and the
// fleetsim_events_per_sec baseline figure in scripts/bench_compare.sh.
func BenchmarkFleetSimReplay(b *testing.B) {
	st := SyntheticStepTable(4, 8, 16, 42)
	proc := loadgen.NewPoissonArrivals(2000, 7)
	tr, err := BuildTrace(proc, 8, 100_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := NewSim(st, Config{
		Fleet:     []int32{0, 1, 2, 3},
		MaxBatch:  8,
		PostProcS: 200e-6,
		Router:    RouteJSQ,
	}, tr)
	if err != nil {
		b.Fatal(err)
	}
	res := sim.Replay() // warm ring high-water marks and the scratch sort
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = sim.Replay()
	}
	b.StopTimer()
	if res.Requests != int64(tr.Len()) {
		b.Fatalf("served %d of %d", res.Requests, tr.Len())
	}
	secs := b.Elapsed().Seconds()
	b.ReportMetric(float64(res.Requests)*float64(b.N)/secs, "req/s")
	b.ReportMetric(float64(res.Events)*float64(b.N)/secs, "events/s")
}
