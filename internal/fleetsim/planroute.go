package fleetsim

import (
	"fmt"

	"repro/internal/sched"
)

// PlanRoute computes a per-request replica assignment for an open-loop
// trace by handing the fleet to a sched.Policy — the seam the scheduler
// optimizer plugs into the simulator through. Each request becomes one
// task whose per-replica time is its batch-1 step time on that replica's
// GPU type (replicas of the same type get identical columns; the policy
// still separates them because loads differ), and the policy's
// DenseAssignment becomes the RoutePlanned table. Deterministic for a
// fixed (table, fleet, trace, policy).
func PlanRoute(st *StepTable, fleet []int32, tr *Trace, pol sched.Policy) ([]int32, error) {
	if len(fleet) == 0 {
		return nil, fmt.Errorf("fleetsim: empty fleet")
	}
	if err := tr.Validate(len(st.nets)); err != nil {
		return nil, err
	}
	names := make([]string, len(fleet))
	for r, g := range fleet {
		if g < 0 || int(g) >= len(st.gpus) {
			return nil, fmt.Errorf("fleetsim: replica %d references GPU type %d of %d", r, g, len(st.gpus))
		}
		// Replica names must be unique even when GPU types repeat.
		names[r] = fmt.Sprintf("r%02d:%s", r, st.gpus[g])
	}
	dt, err := sched.NewDenseTimes(names, tr.Len())
	if err != nil {
		return nil, err
	}
	for r, g := range fleet {
		row := dt.Row(r)
		for i, n := range tr.Net {
			row[i] = st.At(g, n, 1)
		}
	}
	a, err := pol.Schedule(dt)
	if err != nil {
		return nil, fmt.Errorf("fleetsim: policy %s: %w", pol.Name(), err)
	}
	return a.GPUOf, nil
}
