package fleetsim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/loadgen"
	"repro/internal/sched"
)

// Scenario is one declarative simulation: a fleet, an arrival workload and
// a dispatch policy. It is the unit capacity sweeps fan out over.
type Scenario struct {
	Name string `json:"name"`

	// Fleet gives each replica's GPU type id explicitly; when nil,
	// FleetSize replicas are used, GPU types assigned round-robin across
	// the step table's fleet.
	Fleet     []int32 `json:"fleet,omitempty"`
	FleetSize int     `json:"fleet_size,omitempty"`

	// Open-loop workload: Requests arrivals drawn from the loadgen
	// Arrival schedule at RateRPS. Closed-loop workload: Users virtual
	// users with ThinkMeanS think time over HorizonS simulated seconds
	// (Requests/RateRPS ignored).
	Arrival    loadgen.Arrival `json:"arrival"`
	RateRPS    float64         `json:"rate_rps,omitempty"`
	Requests   int             `json:"requests,omitempty"`
	Users      int             `json:"users,omitempty"`
	ThinkMeanS float64         `json:"think_mean_s,omitempty"`
	HorizonS   float64         `json:"horizon_s,omitempty"`

	// Bursty/diurnal shape knobs, passed through to loadgen.
	BurstOn, BurstOff time.Duration `json:"-"`
	BurstFactor       float64       `json:"burst_factor,omitempty"`
	DiurnalPeriod     time.Duration `json:"-"`
	DiurnalAmplitude  float64       `json:"diurnal_amplitude,omitempty"`

	// Policy is the dispatch rule: "jsq", "rr", or a sched policy name
	// ("lpt", "inorder", "search") applied to the whole trace up front and
	// replayed via RoutePlanned. Empty means "jsq".
	Policy string `json:"policy"`

	MaxBatch  int     `json:"max_batch,omitempty"`
	PostProcS float64 `json:"post_proc_s,omitempty"`
	Seed      int64   `json:"seed"`

	// RecordTimeline keeps per-batch spans for Perfetto export (see
	// Sim.Timeline); it allocates during replay, so sweeps leave it off.
	RecordTimeline bool `json:"-"`
}

// ScenarioResult pairs a scenario with its replay summary.
type ScenarioResult struct {
	Scenario Scenario `json:"scenario"`
	Result   Result   `json:"result"`
}

// ParsePolicy resolves a scenario policy name to either an online router
// or a sched.Policy for planned routing; exactly one return is meaningful.
func ParsePolicy(name string) (RouterKind, sched.Policy, error) {
	switch name {
	case "", "jsq":
		return RouteJSQ, nil, nil
	case "rr":
		return RouteRR, nil, nil
	case "lpt":
		return RoutePlanned, sched.ListPolicy{}, nil
	case "inorder":
		return RoutePlanned, sched.InOrderPolicy{}, nil
	case "search":
		return RoutePlanned, sched.SearchPolicy{}, nil
	default:
		return RouteJSQ, nil, fmt.Errorf("fleetsim: unknown policy %q (want jsq, rr, lpt, inorder or search)", name)
	}
}

// fleetOf materializes the scenario's replica list; FleetSize spreads the
// table's nTypes GPU types round-robin.
func (sc *Scenario) fleetOf(nTypes int) ([]int32, error) {
	if len(sc.Fleet) > 0 {
		return sc.Fleet, nil
	}
	if sc.FleetSize <= 0 {
		return nil, fmt.Errorf("fleetsim: scenario %q has no fleet", sc.Name)
	}
	fleet := make([]int32, sc.FleetSize)
	for i := range fleet {
		fleet[i] = int32(i % nTypes)
	}
	return fleet, nil
}

// Build compiles a scenario into a ready-to-replay Sim against the given
// step table. The trace (open loop) and any planned assignment are derived
// deterministically from the scenario's seed.
func (sc *Scenario) Build(st *StepTable) (*Sim, error) {
	fleet, err := sc.fleetOf(len(st.gpus))
	if err != nil {
		return nil, err
	}
	router, pol, err := ParsePolicy(sc.Policy)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Fleet:          fleet,
		MaxBatch:       sc.MaxBatch,
		PostProcS:      sc.PostProcS,
		Router:         router,
		Seed:           sc.Seed,
		RecordTimeline: sc.RecordTimeline,
	}

	if sc.Users > 0 || sc.Arrival == loadgen.Closed {
		if pol != nil {
			return nil, fmt.Errorf("fleetsim: scenario %q: planned policies need an open-loop trace", sc.Name)
		}
		cfg.Users = sc.Users
		cfg.ThinkMeanS = sc.ThinkMeanS
		cfg.HorizonS = sc.HorizonS
		return NewSim(st, cfg, nil)
	}

	if sc.Requests <= 0 {
		return nil, fmt.Errorf("fleetsim: scenario %q needs Requests > 0", sc.Name)
	}
	arrival := sc.Arrival
	if arrival == "" {
		arrival = loadgen.Poisson
	}
	proc, err := loadgen.NewArrivals(arrival, loadgen.ArrivalsConfig{
		Rate:             sc.RateRPS,
		Seed:             sc.Seed,
		BurstOn:          sc.BurstOn,
		BurstOff:         sc.BurstOff,
		BurstFactor:      sc.BurstFactor,
		DiurnalPeriod:    sc.DiurnalPeriod,
		DiurnalAmplitude: sc.DiurnalAmplitude,
	})
	if err != nil {
		return nil, fmt.Errorf("fleetsim: scenario %q: %w", sc.Name, err)
	}
	tr, err := BuildTrace(proc, len(st.nets), sc.Requests, sc.Seed+0x5eed)
	if err != nil {
		return nil, err
	}
	if pol != nil {
		planned, err := PlanRoute(st, fleet, tr, pol)
		if err != nil {
			return nil, err
		}
		cfg.Planned = planned
	}
	return NewSim(st, cfg, tr)
}

// Run builds and replays a scenario once.
func (sc *Scenario) Run(st *StepTable) (Result, error) {
	sim, err := sc.Build(st)
	if err != nil {
		return Result{}, err
	}
	res := sim.Replay()
	// Detach the Sim-owned buffers so results survive the worker pool.
	res.Util = append([]float64(nil), res.Util...)
	res.MaxQueueDepth = append([]int32(nil), res.MaxQueueDepth...)
	return res, nil
}

// Sweep replays every scenario across a bounded worker pool and merges the
// results into indexed slots, so output order matches input order and the
// first failing scenario in input order wins error reporting — the same
// deterministic fan-out discipline as core.TaskTimes. workers ≤ 0 defaults
// to GOMAXPROCS.
func Sweep(st *StepTable, scenarios []Scenario, workers int) ([]ScenarioResult, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("fleetsim: empty sweep")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	out := make([]ScenarioResult, len(scenarios))
	errs := make([]error, len(scenarios))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := scenarios[i].Run(st)
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = ScenarioResult{Scenario: scenarios[i], Result: res}
			}
		}()
	}
	for i := range scenarios {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Grid expands a capacity-planning sweep: the cross product of fleet
// sizes × arrival rates × policies over a base scenario, named
// "f<size>-r<rate>-<policy>". The base's Fleet/FleetSize/RateRPS/Policy
// are overridden per cell.
func Grid(base Scenario, fleetSizes []int, rates []float64, policies []string) []Scenario {
	out := make([]Scenario, 0, len(fleetSizes)*len(rates)*len(policies))
	for _, fs := range fleetSizes {
		for _, rate := range rates {
			for _, pol := range policies {
				sc := base
				sc.Fleet = nil
				sc.FleetSize = fs
				sc.RateRPS = rate
				sc.Policy = pol
				sc.Name = fmt.Sprintf("f%d-r%g-%s", fs, rate, pol)
				out = append(out, sc)
			}
		}
	}
	return out
}

// MinFleetForP99 walks the sweep results (already in Grid order) and
// returns, per (rate, policy) cell, the smallest fleet size whose p99
// meets the target, or -1 if none did — the capacity-planning answer.
func MinFleetForP99(results []ScenarioResult, targetS float64) map[string]int {
	out := make(map[string]int)
	for _, r := range results {
		key := fmt.Sprintf("r%g-%s", r.Scenario.RateRPS, r.Scenario.Policy)
		if _, done := out[key]; done && out[key] >= 0 {
			continue
		}
		if r.Result.P99S <= targetS && r.Result.Unfinished == 0 {
			out[key] = r.Scenario.FleetSize
		} else if _, seen := out[key]; !seen {
			out[key] = -1
		}
	}
	return out
}
