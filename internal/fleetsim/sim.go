package fleetsim

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/loadgen"
)

// RouterKind selects how arrivals are dispatched to replicas.
type RouterKind uint8

// The supported routers.
const (
	// RouteJSQ joins the shortest queue: the replica with the fewest
	// requests queued or in service, ties to the lowest replica id. The
	// online baseline real load balancers approximate.
	RouteJSQ RouterKind = iota
	// RouteRR is round-robin, the routing-agnostic control.
	RouteRR
	// RoutePlanned follows a precomputed per-request assignment (see
	// PlanRoute), the seam scheduler policies plug into.
	RoutePlanned
)

// String returns the router's JSON/CLI name.
func (r RouterKind) String() string {
	switch r {
	case RouteRR:
		return "rr"
	case RoutePlanned:
		return "planned"
	default:
		return "jsq"
	}
}

// Config parameterizes one simulation.
type Config struct {
	// Fleet lists the GPU type id (index into the StepTable's GPUs) of
	// each replica; len(Fleet) is the replica count.
	Fleet []int32
	// MaxBatch caps formed batches; 0 defaults to the table's MaxBatch.
	// When a replica frees up it serves the head-of-queue request batched
	// with the consecutive same-network requests behind it, up to the cap —
	// greedy immediate batch formation with no artificial linger delay.
	MaxBatch int
	// PostProcS is the fixed per-request post-processing time in seconds
	// added after the batch's step completes (it does not occupy the GPU).
	PostProcS float64
	// Router selects the dispatch rule; Planned holds the per-request
	// replica assignment RoutePlanned follows.
	Router  RouterKind
	Planned []int32
	// Users > 0 switches to closed-loop mode: no trace, Users virtual
	// users each issuing its next request one think time after the
	// previous response, until HorizonS simulated seconds have passed.
	Users      int
	ThinkMeanS float64
	HorizonS   float64
	// Seed drives the closed-loop request mix and think times.
	Seed int64
	// RecordTimeline keeps a per-batch span log for Perfetto export. It
	// allocates during replay, so benchmarks leave it off.
	RecordTimeline bool
}

// BatchSpan is one executed batch for timeline export.
type BatchSpan struct {
	Replica int32
	Net     int32
	Size    int32
	StartS  float64
	DurS    float64
}

// Result summarizes one replay. Util and MaxQueueDepth alias buffers owned
// by the Sim and are valid until the next Replay.
type Result struct {
	// Requests served; Unfinished is always 0 (both modes drain fully)
	// and is reported so downstream gates can assert it.
	Requests   int64 `json:"requests"`
	Unfinished int64 `json:"unfinished"`
	// SimSeconds is the simulated makespan: the last request completion
	// including post-processing.
	SimSeconds float64 `json:"sim_seconds"`
	// Exact end-to-end latency quantiles over all served requests, seconds.
	P50S  float64 `json:"p50_s"`
	P90S  float64 `json:"p90_s"`
	P99S  float64 `json:"p99_s"`
	P999S float64 `json:"p999_s"`
	MaxS  float64 `json:"max_s"`
	// MeanBatch is the mean formed batch size; Events and Batches count
	// processed events and executed batches.
	MeanBatch float64 `json:"mean_batch"`
	Events    int64   `json:"events"`
	Batches   int64   `json:"batches"`
	// Util[r] is replica r's busy fraction of SimSeconds; MaxQueueDepth[r]
	// its high-water queued+in-service request count.
	Util          []float64 `json:"util"`
	MaxQueueDepth []int32   `json:"max_queue_depth"`
}

// Sim replays one scenario. All buffers are allocated up front (or grown
// once to the scenario's high-water mark); repeated Replay calls on a
// warmed Sim perform no allocation in open-loop mode, which is what the
// 0 allocs/op benchmark gate pins. A Sim is single-goroutine; concurrent
// scenarios each build their own (see Sweep).
type Sim struct {
	st    *StepTable
	cfg   Config
	trace *Trace

	heap  *eventHeap
	rings []ring

	// Per-replica service state: busy flag, ids of the in-service batch
	// (flat, MaxBatch per replica), its size, its start time, accumulated
	// busy seconds and the queue-depth high-water mark.
	busy        []bool
	inflight    []int32
	inflightN   []int32
	batchStartS []float64
	busyS       []float64
	maxDepth    []int32

	// Per-request state. Open loop aliases the trace's arrays; closed loop
	// appends as users issue requests.
	reqArrival []float64
	reqNet     []int32
	reqUser    []int32
	lat        []float64
	scratch    []float64

	cursor   int // next trace index to schedule
	rr       int32
	served   int64
	events   int64
	batches  int64
	sumBatch int64
	simEndS  float64

	mix      splitmix       // closed-loop network mix
	think    *loadgen.Think // closed-loop think times, re-seeded per replay
	timeline []BatchSpan
}

// NewSim validates the scenario and allocates the replay state.
func NewSim(st *StepTable, cfg Config, trace *Trace) (*Sim, error) {
	if len(cfg.Fleet) == 0 {
		return nil, fmt.Errorf("fleetsim: empty fleet")
	}
	for r, g := range cfg.Fleet {
		if g < 0 || int(g) >= len(st.gpus) {
			return nil, fmt.Errorf("fleetsim: replica %d references GPU type %d of %d", r, g, len(st.gpus))
		}
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = st.maxBatch
	}
	if cfg.MaxBatch < 1 || cfg.MaxBatch > st.maxBatch {
		return nil, fmt.Errorf("fleetsim: max batch %d outside the table's [1, %d]", cfg.MaxBatch, st.maxBatch)
	}
	if cfg.PostProcS < 0 {
		return nil, fmt.Errorf("fleetsim: negative post-processing time %v", cfg.PostProcS)
	}
	closed := cfg.Users > 0
	if closed {
		if trace != nil {
			return nil, fmt.Errorf("fleetsim: closed-loop mode takes no trace")
		}
		if cfg.HorizonS <= 0 {
			return nil, fmt.Errorf("fleetsim: closed-loop mode needs HorizonS > 0")
		}
		if cfg.Router == RoutePlanned {
			return nil, fmt.Errorf("fleetsim: planned routing needs an open-loop trace")
		}
	} else {
		if trace == nil {
			return nil, fmt.Errorf("fleetsim: open-loop mode needs a trace")
		}
		if err := trace.Validate(len(st.nets)); err != nil {
			return nil, err
		}
		if cfg.Router == RoutePlanned && len(cfg.Planned) != trace.Len() {
			return nil, fmt.Errorf("fleetsim: planned assignment covers %d of %d requests", len(cfg.Planned), trace.Len())
		}
		if cfg.Router == RoutePlanned {
			for i, r := range cfg.Planned {
				if r < 0 || int(r) >= len(cfg.Fleet) {
					return nil, fmt.Errorf("fleetsim: request %d planned onto replica %d of %d", i, r, len(cfg.Fleet))
				}
			}
		}
	}

	nRep := len(cfg.Fleet)
	s := &Sim{
		st:          st,
		cfg:         cfg,
		trace:       trace,
		heap:        newEventHeap(2 + nRep + cfg.Users),
		rings:       make([]ring, nRep),
		busy:        make([]bool, nRep),
		inflight:    make([]int32, nRep*cfg.MaxBatch),
		inflightN:   make([]int32, nRep),
		batchStartS: make([]float64, nRep),
		busyS:       make([]float64, nRep),
		maxDepth:    make([]int32, nRep),
	}
	for r := range s.rings {
		s.rings[r] = newRing(64)
	}
	if closed {
		est := cfg.Users * 4
		s.reqArrival = make([]float64, 0, est)
		s.reqNet = make([]int32, 0, est)
		s.reqUser = make([]int32, 0, est)
		s.lat = make([]float64, 0, est)
	} else {
		s.reqArrival = trace.ArrivalS
		s.reqNet = trace.Net
		s.lat = make([]float64, trace.Len())
		s.scratch = make([]float64, trace.Len())
	}
	return s, nil
}

// Replay runs the scenario from scratch and returns its summary. Repeated
// calls yield bit-identical results; open-loop replays on a warmed Sim are
// allocation-free.
func (s *Sim) Replay() Result {
	s.resetState()

	if s.cfg.Users > 0 {
		// Closed loop: every user schedules its first request one think
		// time into the run — a deterministic stagger, no thundering herd.
		s.think = loadgen.NewThink(s.cfg.ThinkMeanS, s.cfg.Seed+1)
		s.mix = splitmix{s: uint64(s.cfg.Seed)}
		for u := 0; u < s.cfg.Users; u++ {
			s.heap.push(s.think.Sample(), evUserNext, int32(u))
		}
	} else {
		s.heap.push(s.trace.ArrivalS[0], evArrival, 0)
		s.cursor = 1
	}

	for s.heap.n > 0 {
		e := s.heap.pop()
		s.events++
		switch e.kind {
		case evArrival:
			s.onArrival(e.idx, e.t)
		case evFree:
			s.onFree(e.idx, e.t)
		default: // evUserNext
			s.onUser(e.idx, e.t)
		}
	}

	return s.summarize()
}

// resetState rewinds every buffer without releasing capacity.
func (s *Sim) resetState() {
	s.heap.reset()
	for r := range s.rings {
		s.rings[r].reset()
		s.busy[r] = false
		s.inflightN[r] = 0
		s.batchStartS[r] = 0
		s.busyS[r] = 0
		s.maxDepth[r] = 0
	}
	if s.cfg.Users > 0 {
		s.reqArrival = s.reqArrival[:0]
		s.reqNet = s.reqNet[:0]
		s.reqUser = s.reqUser[:0]
		s.lat = s.lat[:0]
	}
	s.cursor = 0
	s.rr = 0
	s.served = 0
	s.events = 0
	s.batches = 0
	s.sumBatch = 0
	s.simEndS = 0
	s.timeline = s.timeline[:0]
}

// route picks the replica for request id under the configured router.
//
//dnnperf:allocfree
func (s *Sim) route(id int32) int32 {
	switch s.cfg.Router {
	case RoutePlanned:
		return s.cfg.Planned[id]
	case RouteRR:
		r := s.rr
		s.rr++
		if int(s.rr) == len(s.rings) {
			s.rr = 0
		}
		return r
	default: // RouteJSQ
		best := int32(0)
		bestDepth := s.rings[0].n + s.inflightN[0]
		for r := 1; r < len(s.rings); r++ {
			if d := s.rings[r].n + s.inflightN[r]; d < bestDepth {
				best = int32(r)
				bestDepth = d
			}
		}
		return best
	}
}

// onArrival dispatches one open-loop trace request and schedules the next.
func (s *Sim) onArrival(id int32, now float64) {
	s.enqueue(s.route(id), id, now)
	if s.cursor < s.trace.Len() {
		s.heap.push(s.trace.ArrivalS[s.cursor], evArrival, int32(s.cursor))
		s.cursor++
	}
}

// onUser issues one closed-loop request for user u.
func (s *Sim) onUser(u int32, now float64) {
	id := int32(len(s.reqArrival))
	s.reqArrival = append(s.reqArrival, now)
	s.reqNet = append(s.reqNet, int32(s.mix.next()%uint64(len(s.st.nets))))
	s.reqUser = append(s.reqUser, u)
	s.lat = append(s.lat, 0)
	s.enqueue(s.route(id), id, now)
}

// enqueue queues request id on replica r, starting a batch if it is idle.
func (s *Sim) enqueue(r, id int32, now float64) {
	q := &s.rings[r]
	if q.full() {
		q.grow()
	}
	q.push(id)
	if d := q.n + s.inflightN[r]; d > s.maxDepth[r] {
		s.maxDepth[r] = d
	}
	if !s.busy[r] {
		s.startBatch(r, now)
	}
}

// startBatch forms the next batch on replica r: the head-of-queue request
// plus the consecutive same-network requests behind it, up to the batch
// cap, then schedules the completion via the step-time oracle.
//
//dnnperf:allocfree
func (s *Sim) startBatch(r int32, now float64) {
	q := &s.rings[r]
	net := s.reqNet[q.at(0)]
	b := int32(1)
	for int(b) < s.cfg.MaxBatch && b < q.n && s.reqNet[q.at(b)] == net {
		b++
	}
	base := r * int32(s.cfg.MaxBatch)
	for k := int32(0); k < b; k++ {
		s.inflight[base+k] = q.pop()
	}
	s.inflightN[r] = b
	s.batchStartS[r] = now
	step := s.st.At(s.cfg.Fleet[r], net, b)
	s.busy[r] = true
	s.busyS[r] += step
	s.batches++
	s.sumBatch += int64(b)
	s.heap.push(now+step, evFree, r)
}

// onFree completes replica r's batch: records each request's end-to-end
// latency, hands closed-loop users their next think, and forms the next
// batch if the queue is non-empty.
func (s *Sim) onFree(r int32, now float64) {
	base := r * int32(s.cfg.MaxBatch)
	n := s.inflightN[r]
	done := now + s.cfg.PostProcS
	if done > s.simEndS {
		s.simEndS = done
	}
	closed := s.cfg.Users > 0
	for k := int32(0); k < n; k++ {
		id := s.inflight[base+k]
		s.lat[id] = done - s.reqArrival[id]
		s.served++
		if closed {
			if next := done + s.think.Sample(); next <= s.cfg.HorizonS {
				s.heap.push(next, evUserNext, s.reqUser[id])
			}
		}
	}
	if s.cfg.RecordTimeline {
		s.timeline = append(s.timeline, BatchSpan{
			Replica: r,
			Net:     s.reqNet[s.inflight[base]],
			Size:    n,
			StartS:  s.batchStartS[r],
			DurS:    now - s.batchStartS[r],
		})
	}
	s.inflightN[r] = 0
	s.busy[r] = false
	if s.rings[r].n > 0 {
		s.startBatch(r, now)
	}
}

// summarize computes the replay's Result from the recorded latencies.
func (s *Sim) summarize() Result {
	res := Result{
		Requests:      s.served,
		SimSeconds:    s.simEndS,
		Events:        s.events,
		Batches:       s.batches,
		Util:          s.busyS,
		MaxQueueDepth: s.maxDepth,
	}
	if s.batches > 0 {
		res.MeanBatch = float64(s.sumBatch) / float64(s.batches)
	}
	if s.simEndS > 0 {
		for r := range s.busyS {
			s.busyS[r] /= s.simEndS
		}
	}
	if cap(s.scratch) < len(s.lat) {
		s.scratch = make([]float64, len(s.lat))
	}
	scratch := s.scratch[:len(s.lat)]
	copy(scratch, s.lat)
	slices.Sort(scratch)
	res.P50S = quantileSorted(scratch, 0.50)
	res.P90S = quantileSorted(scratch, 0.90)
	res.P99S = quantileSorted(scratch, 0.99)
	res.P999S = quantileSorted(scratch, 0.999)
	if n := len(scratch); n > 0 {
		res.MaxS = scratch[n-1]
	}
	return res
}

// Timeline returns the batch spans recorded under Config.RecordTimeline,
// valid until the next Replay.
func (s *Sim) Timeline() []BatchSpan { return s.timeline }

// quantileSorted returns the exact q-quantile of the sorted samples, the
// same ceil-rank convention internal/loadgen reports.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
