// Package fleetsim is a high-throughput discrete-event simulator for a
// fleet of GPU replicas serving DNN inference traffic. It replays a
// request-arrival trace (or a closed-loop user population) against a
// heterogeneous fleet and reports end-to-end latency percentiles,
// per-replica utilization and queue depths — the capacity-planning view
// ("how many A100s for a million users at p99 < X?") the paper's
// single-task case studies stop short of.
//
// The step-time oracle is the repository's compiled prediction plans: every
// (GPU, network, batch) service time the simulator can ever need is
// memoized into a flat StepTable before replay, one core.PredictSweep per
// (GPU model, network) pair, so the event loop never touches a model, a
// map or an allocation. A request's simulated end-to-end latency is
//
//	E2E = queueing delay            (emergent from the event dynamics)
//	    + batch formation           (requests ride the batch the head forms)
//	    + step time                 (StepTable lookup for the formed batch)
//	    + post-processing           (fixed per-request cost)
//
// Everything is deterministic: seeded splitmix64 randomness, a binary-heap
// event queue with FIFO sequence tie-breaks, and goroutine-per-scenario
// sweeps that merge into indexed slots — results are bit-identical across
// runs, GOMAXPROCS settings and -race.
package fleetsim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/dnn"
)

// StepTable memoizes the step-time oracle: seconds for one batch of each
// (GPU type, network, batch size) triple, in a flat slice the event loop
// indexes without hashing. Built once before replay and immutable after,
// it is safe to share across concurrent scenario workers.
type StepTable struct {
	gpus     []string // GPU type names; index is the type id replicas refer to
	nets     []string // network names; index is the trace's net id
	maxBatch int
	t        []float64 // [(g·len(nets)+n)·maxBatch + (b−1)] = seconds
}

// NewStepTable allocates a zero-filled table; fill it with Set and check it
// with Validate. Synthetic tables and tests use this directly; production
// tables come from BuildStepTable.
func NewStepTable(gpus, nets []string, maxBatch int) (*StepTable, error) {
	if len(gpus) == 0 || len(nets) == 0 {
		return nil, fmt.Errorf("fleetsim: step table needs at least one GPU and one network")
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("fleetsim: max batch %d must be positive", maxBatch)
	}
	return &StepTable{
		gpus:     append([]string(nil), gpus...),
		nets:     append([]string(nil), nets...),
		maxBatch: maxBatch,
		t:        make([]float64, len(gpus)*len(nets)*maxBatch),
	}, nil
}

// GPUs returns the GPU type names; the slice is shared and read-only.
func (st *StepTable) GPUs() []string { return st.gpus }

// Nets returns the network names; the slice is shared and read-only.
func (st *StepTable) Nets() []string { return st.nets }

// MaxBatch returns the largest batch size the table holds times for.
func (st *StepTable) MaxBatch() int { return st.maxBatch }

// At returns the step time in seconds for one batch of size b (1-based) of
// network n on GPU type g. It is the event loop's only oracle access and
// performs no allocation.
//
//dnnperf:allocfree
func (st *StepTable) At(g, n, b int32) float64 {
	return st.t[(int(g)*len(st.nets)+int(n))*st.maxBatch+int(b)-1]
}

// Set stores the step time for (g, n, b), b 1-based.
func (st *StepTable) Set(g, n, b int, secs float64) {
	st.t[(g*len(st.nets)+n)*st.maxBatch+b-1] = secs
}

// Validate checks every entry is positive and finite, the invariant replay
// correctness rests on (a zero service time would livelock the queue math).
func (st *StepTable) Validate() error {
	for i, v := range st.t {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			g := i / (len(st.nets) * st.maxBatch)
			n := (i / st.maxBatch) % len(st.nets)
			return fmt.Errorf("fleetsim: step time (%s, %s, batch %d) = %v, want positive finite",
				st.gpus[g], st.nets[n], i%st.maxBatch+1, v)
		}
	}
	return nil
}

// BuildStepTable compiles the oracle from prediction models: one
// PredictSweep per (model, network) pair over batches 1..maxBatch, run
// goroutine-per-pair with indexed result slots like core.TaskTimes, so the
// table is deterministic and the first failing pair in input order wins
// error reporting. GPU type ids follow the models' order, network ids the
// nets' order.
func BuildStepTable(models []core.SweepPredictor, nets []*dnn.Network, maxBatch int) (*StepTable, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("fleetsim: step table needs at least one model")
	}
	gpus := make([]string, len(models))
	for g, m := range models {
		gpus[g] = m.GPUName()
	}
	names := make([]string, len(nets))
	for n, net := range nets {
		names[n] = net.Name
	}
	st, err := NewStepTable(gpus, names, maxBatch)
	if err != nil {
		return nil, err
	}
	batches := make([]int, maxBatch)
	for b := range batches {
		batches[b] = b + 1
	}

	errs := make([]error, len(models)*len(nets))
	var wg sync.WaitGroup
	for g, m := range models {
		for n, net := range nets {
			wg.Add(1)
			go func(g, n int, m core.SweepPredictor, net *dnn.Network) {
				defer wg.Done()
				out, err := m.PredictSweep(net, batches)
				if err != nil {
					errs[g*len(nets)+n] = fmt.Errorf("fleetsim: step table cell (%s, %s): %w", m.GPUName(), net.Name, err)
					return
				}
				for b, v := range out {
					st.Set(g, n, b+1, v.Float64())
				}
			}(g, n, m, net)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// SyntheticStepTable builds a seeded heterogeneous oracle without fitting
// models: each GPU type gets a fleet-speed factor in [0.5, 2), each network
// a batch-1 work size log-uniform over [1ms, 50ms] and a fixed-cost share —
// step time is affine in the batch size, t(b) = w·(α + (1−α)·b)/speed,
// mirroring the per-group linearity the paper's predictors exhibit. The
// same (nGPUs, nNets, maxBatch, seed) always produces the same table.
func SyntheticStepTable(nGPUs, nNets, maxBatch int, seed int64) *StepTable {
	gpus := make([]string, nGPUs)
	for g := range gpus {
		gpus[g] = fmt.Sprintf("gpu%02d", g)
	}
	nets := make([]string, nNets)
	for n := range nets {
		nets[n] = fmt.Sprintf("net%02d", n)
	}
	st, err := NewStepTable(gpus, nets, maxBatch)
	if err != nil {
		panic(err) // caller constants; misuse is a bug
	}
	rng := splitmix{s: uint64(seed)}
	speed := make([]float64, nGPUs)
	for g := range speed {
		speed[g] = 0.5 + 1.5*rng.float64()
	}
	for n := 0; n < nNets; n++ {
		work := 1e-3 * math.Pow(50, rng.float64()) // batch-1 seconds in [1ms, 50ms)
		alpha := 0.2 + 0.4*rng.float64()           // fixed-cost share of the batch-1 time
		for g := 0; g < nGPUs; g++ {
			for b := 1; b <= maxBatch; b++ {
				st.Set(g, n, b, work*(alpha+(1-alpha)*float64(b))/speed[g])
			}
		}
	}
	return st
}

// splitmix is splitmix64, the repository's seeded, platform-identical RNG.
type splitmix struct{ s uint64 }

//dnnperf:allocfree
func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
//
//dnnperf:allocfree
func (r *splitmix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
