package fleetsim

import (
	"fmt"

	"repro/internal/loadgen"
)

// Trace is a replayable open-loop request trace: request i arrives at
// ArrivalS[i] simulated seconds asking for network Net[i]. Arrival times
// strictly increase; a trace is immutable during replay and safe to share
// across concurrent scenario workers.
type Trace struct {
	ArrivalS []float64
	Net      []int32
}

// Len returns the request count.
func (tr *Trace) Len() int { return len(tr.ArrivalS) }

// Validate checks the trace invariants replay relies on.
func (tr *Trace) Validate(nNets int) error {
	if len(tr.ArrivalS) == 0 {
		return fmt.Errorf("fleetsim: empty trace")
	}
	if len(tr.Net) != len(tr.ArrivalS) {
		return fmt.Errorf("fleetsim: %d arrival times but %d networks", len(tr.ArrivalS), len(tr.Net))
	}
	prev := -1.0
	for i, at := range tr.ArrivalS {
		if !(at >= 0) || at <= prev {
			return fmt.Errorf("fleetsim: arrival %d at %v is not strictly after %v", i, at, prev)
		}
		prev = at
		if n := tr.Net[i]; n < 0 || int(n) >= nNets {
			return fmt.Errorf("fleetsim: request %d references network %d of %d", i, n, nNets)
		}
	}
	return nil
}

// BuildTrace stamps n arrivals from a loadgen arrival process and draws
// each request's network uniformly from nNets with a seeded splitmix —
// the trace source for open-loop replay. Deterministic in (process state,
// nNets, n, mixSeed).
func BuildTrace(proc loadgen.Process, nNets, n int, mixSeed int64) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleetsim: trace length %d must be positive", n)
	}
	if nNets <= 0 {
		return nil, fmt.Errorf("fleetsim: trace needs at least one network")
	}
	tr := &Trace{
		ArrivalS: make([]float64, n),
		Net:      make([]int32, n),
	}
	mix := splitmix{s: uint64(mixSeed)}
	for i := 0; i < n; i++ {
		tr.ArrivalS[i] = proc.Next()
		tr.Net[i] = int32(mix.next() % uint64(nNets))
	}
	return tr, nil
}
