// Package gpu defines GPU hardware descriptors and the registry of devices
// used in the paper's experiments (Table 1). The performance models consume
// only the *theoretical* specification values here — memory bandwidth, peak
// FP32 throughput, memory capacity — exactly the directly-known information
// the paper restricts itself to.
package gpu

import (
	"fmt"
	"math"
	"sort"
)

// Spec describes a GPU by its theoretical capabilities.
type Spec struct {
	// Name is the marketing name, e.g. "A100".
	Name string
	// Architecture is the NVIDIA architecture generation.
	Architecture string
	// MemBWGBps is the theoretical memory bandwidth in GB/s.
	MemBWGBps float64
	// MemGB is the device memory capacity in GB.
	MemGB float64
	// FP32TFLOPS is the peak FP32 throughput in TFLOPS.
	FP32TFLOPS float64
	// TensorCores is the tensor core count (0 for pre-Turing consumer parts).
	TensorCores int
	// SMCount is the streaming multiprocessor count, used by the synthetic
	// device model's utilization heuristics.
	SMCount int
}

// PeakBytesPerSec returns the theoretical bandwidth in bytes/second.
func (s Spec) PeakBytesPerSec() float64 { return s.MemBWGBps * 1e9 }

// PeakFLOPS returns the theoretical FP32 throughput in FLOP/s.
func (s Spec) PeakFLOPS() float64 { return s.FP32TFLOPS * 1e12 }

// MemBytes returns the device memory capacity in bytes.
func (s Spec) MemBytes() int64 { return int64(s.MemGB * 1e9) }

// BalancePoint returns the roofline ridge point in FLOPs/byte: workloads with
// lower arithmetic intensity are memory-bound on this device.
func (s Spec) BalancePoint() float64 {
	if s.MemBWGBps == 0 {
		return 0
	}
	return s.PeakFLOPS() / s.PeakBytesPerSec()
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("%s (%.0f GB/s, %.0f GB, %.1f TFLOPS FP32, %d tensor cores)",
		s.Name, s.MemBWGBps, s.MemGB, s.FP32TFLOPS, s.TensorCores)
}

// WithBandwidth returns a copy of the spec with a modified theoretical memory
// bandwidth, for design-space exploration (case study 1: "what is the optimal
// memory bandwidth if the number of cores and the frequency are unchanged").
func (s Spec) WithBandwidth(gbps float64) Spec {
	out := s
	out.MemBWGBps = gbps
	// Bit-level identity, not numeric closeness: any requested bandwidth
	// other than the spec's own exact value names a hypothetical variant.
	if math.Float64bits(gbps) != math.Float64bits(s.MemBWGBps) {
		out.Name = fmt.Sprintf("%s@%.0fGBps", s.Name, gbps)
	}
	return out
}

// The seven GPUs of Table 1. SM counts are the public die configurations.
var (
	A100 = Spec{Name: "A100", Architecture: "Ampere", MemBWGBps: 1555, MemGB: 40,
		FP32TFLOPS: 19.5, TensorCores: 432, SMCount: 108}
	A40 = Spec{Name: "A40", Architecture: "Ampere", MemBWGBps: 696, MemGB: 48,
		FP32TFLOPS: 37.4, TensorCores: 336, SMCount: 84}
	GTX1080Ti = Spec{Name: "GTX 1080 Ti", Architecture: "Pascal", MemBWGBps: 484, MemGB: 11,
		FP32TFLOPS: 11.3, TensorCores: 0, SMCount: 28}
	QuadroP620 = Spec{Name: "Quadro P620", Architecture: "Pascal", MemBWGBps: 80, MemGB: 2,
		FP32TFLOPS: 1.4, TensorCores: 0, SMCount: 4}
	RTXA5000 = Spec{Name: "RTX A5000", Architecture: "Ampere", MemBWGBps: 768, MemGB: 24,
		FP32TFLOPS: 27.8, TensorCores: 256, SMCount: 64}
	TitanRTX = Spec{Name: "TITAN RTX", Architecture: "Turing", MemBWGBps: 672, MemGB: 24,
		FP32TFLOPS: 16.3, TensorCores: 576, SMCount: 72}
	V100 = Spec{Name: "V100", Architecture: "Volta", MemBWGBps: 900, MemGB: 16,
		FP32TFLOPS: 14.1, TensorCores: 640, SMCount: 80}
)

// All returns the Table 1 GPUs in the paper's listing order.
func All() []Spec {
	return []Spec{A100, A40, GTX1080Ti, QuadroP620, RTXA5000, TitanRTX, V100}
}

// ByName looks up a Table 1 GPU by (case-sensitive) name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("gpu: unknown GPU %q", name)
}

// Names returns the registry names in sorted order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// Hypothetical builds a GPU that does not exist, for use with the inter-GPU
// model ("our inter-GPU model allows users to evaluate hypothetical GPUs by
// providing memory bandwidth and FLOPS", §7).
func Hypothetical(name string, bwGBps, memGB, fp32TFLOPS float64) Spec {
	return Spec{Name: name, Architecture: "hypothetical",
		MemBWGBps: bwGBps, MemGB: memGB, FP32TFLOPS: fp32TFLOPS, SMCount: 64}
}

// Instance carves a multi-instance-GPU (MIG) slice out of the device:
// compute (SMs, TFLOPS, tensor cores) scales with smFrac, memory capacity
// and bandwidth with memFrac. The paper names MIG ("emerging GPU hardware
// (e.g., multi-instance GPUs)") as future work; slices are exactly the kind
// of never-measured device the inter-GPU model predicts from specifications.
func (s Spec) Instance(name string, smFrac, memFrac float64) Spec {
	out := s
	out.Name = fmt.Sprintf("%s/%s", s.Name, name)
	out.SMCount = int(float64(s.SMCount)*smFrac + 0.5)
	if out.SMCount < 1 {
		out.SMCount = 1
	}
	out.FP32TFLOPS = s.FP32TFLOPS * smFrac
	out.TensorCores = int(float64(s.TensorCores)*smFrac + 0.5)
	out.MemGB = s.MemGB * memFrac
	out.MemBWGBps = s.MemBWGBps * memFrac
	return out
}

// MIGProfile is one way to slice a GPU: Count concurrent instances, each
// with the given compute and memory fractions.
type MIGProfile struct {
	Name            string
	Count           int
	SMFrac, MemFrac float64
}

// A100MIGProfiles returns the homogeneous A100 slicings (whole GPU, 3g.20gb,
// 2g.10gb, 1g.5gb), mirroring NVIDIA's MIG geometry.
func A100MIGProfiles() []MIGProfile {
	return []MIGProfile{
		{Name: "7g.40gb", Count: 1, SMFrac: 1.0, MemFrac: 1.0},
		{Name: "3g.20gb", Count: 2, SMFrac: 3.0 / 7, MemFrac: 0.5},
		{Name: "2g.10gb", Count: 3, SMFrac: 2.0 / 7, MemFrac: 0.25},
		{Name: "1g.5gb", Count: 7, SMFrac: 1.0 / 7, MemFrac: 0.125},
	}
}
