package gpu

import (
	"strings"
	"testing"
)

func TestTable1Values(t *testing.T) {
	// The registry must carry the paper's Table 1 verbatim.
	tests := []struct {
		spec   Spec
		bw     float64
		mem    float64
		tflops float64
		tc     int
	}{
		{A100, 1555, 40, 19.5, 432},
		{A40, 696, 48, 37.4, 336},
		{GTX1080Ti, 484, 11, 11.3, 0},
		{QuadroP620, 80, 2, 1.4, 0},
		{RTXA5000, 768, 24, 27.8, 256},
		{TitanRTX, 672, 24, 16.3, 576},
		{V100, 900, 16, 14.1, 640},
	}
	for _, tt := range tests {
		if tt.spec.MemBWGBps != tt.bw || tt.spec.MemGB != tt.mem ||
			tt.spec.FP32TFLOPS != tt.tflops || tt.spec.TensorCores != tt.tc {
			t.Errorf("%s: got (%v GB/s, %v GB, %v TFLOPS, %d TC)",
				tt.spec.Name, tt.spec.MemBWGBps, tt.spec.MemGB, tt.spec.FP32TFLOPS, tt.spec.TensorCores)
		}
	}
}

func TestAllOrderAndCount(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("All() returned %d GPUs, want 7", len(all))
	}
	if all[0].Name != "A100" || all[6].Name != "V100" {
		t.Fatalf("unexpected order: %s … %s", all[0].Name, all[6].Name)
	}
	// All must return fresh slices sharing no state.
	all[0].Name = "mutated"
	if All()[0].Name != "A100" {
		t.Fatal("All() exposes shared mutable state")
	}
}

func TestByName(t *testing.T) {
	g, err := ByName("TITAN RTX")
	if err != nil {
		t.Fatal(err)
	}
	if g.MemBWGBps != 672 {
		t.Fatalf("TITAN RTX bandwidth = %v", g.MemBWGBps)
	}
	if _, err := ByName("H100"); err == nil {
		t.Fatal("want error for unknown GPU")
	}
}

func TestDerivedQuantities(t *testing.T) {
	if got := A100.PeakBytesPerSec(); got != 1555e9 {
		t.Errorf("PeakBytesPerSec = %v", got)
	}
	if got := A100.PeakFLOPS(); got != 19.5e12 {
		t.Errorf("PeakFLOPS = %v", got)
	}
	if got := A100.MemBytes(); got != 40e9 {
		t.Errorf("MemBytes = %v", got)
	}
	// A100 ridge: 19.5e12 / 1555e9 ≈ 12.54 FLOP/byte.
	bp := A100.BalancePoint()
	if bp < 12.4 || bp > 12.7 {
		t.Errorf("BalancePoint = %v", bp)
	}
	if (Spec{}).BalancePoint() != 0 {
		t.Error("zero spec BalancePoint should be 0")
	}
}

func TestWithBandwidth(t *testing.T) {
	mod := TitanRTX.WithBandwidth(1000)
	if mod.MemBWGBps != 1000 {
		t.Fatalf("WithBandwidth = %v", mod.MemBWGBps)
	}
	if mod.Name == TitanRTX.Name {
		t.Fatal("modified GPU should get a distinct name")
	}
	if mod.FP32TFLOPS != TitanRTX.FP32TFLOPS || mod.SMCount != TitanRTX.SMCount {
		t.Fatal("WithBandwidth must keep cores and frequency unchanged")
	}
	if TitanRTX.MemBWGBps != 672 {
		t.Fatal("WithBandwidth mutated the original")
	}
}

func TestHypothetical(t *testing.T) {
	h := Hypothetical("dream", 2000, 80, 50)
	if h.MemBWGBps != 2000 || h.MemGB != 80 || h.FP32TFLOPS != 50 {
		t.Fatalf("Hypothetical = %+v", h)
	}
	if h.SMCount <= 0 {
		t.Fatal("hypothetical GPUs need an SM count for the device model")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestString(t *testing.T) {
	s := A100.String()
	if !strings.Contains(s, "A100") || !strings.Contains(s, "1555") {
		t.Fatalf("String() = %q", s)
	}
}

func TestInstanceSlicing(t *testing.T) {
	inst := A100.Instance("1g.5gb", 1.0/7, 0.125)
	if inst.Name != "A100/1g.5gb" {
		t.Fatalf("name = %q", inst.Name)
	}
	if inst.MemGB != 5 {
		t.Fatalf("memory = %v GB", inst.MemGB)
	}
	if inst.MemBWGBps != 1555*0.125 {
		t.Fatalf("bandwidth = %v", inst.MemBWGBps)
	}
	if inst.SMCount < 14 || inst.SMCount > 16 { // 108/7 ≈ 15.4
		t.Fatalf("SMs = %d", inst.SMCount)
	}
	if inst.Architecture != "Ampere" {
		t.Fatal("architecture must carry over")
	}
	if A100.SMCount != 108 {
		t.Fatal("Instance mutated the parent")
	}
	// Tiny fractions still yield a usable device.
	micro := A100.Instance("micro", 0.001, 0.001)
	if micro.SMCount < 1 {
		t.Fatalf("micro SMs = %d", micro.SMCount)
	}
}

func TestA100MIGProfiles(t *testing.T) {
	profiles := A100MIGProfiles()
	if len(profiles) != 4 {
		t.Fatalf("%d profiles", len(profiles))
	}
	for _, p := range profiles {
		if p.Count < 1 || p.SMFrac <= 0 || p.SMFrac > 1 || p.MemFrac <= 0 || p.MemFrac > 1 {
			t.Fatalf("bad profile %+v", p)
		}
		// Homogeneous slicings must not oversubscribe the device.
		if float64(p.Count)*p.SMFrac > 1.01 || float64(p.Count)*p.MemFrac > 1.01 {
			t.Fatalf("profile %s oversubscribes: %+v", p.Name, p)
		}
	}
	if profiles[0].Name != "7g.40gb" || profiles[0].Count != 1 {
		t.Fatalf("first profile = %+v", profiles[0])
	}
}
