// Package kernels models how a cuDNN-like vendor library lowers DNN layers
// to GPU kernel sequences. It reproduces the structure the paper observes in
// cuDNN executions (§4 O5): a layer typically dispatches 1) a pre-processing
// kernel working on the input tensor, 2) one main computation kernel whose
// cost tracks the layer's operation count, and 3) a post-processing kernel
// working on the output tensor — which is exactly what motivates the
// input-/operation-/output-driven kernel classification.
//
// The selection is deterministic in the layer's structural parameters,
// mirroring cuDNN's size-dependent algorithm and tile choices ("even if the
// same method is used, the GPU libraries might use different implementations
// according to the layer size and data layout", §2.1). Across the full zoo
// this yields on the order of 180 distinct kernel names, matching the paper's
// dataset ("about 182 kernels each GPU").
package kernels

import (
	"fmt"

	"repro/internal/dnn"
)

// Class is a kernel's ground-truth driver class. It is produced by this
// package (and consumed by the synthetic device model) but is deliberately
// NOT exposed to the performance models in internal/core — they must recover
// it from data via the R² classification of §4 O5. Tests use it as the
// planted truth the classifier should find.
type Class string

// Driver classes.
const (
	// ClassInput marks pre-processing kernels whose time tracks the layer
	// input size (N·C·H·W of the input tensor).
	ClassInput Class = "input"
	// ClassOperation marks main computation kernels whose time tracks the
	// layer's FLOPs.
	ClassOperation Class = "operation"
	// ClassOutput marks post-processing kernels whose time tracks the layer
	// output size.
	ClassOutput Class = "output"
)

// Kernel is one GPU kernel launch generated for a layer.
type Kernel struct {
	// Name identifies the kernel implementation (family plus tile variant),
	// e.g. "winograd_gemm_128x64". Kernels with equal names share a device
	// efficiency profile in the synthetic device model, as real kernels do.
	Name string
	// Class is the ground-truth driver class (see the type doc).
	Class Class

	// FLOPs is the floating-point work the kernel actually executes on the
	// device. For main kernels this is the layer's theoretical FLOPs scaled
	// by the algorithm's arithmetic factor (e.g. Winograd executes fewer
	// multiplications than the direct method).
	FLOPs int64
	// BytesRead and BytesWritten are the kernel's DRAM traffic estimates.
	BytesRead, BytesWritten int64

	// LayerFLOPs, LayerInputElems and LayerOutputElems are the *layer-level*
	// driver candidates the kernel-wise predictor regresses against — the
	// quantities available from pure structural analysis (§4 O5).
	LayerFLOPs       int64
	LayerInputElems  int64
	LayerOutputElems int64
}

// Bytes returns total DRAM traffic.
func (k Kernel) Bytes() int64 { return k.BytesRead + k.BytesWritten }

// ConvAlgorithm identifies the convolution lowering cuDNN would select.
type ConvAlgorithm string

// Convolution algorithms (§2.2 lists the same four).
const (
	AlgoDirect       ConvAlgorithm = "direct"
	AlgoImplicitGEMM ConvAlgorithm = "implicit_gemm"
	AlgoWinograd     ConvAlgorithm = "winograd"
	AlgoFFT          ConvAlgorithm = "fft"
	AlgoDepthwise    ConvAlgorithm = "depthwise"
	AlgoGroupedGEMM  ConvAlgorithm = "grouped_gemm"
)

// SelectConvAlgorithm reproduces a cuDNN-style heuristic choice from layer
// parameters. The thresholds are fixed conventions; what matters for the
// study is that the choice is a deterministic function of layer size, so the
// same layer signature always maps to the same kernel list.
func SelectConvAlgorithm(l *dnn.Layer) ConvAlgorithm {
	switch {
	case l.Groups == l.Cin && l.Cin == l.Cout && l.Groups > 1:
		return AlgoDepthwise
	case l.Groups > 1:
		return AlgoGroupedGEMM
	case l.KH == 1 && l.KW == 1:
		return AlgoImplicitGEMM
	case l.KH == 3 && l.KW == 3 && l.Stride == 1 && l.Cin >= 16 && l.Cout >= 16:
		return AlgoWinograd
	case l.KH >= 5 && l.InShape.Spatial() >= 56*56:
		return AlgoFFT
	case l.KH*l.KW*l.Cin < 64:
		return AlgoDirect
	default:
		return AlgoImplicitGEMM
	}
}

// gemmTile buckets a GEMM-shaped problem into a tile-size variant, the way
// cuDNN dispatches different SASS kernels by problem size.
func gemmTile(m, nCols int64) string {
	switch {
	case m >= 256 && nCols >= 128:
		return "256x128"
	case m >= 128 && nCols >= 128:
		return "128x128"
	case m >= 128 && nCols >= 64:
		return "128x64"
	case m >= 64 && nCols >= 64:
		return "64x64"
	case m >= 64 && nCols >= 32:
		return "64x32"
	default:
		return "32x32"
	}
}

// elemBytes is the FP32 element size.
const elemBytes = 4

// ForLayer returns the kernel sequence a cuDNN-like library dispatches for
// the layer. The layer must have inferred shapes. Layers that lower to pure
// views (Flatten, Dropout at inference, Identity) return no kernels.
func ForLayer(l *dnn.Layer) []Kernel {
	inElems := int64(0)
	for _, s := range l.InShapes {
		inElems += s.Numel()
	}
	if inElems == 0 {
		inElems = l.InShape.Numel()
	}
	outElems := l.OutShape.Numel()
	layerFLOPs := dnn.LayerFLOPs(l)
	weightBytes := dnn.LayerWeightBytes(l)

	base := Kernel{
		LayerFLOPs:       layerFLOPs,
		LayerInputElems:  inElems,
		LayerOutputElems: outElems,
	}
	mk := func(name string, class Class, flops, read, written int64) Kernel {
		k := base
		k.Name = name
		k.Class = class
		k.FLOPs = flops
		k.BytesRead = read
		k.BytesWritten = written
		return k
	}

	switch l.Kind {
	case dnn.KindConv2D:
		return convKernels(l, base, mk, inElems, outElems, layerFLOPs, weightBytes)

	case dnn.KindLinear:
		// GEMM: (rows = batch·positions) × (cols = OutFeatures).
		rows := outElems / int64(l.OutFeatures)
		tile := gemmTile(rows, int64(l.OutFeatures))
		ks := []Kernel{
			mk("sgemm_"+tile, ClassOperation, layerFLOPs,
				inElems*elemBytes+weightBytes, outElems*elemBytes),
			mk("add_bias", ClassOutput, outElems,
				outElems*elemBytes, outElems*elemBytes),
		}
		return ks

	case dnn.KindBatchNorm:
		return []Kernel{mk("bn_fwd_inference", ClassInput, layerFLOPs,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindLayerNorm:
		return []Kernel{mk("layernorm_fwd", ClassInput, layerFLOPs,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindReLU, dnn.KindReLU6, dnn.KindSigmoid, dnn.KindGELU:
		name := fmt.Sprintf("elementwise_%s", kindSlug(l.Kind))
		return []Kernel{mk(name, ClassOutput, layerFLOPs,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindSoftmax:
		return []Kernel{mk("softmax_fwd", ClassOutput, layerFLOPs,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindMaxPool2D, dnn.KindAvgPool2D:
		name := "pooling_fwd_max"
		if l.Kind == dnn.KindAvgPool2D {
			name = "pooling_fwd_avg"
		}
		return []Kernel{mk(name, ClassInput, layerFLOPs,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindGlobalAvgPool:
		return []Kernel{mk("reduce_spatial_avg", ClassInput, layerFLOPs,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindAdd:
		return []Kernel{mk("elementwise_add", ClassOutput, layerFLOPs,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindConcat:
		return []Kernel{mk("cat_copy", ClassOutput, 0,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindChannelShuffle:
		return []Kernel{mk("channel_shuffle_copy", ClassOutput, 0,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindEmbedding:
		return []Kernel{mk("embedding_lookup", ClassOutput, 0,
			outElems*elemBytes, // gathers one row per token
			outElems*elemBytes)}

	case dnn.KindMatMul:
		// Batched attention GEMM; bucket by per-head matrix sizes.
		t := int64(l.InShapes[0][1])
		tile := gemmTile(t, t)
		name := "batched_gemm_nt_" + tile
		if !l.TransposeB {
			name = "batched_gemm_nn_" + tile
		}
		return []Kernel{mk(name, ClassOperation, layerFLOPs,
			inElems*elemBytes, outElems*elemBytes)}

	case dnn.KindFlatten, dnn.KindDropout, dnn.KindReshapeTokens, dnn.KindIdentity:
		return nil
	}
	return nil
}

// convKernels lowers a convolution through its selected algorithm.
func convKernels(l *dnn.Layer, base Kernel,
	mk func(string, Class, int64, int64, int64) Kernel,
	inElems, outElems, layerFLOPs, weightBytes int64) []Kernel {

	algo := SelectConvAlgorithm(l)
	inBytes := inElems * elemBytes
	outBytes := outElems * elemBytes
	// GEMM view of the convolution: rows = N·H'·W', cols = Cout.
	rows := outElems / int64(l.Cout)
	tile := gemmTile(rows, int64(l.Cout))

	switch algo {
	case AlgoDepthwise:
		name := fmt.Sprintf("depthwise_conv_k%d_s%d", l.KH, l.Stride)
		return []Kernel{mk(name, ClassOperation, layerFLOPs,
			inBytes+weightBytes, outBytes)}

	case AlgoGroupedGEMM:
		return []Kernel{mk("grouped_gemm_"+tile, ClassOperation, layerFLOPs,
			inBytes+weightBytes, outBytes)}

	case AlgoImplicitGEMM:
		// 1×1 and generic implicit GEMM: a single fused main kernel, plus an
		// im2col-style pre-pass only for spatial kernels.
		var ks []Kernel
		if l.KH > 1 || l.KW > 1 {
			patch := int64(l.KH * l.KW)
			ks = append(ks, mk("im2col", ClassInput, 0,
				inBytes, inBytes*patch))
		}
		ks = append(ks, mk("implicit_gemm_"+tile, ClassOperation, layerFLOPs,
			inBytes+weightBytes, outBytes))
		return ks

	case AlgoWinograd:
		// F(2×2, 3×3): 2.25× multiplication reduction on the main GEMM.
		mainFLOPs := layerFLOPs * 4 / 9
		return []Kernel{
			mk("winograd_input_transform", ClassInput, inElems*2,
				inBytes, inBytes*4), // 16/4 tile expansion
			mk("winograd_gemm_"+tile, ClassOperation, mainFLOPs,
				inBytes*4+weightBytes*16/9, outBytes*4),
			mk("winograd_output_transform", ClassOutput, outElems*2,
				outBytes*4, outBytes),
		}

	case AlgoFFT:
		return []Kernel{
			mk("fft_r2c_plan", ClassInput, inElems*4,
				inBytes, inBytes*2),
			mk("fft_cgemm_"+tile, ClassOperation, layerFLOPs/2,
				inBytes*2+weightBytes*2, outBytes*2),
			mk("fft_c2r_inverse", ClassOutput, outElems*4,
				outBytes*2, outBytes),
		}

	default: // AlgoDirect
		name := fmt.Sprintf("direct_conv_k%d", l.KH)
		return []Kernel{mk(name, ClassOperation, layerFLOPs,
			inBytes+weightBytes, outBytes)}
	}
}

// kindSlug lowers a layer kind to a kernel-name fragment.
func kindSlug(k dnn.Kind) string {
	switch k {
	case dnn.KindReLU:
		return "relu"
	case dnn.KindReLU6:
		return "relu6"
	case dnn.KindSigmoid:
		return "sigmoid"
	case dnn.KindGELU:
		return "gelu"
	}
	return "op"
}

// BatchBreakpoints returns the batch sizes at which the layer's kernel
// *names* can change as the batch grows, in ascending order. Only GEMM-backed
// layers (Conv2D, Linear) dispatch tile variants keyed by the GEMM row count
// m = batch·positions; the tile thresholds {32, 64, 128, 256} are first
// crossed at batch ceil(threshold/positions). All other kernel-name inputs
// (algorithm selection, column counts, MatMul sequence lengths) are
// batch-independent. The layer must have inferred shapes; the result is the
// same whatever batch size they were inferred at.
func BatchBreakpoints(l *dnn.Layer) []int {
	var perSample int64
	switch l.Kind {
	case dnn.KindConv2D:
		perSample = l.OutShape.Numel() / int64(l.Cout) / int64(l.OutShape.Batch())
	case dnn.KindLinear:
		perSample = l.OutShape.Numel() / int64(l.OutFeatures) / int64(l.OutShape.Batch())
	default:
		return nil
	}
	if perSample <= 0 {
		return nil
	}
	var bps []int
	for _, threshold := range []int64{32, 64, 128, 256} {
		bp := (threshold + perSample - 1) / perSample
		if bp > 1 {
			bps = append(bps, int(bp))
		}
	}
	return bps
}

// ForNetwork returns the concatenated kernel sequence of every layer, paired
// with the producing layer index. The network must have inferred shapes.
func ForNetwork(n *dnn.Network) ([]Kernel, []int) {
	// Most layers dispatch one to three kernels; presizing for two avoids
	// nearly all append-growth copying over a full-network enumeration.
	ks := make([]Kernel, 0, 2*len(n.Layers))
	layerIdx := make([]int, 0, 2*len(n.Layers))
	for i, l := range n.Layers {
		for _, k := range ForLayer(l) {
			ks = append(ks, k)
			layerIdx = append(layerIdx, i)
		}
	}
	return ks, layerIdx
}
