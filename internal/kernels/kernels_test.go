package kernels

import (
	"strings"
	"testing"

	"repro/internal/dnn"
	"repro/internal/zoo"
)

// convLayer builds and infers a lone convolution.
func convLayer(t *testing.T, cin, cout, k, stride, pad, groups, res, batch int) *dnn.Layer {
	t.Helper()
	n := dnn.New("k", "Test", dnn.TaskImageClassification, dnn.Shape{cin, res, res})
	n.GroupConv(dnn.NetworkInput, cin, cout, k, stride, pad, groups)
	if err := n.Infer(batch); err != nil {
		t.Fatal(err)
	}
	return n.Layers[0]
}

func TestSelectConvAlgorithm(t *testing.T) {
	tests := []struct {
		name                         string
		cin, cout, k, stride, pad, g int
		res                          int
		want                         ConvAlgorithm
	}{
		{"1x1 pointwise", 64, 128, 1, 1, 0, 1, 56, AlgoImplicitGEMM},
		{"3x3 stride1", 64, 64, 3, 1, 1, 1, 56, AlgoWinograd},
		{"3x3 stride2", 64, 64, 3, 2, 1, 1, 56, AlgoImplicitGEMM},
		{"3x3 narrow", 3, 8, 3, 1, 1, 1, 56, AlgoDirect},
		{"7x7 large input", 3, 64, 7, 2, 3, 1, 224, AlgoFFT},
		{"5x5 small input", 64, 64, 5, 1, 2, 1, 14, AlgoImplicitGEMM},
		{"depthwise", 32, 32, 3, 1, 1, 32, 56, AlgoDepthwise},
		{"grouped", 32, 64, 3, 1, 1, 4, 56, AlgoGroupedGEMM},
	}
	for _, tt := range tests {
		l := convLayer(t, tt.cin, tt.cout, tt.k, tt.stride, tt.pad, tt.g, tt.res, 1)
		if got := SelectConvAlgorithm(l); got != tt.want {
			t.Errorf("%s: algorithm = %s, want %s", tt.name, got, tt.want)
		}
	}
}

func TestWinogradKernelStructure(t *testing.T) {
	l := convLayer(t, 64, 64, 3, 1, 1, 1, 56, 8)
	ks := ForLayer(l)
	if len(ks) != 3 {
		t.Fatalf("winograd should emit 3 kernels, got %d", len(ks))
	}
	// The §4 O5 pattern: input-driven pre-processing, operation-driven main
	// kernel, output-driven post-processing.
	if ks[0].Class != ClassInput || ks[1].Class != ClassOperation || ks[2].Class != ClassOutput {
		t.Fatalf("classes = %s/%s/%s", ks[0].Class, ks[1].Class, ks[2].Class)
	}
	if !strings.HasPrefix(ks[1].Name, "winograd_gemm_") {
		t.Fatalf("main kernel = %q", ks[1].Name)
	}
	// Winograd's main kernel executes fewer multiplications than the layer's
	// theoretical FLOPs (the 2.25× reduction).
	if ks[1].FLOPs >= ks[1].LayerFLOPs {
		t.Fatalf("winograd main FLOPs %d should be below theoretical %d", ks[1].FLOPs, ks[1].LayerFLOPs)
	}
}

func TestFFTKernelStructure(t *testing.T) {
	l := convLayer(t, 3, 64, 7, 2, 3, 1, 224, 4)
	ks := ForLayer(l)
	if len(ks) != 3 {
		t.Fatalf("fft should emit 3 kernels, got %d", len(ks))
	}
	if ks[0].Class != ClassInput || ks[2].Class != ClassOutput {
		t.Fatalf("pre/post classes = %s/%s", ks[0].Class, ks[2].Class)
	}
}

func TestDriverCandidatesConsistent(t *testing.T) {
	l := convLayer(t, 64, 128, 1, 1, 0, 1, 28, 16)
	inElems := l.InShape.Numel()
	outElems := l.OutShape.Numel()
	for _, k := range ForLayer(l) {
		if k.LayerInputElems != inElems {
			t.Errorf("%s: LayerInputElems = %d, want %d", k.Name, k.LayerInputElems, inElems)
		}
		if k.LayerOutputElems != outElems {
			t.Errorf("%s: LayerOutputElems = %d, want %d", k.Name, k.LayerOutputElems, outElems)
		}
		if k.LayerFLOPs != dnn.LayerFLOPs(l) {
			t.Errorf("%s: LayerFLOPs = %d", k.Name, k.LayerFLOPs)
		}
		if k.BytesRead <= 0 || k.BytesWritten <= 0 {
			t.Errorf("%s: bytes = %d/%d", k.Name, k.BytesRead, k.BytesWritten)
		}
	}
}

func TestViewLayersEmitNoKernels(t *testing.T) {
	n := dnn.New("v", "Test", dnn.TaskImageClassification, dnn.Shape{4, 8, 8})
	x := n.Conv(dnn.NetworkInput, 4, 4, 1, 1, 0)
	fl := n.Flatten(x)
	dr := n.Dropout(fl)
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	if ks := ForLayer(n.Layers[fl]); len(ks) != 0 {
		t.Errorf("flatten emitted %d kernels", len(ks))
	}
	if ks := ForLayer(n.Layers[dr]); len(ks) != 0 {
		t.Errorf("dropout emitted %d kernels", len(ks))
	}
}

func TestLinearKernels(t *testing.T) {
	n := dnn.New("fc", "Test", dnn.TaskImageClassification, dnn.Shape{256})
	n.Linear(dnn.NetworkInput, 256, 128)
	if err := n.Infer(64); err != nil {
		t.Fatal(err)
	}
	ks := ForLayer(n.Layers[0])
	if len(ks) != 2 {
		t.Fatalf("linear should emit gemm + bias, got %d kernels", len(ks))
	}
	if !strings.HasPrefix(ks[0].Name, "sgemm_") || ks[0].Class != ClassOperation {
		t.Fatalf("main = %q (%s)", ks[0].Name, ks[0].Class)
	}
	if ks[1].Name != "add_bias" || ks[1].Class != ClassOutput {
		t.Fatalf("epilogue = %q (%s)", ks[1].Name, ks[1].Class)
	}
}

func TestGemmTileBuckets(t *testing.T) {
	tests := []struct {
		m, n int64
		want string
	}{
		{10, 10, "32x32"},
		{70, 40, "64x32"},
		{70, 70, "64x64"},
		{200, 70, "128x64"},
		{200, 200, "128x128"},
		{300, 128, "256x128"},
	}
	for _, tt := range tests {
		if got := gemmTile(tt.m, tt.n); got != tt.want {
			t.Errorf("gemmTile(%d, %d) = %q, want %q", tt.m, tt.n, got, tt.want)
		}
	}
}

func TestTileDependsOnProblemSize(t *testing.T) {
	small := convLayer(t, 64, 32, 1, 1, 0, 1, 7, 1)
	large := convLayer(t, 64, 512, 1, 1, 0, 1, 56, 64)
	ks, kl := ForLayer(small), ForLayer(large)
	if ks[len(ks)-1].Name == kl[len(kl)-1].Name {
		t.Fatalf("tile variant should differ with problem size (both %q)", ks[0].Name)
	}
}

func TestForNetworkMapping(t *testing.T) {
	net := zoo.MustResNet(18)
	if err := net.Infer(4); err != nil {
		t.Fatal(err)
	}
	ks, idx := ForNetwork(net)
	if len(ks) != len(idx) {
		t.Fatalf("kernels/indices mismatch: %d vs %d", len(ks), len(idx))
	}
	if len(ks) == 0 {
		t.Fatal("no kernels for resnet18")
	}
	prev := -1
	for i, li := range idx {
		if li < 0 || li >= len(net.Layers) {
			t.Fatalf("kernel %d references layer %d", i, li)
		}
		if li < prev {
			t.Fatalf("layer indices not monotone at kernel %d", i)
		}
		prev = li
	}
}

// TestKernelNameDiversity checks the zoo produces on the order of the
// paper's "about 182 kernels" — enough diversity for per-kernel models to
// matter, few enough that each gets training data.
func TestKernelNameDiversity(t *testing.T) {
	names := map[string]bool{}
	for i, n := range zoo.Full() {
		if i%5 != 0 {
			continue
		}
		if err := n.Infer(512); err != nil {
			t.Fatal(err)
		}
		ks, _ := ForNetwork(n)
		for _, k := range ks {
			names[k.Name] = true
		}
	}
	if len(names) < 25 || len(names) > 400 {
		t.Fatalf("distinct kernel names = %d, want within [25, 400]", len(names))
	}
	t.Logf("%d distinct kernel names", len(names))
}

func TestDeterministicSelection(t *testing.T) {
	a := convLayer(t, 64, 64, 3, 1, 1, 1, 56, 8)
	b := convLayer(t, 64, 64, 3, 1, 1, 1, 56, 8)
	ka, kb := ForLayer(a), ForLayer(b)
	if len(ka) != len(kb) {
		t.Fatal("non-deterministic kernel count")
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("kernel %d differs: %+v vs %+v", i, ka[i], kb[i])
		}
	}
}
