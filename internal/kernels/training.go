package kernels

import (
	"fmt"

	"repro/internal/dnn"
)

// Training-mode kernel generation — the paper's stated future work ("our
// future work will focus on extending our models for more diverse workloads
// (e.g., training)", §9). A training step dispatches, per layer, the forward
// kernels plus the backward pipeline a cuDNN-like library uses:
//
//   - convolution: a data-gradient kernel (dgrad) and a filter-gradient
//     kernel (wgrad), each costing about one forward pass;
//   - GEMM layers: two backward GEMMs (dX = dY·Wᵀ, dW = Xᵀ·dY);
//   - normalization/activation/pooling: one elementwise/reduction backward
//     kernel over the gradient tensor;
//   - weighted layers additionally run an optimizer-update kernel.
//
// Backward kernels get their own names (and therefore their own device
// efficiency profiles and regression models), exactly like the distinct
// *_bwd_* kernels cuDNN exposes.

// ForLayerTraining returns the kernels of one training step for a layer:
// the forward sequence followed by the backward and optimizer kernels.
func ForLayerTraining(l *dnn.Layer) []Kernel {
	ks := ForLayer(l)
	ks = append(ks, backwardKernels(l)...)
	if l.HasWeights() {
		ks = append(ks, optimizerKernel(l))
	}
	return ks
}

// backwardKernels lowers a layer's gradient computation.
func backwardKernels(l *dnn.Layer) []Kernel {
	inElems := int64(0)
	for _, s := range l.InShapes {
		inElems += s.Numel()
	}
	if inElems == 0 {
		inElems = l.InShape.Numel()
	}
	outElems := l.OutShape.Numel()
	layerFLOPs := dnn.LayerFLOPs(l)
	weightBytes := dnn.LayerWeightBytes(l)
	inBytes := inElems * elemBytes
	outBytes := outElems * elemBytes

	base := Kernel{
		LayerFLOPs:       layerFLOPs,
		LayerInputElems:  inElems,
		LayerOutputElems: outElems,
	}
	mk := func(name string, class Class, flops, read, written int64) Kernel {
		k := base
		k.Name = name
		k.Class = class
		k.FLOPs = flops
		k.BytesRead = read
		k.BytesWritten = written
		return k
	}

	switch l.Kind {
	case dnn.KindConv2D:
		algo := SelectConvAlgorithm(l)
		rows := outElems / int64(l.Cout)
		tile := gemmTile(rows, int64(l.Cout))
		slug := string(algo)
		// dgrad reads the output gradient and weights, writes the input
		// gradient; wgrad reads input and output gradient, writes the
		// filter gradient. Both cost about one forward pass.
		return []Kernel{
			mk(fmt.Sprintf("conv_dgrad_%s_%s", slug, tile), ClassOperation, layerFLOPs,
				outBytes+weightBytes, inBytes),
			mk(fmt.Sprintf("conv_wgrad_%s_%s", slug, tile), ClassOperation, layerFLOPs,
				inBytes+outBytes, weightBytes),
		}

	case dnn.KindLinear:
		rows := outElems / int64(l.OutFeatures)
		tile := gemmTile(rows, int64(l.InFeatures))
		return []Kernel{
			mk("sgemm_bwd_data_"+tile, ClassOperation, layerFLOPs,
				outBytes+weightBytes, inBytes),
			mk("sgemm_bwd_filter_"+tile, ClassOperation, layerFLOPs,
				inBytes+outBytes, weightBytes),
		}

	case dnn.KindBatchNorm:
		return []Kernel{mk("bn_bwd", ClassInput, 4*inElems,
			2*inBytes, inBytes)}

	case dnn.KindLayerNorm:
		return []Kernel{mk("layernorm_bwd", ClassInput, 6*inElems,
			2*inBytes, inBytes)}

	case dnn.KindReLU, dnn.KindReLU6, dnn.KindSigmoid, dnn.KindGELU:
		return []Kernel{mk("elementwise_"+kindSlug(l.Kind)+"_bwd", ClassOutput, outElems,
			2*outBytes, outBytes)}

	case dnn.KindSoftmax:
		return []Kernel{mk("softmax_bwd", ClassOutput, 3*outElems,
			2*outBytes, outBytes)}

	case dnn.KindMaxPool2D, dnn.KindAvgPool2D:
		name := "pooling_bwd_max"
		if l.Kind == dnn.KindAvgPool2D {
			name = "pooling_bwd_avg"
		}
		return []Kernel{mk(name, ClassInput, inElems,
			outBytes+inBytes, inBytes)}

	case dnn.KindGlobalAvgPool:
		return []Kernel{mk("reduce_spatial_bwd", ClassInput, inElems,
			outBytes, inBytes)}

	case dnn.KindAdd:
		// Gradient passes through; a copy per branch.
		return []Kernel{mk("elementwise_add_bwd", ClassOutput, 0,
			outBytes, inBytes)}

	case dnn.KindConcat:
		return []Kernel{mk("cat_split_bwd", ClassOutput, 0,
			outBytes, inBytes)}

	case dnn.KindChannelShuffle:
		return []Kernel{mk("channel_shuffle_bwd", ClassOutput, 0,
			outBytes, outBytes)}

	case dnn.KindEmbedding:
		// Scatter-add of token gradients into the embedding table.
		return []Kernel{mk("embedding_scatter_bwd", ClassOutput, outElems,
			outBytes, outBytes)}

	case dnn.KindMatMul:
		t := int64(l.InShapes[0][1])
		tile := gemmTile(t, t)
		return []Kernel{
			mk("batched_gemm_bwd_a_"+tile, ClassOperation, layerFLOPs,
				outBytes+inBytes/2, inBytes/2),
			mk("batched_gemm_bwd_b_"+tile, ClassOperation, layerFLOPs,
				outBytes+inBytes/2, inBytes/2),
		}

	case dnn.KindFlatten, dnn.KindDropout, dnn.KindReshapeTokens, dnn.KindIdentity:
		return nil
	}
	return nil
}

// optimizerKernel is the per-layer SGD parameter update.
func optimizerKernel(l *dnn.Layer) Kernel {
	w := l.WeightCount()
	return Kernel{
		Name:             "sgd_update",
		Class:            ClassOutput,
		FLOPs:            2 * w, // momentum + update
		BytesRead:        2 * w * elemBytes,
		BytesWritten:     w * elemBytes,
		LayerFLOPs:       dnn.LayerFLOPs(l),
		LayerInputElems:  w, // the driver of an optimizer kernel is the parameter count
		LayerOutputElems: w,
	}
}

// ForNetworkTraining returns the full training-step kernel sequence of a
// network (forward, backward, optimizer), paired with producing layer
// indices. Backward kernels are emitted in reverse layer order, as autograd
// executes them.
func ForNetworkTraining(n *dnn.Network) ([]Kernel, []int) {
	var ks []Kernel
	var layerIdx []int
	// Forward.
	for i, l := range n.Layers {
		for _, k := range ForLayer(l) {
			ks = append(ks, k)
			layerIdx = append(layerIdx, i)
		}
	}
	// Backward, reversed.
	for i := len(n.Layers) - 1; i >= 0; i-- {
		l := n.Layers[i]
		for _, k := range backwardKernels(l) {
			ks = append(ks, k)
			layerIdx = append(layerIdx, i)
		}
		if l.HasWeights() {
			ks = append(ks, optimizerKernel(l))
			layerIdx = append(layerIdx, i)
		}
	}
	return ks, layerIdx
}
