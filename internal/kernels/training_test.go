package kernels

import (
	"strings"
	"testing"

	"repro/internal/dnn"
	"repro/internal/zoo"
)

func TestForLayerTrainingConv(t *testing.T) {
	l := convLayer(t, 64, 64, 3, 1, 1, 1, 56, 8)
	fwd := ForLayer(l)
	all := ForLayerTraining(l)
	// Forward + dgrad + wgrad + sgd update.
	if len(all) != len(fwd)+3 {
		t.Fatalf("training kernels = %d, want %d", len(all), len(fwd)+3)
	}
	var dgrad, wgrad, sgd bool
	for _, k := range all {
		switch {
		case strings.HasPrefix(k.Name, "conv_dgrad_"):
			dgrad = true
			if k.Class != ClassOperation {
				t.Errorf("dgrad class = %s", k.Class)
			}
			if k.FLOPs != k.LayerFLOPs {
				t.Errorf("dgrad FLOPs = %d, want layer FLOPs %d", k.FLOPs, k.LayerFLOPs)
			}
		case strings.HasPrefix(k.Name, "conv_wgrad_"):
			wgrad = true
		case k.Name == "sgd_update":
			sgd = true
			if k.LayerInputElems != l.WeightCount() {
				t.Errorf("sgd driver = %d, want weight count %d", k.LayerInputElems, l.WeightCount())
			}
		}
	}
	if !dgrad || !wgrad || !sgd {
		t.Fatalf("missing backward kernels: dgrad=%t wgrad=%t sgd=%t", dgrad, wgrad, sgd)
	}
}

func TestForLayerTrainingWeightlessLayer(t *testing.T) {
	n := dnn.New("r", "Test", dnn.TaskImageClassification, dnn.Shape{4, 8, 8})
	x := n.Conv(dnn.NetworkInput, 4, 4, 1, 1, 0)
	r := n.ReLU(x)
	if err := n.Infer(2); err != nil {
		t.Fatal(err)
	}
	ks := ForLayerTraining(n.Layers[r])
	// ReLU: forward elementwise + backward elementwise, no optimizer.
	if len(ks) != 2 {
		t.Fatalf("relu training kernels = %d", len(ks))
	}
	for _, k := range ks {
		if k.Name == "sgd_update" {
			t.Fatal("weightless layer got an optimizer kernel")
		}
	}
}

func TestForNetworkTrainingOrdering(t *testing.T) {
	net := zoo.MustResNet(18)
	if err := net.Infer(8); err != nil {
		t.Fatal(err)
	}
	fwdKs, _ := ForNetwork(net)
	ks, idx := ForNetworkTraining(net)
	if len(ks) != len(idx) {
		t.Fatal("kernels/indices mismatch")
	}
	if len(ks) <= len(fwdKs) {
		t.Fatalf("training sequence (%d) should exceed forward (%d)", len(ks), len(fwdKs))
	}
	// The forward prefix is layer-ascending; the backward suffix descends.
	for i := 1; i < len(fwdKs); i++ {
		if idx[i] < idx[i-1] {
			t.Fatalf("forward prefix not ascending at %d", i)
		}
	}
	desc := idx[len(fwdKs):]
	for i := 1; i < len(desc); i++ {
		if desc[i] > desc[i-1] {
			t.Fatalf("backward suffix not descending at %d", i)
		}
	}
}

func TestTrainingKernelNamesDisjoint(t *testing.T) {
	// Backward kernels must carry distinct names from forward ones so the
	// device substrate and the KW model treat them as separate families.
	net := zoo.MustResNet(18)
	if err := net.Infer(8); err != nil {
		t.Fatal(err)
	}
	fwd := map[string]bool{}
	fwdKs, _ := ForNetwork(net)
	for _, k := range fwdKs {
		fwd[k.Name] = true
	}
	ks, _ := ForNetworkTraining(net)
	bwdNames := map[string]bool{}
	for _, k := range ks[len(fwdKs):] {
		bwdNames[k.Name] = true
		if fwd[k.Name] {
			t.Fatalf("backward kernel %q collides with a forward name", k.Name)
		}
	}
	if len(bwdNames) < 5 {
		t.Fatalf("only %d distinct backward kernel names", len(bwdNames))
	}
}

func TestTrainingFLOPsRoughlyTriple(t *testing.T) {
	// Forward+backward executes ≈3× the forward multiplications for
	// conv-dominated networks (dgrad + wgrad each ≈ one forward).
	net := zoo.MustResNet(50)
	if err := net.Infer(8); err != nil {
		t.Fatal(err)
	}
	var fwd, train int64
	fwdKs, _ := ForNetwork(net)
	for _, k := range fwdKs {
		fwd += k.FLOPs
	}
	ks, _ := ForNetworkTraining(net)
	for _, k := range ks {
		train += k.FLOPs
	}
	ratio := float64(train) / float64(fwd)
	if ratio < 2.2 || ratio > 4.5 {
		t.Fatalf("training/forward FLOPs ratio = %v", ratio)
	}
}

func TestTrainingViewLayersStillFree(t *testing.T) {
	n := dnn.New("v", "Test", dnn.TaskImageClassification, dnn.Shape{4, 8, 8})
	x := n.Conv(dnn.NetworkInput, 4, 4, 1, 1, 0)
	fl := n.Flatten(x)
	if err := n.Infer(1); err != nil {
		t.Fatal(err)
	}
	if ks := ForLayerTraining(n.Layers[fl]); len(ks) != 0 {
		t.Fatalf("flatten emitted %d training kernels", len(ks))
	}
}
