package loadgen

import (
	"fmt"
	"math"
	"time"
)

// Arrival processes as deterministic simulated-time generators. The HTTP
// load generator and the fleet simulator share these: both need "when does
// the next request arrive" as a pure function of (schedule, seed), the
// first to pace wall-clock dispatch, the second to stamp a replayable
// trace. Times are absolute seconds from the process origin and strictly
// increase; the same (schedule, parameters, seed) always yields the same
// sequence on every platform, which is what makes fleet-simulation results
// bit-identical across runs.
//
// Open-loop schedules (arrivals do not wait for responses):
//
//   - PoissonArrivals: homogeneous Poisson at a fixed rate — exponential
//     inter-arrival gaps, the standard memoryless open-loop model.
//   - BurstyArrivals: an on/off modulated Poisson process (rate·factor
//     during bursts, rate/factor between them). With equal on/off windows
//     the time-average rate is rate·(factor + 1/factor)/2.
//   - DiurnalArrivals: a nonhomogeneous Poisson process whose rate follows
//     a sinusoid, rate(t) = base·(1 + amp·sin(2πt/period)) — the day/night
//     cycle capacity planning must survive. Sampled by thinning (Lewis &
//     Shedler): candidates at the peak rate, each kept with probability
//     rate(t)/peak, which preserves exactness for any bounded rate curve.
//
// The closed-loop counterpart is Think: closed-loop users do not follow a
// time schedule — each issues its next request one think time after the
// previous response — so the generator is an exponential think-time
// sampler the simulator consults at every completion.

// Process generates one arrival schedule: successive calls to Next return
// strictly increasing absolute arrival times in seconds. Implementations
// are deterministic in their seed and not safe for concurrent use (each
// goroutine takes its own instance).
type Process interface {
	// Name identifies the schedule in reports and JSON summaries.
	Name() string
	// Next returns the next arrival time in seconds from the origin.
	Next() float64
}

// splitmix is splitmix64 — the repository's seeded, allocation-free,
// platform-identical RNG (same construction as internal/sched's).
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *splitmix) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// expGap draws an exponential inter-arrival gap at the given rate:
// −ln(1−U)/rate with U uniform in [0,1), so the argument stays in (0,1].
func (r *splitmix) expGap(rate float64) float64 {
	return -math.Log(1-r.float64()) / rate
}

// PoissonArrivals is the homogeneous Poisson process.
type PoissonArrivals struct {
	rate float64
	t    float64
	rng  splitmix
}

// NewPoissonArrivals returns a Poisson process at rate arrivals/second.
func NewPoissonArrivals(rate float64, seed int64) *PoissonArrivals {
	return &PoissonArrivals{rate: rate, rng: splitmix{s: uint64(seed)}}
}

// Name implements Process.
func (p *PoissonArrivals) Name() string { return string(Poisson) }

// Next implements Process.
func (p *PoissonArrivals) Next() float64 {
	p.t += p.rng.expGap(p.rate)
	return p.t
}

// BurstyArrivals is the on/off modulated Poisson process. The process
// starts in the on phase; each gap is drawn at the rate of the phase the
// previous arrival fell in, matching the wall-clock generator's behavior
// (phase boundaries do not re-draw an in-flight gap).
type BurstyArrivals struct {
	rate, factor float64
	onS, offS    float64
	t, phaseEnd  float64
	inBurst      bool
	rng          splitmix
}

// NewBurstyArrivals returns a bursty process with mean-phase windows onS
// and offS seconds. Non-positive windows default to 0.2s; a factor ≤ 1
// defaults to 4.
func NewBurstyArrivals(rate, factor, onS, offS float64, seed int64) *BurstyArrivals {
	if onS <= 0 {
		onS = 0.2
	}
	if offS <= 0 {
		offS = 0.2
	}
	if factor <= 1 {
		factor = 4
	}
	return &BurstyArrivals{
		rate: rate, factor: factor, onS: onS, offS: offS,
		phaseEnd: onS, inBurst: true,
		rng: splitmix{s: uint64(seed)},
	}
}

// Name implements Process.
func (p *BurstyArrivals) Name() string { return string(Bursty) }

// Next implements Process.
func (p *BurstyArrivals) Next() float64 {
	for p.t >= p.phaseEnd {
		if p.inBurst {
			p.inBurst = false
			p.phaseEnd += p.offS
		} else {
			p.inBurst = true
			p.phaseEnd += p.onS
		}
	}
	rate := p.rate / p.factor
	if p.inBurst {
		rate = p.rate * p.factor
	}
	p.t += p.rng.expGap(rate)
	return p.t
}

// DiurnalArrivals is the sinusoidally modulated Poisson process,
// rate(t) = base·(1 + amp·sin(2πt/period)).
type DiurnalArrivals struct {
	base, amp, period float64
	t                 float64
	rng               splitmix
}

// NewDiurnalArrivals returns a diurnal process. Amplitude is clamped to
// [0, 0.95] (1 would let the trough rate touch zero and stall thinning);
// a non-positive period defaults to 86400 s — one day.
func NewDiurnalArrivals(base, amplitude, periodS float64, seed int64) *DiurnalArrivals {
	if amplitude < 0 {
		amplitude = 0
	}
	if amplitude > 0.95 {
		amplitude = 0.95
	}
	if periodS <= 0 {
		periodS = 86400
	}
	return &DiurnalArrivals{base: base, amp: amplitude, period: periodS, rng: splitmix{s: uint64(seed)}}
}

// Name implements Process.
func (p *DiurnalArrivals) Name() string { return string(Diurnal) }

// Rate returns the instantaneous rate at time t seconds.
func (p *DiurnalArrivals) Rate(t float64) float64 {
	return p.base * (1 + p.amp*math.Sin(2*math.Pi*t/p.period))
}

// Next implements Process by thinning at the peak rate base·(1+amp).
func (p *DiurnalArrivals) Next() float64 {
	peak := p.base * (1 + p.amp)
	for {
		p.t += p.rng.expGap(peak)
		if p.rng.float64()*peak <= p.Rate(p.t) {
			return p.t
		}
	}
}

// Think samples closed-loop think times: the seconds a virtual user waits
// between receiving a response and issuing the next request, exponentially
// distributed with the given mean (memoryless users, the M in M/G/k).
type Think struct {
	mean float64
	rng  splitmix
}

// NewThink returns a think-time sampler with the given mean in seconds.
func NewThink(meanS float64, seed int64) *Think {
	return &Think{mean: meanS, rng: splitmix{s: uint64(seed)}}
}

// Sample returns one think time in seconds. A non-positive mean always
// returns 0 (users re-issue immediately — the peak-throughput probe).
func (t *Think) Sample() float64 {
	if t.mean <= 0 {
		return 0
	}
	return t.rng.expGap(1 / t.mean)
}

// ArrivalsConfig parameterizes NewArrivals, the factory mapping an Arrival
// schedule name onto a Process.
type ArrivalsConfig struct {
	// Rate is the mean arrival rate in requests/second (the base rate for
	// Diurnal).
	Rate float64
	// Seed seeds the process randomness.
	Seed int64
	// BurstOn, BurstOff and BurstFactor shape Bursty (zero values default
	// as in NewBurstyArrivals).
	BurstOn, BurstOff time.Duration
	BurstFactor       float64
	// DiurnalPeriod and DiurnalAmplitude shape Diurnal; a zero period
	// defaults to one day, a zero amplitude to 0.5.
	DiurnalPeriod    time.Duration
	DiurnalAmplitude float64
}

// NewArrivals builds the open-loop Process for a schedule. Closed is not an
// open-loop schedule (its arrivals are completion-triggered, see Think) and
// returns an error.
func NewArrivals(a Arrival, cfg ArrivalsConfig) (Process, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: %s schedule needs Rate > 0", a)
	}
	switch a {
	case Poisson:
		return NewPoissonArrivals(cfg.Rate, cfg.Seed), nil
	case Bursty:
		return NewBurstyArrivals(cfg.Rate, cfg.BurstFactor, cfg.BurstOn.Seconds(), cfg.BurstOff.Seconds(), cfg.Seed), nil
	case Diurnal:
		amp := cfg.DiurnalAmplitude
		if amp == 0 {
			amp = 0.5
		}
		return NewDiurnalArrivals(cfg.Rate, amp, cfg.DiurnalPeriod.Seconds(), cfg.Seed), nil
	case Closed:
		return nil, fmt.Errorf("loadgen: %s is completion-triggered, not an open-loop schedule (use Think)", a)
	}
	return nil, fmt.Errorf("loadgen: unknown arrival schedule %q", a)
}
