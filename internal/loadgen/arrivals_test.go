package loadgen

import (
	"math"
	"testing"
	"time"
)

// meanGap generates n arrivals and returns the mean inter-arrival gap.
func meanGap(p Process, n int) float64 {
	var last, t float64
	for i := 0; i < n; i++ {
		t = p.Next()
		if t <= last {
			panic("arrival times must strictly increase")
		}
		last = t
	}
	return t / float64(n)
}

// TestPoissonArrivalsMean pins the empirical mean inter-arrival gap of the
// Poisson process to its analytic value 1/rate. 200k samples put the
// standard error of the mean near 0.22% (exponential cv = 1), so a 1%
// tolerance is ~4.5σ and the seeded sequence sits comfortably inside it.
func TestPoissonArrivalsMean(t *testing.T) {
	const rate = 1000.0
	got := meanGap(NewPoissonArrivals(rate, 42), 200_000)
	want := 1 / rate
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("mean gap = %g, want %g ±1%%", got, want)
	}
}

// TestBurstyArrivalsMean checks the time-average rate of the on/off
// process against its analytic value: with equal on/off windows the mean
// rate is rate·(f + 1/f)/2, since half the time runs at rate·f and half at
// rate/f (both phase gap scales are far below the 200ms window at these
// parameters, so boundary spillover is negligible).
func TestBurstyArrivalsMean(t *testing.T) {
	const rate, factor = 1000.0, 4.0
	p := NewBurstyArrivals(rate, factor, 0.2, 0.2, 7)
	const n = 400_000
	var last float64
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	gotRate := float64(n) / last
	wantRate := rate * (factor + 1/factor) / 2
	if math.Abs(gotRate-wantRate)/wantRate > 0.03 {
		t.Fatalf("mean rate = %g, want %g ±3%%", gotRate, wantRate)
	}
}

// TestDiurnalArrivalsMean checks that thinning preserves the analytic mean:
// over whole periods the sinusoid integrates to zero, so the expected count
// in k·period seconds is base·k·period. It also checks the modulation is
// real — the rising half-period must hold more arrivals than the falling
// one (amp 0.8 makes the analytic ratio (1+2·amp/π)/(1−2·amp/π) ≈ 3.1).
func TestDiurnalArrivalsMean(t *testing.T) {
	const base, amp, period = 2000.0, 0.8, 10.0
	p := NewDiurnalArrivals(base, amp, period, 11)
	const horizon = 100.0 // 10 full periods
	var count, firstHalf, secondHalf int
	for {
		at := p.Next()
		if at > horizon {
			break
		}
		count++
		if phase := math.Mod(at, period); phase < period/2 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	want := base * horizon
	if math.Abs(float64(count)-want)/want > 0.02 {
		t.Fatalf("arrivals in %v s = %d, want %g ±2%%", horizon, count, want)
	}
	ratio := float64(firstHalf) / float64(secondHalf)
	wantRatio := (1 + 2*amp/math.Pi) / (1 - 2*amp/math.Pi)
	if math.Abs(ratio-wantRatio)/wantRatio > 0.05 {
		t.Fatalf("half-period ratio = %g, want %g ±5%%", ratio, wantRatio)
	}
}

// TestThinkMean pins the closed-loop think-time sampler to its analytic
// mean, and the zero-mean fast path to exactly zero.
func TestThinkMean(t *testing.T) {
	const mean = 0.25
	th := NewThink(mean, 5)
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		sum += th.Sample()
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.01 {
		t.Fatalf("mean think = %g, want %g ±1%%", got, mean)
	}
	zero := NewThink(0, 5)
	if v := zero.Sample(); v != 0 {
		t.Fatalf("zero-mean think sampled %g, want 0", v)
	}
}

// TestArrivalsDeterministic pins that the same (schedule, seed) yields the
// same sequence and a different seed a different one — the property the
// fleet simulator's bit-identical replays rest on.
func TestArrivalsDeterministic(t *testing.T) {
	cfg := ArrivalsConfig{Rate: 500, Seed: 9, DiurnalPeriod: time.Minute}
	for _, schedule := range []Arrival{Poisson, Bursty, Diurnal} {
		a, err := NewArrivals(schedule, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewArrivals(schedule, cfg)
		if err != nil {
			t.Fatal(err)
		}
		other, err := NewArrivals(schedule, ArrivalsConfig{Rate: 500, Seed: 10, DiurnalPeriod: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		var diverged bool
		for i := 0; i < 1000; i++ {
			av, bv := a.Next(), b.Next()
			if av != bv {
				t.Fatalf("%s: arrival %d differs for the same seed: %g vs %g", schedule, i, av, bv)
			}
			if av != other.Next() {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: seeds 9 and 10 produced identical sequences", schedule)
		}
	}
}

// TestNewArrivalsContract pins the factory's error paths: Closed is not an
// open-loop schedule, and a non-positive rate is rejected.
func TestNewArrivalsContract(t *testing.T) {
	if _, err := NewArrivals(Closed, ArrivalsConfig{Rate: 100}); err == nil {
		t.Error("NewArrivals(Closed) succeeded, want error")
	}
	if _, err := NewArrivals(Poisson, ArrivalsConfig{Rate: 0}); err == nil {
		t.Error("NewArrivals with rate 0 succeeded, want error")
	}
	if _, err := ParseArrival("diurnal"); err != nil {
		t.Errorf("ParseArrival(diurnal): %v", err)
	}
}
