// Package loadgen is a stdlib-only HTTP load generator for the serving
// tier. It offers load open-loop — arrivals follow a schedule that does not
// wait for responses, the way independent users do — so queueing delay shows
// up in the measured latencies instead of silently throttling the offered
// rate, plus a closed-loop mode for measuring peak sustainable throughput.
//
// Schedules:
//
//   - Poisson: exponential inter-arrival times at the configured rate, the
//     standard memoryless open-loop model.
//   - Bursty: an on/off modulated Poisson process (rate·factor during bursts,
//     rate/factor between them), stressing admission control and queue
//     watermarks the way diurnal or thundering-herd traffic does.
//   - Closed: Concurrency workers issue requests back to back; throughput
//     reports the service capacity at that concurrency.
//
// Latencies are recorded twice: exact per-request samples (sorted once at
// the end for precise p50/p99/p999) and an internal/obs latency histogram
// whose buckets feed the summary's distribution view. Requests arriving
// during the warm-up window are sent and counted but excluded from latency
// and throughput, so cold plan caches and connection establishment do not
// pollute the steady-state numbers.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/units"
)

// Arrival selects the request schedule.
type Arrival string

// The supported schedules.
const (
	Poisson Arrival = "poisson"
	Bursty  Arrival = "bursty"
	Diurnal Arrival = "diurnal"
	Closed  Arrival = "closed"
)

// ParseArrival maps a CLI string onto an Arrival.
func ParseArrival(s string) (Arrival, error) {
	switch Arrival(s) {
	case Poisson, Bursty, Diurnal, Closed:
		return Arrival(s), nil
	}
	return "", fmt.Errorf("loadgen: unknown arrival schedule %q (want poisson, bursty, diurnal or closed)", s)
}

// Config parameterizes one load-generation run.
type Config struct {
	// NewRequest builds the next request. It is called once per arrival on
	// the dispatching goroutine; rng is the run's seeded source, so a fixed
	// Seed yields a reproducible request mix.
	NewRequest func(rng *rand.Rand) (*http.Request, error)

	// Client issues the requests. Nil uses a dedicated client with keep-alive
	// connections sized to Concurrency.
	Client *http.Client

	// Arrival is the schedule; empty defaults to Poisson.
	Arrival Arrival

	// Rate is the mean offered arrival rate in requests/second for the
	// open-loop schedules. Ignored by Closed.
	Rate float64

	// Duration is the total run length including warm-up; Warmup is the
	// prefix whose responses are excluded from latency and throughput.
	Duration, Warmup time.Duration

	// Concurrency bounds outstanding requests. Open-loop arrivals beyond the
	// bound are shed (counted, not sent) rather than queued, keeping the
	// generator itself from becoming the queue. For Closed it is the worker
	// count. 0 defaults to 512 (open) / 16 (closed).
	Concurrency int

	// Seed seeds the arrival and request-mix randomness.
	Seed int64

	// BurstOn and BurstOff shape the Bursty schedule (defaults 200ms each);
	// BurstFactor is the on-phase rate multiplier (default 4). The off-phase
	// rate is Rate/BurstFactor; with equal on/off windows the time-average
	// offered rate is Rate·(BurstFactor + 1/BurstFactor)/2.
	BurstOn, BurstOff time.Duration
	BurstFactor       float64

	// DiurnalPeriod and DiurnalAmplitude shape the Diurnal schedule: the
	// offered rate follows Rate·(1 + amp·sin(2πt/period)). A zero period
	// defaults to Duration (one full cycle per run), a zero amplitude
	// to 0.5.
	DiurnalPeriod    time.Duration
	DiurnalAmplitude float64

	// SlowestK bounds Result.Slowest, the slowest post-warm-up requests kept
	// with their echoed trace IDs (default 5; negative disables).
	SlowestK int
}

// Result summarizes one run.
type Result struct {
	Arrival Arrival
	// OfferedRPS is the configured mean arrival rate (0 for Closed).
	OfferedRPS float64
	// Sent counts requests actually issued; Shed counts open-loop arrivals
	// dropped because Concurrency requests were already outstanding.
	Sent, Shed int64
	// Completed counts responses received (any status); Run returns only
	// after every sent request completed, so Completed == Sent unless the
	// context was cancelled mid-flight.
	Completed int64
	// Status2xx..NetErrors partition Completed.
	Status2xx, Status4xx, Status429, Status5xx, NetErrors int64
	// MeasuredSeconds is the post-warm-up window the throughput refers to.
	MeasuredSeconds units.Seconds
	// Measured counts post-warm-up 2xx responses; ThroughputRPS is
	// Measured / MeasuredSeconds.
	Measured      int64
	ThroughputRPS float64
	// Latency quantiles over the post-warm-up samples (exact, from the
	// sorted sample set, not bucket interpolation).
	P50, P90, P99, P999, Max time.Duration
	// Hist is the obs bucket histogram of the same samples.
	Hist *obs.Histogram
	// Slowest lists the slowest post-warm-up requests, worst first, with the
	// trace ID each response echoed (empty when the request was unsampled),
	// so a bad tail can be looked up directly in the merged fleet timeline.
	Slowest []SlowRequest
}

// SlowRequest identifies one slow request for tail attribution.
type SlowRequest struct {
	TraceID string        `json:"trace_id,omitempty"`
	Latency time.Duration `json:"latency"`
	Status  int           `json:"status"`
}

// traceIDHeader is the response header the serving tier echoes for sampled
// requests (fleet.TraceIDHeader; spelled out to keep loadgen target-agnostic).
const traceIDHeader = "X-Trace-Id"

// Quantile returns the exact q-quantile of the recorded samples.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run drives one load-generation run and blocks until every issued request
// has completed (or ctx is cancelled, which stops new arrivals and abandons
// the wait after the client timeout).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.NewRequest == nil {
		return nil, errors.New("loadgen: Config.NewRequest is required")
	}
	arrival := cfg.Arrival
	if arrival == "" {
		arrival = Poisson
	}
	if arrival != Closed && cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: %s schedule needs Rate > 0", arrival)
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: Duration must be positive")
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Duration {
		return nil, fmt.Errorf("loadgen: Warmup %v must be in [0, Duration)", cfg.Warmup)
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		if arrival == Closed {
			conc = 16
		} else {
			conc = 512
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        conc,
				MaxIdleConnsPerHost: conc,
			},
		}
	}

	slowestK := cfg.SlowestK
	switch {
	case slowestK == 0:
		slowestK = 5
	case slowestK < 0:
		slowestK = 0
	}
	r := &run{
		cfg:       cfg,
		client:    client,
		warmupEnd: time.Now().Add(cfg.Warmup),
		hist:      obs.NewHistogram(nil),
		slowestK:  slowestK,
	}
	res := &Result{Arrival: arrival, OfferedRPS: cfg.Rate}
	if arrival == Closed {
		res.OfferedRPS = 0
	}

	deadline := time.Now().Add(cfg.Duration)
	switch arrival {
	case Closed:
		r.runClosed(ctx, conc, deadline)
	default:
		period := cfg.DiurnalPeriod
		if period <= 0 {
			period = cfg.Duration
		}
		proc, err := NewArrivals(arrival, ArrivalsConfig{
			Rate: cfg.Rate, Seed: cfg.Seed,
			BurstOn: cfg.BurstOn, BurstOff: cfg.BurstOff, BurstFactor: cfg.BurstFactor,
			DiurnalPeriod: period, DiurnalAmplitude: cfg.DiurnalAmplitude,
		})
		if err != nil {
			return nil, err
		}
		r.runOpen(ctx, proc, conc, deadline)
	}
	r.wg.Wait()

	res.Sent = r.sent.Load()
	res.Shed = r.shed.Load()
	res.Completed = r.completed.Load()
	res.Status2xx = r.s2xx.Load()
	res.Status4xx = r.s4xx.Load()
	res.Status429 = r.s429.Load()
	res.Status5xx = r.s5xx.Load()
	res.NetErrors = r.netErrs.Load()
	res.MeasuredSeconds = units.Seconds((cfg.Duration - cfg.Warmup).Seconds())
	res.Measured = r.measured.Load()
	if res.MeasuredSeconds > 0 {
		res.ThroughputRPS = float64(res.Measured) / res.MeasuredSeconds.Float64()
	}
	res.Hist = r.hist

	r.mu.Lock()
	samples := r.samples
	res.Slowest = r.slowest
	r.mu.Unlock()
	sort.Slice(res.Slowest, func(i, j int) bool { return res.Slowest[i].Latency > res.Slowest[j].Latency })
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	res.P50 = quantile(samples, 0.50)
	res.P90 = quantile(samples, 0.90)
	res.P99 = quantile(samples, 0.99)
	res.P999 = quantile(samples, 0.999)
	if n := len(samples); n > 0 {
		res.Max = samples[n-1]
	}
	return res, ctx.Err()
}

// run is the mutable state of one Run call.
type run struct {
	cfg    Config
	client *http.Client

	warmupEnd time.Time

	sent, shed, completed           atomic.Int64
	s2xx, s4xx, s429, s5xx, netErrs atomic.Int64
	measured                        atomic.Int64
	outstanding                     atomic.Int64
	wg                              sync.WaitGroup
	slowestK                        int
	mu                              sync.Mutex
	samples                         []time.Duration
	slowest                         []SlowRequest // unordered top-k by latency
	hist                            *obs.Histogram
}

// recordSlow keeps the top-k slowest requests; r.mu must be held.
func (r *run) recordSlow(elapsed time.Duration, status int, traceID string) {
	if r.slowestK == 0 {
		return
	}
	if len(r.slowest) < r.slowestK {
		r.slowest = append(r.slowest, SlowRequest{TraceID: traceID, Latency: elapsed, Status: status})
		return
	}
	min := 0
	for i := 1; i < len(r.slowest); i++ {
		if r.slowest[i].Latency < r.slowest[min].Latency {
			min = i
		}
	}
	if elapsed > r.slowest[min].Latency {
		r.slowest[min] = SlowRequest{TraceID: traceID, Latency: elapsed, Status: status}
	}
}

// runOpen replays an open-loop arrival Process against the wall clock
// until the deadline: each simulated arrival time maps onto start+t, so
// the offered schedule is exactly the one the fleet simulator would replay
// for the same (schedule, rate, seed).
func (r *run) runOpen(ctx context.Context, proc Process, conc int, deadline time.Time) {
	reqRng := rand.New(rand.NewSource(r.cfg.Seed + 1))

	start := time.Now()
	for {
		if !time.Now().Before(deadline) {
			return
		}
		select {
		case <-ctx.Done():
			return
		default:
		}

		next := start.Add(time.Duration(proc.Next() * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return
			}
		}
		if !time.Now().Before(deadline) {
			return
		}

		if r.outstanding.Load() >= int64(conc) {
			r.shed.Add(1)
			continue
		}
		req, err := r.cfg.NewRequest(reqRng)
		if err != nil {
			r.shed.Add(1)
			continue
		}
		r.dispatch(req)
	}
}

// runClosed runs conc workers back to back until the deadline.
func (r *run) runClosed(ctx context.Context, conc int, deadline time.Time) {
	for w := 0; w < conc; w++ {
		r.wg.Add(1)
		go func(w int) {
			defer r.wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				select {
				case <-ctx.Done():
					return
				default:
				}
				req, err := r.cfg.NewRequest(rng)
				if err != nil {
					return
				}
				r.sent.Add(1)
				r.do(req)
			}
		}(w)
	}
}

// dispatch issues one open-loop request on its own goroutine.
func (r *run) dispatch(req *http.Request) {
	r.sent.Add(1)
	r.outstanding.Add(1)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer r.outstanding.Add(-1)
		r.do(req)
	}()
}

// do issues one request and records its outcome.
func (r *run) do(req *http.Request) {
	start := time.Now()
	resp, err := r.client.Do(req)
	elapsed := time.Since(start)
	r.completed.Add(1)
	if err != nil {
		r.netErrs.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		r.s429.Add(1)
	case resp.StatusCode >= 500:
		r.s5xx.Add(1)
	case resp.StatusCode >= 400:
		r.s4xx.Add(1)
	default:
		r.s2xx.Add(1)
	}

	if start.Before(r.warmupEnd) {
		return
	}
	if resp.StatusCode < 400 {
		r.measured.Add(1)
	}
	r.hist.Observe(units.Seconds(elapsed.Seconds()))
	r.mu.Lock()
	r.samples = append(r.samples, elapsed)
	r.recordSlow(elapsed, resp.StatusCode, resp.Header.Get(traceIDHeader))
	r.mu.Unlock()
}
