package loadgen

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// testTarget is an httptest server with a controllable handler.
func testTarget(t *testing.T, h http.HandlerFunc) (*httptest.Server, func(*rand.Rand) (*http.Request, error)) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	newReq := func(*rand.Rand) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, srv.URL+"/predict", nil)
	}
	return srv, newReq
}

func TestRunPoissonBasics(t *testing.T) {
	var served atomic.Int64
	_, newReq := testTarget(t, func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	})

	res, err := Run(context.Background(), Config{
		NewRequest: newReq,
		Rate:       400,
		Duration:   500 * time.Millisecond,
		Warmup:     100 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Completed != res.Sent {
		t.Fatalf("sent=%d completed=%d; want equal and non-zero", res.Sent, res.Completed)
	}
	if res.Completed != served.Load() {
		t.Fatalf("completed=%d but server saw %d", res.Completed, served.Load())
	}
	if res.Status2xx != res.Completed || res.Status5xx != 0 || res.NetErrors != 0 {
		t.Fatalf("status partition: %+v", res)
	}
	// ~400 rps over 0.5s → ~200 arrivals; allow a wide Poisson band.
	if res.Sent < 100 || res.Sent > 400 {
		t.Fatalf("sent=%d, want roughly 200 for 400rps x 0.5s", res.Sent)
	}
	if res.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v, want > 0", res.ThroughputRPS)
	}
	// Warm-up responses must be excluded from the measured set.
	if res.Measured >= res.Completed {
		t.Fatalf("measured=%d not smaller than completed=%d despite warm-up", res.Measured, res.Completed)
	}
	if int64(res.Hist.Count()) != res.Measured {
		t.Fatalf("histogram count %d != measured %d", res.Hist.Count(), res.Measured)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 || res.Max < res.P999 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p999=%v max=%v", res.P50, res.P99, res.P999, res.Max)
	}
}

func TestRunQuantilesAgainstKnownLatency(t *testing.T) {
	const floor = 5 * time.Millisecond
	_, newReq := testTarget(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(floor)
		w.WriteHeader(http.StatusOK)
	})
	res, err := Run(context.Background(), Config{
		NewRequest: newReq,
		Rate:       150,
		Duration:   600 * time.Millisecond,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured == 0 {
		t.Fatal("no measured responses")
	}
	if res.P50 < floor {
		t.Fatalf("p50=%v below the server's %v latency floor", res.P50, floor)
	}
}

func TestRunClosedLoop(t *testing.T) {
	_, newReq := testTarget(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	res, err := Run(context.Background(), Config{
		NewRequest:  newReq,
		Arrival:     Closed,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Completed != res.Sent {
		t.Fatalf("closed loop sent=%d completed=%d", res.Sent, res.Completed)
	}
	if res.OfferedRPS != 0 {
		t.Fatalf("closed loop reports offered rate %v", res.OfferedRPS)
	}
	if res.Shed != 0 {
		t.Fatalf("closed loop shed %d", res.Shed)
	}
}

func TestRunBurstyOffersMoreVariance(t *testing.T) {
	_, newReq := testTarget(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	res, err := Run(context.Background(), Config{
		NewRequest:  newReq,
		Arrival:     Bursty,
		Rate:        300,
		Duration:    600 * time.Millisecond,
		BurstOn:     100 * time.Millisecond,
		BurstOff:    100 * time.Millisecond,
		BurstFactor: 4,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Status5xx != 0 {
		t.Fatalf("bursty run: %+v", res)
	}
}

func TestRunStatusPartition(t *testing.T) {
	var n atomic.Int64
	_, newReq := testTarget(t, func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 0:
			w.WriteHeader(http.StatusTooManyRequests)
		case 1:
			w.WriteHeader(http.StatusBadRequest)
		case 2:
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusOK)
		}
	})
	res, err := Run(context.Background(), Config{
		NewRequest: newReq,
		Rate:       300,
		Duration:   400 * time.Millisecond,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Status2xx + res.Status4xx + res.Status429 + res.Status5xx + res.NetErrors
	if got != res.Completed {
		t.Fatalf("status partition sums to %d, completed %d", got, res.Completed)
	}
	for name, v := range map[string]int64{
		"2xx": res.Status2xx, "4xx": res.Status4xx, "429": res.Status429, "5xx": res.Status5xx,
	} {
		if v == 0 {
			t.Errorf("no %s responses recorded", name)
		}
	}
	// Only 2xx responses count toward throughput.
	if res.Measured > res.Status2xx {
		t.Fatalf("measured %d exceeds 2xx %d", res.Measured, res.Status2xx)
	}
}

func TestRunConfigValidation(t *testing.T) {
	newReq := func(*rand.Rand) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, "http://127.0.0.1:0/", nil)
	}
	cases := []Config{
		{},                             // no NewRequest
		{NewRequest: newReq},           // no rate
		{NewRequest: newReq, Rate: 10}, // no duration
		{NewRequest: newReq, Rate: 10, Duration: time.Second, Warmup: time.Second}, // warmup >= duration
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := ParseArrival("sawtooth"); err == nil {
		t.Error("ParseArrival accepted an unknown schedule")
	}
	for _, s := range []string{"poisson", "bursty", "diurnal", "closed"} {
		if _, err := ParseArrival(s); err != nil {
			t.Errorf("ParseArrival(%q): %v", s, err)
		}
	}
}

func TestRunContextCancel(t *testing.T) {
	_, newReq := testTarget(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Config{
		NewRequest: newReq,
		Rate:       100,
		Duration:   10 * time.Second,
		Seed:       6,
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the run promptly")
	}
	if res == nil || res.Completed != res.Sent {
		t.Fatalf("cancelled run dropped requests: %+v", res)
	}
}

// TestRunSlowestTraceIDs checks the slowest-K set is bounded, sorted worst
// first, and carries the trace IDs the server echoed.
func TestRunSlowestTraceIDs(t *testing.T) {
	var n atomic.Int64
	_, newReq := testTarget(t, func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1)
		w.Header().Set("X-Trace-Id", "trace-"+strconv.FormatInt(i, 10))
		if i%5 == 0 {
			time.Sleep(3 * time.Millisecond) // make a distinct slow tail
		}
		w.WriteHeader(http.StatusOK)
	})

	res, err := Run(context.Background(), Config{
		NewRequest: newReq,
		Rate:       300,
		Duration:   500 * time.Millisecond,
		Warmup:     50 * time.Millisecond,
		Seed:       3,
		SlowestK:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slowest) == 0 || len(res.Slowest) > 3 {
		t.Fatalf("got %d slowest entries, want 1..3", len(res.Slowest))
	}
	for i, s := range res.Slowest {
		if s.TraceID == "" {
			t.Errorf("slowest[%d] has no trace ID", i)
		}
		if s.Status != http.StatusOK {
			t.Errorf("slowest[%d] status %d", i, s.Status)
		}
		if i > 0 && s.Latency > res.Slowest[i-1].Latency {
			t.Errorf("slowest not sorted worst-first: [%d]=%v > [%d]=%v", i, s.Latency, i-1, res.Slowest[i-1].Latency)
		}
	}
	if res.Slowest[0].Latency != res.Max {
		t.Errorf("slowest[0]=%v != max=%v", res.Slowest[0].Latency, res.Max)
	}
}
