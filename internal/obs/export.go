package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// Exporters. All three are deterministic for a given state: metrics are
// emitted sorted by name (Registry.Snapshot sorts), trace events sorted by
// start time (Tracer.Events sorts), and every float is formatted with
// strconv's shortest round-trip form.

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per metric, histograms as
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		switch m.Kind {
		case KindHistogram:
			for _, b := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(float64(b.UpperSeconds), 1) {
					le = formatFloat(float64(b.UpperSeconds))
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, b.Cumulative); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.Name, formatFloat(float64(m.Sum))); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", m.Name, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the registry snapshot as a JSON document:
// {"metrics": [...]} with metrics sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	type doc struct {
		Metrics []MetricJSON `json:"metrics"`
	}
	snap := r.Snapshot()
	out := doc{Metrics: make([]MetricJSON, len(snap))}
	for i, m := range snap {
		out.Metrics[i] = toJSONMetric(m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SnapshotJSON returns the registry snapshot in the same shape WriteJSON
// encodes, as a value safe to pass to json.Marshal (the raw Snapshot carries
// +Inf bucket bounds, which encoding/json rejects). It exists for callers
// that embed the snapshot in a larger document, e.g. an expvar.Func.
func (r *Registry) SnapshotJSON() any {
	snap := r.Snapshot()
	out := make([]MetricJSON, len(snap))
	for i, m := range snap {
		out[i] = toJSONMetric(m)
	}
	return out
}

// MetricJSON flattens a MetricSnapshot for JSON: histograms carry finite
// bucket edges as numbers and the +Inf bucket as the total count.
type MetricJSON struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Kind    Kind         `json:"kind"`
	Unit    string       `json:"unit,omitempty"`
	Value   *int64       `json:"value,omitempty"`
	Sum     *float64     `json:"sum_seconds,omitempty"`
	Count   *uint64      `json:"count,omitempty"`
	Buckets []BucketJSON `json:"buckets,omitempty"`
}

type BucketJSON struct {
	// LE is the bucket's inclusive upper bound in seconds; null marks +Inf.
	LE         *float64 `json:"le_seconds"`
	Cumulative uint64   `json:"cumulative"`
}

func toJSONMetric(m MetricSnapshot) MetricJSON {
	j := MetricJSON{Name: m.Name, Help: m.Help, Kind: m.Kind, Unit: m.Unit}
	if m.Kind == KindHistogram {
		sum := float64(m.Sum)
		count := m.Count
		j.Sum, j.Count = &sum, &count
		j.Buckets = make([]BucketJSON, len(m.Buckets))
		for i, b := range m.Buckets {
			bb := BucketJSON{Cumulative: b.Cumulative}
			if !math.IsInf(float64(b.UpperSeconds), 1) {
				le := float64(b.UpperSeconds)
				bb.LE = &le
			}
			j.Buckets[i] = bb
		}
		return j
	}
	v := m.Value
	j.Value = &v
	return j
}

// chromeEvent is one entry of the Chrome trace-event JSON array: a complete
// span ("ph":"X") or a metadata record ("ph":"M").
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeDoc is the {"traceEvents": [...]} envelope Perfetto loads.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// chromeSpan converts one TraceEvent, shifting its start by shift and
// placing it in process pid.
func chromeSpan(ev TraceEvent, pid int64, shift time.Duration) chromeEvent {
	ce := chromeEvent{
		Name: ev.Name,
		Cat:  ev.Cat,
		Ph:   "X",
		PID:  pid,
		TID:  ev.Track,
		TS:   micros(shift + ev.Start),
		Dur:  micros(ev.Dur),
	}
	if len(ev.Args) > 0 {
		// encoding/json sorts map keys, so args serialize deterministically
		// no matter the SetArg order.
		ce.Args = make(map[string]string, len(ev.Args))
		for _, a := range ev.Args {
			ce.Args[a.Key] = a.Val
		}
	}
	return ce
}

// droppedWarning is the metadata event appended when a tracer's buffer cap
// discarded spans, so a loaded trace says it is incomplete instead of
// silently missing events.
func droppedWarning(pid, dropped int64) chromeEvent {
	return chromeEvent{
		Name: "trace_dropped_warning",
		Ph:   "M",
		PID:  pid,
		Args: map[string]string{
			"dropped": strconv.FormatInt(dropped, 10),
			"warning": "span buffer overflowed; this trace is incomplete",
		},
	}
}

// WriteChromeTrace renders the tracer's completed spans as Chrome
// trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]} with one
// complete ("ph":"X") event per span, timestamps and durations in
// microseconds. The output loads directly in Perfetto or chrome://tracing.
// If the buffer cap discarded spans, a trailing metadata event carries the
// drop count.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(evs)+1)}
	for _, ev := range evs {
		doc.TraceEvents = append(doc.TraceEvents, chromeSpan(ev, 1, 0))
	}
	if d := t.Dropped(); d > 0 {
		doc.TraceEvents = append(doc.TraceEvents, droppedWarning(1, d))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// micros converts a duration to the float microseconds Chrome traces use.
func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// formatFloat renders a float in its shortest round-trip decimal form.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
