package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/units"
)

// goldenRegistry builds a registry with one metric of each kind in known
// states, registered out of name order to prove exports sort.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total", "Requests handled.").Add(3)
	r.BytesCounter("moved_bytes_total", "Bytes moved.").Add(units.Bytes(1024))
	r.Gauge("queue_depth", "Current depth.").Set(-2)
	r.GaugeFunc("entries", "Entry count.", func() int64 { return 7 })
	h := r.Histogram("latency_seconds", "Latency.", []units.Seconds{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.02)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	const want = `# HELP entries Entry count.
# TYPE entries gauge
entries 7
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.001"} 1
latency_seconds_bucket{le="0.01"} 1
latency_seconds_bucket{le="+Inf"} 2
latency_seconds_sum 0.0205
latency_seconds_count 2
# HELP moved_bytes_total Bytes moved.
# TYPE moved_bytes_total counter
moved_bytes_total 1024
# HELP queue_depth Current depth.
# TYPE queue_depth gauge
queue_depth -2
# HELP requests_total Requests handled.
# TYPE requests_total counter
requests_total 3
`
	r := goldenRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("Prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Determinism: a second write is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two Prometheus writes of the same state differ")
	}
}

func TestWriteJSON(t *testing.T) {
	r := goldenRegistry()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string   `json:"name"`
			Kind    string   `json:"kind"`
			Value   *int64   `json:"value"`
			Sum     *float64 `json:"sum_seconds"`
			Count   *uint64  `json:"count"`
			Buckets []struct {
				LE         *float64 `json:"le_seconds"`
				Cumulative uint64   `json:"cumulative"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if len(doc.Metrics) != 5 {
		t.Fatalf("got %d metrics, want 5", len(doc.Metrics))
	}
	hist := doc.Metrics[1]
	if hist.Name != "latency_seconds" || hist.Count == nil || *hist.Count != 2 {
		t.Errorf("histogram metric = %+v, want latency_seconds with count 2", hist)
	}
	if n := len(hist.Buckets); n != 3 {
		t.Fatalf("histogram has %d buckets, want 3 (two finite + Inf)", n)
	}
	if hist.Buckets[2].LE != nil {
		t.Error("+Inf bucket should serialize le_seconds as null")
	}
	if hist.Buckets[2].Cumulative != 2 {
		t.Errorf("+Inf cumulative = %d, want 2", hist.Buckets[2].Cumulative)
	}

	// SnapshotJSON must be marshalable (it backs the expvar surface, which
	// silently drops values json.Marshal rejects, e.g. raw +Inf bounds).
	if _, err := json.Marshal(r.SnapshotJSON()); err != nil {
		t.Errorf("SnapshotJSON not marshalable: %v", err)
	}
}

// goldenTracer replays a fixed scenario on a manual clock: a task span with
// a child on its track, plus an externally completed kernel event.
func goldenTracer() *Tracer {
	tr := NewTracer()
	var clock time.Duration
	tr.now = func() time.Duration { return clock }

	sp := tr.Start("compile", TaskCat)
	sp.SetArg("gpu", "A100")
	clock = 2 * time.Millisecond
	child := sp.Child("lower")
	clock = 3 * time.Millisecond
	child.End()
	clock = 5 * time.Millisecond
	sp.End()

	tr.Complete(TraceEvent{
		Name: "kernel", Cat: "kernel", Track: 7,
		Start: time.Millisecond, Dur: 500 * time.Microsecond,
		Args: []Arg{{Key: "layer", Val: "3"}},
	})
	return tr
}

func TestWriteChromeTraceGolden(t *testing.T) {
	const want = `{
 "displayTimeUnit": "ms",
 "traceEvents": [
  {
   "name": "compile",
   "cat": "task",
   "ph": "X",
   "pid": 1,
   "tid": 1,
   "ts": 0,
   "dur": 5000,
   "args": {
    "gpu": "A100"
   }
  },
  {
   "name": "kernel",
   "cat": "kernel",
   "ph": "X",
   "pid": 1,
   "tid": 7,
   "ts": 1000,
   "dur": 500,
   "args": {
    "layer": "3"
   }
  },
  {
   "name": "lower",
   "cat": "task",
   "ph": "X",
   "pid": 1,
   "tid": 1,
   "ts": 2000,
   "dur": 1000
  }
 ]
}
`
	tr := goldenTracer()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("Chrome trace mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("Chrome trace is not valid JSON")
	}
}

func TestTracerBufferCap(t *testing.T) {
	tr := NewTracer()
	tr.maxEvents = 2
	for i := 0; i < 5; i++ {
		tr.Complete(TraceEvent{Name: "e"})
	}
	if got := len(tr.Events()); got != 2 {
		t.Errorf("retained %d events, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	SetTracer(nil)
	sp := StartSpan("x")
	sp.SetArg("a", "b")
	child := sp.Child("y")
	child.End()
	sp.End()
	if sp != nil || child != nil {
		t.Error("nil tracer should yield nil spans")
	}
	var tr *Tracer
	tr.Complete(TraceEvent{}) // must not panic
	if got := tr.Start("x", TaskCat); got != nil {
		t.Error("nil tracer Start should return nil")
	}
}
