package obs

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/units"
)

// DefaultLatencyBuckets spans the repository's latency range — sub-µs
// cached predictions up to multi-second full-lab collection passes — in a
// 1/2/5 progression. 22 finite buckets plus the implicit +Inf bucket.
func DefaultLatencyBuckets() []units.Seconds {
	return []units.Seconds{
		1e-6, 2e-6, 5e-6,
		1e-5, 2e-5, 5e-5,
		1e-4, 2e-4, 5e-4,
		1e-3, 2e-3, 5e-3,
		1e-2, 2e-2, 5e-2,
		1e-1, 2e-1, 5e-1,
		1, 2, 5, 10,
	}
}

// Histogram is a fixed-bucket latency histogram. Observation is lock-free:
// one binary search over the (immutable) bounds plus two atomic adds. The
// observation sum is kept in integer nanoseconds so concurrent recording
// stays associative — snapshots are exact counts, never racy float folds.
type Histogram struct {
	bounds   []units.Seconds // ascending upper bounds; immutable after New
	counts   []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	sumNanos atomic.Int64
	obsTotal atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds
// (nil selects DefaultLatencyBuckets). Bounds must be strictly increasing.
func NewHistogram(bounds []units.Seconds) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	own := make([]units.Seconds, len(bounds))
	copy(own, bounds)
	return &Histogram{bounds: own, counts: make([]atomic.Uint64, len(own)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d units.Seconds) {
	// Binary search for the first bound >= d; observations beyond every
	// bound land in the +Inf bucket.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sumNanos.Add(int64(float64(d) * 1e9))
	h.obsTotal.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.obsTotal.Load() }

// Sum returns the (nanosecond-truncated) sum of all observations.
func (h *Histogram) Sum() units.Seconds {
	return units.Seconds(float64(h.sumNanos.Load()) / 1e9)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank; observations in the +Inf
// bucket report the highest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) units.Seconds {
	total := h.obsTotal.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket: no finite upper edge
				return h.bounds[len(h.bounds)-1]
			}
			lower := units.Seconds(0)
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + units.Seconds(frac)*(upper-lower)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// CountAtMost returns how many observations landed in buckets whose upper
// bound is ≤ threshold — the "fast enough" numerator for a latency
// objective. The count is exact when the threshold equals a bucket bound
// (the intended configuration) and conservative (rounds down) otherwise.
func (h *Histogram) CountAtMost(threshold units.Seconds) uint64 {
	var cum uint64
	for i, b := range h.bounds {
		if b > threshold {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// snapshot returns sum, count, and cumulative bucket counts, with a final
// +Inf bucket. Concurrent observations may land between the bucket loads;
// cumulative counts are each exact, and the final bucket equals the count
// loaded in the same pass so exporters always see a coherent series.
func (h *Histogram) snapshot() (units.Seconds, uint64, []BucketSnapshot) {
	out := make([]BucketSnapshot, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		upper := units.Seconds(math.Inf(1))
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		out[i] = BucketSnapshot{UpperSeconds: upper, Cumulative: cum}
	}
	return h.Sum(), cum, out
}

// Timer measures one region into a histogram. The zero Timer (returned by
// StartTimer when observation is disabled) makes Stop a no-op.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing a region if observation is enabled; otherwise it
// returns the zero Timer at the cost of a single atomic load.
func StartTimer(h *Histogram) Timer {
	if !enabled.Load() || h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time. No-op on the zero Timer.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Observe(units.Seconds(time.Since(t.start).Seconds()))
}
