package obs

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]units.Seconds{1, 2, 5})
	cases := []struct {
		d      units.Seconds
		bucket int
	}{
		{0.5, 0},
		{1, 0}, // bounds are inclusive upper edges
		{1.5, 1},
		{2, 1},
		{5, 2},
		{7, 3}, // +Inf bucket
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	_, count, buckets := h.snapshot()
	if count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", count, len(cases))
	}
	// Per-bucket (non-cumulative) expectation from the cases above.
	want := []uint64{2, 2, 1, 1}
	var cum uint64
	for i, w := range want {
		cum += w
		if buckets[i].Cumulative != cum {
			t.Errorf("bucket %d cumulative = %d, want %d", i, buckets[i].Cumulative, cum)
		}
	}
	if !math.IsInf(float64(buckets[len(buckets)-1].UpperSeconds), 1) {
		t.Error("final bucket bound is not +Inf")
	}
	if buckets[len(buckets)-1].Cumulative != count {
		t.Error("final cumulative bucket != total count")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]units.Seconds{1, 2, 4})
	// 10 observations inside (0, 1]: the median interpolates to the middle
	// of that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); math.Abs(float64(got)-0.5) > 1e-9 {
		t.Errorf("median of a uniform first bucket = %v, want 0.5", got)
	}
	if got := h.Quantile(1); math.Abs(float64(got)-1) > 1e-9 {
		t.Errorf("q=1 = %v, want the bucket's upper edge 1", got)
	}

	// Push ten more into (2, 4]: the 75th percentile now lands in that
	// bucket, interpolated between 2 and 4.
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	got := h.Quantile(0.75)
	if got <= 2 || got > 4 {
		t.Errorf("p75 = %v, want within (2, 4]", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]units.Seconds{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("quantile of empty histogram = %v, want 0", got)
	}
	// Observations beyond every bound report the highest finite bound.
	h.Observe(100)
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("quantile with only +Inf observations = %v, want 2", got)
	}
	// Out-of-range q is clamped, not panicking.
	if got := h.Quantile(-1); got < 0 {
		t.Errorf("Quantile(-1) = %v", got)
	}
	if got := h.Quantile(2); got != 2 {
		t.Errorf("Quantile(2) = %v, want 2", got)
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds did not panic")
		}
	}()
	NewHistogram([]units.Seconds{1, 1})
}

func TestStartTimerGatedOnEnabled(t *testing.T) {
	prev := Enabled()
	defer SetEnabled(prev)

	h := NewHistogram([]units.Seconds{1})

	SetEnabled(false)
	tm := StartTimer(h)
	tm.Stop()
	if got := h.Count(); got != 0 {
		t.Errorf("disabled timer recorded %d observations", got)
	}

	SetEnabled(true)
	tm = StartTimer(h)
	time.Sleep(time.Microsecond)
	tm.Stop()
	if got := h.Count(); got != 1 {
		t.Errorf("enabled timer recorded %d observations, want 1", got)
	}

	// The zero Timer and a nil histogram are both safe.
	(Timer{}).Stop()
	StartTimer(nil).Stop()
}

// Disabled-path costs: these exist so `go test -bench` can show the numbers
// behind the "a few atomic ops" claim in the package doc.
func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkStartTimerDisabled(b *testing.B) {
	prev := Enabled()
	SetEnabled(false)
	defer SetEnabled(prev)
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartTimer(h).Stop()
	}
}

func BenchmarkStartTimerEnabled(b *testing.B) {
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartTimer(h).Stop()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(3e-5)
	}
}

func BenchmarkStartSpanNoTracer(b *testing.B) {
	SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan("x")
		sp.End()
	}
}
