package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Fleet metric merging. The proxy's /metricsz scrapes each replica's
// /metrics.json and folds the documents into one fleet view. Counters and
// gauges sum; histograms merge bucket-wise — and because every replica
// builds its histograms from the same code with the same bucket edges, the
// merge is exact: each fleet bucket is the integer sum of the replicas'
// cumulative counts, not an approximation. Metrics whose shape disagrees
// across replicas (kind mismatch, different bucket edges) are left out and
// reported in the skipped list instead of being merged wrongly.

// DecodeMetrics parses a /metrics.json document ({"metrics": [...]}).
func DecodeMetrics(r io.Reader) ([]MetricJSON, error) {
	var doc struct {
		Metrics []MetricJSON `json:"metrics"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Metrics, nil
}

// bucketsCompatible reports whether two histograms share identical bucket
// edges (same length, same upper bounds, +Inf in the same place).
func bucketsCompatible(a, b []BucketJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		al, bl := a[i].LE, b[i].LE
		if (al == nil) != (bl == nil) {
			return false
		}
		//lint:ignore floateq bucket edges must be bit-identical — all replicas serialize the same compiled-in bounds, so any difference is a real shape mismatch
		if al != nil && *al != *bl {
			return false
		}
	}
	return true
}

// mergeInto folds src into dst (same name, validated kind). Reports whether
// the shapes were compatible.
func mergeInto(dst *MetricJSON, src MetricJSON) bool {
	if dst.Kind != src.Kind {
		return false
	}
	if dst.Kind == KindHistogram {
		if dst.Sum == nil || src.Sum == nil || dst.Count == nil || src.Count == nil {
			return false
		}
		if !bucketsCompatible(dst.Buckets, src.Buckets) {
			return false
		}
		sum := *dst.Sum + *src.Sum
		count := *dst.Count + *src.Count
		dst.Sum, dst.Count = &sum, &count
		for i := range dst.Buckets {
			dst.Buckets[i].Cumulative += src.Buckets[i].Cumulative
		}
		return true
	}
	if dst.Value == nil || src.Value == nil {
		return false
	}
	v := *dst.Value + *src.Value
	dst.Value = &v
	return true
}

// copyMetric deep-copies a MetricJSON so merging never aliases a decoded
// document.
func copyMetric(m MetricJSON) MetricJSON {
	out := m
	if m.Value != nil {
		v := *m.Value
		out.Value = &v
	}
	if m.Sum != nil {
		s := *m.Sum
		out.Sum = &s
	}
	if m.Count != nil {
		c := *m.Count
		out.Count = &c
	}
	if m.Buckets != nil {
		out.Buckets = make([]BucketJSON, len(m.Buckets))
		copy(out.Buckets, m.Buckets)
	}
	return out
}

// MergeMetrics folds several per-process metric sets into one fleet set,
// sorted by name. Counters and gauges sum their values; histograms sum
// bucket-wise (exact when bucket edges agree). Metrics that appear with
// incompatible shapes across sets are dropped entirely and listed in
// skipped, with one entry per name.
func MergeMetrics(sets ...[]MetricJSON) (merged []MetricJSON, skipped []string) {
	byName := make(map[string]*MetricJSON)
	bad := make(map[string]string)
	var order []string
	for _, set := range sets {
		for _, m := range set {
			if _, isBad := bad[m.Name]; isBad {
				continue
			}
			dst, seen := byName[m.Name]
			if !seen {
				cp := copyMetric(m)
				byName[m.Name] = &cp
				order = append(order, m.Name)
				continue
			}
			if !mergeInto(dst, m) {
				bad[m.Name] = fmt.Sprintf("%s: incompatible shapes across replicas", m.Name)
				delete(byName, m.Name)
			}
		}
	}
	for _, name := range order {
		if m, ok := byName[name]; ok {
			merged = append(merged, *m)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Name < merged[j].Name })
	for name := range bad {
		skipped = append(skipped, name)
	}
	sort.Strings(skipped)
	return merged, skipped
}
