package obs

import (
	"bytes"
	"testing"

	"repro/internal/units"
)

// replicaRegistry builds a registry with a counter, a gauge-free counter
// pair, and a histogram fed the given latencies.
func replicaRegistry(t *testing.T, reqs int64, lats []units.Seconds) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("serve_predictions_total", "").Add(reqs)
	h := r.Histogram("serve_request_seconds", "", nil)
	for _, l := range lats {
		h.Observe(l)
	}
	return r
}

// metricsOf round-trips a registry through its JSON exposition, exactly as
// /metricsz sees a replica.
func metricsOf(t *testing.T, r *Registry) []MetricJSON {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ms, err := DecodeMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func findMetric(ms []MetricJSON, name string) (MetricJSON, bool) {
	for _, m := range ms {
		if m.Name == name {
			return m, true
		}
	}
	return MetricJSON{}, false
}

func TestMergeMetricsExactBucketSums(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)

	a := replicaRegistry(t, 3, []units.Seconds{1e-6, 3e-4, 0.2})
	b := replicaRegistry(t, 7, []units.Seconds{2e-6, 3e-4, 3e-4, 9})
	am, bm := metricsOf(t, a), metricsOf(t, b)

	merged, skipped := MergeMetrics(am, bm)
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v, want none", skipped)
	}

	c, ok := findMetric(merged, "serve_predictions_total")
	if !ok || *c.Value != 10 {
		t.Fatalf("merged counter = %+v, want value 10", c)
	}

	h, ok := findMetric(merged, "serve_request_seconds")
	if !ok {
		t.Fatal("merged histogram missing")
	}
	if *h.Count != 7 {
		t.Fatalf("merged count = %d, want 7", *h.Count)
	}
	ah, _ := findMetric(am, "serve_request_seconds")
	bh, _ := findMetric(bm, "serve_request_seconds")
	if len(h.Buckets) != len(ah.Buckets) {
		t.Fatalf("bucket count changed: %d vs %d", len(h.Buckets), len(ah.Buckets))
	}
	for i := range h.Buckets {
		want := ah.Buckets[i].Cumulative + bh.Buckets[i].Cumulative
		if h.Buckets[i].Cumulative != want {
			t.Fatalf("bucket %d: merged %d != %d + %d", i,
				h.Buckets[i].Cumulative, ah.Buckets[i].Cumulative, bh.Buckets[i].Cumulative)
		}
	}
	wantSum := *ah.Sum + *bh.Sum
	if *h.Sum != wantSum {
		t.Fatalf("merged sum = %v, want %v", *h.Sum, wantSum)
	}

	// Merging must not mutate the inputs.
	ah2, _ := findMetric(metricsOf(t, a), "serve_request_seconds")
	if ah.Buckets[len(ah.Buckets)-1].Cumulative != ah2.Buckets[len(ah2.Buckets)-1].Cumulative {
		t.Fatal("MergeMetrics mutated its input")
	}
}

func TestMergeMetricsSkipsIncompatible(t *testing.T) {
	v1, v2 := int64(1), int64(2)
	le := 0.5
	c1, c2 := uint64(1), uint64(1)
	s := 0.0
	kindClash := [][]MetricJSON{
		{{Name: "m", Kind: KindCounter, Value: &v1}},
		{{Name: "m", Kind: KindHistogram, Sum: &s, Count: &c1,
			Buckets: []BucketJSON{{LE: &le, Cumulative: 1}, {Cumulative: 1}}}},
	}
	merged, skipped := MergeMetrics(kindClash...)
	if len(merged) != 0 || len(skipped) != 1 || skipped[0] != "m" {
		t.Fatalf("kind clash: merged=%v skipped=%v", merged, skipped)
	}

	le2 := 0.9
	edgeClash := [][]MetricJSON{
		{
			{Name: "ok", Kind: KindCounter, Value: &v1},
			{Name: "h", Kind: KindHistogram, Sum: &s, Count: &c1,
				Buckets: []BucketJSON{{LE: &le, Cumulative: 1}, {Cumulative: 1}}},
		},
		{
			{Name: "ok", Kind: KindCounter, Value: &v2},
			{Name: "h", Kind: KindHistogram, Sum: &s, Count: &c2,
				Buckets: []BucketJSON{{LE: &le2, Cumulative: 1}, {Cumulative: 1}}},
		},
	}
	merged, skipped = MergeMetrics(edgeClash...)
	if len(skipped) != 1 || skipped[0] != "h" {
		t.Fatalf("edge clash skipped = %v, want [h]", skipped)
	}
	m, ok := findMetric(merged, "ok")
	if !ok || *m.Value != 3 {
		t.Fatalf("compatible metric lost in edge clash: %+v", merged)
	}
	if _, ok := findMetric(merged, "h"); ok {
		t.Fatal("incompatible histogram present in merged output")
	}
}

func TestMergeMetricsSingleSetIdentity(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	r := replicaRegistry(t, 5, []units.Seconds{1e-3})
	in := metricsOf(t, r)
	merged, skipped := MergeMetrics(in)
	if len(skipped) != 0 || len(merged) != len(in) {
		t.Fatalf("identity merge: merged=%d skipped=%v, want %d metrics", len(merged), skipped, len(in))
	}
	h, _ := findMetric(merged, "serve_request_seconds")
	hin, _ := findMetric(in, "serve_request_seconds")
	if *h.Count != *hin.Count {
		t.Fatalf("identity merge changed count: %d vs %d", *h.Count, *hin.Count)
	}
}
