package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Process traces. A fleet run produces one span buffer per process (the
// proxy plus each replica), each timed against its own tracer epoch. The
// ProcessTrace wire type carries a buffer with its epoch so a collector can
// merge several of them onto one timeline: WriteChromeTraceMerged shifts
// every process's offsets onto the earliest epoch and gives each process its
// own pid (and thus its own named track group in Perfetto).

// ProcessTrace is one process's completed span buffer, as served by
// /tracez.json and consumed by `dnnperf fleet -trace-o`.
type ProcessTrace struct {
	// Process names the track group in the merged timeline, e.g.
	// "proxy 127.0.0.1:8080" or "replica 127.0.0.1:40123".
	Process string `json:"process"`
	// EpochUnixNanos is the tracer epoch the events' Start offsets are
	// relative to.
	EpochUnixNanos int64 `json:"epoch_unix_nanos"`
	// Dropped counts spans the buffer cap discarded; >0 marks the trace
	// incomplete.
	Dropped int64        `json:"dropped"`
	Events  []TraceEvent `json:"events"`
}

// ProcessTrace snapshots the tracer's buffer under the given process name.
func (t *Tracer) ProcessTrace(name string) ProcessTrace {
	if t == nil {
		return ProcessTrace{Process: name}
	}
	return ProcessTrace{
		Process:        name,
		EpochUnixNanos: t.epoch.UnixNano(),
		Dropped:        t.Dropped(),
		Events:         t.Events(),
	}
}

// WriteProcessTrace encodes one process trace as JSON (the /tracez.json
// response body).
func WriteProcessTrace(w io.Writer, pt ProcessTrace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(pt)
}

// ReadProcessTrace decodes a /tracez.json response body.
func ReadProcessTrace(r io.Reader) (ProcessTrace, error) {
	var pt ProcessTrace
	if err := json.NewDecoder(r).Decode(&pt); err != nil {
		return ProcessTrace{}, err
	}
	return pt, nil
}

// WriteChromeTraceMerged renders several process traces as one Chrome
// trace-event document. Each process gets pid i+1 with a process_name
// metadata record, and every event is shifted from its own epoch onto the
// earliest epoch across the set, so spans from different processes that
// belong to one request line up on the shared timeline. Processes that
// dropped spans get a trace_dropped_warning metadata event.
func WriteChromeTraceMerged(w io.Writer, procs []ProcessTrace) error {
	// Stable process order regardless of scrape order: by name, then epoch.
	sorted := make([]ProcessTrace, len(procs))
	copy(sorted, procs)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Process != sorted[j].Process {
			return sorted[i].Process < sorted[j].Process
		}
		return sorted[i].EpochUnixNanos < sorted[j].EpochUnixNanos
	})

	var minEpoch int64
	for i, pt := range sorted {
		if i == 0 || pt.EpochUnixNanos < minEpoch {
			minEpoch = pt.EpochUnixNanos
		}
	}

	n := 0
	for _, pt := range sorted {
		n += len(pt.Events) + 2
	}
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, n)}
	for i, pt := range sorted {
		pid := int64(i + 1)
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pid,
			Args: map[string]string{"name": pt.Process},
		})
		shift := time.Duration(pt.EpochUnixNanos - minEpoch)
		for _, ev := range pt.Events {
			doc.TraceEvents = append(doc.TraceEvents, chromeSpan(ev, pid, shift))
		}
		if pt.Dropped > 0 {
			doc.TraceEvents = append(doc.TraceEvents, droppedWarning(pid, pt.Dropped))
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
