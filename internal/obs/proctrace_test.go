package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// testTracer returns a tracer with a deterministic manual clock.
func testTracer(epoch time.Time) (*Tracer, *time.Duration) {
	tr := NewTracer()
	tr.epoch = epoch
	var clock time.Duration
	tr.now = func() time.Duration { return clock }
	return tr, &clock
}

func TestProcessTraceRoundTrip(t *testing.T) {
	epoch := time.Unix(100, 500)
	tr, clock := testTracer(epoch)
	track := tr.ReserveTrack()
	tr.Complete(TraceEvent{Name: "predict", Cat: StageCat, Track: track,
		Start: 2 * time.Millisecond, Dur: 3 * time.Millisecond,
		Args: []Arg{{Key: "trace_id", Val: "abc"}}})
	*clock = 10 * time.Millisecond

	pt := tr.ProcessTrace("replica 127.0.0.1:1234")
	if pt.Process != "replica 127.0.0.1:1234" {
		t.Fatalf("Process = %q", pt.Process)
	}
	if pt.EpochUnixNanos != epoch.UnixNano() {
		t.Fatalf("EpochUnixNanos = %d, want %d", pt.EpochUnixNanos, epoch.UnixNano())
	}
	if len(pt.Events) != 1 || pt.Events[0].Name != "predict" {
		t.Fatalf("Events = %+v", pt.Events)
	}

	var buf bytes.Buffer
	if err := WriteProcessTrace(&buf, pt); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProcessTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Process != pt.Process || got.EpochUnixNanos != pt.EpochUnixNanos ||
		got.Dropped != pt.Dropped || len(got.Events) != len(pt.Events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, pt)
	}
	ge, we := got.Events[0], pt.Events[0]
	if ge.Name != we.Name || ge.Cat != we.Cat || ge.Track != we.Track ||
		ge.Start != we.Start || ge.Dur != we.Dur || len(ge.Args) != 1 || ge.Args[0] != we.Args[0] {
		t.Fatalf("event mismatch: got %+v want %+v", ge, we)
	}
}

func TestProcessTraceNilTracer(t *testing.T) {
	var tr *Tracer
	pt := tr.ProcessTrace("empty")
	if pt.Process != "empty" || pt.EpochUnixNanos != 0 || len(pt.Events) != 0 || pt.Dropped != 0 {
		t.Fatalf("nil tracer ProcessTrace = %+v", pt)
	}
}

// chromeJSON decodes a chrome trace document into a generic shape for
// assertions.
type chromeJSON struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		PID  int64             `json:"pid"`
		TID  int64             `json:"tid"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTraceMerged(t *testing.T) {
	// Proxy epoch 1s, replica epoch 1.5s: replica events must shift +500ms.
	proxy := ProcessTrace{
		Process:        "proxy",
		EpochUnixNanos: time.Second.Nanoseconds(),
		Events: []TraceEvent{
			{Name: "GET /predict", Cat: RequestCat, Track: 1, Start: 0, Dur: 4 * time.Millisecond},
		},
	}
	replica := ProcessTrace{
		Process:        "replica",
		EpochUnixNanos: (1500 * time.Millisecond).Nanoseconds(),
		Dropped:        3,
		Events: []TraceEvent{
			{Name: "predict", Cat: StageCat, Track: 1, Start: time.Millisecond, Dur: 2 * time.Millisecond},
		},
	}

	var buf bytes.Buffer
	if err := WriteChromeTraceMerged(&buf, []ProcessTrace{replica, proxy}); err != nil {
		t.Fatal(err)
	}
	var doc chromeJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, buf.String())
	}

	// Expected (sorted by process name): proxy pid 1, replica pid 2.
	byName := map[string]int{}
	var names []string
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
		names = append(names, ev.Name)
	}
	for _, want := range []string{"process_name", "GET /predict", "predict", "trace_dropped_warning"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("merged trace missing event %q; have %v", want, names)
		}
	}

	var proxyPID, replicaPID int64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			switch ev.Args["name"] {
			case "proxy":
				proxyPID = ev.PID
			case "replica":
				replicaPID = ev.PID
			}
		}
	}
	if proxyPID != 1 || replicaPID != 2 {
		t.Fatalf("pids: proxy=%d replica=%d, want 1 and 2", proxyPID, replicaPID)
	}

	for _, ev := range doc.TraceEvents {
		switch ev.Name {
		case "GET /predict":
			if ev.PID != proxyPID {
				t.Errorf("proxy span pid = %d, want %d", ev.PID, proxyPID)
			}
			if ev.TS != 0 {
				t.Errorf("proxy span ts = %v, want 0 (min epoch)", ev.TS)
			}
		case "predict":
			if ev.PID != replicaPID {
				t.Errorf("replica span pid = %d, want %d", ev.PID, replicaPID)
			}
			// 500ms epoch shift + 1ms start offset = 501000µs.
			if ev.TS != 501000 {
				t.Errorf("replica span ts = %v µs, want 501000 (epoch-shifted)", ev.TS)
			}
		case "trace_dropped_warning":
			if ev.PID != replicaPID {
				t.Errorf("dropped warning pid = %d, want replica %d", ev.PID, replicaPID)
			}
			if ev.Args["dropped"] != "3" {
				t.Errorf("dropped warning args = %v, want dropped=3", ev.Args)
			}
		}
	}
}

func TestWriteChromeTraceDroppedWarning(t *testing.T) {
	tr, _ := testTracer(time.Unix(0, 0))
	tr.maxEvents = 1
	track := tr.ReserveTrack()
	tr.Complete(TraceEvent{Name: "kept", Track: track, Dur: time.Millisecond})
	tr.Complete(TraceEvent{Name: "lost", Track: track, Dur: time.Millisecond})
	if got := tr.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d, want 1", got)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace_dropped_warning") {
		t.Fatalf("trace with drops lacks warning event:\n%s", buf.String())
	}

	// A clean tracer must not carry the warning.
	clean, _ := testTracer(time.Unix(0, 0))
	clean.Complete(TraceEvent{Name: "ok", Track: clean.ReserveTrack(), Dur: time.Millisecond})
	buf.Reset()
	if err := clean.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace_dropped_warning") {
		t.Fatalf("clean trace carries a drop warning:\n%s", buf.String())
	}
}

func TestTraceDroppedMetric(t *testing.T) {
	prev := CurrentTracer()
	defer SetTracer(prev)

	tr, _ := testTracer(time.Unix(0, 0))
	tr.maxEvents = 1
	tr.Complete(TraceEvent{Name: "a"})
	tr.Complete(TraceEvent{Name: "b"})
	SetTracer(tr)

	found := false
	for _, m := range Default().Snapshot() {
		if m.Name == "obs_trace_dropped_total" {
			found = true
			if m.Value != 1 {
				t.Fatalf("obs_trace_dropped_total = %d, want 1", m.Value)
			}
		}
	}
	if !found {
		t.Fatal("obs_trace_dropped_total not registered")
	}

	// With no tracer installed the gauge must read 0, not panic.
	SetTracer(nil)
	for _, m := range Default().Snapshot() {
		if m.Name == "obs_trace_dropped_total" && m.Value != 0 {
			t.Fatalf("obs_trace_dropped_total with nil tracer = %d, want 0", m.Value)
		}
	}
}
