// Package obs is the repository's observability layer: a low-overhead
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms with Prometheus-text and JSON exporters) and a span tracer
// whose output loads in Perfetto / chrome://tracing. Everything is stdlib
// only.
//
// Telemetry is strictly a side channel. Instrumented packages never read a
// metric or span back into a computation, so model outputs, serialized
// models and compiled-plan dumps are byte-identical whether observation is
// enabled or not (internal/core's golden test asserts this). The design
// keeps the disabled path nearly free:
//
//   - Counters and gauges are bare atomics; recording is one atomic add
//     whether or not anything ever scrapes them.
//   - Latency histograms are fed through StartTimer, which reads the clock
//     only when Enabled() — disabled, a timed region costs one atomic load.
//   - Spans come from the installed global tracer; with none installed,
//     StartSpan is one atomic pointer load returning a nil (no-op) span.
//
// Metric handles are package-level vars in the instrumented packages,
// registered once against Default() at init, so the hot paths never touch
// the registry's lock.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/units"
)

// Kind classifies a registered metric for exporters.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// BytesCounter is a Counter whose unit is bytes; its API speaks
// units.Bytes so byte volumes keep their type all the way to the exporter.
type BytesCounter struct{ v atomic.Int64 }

// Add accumulates a byte volume.
func (c *BytesCounter) Add(b units.Bytes) { c.v.Add(int64(b)) }

// Value returns the accumulated volume.
func (c *BytesCounter) Value() units.Bytes { return units.Bytes(c.v.Load()) }

// Gauge is an atomic instantaneous value (set-or-adjust semantics).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max raises the gauge to n if n exceeds the current value.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// metric is one registered instrument.
type metric struct {
	name string
	help string
	kind Kind
	unit string // "", "seconds" or "bytes" — annotates exports

	counter *Counter
	bytes   *BytesCounter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Histogram
}

// Registry holds named metrics. Registration takes a lock; recording on the
// returned handles never does. The zero value is not usable — call
// NewRegistry (or use Default()).
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

// defaultRegistry is the process-global registry every built-in
// instrumentation site registers against.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// enabled gates the clock reads behind latency observation (see StartTimer).
// Counters and gauges are always live; they are plain atomics.
var enabled atomic.Bool

// Enabled reports whether latency timing (StartTimer) is active.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns latency timing on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// register installs a metric, enforcing name uniqueness per kind. Asking
// twice for the same (name, kind) returns the original handle, so tests and
// multiple instances can share an aggregate metric safely.
func (r *Registry) register(name, help string, kind Kind, unit string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, unit: unit}
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, KindCounter, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// BytesCounter registers (or fetches) a byte-volume counter.
func (r *Registry) BytesCounter(name, help string) *BytesCounter {
	m := r.register(name, help, KindCounter, "bytes")
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.bytes == nil {
		m.bytes = &BytesCounter{}
	}
	return m.bytes
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, KindGauge, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed at snapshot time —
// the hook that lets stateful components (e.g. cache sizes) expose values
// without a write on their hot path.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	m := r.register(name, help, KindGauge, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	m.gaugeFn = fn
}

// Histogram registers (or fetches) a latency histogram. A nil bounds slice
// selects DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []units.Seconds) *Histogram {
	m := r.register(name, help, KindHistogram, "seconds")
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		m.hist = NewHistogram(bounds)
	}
	return m.hist
}

// ValueHistogram registers (or fetches) a histogram over a dimensionless
// count (e.g. sweep sizes or request batch widths) rather than a latency.
// It reuses the Histogram machinery — bounds and observations travel in the
// Seconds scalar type but carry no time meaning — and is exported with unit
// "count" so consumers of the snapshot don't misread the sum as seconds.
// Bounds must be provided: the latency defaults make no sense for counts.
func (r *Registry) ValueHistogram(name, help string, bounds []units.Seconds) *Histogram {
	if bounds == nil {
		panic("obs: ValueHistogram requires explicit bounds")
	}
	m := r.register(name, help, KindHistogram, "count")
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		m.hist = NewHistogram(bounds)
	}
	return m.hist
}

// MetricSnapshot is the exported state of one metric at one instant.
type MetricSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Kind  Kind   `json:"kind"`
	Unit  string `json:"unit,omitempty"`
	Value int64  `json:"value"` // counter / gauge value

	// Histogram-only fields.
	Sum     units.Seconds    `json:"sum_seconds,omitempty"`
	Count   uint64           `json:"count,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket: the count of
// observations at or below the upper bound.
type BucketSnapshot struct {
	UpperSeconds units.Seconds `json:"le_seconds"` // +Inf bucket has IsInf true
	Cumulative   uint64        `json:"cumulative"`
}

// Snapshot captures every metric, sorted by name, so exports (and tests)
// are deterministic regardless of registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()

	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Help: m.help, Kind: m.kind, Unit: m.unit}
		switch {
		case m.counter != nil:
			s.Value = m.counter.Value()
		case m.bytes != nil:
			s.Value = int64(m.bytes.Value())
		case m.gaugeFn != nil:
			s.Value = m.gaugeFn()
		case m.gauge != nil:
			s.Value = m.gauge.Value()
		case m.hist != nil:
			s.Sum, s.Count, s.Buckets = m.hist.snapshot()
		}
		out = append(out, s)
	}
	return out
}
