package obs

import (
	"sync"
	"testing"

	"repro/internal/units"
)

// The concurrency contract: recording is atomic, so under the race detector
// N goroutines × M operations must land exactly N*M times — no lost updates,
// no double counts.
func TestConcurrentExactCounts(t *testing.T) {
	const goroutines = 8
	const perG = 10_000

	r := NewRegistry()
	c := r.Counter("c_total", "")
	b := r.BytesCounter("b_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []units.Seconds{1e-3, 1e-2, 1e-1})

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				b.Add(units.Bytes(3))
				g.Add(1)
				g.Max(int64(j))
				// A fixed observation: 2ms lands in the second bucket and
				// contributes exactly 2e6 integer nanoseconds to the sum.
				h.Observe(2e-3)
			}
		}()
	}
	wg.Wait()

	const total = goroutines * perG
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := b.Value(); got != units.Bytes(3*total) {
		t.Errorf("bytes counter = %d, want %d", got, 3*total)
	}
	if got := g.Value(); got < perG-1 {
		t.Errorf("gauge = %d, want >= %d (Max with the last j)", got, perG-1)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	// Integer-nanosecond accumulation is associative: the sum is exact.
	if got, want := h.Sum(), units.Seconds(total*2e-3); got != want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	_, _, buckets := h.snapshot()
	if got := buckets[1].Cumulative; got != total {
		t.Errorf("bucket le=1e-2 cumulative = %d, want %d", got, total)
	}
	if got := buckets[0].Cumulative; got != 0 {
		t.Errorf("bucket le=1e-3 cumulative = %d, want 0", got)
	}
}

func TestConcurrentSpansExactCount(t *testing.T) {
	const goroutines = 8
	const perG = 500

	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				sp := StartSpan("work")
				sp.SetArg("k", "v")
				sp.End()
				sp.End() // idempotent: must not double-record
			}
		}()
	}
	wg.Wait()

	if got, want := len(tr.Events()), goroutines*perG; got != want {
		t.Errorf("recorded %d spans, want %d", got, want)
	}
	if d := tr.Dropped(); d != 0 {
		t.Errorf("dropped %d spans below the buffer cap", d)
	}
}

func TestRegisterIdempotentAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "first help wins")
	c2 := r.Counter("x_total", "ignored")
	if c1 != c2 {
		t.Error("re-registering the same counter returned a different handle")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Error("shared handles diverged")
	}

	defer func() {
		if recover() == nil {
			t.Error("re-registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestGaugeFuncLastWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("occupancy", "", func() int64 { return 1 })
	r.GaugeFunc("occupancy", "", func() int64 { return 2 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 2 {
		t.Errorf("snapshot = %+v, want one metric with value 2", snap)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra_total", "")
	r.Counter("alpha_total", "")
	r.Gauge("mid", "")
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(5)
	g.Max(3)
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Errorf("gauge after Max(5,3,9) = %d, want 9", got)
	}
}
