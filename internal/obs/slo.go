package obs

import (
	"context"
	"sync"
	"time"

	"repro/internal/units"
)

// SLO burn-rate tracking. A tracker periodically samples a small set of live
// counters — total requests, bad requests, and a latency histogram's
// (count, count ≤ threshold) pair — into a bounded ring. A report diffs the
// current counters against the oldest sample inside each sliding window,
// which turns the cumulative counters the registry already keeps into
// windowed rates without per-request bookkeeping on any hot path.
//
// Burn rate is the standard SRE normalization: the fraction of the error
// budget consumed per unit budget. burn = badFraction / (1 − objective), so
// burn 1.0 means "erring exactly at the objective"; a 14x burn over 5
// minutes is the classic page-now signal.

// DefaultSLOWindows are the sliding windows /sloz reports over.
func DefaultSLOWindows() []time.Duration {
	return []time.Duration{time.Minute, 5 * time.Minute, 30 * time.Minute}
}

// SLOConfig parameterizes a tracker. Zero fields take defaults.
type SLOConfig struct {
	// AvailabilityObjective is the target success fraction, e.g. 0.999.
	AvailabilityObjective float64
	// LatencyObjective is the target fraction of requests at or under
	// LatencyThreshold, e.g. 0.99.
	LatencyObjective float64
	// LatencyThreshold is the latency SLO boundary. Pick a histogram bucket
	// bound to keep the windowed counts exact.
	LatencyThreshold units.Seconds
	// Windows are the sliding report windows (default DefaultSLOWindows).
	Windows []time.Duration
	// MaxSamples bounds the ring (default: enough for the longest window at
	// the expected sampling interval, 1024).
	MaxSamples int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.AvailabilityObjective == 0 {
		c.AvailabilityObjective = 0.999
	}
	if c.LatencyObjective == 0 {
		c.LatencyObjective = 0.99
	}
	if c.LatencyThreshold == 0 {
		c.LatencyThreshold = 0.05 // 50ms, a DefaultLatencyBuckets bound
	}
	if c.Windows == nil {
		c.Windows = DefaultSLOWindows()
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 1024
	}
	return c
}

// sloSample is one point-in-time counter snapshot.
type sloSample struct {
	at       time.Time
	requests int64
	bad      int64
	histN    uint64
	histFast uint64
}

// SLOTracker samples live counters and reports windowed burn rates. Safe for
// concurrent Sample/Report.
type SLOTracker struct {
	cfg      SLOConfig
	requests func() int64
	bad      func() int64
	hist     *Histogram
	now      func() time.Time // test-substitutable clock

	mu      sync.Mutex
	samples []sloSample // ascending by time, bounded by cfg.MaxSamples
}

// NewSLOTracker builds a tracker over live counter reads. requests and bad
// return cumulative totals (bad ⊆ requests); hist is the latency histogram
// the latency objective reads (nil disables the latency report). The
// creation instant is recorded as a baseline sample, so short-lived
// processes report meaningful windows immediately.
func NewSLOTracker(cfg SLOConfig, requests, bad func() int64, hist *Histogram) *SLOTracker {
	t := &SLOTracker{
		cfg:      cfg.withDefaults(),
		requests: requests,
		bad:      bad,
		hist:     hist,
		now:      time.Now,
	}
	t.Sample()
	return t
}

// Sample records the current counters into the ring.
func (t *SLOTracker) Sample() {
	s := sloSample{at: t.now(), requests: t.requests(), bad: t.bad()}
	if t.hist != nil {
		s.histN = t.hist.Count()
		s.histFast = t.hist.CountAtMost(t.cfg.LatencyThreshold)
	}
	t.mu.Lock()
	t.samples = append(t.samples, s)
	if len(t.samples) > t.cfg.MaxSamples {
		// Drop the oldest; shift in place to keep one allocation.
		copy(t.samples, t.samples[1:])
		t.samples = t.samples[:len(t.samples)-1]
	}
	t.mu.Unlock()
}

// Run samples every interval until ctx is done.
func (t *SLOTracker) Run(ctx context.Context, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			t.Sample()
		}
	}
}

// SLOWindowReport is one window's burn-rate summary, the /sloz wire shape.
type SLOWindowReport struct {
	Window string `json:"window"`
	// CoverageSeconds is how much of the window the oldest in-window sample
	// actually covers; less than the window means the process is young.
	CoverageSeconds units.Seconds `json:"coverage_seconds"`
	Requests        int64         `json:"requests"`
	Bad             int64         `json:"bad"`
	// Availability is the success fraction over the window (1 with no
	// traffic: an empty window burns no budget).
	Availability         float64 `json:"availability"`
	AvailabilityBurnRate float64 `json:"availability_burn_rate"`
	// LatencyCompliance is the fraction of requests ≤ the threshold.
	LatencyCompliance float64 `json:"latency_compliance"`
	LatencyBurnRate   float64 `json:"latency_burn_rate"`
}

// SLOReport is the full /sloz document.
type SLOReport struct {
	AvailabilityObjective float64           `json:"availability_objective"`
	LatencyObjective      float64           `json:"latency_objective"`
	LatencyThresholdSecs  float64           `json:"latency_threshold_seconds"`
	Windows               []SLOWindowReport `json:"windows"`
}

// oldestWithin returns the earliest sample no older than cutoff; ok=false
// when every sample predates it (then the caller falls back to the newest
// older one for full-window coverage) or the ring is empty.
func (t *SLOTracker) oldestWithin(cutoff time.Time) (sloSample, bool) {
	for _, s := range t.samples {
		if !s.at.Before(cutoff) {
			return s, true
		}
	}
	return sloSample{}, false
}

// Report computes burn rates for every configured window against the live
// counters.
func (t *SLOTracker) Report() SLOReport {
	now := t.now()
	cur := sloSample{at: now, requests: t.requests(), bad: t.bad()}
	if t.hist != nil {
		cur.histN = t.hist.Count()
		cur.histFast = t.hist.CountAtMost(t.cfg.LatencyThreshold)
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	rep := SLOReport{
		AvailabilityObjective: t.cfg.AvailabilityObjective,
		LatencyObjective:      t.cfg.LatencyObjective,
		LatencyThresholdSecs:  float64(t.cfg.LatencyThreshold),
	}
	for _, w := range t.cfg.Windows {
		base, ok := t.oldestWithin(now.Add(-w))
		if !ok {
			if len(t.samples) == 0 {
				continue
			}
			// All samples predate the window: the oldest retained one still
			// bounds the diff; coverage caps at the window length.
			base = t.samples[0]
		}
		wr := SLOWindowReport{
			Window:            w.String(),
			Requests:          cur.requests - base.requests,
			Bad:               cur.bad - base.bad,
			Availability:      1,
			LatencyCompliance: 1,
		}
		cov := now.Sub(base.at)
		if cov > w {
			cov = w
		}
		wr.CoverageSeconds = units.Seconds(cov.Seconds())
		if wr.Requests > 0 {
			errFrac := float64(wr.Bad) / float64(wr.Requests)
			wr.Availability = 1 - errFrac
			wr.AvailabilityBurnRate = errFrac / (1 - t.cfg.AvailabilityObjective)
		}
		if n := cur.histN - base.histN; n > 0 {
			fast := cur.histFast - base.histFast
			slowFrac := float64(n-fast) / float64(n)
			wr.LatencyCompliance = 1 - slowFrac
			wr.LatencyBurnRate = slowFrac / (1 - t.cfg.LatencyObjective)
		}
		rep.Windows = append(rep.Windows, wr)
	}
	return rep
}
